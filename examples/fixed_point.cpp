//===- examples/fixed_point.cpp - §1's "graphics codes" -------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// §1: "Integer division is used heavily in base conversions, number
// theoretic codes, and graphics codes." The graphics pattern: rasterize
// a span by interpolating attributes, dividing accumulated deltas by
// the span length — a value fixed per span but unknown at compile time.
// A 1994 rasterizer precomputed the reciprocal per span exactly the way
// FloorDivider does here (floor semantics keep gradients monotone for
// negative deltas, where C's truncating division would kink at zero).
//
// This example draws gradients with (a) hardware division and (b) the
// invariant divider, verifies pixel-exact agreement, and times a frame.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace gmdiv;

namespace {

struct Span {
  int Width;       // Pixels in the span (the invariant divisor).
  int64_t DeltaR;  // Total color change across the span (16.16 fixed).
  int64_t DeltaG;
  int64_t DeltaB;
};

/// Reference: floor division via hardware divide.
int64_t floorDivHw(int64_t N, int64_t D) {
  int64_t Q = N / D;
  if (N % D != 0 && ((N % D < 0) != (D < 0)))
    --Q;
  return Q;
}

uint64_t rasterizeHardware(const std::vector<Span> &Spans,
                           std::vector<uint32_t> &Frame) {
  size_t Pixel = 0;
  uint64_t Checksum = 0;
  for (const Span &S : Spans) {
    const int64_t StepR = floorDivHw(S.DeltaR, S.Width);
    const int64_t StepG = floorDivHw(S.DeltaG, S.Width);
    const int64_t StepB = floorDivHw(S.DeltaB, S.Width);
    int64_t R = 0, G = 0, B = 0;
    for (int X = 0; X < S.Width; ++X) {
      const uint32_t Color =
          (static_cast<uint32_t>((R >> 16) & 0xff) << 16) |
          (static_cast<uint32_t>((G >> 16) & 0xff) << 8) |
          static_cast<uint32_t>((B >> 16) & 0xff);
      Frame[Pixel % Frame.size()] = Color;
      Checksum += Color;
      ++Pixel;
      R += StepR;
      G += StepG;
      B += StepB;
    }
  }
  return Checksum;
}

uint64_t rasterizeDivider(const std::vector<Span> &Spans,
                          std::vector<uint32_t> &Frame) {
  size_t Pixel = 0;
  uint64_t Checksum = 0;
  for (const Span &S : Spans) {
    // One divider per span; three gradient divisions share it.
    const FloorDivider<int64_t> ByWidth(S.Width);
    const int64_t StepR = ByWidth.divide(S.DeltaR);
    const int64_t StepG = ByWidth.divide(S.DeltaG);
    const int64_t StepB = ByWidth.divide(S.DeltaB);
    int64_t R = 0, G = 0, B = 0;
    for (int X = 0; X < S.Width; ++X) {
      const uint32_t Color =
          (static_cast<uint32_t>((R >> 16) & 0xff) << 16) |
          (static_cast<uint32_t>((G >> 16) & 0xff) << 8) |
          static_cast<uint32_t>((B >> 16) & 0xff);
      Frame[Pixel % Frame.size()] = Color;
      Checksum += Color;
      ++Pixel;
      R += StepR;
      G += StepG;
      B += StepB;
    }
  }
  return Checksum;
}

} // namespace

int main() {
  // Build a frame's worth of spans: varied widths, signed deltas.
  std::vector<Span> Spans;
  uint64_t State = 0x243f6a8885a308d3ull;
  auto Next = [&State] {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  };
  int64_t TotalPixels = 0;
  while (TotalPixels < 1 << 20) {
    Span S;
    S.Width = 1 + static_cast<int>(Next() % 509);
    S.DeltaR = static_cast<int64_t>(Next() % (255ull << 16)) -
               (127ll << 16);
    S.DeltaG = static_cast<int64_t>(Next() % (255ull << 16)) -
               (127ll << 16);
    S.DeltaB = static_cast<int64_t>(Next() % (255ull << 16)) -
               (127ll << 16);
    TotalPixels += S.Width;
    Spans.push_back(S);
  }

  std::vector<uint32_t> FrameA(1 << 16), FrameB(1 << 16);
  const auto T0 = std::chrono::steady_clock::now();
  const uint64_t SumHw = rasterizeHardware(Spans, FrameA);
  const auto T1 = std::chrono::steady_clock::now();
  const uint64_t SumDiv = rasterizeDivider(Spans, FrameB);
  const auto T2 = std::chrono::steady_clock::now();

  if (SumHw != SumDiv || FrameA != FrameB) {
    std::printf("PIXEL MISMATCH\n");
    return 1;
  }
  const double HwMs =
      std::chrono::duration<double, std::milli>(T1 - T0).count();
  const double DivMs =
      std::chrono::duration<double, std::milli>(T2 - T1).count();
  std::printf("rasterized %lld pixels over %zu spans: frames identical\n",
              static_cast<long long>(TotalPixels), Spans.size());
  std::printf("hardware floor-division gradients: %.2f ms/frame\n", HwMs);
  std::printf("per-span invariant dividers:       %.2f ms/frame\n", DivMs);
  std::printf("\nOnly three divisions amortize each divider setup here — "
              "the §10 warning\n(\"a loop might need to be executed many "
              "times before the faster loop body\noutweighs the cost of "
              "the multiplier computation\") in action on a modern\n"
              "fast-divider host. Reuse fixes it: one divider per "
              "distinct width,\ncached across the frame:\n");

  // Width-keyed divider cache: spans repeat widths, so setup amortizes
  // across the whole frame (the realistic renderer structure).
  std::vector<const FloorDivider<int64_t> *> Cache(512, nullptr);
  std::vector<FloorDivider<int64_t>> Storage;
  Storage.reserve(512);
  const auto T3 = std::chrono::steady_clock::now();
  uint64_t SumCached = 0;
  {
    size_t Pixel = 0;
    for (const Span &S : Spans) {
      if (!Cache[S.Width]) {
        Storage.emplace_back(S.Width);
        Cache[S.Width] = &Storage.back();
      }
      const FloorDivider<int64_t> &ByWidth = *Cache[S.Width];
      const int64_t StepR = ByWidth.divide(S.DeltaR);
      const int64_t StepG = ByWidth.divide(S.DeltaG);
      const int64_t StepB = ByWidth.divide(S.DeltaB);
      int64_t R = 0, G = 0, B = 0;
      for (int X = 0; X < S.Width; ++X) {
        const uint32_t Color =
            (static_cast<uint32_t>((R >> 16) & 0xff) << 16) |
            (static_cast<uint32_t>((G >> 16) & 0xff) << 8) |
            static_cast<uint32_t>((B >> 16) & 0xff);
        FrameB[Pixel % FrameB.size()] = Color;
        SumCached += Color;
        ++Pixel;
        R += StepR;
        G += StepG;
        B += StepB;
      }
    }
  }
  const auto T4 = std::chrono::steady_clock::now();
  if (SumCached != SumHw || FrameA != FrameB) {
    std::printf("PIXEL MISMATCH (cached)\n");
    return 1;
  }
  std::printf("cached width-keyed dividers:       %.2f ms/frame\n",
              std::chrono::duration<double, std::milli>(T4 - T3).count());
  return 0;
}
