//===- examples/radix_conversion.cpp - Figure 11.1 workload ---------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The paper's flagship example (Figure 11.1): converting binary numbers
// to decimal strings calculates one quotient and one remainder per
// output digit. This program runs the conversion three ways — hardware
// divide, the Figure 4.1 divider, and interpreted Figure 4.2 generated
// code — prints a self-check, and times the first two over a million
// conversions.
//
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"
#include "core/Divider.h"
#include "ir/AsmPrinter.h"
#include "ir/Interp.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace gmdiv;

namespace {

constexpr int BufSize = 16;

/// Figure 11.1 verbatim: hardware division.
char *decimalHardware(unsigned X, char *Buf, volatile unsigned *Divisor) {
  char *Bp = Buf + BufSize - 1;
  *Bp = '\0';
  const unsigned D = *Divisor; // Defeat constant folding: real div insns.
  do {
    *--Bp = static_cast<char>('0' + X % D);
    X /= D;
  } while (X != 0);
  return Bp;
}

/// Figure 11.1 with the invariant divider.
char *decimalDivider(unsigned X, char *Buf,
                     const UnsignedDivider<uint32_t> &By10) {
  char *Bp = Buf + BufSize - 1;
  *Bp = '\0';
  do {
    auto [Quotient, Remainder] = By10.divRem(X);
    *--Bp = static_cast<char>('0' + Remainder);
    X = Quotient;
  } while (X != 0);
  return Bp;
}

} // namespace

int main() {
  const UnsignedDivider<uint32_t> By10(10);
  volatile unsigned Ten = 10;
  char BufA[BufSize], BufB[BufSize];

  // Self-check over a few values, including the all-ones word the paper
  // times ("a full 32 bit number").
  const ir::Program Generated = codegen::genUnsignedDivRem(32, 10);
  for (unsigned Value : {0u, 7u, 10u, 123456789u, 4294967295u}) {
    const char *A = decimalHardware(Value, BufA, &Ten);
    const char *B = decimalDivider(Value, BufB, By10);
    // Generated-code version, digit by digit through the interpreter.
    std::string C;
    unsigned Cursor = Value;
    do {
      const std::vector<uint64_t> QR = ir::run(Generated, {Cursor});
      C.insert(C.begin(), static_cast<char>('0' + QR[1]));
      Cursor = static_cast<unsigned>(QR[0]);
    } while (Cursor != 0);
    if (std::strcmp(A, B) != 0 || C != A) {
      std::printf("MISMATCH at %u: '%s' vs '%s' vs '%s'\n", Value, A, B,
                  C.c_str());
      return 1;
    }
    std::printf("%10u -> \"%s\"\n", Value, A);
  }

  // The sequence a compiler would emit for the loop body (cf. the
  // Table 11.1 listings).
  std::printf("\ncompiled loop body (q = x/10, r = x%%10):\n%s\n",
              ir::formatProgram(Generated).c_str());

  // Timing, Table 11.2 style: convert full 32-bit numbers repeatedly.
  constexpr int Conversions = 1000000;
  unsigned Sink = 0;

  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Conversions; ++I)
    Sink += *decimalHardware(4294967295u - (I & 0xff), BufA, &Ten);
  auto Mid = std::chrono::steady_clock::now();
  for (int I = 0; I < Conversions; ++I)
    Sink += *decimalDivider(4294967295u - (I & 0xff), BufB, By10);
  auto End = std::chrono::steady_clock::now();

  const double UsPerDiv =
      std::chrono::duration<double, std::micro>(Mid - Start).count() /
      Conversions;
  const double UsPerMul =
      std::chrono::duration<double, std::micro>(End - Mid).count() /
      Conversions;
  std::printf("time with division performed:  %.3f us/conversion\n",
              UsPerDiv);
  std::printf("time with division eliminated: %.3f us/conversion\n",
              UsPerMul);
  std::printf("speedup ratio: %.2f  (paper's Table 11.2: 1.2x - 12x "
              "across 1985-1993 CPUs)\n",
              UsPerDiv / UsPerMul);
  return Sink == 0xdeadbeef ? 2 : 0; // Keep Sink alive.
}
