//===- examples/pointer_diff.cpp - §9 exact division in the wild ----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// §9's motivating construct: "An example occurs in C when subtracting
// two pointers. Their numerical difference is divided by the object
// size." Since the remainder is provably zero, the quotient is one MULL
// by the modular inverse plus a shift — no divide, not even a high
// multiply. This example implements pointer subtraction for a 48-byte
// record type, validates it across an array, and also demonstrates the
// §9 divisibility test and the strength-reduced (i % 100 == 0) loop.
//
//===----------------------------------------------------------------------===//

#include "core/ExactDiv.h"

#include <cstdint>
#include <cstdio>

using namespace gmdiv;

namespace {

struct Record {
  char Name[32];
  uint64_t Id;
  uint64_t Score;
}; // 48 bytes — divisible only via the 3*2^4 split.

static_assert(sizeof(Record) == 48, "example assumes a 48-byte record");

/// ptrdiff for Record*, the way a compiler would lower it with §9.
int64_t recordPtrDiff(const Record *A, const Record *B,
                      const ExactSignedDivider<int64_t> &BySize) {
  const int64_t ByteDiff = reinterpret_cast<const char *>(A) -
                           reinterpret_cast<const char *>(B);
  return BySize.divideExact(ByteDiff);
}

} // namespace

int main() {
  const ExactSignedDivider<int64_t> BySize(sizeof(Record));
  std::printf("object size %zu = 2^4 * 3; inverse of 3 mod 2^64 = 0x%llx\n",
              sizeof(Record),
              static_cast<unsigned long long>(BySize.inverse()));

  Record Array[4096];
  bool AllGood = true;
  for (int I = 0; I < 4096; I += 123)
    for (int J = 0; J < 4096; J += 321) {
      const int64_t Diff = recordPtrDiff(&Array[I], &Array[J], BySize);
      AllGood &= Diff == I - J;
    }
  std::printf("pointer differences across 4096-element array: %s\n",
              AllGood ? "all correct" : "BROKEN");

  // Divisibility without remainders: which packet sizes align to the
  // record size?
  const ExactUnsignedDivider<uint64_t> Align(sizeof(Record));
  for (uint64_t Bytes : {96ull, 100ull, 144ull, 4800ull, 4801ull})
    std::printf("  %5llu bytes %s a whole number of records\n",
                static_cast<unsigned long long>(Bytes),
                Align.isDivisible(Bytes) ? "is " : "is NOT");

  // The paper's closing §9 loop: i % 100 == 0 with no multiply or divide
  // in the loop — just an addition and a compare per iteration.
  const uint32_t DInv = static_cast<uint32_t>((19ull * (1ull << 32) + 1) / 25);
  const uint32_t QMax = static_cast<uint32_t>(((1ull << 31) - 48) / 25);
  int Centuries = 0;
  uint32_t Test = QMax;
  for (int32_t I = 0; I < 1000000; ++I, Test += DInv)
    if (Test <= 2 * QMax && (Test & 3) == 0)
      ++Centuries;
  std::printf("multiples of 100 in [0, 1000000): %d (expected 10000)\n",
              Centuries);
  return AllGood && Centuries == 10000 ? 0 : 1;
}
