//===- examples/compiler_pass.cpp - The §10 lowering pass in action -------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// §10 describes integrating the algorithms into GCC's machine-
// independent code generation. This example plays the compiler: a
// "frontend" builds IR for an Adler-32-style checksum step — two
// remainders by the prime 65521 plus a byte extraction by 256 — using
// generic rem opcodes; the lowering pass then rewrites them into
// multiply sequences. We print before/after listings, verify the two
// programs agree over a sweep, and price both on the 1994 machines.
//
//===----------------------------------------------------------------------===//

#include "arch/CostModel.h"
#include "codegen/DivisionLowering.h"
#include "ir/AsmPrinter.h"
#include "ir/Builder.h"
#include "ir/Interp.h"
#include "jit/JitDivider.h"

#include <chrono>
#include <cstdio>
#include <random>

using namespace gmdiv;

int main() {
  // Frontend output: one checksum step
  //   a' = (a + byte) % 65521,  b' = (b + a') % 65521
  // with byte = n % 256 extracted from the third input.
  ir::Builder B(32, 3);
  const int A = B.arg(0, "running sum a");
  const int Bb = B.arg(1, "running sum b");
  const int N = B.arg(2, "input word");
  const int Prime = B.constant(65521, "largest prime below 2^16");
  const int Byte = B.remU(N, B.constant(256), "low byte of the input");
  const int A2 = B.remU(B.add(A, Byte), Prime, "a' = (a + byte) mod p");
  const int B2 = B.remU(B.add(Bb, A2), Prime, "b' = (b + a') mod p");
  B.markResult(A2, "a'");
  B.markResult(B2, "b'");
  const ir::Program Frontend = B.take();

  std::printf("=== frontend IR (generic remainders) ===\n%s\n",
              ir::formatProgram(Frontend).c_str());

  codegen::LoweringStats Stats;
  const ir::Program Lowered =
      codegen::lowerDivisions(Frontend, codegen::GenOptions(), &Stats);
  std::printf("=== after the §10 lowering pass (%d divisions "
              "eliminated) ===\n%s\n",
              Stats.total(), ir::formatProgram(Lowered).c_str());

  // Equivalence sweep.
  std::mt19937_64 Rng(7);
  for (int I = 0; I < 1000000; ++I) {
    const std::vector<uint64_t> Args = {Rng() & 0xffffffff,
                                        Rng() & 0xffffffff,
                                        Rng() & 0xffffffff};
    if (ir::run(Frontend, Args) != ir::run(Lowered, Args)) {
      std::printf("MISMATCH!\n");
      return 1;
    }
  }
  std::printf("1,000,000 random checksum steps agree\n\n");

  std::printf("%-24s %12s %12s %9s\n", "architecture", "before cyc",
              "after cyc", "speedup");
  for (const arch::ArchProfile &Profile : arch::table11Profiles()) {
    if (Profile.WordBits != 32)
      continue;
    const double Before = arch::estimateCost(Frontend, Profile).Cycles;
    const double After = arch::estimateCost(Lowered, Profile).Cycles;
    std::printf("%-24s %12.1f %12.1f %8.1fx\n", Profile.Name.c_str(),
                Before, After, Before / After);
  }

  // The 2026 version of the same integration: route each constant-
  // divisor site through a JitDivider, so the lowered sequences run as
  // native code instead of a cost-model estimate. On hosts without the
  // backend both sites transparently interpret — same results, no
  // #ifdef here.
  const jit::JitDivider<uint32_t> ByPrime(65521);
  const jit::JitDivider<uint32_t> By256(256);
  std::printf("\n=== the same sites through the JIT (%s backend) ===\n",
              ByPrime.backend());
  std::printf("  %s\n  %s\n", ByPrime.describe().c_str(),
              By256.describe().c_str());

  const auto StepJit = [&](uint32_t &A0, uint32_t &B0, uint32_t In) {
    const uint32_t Byte = By256.remainder(In);
    A0 = ByPrime.remainder(A0 + Byte);
    B0 = ByPrime.remainder(B0 + A0);
  };

  // Agreement first, timing second.
  {
    std::vector<uint64_t> Args(3), Scratch, Results;
    uint32_t A0 = 1, B0 = 0;
    std::mt19937_64 Check(11);
    for (int I = 0; I < 100000; ++I) {
      const uint32_t In = static_cast<uint32_t>(Check());
      Args[0] = A0;
      Args[1] = B0;
      Args[2] = In;
      ir::runScratch(Frontend, Args, Scratch, Results);
      StepJit(A0, B0, In);
      if (Results[0] != A0 || Results[1] != B0) {
        std::printf("JIT/IR MISMATCH!\n");
        return 1;
      }
    }
    std::printf("100,000 checksum steps agree with the frontend IR\n");
  }

  using Clock = std::chrono::steady_clock;
  constexpr int Steps = 1000000;
  const auto TimeSteps = [&](auto &&Step) {
    uint32_t A0 = 1, B0 = 0;
    uint64_t State = 0x9E3779B97F4A7C15ull;
    const auto Start = Clock::now();
    for (int I = 0; I < Steps; ++I) {
      State ^= State << 13;
      State ^= State >> 7;
      State ^= State << 17;
      Step(A0, B0, static_cast<uint32_t>(State));
    }
    const double Ns = std::chrono::duration<double, std::nano>(
                          Clock::now() - Start)
                          .count() /
                      Steps;
    // Fold the state in so the loop cannot be discarded.
    volatile uint32_t Sink = A0 ^ B0;
    (void)Sink;
    return Ns;
  };

  std::vector<uint64_t> Args(3), Scratch, Results;
  const double InterpNs = TimeSteps(
      [&](uint32_t &A0, uint32_t &B0, uint32_t In) {
        Args[0] = A0;
        Args[1] = B0;
        Args[2] = In;
        ir::runScratch(Frontend, Args, Scratch, Results);
        A0 = static_cast<uint32_t>(Results[0]);
        B0 = static_cast<uint32_t>(Results[1]);
      });
  // Volatile divisors so the C++ compiler cannot run its own version
  // of this pass: this is the div-instruction code a compiler emits
  // when the divisor is not a visible constant.
  volatile uint32_t RtPrime = 65521, Rt256 = 256;
  const double HwNs = TimeSteps(
      [&](uint32_t &A0, uint32_t &B0, uint32_t In) {
        const uint32_t Byte = In % Rt256;
        A0 = (A0 + Byte) % RtPrime;
        B0 = (B0 + A0) % RtPrime;
      });
  const double JitNs = TimeSteps(StepJit);

  std::printf("per checksum step over %d dependent steps:\n", Steps);
  std::printf("  %-28s %8.1f ns/step\n", "frontend IR on ir::Interp",
              InterpNs);
  std::printf("  %-28s %8.1f ns/step\n", "hardware div instructions",
              HwNs);
  std::printf("  %-28s %8.1f ns/step  (%.1fx vs interpreter, %.2fx vs "
              "hardware)\n",
              ByPrime.usesJit() ? "JitDivider (native code)"
                                : "JitDivider (interp fallback)",
              JitNs, InterpNs / JitNs, HwNs / JitNs);
  return 0;
}
