//===- examples/compiler_pass.cpp - The §10 lowering pass in action -------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// §10 describes integrating the algorithms into GCC's machine-
// independent code generation. This example plays the compiler: a
// "frontend" builds IR for an Adler-32-style checksum step — two
// remainders by the prime 65521 plus a byte extraction by 256 — using
// generic rem opcodes; the lowering pass then rewrites them into
// multiply sequences. We print before/after listings, verify the two
// programs agree over a sweep, and price both on the 1994 machines.
//
//===----------------------------------------------------------------------===//

#include "arch/CostModel.h"
#include "codegen/DivisionLowering.h"
#include "ir/AsmPrinter.h"
#include "ir/Builder.h"
#include "ir/Interp.h"

#include <cstdio>
#include <random>

using namespace gmdiv;

int main() {
  // Frontend output: one checksum step
  //   a' = (a + byte) % 65521,  b' = (b + a') % 65521
  // with byte = n % 256 extracted from the third input.
  ir::Builder B(32, 3);
  const int A = B.arg(0, "running sum a");
  const int Bb = B.arg(1, "running sum b");
  const int N = B.arg(2, "input word");
  const int Prime = B.constant(65521, "largest prime below 2^16");
  const int Byte = B.remU(N, B.constant(256), "low byte of the input");
  const int A2 = B.remU(B.add(A, Byte), Prime, "a' = (a + byte) mod p");
  const int B2 = B.remU(B.add(Bb, A2), Prime, "b' = (b + a') mod p");
  B.markResult(A2, "a'");
  B.markResult(B2, "b'");
  const ir::Program Frontend = B.take();

  std::printf("=== frontend IR (generic remainders) ===\n%s\n",
              ir::formatProgram(Frontend).c_str());

  codegen::LoweringStats Stats;
  const ir::Program Lowered =
      codegen::lowerDivisions(Frontend, codegen::GenOptions(), &Stats);
  std::printf("=== after the §10 lowering pass (%d divisions "
              "eliminated) ===\n%s\n",
              Stats.total(), ir::formatProgram(Lowered).c_str());

  // Equivalence sweep.
  std::mt19937_64 Rng(7);
  for (int I = 0; I < 1000000; ++I) {
    const std::vector<uint64_t> Args = {Rng() & 0xffffffff,
                                        Rng() & 0xffffffff,
                                        Rng() & 0xffffffff};
    if (ir::run(Frontend, Args) != ir::run(Lowered, Args)) {
      std::printf("MISMATCH!\n");
      return 1;
    }
  }
  std::printf("1,000,000 random checksum steps agree\n\n");

  std::printf("%-24s %12s %12s %9s\n", "architecture", "before cyc",
              "after cyc", "speedup");
  for (const arch::ArchProfile &Profile : arch::table11Profiles()) {
    if (Profile.WordBits != 32)
      continue;
    const double Before = arch::estimateCost(Frontend, Profile).Cycles;
    const double After = arch::estimateCost(Lowered, Profile).Cycles;
    std::printf("%-24s %12.1f %12.1f %8.1fx\n", Profile.Name.c_str(),
                Before, After, Before / After);
  }
  return 0;
}
