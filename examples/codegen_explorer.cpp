//===- examples/codegen_explorer.cpp - Inspect generated sequences --------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Usage: codegen_explorer [divisor] [width] [signed|unsigned|floor]
//
// Shows what a compiler armed with the paper's algorithms would emit for
// division by the given constant: which paper case fired (taken from the
// generator's own remark stream, so the explanation can never drift from
// the generated code), the optimized sequence, and its estimated cost
// and speedup on each CPU of Table 1.1.
//
//===----------------------------------------------------------------------===//

#include "arch/CostModel.h"
#include "codegen/DivCodeGen.h"
#include "ir/AsmPrinter.h"
#include "telemetry/Remarks.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace gmdiv;

int main(int Argc, char **Argv) {
  const int64_t Divisor = Argc > 1 ? std::strtoll(Argv[1], nullptr, 0) : 10;
  const int Width = Argc > 2 ? std::atoi(Argv[2]) : 32;
  const char *Mode = Argc > 3 ? Argv[3] : "unsigned";
  if (Divisor == 0 || (Width != 8 && Width != 16 && Width != 32 &&
                       Width != 64)) {
    std::fprintf(stderr,
                 "usage: %s [divisor!=0] [8|16|32|64] "
                 "[signed|unsigned|floor]\n",
                 Argv[0]);
    return 1;
  }

  // Collect the generator's remarks: each gen* entry point reports the
  // paper figure/case it selected plus the chosen magic constants, so
  // there is nothing to re-derive here.
  telemetry::CollectingRemarkSink Remarks;
  ir::Program P = [&] {
    telemetry::ScopedRemarkSink Guard(&Remarks);
    if (std::strcmp(Mode, "signed") == 0)
      return codegen::genSignedDivRem(Width, Divisor);
    if (std::strcmp(Mode, "floor") == 0)
      return codegen::genFloorDivMod(Width, Divisor);
    return codegen::genUnsignedDivRem(Width,
                                      static_cast<uint64_t>(Divisor));
  }();

  for (const telemetry::Remark &R : Remarks.remarks())
    std::printf("%s\n", R.message().c_str());

  std::printf("\ngenerated %d-bit %s division by %lld:\n%s\n", Width, Mode,
              static_cast<long long>(Divisor),
              ir::formatProgram(P).c_str());

  std::printf("%-24s %10s %12s %9s\n", "architecture", "seq cycles",
              "divide", "speedup");
  for (const arch::ArchProfile &Profile : arch::table11Profiles()) {
    const arch::SequenceCost Cost = arch::estimateCost(P, Profile);
    std::printf("%-24s %10.1f %11.1f%s %8.1fx\n", Profile.Name.c_str(),
                Cost.Cycles, Profile.divCycles(),
                Profile.Divide.Kind == arch::CostKind::Software ? "s" : " ",
                arch::estimateSpeedup(P, Profile));
  }
  return 0;
}
