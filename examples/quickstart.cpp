//===- examples/quickstart.cpp - Tour of the gmdiv public API -------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// A five-minute tour: every divider the paper defines, plus the compiler
// side (generate the optimized sequence for a constant divisor, print
// it, execute it, and price it on a 1994 CPU).
//
//===----------------------------------------------------------------------===//

#include "arch/CostModel.h"
#include "codegen/DivCodeGen.h"
#include "core/Divider.h"
#include "core/DWordDivider.h"
#include "core/ExactDiv.h"
#include "core/FloatDiv.h"
#include "ir/AsmPrinter.h"
#include "ir/Interp.h"

#include <cstdio>

using namespace gmdiv;

int main() {
  std::printf("gmdiv quickstart — division by invariant integers using "
              "multiplication\n\n");

  // 1. Unsigned division (Figure 4.1): precompute once, divide forever.
  UnsignedDivider<uint32_t> By10(10);
  std::printf("[unsigned]   123456789 / 10  = %u, rem %u\n",
              By10.divide(123456789u), By10.remainder(123456789u));

  // 2. Signed division rounding toward zero (Figure 5.1) — C semantics.
  SignedDivider<int32_t> ByMinus7(-7);
  std::printf("[signed]     -50 / -7        = %d, rem %d\n",
              ByMinus7.divide(-50), ByMinus7.remainder(-50));

  // 3. Floor and ceiling division (§6) — Fortran MODULO semantics.
  FloorDivider<int32_t> Floor10(10);
  CeilDivider<int32_t> Ceil10(10);
  std::printf("[floor/ceil] -123 div 10     = %d (floor), %d (ceil), "
              "mod %d\n",
              Floor10.divide(-123), Ceil10.divide(-123),
              Floor10.modulo(-123));

  // 4. Doubleword by word (§8, Figure 8.1) — the multi-precision
  //    primitive: divide a 128-bit value by an invariant 64-bit word.
  DWordDivider<uint64_t> Wide(1000000007ull);
  const UInt128 Big = UInt128::fromHalves(0x12345, 0x6789abcdef012345ull);
  auto [WideQ, WideR] = Wide.divRem(Big);
  std::printf("[dword]      %s / 1000000007 = %llu, rem %llu\n",
              Big.toString().c_str(),
              static_cast<unsigned long long>(WideQ),
              static_cast<unsigned long long>(WideR));

  // 5. Exact division (§9): when the remainder is known to be zero, one
  //    MULL by the modular inverse suffices — no high multiply at all.
  ExactSignedDivider<int64_t> BySize(48);
  std::printf("[exact]      4800 / 48       = %lld (via inverse 0x%llx)\n",
              static_cast<long long>(BySize.divideExact(4800)),
              static_cast<unsigned long long>(BySize.inverse()));
  ExactUnsignedDivider<uint32_t> Div100(100);
  std::printf("[divisible]  1234500 %% 100 == 0? %s;  1234501? %s\n",
              Div100.isDivisible(1234500) ? "yes" : "no",
              Div100.isDivisible(1234501) ? "yes" : "no");

  // 6. Floating-point division (§7): exact quotients from one FP divide
  //    for word sizes up to F-3 bits.
  FloatDivider<int32_t> Fp7(7);
  std::printf("[float]      -100 / 7        = %d\n", Fp7.divide(-100));

  // 7. The compiler view: generate the Figure 4.2 sequence for n/10,
  //    print it, run it, and price it on a 1994 machine.
  const ir::Program P = codegen::genUnsignedDivRem(32, 10);
  std::printf("\ngenerated 32-bit code for q = n/10, r = n%%10 "
              "(Figure 4.2):\n%s", ir::formatProgram(P).c_str());
  std::printf("check: n = 98765 => q = %llu, r = %llu\n",
              static_cast<unsigned long long>(ir::run(P, {98765})[0]),
              static_cast<unsigned long long>(ir::run(P, {98765})[1]));

  for (const char *Name : {"Intel Pentium", "MIPS R4000", "SPARC Viking"}) {
    const arch::ArchProfile &Profile = arch::profileByName(Name);
    const arch::SequenceCost Cost = arch::estimateCost(P, Profile);
    std::printf("on %-16s: %5.1f cycles vs %5.1f-cycle divide => "
                "%.1fx speedup\n",
                Name, Cost.Cycles, Profile.divCycles(),
                arch::estimateSpeedup(P, Profile));
  }
  return 0;
}
