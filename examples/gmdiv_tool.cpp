//===- examples/gmdiv_tool.cpp - Multi-command driver ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// A compiler-driver-style utility exposing the whole pipeline:
//
//   gmdiv_tool magic <d> [width]         CHOOSE_MULTIPLIER outputs plus
//                                        the §9 inverse, libdivide-style.
//   gmdiv_tool codegen <d> [width] [u|s|floor|exact|alverson]
//                                        print the generated IR.
//   gmdiv_tool asm <d> [width] [mips|sparc|alpha|power]
//                                        select + allocate + emit
//                                        target assembly.
//   gmdiv_tool jit <d> [width] [u|s|floor]
//                                        run the JIT pipeline: print the
//                                        scheduled IR, then the emitted
//                                        x86-64 bytes annotated per IR
//                                        op, then execute a few sample
//                                        inputs against the interpreter.
//   gmdiv_tool lower                     read IR with divu/divs/remu/rems
//                                        from stdin, run the §10 pass,
//                                        print the result.
//   gmdiv_tool batch <d> [width] [u|s] [count]
//                                        batch/SIMD kernels: backend
//                                        dispatch report, self-check
//                                        against Divider.h, throughput
//                                        compare, break-even table.
//   gmdiv_tool family <op> <width> <d> [target] [batch]
//                                        cross-family auto-selection:
//                                        price gm / fastmod / roundup /
//                                        narrow / hwdiv for the op on a
//                                        Table 1.1 target (default
//                                        "MIPS R4000"), print each
//                                        family's multiplier width and
//                                        cycle estimate, the chosen
//                                        family, and a live host
//                                        cross-check of all families
//                                        against hardware division.
//   gmdiv_tool verify [--seconds S] [--seed X] [--full]
//                                        differential verification: the
//                                        exhaustive parameterized-N
//                                        sweeps, then the boundary-
//                                        biased fuzzer for the rest of
//                                        the budget; JSON summary on
//                                        stdout, exit 1 on mismatch.
//   gmdiv_tool verify --replay <repro>   re-run one gmdiv:v1 repro.
//   gmdiv_tool bench-diff <old.json> <new.json> [--threshold F] [--json]
//                                        compare two gmdiv-bench-v2
//                                        reports; exit 1 when any
//                                        benchmark regressed beyond
//                                        threshold + noise.
//   gmdiv_tool metrics [prom|json] [--exercise]
//                                        one-shot metrics snapshot in
//                                        Prometheus text 0.0.4 (default)
//                                        or JSON; --exercise runs a tiny
//                                        batch + JIT workload first so
//                                        the instruments have data.
//   gmdiv_tool top [--keys K] [--ops N]  drive a skewed synthetic
//                                        workload through the divider
//                                        registry and the JIT cache,
//                                        then print each heavy-hitter
//                                        sketch as a ranked table,
//                                        cross-referenced against the
//                                        underlying eviction counters.
//   gmdiv_tool service [--threads N] [--keys K] [--ops M]
//                      [--seconds S] [--batch B] [--workers W]
//                                        hammer the divider registry
//                                        from N threads over K mixed
//                                        keys (M ops/thread, or until S
//                                        seconds elapse), self-checking
//                                        against hardware division,
//                                        then push B batch jobs through
//                                        the async front door; prints
//                                        the registry metrics summary,
//                                        exit 1 on any mismatch.
//
// Global telemetry flags (usable with any command; all write stderr so
// stdout stays a clean IR/assembly listing):
//
//   --remarks=json|text   stream one remark per generated sequence.
//   --stats               print the counter registry as one JSON line
//                         after the command finishes (plus a second
//                         line of latency histograms when any fired,
//                         plus JIT cache occupancy/hit-rate summary
//                         lines when the cache was touched).
//   --trace=FILE          record tracing spans and write a Chrome
//                         trace-event JSON file on exit (load it in
//                         Perfetto or about:tracing).
//   --metrics=FILE        write a metrics snapshot on exit (format by
//                         extension: .json = JSON, else Prometheus).
//   --profile=FILE        arm the SIGPROF sampling profiler for the
//                         whole command (GMDIV_PROF_HZ, default 97 Hz)
//                         and write collapsed stacks on exit.
//
//===----------------------------------------------------------------------===//

#include "arch/Arch.h"
#include "arch/CostModel.h"
#include "arch/FamilySelect.h"
#include "arch/Target.h"
#include "core/FastModDivider.h"
#include "core/NarrowDivider.h"
#include "core/RoundUpDivider.h"
#include "batch/BatchDivider.h"
#include "codegen/DivCodeGen.h"
#include "core/Divider.h"
#include "codegen/DivisionLowering.h"
#include "core/ChooseMultiplier.h"
#include "numtheory/ModArith.h"
#include "ir/AsmPrinter.h"
#include "ir/Parser.h"
#include "jit/JitBatchDivider.h"
#include "jit/JitDivider.h"
#include "metrics/Exporter.h"
#include "metrics/Exposition.h"
#include "metrics/FlightRecorder.h"
#include "metrics/Metrics.h"
#include "ops/Bits.h"
#include "prof/Profiler.h"
#include "service/BatchService.h"
#include "service/Registry.h"
#include "telemetry/BenchReport.h"
#include "telemetry/Histogram.h"
#include "telemetry/Json.h"
#include "telemetry/Remarks.h"
#include "telemetry/Stats.h"
#include "trace/HwCounters.h"
#include "trace/Trace.h"
#include "verify/Fuzzer.h"
#include "verify/Verify.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

using namespace gmdiv;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s magic <d> [8|16|32|64]\n"
               "  %s codegen <d> [8|16|32|64] [u|s|floor|exact|alverson]\n"
               "  %s asm <d> [32|64] [mips|sparc|alpha|power]\n"
               "  %s jit <d> [8|16|32|64] [u|s|floor] [--batch <n>]\n"
               "  %s lower [width] [numargs]   (IR on stdin)\n"
               "  %s batch <d> [8|16|32|64] [u|s] [count]\n"
               "  %s family <divide|rem|divrem|divisible> <8|16|32|64> <d> "
               "[target-name] [batch-size]\n"
               "  %s verify [--seconds S] [--seed X] [--full]\n"
               "  %s verify --replay <repro-string>\n"
               "  %s bench-diff <old.json> <new.json> [--threshold F] "
               "[--json]\n"
               "  %s metrics [prom|json] [--exercise]\n"
               "  %s service [--threads N] [--keys K] [--ops M] "
               "[--seconds S] [--batch B] [--workers W]\n"
               "  %s top [--keys K] [--ops N]\n"
               "global flags (telemetry, on stderr):\n"
               "  --remarks=json|text   one remark per generated sequence\n"
               "  --stats               counter registry as one JSON line "
               "(+ JIT cache summary)\n"
               "  --trace=FILE          write a Chrome trace-event JSON "
               "file\n"
               "  --metrics=FILE        write a metrics snapshot on exit "
               "(.json = JSON, else Prometheus)\n"
               "  --profile=FILE        sampling profiler on; write "
               "collapsed stacks on exit\n",
               Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0,
               Argv0, Argv0, Argv0, Argv0, Argv0);
  return 1;
}

template <typename UWord> void printMagic(UWord D) {
  constexpr int Bits = WordTraits<UWord>::Bits;
  const MultiplierInfo<UWord> Unsigned = chooseMultiplier<UWord>(D, Bits);
  std::printf("CHOOSE_MULTIPLIER(%llu, %d)   [unsigned]:\n",
              static_cast<unsigned long long>(D), Bits);
  if constexpr (Bits == 64)
    std::printf("  m = %s%s\n", Unsigned.Multiplier.toString().c_str(),
                Unsigned.fitsInWord() ? "" : "  (>= 2^N: long sequence)");
  else
    std::printf("  m = %llu%s\n",
                static_cast<unsigned long long>(Unsigned.Multiplier),
                Unsigned.fitsInWord() ? "" : "  (>= 2^N: long sequence)");
  std::printf("  sh_post = %d, l = %d\n", Unsigned.ShiftPost,
              Unsigned.Log2Ceil);

  const MultiplierInfo<UWord> Signed = chooseMultiplier<UWord>(D, Bits - 1);
  std::printf("CHOOSE_MULTIPLIER(%llu, %d)   [signed]:\n",
              static_cast<unsigned long long>(D), Bits - 1);
  if constexpr (Bits == 64)
    std::printf("  m = %s, sh_post = %d\n",
                Signed.Multiplier.toString().c_str(), Signed.ShiftPost);
  else
    std::printf("  m = %llu, sh_post = %d\n",
                static_cast<unsigned long long>(Signed.Multiplier),
                Signed.ShiftPost);

  const int E = countTrailingZeros(D);
  const UWord DOdd = static_cast<UWord>(D >> E);
  if (DOdd > 1) {
    std::printf("exact-division inverse (§9): d = 2^%d * %llu, "
                "d_inv = 0x%llx\n",
                E, static_cast<unsigned long long>(DOdd),
                static_cast<unsigned long long>(modInverseNewton(DOdd)));
  } else {
    std::printf("d is a power of two: divisibility is a mask test\n");
  }
}

/// The `batch` command body for one lane type: dispatch report,
/// self-check of every available backend against the per-element
/// dividers, a throughput comparison on the active backend, and the
/// cost-model break-even table. Returns nonzero on any mismatch.
template <typename T> int runBatch(T D, size_t Count) {
  using batch::Backend;
  std::printf("compiled backends:");
  for (Backend B : batch::compiledBackends())
    std::printf(" %s%s", batch::backendName(B),
                batch::backendAvailable(B) ? ""
                                           : " (unsupported by this CPU)");
  std::printf("\nactive backend:   %s\n",
              batch::backendName(batch::activeBackend()));

  const batch::BatchDivider<T> Div(D);
  std::printf("%s\n\n", Div.describe().c_str());

  // Self-check: every available backend against Divider.h, on a buffer
  // size that forces the SIMD kernels through their scalar tails.
  using Ref = std::conditional_t<std::is_signed_v<T>, SignedDivider<T>,
                                 UnsignedDivider<T>>;
  const Ref Scalar(D);
  std::vector<T> In(Count), Quot(Count), Rem(Count);
  uint64_t State = 0x2545F4914F6CDD1Dull;
  for (T &Value : In) {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    Value = static_cast<T>(State);
  }
  int Mismatches = 0;
  for (Backend B : batch::compiledBackends()) {
    if (!batch::backendAvailable(B))
      continue;
    const batch::BatchDivider<T> Pinned(D, B);
    Pinned.divRem(In.data(), Quot.data(), Rem.data(), Count);
    for (size_t I = 0; I < Count; ++I)
      if (Quot[I] != Scalar.divide(In[I]) ||
          Rem[I] != Scalar.remainder(In[I]))
        ++Mismatches;
    std::printf("%-6s divRem over %zu elements: %s\n",
                batch::backendName(B), Count,
                Mismatches ? "MISMATCH" : "matches Divider.h");
  }

  // Throughput: the active backend's array call against the same work
  // done through the per-element divider.
  using Clock = std::chrono::steady_clock;
  const auto MePerSec = [&](auto &&Body) {
    size_t Reps = 1;
    for (;;) {
      const auto Start = Clock::now();
      for (size_t R = 0; R < Reps; ++R)
        Body();
      const double Sec =
          std::chrono::duration<double>(Clock::now() - Start).count();
      if (Sec >= 0.01)
        return static_cast<double>(Count) * static_cast<double>(Reps) /
               Sec / 1e6;
      Reps *= 8;
    }
  };
  const double ScalarMeps = MePerSec([&] {
    for (size_t I = 0; I < Count; ++I)
      Quot[I] = Scalar.divide(In[I]);
  });
  const double BatchMeps =
      MePerSec([&] { Div.divide(In.data(), Quot.data(), Count); });
  std::printf("\nthroughput at batch %zu: divider loop %.0f Me/s, "
              "%s batch %.0f Me/s (%.2fx)\n",
              Count, ScalarMeps, batch::backendName(Div.backend()),
              BatchMeps, ScalarMeps > 0 ? BatchMeps / ScalarMeps : 0.0);

  // Paper-style break-even prediction per Table 11 profile.
  constexpr int Bits = static_cast<int>(sizeof(T) * 8);
  std::printf("\ncost-model break-even (%d-bit lanes, 128/256-bit "
              "vectors):\n",
              Bits);
  for (const arch::ArchProfile &Profile : arch::table11Profiles()) {
    const arch::BatchCost V128 = arch::estimateBatchCost(Bits, Profile, 128);
    const arch::BatchCost V256 = arch::estimateBatchCost(Bits, Profile, 256);
    std::printf("  %-18s 128b: %.2fx, break-even %zu; "
                "256b: %.2fx, break-even %zu\n",
                Profile.Name.c_str(), V128.speedup(), V128.breakEvenBatch(),
                V256.speedup(), V256.breakEvenBatch());
  }
  return Mismatches ? 1 : 0;
}

/// Annotated hex listing, the `jit` command's format: each IR
/// instruction (or a \p CtrlLabel marker for emitter-inserted lines) as
/// a comment above the machine instructions emitted for it.
void printAsmListing(const ir::Program &P, const std::vector<uint8_t> &Code,
                     const std::vector<jit::AsmLine> &Lines,
                     const char *CtrlLabel) {
  int LastIr = -2;
  bool SeenBody = false;
  for (const jit::AsmLine &Line : Lines) {
    if (Line.IrIndex != LastIr) {
      if (Line.IrIndex < 0)
        std::printf("; %s\n", SeenBody ? CtrlLabel : "prologue");
      else
        std::printf("; %s\n", ir::formatInstr(P, Line.IrIndex).c_str());
      LastIr = Line.IrIndex;
      SeenBody = SeenBody || Line.IrIndex >= 0;
    }
    std::string Bytes;
    for (size_t I = 0; I < Line.NumBytes; ++I) {
      char Hex[4];
      std::snprintf(Hex, sizeof(Hex), "%02x ", Code[Line.Offset + I]);
      Bytes += Hex;
    }
    std::printf("  %04zx: %-33s %s\n", Line.Offset, Bytes.c_str(),
                Line.Text.c_str());
  }
}

/// The `jit --batch <n>` mode body for one lane type: emit the
/// divisor's vector loop and print its annotated listing, then
/// cross-check the live JitBatchDivider (jitted loop + static tail)
/// against the static batch kernels and ir::Interp over \p Count
/// elements, and close with the divisor-specialized cost model.
/// Returns nonzero on any mismatch.
template <typename T> int runJitBatch(T D, size_t Count) {
  constexpr int Bits = static_cast<int>(sizeof(T) * 8);
  constexpr bool IsSigned = std::is_signed_v<T>;
  using UWord = std::make_unsigned_t<T>;
  const uint64_t Mask = Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
  const uint64_t DBits = static_cast<uint64_t>(static_cast<UWord>(D));

  const jit::SeqKind Seq =
      IsSigned ? jit::SeqKind::SDivRem : jit::SeqKind::UDivRem;
  const ir::Program Prepared =
      jit::prepareForJit(jit::genSequence(Seq, Bits, DBits));

  jit::VectorIsa Isa = jit::VectorIsa::Avx2;
  if (!jit::vectorJitIsa(Isa)) {
    std::printf("; vector jit unavailable (%s) — batch runs on the "
                "static %s kernels\n",
                !jit::hostSupported() ? "host is not x86-64"
                : !jit::enabled()     ? "GMDIV_NO_JIT=1"
                                      : "GMDIV_JIT_VECTOR=0 or no AVX2",
                batch::backendName(batch::activeBackend()));
  } else {
    jit::VectorEmitOptions Opts;
    Opts.Isa = Isa;
    const jit::VectorEmitResult Emitted =
        jit::emitX86VectorLoop(Prepared, Opts);
    if (!Emitted.Ok) {
      std::printf("; vector emitter bailed: %s — batch runs on the "
                  "static kernels\n",
                  Emitted.Error.c_str());
    } else {
      std::printf("; %s d=%lld N=%d — %s loop, %d x %d-bit lanes, "
                  "unroll %d (%zu bytes):\n",
                  jit::seqKindName(Seq), static_cast<long long>(D), Bits,
                  jit::vectorIsaName(Emitted.Shape.Isa), Emitted.Shape.Lanes,
                  Emitted.Shape.ContainerBits, Emitted.Shape.Unroll,
                  Emitted.Code.size());
      printAsmListing(Prepared, Emitted.Code, Emitted.Lines, "loop control");
    }
  }

  // Live cross-check through the real front door.
  const jit::JitBatchDivider<T> Jit(D);
  std::printf("; %s\n", Jit.describe().c_str());

  std::vector<T> In(Count);
  uint64_t State = 0x9E3779B97F4A7C15ull;
  for (T &Value : In) {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    Value = static_cast<T>(State);
  }
  // Pin the corners: all-ones, the signed extremes, one exact multiple.
  if (Count > 0)
    In[0] = static_cast<T>(Mask);
  if (Count > 1)
    In[1] = static_cast<T>(Mask >> 1);
  if (Count > 2)
    In[2] = static_cast<T>((Mask >> 1) + 1);
  if (Count > 3)
    In[3] = D;

  std::vector<T> QJ(Count), RJ(Count), QS(Count), RS(Count);
  Jit.divRem(In.data(), QJ.data(), RJ.data(), Count);
  Jit.fallback().divRem(In.data(), QS.data(), RS.data(), Count);

  size_t StaticMismatches = 0, InterpMismatches = 0;
  std::vector<uint64_t> Args(1), Scratch, Want;
  for (size_t I = 0; I < Count; ++I) {
    if (QJ[I] != QS[I] || RJ[I] != RS[I])
      ++StaticMismatches;
    Args[0] = static_cast<uint64_t>(static_cast<UWord>(In[I]));
    ir::runScratch(Prepared, Args, Scratch, Want);
    if (static_cast<uint64_t>(static_cast<UWord>(QJ[I])) != Want[0] ||
        static_cast<uint64_t>(static_cast<UWord>(RJ[I])) != Want[1])
      ++InterpMismatches;
  }
  std::printf("; divRem over %zu elements: %s static %s kernels, "
              "%s ir::Interp\n",
              Count, StaticMismatches ? "MISMATCHES" : "matches",
              batch::backendName(Jit.fallback().backend()),
              InterpMismatches ? "MISMATCHES" : "matches");

  size_t DivisMismatches = 0;
  if constexpr (!IsSigned) {
    std::vector<uint8_t> FJ(Count, 0xAA), FS(Count, 0x55);
    Jit.divisible(In.data(), FJ.data(), Count);
    Jit.fallback().divisible(In.data(), FS.data(), Count);
    for (size_t I = 0; I < Count; ++I)
      if (FJ[I] != FS[I])
        ++DivisMismatches;
    std::printf("; divisible over %zu elements: %s static kernels\n", Count,
                DivisMismatches ? "MISMATCHES" : "matches");
  }

  // The divisor-specialized pricing next to the divisor-agnostic one:
  // why the dispatch prefers the jitted loop for this d.
  const uint64_t Magnitude =
      IsSigned && D < 0 ? (~DBits + 1) & Mask : DBits;
  std::printf("\ncost-model (%d-bit lanes, 256-bit vectors, |d|=%llu):\n",
              Bits, static_cast<unsigned long long>(Magnitude));
  for (const arch::ArchProfile &Profile : arch::table11Profiles()) {
    const arch::BatchCost Static = arch::estimateBatchCost(Bits, Profile, 256);
    const arch::BatchCost Jitted =
        arch::estimateJitBatchCost(Bits, Profile, 256, Magnitude);
    std::printf("  %-18s static %.2fx, jitted %.2fx, jit break-even %zu\n",
                Profile.Name.c_str(), Static.speedup(), Jitted.speedup(),
                Jitted.breakEvenBatch());
  }
  return StaticMismatches + InterpMismatches + DivisMismatches ? 1 : 0;
}

/// A tiny deterministic workload for `metrics --exercise`: a few batch
/// kernel calls straddling the break-even hint plus repeated JIT cache
/// lookups, so a fresh process produces a snapshot with live series.
void exerciseMetrics() {
  batch::BatchDivider<uint32_t> Div(7);
  std::vector<uint32_t> In(64), Out(64);
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint32_t>(I * 2654435761u);
  Div.divide(In.data(), Out.data(), In.size());
  Div.remainder(In.data(), Out.data(), 4); // Below the break-even hint.
  for (const uint64_t D : {uint64_t{3}, uint64_t{7}, uint64_t{10}})
    for (int Round = 0; Round < 2; ++Round) // Miss, then hit.
      jit::compileCached(jit::CodeCache::global(),
                         {jit::SeqKind::UDivRem, 32, D});
}

/// --stats companion: JIT cache occupancy and hit rate, aggregate plus
/// any shard that saw traffic. Silent when the cache was never touched
/// so non-JIT commands keep their current --stats output.
void printJitCacheSummary() {
  const jit::CodeCache &Cache = jit::CodeCache::global();
  const jit::CacheStats Total = Cache.stats();
  if (Total.Hits + Total.Misses == 0 && Total.Entries == 0)
    return;
  std::fprintf(stderr,
               "jit cache: %zu/%zu entries, hits %llu (negative %llu), "
               "misses %llu, evictions %llu, hit rate %.1f%%\n",
               Total.Entries, Total.Capacity,
               static_cast<unsigned long long>(Total.Hits),
               static_cast<unsigned long long>(Total.NegativeHits),
               static_cast<unsigned long long>(Total.Misses),
               static_cast<unsigned long long>(Total.Evictions),
               100.0 * Total.hitRatio());
  const jit::CacheStats Vector = Cache.formStats(cache::KernelForm::Vector);
  if (Vector.Hits + Vector.Misses) {
    const jit::CacheStats Scalar = Cache.formStats(cache::KernelForm::Scalar);
    std::fprintf(stderr,
                 "  by form: scalar %llu hits / %llu misses, vector "
                 "%llu hits / %llu misses (%llu vector inserts)\n",
                 static_cast<unsigned long long>(Scalar.Hits),
                 static_cast<unsigned long long>(Scalar.Misses),
                 static_cast<unsigned long long>(Vector.Hits),
                 static_cast<unsigned long long>(Vector.Misses),
                 static_cast<unsigned long long>(Vector.Inserts));
  }
  const std::vector<jit::CacheStats> Shards = Cache.shardStats();
  for (size_t I = 0; I < Shards.size(); ++I) {
    const jit::CacheStats &S = Shards[I];
    if (S.Hits + S.Misses == 0 && S.Entries == 0)
      continue;
    std::fprintf(stderr,
                 "  shard %2zu: %zu/%zu entries, hit rate %.1f%%\n", I,
                 S.Entries, S.Capacity, 100.0 * S.hitRatio());
  }
}

/// --stats companion for the service registry, same shape as the JIT
/// cache summary. Silent when the registry was never touched.
void printServiceSummary() {
  service::DividerRegistry &Reg = service::DividerRegistry::global();
  const cache::CacheStats Total = Reg.stats();
  if (Total.Hits + Total.Misses == 0 && Total.Entries == 0)
    return;
  std::fprintf(stderr,
               "service registry: %zu/%zu entries, hits %llu, misses "
               "%llu, evictions %llu, invalid %llu, hit rate %.1f%%\n",
               Total.Entries, Total.Capacity,
               static_cast<unsigned long long>(Total.Hits),
               static_cast<unsigned long long>(Total.Misses),
               static_cast<unsigned long long>(Total.Evictions),
               static_cast<unsigned long long>(Reg.invalidKeys()),
               100.0 * Total.hitRatio());
  const std::vector<cache::CacheStats> Shards = Reg.shardStats();
  for (size_t I = 0; I < Shards.size(); ++I) {
    const cache::CacheStats &S = Shards[I];
    if (S.Hits + S.Misses == 0 && S.Entries == 0)
      continue;
    std::fprintf(stderr,
                 "  shard %2zu: %zu/%zu entries, hit rate %.1f%%\n", I,
                 S.Entries, S.Capacity, 100.0 * S.hitRatio());
  }
}

/// The `service` command body: hammer the global registry from
/// \p Threads threads over \p KeyCount mixed-width keys, self-checking
/// sampled results against hardware division, then pipeline
/// \p BatchJobs array jobs through the async front door. Returns the
/// number of mismatches observed.
uint64_t hammerService(size_t Threads, size_t KeyCount, size_t OpsPerThread,
                       double Seconds, size_t BatchJobs, size_t Workers,
                       uint64_t &OpsOut, double &ElapsedSecOut) {
  service::DividerRegistry &Reg = service::DividerRegistry::global();
  std::atomic<uint64_t> Mismatches{0};
  const auto Start = std::chrono::steady_clock::now();
  const auto Deadline =
      Start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(Seconds));

  std::vector<std::thread> Pool;
  for (size_t T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      uint64_t Rng = 0x5eed + T;
      uint64_t Local = 0, Bad = 0;
      for (size_t I = 0;; ++I) {
        if (Seconds > 0) {
          if ((I & 1023) == 0 &&
              std::chrono::steady_clock::now() >= Deadline)
            break;
        } else if (I >= OpsPerThread) {
          break;
        }
        const uint64_t Mix = cache::mixBits(Rng += 0x9e3779b97f4a7c15ULL);
        const uint64_t D64 = 1 + (Mix % KeyCount);
        service::Key K;
        switch (I % 3) {
        case 0:
          K = service::keyFor<uint32_t>(static_cast<uint32_t>(D64));
          break;
        case 1:
          K = service::keyFor<uint64_t>(D64);
          break;
        default:
          K = service::keyFor<int32_t>(static_cast<int32_t>(D64));
          break;
        }
        if (I % 4 == 0) {
          const auto E = Reg.acquire(K);
          if (!E) {
            ++Bad;
            continue;
          }
          if (I % 256 == 0) {
            // Self-check against hardware division on a sampled op.
            const uint64_t N = Mix >> 1;
            if (K.Kind == service::OpKind::Unsigned && K.WordBits == 64 &&
                E->divideBits(N) != N / D64)
              ++Bad;
          }
          Local += E->remainderBits(Mix);
        } else {
          if (!Reg.withEntry(K, [&](const service::DividerEntry &E) {
                Local += E.remainderBits(Mix);
              }))
            Reg.acquire(K);
        }
      }
      Mismatches.fetch_add(Bad);
      (void)Local;
    });
  }
  for (std::thread &W : Pool)
    W.join();
  // For deadline mode the per-thread loop count is not tracked
  // exactly; derive total ops from the registry counters instead
  // (every op performs exactly one counted lookup/acquire).
  const cache::CacheStats St = Reg.stats();
  OpsOut = St.Hits + St.Misses;

  // Batch front door: pipeline array jobs and spot-check the results.
  if (BatchJobs > 0) {
    service::BatchService::Options BOpts;
    BOpts.Workers = Workers;
    // Function-local static so the service (and the metrics collector
    // exportMetrics registers) outlives this command: the --metrics
    // snapshot is written at main exit and must still see the
    // gmdiv_service_batch_* families, queue_wait_ns included. First
    // touched after the metrics registry singleton, so it is destroyed
    // (workers joined, collector removed) before the registry goes.
    static std::optional<service::BatchService> SvcHolder;
    SvcHolder.emplace(Reg, BOpts);
    service::BatchService &Svc = *SvcHolder;
    Svc.exportMetrics("gmdiv_service_batch");
    constexpr size_t Lanes = 4096;
    std::vector<uint64_t> In(Lanes);
    for (size_t I = 0; I < Lanes; ++I)
      In[I] = cache::mixBits(I + 1);
    std::vector<std::vector<uint64_t>> Outs(BatchJobs);
    std::vector<std::future<service::BatchResult>> Futures;
    for (size_t J = 0; J < BatchJobs; ++J) {
      Outs[J].resize(Lanes);
      Futures.push_back(Svc.submitRemainder<uint64_t>(
          3 + (J % 61), std::span<const uint64_t>(In),
          std::span<uint64_t>(Outs[J])));
    }
    for (size_t J = 0; J < BatchJobs; ++J) {
      Futures[J].get();
      const uint64_t D = 3 + (J % 61);
      for (size_t I = 0; I < Lanes; I += 509)
        if (Outs[J][I] != In[I] % D)
          Mismatches.fetch_add(1);
    }
  }

  ElapsedSecOut =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Mismatches.load();
}

/// The `family` command body for one word type: print the cost-model
/// scorecard selectFamily produced, then cross-check every family's
/// actual divider against hardware division on a boundary-biased input
/// set. Returns nonzero on any disagreement.
template <typename UWord>
int runFamily(arch::DivOp Op, UWord D, const arch::ArchProfile &Target,
              uint64_t BatchSize) {
  constexpr int N = WordTraits<UWord>::Bits;
  const arch::FamilyChoice Choice =
      arch::selectFamily(Op, N, static_cast<uint64_t>(D), Target, BatchSize);

  std::printf("op=%s width=%d d=%llu target=\"%s\" (word=%d, mul=%.1f, "
              "div=%.1f) batch=%llu\n",
              arch::divOpName(Op), N, static_cast<unsigned long long>(D),
              Target.Name.c_str(), Target.WordBits, Target.mulCycles(),
              Target.divCycles(),
              static_cast<unsigned long long>(BatchSize));
  std::printf("%-8s %-6s %9s %9s %9s %9s\n", "family", "m.bits", "cyc/op",
              "setup", "effective", "eligible");
  for (const arch::FamilyCandidate &C : Choice.Candidates) {
    if (C.Eligible)
      std::printf("%-8s %-6d %9.1f %9.1f %9.1f %9s\n",
                  arch::familyName(C.Fam), C.MultiplierBits, C.CyclesPerOp,
                  C.SetupCycles, C.EffectiveCycles, "yes");
    else
      std::printf("%-8s %-6d %9s %9s %9s   no (%s)\n",
                  arch::familyName(C.Fam), C.MultiplierBits, "-", "-", "-",
                  C.Reason.c_str());
  }
  std::printf("chosen: %s\n", arch::familyName(Choice.Chosen));

  // Live cross-check on the host: the portable implementations of all
  // four multiplicative families against the hardware divide, over the
  // same boundary-biased dividends the fuzzer favors.
  const UnsignedDivider<UWord> GM(D);
  const FastModDivider<UWord> FM(D);
  const RoundUpDivider<UWord> RU(D);
  const NarrowDivider<UWord> Nar(D);
  std::printf("  gm:      %s\n", GM.describe().c_str());
  std::printf("  fastmod: %s\n", FM.describe().c_str());
  std::printf("  roundup: %s\n", RU.describe().c_str());
  std::printf("  narrow:  %s\n", Nar.describe().c_str());

  std::vector<UWord> Inputs;
  const UWord MaxN = static_cast<UWord>(~static_cast<UWord>(0));
  for (uint64_t Base :
       {uint64_t{0}, uint64_t{1}, uint64_t{2}, static_cast<uint64_t>(D) - 1,
        static_cast<uint64_t>(D), static_cast<uint64_t>(D) + 1,
        2 * static_cast<uint64_t>(D) - 1, 2 * static_cast<uint64_t>(D),
        static_cast<uint64_t>(MaxN) / 2, static_cast<uint64_t>(MaxN) - 1,
        static_cast<uint64_t>(MaxN)})
    Inputs.push_back(static_cast<UWord>(Base));
  uint64_t X = 0x9e3779b97f4a7c15ull; // deterministic splitmix-style walk
  for (int I = 0; I < 245; ++I) {
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ull;
    X ^= X >> 27;
    Inputs.push_back(static_cast<UWord>(X));
  }

  uint64_t Checks = 0, Mismatches = 0;
  for (UWord Numerator : Inputs) {
    const UWord Q = static_cast<UWord>(Numerator / D);
    const UWord R = static_cast<UWord>(Numerator % D);
    const struct {
      const char *Name;
      UWord Quot;
      UWord Rem;
    } Rows[] = {
        {"gm", GM.divide(Numerator), GM.remainder(Numerator)},
        {"fastmod", FM.divide(Numerator), FM.remainder(Numerator)},
        {"roundup", RU.divide(Numerator), RU.remainder(Numerator)},
        {"narrow", Nar.divide(Numerator), Nar.remainder(Numerator)},
    };
    for (const auto &Row : Rows) {
      ++Checks;
      if (Row.Quot != Q || Row.Rem != R) {
        ++Mismatches;
        std::printf("MISMATCH %s: n=%llu d=%llu got q=%llu r=%llu want "
                    "q=%llu r=%llu\n",
                    Row.Name, static_cast<unsigned long long>(Numerator),
                    static_cast<unsigned long long>(D),
                    static_cast<unsigned long long>(Row.Quot),
                    static_cast<unsigned long long>(Row.Rem),
                    static_cast<unsigned long long>(Q),
                    static_cast<unsigned long long>(R));
      }
    }
    ++Checks;
    if (FM.isDivisible(Numerator) != (R == static_cast<UWord>(0))) {
      ++Mismatches;
      std::printf("MISMATCH fastmod.isDivisible: n=%llu d=%llu\n",
                  static_cast<unsigned long long>(Numerator),
                  static_cast<unsigned long long>(D));
    }
  }
  std::printf("cross-check: %llu checks, %llu mismatches%s\n",
              static_cast<unsigned long long>(Checks),
              static_cast<unsigned long long>(Mismatches),
              Mismatches == 0 ? " (all families agree with hardware)" : "");
  return Mismatches == 0 ? 0 : 1;
}

/// Command dispatch, after the global telemetry flags are stripped.
int runCommand(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  const std::string Command = Argv[1];

  if (Command == "magic") {
    if (Argc < 3)
      return usage(Argv[0]);
    const uint64_t D = std::strtoull(Argv[2], nullptr, 0);
    const int Width = Argc > 3 ? std::atoi(Argv[3]) : 32;
    if (D == 0)
      return usage(Argv[0]);
    switch (Width) {
    case 8:
      printMagic<uint8_t>(static_cast<uint8_t>(D));
      break;
    case 16:
      printMagic<uint16_t>(static_cast<uint16_t>(D));
      break;
    case 32:
      printMagic<uint32_t>(static_cast<uint32_t>(D));
      break;
    case 64:
      printMagic<uint64_t>(D);
      break;
    default:
      return usage(Argv[0]);
    }
    return 0;
  }

  if (Command == "codegen") {
    if (Argc < 3)
      return usage(Argv[0]);
    const int64_t D = std::strtoll(Argv[2], nullptr, 0);
    const int Width = Argc > 3 ? std::atoi(Argv[3]) : 32;
    const std::string Kind = Argc > 4 ? Argv[4] : "u";
    if (D == 0)
      return usage(Argv[0]);
    ir::Program P = [&] {
      if (Kind == "s")
        return codegen::genSignedDivRem(Width, D);
      if (Kind == "floor")
        return codegen::genFloorDivMod(Width, D);
      if (Kind == "exact")
        return codegen::genExactSignedDiv(Width, D);
      if (Kind == "alverson")
        return codegen::genUnsignedDivAlverson(
            Width, static_cast<uint64_t>(D));
      return codegen::genUnsignedDivRem(Width,
                                        static_cast<uint64_t>(D));
    }();
    std::printf("%s", ir::formatProgram(P).c_str());
    return 0;
  }

  if (Command == "asm") {
    if (Argc < 3)
      return usage(Argv[0]);
    const uint64_t D = std::strtoull(Argv[2], nullptr, 0);
    const int Width = Argc > 3 ? std::atoi(Argv[3]) : 32;
    const std::string TargetName = Argc > 4 ? Argv[4] : "mips";
    target::TargetKind Kind;
    if (TargetName == "mips")
      Kind = target::TargetKind::Mips;
    else if (TargetName == "sparc")
      Kind = target::TargetKind::Sparc;
    else if (TargetName == "alpha")
      Kind = target::TargetKind::Alpha;
    else if (TargetName == "power")
      Kind = target::TargetKind::Power;
    else
      return usage(Argv[0]);
    const int TargetBits = target::targetDesc(Kind).WordBits;
    codegen::GenOptions Options;
    if (Kind == target::TargetKind::Power)
      Options.MulHigh = codegen::MulHighCapability::SignedOnly;
    ir::Program P =
        Width < TargetBits
            ? codegen::genUnsignedDivRemWide(Width, TargetBits, D, Options)
            : codegen::genUnsignedDivRem(TargetBits, D, Options);
    target::MachineFunction MF = target::selectInstructions(P, Kind);
    target::allocateRegisters(MF);
    std::printf("%s", target::emitAssembly(MF).c_str());
    return 0;
  }

  if (Command == "batch") {
    if (Argc < 3)
      return usage(Argv[0]);
    const int64_t D = std::strtoll(Argv[2], nullptr, 0);
    const int Width = Argc > 3 ? std::atoi(Argv[3]) : 32;
    const std::string Kind = Argc > 4 ? Argv[4] : "u";
    const size_t Count =
        Argc > 5 ? std::strtoull(Argv[5], nullptr, 0) : 4099;
    if (D == 0 || Count == 0 || (Kind != "u" && Kind != "s") ||
        (Kind == "u" && D < 0))
      return usage(Argv[0]);
    switch (Width) {
    case 8:
      return Kind == "s" ? runBatch<int8_t>(static_cast<int8_t>(D), Count)
                         : runBatch<uint8_t>(static_cast<uint8_t>(D), Count);
    case 16:
      return Kind == "s"
                 ? runBatch<int16_t>(static_cast<int16_t>(D), Count)
                 : runBatch<uint16_t>(static_cast<uint16_t>(D), Count);
    case 32:
      return Kind == "s"
                 ? runBatch<int32_t>(static_cast<int32_t>(D), Count)
                 : runBatch<uint32_t>(static_cast<uint32_t>(D), Count);
    case 64:
      return Kind == "s"
                 ? runBatch<int64_t>(D, Count)
                 : runBatch<uint64_t>(static_cast<uint64_t>(D), Count);
    default:
      return usage(Argv[0]);
    }
  }

  if (Command == "family") {
    if (Argc < 5)
      return usage(Argv[0]);
    arch::DivOp Op;
    if (!arch::parseDivOp(Argv[2], Op))
      return usage(Argv[0]);
    const int Width = std::atoi(Argv[3]);
    const uint64_t D = std::strtoull(Argv[4], nullptr, 0);
    const std::string TargetName = Argc > 5 ? Argv[5] : "MIPS R4000";
    // Default batch of 1000: the paper's setting is an *invariant*
    // divisor, so precompute is amortized over many divisions. Pass an
    // explicit batch of 1 to price a one-shot division.
    const uint64_t Batch =
        Argc > 6 ? std::strtoull(Argv[6], nullptr, 0) : 1000;
    if (D == 0 || Batch == 0)
      return usage(Argv[0]);
    bool Known = false;
    for (const arch::ArchProfile &P : arch::table11Profiles())
      Known = Known || P.Name == TargetName;
    if (!Known) {
      std::fprintf(stderr, "unknown target \"%s\"; Table 1.1 names:\n",
                   TargetName.c_str());
      for (const arch::ArchProfile &P : arch::table11Profiles())
        std::fprintf(stderr, "  %s\n", P.Name.c_str());
      return 1;
    }
    const arch::ArchProfile &Target = arch::profileByName(TargetName);
    switch (Width) {
    case 8:
      return runFamily<uint8_t>(Op, static_cast<uint8_t>(D), Target, Batch);
    case 16:
      return runFamily<uint16_t>(Op, static_cast<uint16_t>(D), Target,
                                 Batch);
    case 32:
      return runFamily<uint32_t>(Op, static_cast<uint32_t>(D), Target,
                                 Batch);
    case 64:
      return runFamily<uint64_t>(Op, D, Target, Batch);
    default:
      return usage(Argv[0]);
    }
  }

  if (Command == "verify") {
    double Seconds = 10.0;
    uint64_t Seed = 1;
    bool Full = false;
    const char *Replay = nullptr;
    for (int I = 2; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--seconds") == 0 && I + 1 < Argc)
        Seconds = std::atof(Argv[++I]);
      else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc)
        Seed = std::strtoull(Argv[++I], nullptr, 0);
      else if (std::strcmp(Argv[I], "--full") == 0)
        Full = true;
      else if (std::strcmp(Argv[I], "--replay") == 0 && I + 1 < Argc)
        Replay = Argv[++I];
      else
        return usage(Argv[0]);
    }

    if (Replay) {
      std::string Detail;
      const bool Passed = verify::replayRepro(Replay, &Detail);
      std::printf("%s\n", Detail.c_str());
      return Passed ? 0 : 1;
    }

    // Exhaustive sweeps ascending from N = 4: each width is a complete
    // proof over its state space, so run as many as half the budget
    // allows (N <= 8 always fits; N = 12 alone is ~15 s). --full runs
    // all of [4, 12] regardless of the clock.
    trace::HwCounters Hw;
    if (Hw.available())
      Hw.start();
    using Clock = std::chrono::steady_clock;
    const auto Start = Clock::now();
    const auto Elapsed = [&] {
      return std::chrono::duration<double>(Clock::now() - Start).count();
    };
    std::vector<verify::VerifyReport> Exhaustive;
    int TopWidth = 0;
    for (int Width = 4; Width <= 12; ++Width) {
      if (!Full && Width > 8 && Elapsed() > Seconds / 2)
        break;
      Exhaustive.push_back(verify::verifyWidth(Width));
      TopWidth = Width;
    }
    std::fprintf(stderr, "verify: exhaustive N=4..%d done (%.1fs)\n",
                 TopWidth, Elapsed());

    // The rest of the budget fuzzes the machine widths.
    verify::FuzzOptions Options;
    Options.Seed = Seed;
    Options.Seconds = Seconds > Elapsed() ? Seconds - Elapsed() : 0.5;
    const verify::FuzzReport Fuzz = verify::runFuzzer(Options);

    bool Clean = Fuzz.clean();
    uint64_t Checks = Fuzz.checks();
    for (const verify::VerifyReport &Report : Exhaustive) {
      Clean = Clean && Report.clean();
      Checks += Report.checks();
    }

    telemetry::json::Writer W;
    W.beginObject()
        .key("command")
        .value("verify")
        .key("seconds")
        .value(Elapsed())
        .key("seed")
        .value(Seed)
        .key("checks")
        .value(Checks)
        .key("clean")
        .value(Clean)
        .key("exhaustive")
        .beginArray();
    for (const verify::VerifyReport &Report : Exhaustive)
      verify::reportJsonInto(W, Report);
    W.endArray().key("fuzz");
    verify::fuzzJsonInto(W, Fuzz);
    W.key("hw_counters");
    if (Hw.available()) {
      const trace::CounterSample Sample = Hw.stop();
      W.beginObject()
          .key("cycles")
          .value(Sample.Cycles)
          .key("instructions")
          .value(Sample.Instructions)
          .key("branch_misses")
          .value(Sample.BranchMisses)
          .key("cache_misses")
          .value(Sample.CacheMisses)
          .key("ipc")
          .value(Sample.ipc())
          .endObject();
    } else {
      W.null();
    }
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    std::fprintf(stderr, "verify: %s (%llu checks, %.1fs)\n",
                 Clean ? "clean" : "MISMATCHES FOUND",
                 static_cast<unsigned long long>(Checks), Elapsed());
    if (!Clean)
      for (const std::string &Text : Fuzz.Failures)
        std::fprintf(stderr, "  replay: %s verify --replay '%s'\n", Argv[0],
                     Text.c_str());
    return Clean ? 0 : 1;
  }

  if (Command == "bench-diff") {
    double Threshold = 0.15;
    bool Json = false;
    std::vector<const char *> Paths;
    for (int I = 2; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--threshold") == 0 && I + 1 < Argc)
        Threshold = std::atof(Argv[++I]);
      else if (std::strcmp(Argv[I], "--json") == 0)
        Json = true;
      else if (Argv[I][0] == '-')
        return usage(Argv[0]);
      else
        Paths.push_back(Argv[I]);
    }
    if (Paths.size() != 2 || Threshold <= 0)
      return usage(Argv[0]);
    namespace tb = telemetry::bench;
    tb::BenchReport Old, New;
    std::string Error;
    if (!tb::readFile(Paths[0], Old, &Error)) {
      std::fprintf(stderr, "bench-diff: %s: %s\n", Paths[0], Error.c_str());
      return 2;
    }
    if (!tb::readFile(Paths[1], New, &Error)) {
      std::fprintf(stderr, "bench-diff: %s: %s\n", Paths[1], Error.c_str());
      return 2;
    }
    const tb::DiffReport Diff = tb::compareReports(Old, New, Threshold);
    if (Json)
      std::printf("%s\n", tb::diffJson(Diff).c_str());
    else
      std::printf("%s", tb::diffText(Diff).c_str());
    return Diff.regressions() > 0 ? 1 : 0;
  }

  if (Command == "lower") {
    const int Width = Argc > 2 ? std::atoi(Argv[2]) : 32;
    const int NumArgs = Argc > 3 ? std::atoi(Argv[3]) : 1;
    std::ostringstream Input;
    Input << std::cin.rdbuf();
    const ir::ParseResult Result =
        ir::parseProgram(Input.str(), Width, NumArgs);
    if (!Result.ok()) {
      std::fprintf(stderr, "parse error on line %d: %s\n",
                   Result.ErrorLine, Result.Error.c_str());
      return 1;
    }
    codegen::LoweringStats Stats;
    const ir::Program Lowered =
        codegen::lowerDivisions(*Result.Parsed, codegen::GenOptions(),
                                &Stats);
    std::fprintf(stderr, "; lowered %d division(s), kept %d runtime "
                         "divisor(s)\n",
                 Stats.total(), Stats.RuntimeDivisorsKept);
    std::printf("%s", ir::formatProgram(Lowered).c_str());
    return 0;
  }

  if (Command == "jit") {
    if (Argc < 3)
      return usage(Argv[0]);
    const int64_t D = std::strtoll(Argv[2], nullptr, 0);
    int Width = 32;
    std::string Kind = "u";
    size_t BatchN = 0;
    for (int I = 3, Positional = 0; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--batch") == 0) {
        if (I + 1 >= Argc)
          return usage(Argv[0]);
        BatchN = std::strtoull(Argv[++I], nullptr, 0);
        if (BatchN == 0)
          return usage(Argv[0]);
        continue;
      }
      if (Positional == 0)
        Width = std::atoi(Argv[I]);
      else if (Positional == 1)
        Kind = Argv[I];
      else
        return usage(Argv[0]);
      ++Positional;
    }
    if (D == 0 ||
        (Width != 8 && Width != 16 && Width != 32 && Width != 64))
      return usage(Argv[0]);
    jit::SeqKind Seq;
    if (Kind == "u" && D > 0)
      Seq = jit::SeqKind::UDivRem;
    else if (Kind == "s")
      Seq = jit::SeqKind::SDivRem;
    else if (Kind == "floor")
      Seq = jit::SeqKind::FloorDivMod;
    else
      return usage(Argv[0]);

    if (BatchN) {
      if (Width != 32 && Width != 64) {
        std::fprintf(stderr, "jit --batch: the vector emitter's lane "
                             "containers are 32/64-bit\n");
        return 1;
      }
      if (Seq == jit::SeqKind::FloorDivMod) {
        std::fprintf(stderr, "jit --batch: floor stays on the static "
                             "kernels; use u or s\n");
        return 1;
      }
      if (Width == 32)
        return Kind == "s" ? runJitBatch(static_cast<int32_t>(D), BatchN)
                           : runJitBatch(static_cast<uint32_t>(D), BatchN);
      return Kind == "s" ? runJitBatch(D, BatchN)
                         : runJitBatch(static_cast<uint64_t>(D), BatchN);
    }

    const uint64_t Mask =
        Width == 64 ? ~uint64_t{0} : (uint64_t{1} << Width) - 1;
    const uint64_t DBits = static_cast<uint64_t>(D) & Mask;

    const ir::Program Prepared =
        jit::prepareForJit(jit::genSequence(Seq, Width, DBits));
    std::printf("; %s d=%lld N=%d — scheduled IR:\n",
                jit::seqKindName(Seq), static_cast<long long>(D), Width);
    std::printf("%s\n", ir::formatProgram(Prepared).c_str());

    const jit::EmitResult Emitted = jit::emitX86(Prepared);
    if (!Emitted.Ok) {
      std::printf("; x86-64 emitter bailed: %s — runs on ir::Interp\n",
                  Emitted.Error.c_str());
      return 0;
    }
    std::printf("; x86-64 (%zu bytes):\n", Emitted.Code.size());
    printAsmListing(Prepared, Emitted.Code, Emitted.Lines, "epilogue");

    if (!jit::enabled()) {
      std::printf("; execution disabled (%s) — runs on ir::Interp\n",
                  jit::hostSupported() ? "GMDIV_NO_JIT=1"
                                       : "host is not x86-64");
      return 0;
    }
    // Execute a few live samples against the interpreter so the listing
    // above is demonstrably the code that runs.
    const auto Compiled = jit::compileCached(
        jit::CodeCache::global(),
        {Seq, static_cast<uint8_t>(Width), DBits});
    if (!Compiled) {
      std::printf("; compile failed — runs on ir::Interp\n");
      return 0;
    }
    std::vector<uint64_t> Args(1), Scratch, Want, Got;
    bool AllMatch = true;
    for (const uint64_t In :
         {uint64_t{100} & Mask, Mask >> 1, (Mask >> 1) + 1, Mask}) {
      Args[0] = In;
      ir::runScratch(Prepared, Args, Scratch, Want);
      Compiled->callAll(In, 0, Got);
      const bool Match = Want == Got;
      AllMatch = AllMatch && Match;
      std::printf("; n=0x%llx: q=0x%llx r=0x%llx (%s)\n",
                  static_cast<unsigned long long>(In),
                  static_cast<unsigned long long>(Got[0]),
                  static_cast<unsigned long long>(Got.size() > 1 ? Got[1]
                                                                 : 0),
                  Match ? "matches ir::Interp" : "MISMATCH");
    }
    return AllMatch ? 0 : 1;
  }

  if (Command == "service") {
    size_t Threads = 4, Keys = 1024, Ops = 200000, Batch = 16, Workers = 2;
    double Seconds = 0;
    for (int I = 2; I + 1 < Argc; I += 2) {
      const std::string Arg = Argv[I];
      const char *Val = Argv[I + 1];
      if (Arg == "--threads")
        Threads = std::strtoull(Val, nullptr, 0);
      else if (Arg == "--keys")
        Keys = std::strtoull(Val, nullptr, 0);
      else if (Arg == "--ops")
        Ops = std::strtoull(Val, nullptr, 0);
      else if (Arg == "--seconds")
        Seconds = std::atof(Val);
      else if (Arg == "--batch")
        Batch = std::strtoull(Val, nullptr, 0);
      else if (Arg == "--workers")
        Workers = std::strtoull(Val, nullptr, 0);
      else
        return usage(Argv[0]);
    }
    if (Threads == 0 || Keys == 0)
      return usage(Argv[0]);
    uint64_t TotalOps = 0;
    double Elapsed = 0;
    const uint64_t Mismatches = hammerService(
        Threads, Keys, Ops, Seconds, Batch, Workers, TotalOps, Elapsed);
    std::printf("service: %zu threads x %zu keys, %llu registry ops in "
                "%.2fs (%.2f Mops/s aggregate), %zu batch jobs, "
                "%llu mismatches\n",
                Threads, Keys,
                static_cast<unsigned long long>(TotalOps), Elapsed,
                Elapsed > 0 ? static_cast<double>(TotalOps) / Elapsed / 1e6
                            : 0.0,
                Batch, static_cast<unsigned long long>(Mismatches));
    printServiceSummary();
    return Mismatches == 0 ? 0 : 1;
  }

  if (Command == "metrics") {
    std::string Format = "prom";
    bool Exercise = false;
    for (int I = 2; I < Argc; ++I) {
      const std::string Arg = Argv[I];
      if (Arg == "prom" || Arg == "json")
        Format = Arg;
      else if (Arg == "--exercise")
        Exercise = true;
      else
        return usage(Argv[0]);
    }
    if (Exercise)
      exerciseMetrics();
    const metrics::Snapshot Snap = metrics::Registry::global().snapshot();
    if (Format == "json")
      std::printf("%s\n", metrics::snapshotJson(Snap).c_str());
    else
      std::fputs(metrics::prometheusText(Snap).c_str(), stdout);
    return 0;
  }

  if (Command == "top") {
    size_t Keys = 64;
    size_t Ops = 200000;
    for (int I = 2; I + 1 < Argc; I += 2) {
      const std::string Arg = Argv[I];
      const char *Val = Argv[I + 1];
      if (Arg == "--keys")
        Keys = std::strtoull(Val, nullptr, 0);
      else if (Arg == "--ops")
        Ops = std::strtoull(Val, nullptr, 0);
      else
        return usage(Argv[0]);
    }
    if (Keys == 0 || Ops == 0)
      return usage(Argv[0]);

    // Skewed synthetic workload: seven of eight ops hit one of eight
    // hot divisors (geometrically skewed inside the hot set so the
    // ranks are distinct), the eighth spreads over the full key range.
    // The JIT cache sees the same stream decimated 1-in-16 — its offer
    // point is per-construction, not per-divide.
    service::DividerRegistry &Reg = service::DividerRegistry::global();
    uint64_t Rng = 0x5eed;
    for (size_t I = 0; I < Ops; ++I) {
      const uint64_t Mix = cache::mixBits(Rng += 0x9e3779b97f4a7c15ULL);
      const uint64_t D = (Mix & 7) != 0
                             ? 3 + ((Mix >> 3) & (Mix >> 6) & 7)
                             : 3 + ((Mix >> 9) % Keys);
      const service::Key K =
          service::keyFor<uint32_t>(static_cast<uint32_t>(D));
      if (!Reg.withEntry(K, [](const service::DividerEntry &) {}))
        Reg.acquire(K);
      if (I % 16 == 0)
        jit::compileCached(jit::CodeCache::global(),
                           {jit::SeqKind::UDivRem, 32, D});
    }

    const auto PrintSketch = [](const char *What, const auto &Sketch,
                                uint64_t CacheEvictions,
                                auto &&Describe) {
      const auto Items = Sketch.items();
      std::printf("%s top-%zu (sketch capacity %zu, %llu offered, "
                  "sketch evictions %llu%s):\n",
                  What, Items.size(), Sketch.capacity(),
                  static_cast<unsigned long long>(Sketch.totalOffered()),
                  static_cast<unsigned long long>(Sketch.evictions()),
                  Sketch.evictions() == 0 ? " — counts exact" : "");
      std::printf("  %4s  %-18s %12s %10s\n", "rank", "key", "est.count",
                  "max.err");
      const size_t Rows = Items.size() < 10 ? Items.size() : 10;
      for (size_t I = 0; I < Rows; ++I)
        std::printf("  %4zu  %-18s %12llu %10llu\n", I,
                    Describe(Items[I].Key).c_str(),
                    static_cast<unsigned long long>(Items[I].Count),
                    static_cast<unsigned long long>(Items[I].Error));
      if (Items.size() > Rows)
        std::printf("  ... %zu more tracked keys\n", Items.size() - Rows);
      std::printf("  cross-reference: %llu cache evictions — %s\n",
                  static_cast<unsigned long long>(CacheEvictions),
                  CacheEvictions == 0
                      ? "every hot key admitted once and stayed resident"
                      : "hot keys may have been re-admitted; compare "
                        "ranks against the per-shard _evictions_total "
                        "counters");
    };

    PrintSketch("service registry", Reg.hotKeys(), Reg.stats().Evictions,
                [](const service::Key &K) { return K.describe(); });
    std::printf("\n");
    PrintSketch("jit cache", jit::CodeCache::global().hotKeys(),
                jit::CodeCache::global().stats().Evictions,
                [](const jit::CacheKey &K) {
                  return jit::describeCacheKey(K);
                });
    return 0;
  }

  return usage(Argv[0]);
}

} // namespace

int main(int Argc, char **Argv) {
  bool ShowStats = false;
  std::string RemarksMode;
  std::string TraceFile;
  std::string MetricsFile;
  std::string ProfileFile;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(Argc));
  for (int Index = 0; Index < Argc; ++Index) {
    if (std::strcmp(Argv[Index], "--stats") == 0) {
      ShowStats = true;
      continue;
    }
    if (std::strncmp(Argv[Index], "--remarks=", 10) == 0) {
      RemarksMode = Argv[Index] + 10;
      continue;
    }
    if (std::strncmp(Argv[Index], "--trace=", 8) == 0) {
      TraceFile = Argv[Index] + 8;
      continue;
    }
    if (std::strncmp(Argv[Index], "--metrics=", 10) == 0) {
      MetricsFile = Argv[Index] + 10;
      continue;
    }
    if (std::strncmp(Argv[Index], "--profile=", 10) == 0) {
      ProfileFile = Argv[Index] + 10;
      continue;
    }
    Args.push_back(Argv[Index]);
  }

  // Environment-driven observability: GMDIV_METRICS_OUT starts the
  // background exporter, GMDIV_FLIGHT_RECORDER arms the crash dump,
  // GMDIV_PROF arms the sampling profiler without a dump file.
  metrics::Exporter::global().startFromEnv();
  metrics::FlightRecorder::global().configureFromEnv();
  if (!ProfileFile.empty()) {
    int Hz = prof::Profiler::DefaultHz;
    if (const char *HzEnv = std::getenv("GMDIV_PROF_HZ"))
      if (const long Value = std::strtol(HzEnv, nullptr, 10); Value > 0)
        Hz = static_cast<int>(Value);
    prof::Profiler::global().start(Hz);
  } else {
    prof::Profiler::global().startFromEnv();
  }

  std::unique_ptr<telemetry::RemarkSink> Sink;
  if (RemarksMode == "json")
    Sink = std::make_unique<telemetry::JsonRemarkSink>(stderr);
  else if (RemarksMode == "text")
    Sink = std::make_unique<telemetry::TextRemarkSink>(stderr);
  else if (!RemarksMode.empty())
    return usage(Argv[0]);
  if (!TraceFile.empty())
    trace::setEnabled(true);

  int Result;
  {
    telemetry::ScopedRemarkSink Guard(Sink.get());
    trace::Span CommandSpan("tool",
                            Args.size() > 1 ? Args[1] : "gmdiv_tool");
    Result = runCommand(static_cast<int>(Args.size()), Args.data());
  }
  if (ShowStats) {
    std::fprintf(stderr, "%s\n", telemetry::statsJson().c_str());
    if (!telemetry::histogramsSnapshot().empty())
      std::fprintf(stderr, "%s\n", telemetry::histogramsJson().c_str());
    printJitCacheSummary();
    printServiceSummary();
  }
  if (!TraceFile.empty()) {
    std::string Error;
    if (!trace::writeChromeTrace(TraceFile, &Error)) {
      std::fprintf(stderr, "gmdiv_tool: --trace: %s\n", Error.c_str());
      return Result ? Result : 1;
    }
    std::fprintf(stderr, "gmdiv_tool: trace written to %s\n",
                 TraceFile.c_str());
  }
  if (!MetricsFile.empty()) {
    std::string Error;
    if (!metrics::Exporter::writeSnapshotFile(MetricsFile, &Error)) {
      std::fprintf(stderr, "gmdiv_tool: --metrics: %s\n", Error.c_str());
      return Result ? Result : 1;
    }
    std::fprintf(stderr, "gmdiv_tool: metrics written to %s\n",
                 MetricsFile.c_str());
  }
  if (!ProfileFile.empty()) {
    prof::Profiler::global().stop();
    std::string Error;
    if (!prof::Profiler::global().writeCollapsed(ProfileFile, &Error)) {
      std::fprintf(stderr, "gmdiv_tool: --profile: %s\n", Error.c_str());
      return Result ? Result : 1;
    }
    std::fprintf(stderr,
                 "gmdiv_tool: %llu profile samples written to %s\n",
                 static_cast<unsigned long long>(
                     prof::Profiler::global().sampleCount()),
                 ProfileFile.c_str());
  }
  metrics::Exporter::global().stop();
  return Result;
}
