//===- examples/batch_throughput.cpp - Batch kernel demo ------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The paper's premise — amortize one divisor-dependent precomputation
// over many dividends — taken to its throughput conclusion: divide a
// whole array per call through the src/batch SIMD backends.
//
// For each compiled backend this example (1) cross-checks the batch
// kernels against the per-element UnsignedDivider / SignedDivider on a
// deliberately odd-sized buffer (so the vector tails run), then
// (2) times a u32 divide sweep over growing batch sizes and prints
// elements/cycle-style throughput next to the scalar-divider loop.
// Exits nonzero on any mismatch, so it doubles as a smoke test.
//
//===----------------------------------------------------------------------===//

#include "arch/Arch.h"
#include "arch/CostModel.h"
#include "batch/BatchDivider.h"
#include "core/Divider.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace gmdiv;
using namespace gmdiv::batch;

namespace {

int Failures = 0;

void check(bool Ok, const char *What) {
  if (!Ok) {
    std::fprintf(stderr, "FAIL: %s\n", What);
    ++Failures;
  }
}

/// Deterministic dividend buffer (xorshift).
template <typename T> std::vector<T> makeData(size_t Count) {
  std::vector<T> Data(Count);
  uint64_t State = 0x9E3779B97F4A7C15ull;
  for (T &Value : Data) {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    Value = static_cast<T>(State);
  }
  return Data;
}

/// Cross-check one backend's u32 + i32 kernels against the scalar
/// dividers on a tail-exercising 1003-element buffer.
void validateBackend(Backend B) {
  const size_t Count = 1003; // odd on purpose: every backend runs a tail
  const BatchDivider<uint32_t> U(97u, B);
  const UnsignedDivider<uint32_t> URef(97u);
  const std::vector<uint32_t> UIn = makeData<uint32_t>(Count);
  std::vector<uint32_t> Quot(Count), Rem(Count);
  std::vector<uint8_t> Div(Count);
  U.divRem(UIn.data(), Quot.data(), Rem.data(), Count);
  U.divisible(UIn.data(), Div.data(), Count);
  for (size_t I = 0; I < Count; ++I) {
    check(Quot[I] == URef.divide(UIn[I]), "u32 quotient");
    check(Rem[I] == URef.remainder(UIn[I]), "u32 remainder");
    check(Div[I] == (UIn[I] % 97u == 0 ? 1 : 0), "u32 divisibility");
  }

  const BatchDivider<int32_t> S(-97, B);
  const SignedDivider<int32_t> SRef(-97);
  const FloorDivider<int32_t> FRef(-97);
  const std::vector<int32_t> SIn = makeData<int32_t>(Count);
  std::vector<int32_t> SQuot(Count), SFloor(Count);
  S.divide(SIn.data(), SQuot.data(), Count);
  S.floorDivide(SIn.data(), SFloor.data(), Count);
  for (size_t I = 0; I < Count; ++I) {
    check(SQuot[I] == SRef.divide(SIn[I]), "i32 quotient");
    check(SFloor[I] == FRef.divide(SIn[I]), "i32 floor quotient");
  }
  std::printf("  %-6s kernels agree with Divider.h on %zu elements "
              "(u32 div/rem/divisible, i32 trunc/floor)\n",
              backendName(B), Count);
}

/// Megaelements per second for one timed closure.
template <typename Fn> double throughputMeps(size_t Count, Fn &&Body) {
  using Clock = std::chrono::steady_clock;
  // Calibrate repetitions so each measurement runs ~10ms.
  size_t Reps = 1;
  for (;;) {
    const auto Start = Clock::now();
    for (size_t R = 0; R < Reps; ++R)
      Body();
    const double Sec =
        std::chrono::duration<double>(Clock::now() - Start).count();
    if (Sec >= 0.01)
      return static_cast<double>(Count) * static_cast<double>(Reps) /
             Sec / 1e6;
    Reps *= 8;
  }
}

} // namespace

int main() {
  std::printf("batch_throughput — array division by an invariant u32 "
              "divisor\n\n");

  // The dispatch picture on this machine.
  std::printf("compiled backends:");
  for (Backend B : compiledBackends())
    std::printf(" %s%s", backendName(B),
                backendAvailable(B) ? "" : " (not supported by this CPU)");
  std::printf("\nactive backend:   %s\n\n", backendName(activeBackend()));

  const BatchDivider<uint32_t> Active(97u);
  std::printf("%s\n\n", Active.describe().c_str());

  // Correctness first: every available backend, bit-for-bit.
  std::printf("validating every available backend:\n");
  for (Backend B : compiledBackends())
    if (backendAvailable(B))
      validateBackend(B);

  // Throughput sweep: scalar-divider loop vs each backend's divide().
  std::printf("\nu32 divide throughput (millions of elements/second):\n");
  std::printf("  %8s %12s", "batch", "divider-loop");
  for (Backend B : compiledBackends())
    if (backendAvailable(B))
      std::printf(" %12s", backendName(B));
  std::printf("\n");
  const UnsignedDivider<uint32_t> Ref(97u);
  for (size_t Count : {64u, 256u, 1024u, 4096u, 16384u}) {
    const std::vector<uint32_t> In = makeData<uint32_t>(Count);
    std::vector<uint32_t> Out(Count);
    std::printf("  %8zu %12.0f", Count,
                throughputMeps(Count, [&] {
                  for (size_t I = 0; I < Count; ++I)
                    Out[I] = Ref.divide(In[I]);
                }));
    for (Backend B : compiledBackends()) {
      if (!backendAvailable(B))
        continue;
      const BatchDivider<uint32_t> Div(97u, B);
      std::printf(" %12.0f", throughputMeps(Count, [&] {
                    Div.divide(In.data(), Out.data(), Count);
                  }));
    }
    std::printf("\n");
  }

  // What the paper-style cost model predicts for these backends.
  const arch::ArchProfile &Profile = arch::profileByName("MIPS R4000");
  std::printf("\ncost-model prediction (u32 lanes on %s):\n",
              Profile.Name.c_str());
  for (int VectorBits : {128, 256}) {
    const arch::BatchCost Cost =
        arch::estimateBatchCost(32, Profile, VectorBits);
    std::printf("  %3d-bit vectors: %d lanes, %.2fx per-element speedup, "
                "break-even batch %zu\n",
                VectorBits, Cost.Lanes, Cost.speedup(),
                Cost.breakEvenBatch());
  }

  if (Failures) {
    std::fprintf(stderr, "\n%d check(s) FAILED\n", Failures);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}
