//===- examples/hash_table.cpp - §11 hashing workload ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// §11: "Some benchmarks that involve hashing show improvements up to
// about 30%." Hash tables with prime modulus reduce every probe with a
// division by an invariant (but not compile-time-constant) table size —
// exactly the run-time invariant case of Figure 4.1. This example builds
// an open-addressing hash table whose probe sequence uses the divider,
// verifies it against the hardware-% implementation, and times both.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace gmdiv;

namespace {

/// Open-addressing table; the modulus strategy is the only difference
/// between the two instantiations.
class HashTable {
public:
  explicit HashTable(uint64_t Size)
      : Slots(Size, Empty), BySize(Size), Size(Size) {}

  void insertWithDivider(uint64_t Key) {
    uint64_t Slot = BySize.remainder(splitmix(Key));
    while (Slots[Slot] != Empty)
      Slot = Slot + 1 == Size ? 0 : Slot + 1;
    Slots[Slot] = Key;
  }

  void insertWithHardware(uint64_t Key, volatile uint64_t *RuntimeSize) {
    uint64_t Slot = splitmix(Key) % *RuntimeSize;
    while (Slots[Slot] != Empty)
      Slot = Slot + 1 == Size ? 0 : Slot + 1;
    Slots[Slot] = Key;
  }

  bool lookupWithDivider(uint64_t Key) const {
    uint64_t Slot = BySize.remainder(splitmix(Key));
    while (Slots[Slot] != Empty) {
      if (Slots[Slot] == Key)
        return true;
      Slot = Slot + 1 == Size ? 0 : Slot + 1;
    }
    return false;
  }

  const std::vector<uint64_t> &slots() const { return Slots; }

private:
  static uint64_t splitmix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  static constexpr uint64_t Empty = ~uint64_t{0};
  std::vector<uint64_t> Slots;
  UnsignedDivider<uint64_t> BySize;
  uint64_t Size;
};

} // namespace

int main() {
  const uint64_t Prime = 1000003; // Table size chosen at run time.
  volatile uint64_t RuntimePrime = Prime;
  const int Keys = 600000;

  // Correctness: both modulus strategies must build identical tables.
  HashTable Divider(Prime), Hardware(Prime);
  for (int I = 0; I < Keys; ++I) {
    Divider.insertWithDivider(static_cast<uint64_t>(I) * 2654435761u);
    Hardware.insertWithHardware(static_cast<uint64_t>(I) * 2654435761u,
                                &RuntimePrime);
  }
  if (Divider.slots() != Hardware.slots()) {
    std::printf("MISMATCH: divider and hardware tables differ\n");
    return 1;
  }
  std::printf("tables identical over %d insertions into %llu slots\n",
              Keys, static_cast<unsigned long long>(Prime));

  // Timing: lookup-heavy phase (each probe is one modulus reduction).
  int Found = 0;
  auto Start = std::chrono::steady_clock::now();
  for (int Round = 0; Round < 4; ++Round)
    for (int I = 0; I < Keys; ++I)
      Found += Divider.lookupWithDivider(static_cast<uint64_t>(I) *
                                         2654435761u);
  auto Mid = std::chrono::steady_clock::now();
  uint64_t Sink = 0;
  for (int Round = 0; Round < 4; ++Round)
    for (int I = 0; I < Keys; ++I)
      Sink += (static_cast<uint64_t>(I) * 2654435761u) % RuntimePrime;
  auto End = std::chrono::steady_clock::now();

  const double DividerMs =
      std::chrono::duration<double, std::milli>(Mid - Start).count();
  const double HardwareMs =
      std::chrono::duration<double, std::milli>(End - Mid).count();
  std::printf("lookups via divider: %.1f ms (%d hits)\n", DividerMs,
              Found);
  std::printf("bare hardware %% reductions over same keys: %.1f ms "
              "(sink %llu)\n",
              HardwareMs, static_cast<unsigned long long>(Sink & 1));
  std::printf("(the paper reports up to ~30%% whole-benchmark gains on "
              "hashing codes)\n");
  return 0;
}
