//===- examples/calendar.cpp - Floor division in calendrical code ---------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Calendrical arithmetic is the classic reason languages argue about
// remainder semantics (§2 cites Ada's rem/mod split and the div/mod
// debates [6][7]): day-of-week and date<->day-number conversions need
// *floor* division and divisor-sign modulo to work for dates before the
// epoch. This example implements the civil-calendar algorithms entirely
// with FloorDivider — divisors 4, 100, 365, 1461, 36524, 146096, 146097,
// 153 and 7 are all invariant — and checks them against a plain-
// arithmetic reference over two 400-year eras, including pre-1970 days.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <cstdint>
#include <cstdio>

using namespace gmdiv;

namespace {

const FloorDivider<int64_t> By4(4);
const FloorDivider<int64_t> By5(5);
const FloorDivider<int64_t> By7(7);
const FloorDivider<int64_t> By100(100);
const FloorDivider<int64_t> By153(153);
const FloorDivider<int64_t> By365(365);
const FloorDivider<int64_t> By1460(1460);
const FloorDivider<int64_t> By36524(36524);
const FloorDivider<int64_t> By146096(146096);
const FloorDivider<int64_t> By146097(146097); // Days per 400-year era.

struct CivilDate {
  int64_t Year;
  int Month;
  int Day;
};

/// Days since 1970-01-01 -> civil date (Hinnant's civil_from_days, every
/// division routed through the floor dividers; floor semantics make the
/// same formula valid for days before the epoch).
CivilDate civilFromDays(int64_t Z) {
  Z += 719468;
  const int64_t Era = By146097.divide(Z);
  const int64_t Doe = Z - Era * 146097; // [0, 146096]
  const int64_t Yoe = By365.divide(Doe - By1460.divide(Doe) +
                                   By36524.divide(Doe) -
                                   By146096.divide(Doe)); // [0, 399]
  const int64_t Y = Yoe + Era * 400;
  const int64_t Doy = Doe - (365 * Yoe + By4.divide(Yoe) -
                             By100.divide(Yoe)); // [0, 365]
  const int64_t Mp = By153.divide(5 * Doy + 2);     // [0, 11]
  const int64_t D = Doy - By5.divide(153 * Mp + 2) + 1; // [1, 31]
  const int64_t M = Mp + (Mp < 10 ? 3 : -9);        // [1, 12]
  return {Y + (M <= 2), static_cast<int>(M), static_cast<int>(D)};
}

/// Reference implementation with plain int64 arithmetic (valid because
/// all the inner quantities are nonnegative after the era split).
CivilDate civilFromDaysRef(int64_t Z) {
  Z += 719468;
  const int64_t Era = (Z >= 0 ? Z : Z - 146096) / 146097;
  const int64_t Doe = Z - Era * 146097;
  const int64_t Yoe =
      (Doe - Doe / 1460 + Doe / 36524 - Doe / 146096) / 365;
  const int64_t Y = Yoe + Era * 400;
  const int64_t Doy = Doe - (365 * Yoe + Yoe / 4 - Yoe / 100);
  const int64_t Mp = (5 * Doy + 2) / 153;
  const int64_t D = Doy - (153 * Mp + 2) / 5 + 1;
  const int64_t M = Mp + (Mp < 10 ? 3 : -9);
  return {Y + (M <= 2), static_cast<int>(M), static_cast<int>(D)};
}

/// The inverse (days_from_civil), independent plain arithmetic — used to
/// prove the forward conversion by round-trip, so a shared formula error
/// cannot hide.
int64_t daysFromCivil(int64_t Y, int M, int D) {
  Y -= M <= 2;
  const int64_t Era = (Y >= 0 ? Y : Y - 399) / 400;
  const int64_t Yoe = Y - Era * 400;
  const int64_t Doy = (153 * (M + (M > 2 ? -3 : 9)) + 2) / 5 + D - 1;
  const int64_t Doe = Yoe * 365 + Yoe / 4 - Yoe / 100 + Doy;
  return Era * 146097 + Doe - 719468;
}

bool isLeap(int64_t Y) {
  return Y % 4 == 0 && (Y % 100 != 0 || Y % 400 == 0);
}

/// Day of week, 0 = Sunday — correct for negative day numbers only with
/// floor modulo, which is the §2 point.
int dayOfWeek(int64_t DaysSinceEpoch) {
  return static_cast<int>(By7.modulo(DaysSinceEpoch + 4));
}

} // namespace

int main() {
  int Mismatches = 0;
  for (int64_t Z = -146097; Z <= 146097; ++Z) {
    const CivilDate A = civilFromDays(Z);
    const CivilDate B = civilFromDaysRef(Z);
    if (A.Year != B.Year || A.Month != B.Month || A.Day != B.Day)
      ++Mismatches;
    // Independent validation: the inverse must take the date back to Z,
    // and the fields must be a plausible calendar date.
    if (daysFromCivil(A.Year, A.Month, A.Day) != Z)
      ++Mismatches;
    static const int MonthLen[] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};
    const int Len = A.Month == 2 && isLeap(A.Year)
                        ? 29
                        : MonthLen[A.Month - 1];
    if (A.Month < 1 || A.Month > 12 || A.Day < 1 || A.Day > Len) {
      if (++Mismatches <= 3)
        std::printf("IMPLAUSIBLE date at day %lld: %lld-%02d-%02d\n",
                    static_cast<long long>(Z),
                    static_cast<long long>(A.Year), A.Month, A.Day);
    }
  }
  std::printf("civil-date sweep over two 400-year eras (292195 days, "
              "round-tripped): %s\n",
              Mismatches == 0 ? "all match" : "MISMATCHES!");
  // Spot checks: leap-century rules.
  const CivilDate Y2K = civilFromDays(daysFromCivil(2000, 2, 29));
  std::printf("2000-02-29 exists: %s;  1900-02-29 normalizes to "
              "%lld-%02d-%02d\n",
              Y2K.Month == 2 && Y2K.Day == 29 ? "yes" : "NO",
              static_cast<long long>(
                  civilFromDays(daysFromCivil(1900, 2, 29)).Year),
              civilFromDays(daysFromCivil(1900, 2, 29)).Month,
              civilFromDays(daysFromCivil(1900, 2, 29)).Day);

  static const char *Names[] = {"Sunday",    "Monday",   "Tuesday",
                                "Wednesday", "Thursday", "Friday",
                                "Saturday"};
  std::printf("1970-01-01 was a %s\n", Names[dayOfWeek(0)]);
  std::printf("1969-12-31 was a %s (needs floor modulo!)\n",
              Names[dayOfWeek(-1)]);
  std::printf("2000-01-01 was a %s\n", Names[dayOfWeek(10957)]);
  std::printf("1900-01-01 was a %s\n", Names[dayOfWeek(-25567)]);

  // The §2 point made concrete: C's % would give a negative index for
  // pre-epoch days; floor modulo (divisor-sign) stays in [0, 6].
  const int64_t PreEpoch = -1;
  std::printf("(-1 %% 7 in C is %lld; floor modulo gives %lld)\n",
              static_cast<long long>(PreEpoch % 7),
              static_cast<long long>(By7.modulo(PreEpoch)));
  return Mismatches == 0 ? 0 : 1;
}
