//===- examples/base_conversion.cpp - §1 base-conversion workload ---------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// §1: "Integer division is used heavily in base conversions..." — and
// the base is typically a *run-time* value (printf's radix argument, a
// user-chosen base), which is exactly the run-time invariant divisor
// case: build the divider once per conversion, then one divRem per
// digit. This example converts numbers into every base 2..36, verifies
// against a hardware-divide reference, and shows the §10 break-even
// consideration (how many digits amortize the divider setup).
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace gmdiv;

namespace {

const char Digits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

std::string toBaseDivider(uint64_t Value, const UnsignedDivider<uint64_t> &ByBase) {
  std::string Out;
  do {
    auto [Quotient, Remainder] = ByBase.divRem(Value);
    Out.insert(Out.begin(), Digits[Remainder]);
    Value = Quotient;
  } while (Value != 0);
  return Out;
}

std::string toBaseHardware(uint64_t Value, uint64_t Base) {
  std::string Out;
  do {
    Out.insert(Out.begin(), Digits[Value % Base]);
    Value /= Base;
  } while (Value != 0);
  return Out;
}

} // namespace

int main() {
  // Correctness across every base and a value gallery.
  for (uint64_t Base = 2; Base <= 36; ++Base) {
    const UnsignedDivider<uint64_t> ByBase(Base);
    for (uint64_t Value : {uint64_t{0}, uint64_t{1}, Base, Base - 1,
                           uint64_t{12345678901234ull}, ~uint64_t{0}}) {
      const std::string A = toBaseDivider(Value, ByBase);
      const std::string B = toBaseHardware(Value, Base);
      if (A != B) {
        std::printf("MISMATCH base %llu value %llu: %s vs %s\n",
                    static_cast<unsigned long long>(Base),
                    static_cast<unsigned long long>(Value), A.c_str(),
                    B.c_str());
        return 1;
      }
    }
  }
  std::printf("all bases 2..36 agree with hardware division\n");
  std::printf("2^64-1 in base 7:  %s\n",
              toBaseHardware(~0ull, 7).c_str());
  std::printf("2^64-1 in base 36: %s\n",
              toBaseHardware(~0ull, 36).c_str());

  // §10's warning quantified: "a loop might need to be executed many
  // times before the faster loop body outweighs the cost of the
  // multiplier computation in the loop header." Time setup vs per-digit
  // gain for base 10.
  constexpr int Rounds = 200000;
  volatile uint64_t Base = 10;
  auto T0 = std::chrono::steady_clock::now();
  uint64_t SetupSink = 0;
  for (int I = 0; I < Rounds; ++I) {
    const UnsignedDivider<uint64_t> Fresh(Base + (I & 1)); // 10 or 11.
    SetupSink += Fresh.divide(123456789);
  }
  auto T1 = std::chrono::steady_clock::now();
  const UnsignedDivider<uint64_t> Reused(Base);
  uint64_t DivSink = 0, X = ~0ull;
  for (int I = 0; I < Rounds; ++I) {
    DivSink += Reused.divide(X);
    X -= 7;
  }
  auto T2 = std::chrono::steady_clock::now();
  uint64_t HwSink = 0;
  X = ~0ull;
  for (int I = 0; I < Rounds; ++I) {
    HwSink += X / Base;
    X -= 7;
  }
  auto T3 = std::chrono::steady_clock::now();

  const double SetupNs =
      std::chrono::duration<double, std::nano>(T1 - T0).count() / Rounds;
  const double DivNs =
      std::chrono::duration<double, std::nano>(T2 - T1).count() / Rounds;
  const double HwNs =
      std::chrono::duration<double, std::nano>(T3 - T2).count() / Rounds;
  std::printf("\ndivider setup+1 divide: %5.1f ns\n", SetupNs);
  std::printf("reused divider divide:  %5.1f ns\n", DivNs);
  std::printf("hardware divide:        %5.1f ns\n", HwNs);
  if (HwNs > DivNs) {
    std::printf("break-even after ~%.0f divisions "
                "(setup / per-division gain)\n",
                (SetupNs - DivNs) / (HwNs - DivNs));
  } else {
    std::printf("hardware divide at least as fast on this host; the "
                "1994 trade-off favored elimination\n");
  }
  return (SetupSink + DivSink + HwSink) == 0 ? 2 : 0;
}
