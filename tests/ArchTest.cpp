//===- tests/ArchTest.cpp - Table 1.1 profile tests -----------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "arch/Arch.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::arch;

namespace {

TEST(Arch, TableHasAllRows) {
  // 15 CPUs; the R4000 appears twice (32- and 64-bit operation costs),
  // and the MC68020's divide range covers its unsigned/signed spread.
  EXPECT_EQ(table11Profiles().size(), 17u);
}

TEST(Arch, DividesSlowerThanMultipliesEverywhere) {
  // The premise of the whole paper (§1): division costs several times a
  // multiplication on every machine in Table 1.1.
  for (const ArchProfile &Profile : table11Profiles()) {
    EXPECT_GT(Profile.divCycles(), Profile.mulCycles()) << Profile.Name;
  }
}

TEST(Arch, RangesAreOrdered) {
  for (const ArchProfile &Profile : table11Profiles()) {
    EXPECT_LE(Profile.MulHigh.Low, Profile.MulHigh.High) << Profile.Name;
    EXPECT_LE(Profile.Divide.Low, Profile.Divide.High) << Profile.Name;
    EXPECT_GT(Profile.MulHigh.Low, 0) << Profile.Name;
    EXPECT_EQ(Profile.SimpleOpCycles, 1) << Profile.Name;
    EXPECT_GE(Profile.Year, 1985);
    EXPECT_LE(Profile.Year, 1993);
  }
}

TEST(Arch, KnownRowValues) {
  const ArchProfile &Pentium = profileByName("Intel Pentium");
  EXPECT_EQ(Pentium.mulCycles(), 10);
  EXPECT_EQ(Pentium.divCycles(), 46);
  EXPECT_EQ(Pentium.WordBits, 32);

  const ArchProfile &Alpha = profileByName("DEC Alpha 21064");
  EXPECT_EQ(Alpha.WordBits, 64);
  EXPECT_EQ(Alpha.mulCycles(), 23);
  EXPECT_FALSE(Alpha.HasDivide); // 200-cycle software divide.
  EXPECT_EQ(Alpha.Divide.Kind, CostKind::Software);

  const ArchProfile &Viking = profileByName("SPARC Viking");
  EXPECT_EQ(Viking.mulCycles(), 5);
  EXPECT_EQ(Viking.divCycles(), 19);
}

TEST(Arch, CycleRangeFormatting) {
  EXPECT_EQ((CycleRange{9, 38, CostKind::Hardware}).toString(), "9-38");
  EXPECT_EQ((CycleRange{45, 45, CostKind::Software}).toString(), "45s");
  EXPECT_EQ((CycleRange{3, 3, CostKind::ViaFp}).toString(), "3F");
  EXPECT_EQ((CycleRange{12, 12, CostKind::Pipelined}).toString(), "12P");
  EXPECT_EQ((CycleRange{76, 90, CostKind::Hardware}).toString(), "76-90");
}

TEST(Arch, MulDivGapGrowsOverTime) {
  // §1: "the discrepancy between multiplication and division timing has
  // been growing." Compare the earliest and latest 32-bit designs.
  const ArchProfile &Early = profileByName("Motorola MC68020"); // 1985
  const ArchProfile &Late = profileByName("Intel Pentium");     // 1993
  const double EarlyRatio = Early.divCycles() / Early.mulCycles();
  const double LateRatio = Late.divCycles() / Late.mulCycles();
  EXPECT_GT(LateRatio, EarlyRatio);
}

} // namespace
