//===- tests/fuzz_main.cpp - Differential fuzzing entry point -------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Not a gtest: the soak-style entry for the differential fuzzer in
// src/verify. Runs the boundary-biased campaign at N = 16/32/64 for the
// requested time budget, streams one verify.mismatch remark per
// discovered failure to stderr (JSON lines), and prints the campaign
// summary as one JSON document on stdout. Exit code 0 means every
// comparison agreed; 1 means mismatches (the minimized repro strings
// are in the summary and can be replayed here). Usage:
//
//   fuzz [--trace=FILE] [--metrics=FILE] [--profile=FILE] [seconds] [seed]
//                                (defaults: 10 seconds, random seed)
//   fuzz --replay <repro-string>
//
// CTest runs a 2-second smoke under the `fuzz` label; CI's sanitizer
// leg runs 60 seconds; a release manager can run hours. --trace=FILE
// records campaign/round spans and writes a Chrome trace-event JSON
// file on exit. --metrics=FILE writes a metrics snapshot on exit
// (.json = JSON document, anything else the Prometheus text format)
// with the campaign's properties-checked / mismatch / round counters.
// --profile=FILE arms the sampling profiler (GMDIV_PROF_HZ, default
// 97 Hz) and writes collapsed stacks (flamegraph.pl format) on exit.
//
//===----------------------------------------------------------------------===//

#include "verify/Fuzzer.h"

#include "metrics/Exporter.h"
#include "prof/Profiler.h"
#include "telemetry/Remarks.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

using namespace gmdiv;
using namespace gmdiv::verify;

int main(int ArgcIn, char **ArgvIn) {
  const char *TraceFile = nullptr;
  const char *MetricsFile = nullptr;
  const char *ProfileFile = nullptr;
  std::vector<char *> Args;
  for (int I = 0; I < ArgcIn; ++I) {
    if (std::strncmp(ArgvIn[I], "--trace=", 8) == 0)
      TraceFile = ArgvIn[I] + 8;
    else if (std::strncmp(ArgvIn[I], "--metrics=", 10) == 0)
      MetricsFile = ArgvIn[I] + 10;
    else if (std::strncmp(ArgvIn[I], "--profile=", 10) == 0)
      ProfileFile = ArgvIn[I] + 10;
    else
      Args.push_back(ArgvIn[I]);
  }
  const int Argc = static_cast<int>(Args.size());
  char **Argv = Args.data();
  if (TraceFile)
    trace::setEnabled(true);
  if (ProfileFile) {
    int Hz = prof::Profiler::DefaultHz;
    if (const char *HzEnv = std::getenv("GMDIV_PROF_HZ"))
      if (const long Value = std::strtol(HzEnv, nullptr, 10); Value > 0)
        Hz = static_cast<int>(Value);
    prof::Profiler::global().start(Hz);
  } else {
    prof::Profiler::global().startFromEnv();
  }

  if (Argc >= 2 && std::strcmp(Argv[1], "--replay") == 0) {
    if (Argc < 3) {
      std::fprintf(stderr, "usage: fuzz --replay <repro-string>\n");
      return 2;
    }
    std::string Detail;
    const bool Passed = replayRepro(Argv[2], &Detail);
    std::printf("%s\n", Detail.c_str());
    return Passed ? 0 : 1;
  }

  const double Seconds = Argc > 1 ? std::atof(Argv[1]) : 10.0;
  FuzzOptions Options;
  Options.Seconds = Seconds;
  Options.Seed = Argc > 2 ? std::strtoull(Argv[2], nullptr, 0)
                          : std::random_device{}();
  std::fprintf(stderr, "fuzz: %.1f seconds, seed %llu\n", Seconds,
               static_cast<unsigned long long>(Options.Seed));

  // Failures stream out as they are found (JSON lines on stderr), in
  // addition to the minimized repro strings in the final summary.
  telemetry::JsonRemarkSink Sink(stderr);
  FuzzReport Report;
  {
    telemetry::ScopedRemarkSink Guard(&Sink);
    Report = runFuzzer(Options);
  }

  std::printf("%s\n", fuzzJson(Report).c_str());
  int Result = 0;
  if (!Report.clean()) {
    std::fprintf(stderr, "fuzz: %llu mismatches; replay with:\n",
                 static_cast<unsigned long long>(Report.mismatches()));
    for (const std::string &Text : Report.Failures)
      std::fprintf(stderr, "  fuzz --replay '%s'\n", Text.c_str());
    Result = 1;
  } else {
    std::fprintf(stderr, "fuzz: %llu rounds clean (%llu checks)\n",
                 static_cast<unsigned long long>(Report.Rounds),
                 static_cast<unsigned long long>(Report.checks()));
  }
  if (TraceFile) {
    std::string Error;
    if (!trace::writeChromeTrace(TraceFile, &Error)) {
      std::fprintf(stderr, "fuzz: --trace: %s\n", Error.c_str());
      return Result ? Result : 1;
    }
    std::fprintf(stderr, "fuzz: trace written to %s\n", TraceFile);
  }
  if (MetricsFile) {
    std::string Error;
    if (!metrics::Exporter::writeSnapshotFile(MetricsFile, &Error)) {
      std::fprintf(stderr, "fuzz: --metrics: %s\n", Error.c_str());
      return Result ? Result : 1;
    }
    std::fprintf(stderr, "fuzz: metrics written to %s\n", MetricsFile);
  }
  if (ProfileFile) {
    prof::Profiler::global().stop();
    std::string Error;
    if (!prof::Profiler::global().writeCollapsed(ProfileFile, &Error)) {
      std::fprintf(stderr, "fuzz: --profile: %s\n", Error.c_str());
      return Result ? Result : 1;
    }
    std::fprintf(stderr, "fuzz: %llu profile samples written to %s\n",
                 static_cast<unsigned long long>(
                     prof::Profiler::global().sampleCount()),
                 ProfileFile);
  }
  return Result;
}
