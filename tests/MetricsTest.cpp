//===- tests/MetricsTest.cpp - Metrics registry and exposition ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics-plane contracts: striped counters lose nothing under
/// contention, the registry hands back one instrument per series, the
/// Prometheus exposition round-trips through the strict parser, the
/// JSON exposition parses with the telemetry JSON parser, and the
/// legacy-Stats bridge keeps --stats and the exposition in agreement.
///
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include "metrics/Exporter.h"
#include "metrics/Exposition.h"
#include "telemetry/Json.h"
#include "telemetry/Stats.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace gmdiv;
using namespace gmdiv::metrics;

namespace {

std::string uniqueName(const char *Stem) {
  static std::atomic<int> Serial{0};
  return std::string("gmdiv_test_") + Stem + "_" +
         std::to_string(Serial.fetch_add(1));
}

TEST(MetricsCounter, ExactUnderSixteenThreadContention) {
  Counter C;
  constexpr int NumThreads = 16;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (uint64_t I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  // Striped relaxed adds merge to the exact total: increments are never
  // lost, whatever stripe each thread landed on.
  EXPECT_EQ(C.value(), NumThreads * PerThread);
}

TEST(MetricsRegistry, SameSeriesReturnsSameInstrument) {
  Registry &R = Registry::global();
  const std::string Name = uniqueName("identity");
  Counter &A = R.counter(Name, "help text");
  Counter &B = R.counter(Name);
  EXPECT_EQ(&A, &B);
  // A different label set is a different series -> different instrument.
  Counter &Labeled = R.counter(Name, "", {{"shard", "0"}});
  EXPECT_NE(&A, &Labeled);
  A.add(3);
  Labeled.add(4);
  const Snapshot S = R.snapshot();
  EXPECT_EQ(S.valueOr(Name, {}, -1), 3.0);
  EXPECT_EQ(S.valueOr(Name, {{"shard", "0"}}, -1), 4.0);
  // Help is taken from the first registration.
  const Sample *Found = S.find(Name);
  ASSERT_NE(Found, nullptr);
}

TEST(MetricsGauge, LastValueWins) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(3.5);
  G.set(-0.25);
  EXPECT_EQ(G.value(), -0.25);
}

TEST(MetricsHistogram, CumulativeBucketsCoverEveryObservation) {
  Histogram H;
  const std::vector<uint64_t> Values = {0,  1,  2,   15,  16,  17,
                                        31, 32, 100, 1000, 123456};
  uint64_t Sum = 0;
  for (const uint64_t V : Values) {
    H.record(V);
    Sum += V;
  }
  EXPECT_EQ(H.count(), Values.size());
  EXPECT_EQ(H.sum(), Sum);

  const Histogram::Cumulative Cum = H.cumulative();
  EXPECT_EQ(Cum.Count, Values.size());
  ASSERT_FALSE(Cum.Bounds.empty());
  // Bounds ascend and counts are non-decreasing (cumulative).
  for (size_t I = 1; I < Cum.Bounds.size(); ++I) {
    EXPECT_LT(Cum.Bounds[I - 1].first, Cum.Bounds[I].first);
    EXPECT_LE(Cum.Bounds[I - 1].second, Cum.Bounds[I].second);
  }
  // The last emitted bound covers every observation, and each bound's
  // count matches a direct recount of values <= the bound.
  EXPECT_EQ(Cum.Bounds.back().second, Values.size());
  for (const auto &[Le, CountAtLe] : Cum.Bounds) {
    uint64_t Expect = 0;
    for (const uint64_t V : Values)
      if (static_cast<double>(V) <= Le)
        ++Expect;
    EXPECT_EQ(CountAtLe, Expect) << "le=" << Le;
  }
}

TEST(MetricsExposition, PrometheusTextRoundTripsThroughStrictParser) {
  Registry &R = Registry::global();
  const std::string CName = uniqueName("roundtrip_total");
  const std::string GName = uniqueName("occupancy");
  const std::string HName = uniqueName("latency_ns");
  // A label value exercising every escape the format defines.
  const LabelSet Tricky = {{"path", "a\\b\"c\nd"}, {"shard", "3"}};
  R.counter(CName, "Round-trip counter", Tricky).add(42);
  R.gauge(GName, "Round-trip gauge").set(0.5);
  Histogram &H = R.histogram(HName, "Round-trip histogram");
  for (uint64_t V : {1u, 10u, 100u, 1000u})
    H.record(V);

  const std::string Text = prometheusText(R.snapshot());
  std::vector<ParsedSample> Parsed;
  std::string Error;
  ASSERT_TRUE(parsePrometheusText(Text, Parsed, &Error))
      << Error << "\n"
      << Text;

  const ParsedSample *C = findSample(Parsed, CName, Tricky);
  ASSERT_NE(C, nullptr) << Text;
  EXPECT_EQ(C->Value, 42.0);
  const ParsedSample *G = findSample(Parsed, GName);
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->Value, 0.5);
  // Histogram expansion: _count and _sum agree with the instrument,
  // +Inf bucket present and equal to _count, bucket counts cumulative.
  const ParsedSample *HCount = findSample(Parsed, HName + "_count");
  ASSERT_NE(HCount, nullptr);
  EXPECT_EQ(HCount->Value, 4.0);
  const ParsedSample *HSum = findSample(Parsed, HName + "_sum");
  ASSERT_NE(HSum, nullptr);
  EXPECT_EQ(HSum->Value, 1111.0);
  const ParsedSample *Inf =
      findSample(Parsed, HName + "_bucket", {{"le", "+Inf"}});
  ASSERT_NE(Inf, nullptr);
  EXPECT_EQ(Inf->Value, 4.0);
  double Prev = 0;
  for (const ParsedSample &Sample : Parsed) {
    if (Sample.Name != HName + "_bucket")
      continue;
    EXPECT_GE(Sample.Value, Prev) << "buckets must be cumulative";
    Prev = Sample.Value;
  }
}

TEST(MetricsExposition, JsonSnapshotParsesWithTelemetryJsonParser) {
  Registry &R = Registry::global();
  const std::string Name = uniqueName("json_total");
  R.counter(Name, "JSON exposition check").add(7);
  const std::string Doc = snapshotJson(R.snapshot());
  ASSERT_TRUE(telemetry::json::isValid(Doc));
  telemetry::json::Value Root;
  ASSERT_TRUE(telemetry::json::parse(Doc, Root));
  EXPECT_EQ(Root.numberOr("gmdiv_metrics", 0), 1.0);
  EXPECT_GT(Root.numberOr("unix_ms", 0), 0.0);
  const telemetry::json::Value *Families = Root.find("families");
  ASSERT_NE(Families, nullptr);
  bool Found = false;
  for (const telemetry::json::Value &F : Families->array()) {
    if (F.stringOr("name", "") != Name)
      continue;
    Found = true;
    EXPECT_EQ(F.stringOr("kind", ""), "counter");
    const telemetry::json::Value *Samples = F.find("samples");
    ASSERT_NE(Samples, nullptr);
    ASSERT_EQ(Samples->array().size(), 1u);
    EXPECT_EQ(Samples->array()[0].numberOr("value", -1), 7.0);
  }
  EXPECT_TRUE(Found) << Doc;
}

TEST(MetricsBridge, LegacyStatsAppearAndNativeSeriesShadowThem) {
#ifdef GMDIV_NO_TELEMETRY
  GTEST_SKIP() << "stats compiled out";
#endif
  Registry &R = Registry::global();
  {
    telemetry::Statistic Stat("metricstest", "bridged");
    Stat.increment(11);
    const Snapshot S = R.snapshot();
    // The bridge renders group.name as gmdiv_<group>_<name>_total.
    EXPECT_EQ(S.valueOr("gmdiv_metricstest_bridged_total", {}, -1), 11.0)
        << "--stats and the exposition must agree";
  }
  // A native instrument that reuses a bridged family name wins the
  // series (first-writer dedupe: instruments merge before bridges), so
  // the two surfaces cannot diverge even if both exist.
  telemetry::Statistic Stat("metricstest", "shadowed");
  Stat.increment(100);
  const std::string Native = "gmdiv_metricstest_shadowed_total";
  R.counter(Native, "native twin").add(3);
  EXPECT_EQ(Registry::global().snapshot().valueOr(Native, {}, -1), 3.0);
}

TEST(MetricsBridge, LatencyHistogramsBecomeSummaries) {
#ifdef GMDIV_NO_TELEMETRY
  GTEST_SKIP() << "histograms compiled out";
#endif
  telemetry::LatencyHistogram Lat("metricstest", "bridge_us");
  for (uint64_t V = 1; V <= 100; ++V)
    Lat.record(V);
  const Snapshot S = Registry::global().snapshot();
  const Sample *Sum = S.find("gmdiv_metricstest_bridge_us");
  ASSERT_NE(Sum, nullptr);
  EXPECT_EQ(Sum->Count, 100u);
  ASSERT_FALSE(Sum->Quantiles.empty());
  for (const auto &[Q, V] : Sum->Quantiles) {
    EXPECT_GE(Q, 0.0);
    EXPECT_LE(Q, 1.0);
    EXPECT_GE(V, 1.0);
  }
}

TEST(MetricsCollector, RunsAtSnapshotAndUnregisters) {
  Registry &R = Registry::global();
  const std::string Name = uniqueName("collected");
  const uint64_t Handle = R.addCollector([&](SnapshotBuilder &B) {
    B.gauge(Name, "from a collector", {}, 17.0);
  });
  EXPECT_EQ(R.snapshot().valueOr(Name, {}, -1), 17.0);
  R.removeCollector(Handle);
  EXPECT_EQ(R.snapshot().valueOr(Name, {}, -1), -1.0);
}

TEST(MetricsSnapshotBuilder, FirstWriterWinsOnDuplicateSeries) {
  SnapshotBuilder B;
  B.counter("dup_total", "first", {}, 1.0);
  B.counter("dup_total", "second", {}, 2.0);
  const Snapshot S = B.take();
  const Sample *Found = S.find("dup_total");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Value, 1.0);
  ASSERT_EQ(S.Families.size(), 1u);
  EXPECT_EQ(S.Families[0].Samples.size(), 1u);
}

TEST(MetricsExporter, WriteSnapshotFileEmitsBothFormats) {
  Registry::global().counter(uniqueName("exported_total")).inc();

  const std::string PromPath =
      testing::TempDir() + "gmdiv_metrics_test.prom";
  std::string Error;
  ASSERT_TRUE(Exporter::writeSnapshotFile(PromPath, &Error)) << Error;
  std::ifstream PromIn(PromPath);
  std::stringstream PromBuf;
  PromBuf << PromIn.rdbuf();
  std::vector<ParsedSample> Parsed;
  EXPECT_TRUE(parsePrometheusText(PromBuf.str(), Parsed, &Error))
      << Error;
  EXPECT_FALSE(Parsed.empty());

  const std::string JsonPath =
      testing::TempDir() + "gmdiv_metrics_test.json";
  ASSERT_TRUE(Exporter::writeSnapshotFile(JsonPath, &Error)) << Error;
  std::ifstream JsonIn(JsonPath);
  std::stringstream JsonBuf;
  JsonBuf << JsonIn.rdbuf();
  telemetry::json::Value Root;
  EXPECT_TRUE(telemetry::json::parse(JsonBuf.str(), Root));
  EXPECT_EQ(Root.numberOr("gmdiv_metrics", 0), 1.0);

  std::remove(PromPath.c_str());
  std::remove(JsonPath.c_str());
}

namespace {
std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}
} // namespace

TEST(MetricsExporter, AtomicRenameReplacesAnExistingDestination) {
  Registry::global().counter(uniqueName("replace_total")).inc();
  const std::string Path =
      testing::TempDir() + "gmdiv_metrics_replace.prom";
  {
    std::ofstream Out(Path);
    Out << "STALE CONTENT A SCRAPER MUST NEVER SEE TORN\n";
  }
  std::string Error;
  ASSERT_TRUE(Exporter::writeSnapshotFile(Path, &Error)) << Error;
  // Fully replaced: the new content is a valid exposition with no trace
  // of the old bytes, and the temp file did not linger.
  const std::string Body = slurp(Path);
  EXPECT_EQ(Body.find("STALE CONTENT"), std::string::npos);
  std::vector<ParsedSample> Parsed;
  EXPECT_TRUE(parsePrometheusText(Body, Parsed, &Error)) << Error;
  EXPECT_FALSE(Parsed.empty());
  std::ifstream Tmp(Path + ".tmp");
  EXPECT_FALSE(Tmp.good()) << "temp file must not survive the rename";
  std::remove(Path.c_str());
}

TEST(MetricsExporter, UnwritableParentFailsWithoutPartialSnapshot) {
  // A regular file where the parent directory should be makes every
  // temp-file open fail with ENOTDIR — an "unwritable parent" that
  // works even when the suite runs as root (chmod is advisory then).
  const std::string Parent =
      testing::TempDir() + "gmdiv_metrics_notadir";
  std::remove(Parent.c_str());
  {
    std::ofstream Out(Parent);
    Out << "occupies the parent path\n";
  }
  const std::string Dest = Parent + "/metrics.prom";
  std::string Error;
  EXPECT_FALSE(Exporter::writeSnapshotFile(Dest, &Error));
  EXPECT_FALSE(Error.empty());
  // The placeholder parent is untouched and no partial output appeared.
  EXPECT_EQ(slurp(Parent), "occupies the parent path\n");
  std::remove(Parent.c_str());

#ifdef __unix__
  // The classic chmod-based variant only means anything unprivileged:
  // root bypasses directory write bits entirely.
  if (geteuid() != 0) {
    const std::string Dir = testing::TempDir() + "gmdiv_metrics_rodir";
    ASSERT_EQ(mkdir(Dir.c_str(), 0755), 0);
    const std::string RoDest = Dir + "/metrics.prom";
    {
      std::ofstream Out(RoDest);
      Out << "previous snapshot\n";
    }
    ASSERT_EQ(chmod(Dir.c_str(), 0555), 0);
    Error.clear();
    EXPECT_FALSE(Exporter::writeSnapshotFile(RoDest, &Error));
    EXPECT_FALSE(Error.empty());
    // Graceful failure: the existing snapshot survives intact and no
    // .tmp litters the directory.
    EXPECT_EQ(slurp(RoDest), "previous snapshot\n");
    std::ifstream Tmp(RoDest + ".tmp");
    EXPECT_FALSE(Tmp.good());
    ASSERT_EQ(chmod(Dir.c_str(), 0755), 0);
    std::remove(RoDest.c_str());
    rmdir(Dir.c_str());
  }
#endif
}

TEST(MetricsExposition, ParserRejectsMalformedExpositions) {
  std::vector<ParsedSample> Out;
  // Bad metric name, unescaped quote, duplicate series, TYPE after a
  // sample, garbage value.
  for (const char *Bad :
       {"0bad_name 1\n", "ok{l=\"a\"b\"} 1\n",
        "dup 1\ndup 2\n",
        "ok 1\n# TYPE ok counter\n",
        "ok notanumber\n"}) {
    Out.clear();
    EXPECT_FALSE(parsePrometheusText(Bad, Out)) << Bad;
  }
  // The empty exposition is trivially valid.
  Out.clear();
  EXPECT_TRUE(parsePrometheusText("", Out));
  EXPECT_TRUE(Out.empty());
}

} // namespace
