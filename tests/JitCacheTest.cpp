//===- tests/JitCacheTest.cpp - Sharded code cache tests ------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache contracts front-ends rely on: compile-once per key (hit
/// counters prove it), cross-thread sharing of one compiled sequence,
/// and eviction that drops the cache's reference without invalidating
/// handles already held. The mechanics tests drive the cache with a
/// counting stand-in compiler so they run identically on hosts without
/// the x86-64 backend; the execution tests gate on jit::enabled().
///
//===----------------------------------------------------------------------===//

#include "jit/JitCache.h"

#include "jit/JitDivider.h"
#include "metrics/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace gmdiv;
using namespace gmdiv::jit;

namespace {

/// A distinct (never-executed) sequence object, so pointer identity
/// distinguishes "shared" from "recompiled".
std::shared_ptr<const CompiledSequence> makeDummy() {
  return std::make_shared<const CompiledSequence>(ExecBuffer(), 1, 1,
                                                  std::vector<AsmLine>());
}

TEST(JitCache, CompileOncePerKey) {
  CodeCache Cache(4, 8);
  const CacheKey Key{SeqKind::UDiv, 32, 7};
  std::atomic<int> Compiles{0};
  const auto Compiler = [&] {
    ++Compiles;
    return makeDummy();
  };

  const auto First = Cache.getOrCompile(Key, Compiler);
  const auto Second = Cache.getOrCompile(Key, Compiler);
  EXPECT_EQ(Compiles.load(), 1);
  EXPECT_EQ(First.get(), Second.get());

  const CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Entries, 1u);
}

TEST(JitCache, ScalarAndVectorFormsAreDistinctKeys) {
  // The vector JIT shares the cache with the scalar kernels; the Form
  // field keeps a divisor's loop and its call-per-element sequence from
  // shadowing each other.
  CodeCache Cache(4, 8);
  const CacheKey Scalar{SeqKind::UDivRem, 32, 7};
  const CacheKey Vector{SeqKind::UDivRem, 32, 7, cache::KernelForm::Vector};
  EXPECT_FALSE(Scalar == Vector);

  std::atomic<int> Compiles{0};
  const auto Compiler = [&] {
    ++Compiles;
    return makeDummy();
  };
  const auto A = Cache.getOrCompile(Scalar, Compiler);
  const auto B = Cache.getOrCompile(Vector, Compiler);
  EXPECT_EQ(Compiles.load(), 2);
  EXPECT_NE(A.get(), B.get());

  const CacheStats ScalarForm = Cache.formStats(cache::KernelForm::Scalar);
  const CacheStats VectorForm = Cache.formStats(cache::KernelForm::Vector);
  EXPECT_EQ(ScalarForm.Misses, 1u);
  EXPECT_EQ(ScalarForm.Inserts, 1u);
  EXPECT_EQ(VectorForm.Misses, 1u);
  EXPECT_EQ(VectorForm.Inserts, 1u);

  // Repeat lookups land on the right form's hit counter.
  Cache.getOrCompile(Vector, Compiler);
  EXPECT_EQ(Compiles.load(), 2);
  EXPECT_EQ(Cache.formStats(cache::KernelForm::Vector).Hits, 1u);
  EXPECT_EQ(Cache.formStats(cache::KernelForm::Scalar).Hits, 0u);

  // Vector keys are marked in telemetry key descriptions.
  EXPECT_EQ(describeCacheKey(Vector), "vec-" + describeCacheKey(Scalar));
}

TEST(JitCache, DistinctKeysCompileSeparately) {
  CodeCache Cache(4, 8);
  std::atomic<int> Compiles{0};
  const auto Compiler = [&] {
    ++Compiles;
    return makeDummy();
  };
  // Kind, width, and divisor each split the key space.
  Cache.getOrCompile({SeqKind::UDiv, 32, 7}, Compiler);
  Cache.getOrCompile({SeqKind::URem, 32, 7}, Compiler);
  Cache.getOrCompile({SeqKind::UDiv, 64, 7}, Compiler);
  Cache.getOrCompile({SeqKind::UDiv, 32, 9}, Compiler);
  EXPECT_EQ(Compiles.load(), 4);
  EXPECT_EQ(Cache.stats().Entries, 4u);
}

TEST(JitCache, FailedCompileIsCachedNegative) {
  CodeCache Cache(4, 8);
  const CacheKey Key{SeqKind::SDiv, 32, 0};
  std::atomic<int> Compiles{0};
  const auto Failing = [&]() -> std::shared_ptr<const CompiledSequence> {
    ++Compiles;
    return nullptr;
  };
  EXPECT_EQ(Cache.getOrCompile(Key, Failing), nullptr);
  EXPECT_EQ(Cache.getOrCompile(Key, Failing), nullptr);
  // The bail was attempted once, then served from the cache.
  EXPECT_EQ(Compiles.load(), 1);
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(JitCache, CrossThreadReuseCompilesOnce) {
  CodeCache Cache(4, 16);
  constexpr int NumKeys = 8;
  std::atomic<int> Compiles{0};
  std::vector<std::shared_ptr<const CompiledSequence>> Seen(
      static_cast<size_t>(NumKeys));
  std::mutex SeenMutex;
  std::atomic<bool> Shared{true};

  const auto Worker = [&] {
    for (int Round = 0; Round < 500; ++Round) {
      const int K = Round % NumKeys;
      const CacheKey Key{SeqKind::UDiv, 32,
                         static_cast<uint64_t>(3 + 2 * K)};
      const auto Seq = Cache.getOrCompile(Key, [&] {
        ++Compiles;
        return makeDummy();
      });
      std::lock_guard<std::mutex> Lock(SeenMutex);
      auto &Expected = Seen[static_cast<size_t>(K)];
      if (!Expected)
        Expected = Seq;
      else if (Expected.get() != Seq.get())
        Shared = false;
    }
  };
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();

  // Every thread saw the same sequence per key, and no key compiled
  // twice even with 4 threads racing to it.
  EXPECT_TRUE(Shared.load());
  EXPECT_EQ(Compiles.load(), NumKeys);
  EXPECT_EQ(Cache.stats().Misses, static_cast<uint64_t>(NumKeys));
}

TEST(JitCache, EvictionKeepsHeldHandlesAlive) {
  // One shard, capacity two: the third insert must evict the LRU entry.
  CodeCache Cache(1, 2);
  std::atomic<int> Compiles{0};
  const auto Compiler = [&] {
    ++Compiles;
    return makeDummy();
  };
  const CacheKey A{SeqKind::UDiv, 32, 3};
  const CacheKey B{SeqKind::UDiv, 32, 5};
  const CacheKey C{SeqKind::UDiv, 32, 7};

  const auto HandleA = Cache.getOrCompile(A, Compiler);
  Cache.getOrCompile(B, Compiler);
  EXPECT_EQ(Cache.stats().Evictions, 0u);

  Cache.getOrCompile(C, Compiler); // Evicts A (least recently used).
  CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Stats.Entries, 2u);

  // The evicted handle is still alive — eviction drops the cache's
  // reference, not ours.
  EXPECT_NE(HandleA, nullptr);
  EXPECT_EQ(HandleA.use_count(), 1);

  // Re-requesting A recompiles (it is gone from the cache), and B —
  // refreshed less recently than C — is the one evicted next.
  Cache.getOrCompile(A, Compiler);
  EXPECT_EQ(Compiles.load(), 4);
  EXPECT_EQ(Cache.stats().Evictions, 2u);
}

TEST(JitCache, EvictedSequencesStillExecute) {
  if (!enabled())
    GTEST_SKIP() << "jit unavailable on this host";
  // Real compiled code this time: hold the first sequence, force it
  // out of a tiny cache, and call it after eviction.
  CodeCache Cache(1, 1);
  const auto First = compileCached(Cache, {SeqKind::UDiv, 32, 7});
  ASSERT_NE(First, nullptr);
  const auto Second = compileCached(Cache, {SeqKind::UDiv, 32, 11});
  ASSERT_NE(Second, nullptr);
  EXPECT_GE(Cache.stats().Evictions, 1u);
  EXPECT_EQ(First->call(1000), 1000u / 7u);
  EXPECT_EQ(Second->call(1000), 1000u / 11u);
}

TEST(JitCache, CountersExactUnderFourThreadContention) {
  // Shard counters are plain integers mutated under the shard mutex,
  // so even with four threads hammering the same keys the totals are
  // exact, not approximate.
  CodeCache Cache(4, 64);
  constexpr int NumThreads = 4;
  constexpr int RoundsPerThread = 1000;
  constexpr int NumKeys = 16;
  std::atomic<int> Compiles{0};
  const auto Worker = [&] {
    for (int Round = 0; Round < RoundsPerThread; ++Round) {
      const CacheKey Key{SeqKind::UDiv, 32,
                         static_cast<uint64_t>(3 + 2 * (Round % NumKeys))};
      Cache.getOrCompile(Key, [&] {
        ++Compiles;
        return makeDummy();
      });
    }
  };
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();

  const CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses,
            static_cast<uint64_t>(NumThreads) * RoundsPerThread);
  EXPECT_EQ(S.Misses, static_cast<uint64_t>(NumKeys));
  EXPECT_EQ(S.Inserts, S.Misses);
  EXPECT_EQ(S.NegativeHits, 0u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.Entries, static_cast<size_t>(NumKeys));
  EXPECT_EQ(Compiles.load(), NumKeys);
  // One compile-latency observation per miss, none lost.
  EXPECT_EQ(Cache.compileLatency().count(),
            static_cast<uint64_t>(NumKeys));
  EXPECT_DOUBLE_EQ(S.hitRatio(),
                   static_cast<double>(S.Hits) /
                       static_cast<double>(S.Hits + S.Misses));
}

TEST(JitCache, NegativeHitsAreTheCachedFailureSubset) {
  CodeCache Cache(2, 8);
  std::atomic<int> Compiles{0};
  const auto Failing = [&]() -> std::shared_ptr<const CompiledSequence> {
    ++Compiles;
    return nullptr;
  };
  const CacheKey Bad{SeqKind::SDiv, 32, 0};
  Cache.getOrCompile(Bad, Failing); // Miss, caches the failure.
  Cache.getOrCompile(Bad, Failing); // Hit on the null entry.
  Cache.getOrCompile(Bad, Failing);
  // A successful entry's hits are NOT negative hits.
  const CacheKey Good{SeqKind::UDiv, 32, 7};
  Cache.getOrCompile(Good, [&] { return makeDummy(); });
  Cache.getOrCompile(Good, [&] { return makeDummy(); });

  const CacheStats S = Cache.stats();
  EXPECT_EQ(Compiles.load(), 1);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.NegativeHits, 2u);
}

TEST(JitCache, ShardStatsSumToAggregate) {
  CodeCache Cache(8, 4);
  std::atomic<int> Compiles{0};
  const auto Compiler = [&] {
    ++Compiles;
    return makeDummy();
  };
  // Enough keys to spread over shards and force some evictions.
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t D = 3; D < 120; D += 2)
      Cache.getOrCompile({SeqKind::UDiv, 32, D}, Compiler);

  const std::vector<CacheStats> PerShard = Cache.shardStats();
  ASSERT_EQ(PerShard.size(), Cache.numShards());
  CacheStats Sum;
  for (const CacheStats &Row : PerShard) {
    EXPECT_EQ(Row.Capacity, Cache.shardCapacity());
    EXPECT_LE(Row.Entries, Row.Capacity);
    Sum.Hits += Row.Hits;
    Sum.Misses += Row.Misses;
    Sum.NegativeHits += Row.NegativeHits;
    Sum.Evictions += Row.Evictions;
    Sum.Inserts += Row.Inserts;
    Sum.Entries += Row.Entries;
    Sum.Capacity += Row.Capacity;
  }
  const CacheStats Total = Cache.stats();
  EXPECT_EQ(Sum.Hits, Total.Hits);
  EXPECT_EQ(Sum.Misses, Total.Misses);
  EXPECT_EQ(Sum.NegativeHits, Total.NegativeHits);
  EXPECT_EQ(Sum.Evictions, Total.Evictions);
  EXPECT_EQ(Sum.Inserts, Total.Inserts);
  EXPECT_EQ(Sum.Entries, Total.Entries);
  EXPECT_EQ(Sum.Capacity, Total.Capacity);
  EXPECT_EQ(Total.Misses, static_cast<uint64_t>(Compiles.load()));
  EXPECT_GT(Total.Evictions, 0u) << "8x4 cache with 59 keys must evict";
}

TEST(JitCache, ExportMetricsPublishesPerShardAndAggregateSeries) {
  CodeCache Cache(2, 8);
  Cache.exportMetrics("gmdiv_test_jitcache");
  const auto Compiler = [] { return makeDummy(); };
  for (uint64_t D = 3; D < 13; D += 2) {
    Cache.getOrCompile({SeqKind::UDiv, 32, D}, Compiler);
    Cache.getOrCompile({SeqKind::UDiv, 32, D}, Compiler);
  }
  const CacheStats Total = Cache.stats();

  const metrics::Snapshot Snap = metrics::Registry::global().snapshot();
  // Aggregate gauges.
  EXPECT_EQ(Snap.valueOr("gmdiv_test_jitcache_entries", {}, -1),
            static_cast<double>(Total.Entries));
  EXPECT_EQ(Snap.valueOr("gmdiv_test_jitcache_capacity", {}, -1), 16.0);
  EXPECT_DOUBLE_EQ(Snap.valueOr("gmdiv_test_jitcache_hit_ratio", {}, -1),
                   Total.hitRatio());
  // Per-shard counters sum back to the aggregate.
  double ShardHits = 0, ShardMisses = 0;
  for (int I = 0; I < 2; ++I) {
    const metrics::LabelSet L = {{"shard", std::to_string(I)}};
    ShardHits +=
        Snap.valueOr("gmdiv_test_jitcache_shard_hits_total", L, 0);
    ShardMisses +=
        Snap.valueOr("gmdiv_test_jitcache_shard_misses_total", L, 0);
  }
  EXPECT_EQ(ShardHits, static_cast<double>(Total.Hits));
  EXPECT_EQ(ShardMisses, static_cast<double>(Total.Misses));
  // The compile-latency histogram counts exactly the misses.
  const metrics::Sample *Latency =
      Snap.find("gmdiv_test_jitcache_compile_ns");
  ASSERT_NE(Latency, nullptr);
  EXPECT_EQ(Latency->Count, Total.Misses);
}

TEST(JitCache, DestructionUnregistersTheCollector) {
  {
    CodeCache Cache(2, 8);
    Cache.exportMetrics("gmdiv_test_jitcache_scoped");
    Cache.getOrCompile({SeqKind::UDiv, 32, 3}, [] { return makeDummy(); });
    EXPECT_GE(metrics::Registry::global().snapshot().valueOr(
                  "gmdiv_test_jitcache_scoped_entries", {}, -1),
              1.0);
  }
  // After the cache dies its collector must be gone, or the next
  // snapshot would touch freed memory.
  EXPECT_EQ(metrics::Registry::global().snapshot().valueOr(
                "gmdiv_test_jitcache_scoped_entries", {}, -1),
            -1.0);
}

TEST(JitCache, GlobalCacheSharesAcrossDividers) {
  const CacheStats Before = CodeCache::global().stats();
  const JitDivider<uint32_t> One(54323);
  const JitDivider<uint32_t> Two(54323);
  const CacheStats After = CodeCache::global().stats();
  // The second divider's three sequences were all cache hits.
  EXPECT_GE(After.Hits - Before.Hits, 3u);
  if (One.usesJit()) {
    EXPECT_EQ(One.compiledDiv(), Two.compiledDiv());
  }
  for (uint32_t N : {0u, 1u, 54322u, 54323u, 0xffffffffu}) {
    EXPECT_EQ(One.divide(N), N / 54323u);
    EXPECT_EQ(Two.remainder(N), N % 54323u);
  }
}

} // namespace
