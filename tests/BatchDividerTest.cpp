//===- tests/BatchDividerTest.cpp - Batch kernel correctness --------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Every compiled-in backend must agree bit-for-bit with the scalar
// dividers of core/Divider.h: exhaustively over the whole (n, d) space
// for 8-bit lanes, and over randomized + adversarial edge vectors for
// 16/32/64-bit lanes. The buffer sizes are deliberately not multiples
// of any vector width so the SIMD tails execute too.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchDivider.h"

#include "arch/Arch.h"
#include "arch/CostModel.h"
#include "core/Divider.h"
#include "telemetry/Remarks.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

using namespace gmdiv;
using namespace gmdiv::batch;

namespace {

std::vector<Backend> availableBackends() {
  std::vector<Backend> Result;
  for (Backend B :
       {Backend::Scalar, Backend::SSE2, Backend::AVX2, Backend::NEON})
    if (backendAvailable(B))
      Result.push_back(B);
  return Result;
}

/// Deterministic xorshift; seeds the randomized vectors.
uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

/// Dividend vector: every edge value, then deterministic randoms, with
/// a length (1031, prime) that leaves a tail on every vector width.
template <typename T> std::vector<T> makeInputs() {
  std::vector<T> In = {T(0), T(1), T(2), T(3),
                       std::numeric_limits<T>::max(),
                       T(std::numeric_limits<T>::max() - 1),
                       std::numeric_limits<T>::min(),
                       T(std::numeric_limits<T>::min() + 1),
                       T(std::numeric_limits<T>::max() / 2),
                       T(std::numeric_limits<T>::max() / 2 + 1)};
  for (int Bit = 0; Bit < static_cast<int>(sizeof(T) * 8); ++Bit) {
    const T P = static_cast<T>(typename std::make_unsigned<T>::type(1)
                               << Bit);
    In.push_back(P);
    In.push_back(static_cast<T>(P - 1));
    In.push_back(static_cast<T>(T(0) - P));
  }
  uint64_t Seed = 0x9E3779B97F4A7C15ull ^ (sizeof(T) * 8);
  while (In.size() < 1031)
    In.push_back(static_cast<T>(nextRand(Seed)));
  return In;
}

/// Divisors: small, power-of-two, near-max, and (signed) negative and
/// minimum values — every special case of Figures 4.2/5.2.
template <typename T> std::vector<T> makeDivisors() {
  std::vector<T> Ds = {T(1), T(2), T(3), T(5), T(7), T(10), T(11), T(25),
                       T(60), T(100), T(125),
                       std::numeric_limits<T>::max(),
                       T(std::numeric_limits<T>::max() - 1),
                       T(std::numeric_limits<T>::max() / 2),
                       T(std::numeric_limits<T>::max() / 2 + 1)};
  for (int Bit = 1; Bit < static_cast<int>(sizeof(T) * 8) - 1; ++Bit)
    Ds.push_back(static_cast<T>(typename std::make_unsigned<T>::type(1)
                                << Bit));
  if constexpr (std::is_signed_v<T>) {
    const size_t Positive = Ds.size();
    for (size_t I = 0; I < Positive; ++I)
      Ds.push_back(static_cast<T>(T(0) - Ds[I]));
    Ds.push_back(std::numeric_limits<T>::min()); // -2^(N-1).
  }
  std::sort(Ds.begin(), Ds.end());
  Ds.erase(std::unique(Ds.begin(), Ds.end()), Ds.end());
  Ds.erase(std::remove(Ds.begin(), Ds.end(), T(0)), Ds.end());
  return Ds;
}

//===----------------------------------------------------------------------===//
// Reference comparisons for one (divisor, backend) pair
//===----------------------------------------------------------------------===//

template <typename T>
void checkUnsigned(T D, Backend B, const std::vector<T> &In) {
  const BatchDivider<T> Batch(D, B);
  ASSERT_EQ(Batch.backend(), B) << Batch.describe();
  const UnsignedDivider<T> Ref(D);
  const size_t N = In.size();
  std::vector<T> Quot(N), Rem(N), Quot2(N), Rem2(N);
  std::vector<uint8_t> Div(N);

  Batch.divide(In.data(), Quot.data(), N);
  Batch.remainder(In.data(), Rem.data(), N);
  Batch.divRem(In.data(), Quot2.data(), Rem2.data(), N);
  Batch.divisible(In.data(), Div.data(), N);
  for (size_t I = 0; I < N; ++I) {
    ASSERT_EQ(Quot[I], Ref.divide(In[I]))
        << "divide n=" << uint64_t(In[I]) << " " << Batch.describe();
    ASSERT_EQ(Rem[I], Ref.remainder(In[I]))
        << "remainder n=" << uint64_t(In[I]) << " " << Batch.describe();
    ASSERT_EQ(Quot2[I], Quot[I]) << Batch.describe();
    ASSERT_EQ(Rem2[I], Rem[I]) << Batch.describe();
    ASSERT_EQ(Div[I], (In[I] % D) == 0 ? 1 : 0)
        << "divisible n=" << uint64_t(In[I]) << " " << Batch.describe();
  }

  // In-place (exact aliasing) must work too.
  std::vector<T> Alias = In;
  Batch.divide(Alias.data(), Alias.data(), N);
  ASSERT_EQ(Alias, Quot) << Batch.describe();
}

template <typename T>
void checkSigned(T D, Backend B, const std::vector<T> &In) {
  const BatchDivider<T> Batch(D, B);
  ASSERT_EQ(Batch.backend(), B) << Batch.describe();
  const SignedDivider<T> Ref(D);
  const FloorDivider<T> FloorRef(D);
  const CeilDivider<T> CeilRef(D);
  const size_t N = In.size();
  std::vector<T> Quot(N), Rem(N), Quot2(N), Rem2(N), Floor(N), Ceil(N);

  Batch.divide(In.data(), Quot.data(), N);
  Batch.remainder(In.data(), Rem.data(), N);
  Batch.divRem(In.data(), Quot2.data(), Rem2.data(), N);
  Batch.floorDivide(In.data(), Floor.data(), N);
  Batch.ceilDivide(In.data(), Ceil.data(), N);
  for (size_t I = 0; I < N; ++I) {
    ASSERT_EQ(Quot[I], Ref.divide(In[I]))
        << "divide n=" << int64_t(In[I]) << " " << Batch.describe();
    ASSERT_EQ(Rem[I], Ref.remainder(In[I]))
        << "remainder n=" << int64_t(In[I]) << " " << Batch.describe();
    ASSERT_EQ(Quot2[I], Quot[I]) << Batch.describe();
    ASSERT_EQ(Rem2[I], Rem[I]) << Batch.describe();
    ASSERT_EQ(Floor[I], FloorRef.divide(In[I]))
        << "floor n=" << int64_t(In[I]) << " " << Batch.describe();
    ASSERT_EQ(Ceil[I], CeilRef.divide(In[I]))
        << "ceil n=" << int64_t(In[I]) << " " << Batch.describe();
  }
}

//===----------------------------------------------------------------------===//
// Exhaustive 8-bit matrices: every (n, d), every backend
//===----------------------------------------------------------------------===//

TEST(BatchDivider, ExhaustiveUnsigned8AllBackends) {
  std::vector<uint8_t> In(256);
  for (int N0 = 0; N0 < 256; ++N0)
    In[size_t(N0)] = static_cast<uint8_t>(N0);
  for (Backend B : availableBackends())
    for (int D = 1; D < 256; ++D)
      checkUnsigned<uint8_t>(static_cast<uint8_t>(D), B, In);
}

TEST(BatchDivider, ExhaustiveSigned8AllBackends) {
  std::vector<int8_t> In(256);
  for (int N0 = -128; N0 < 128; ++N0)
    In[size_t(N0 + 128)] = static_cast<int8_t>(N0);
  for (Backend B : availableBackends())
    for (int D = -128; D < 128; ++D) {
      if (D == 0)
        continue;
      checkSigned<int8_t>(static_cast<int8_t>(D), B, In);
    }
}

//===----------------------------------------------------------------------===//
// Randomized + edge vectors for the wider lanes
//===----------------------------------------------------------------------===//

template <typename T> void runUnsignedSweep() {
  const std::vector<T> In = makeInputs<T>();
  for (Backend B : availableBackends())
    for (T D : makeDivisors<T>())
      checkUnsigned<T>(D, B, In);
}

template <typename T> void runSignedSweep() {
  const std::vector<T> In = makeInputs<T>();
  for (Backend B : availableBackends())
    for (T D : makeDivisors<T>())
      checkSigned<T>(D, B, In);
}

TEST(BatchDivider, Unsigned16Sweep) { runUnsignedSweep<uint16_t>(); }
TEST(BatchDivider, Unsigned32Sweep) { runUnsignedSweep<uint32_t>(); }
TEST(BatchDivider, Unsigned64Sweep) { runUnsignedSweep<uint64_t>(); }
TEST(BatchDivider, Signed16Sweep) { runSignedSweep<int16_t>(); }
TEST(BatchDivider, Signed32Sweep) { runSignedSweep<int32_t>(); }
TEST(BatchDivider, Signed64Sweep) { runSignedSweep<int64_t>(); }

// Exhaustive 16-bit dividends for a handful of divisors covering each
// Figure 4.1/5.1 shape (d=1, even, odd, pow2, near-max, negatives).
TEST(BatchDivider, Exhaustive16Dividends) {
  std::vector<uint16_t> UIn(65536);
  for (uint32_t N0 = 0; N0 < 65536; ++N0)
    UIn[N0] = static_cast<uint16_t>(N0);
  std::vector<int16_t> SIn(65536);
  std::memcpy(SIn.data(), UIn.data(), UIn.size() * sizeof(uint16_t));
  for (Backend B : availableBackends()) {
    for (uint16_t D : {1, 2, 7, 10, 641, 32768, 65535})
      checkUnsigned<uint16_t>(D, B, UIn);
    for (int D : {1, -1, 7, -7, 10, 641, -32768, 32767})
      checkSigned<int16_t>(static_cast<int16_t>(D), B, SIn);
  }
}

//===----------------------------------------------------------------------===//
// Dispatch: scalar and SIMD backends agree bit-for-bit
//===----------------------------------------------------------------------===//

template <typename T> void checkBackendsMatchScalar() {
  const std::vector<T> In = makeInputs<T>();
  const size_t N = In.size();
  for (T D : makeDivisors<T>()) {
    const BatchDivider<T> Scalar(D, Backend::Scalar);
    std::vector<T> Want(N), Got(N);
    Scalar.divide(In.data(), Want.data(), N);
    for (Backend B : availableBackends()) {
      const BatchDivider<T> Simd(D, B);
      Simd.divide(In.data(), Got.data(), N);
      ASSERT_EQ(Got, Want) << Simd.describe();
    }
  }
}

TEST(BatchDispatch, AllBackendsMatchScalarBitForBit) {
  checkBackendsMatchScalar<uint8_t>();
  checkBackendsMatchScalar<uint16_t>();
  checkBackendsMatchScalar<uint32_t>();
  checkBackendsMatchScalar<uint64_t>();
  checkBackendsMatchScalar<int8_t>();
  checkBackendsMatchScalar<int16_t>();
  checkBackendsMatchScalar<int32_t>();
  checkBackendsMatchScalar<int64_t>();
}

TEST(BatchDispatch, ActiveBackendIsAvailable) {
  const Backend B = activeBackend();
  EXPECT_TRUE(backendAvailable(B)) << backendName(B);
  const std::vector<Backend> Compiled = compiledBackends();
  EXPECT_NE(std::find(Compiled.begin(), Compiled.end(), B), Compiled.end());
  // Scalar is always first in the compiled list and always available.
  ASSERT_FALSE(Compiled.empty());
  EXPECT_EQ(Compiled.front(), Backend::Scalar);
  EXPECT_TRUE(backendAvailable(Backend::Scalar));
}

TEST(BatchDispatch, PinningUnavailableBackendFallsBackToScalar) {
  Backend Missing = Backend::NEON;
  if (backendAvailable(Backend::NEON))
    Missing = Backend::SSE2; // On ARM, SSE2 is the impossible one.
  if (backendAvailable(Missing))
    GTEST_SKIP() << "all backends available; nothing to fall back from";
  const BatchDivider<uint32_t> Div(7, Missing);
  EXPECT_EQ(Div.backend(), Backend::Scalar);
  uint32_t In = 63, Out = 0;
  Div.divide(&In, &Out, 1);
  EXPECT_EQ(Out, 9u);
}

TEST(BatchDispatch, BackendNamesAreStable) {
  EXPECT_STREQ(backendName(Backend::Scalar), "scalar");
  EXPECT_STREQ(backendName(Backend::SSE2), "sse2");
  EXPECT_STREQ(backendName(Backend::AVX2), "avx2");
  EXPECT_STREQ(backendName(Backend::NEON), "neon");
}

TEST(BatchDivider, DescribeMentionsBackendAndDivisor) {
  const BatchDivider<uint32_t> U(7, Backend::Scalar);
  EXPECT_NE(U.describe().find("u32 d=7"), std::string::npos);
  EXPECT_NE(U.describe().find("scalar"), std::string::npos);
  const BatchDivider<int32_t> S(-7, Backend::Scalar);
  EXPECT_NE(S.describe().find("i32 d=-7"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Telemetry: one "batch.backend" remark per selection
//===----------------------------------------------------------------------===//

#ifndef GMDIV_NO_TELEMETRY
TEST(BatchDispatch, SelectionEmitsBackendRemark) {
  telemetry::CollectingRemarkSink Sink;
  telemetry::ScopedRemarkSink Guard(&Sink);
  const BatchDivider<uint32_t> Div(7, Backend::Scalar);
  (void)Div;
  ASSERT_EQ(Sink.remarks().size(), 1u);
  const telemetry::Remark &R = Sink.remarks().front();
  EXPECT_EQ(R.Pass, "batch");
  EXPECT_EQ(R.Kind, "batch.backend");
  EXPECT_FALSE(R.HasDivisor);
  bool SawBackend = false;
  for (const auto &[Key, Value] : R.Details)
    if (Key == "backend") {
      SawBackend = true;
      EXPECT_EQ(Value, "scalar");
    }
  EXPECT_TRUE(SawBackend);
}
#endif // GMDIV_NO_TELEMETRY

//===----------------------------------------------------------------------===//
// Cost model: scalar-vs-vector break-even
//===----------------------------------------------------------------------===//

TEST(BatchCostModel, VectorWinsOnWideVectorsAndLoses1Lane) {
  const arch::ArchProfile &P = arch::profileByName("PowerPC/MPC601");
  const arch::BatchCost C128 = arch::estimateBatchCost(32, P, 128);
  EXPECT_EQ(C128.Lanes, 4);
  EXPECT_GT(C128.speedup(), 1.0);
  EXPECT_GE(C128.breakEvenBatch(), 1u);
  // Amortizing one multiply over four lanes must beat one multiply per
  // element even with the even/odd emulation's second multiply.
  EXPECT_LT(C128.VectorCyclesPerElement, C128.ScalarCyclesPerElement);

  const arch::BatchCost C1 = arch::estimateBatchCost(32, P, 32);
  EXPECT_EQ(C1.Lanes, 1);
  EXPECT_EQ(C1.breakEvenBatch(), 0u); // Never beats itself.
  EXPECT_DOUBLE_EQ(C1.VectorCyclesPerElement, C1.ScalarCyclesPerElement);
}

TEST(BatchCostModel, SixteenBitLanesAmortizeBest) {
  // 16-bit lanes have a native vector mulhi (one multiply per 16
  // lanes on AVX2); 64-bit lanes need four multiplies for 4 lanes.
  const arch::ArchProfile &P = arch::profileByName("PowerPC/MPC601");
  const arch::BatchCost C16 = arch::estimateBatchCost(16, P, 256);
  const arch::BatchCost C64 = arch::estimateBatchCost(64, P, 256);
  EXPECT_GT(C16.speedup(), C64.speedup());
  EXPECT_GT(C16.Lanes, C64.Lanes);
}

} // namespace
