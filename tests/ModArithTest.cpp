//===- tests/ModArithTest.cpp - Number theory tests -----------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "numtheory/ModArith.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x13198a2e03707344ull);
  return Generator;
}

TEST(ModArith, Gcd64MatchesStd) {
  for (int Iteration = 0; Iteration < 10000; ++Iteration) {
    const uint64_t A = rng()() >> (rng()() % 64);
    const uint64_t B = rng()() >> (rng()() % 64);
    EXPECT_EQ(gcd64(A, B), std::gcd(A, B));
  }
  EXPECT_EQ(gcd64(0, 5), 5u);
  EXPECT_EQ(gcd64(5, 0), 5u);
  EXPECT_EQ(gcd64(12, 18), 6u);
}

TEST(ModArith, ExtendedGcdBezoutProperty) {
  for (int Iteration = 0; Iteration < 5000; ++Iteration) {
    uint64_t A = rng()() >> (rng()() % 64);
    uint64_t B = rng()() >> (rng()() % 64);
    if (A == 0 && B == 0)
      A = 1;
    const ExtendedGcd128 Result = extendedGcd(UInt128(A), UInt128(B));
    EXPECT_EQ(Result.G, UInt128(std::gcd(A, B)));
    // X*A + Y*B == G in wrapped 128-bit arithmetic (exact here because
    // the coefficients are small).
    const Int128 Combination =
        Result.X * Int128::fromBits(UInt128(A)) +
        Result.Y * Int128::fromBits(UInt128(B));
    EXPECT_EQ(Combination, Int128::fromBits(Result.G));
  }
}

TEST(ModArith, ExtendedGcdAgainstPow2Modulus) {
  // The §9 use case: gcd(d_odd, 2^N) = 1 with a usable inverse.
  for (uint64_t D : {uint64_t{1}, uint64_t{3}, uint64_t{25}, uint64_t{625},
                     uint64_t{0xccccccccccccccccull | 1}, ~uint64_t{0}}) {
    const ExtendedGcd128 Result = extendedGcd(UInt128(D), UInt128::pow2(64));
    EXPECT_EQ(Result.G, UInt128(1)) << D;
  }
}

template <typename UWord> void checkInversesExhaustive() {
  constexpr int Bits = static_cast<int>(sizeof(UWord) * 8);
  const uint64_t Count = uint64_t{1} << Bits;
  for (uint64_t Odd = 1; Odd < Count; Odd += 2) {
    const UWord Value = static_cast<UWord>(Odd);
    const UWord Newton = modInverseNewton(Value);
    const UWord Euclid = modInverseEuclid(Value);
    EXPECT_EQ(Newton, Euclid) << "d=" << Odd;
    EXPECT_EQ(static_cast<UWord>(Newton * Value), 1) << "d=" << Odd;
  }
}

TEST(ModArith, InversesExhaustive8) { checkInversesExhaustive<uint8_t>(); }
TEST(ModArith, InversesExhaustive16) { checkInversesExhaustive<uint16_t>(); }

template <typename UWord> void checkInversesRandom(int Iterations) {
  for (int Iteration = 0; Iteration < Iterations; ++Iteration) {
    const UWord Value = static_cast<UWord>(rng()() | 1);
    const UWord Newton = modInverseNewton(Value);
    EXPECT_EQ(Newton, modInverseEuclid(Value));
    EXPECT_EQ(static_cast<UWord>(Newton * Value), 1);
  }
}

TEST(ModArith, InversesRandom32) { checkInversesRandom<uint32_t>(20000); }
TEST(ModArith, InversesRandom64) { checkInversesRandom<uint64_t>(20000); }

TEST(ModArith, PaperExampleInverseOf25) {
  // §9: "To test whether a signed 32-bit value is divisible by 100, let
  // d_inv = (19 * 2^32 + 1) / 25" — the inverse of 25 mod 2^32.
  const uint32_t Expected =
      static_cast<uint32_t>((19ull * (uint64_t{1} << 32) + 1) / 25);
  EXPECT_EQ(modInverseNewton<uint32_t>(25), Expected);
  EXPECT_EQ(Expected * 25u, 1u);
}

TEST(ModArith, NewtonIterationCountMatchesPaper) {
  // (9.2) doubles the valid exponent per step starting from 3 bits, so
  // ⌈log2(N/3)⌉ iterations suffice. Check convergence is no slower: the
  // loop in modInverseNewton runs while precision < N with precision
  // doubling from 3 — 2 steps at N=8, 3 at N=16, 4 at N=32, 5 at N=64.
  // This is implicitly covered by the correctness tests; here we verify
  // the claimed starting precision: d * d == 1 mod 8 for all odd d.
  for (unsigned D = 1; D < 256; D += 2)
    EXPECT_EQ((D * D) & 7u, 1u);
}

} // namespace
