//===- tests/ServiceRegistryTest.cpp - Divider registry contracts ---------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Contracts of the service tier (src/service): key validation,
// compile-once admission under contention, lock-free lookup counters,
// LRU eviction liveness, bit-for-bit agreement with the core dividers,
// the async batch front door's ordering and error paths, and the
// metrics-plane export. The TSan CI leg runs this whole file; the
// MixedContentionStress test at the bottom is the data-race hammer.
//
//===----------------------------------------------------------------------===//

#include "service/BatchService.h"
#include "service/DividerEntry.h"
#include "service/Epoch.h"
#include "service/Key.h"
#include "service/Registry.h"

#include "core/Divider.h"
#include "metrics/Metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace gmdiv {
namespace service {
namespace {

uint64_t splitmix(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  return cache::mixBits(State);
}

DividerRegistry::Options smallOptions(size_t Shards, size_t Capacity,
                                      bool UseJit = false) {
  DividerRegistry::Options O;
  O.NumShards = Shards;
  O.ShardCapacity = Capacity;
  O.UseJit = UseJit;
  O.SampleEvery = 1; // deterministic recency stamps for LRU tests
  return O;
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

TEST(ServiceKey, KeyForBuildsCanonicalKeys) {
  const Key U = keyFor<uint32_t>(7);
  EXPECT_EQ(U.Kind, OpKind::Unsigned);
  EXPECT_EQ(U.WordBits, 32);
  EXPECT_EQ(U.DivisorBits, 7u);
  EXPECT_TRUE(U.valid());
  EXPECT_EQ(U.describe(), "u32/7");

  const Key S = keyFor<int16_t>(-3);
  EXPECT_EQ(S.Kind, OpKind::Signed);
  EXPECT_EQ(S.WordBits, 16);
  EXPECT_EQ(S.DivisorBits, 0xfffdu); // -3 masked to 16 bits
  EXPECT_TRUE(S.valid());
  EXPECT_EQ(S.describe(), "i16/-3");
}

TEST(ServiceKey, ValidRejectsZeroBadWidthAndStrayBits) {
  EXPECT_FALSE(keyFor<uint32_t>(0).valid());
  EXPECT_FALSE((Key{OpKind::Unsigned, 24, 7}).valid());
  EXPECT_FALSE((Key{OpKind::Unsigned, 16, 0x10000}).valid());
  EXPECT_TRUE((Key{OpKind::Unsigned, 64, ~0ull}).valid());
  // INT_MIN-magnitude divisor is admissible (SignedDivider accepts it).
  EXPECT_TRUE(keyFor<int8_t>(int8_t(-128)).valid());
}

TEST(ServiceRegistry, InvalidKeysAreRejectedNotCached) {
  DividerRegistry R(smallOptions(1, 8));
  EXPECT_EQ(R.acquire(keyFor<uint32_t>(0)), nullptr);
  EXPECT_EQ(R.lookup(Key{OpKind::Unsigned, 13, 5}), nullptr);
  EXPECT_EQ(R.invalidKeys(), 2u);
  EXPECT_EQ(R.size(), 0u);
  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Hits + St.Misses, 0u); // rejected before counting
}

//===----------------------------------------------------------------------===//
// Admission and the lock-free hit path
//===----------------------------------------------------------------------===//

TEST(ServiceRegistry, AcquireAdmitsOnceThenHits) {
  DividerRegistry R(smallOptions(4, 16));
  const Key K = keyFor<uint32_t>(7);
  const auto E1 = R.acquire(K);
  ASSERT_NE(E1, nullptr);
  const auto E2 = R.acquire(K);
  const auto E3 = R.lookup(K);
  EXPECT_EQ(E1.get(), E2.get());
  EXPECT_EQ(E1.get(), E3.get());

  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Inserts, 1u);
  EXPECT_EQ(St.Hits, 2u);
  EXPECT_EQ(R.size(), 1u);
}

TEST(ServiceRegistry, LookupNeverAdmits) {
  DividerRegistry R(smallOptions(4, 16));
  EXPECT_EQ(R.lookup(keyFor<uint32_t>(9)), nullptr);
  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Inserts, 0u);
  EXPECT_EQ(R.size(), 0u);
}

TEST(ServiceRegistry, WithEntryRunsUnderTheGuardWithoutCopying) {
  DividerRegistry R(smallOptions(2, 8));
  const Key K = keyFor<uint64_t>(10);
  ASSERT_NE(R.acquire(K), nullptr);

  uint64_t Rem = ~0ull;
  const bool Hit = R.withEntry(K, [&](const DividerEntry &E) {
    Rem = E.remainderBits(1234567);
  });
  EXPECT_TRUE(Hit);
  EXPECT_EQ(Rem, 1234567 % 10u);
  EXPECT_FALSE(
      R.withEntry(keyFor<uint64_t>(11), [](const DividerEntry &) {}));
  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 2u); // withEntry miss + the acquire admission
}

TEST(ServiceRegistry, SampledLookupsFeedTheLatencyHistogram) {
  DividerRegistry R(smallOptions(1, 8)); // SampleEvery = 1
  const Key K = keyFor<uint32_t>(3);
  ASSERT_NE(R.acquire(K), nullptr);
  for (int I = 0; I < 10; ++I)
    ASSERT_NE(R.lookup(K), nullptr);
  EXPECT_GE(R.lookupLatency().cumulative().Count, 10u);
  EXPECT_EQ(R.admitLatency().cumulative().Count, 1u);
}

//===----------------------------------------------------------------------===//
// Agreement with the core dividers
//===----------------------------------------------------------------------===//

template <typename T> void expectAgreesWithCore(DividerRegistry &R) {
  using U = std::make_unsigned_t<T>;
  const std::array<int64_t, 7> Divisors = {1, 2, 3, 7, 10, 25, 127};
  uint64_t Rng = 0x1234 + sizeof(T);
  for (int64_t DRaw : Divisors) {
    for (const int Sign : {+1, -1}) {
      if (Sign < 0 && !std::is_signed_v<T>)
        continue;
      const T D = static_cast<T>(Sign * DRaw);
      const auto E = R.acquireFor<T>(D);
      ASSERT_NE(E, nullptr) << int(sizeof(T) * 8) << "-bit d=" << int64_t(D);

      std::vector<uint64_t> Patterns = {0, 1, static_cast<uint64_t>(-1),
                                        uint64_t{1}
                                            << (sizeof(T) * 8 - 1)};
      for (int I = 0; I < 40; ++I)
        Patterns.push_back(splitmix(Rng));
      for (uint64_t P : Patterns) {
        const T N = static_cast<T>(static_cast<U>(P));
        T WantQ, WantR;
        if constexpr (std::is_signed_v<T>) {
          const SignedDivider<T> Ref(D);
          WantQ = Ref.divide(N);
          WantR = Ref.remainder(N);
        } else {
          const UnsignedDivider<T> Ref(D);
          WantQ = Ref.divide(N);
          WantR = Ref.remainder(N);
        }
        EXPECT_EQ(E->template divide<T>(N), WantQ);
        EXPECT_EQ(E->template remainder<T>(N), WantR);
        const auto [QB, RB] =
            E->divRemBits(static_cast<uint64_t>(static_cast<U>(N)));
        EXPECT_EQ(static_cast<T>(static_cast<U>(QB)), WantQ);
        EXPECT_EQ(static_cast<T>(static_cast<U>(RB)), WantR);
      }
    }
  }
}

TEST(ServiceRegistry, EntriesAgreeWithCoreDividersNoJit) {
  DividerRegistry R(smallOptions(8, 64, /*UseJit=*/false));
  expectAgreesWithCore<uint8_t>(R);
  expectAgreesWithCore<uint16_t>(R);
  expectAgreesWithCore<uint32_t>(R);
  expectAgreesWithCore<uint64_t>(R);
  expectAgreesWithCore<int8_t>(R);
  expectAgreesWithCore<int16_t>(R);
  expectAgreesWithCore<int32_t>(R);
  expectAgreesWithCore<int64_t>(R);
}

TEST(ServiceRegistry, EntriesAgreeWithCoreDividersJit) {
  // On hosts without the JIT backend (or GMDIV_NO_JIT=1) the entries
  // fall back to the interpreter inside JitDivider; agreement must
  // hold either way.
  DividerRegistry R(smallOptions(8, 64, /*UseJit=*/true));
  expectAgreesWithCore<uint32_t>(R);
  expectAgreesWithCore<uint64_t>(R);
  expectAgreesWithCore<int32_t>(R);
  expectAgreesWithCore<int64_t>(R);
}

TEST(ServiceRegistry, SignedWrapCaseAgreesWithCore) {
  DividerRegistry R(smallOptions(1, 8, /*UseJit=*/true));
  const auto E = R.acquireFor<int32_t>(-1);
  ASSERT_NE(E, nullptr);
  const SignedDivider<int32_t> Ref(-1);
  const int32_t Min = std::numeric_limits<int32_t>::min();
  EXPECT_EQ(E->divide<int32_t>(Min), Ref.divide(Min)); // wraps, no trap
}

TEST(ServiceRegistry, ArrayOpsMatchScalarLoops) {
  DividerRegistry R(smallOptions(2, 16, /*UseJit=*/false));
  const auto E = R.acquireFor<uint32_t>(7);
  ASSERT_NE(E, nullptr);

  uint64_t Rng = 99;
  std::vector<uint32_t> In(97), Q(97), Rem(97), WantQ(97), WantR(97);
  for (size_t I = 0; I < In.size(); ++I) {
    In[I] = static_cast<uint32_t>(splitmix(Rng));
    WantQ[I] = In[I] / 7;
    WantR[I] = In[I] % 7;
  }
  E->divideArray(In.data(), Q.data(), In.size());
  EXPECT_EQ(Q, WantQ);
  E->remainderArray(In.data(), Rem.data(), In.size());
  EXPECT_EQ(Rem, WantR);
  std::fill(Q.begin(), Q.end(), 0u);
  std::fill(Rem.begin(), Rem.end(), 0u);
  E->divRemArray(In.data(), Q.data(), Rem.data(), In.size());
  EXPECT_EQ(Q, WantQ);
  EXPECT_EQ(Rem, WantR);
}

//===----------------------------------------------------------------------===//
// Compile-once admission under contention
//===----------------------------------------------------------------------===//

TEST(ServiceRegistry, EightThreadCompileOncePerKey) {
  // Eight threads race acquire() over the same key set (JIT precompute
  // on, so admission is expensive enough to overlap). Every thread
  // must observe the same entry per key, and each key must be built
  // exactly once.
  constexpr size_t Threads = 8;
  constexpr size_t NumKeys = 24;
  constexpr size_t Rounds = 50;
  DividerRegistry R(smallOptions(4, 64, /*UseJit=*/true));

  std::vector<Key> Keys;
  for (size_t I = 0; I < NumKeys; ++I)
    Keys.push_back(keyFor<uint32_t>(static_cast<uint32_t>(3 + 2 * I)));

  std::vector<std::vector<const DividerEntry *>> Seen(
      Threads, std::vector<const DividerEntry *>(NumKeys, nullptr));
  std::atomic<size_t> Ready{0};
  std::vector<std::thread> Pool;
  for (size_t T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (Ready.load() < Threads) {
      } // start gate: maximize admission races
      for (size_t Round = 0; Round < Rounds; ++Round) {
        for (size_t I = 0; I < NumKeys; ++I) {
          const size_t Idx = (I * 7 + T * 3 + Round) % NumKeys;
          const auto E = R.acquire(Keys[Idx]);
          ASSERT_NE(E, nullptr);
          if (!Seen[T][Idx])
            Seen[T][Idx] = E.get();
          else
            ASSERT_EQ(Seen[T][Idx], E.get());
        }
      }
    });
  }
  for (std::thread &W : Pool)
    W.join();

  for (size_t I = 0; I < NumKeys; ++I)
    for (size_t T = 1; T < Threads; ++T)
      EXPECT_EQ(Seen[T][I], Seen[0][I]) << "key " << I;

  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Inserts, NumKeys);
  EXPECT_EQ(St.Misses, NumKeys); // late hits count as hits
  EXPECT_EQ(St.Hits + St.Misses, Threads * Rounds * NumKeys);
  EXPECT_EQ(St.Evictions, 0u);
}

TEST(ServiceRegistry, CountersExactUnderContention) {
  constexpr size_t Threads = 8;
  constexpr size_t NumKeys = 32;
  constexpr size_t Rounds = 400;
  DividerRegistry R(smallOptions(8, 64, /*UseJit=*/false));

  std::vector<std::thread> Pool;
  for (size_t T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      uint64_t Rng = 0xabc + T;
      for (size_t Round = 0; Round < Rounds; ++Round) {
        const uint32_t D =
            static_cast<uint32_t>(1 + (splitmix(Rng) % NumKeys));
        ASSERT_NE(R.acquireFor<uint32_t>(D), nullptr);
      }
    });
  }
  for (std::thread &W : Pool)
    W.join();

  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Hits + St.Misses, Threads * Rounds);
  EXPECT_EQ(St.Misses, St.Inserts);
  EXPECT_EQ(St.Inserts, R.size());
  EXPECT_LE(St.Inserts, NumKeys);

  // Per-shard rows sum to the aggregate.
  cache::CacheStats Sum;
  for (const cache::CacheStats &Row : R.shardStats())
    Sum += Row;
  EXPECT_EQ(Sum.Hits, St.Hits);
  EXPECT_EQ(Sum.Misses, St.Misses);
  EXPECT_EQ(Sum.Inserts, St.Inserts);
}

//===----------------------------------------------------------------------===//
// Eviction
//===----------------------------------------------------------------------===//

TEST(ServiceRegistry, EvictionKeepsHeldHandlesAlive) {
  DividerRegistry R(smallOptions(1, 4));
  const Key First = keyFor<uint32_t>(101);
  const auto Held = R.acquire(First);
  ASSERT_NE(Held, nullptr);
  for (uint32_t D = 102; D < 106; ++D)
    ASSERT_NE(R.acquireFor<uint32_t>(D), nullptr);

  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.lookup(First), nullptr); // evicted from the table...
  EXPECT_EQ(Held->divide<uint32_t>(707), 707u / 101); // ...but alive
  EXPECT_EQ(Held.use_count(), 1); // registry dropped every reference

  // Re-acquiring the evicted key admits a fresh entry.
  const auto Fresh = R.acquire(First);
  ASSERT_NE(Fresh, nullptr);
  EXPECT_NE(Fresh.get(), Held.get());
}

TEST(ServiceRegistry, EvictionPicksTheStalestEntry) {
  DividerRegistry R(smallOptions(1, 3)); // SampleEvery = 1
  const Key A = keyFor<uint32_t>(11), B = keyFor<uint32_t>(12),
            C = keyFor<uint32_t>(13), D = keyFor<uint32_t>(14);
  ASSERT_NE(R.acquire(A), nullptr);
  ASSERT_NE(R.acquire(B), nullptr);
  ASSERT_NE(R.acquire(C), nullptr);
  // Refresh A and C; B is now the stalest.
  ASSERT_NE(R.lookup(A), nullptr);
  ASSERT_NE(R.lookup(C), nullptr);
  ASSERT_NE(R.acquire(D), nullptr); // evicts B
  EXPECT_NE(R.lookup(A), nullptr);
  EXPECT_EQ(R.lookup(B), nullptr);
  EXPECT_NE(R.lookup(C), nullptr);
  EXPECT_NE(R.lookup(D), nullptr);
  EXPECT_EQ(R.stats().Evictions, 1u);
}

TEST(ServiceRegistry, ClearDropsEntriesKeepsCounters) {
  DividerRegistry R(smallOptions(2, 8));
  ASSERT_NE(R.acquireFor<uint32_t>(5), nullptr);
  ASSERT_NE(R.acquireFor<uint32_t>(6), nullptr);
  const uint64_t MissesBefore = R.stats().Misses;
  R.clear();
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.stats().Misses, MissesBefore);
  EXPECT_EQ(R.lookup(keyFor<uint32_t>(5)), nullptr);
}

//===----------------------------------------------------------------------===//
// Epoch domain
//===----------------------------------------------------------------------===//

TEST(ServiceEpoch, GuardsNestAndAnnounce) {
  EpochDomain &D = EpochDomain::global();
  const uint64_t Before = D.current();
  {
    EpochDomain::Guard G1(D);
    EXPECT_LE(D.minActive(), D.current());
    {
      EpochDomain::Guard G2(D); // nested: must not clobber G1's pin
      EXPECT_LE(D.minActive(), D.current());
    }
    // Still pinned by G1.
    EXPECT_LE(D.minActive(), D.current());
  }
  EXPECT_GE(D.current(), Before);
  EXPECT_GE(D.slotCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Batch front door
//===----------------------------------------------------------------------===//

BatchService::Options workerOptions(size_t Workers) {
  BatchService::Options O;
  O.Workers = Workers;
  O.QueueCapacity = 64;
  return O;
}

TEST(BatchService, SubmitDivideRemainderDivRem) {
  DividerRegistry R(smallOptions(4, 32));
  BatchService Svc(R, workerOptions(2));

  std::vector<uint32_t> In(256), Q(256), Rem(256);
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = static_cast<uint32_t>(I * 2654435761u);

  auto FQ = Svc.submitDivide<uint32_t>(9, In, Q);
  auto FR = Svc.submitRemainder<uint32_t>(9, In, Rem);
  const BatchResult RQ = FQ.get();
  const BatchResult RR = FR.get();
  EXPECT_EQ(RQ.Elements, In.size());
  EXPECT_EQ(RQ.K, keyFor<uint32_t>(9));
  EXPECT_STRNE(RQ.Backend, "");
  EXPECT_GT(RQ.JobNs, 0u);
  EXPECT_EQ(RR.Elements, In.size());
  for (size_t I = 0; I < In.size(); ++I) {
    ASSERT_EQ(Q[I], In[I] / 9);
    ASSERT_EQ(Rem[I], In[I] % 9);
  }

  std::vector<int32_t> SIn(64), SQ(64), SR(64);
  for (size_t I = 0; I < SIn.size(); ++I)
    SIn[I] = static_cast<int32_t>(I * 7919) - 200000;
  Svc.submitDivRem<int32_t>(-7, SIn, SQ, SR).get();
  for (size_t I = 0; I < SIn.size(); ++I) {
    ASSERT_EQ(SQ[I], SIn[I] / -7);
    ASSERT_EQ(SR[I], SIn[I] % -7);
  }
}

TEST(BatchService, SingleWorkerRunsJobsInSubmissionOrder) {
  DividerRegistry R(smallOptions(2, 16));
  BatchService Svc(R, workerOptions(1));

  // x % 7 then % 5 is order-sensitive (13 % 7 % 5 = 1, 13 % 5 % 7 = 3):
  // chaining in-place jobs over one buffer observes FIFO execution.
  std::vector<uint32_t> Buf(512, 13);
  std::span<uint32_t> Out(Buf);
  std::span<const uint32_t> In(Buf.data(), Buf.size());
  auto F1 = Svc.submitRemainder<uint32_t>(7, In, Out);
  auto F2 = Svc.submitRemainder<uint32_t>(5, In, Out);
  F1.get();
  F2.get();
  for (uint32_t V : Buf)
    ASSERT_EQ(V, 1u);

  Svc.drain();
  EXPECT_EQ(Svc.pending(), 0u);
}

TEST(BatchService, InvalidSubmissionsFailTheFutureWithoutEnqueueing) {
  DividerRegistry R(smallOptions(2, 16));
  BatchService Svc(R, workerOptions(1));

  std::vector<uint32_t> In(16), Out(16), Short(8);
  auto FZero = Svc.submitDivide<uint32_t>(0, In, Out);
  EXPECT_THROW(FZero.get(), std::invalid_argument);
  auto FMismatch = Svc.submitDivide<uint32_t>(
      3, std::span<const uint32_t>(In), std::span<uint32_t>(Short));
  EXPECT_THROW(FMismatch.get(), std::invalid_argument);
  std::vector<uint32_t> Rem(8);
  auto FDrMismatch = Svc.submitDivRem<uint32_t>(
      3, std::span<const uint32_t>(In), std::span<uint32_t>(Out),
      std::span<uint32_t>(Rem));
  EXPECT_THROW(FDrMismatch.get(), std::invalid_argument);

  Svc.drain();
  EXPECT_EQ(R.size(), 0u); // nothing was admitted
}

TEST(BatchService, ManyJobsAcrossWorkersAllResolve) {
  DividerRegistry R(smallOptions(8, 64));
  BatchService Svc(R, workerOptions(4));

  constexpr size_t Jobs = 120;
  constexpr size_t Lanes = 128;
  std::vector<std::vector<uint64_t>> Ins(Jobs), Outs(Jobs);
  std::vector<std::future<BatchResult>> Futures;
  uint64_t Rng = 7;
  for (size_t J = 0; J < Jobs; ++J) {
    Ins[J].resize(Lanes);
    Outs[J].resize(Lanes);
    for (size_t I = 0; I < Lanes; ++I)
      Ins[J][I] = splitmix(Rng);
    const uint64_t D = 2 + (J % 29);
    Futures.push_back(Svc.submitRemainder<uint64_t>(D, Ins[J], Outs[J]));
  }
  for (size_t J = 0; J < Jobs; ++J) {
    const BatchResult Res = Futures[J].get();
    EXPECT_EQ(Res.Elements, Lanes);
    const uint64_t D = 2 + (J % 29);
    for (size_t I = 0; I < Lanes; ++I)
      ASSERT_EQ(Outs[J][I], Ins[J][I] % D) << "job " << J;
  }
  Svc.drain();
  EXPECT_EQ(Svc.pending(), 0u);
}

//===----------------------------------------------------------------------===//
// Metrics export
//===----------------------------------------------------------------------===//

TEST(ServiceRegistry, ExportMetricsPublishesPerShardAndAggregateSeries) {
  auto R = std::make_unique<DividerRegistry>(smallOptions(4, 8));
  R->exportMetrics("gmdiv_test_service");
  ASSERT_NE(R->acquireFor<uint32_t>(7), nullptr);
  ASSERT_NE(R->lookup(keyFor<uint32_t>(7)), nullptr);
  ASSERT_EQ(R->lookup(keyFor<uint32_t>(0)), nullptr); // invalid

  const metrics::Snapshot Snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(Snap.valueOr("gmdiv_test_service_entries", {}, -1), 1.0);
  EXPECT_EQ(Snap.valueOr("gmdiv_test_service_capacity", {}, -1), 32.0);
  EXPECT_DOUBLE_EQ(Snap.valueOr("gmdiv_test_service_occupancy", {}, -1),
                   1.0 / 32.0);
  EXPECT_DOUBLE_EQ(Snap.valueOr("gmdiv_test_service_hit_ratio", {}, -1),
                   0.5);
  EXPECT_EQ(Snap.valueOr("gmdiv_test_service_invalid_keys_total", {}, -1),
            1.0);

  double Hits = 0, Misses = 0, Inserts = 0;
  for (size_t I = 0; I < R->numShards(); ++I) {
    const metrics::LabelSet L = {{"shard", std::to_string(I)}};
    Hits += Snap.valueOr("gmdiv_test_service_shard_hits_total", L, 0);
    Misses += Snap.valueOr("gmdiv_test_service_shard_misses_total", L, 0);
    Inserts += Snap.valueOr("gmdiv_test_service_shard_inserts_total", L, 0);
  }
  EXPECT_EQ(Hits, 1.0);
  EXPECT_EQ(Misses, 1.0);
  EXPECT_EQ(Inserts, 1.0);

  // Destruction unregisters the collector: the series disappear.
  R.reset();
  EXPECT_EQ(metrics::Registry::global().snapshot().valueOr(
                "gmdiv_test_service_entries", {}, -123),
            -123.0);
}

TEST(BatchService, ExportMetricsPublishesJobSeries) {
  DividerRegistry R(smallOptions(2, 16));
  {
    BatchService Svc(R, workerOptions(1));
    Svc.exportMetrics("gmdiv_test_batchsvc");
    std::vector<uint32_t> In(32, 9), Out(32);
    Svc.submitDivide<uint32_t>(3, In, Out).get();
    auto Bad = Svc.submitDivide<uint32_t>(0, In, Out);
    EXPECT_THROW(Bad.get(), std::invalid_argument);
    Svc.drain();

    const metrics::Snapshot Snap = metrics::Registry::global().snapshot();
    EXPECT_EQ(Snap.valueOr("gmdiv_test_batchsvc_submitted_total", {}, -1),
              1.0);
    EXPECT_EQ(Snap.valueOr("gmdiv_test_batchsvc_completed_total", {}, -1),
              1.0);
    EXPECT_EQ(Snap.valueOr("gmdiv_test_batchsvc_rejected_total", {}, -1),
              1.0);
    EXPECT_EQ(Snap.valueOr("gmdiv_test_batchsvc_elements_total", {}, -1),
              32.0);
    EXPECT_EQ(Snap.valueOr("gmdiv_test_batchsvc_workers", {}, -1), 1.0);
  }
  EXPECT_EQ(metrics::Registry::global().snapshot().valueOr(
                "gmdiv_test_batchsvc_submitted_total", {}, -123),
            -123.0);
}

//===----------------------------------------------------------------------===//
// Mixed stress (the TSan hammer)
//===----------------------------------------------------------------------===//

TEST(ServiceRegistry, MixedContentionStress) {
  // Small capacity forces constant eviction + table retirement while
  // readers run lock-free: the memory-reclamation scheme's worst case.
  DividerRegistry R(smallOptions(2, 8));
  BatchService Svc(R, workerOptions(2));
  constexpr size_t Threads = 6;
  constexpr size_t Ops = 3000;

  std::vector<std::thread> Pool;
  std::atomic<uint64_t> Checksum{0};
  for (size_t T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      uint64_t Rng = 0xfeed + T;
      uint64_t Local = 0;
      for (size_t I = 0; I < Ops; ++I) {
        const uint32_t D = static_cast<uint32_t>(1 + (splitmix(Rng) % 48));
        const Key K = keyFor<uint32_t>(D);
        switch (I % 4) {
        case 0: {
          const auto E = R.acquire(K);
          ASSERT_NE(E, nullptr);
          Local += E->divide<uint32_t>(1000003);
          break;
        }
        case 1:
          if (const auto E = R.lookup(K))
            Local += E->remainder<uint32_t>(777);
          break;
        case 2:
          R.withEntry(K, [&](const DividerEntry &E) {
            Local += E.remainderBits(31337);
          });
          break;
        case 3:
          if (I % 64 == 3 && T == 0)
            R.clear(); // writer churn against live readers
          else if (const auto E = R.lookup(K))
            Local += E->divide<uint32_t>(42424242);
          break;
        }
      }
      Checksum.fetch_add(Local);
    });
  }

  // Batch traffic through the same registry while it churns.
  std::vector<uint32_t> In(64, 1000), Out(64);
  for (int I = 0; I < 40; ++I)
    Svc.submitRemainder<uint32_t>(static_cast<uint32_t>(3 + I % 11), In,
                                  Out)
        .get();

  for (std::thread &W : Pool)
    W.join();
  Svc.drain();

  const cache::CacheStats St = R.stats();
  EXPECT_EQ(St.Hits + St.Misses,
            R.shardStats()[0].Hits + R.shardStats()[0].Misses +
                R.shardStats()[1].Hits + R.shardStats()[1].Misses);
  EXPECT_GT(Checksum.load(), 0u);
}

} // namespace
} // namespace service
} // namespace gmdiv
