//===- tests/ProfTest.cpp - Sampling profiler + top-K sketch --------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TopK sketch is checked against a counted std::map reference:
/// exact when capacity covers the distinct keys, and on a skewed stream
/// the identified heavy-hitter set must equal the true top-K with the
/// space-saving bound Count - Error <= true <= Count holding for every
/// slot. The profiler tests arm SIGPROF for real, burn CPU, and require
/// non-empty collapsed stacks plus a valid embedded JSON profile.
///
//===----------------------------------------------------------------------===//

#include "prof/Profiler.h"
#include "prof/TopK.h"

#include "telemetry/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace gmdiv;
using namespace gmdiv::prof;

namespace json = gmdiv::telemetry::json;

namespace {

// A deterministic skewed stream: key k is emitted Reps[k] times, in
// round-robin order so heavy keys are interleaved with light ones (the
// adversarial order for a sketch, not a sorted run).
std::vector<int> skewedStream(const std::vector<uint64_t> &Reps) {
  std::vector<int> Stream;
  bool Emitted = true;
  for (uint64_t Round = 0; Emitted; ++Round) {
    Emitted = false;
    for (size_t K = 0; K < Reps.size(); ++K) {
      if (Round < Reps[K]) {
        Stream.push_back(static_cast<int>(K));
        Emitted = true;
      }
    }
  }
  return Stream;
}

TEST(TopK, ExactWhenCapacityCoversDistinctKeys) {
  TopK<int> Sketch(16);
  std::map<int, uint64_t> Reference;
  // 10 distinct keys < 16 slots: no evictions can happen.
  const std::vector<uint64_t> Reps = {1, 3, 9, 2, 7, 50, 4, 6, 8, 5};
  for (int Key : skewedStream(Reps)) {
    Sketch.offer(Key);
    ++Reference[Key];
  }
  EXPECT_EQ(Sketch.evictions(), 0u);

  const auto Items = Sketch.items();
  ASSERT_EQ(Items.size(), Reference.size());
  uint64_t Total = 0;
  for (const auto &Item : Items) {
    EXPECT_EQ(Item.Count, Reference.at(Item.Key))
        << "key " << Item.Key;
    EXPECT_EQ(Item.Error, 0u);
    Total += Item.Count;
  }
  EXPECT_EQ(Sketch.totalOffered(), Total);
  // items() sorts by descending count; the heaviest key (5, 50 hits)
  // leads.
  EXPECT_EQ(Items.front().Key, 5);
  EXPECT_EQ(Items.front().Count, 50u);
}

TEST(TopK, SkewedStreamIdentifiesTrueTopK) {
  // 40 distinct keys into 8 slots. Keys 0-7 are heavy (400-1100 hits),
  // the rest are light noise (1-8 hits) — skewed enough that the
  // space-saving guarantee pins the exact top-8 set.
  std::vector<uint64_t> Reps(40);
  for (size_t K = 0; K < 8; ++K)
    Reps[K] = 400 + 100 * K;
  for (size_t K = 8; K < Reps.size(); ++K)
    Reps[K] = 1 + (K % 8);

  TopK<int> Sketch(8);
  std::map<int, uint64_t> Reference;
  for (int Key : skewedStream(Reps)) {
    Sketch.offer(Key);
    ++Reference[Key];
  }
  EXPECT_GT(Sketch.evictions(), 0u);

  const auto Items = Sketch.items();
  ASSERT_EQ(Items.size(), 8u);
  std::set<int> Identified;
  for (const auto &Item : Items) {
    Identified.insert(Item.Key);
    // The space-saving invariant, for every surviving slot.
    const uint64_t True = Reference.at(Item.Key);
    EXPECT_LE(True, Item.Count) << "key " << Item.Key;
    EXPECT_GE(True, Item.Count - Item.Error) << "key " << Item.Key;
  }
  EXPECT_EQ(Identified, (std::set<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TopK, WeightedOffersScaleSampledStreams) {
  // A caller sampling 1-in-64 offers weight 64 per observed hit; the
  // estimate should read in unsampled units.
  TopK<int> Sketch(4);
  for (int I = 0; I < 10; ++I)
    Sketch.offer(7, 64);
  Sketch.offer(9, 64);
  const auto Items = Sketch.items();
  ASSERT_EQ(Items.size(), 2u);
  EXPECT_EQ(Items[0].Key, 7);
  EXPECT_EQ(Items[0].Count, 640u);
  EXPECT_EQ(Sketch.totalOffered(), 704u);
}

TEST(TopK, CapacityFromEnvClampsToRange) {
  unsetenv("GMDIV_TOPK");
  EXPECT_EQ(topKCapacityFromEnv(32), 32u);
  setenv("GMDIV_TOPK", "16", 1);
  EXPECT_EQ(topKCapacityFromEnv(32), 16u);
  setenv("GMDIV_TOPK", "0", 1);
  EXPECT_EQ(topKCapacityFromEnv(32), 1u);
  setenv("GMDIV_TOPK", "100000", 1);
  EXPECT_EQ(topKCapacityFromEnv(32), 4096u);
  unsetenv("GMDIV_TOPK");
}

// Burn process CPU until the profiler has banked at least \p Want
// samples or \p DeadlineSec of wall time passes. ITIMER_PROF counts CPU
// time, so a busy spin converges at the sampling rate.
uint64_t burnUntilSamples(uint64_t Want, double DeadlineSec) {
  const auto Start = std::chrono::steady_clock::now();
  volatile uint64_t Sink = 0;
  while (Profiler::global().sampleCount() < Want &&
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
                 .count() < DeadlineSec) {
    for (int I = 0; I < 100000; ++I)
      Sink = Sink * 2654435761u + static_cast<uint64_t>(I) / 7u;
  }
  return Profiler::global().sampleCount();
}

TEST(Profiler, CapturesStacksAndEmitsCollapsedAndJson) {
  Profiler &P = Profiler::global();
  P.reset();
  if (!P.start(500))
    GTEST_SKIP() << "SIGPROF profiling unavailable on this platform";
  EXPECT_TRUE(P.running());
  EXPECT_EQ(P.rateHz(), 500);

  const uint64_t Samples = burnUntilSamples(10, 10.0);
  P.stop();
  EXPECT_FALSE(P.running());
  ASSERT_GE(Samples, 10u) << "profiler banked too few samples";

  // Collapsed form: "frame;frame count" lines, counts summing to the
  // kept samples, no empty frames.
  const std::string Folded = P.collapsed();
  ASSERT_FALSE(Folded.empty());
  std::istringstream Lines(Folded);
  std::string Line;
  uint64_t FoldedTotal = 0;
  while (std::getline(Lines, Line)) {
    const size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    ASSERT_GT(Space, 0u) << Line;
    FoldedTotal += std::strtoull(Line.c_str() + Space + 1, nullptr, 10);
  }
  EXPECT_GT(FoldedTotal, 0u);
  EXPECT_LE(FoldedTotal, P.sampleCount());

  // The JSON form embeds into the flight recorder, so it must parse
  // with the project parser and carry the counters.
  const std::string Doc = P.profileJson();
  ASSERT_TRUE(json::isValid(Doc)) << Doc;
  json::Value Root;
  ASSERT_TRUE(json::parse(Doc, Root));
  EXPECT_EQ(Root.numberOr("gmdiv_profile", 0), 1.0);
  EXPECT_EQ(Root.numberOr("rate_hz", 0), 500.0);
  EXPECT_GE(Root.numberOr("samples_recorded", 0), 10.0);
  ASSERT_NE(Root.find("stacks"), nullptr);
  EXPECT_GE(Root.find("stacks")->array().size(), 1u);
}

TEST(Profiler, WriteCollapsedProducesTheFile) {
  Profiler &P = Profiler::global();
  P.reset();
  if (!P.start(500))
    GTEST_SKIP() << "SIGPROF profiling unavailable on this platform";
  burnUntilSamples(5, 10.0);
  P.stop();

  const std::string Path = testing::TempDir() + "gmdiv_prof_test.folded";
  std::string Error;
  ASSERT_TRUE(P.writeCollapsed(Path, &Error)) << Error;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  char Buf[8] = {};
  const size_t Got = std::fread(Buf, 1, sizeof(Buf), F);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_GT(Got, 0u);

  // Unwritable destination reports an error instead of crashing.
  EXPECT_FALSE(
      P.writeCollapsed("/nonexistent-dir/prof.folded", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Profiler, StartFromEnvHonorsProfKnobs) {
  Profiler &P = Profiler::global();
  ASSERT_FALSE(P.running());

  unsetenv("GMDIV_PROF");
  EXPECT_FALSE(P.startFromEnv());
  setenv("GMDIV_PROF", "0", 1);
  EXPECT_FALSE(P.startFromEnv());

  setenv("GMDIV_PROF", "251", 1);
  if (!P.startFromEnv())
    GTEST_SKIP() << "SIGPROF profiling unavailable on this platform";
  EXPECT_TRUE(P.running());
  EXPECT_EQ(P.rateHz(), 251);
  // A second arm while running is a no-op that reports success.
  EXPECT_TRUE(P.startFromEnv());
  P.stop();

  // GMDIV_PROF=1 means "on at the default"; GMDIV_PROF_HZ overrides it.
  setenv("GMDIV_PROF", "1", 1);
  setenv("GMDIV_PROF_HZ", "103", 1);
  ASSERT_TRUE(P.startFromEnv());
  EXPECT_EQ(P.rateHz(), 103);
  P.stop();
  unsetenv("GMDIV_PROF");
  unsetenv("GMDIV_PROF_HZ");
}

TEST(Profiler, ResetClearsSamples) {
  Profiler &P = Profiler::global();
  P.reset();
  EXPECT_EQ(P.sampleCount(), 0u);
  EXPECT_EQ(P.droppedCount(), 0u);
  EXPECT_TRUE(P.collapsed().empty());
}

} // namespace
