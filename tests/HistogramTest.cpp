//===- tests/HistogramTest.cpp - Histograms vs. exact oracles -------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Histogram.h"

#include "telemetry/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

using namespace gmdiv;
using namespace gmdiv::telemetry;

namespace {

/// Exact nearest-rank percentile over raw samples — the oracle the
/// bucketed histogram is checked against.
double oraclePercentile(std::vector<uint64_t> Samples, double P) {
  std::sort(Samples.begin(), Samples.end());
  std::vector<double> Sorted(Samples.begin(), Samples.end());
  return percentileSorted(Sorted, P);
}

TEST(SampleStatsTest, MatchesHandComputedValues) {
  const SampleStats S = computeSampleStats({4, 1, 3, 2, 100});
  EXPECT_EQ(S.Count, 5u);
  EXPECT_DOUBLE_EQ(S.Min, 1);
  EXPECT_DOUBLE_EQ(S.Max, 100);
  EXPECT_DOUBLE_EQ(S.Median, 3);
  EXPECT_DOUBLE_EQ(S.Mean, 22);
  // Deviations from 3: {2, 1, 0, 1, 97} -> median 1.
  EXPECT_DOUBLE_EQ(S.Mad, 1);
  EXPECT_DOUBLE_EQ(S.Cv, 1.4826 * 1 / 3);
}

TEST(SampleStatsTest, EmptyAndSingleton) {
  EXPECT_EQ(computeSampleStats({}).Count, 0u);
  const SampleStats One = computeSampleStats({7});
  EXPECT_EQ(One.Count, 1u);
  EXPECT_DOUBLE_EQ(One.Median, 7);
  EXPECT_DOUBLE_EQ(One.Mad, 0);
  EXPECT_DOUBLE_EQ(One.Cv, 0);
}

TEST(SampleStatsTest, PercentileSortedNearestRank) {
  const std::vector<double> Sorted{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentileSorted(Sorted, 0), 10);
  EXPECT_DOUBLE_EQ(percentileSorted(Sorted, 100), 40);
  EXPECT_DOUBLE_EQ(percentileSorted(Sorted, 50), 20);
  EXPECT_DOUBLE_EQ(percentileSorted({}, 50), 0);
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndMidpointContained) {
  // Every bucket's midpoint must map back to that bucket, and indices
  // must be nondecreasing in the value.
  size_t Prev = 0;
  for (uint64_t V = 0; V < 4096; ++V) {
    const size_t Index = LatencyHistogram::bucketIndex(V);
    EXPECT_GE(Index, Prev) << "value " << V;
    EXPECT_LT(Index, LatencyHistogram::NumBuckets);
    Prev = Index;
  }
  for (const uint64_t V :
       {uint64_t{1} << 20, uint64_t{1} << 40, uint64_t{1} << 63,
        ~uint64_t{0}}) {
    const size_t Index = LatencyHistogram::bucketIndex(V);
    EXPECT_LT(Index, LatencyHistogram::NumBuckets);
    const double Mid = LatencyHistogram::bucketMidpoint(Index);
    EXPECT_EQ(LatencyHistogram::bucketIndex(static_cast<uint64_t>(Mid)),
              Index);
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram H("hist_test", "exact_small");
  for (uint64_t V = 0; V < 16; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 16u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 15u);
  // Values < 16 occupy exact buckets, so percentiles are exact.
  EXPECT_DOUBLE_EQ(H.percentile(50), 7);
  EXPECT_DOUBLE_EQ(H.percentile(100), 15);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.percentile(50), 0);
}

TEST(LatencyHistogramTest, PercentilesTrackSortedVectorOracle) {
  LatencyHistogram H("hist_test", "oracle");
  std::mt19937_64 Rng(12345);
  std::vector<uint64_t> Samples;
  Samples.reserve(20000);
  // Log-uniform latencies spanning 1 ns .. ~1 s, the histogram's
  // intended regime.
  std::uniform_real_distribution<double> LogDist(0.0, 30.0);
  for (int I = 0; I < 20000; ++I) {
    const uint64_t V =
        static_cast<uint64_t>(std::exp2(LogDist(Rng)));
    Samples.push_back(V);
    H.record(V);
  }
  for (const double P : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double Exact = oraclePercentile(Samples, P);
    const double Approx = H.percentile(P);
    // The sub-bucket design bounds relative error at 1/32.
    EXPECT_NEAR(Approx, Exact, Exact / 32.0 + 1.0)
        << "p" << P << " exact=" << Exact << " approx=" << Approx;
  }
  // MAD: compare against the exact MAD with bucket-resolution slack.
  std::vector<uint64_t> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  const double Median = static_cast<double>(Sorted[Sorted.size() / 2]);
  std::vector<double> Dev;
  Dev.reserve(Sorted.size());
  for (const uint64_t V : Sorted)
    Dev.push_back(std::abs(static_cast<double>(V) - Median));
  std::sort(Dev.begin(), Dev.end());
  const double ExactMad = Dev[Dev.size() / 2];
  EXPECT_NEAR(H.mad(), ExactMad, ExactMad / 8.0 + 1.0);
}

TEST(LatencyHistogramTest, RegistryAndJsonSurface) {
  resetHistograms();
  LatencyHistogram H("hist_test", "surface");
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  bool Found = false;
  for (const HistogramRecord &R : histogramsSnapshot())
    if (R.Group == "hist_test" && R.Name == "surface") {
      Found = true;
      EXPECT_EQ(R.Count, 100u);
      EXPECT_EQ(R.Min, 1u);
      EXPECT_EQ(R.Max, 100u);
      EXPECT_NEAR(R.P50, 50, 50 / 32.0 + 1.0);
      EXPECT_NEAR(R.P99, 99, 99 / 32.0 + 1.0);
    }
  EXPECT_TRUE(Found);
  const std::string Doc = histogramsJson();
  EXPECT_TRUE(json::isValid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"hist_test\""), std::string::npos);
  EXPECT_NE(Doc.find("\"surface\""), std::string::npos);
  EXPECT_NE(Doc.find("\"count\":100"), std::string::npos);
}

TEST(LatencyHistogramTest, EmptyHistogramsAreSkipped) {
  resetHistograms();
  LatencyHistogram Unused("hist_test", "never_recorded");
  for (const HistogramRecord &R : histogramsSnapshot())
    EXPECT_FALSE(R.Group == "hist_test" && R.Name == "never_recorded");
  EXPECT_EQ(histogramsJson(), "{}");
}

} // namespace
