//===- tests/RuntimeFloorCodeGenTest.cpp - §6 runtime identity codegen ----===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"
#include "codegen/DivisionLowering.h"

#include "arch/CostModel.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xf0e9d8c7b6a59483ull);
  return Generator;
}

int64_t refFloorDiv(int64_t N, int64_t D) {
  const int64_t Quotient = N / D;
  if (N % D != 0 && ((N % D < 0) != (D < 0)))
    return Quotient - 1;
  return Quotient;
}

int64_t signExtend(uint64_t Value, int Bits) {
  const uint64_t SignBit = uint64_t{1} << (Bits - 1);
  const uint64_t Mask =
      Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
  return static_cast<int64_t>(((Value & Mask) ^ SignBit) - SignBit);
}

TEST(RuntimeFloorCodeGen, Exhaustive8BothArguments) {
  const Program P = genFloorDivModRuntime(8);
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      const std::vector<uint64_t> QR =
          run(P, {static_cast<uint64_t>(N) & 0xff,
                  static_cast<uint64_t>(D) & 0xff});
      const int64_t WantQ = refFloorDiv(N, D);
      ASSERT_EQ(signExtend(QR[0], 8), WantQ)
          << "n=" << N << " d=" << D;
      ASSERT_EQ(signExtend(QR[1], 8), N - D * WantQ)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(RuntimeFloorCodeGen, Random32And64) {
  for (int Bits : {16, 32, 64}) {
    const Program P = genFloorDivModRuntime(Bits);
    const uint64_t Mask =
        Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
    for (int I = 0; I < 20000; ++I) {
      int64_t D = signExtend(rng()() & Mask, Bits) >> (rng()() % (Bits - 1));
      if (D == 0)
        D = -3;
      const int64_t N = signExtend(rng()() & Mask, Bits);
      if (N == signExtend(uint64_t{1} << (Bits - 1), Bits) && D == -1)
        continue;
      const std::vector<uint64_t> QR =
          run(P, {static_cast<uint64_t>(N) & Mask,
                  static_cast<uint64_t>(D) & Mask});
      ASSERT_EQ(signExtend(QR[0], Bits), refFloorDiv(N, D))
          << "bits=" << Bits << " n=" << N << " d=" << D;
      ASSERT_EQ(signExtend(QR[1], Bits), N - D * refFloorDiv(N, D))
          << "bits=" << Bits << " n=" << N << " d=" << D;
    }
  }
}

TEST(RuntimeFloorCodeGen, MatchesPaperCostAccounting) {
  // "The cost is 2 shifts, 3 adds/subtracts, and 2 bit-ops, plus the
  // divide" for the quotient; our SLT form trades one shift+bitop mix.
  // One DivS must remain (the actual divide), exactly one multiply for
  // the (6.2) remainder, and single digits of simple operations.
  const Program P = genFloorDivModRuntime(32);
  int Divides = 0, Multiplies = 0, Simple = 0;
  for (const Instr &I : P.instrs()) {
    switch (I.Op) {
    case Opcode::Arg:
    case Opcode::Const:
      break;
    case Opcode::DivS:
      ++Divides;
      break;
    case Opcode::MulL:
      ++Multiplies;
      break;
    default:
      ++Simple;
      break;
    }
  }
  EXPECT_EQ(Divides, 1);
  EXPECT_EQ(Multiplies, 1);
  EXPECT_LE(Simple, 14); // ~7 for the quotient, ~7 for the (6.2) modulo.
  // And the lowering pass leaves the runtime divide alone.
  LoweringStats Stats;
  const Program Lowered = lowerDivisions(P, GenOptions(), &Stats);
  EXPECT_EQ(Stats.RuntimeDivisorsKept, 1);
  EXPECT_EQ(Stats.total(), 0);
  for (int I = 0; I < 1000; ++I) {
    const uint64_t N = rng()();
    uint64_t D = rng()();
    if ((D & 0xffffffff) == 0)
      D = 5;
    ASSERT_EQ(run(P, {N & 0xffffffff, D & 0xffffffff}),
              run(Lowered, {N & 0xffffffff, D & 0xffffffff}));
  }
}

} // namespace
