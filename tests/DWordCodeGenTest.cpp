//===- tests/DWordCodeGenTest.cpp - Figure 8.1 codegen + signed §9 --------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"

#include "core/DWordDivider.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x8e7594b78bea7c11ull);
  return Generator;
}

TEST(DWordCodeGen, Exhaustive8) {
  // All divisors; all dividends below d * 2^8 with the high word < d.
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genDWordDivRem(8, D);
    for (uint32_t High = 0; High < D && High < 256; ++High) {
      for (uint32_t Low = 0; Low < 256; Low += 3) {
        const uint32_t N = (High << 8) | Low;
        const std::vector<uint64_t> QR = run(P, {High, Low});
        ASSERT_EQ(QR[0], N / D) << "n=" << N << " d=" << D;
        ASSERT_EQ(QR[1], N % D) << "n=" << N << " d=" << D;
      }
    }
  }
}

TEST(DWordCodeGen, Random16And32) {
  for (int Bits : {16, 32}) {
    const uint64_t Mask = (uint64_t{1} << Bits) - 1;
    for (int I = 0; I < 500; ++I) {
      uint64_t D = rng()() & Mask;
      if (D == 0)
        D = 1;
      const Program P = genDWordDivRem(Bits, D);
      for (int J = 0; J < 200; ++J) {
        const uint64_t High = D == 1 ? 0 : rng()() % D;
        const uint64_t Low = rng()() & Mask;
        const uint64_t N = (High << Bits) | Low;
        const std::vector<uint64_t> QR = run(P, {High, Low});
        ASSERT_EQ(QR[0], N / D)
            << "bits=" << Bits << " n=" << N << " d=" << D;
        ASSERT_EQ(QR[1], N % D)
            << "bits=" << Bits << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(DWordCodeGen, Random64AgainstLibraryDivider) {
  for (int I = 0; I < 200; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const Program P = genDWordDivRem(64, D);
    const DWordDivider<uint64_t> Divider(D);
    for (int J = 0; J < 100; ++J) {
      const uint64_t High = D == 1 ? 0 : rng()() % D;
      const uint64_t Low = rng()();
      const std::vector<uint64_t> QR = run(P, {High, Low});
      auto [Quotient, Remainder] =
          Divider.divRem(UInt128::fromHalves(High, Low));
      ASSERT_EQ(QR[0], Quotient) << "d=" << D;
      ASSERT_EQ(QR[1], Remainder) << "d=" << D;
    }
  }
}

TEST(DWordCodeGen, OperationBudgetMatchesPaper) {
  // §8: "this algorithm requires two products (both halves of each) and
  // 20-25 simple operations". Our single-word IR spends a few extra on
  // carry materialization; it must stay in that ballpark.
  const Program P = genDWordDivRem(32, 1000000007u);
  int Multiplies = 0, Simple = 0;
  for (const Instr &I : P.instrs()) {
    switch (I.Op) {
    case Opcode::Arg:
    case Opcode::Const: // Precomputed state (d, d_norm, m'), not ops.
      break;
    case Opcode::MulL:
    case Opcode::MulUH:
    case Opcode::MulSH:
      ++Multiplies;
      break;
    default:
      ++Simple;
      break;
    }
  }
  EXPECT_EQ(Multiplies, 4); // Both halves of two products.
  EXPECT_LE(Simple, 25);
  EXPECT_GE(Simple, 10);
}

//===----------------------------------------------------------------------===//
// Signed divisibility-test generation (§9).
//===----------------------------------------------------------------------===//

TEST(SignedDivisibilityCodeGen, Exhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const Program P = genDivisibilityTestSigned(8, D);
    for (int N = -128; N < 128; ++N)
      ASSERT_EQ(run(P, {static_cast<uint64_t>(N) & 0xff})[0],
                N % D == 0 ? 1u : 0u)
          << "n=" << N << " d=" << D;
  }
}

TEST(SignedDivisibilityCodeGen, PaperExample100At32) {
  const Program P = genDivisibilityTestSigned(32, 100);
  // The constants the paper names: d_inv = (19*2^32+1)/25 and
  // q_max = (2^31-48)/25.
  bool SawInverse = false;
  for (const Instr &I : P.instrs())
    if (I.Op == Opcode::Const &&
        I.Imm == (19ull * (uint64_t{1} << 32) + 1) / 25)
      SawInverse = true;
  EXPECT_TRUE(SawInverse);
  for (int I = 0; I < 100000; ++I) {
    const int32_t N = static_cast<int32_t>(rng()());
    ASSERT_EQ(run(P, {static_cast<uint32_t>(N)})[0],
              N % 100 == 0 ? 1u : 0u)
        << N;
  }
}

TEST(SignedDivisibilityCodeGen, Gallery16AllDividends) {
  for (int D : {3, -3, 6, -6, 100, -100, 768, 32767, -32768}) {
    const Program P = genDivisibilityTestSigned(16, D);
    for (int N = -32768; N <= 32767; ++N)
      ASSERT_EQ(run(P, {static_cast<uint64_t>(N) & 0xffff})[0],
                N % D == 0 ? 1u : 0u)
          << "n=" << N << " d=" << D;
  }
}

} // namespace
