//===- tests/Divider128Test.cpp - N = 128 instantiation tests -------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's derivations are for an arbitrary N-bit two's complement
/// machine. Instantiating at N = 128 — one size beyond any host type,
/// with UInt256 as the doubleword — exercises that generality and uses
/// our independently validated 128-bit division as the oracle.
///
//===----------------------------------------------------------------------===//

#include "core/ChooseMultiplier.h"
#include "core/Divider.h"
#include "core/ExactDiv.h"
#include "wideint/UInt256.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x1a2b3c4d5e6f7081ull);
  return Generator;
}

UInt128 randomU128() {
  const int Len = 1 + static_cast<int>(rng()() % 128);
  UInt128 Value = UInt128::fromHalves(rng()(), rng()());
  if (Len < 128)
    Value = Value & (UInt128::pow2(Len) - UInt128(1));
  return Value | UInt128(1); // Avoid zero where a divisor is needed.
}

TEST(UInt256, MulFullAgainstUInt128Pieces) {
  for (int I = 0; I < 20000; ++I) {
    const uint64_t A = rng()(), B = rng()();
    // 64x64 through the 128 path must equal mulFull64.
    const UInt256 Product =
        UInt256::mulFull128(UInt128(A), UInt128(B));
    EXPECT_TRUE(Product.high128().isZero());
    EXPECT_TRUE(Product.low128() == UInt128::mulFull64(A, B));
  }
  // (2^127)^2 = 2^254.
  const UInt256 Square =
      UInt256::mulFull128(UInt128::pow2(127), UInt128::pow2(127));
  EXPECT_TRUE(Square == UInt256::pow2(254));
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
  const UInt128 Max = UInt128::max();
  const UInt256 MaxSquare = UInt256::mulFull128(Max, Max);
  const UInt256 Expected = UInt256::fromHalves(
      Max - UInt128(1), UInt128(1));
  EXPECT_TRUE(MaxSquare == Expected);
}

TEST(UInt256, ShiftAndCompareEdges) {
  const UInt256 One(UInt128(1));
  EXPECT_TRUE((One << 128) == UInt256::fromHalves(UInt128(1), UInt128(0)));
  EXPECT_TRUE((One << 255) == UInt256::pow2(255));
  EXPECT_TRUE((UInt256::pow2(255) >> 255) == One);
  EXPECT_TRUE((UInt256::pow2(128) >> 128) == One);
  const UInt256 Mixed = UInt256::fromHalves(
      UInt128::fromHalves(0x0123456789abcdefull, 0xfedcba9876543210ull),
      UInt128::fromHalves(0xdeadbeefcafebabeull, 0x1122334455667788ull));
  // Round-trip shifts preserve the surviving low bits.
  for (int Count : {1, 63, 64, 65, 127, 128, 129, 200}) {
    const UInt256 Masked = (Mixed << Count) >> Count;
    EXPECT_TRUE(Masked == Mixed - ((Mixed >> (256 - Count)) << (256 - Count)))
        << Count;
  }
  EXPECT_EQ(UInt256::pow2(200).bitLength(), 201);
  EXPECT_EQ(UInt256().bitLength(), 0);
  EXPECT_TRUE(UInt256::pow2(128) > UInt256(UInt128::max()));
  EXPECT_EQ(UInt256::pow2(130).toString(),
            "1361129467683753853853498429727072845824");
}

TEST(UInt256, DivModReconstruction) {
  for (int I = 0; I < 2000; ++I) {
    const UInt256 A = UInt256::fromHalves(randomU128(), randomU128());
    const UInt256 B =
        rng()() & 1 ? UInt256(randomU128())
                    : UInt256::fromHalves(UInt128(rng()() & 0xffff),
                                          randomU128());
    auto [Quotient, Remainder] = UInt256::divMod(A, B);
    EXPECT_TRUE(Quotient * B + Remainder == A);
    EXPECT_TRUE(Remainder < B);
  }
}

TEST(UInt256, DivModPow2Full) {
  for (int Exponent : {0, 1, 63, 64, 127, 128, 200, 255, 256}) {
    const UInt256 D(randomU128() | UInt128(2)); // > 1.
    auto [Quotient, Remainder] = UInt256::divModPow2(Exponent, D);
    if (Exponent < 256) {
      EXPECT_TRUE(Quotient * D + Remainder == UInt256::pow2(Exponent));
    } else {
      // q*d + r == 2^256: verify mod 2^256 (wraps to zero) and r < d.
      EXPECT_TRUE((Quotient * D + Remainder).isZero());
      EXPECT_FALSE(Quotient.isZero());
    }
    EXPECT_TRUE(Remainder < D);
  }
}

TEST(Divider128, UnsignedDividerAgainstUInt128Oracle) {
  for (int I = 0; I < 300; ++I) {
    const UInt128 D = randomU128();
    const UnsignedDivider<UInt128> Divider(D);
    for (int J = 0; J < 50; ++J) {
      const UInt128 N = UInt128::fromHalves(rng()(), rng()());
      auto [RefQ, RefR] = UInt128::divMod(N, D);
      ASSERT_TRUE(Divider.divide(N) == RefQ)
          << "n=" << N.toString() << " d=" << D.toString();
      ASSERT_TRUE(Divider.remainder(N) == RefR)
          << "n=" << N.toString() << " d=" << D.toString();
    }
  }
}

TEST(Divider128, BoundaryDivisors) {
  for (const UInt128 &D :
       {UInt128(1), UInt128(2), UInt128(3), UInt128(10),
        UInt128::pow2(64), UInt128::pow2(64) + UInt128(1),
        UInt128::pow2(127) - UInt128(1), UInt128::pow2(127),
        UInt128::pow2(127) + UInt128(1), UInt128::max() - UInt128(1),
        UInt128::max()}) {
    const UnsignedDivider<UInt128> Divider(D);
    for (const UInt128 &N :
         {UInt128(0), UInt128(1), D - UInt128(1), D, D + UInt128(1),
          UInt128::max() - UInt128(1), UInt128::max(),
          UInt128::pow2(127)}) {
      auto [RefQ, RefR] = UInt128::divMod(N, D);
      ASSERT_TRUE(Divider.divide(N) == RefQ)
          << "n=" << N.toString() << " d=" << D.toString();
    }
  }
}

TEST(Divider128, ChooseMultiplierRareDivisor) {
  // 2^128 + 1 = 59649589127497217 * 5704689200685129054721: the N = 128
  // analog of 641 / 274177 — the reduced multiplier is odd with zero
  // final shift.
  const UInt128 D(59649589127497217ull);
  const MultiplierInfo<UInt128> Info = chooseMultiplier<UInt128>(D, 128);
  EXPECT_EQ(Info.ShiftPost, 0);
  EXPECT_TRUE(Info.fitsInWord());
  // m * d == 2^128 + 1.
  const UInt256 Product =
      UInt256::mulFull128(Info.wordMultiplier(), D);
  EXPECT_TRUE(Product ==
              UInt256::pow2(128) + UInt256(UInt128(1)));
}

TEST(Divider128, ExactDividerAndDivisibility) {
  for (int I = 0; I < 200; ++I) {
    const UInt128 D = randomU128();
    const ExactUnsignedDivider<UInt128> Divider(D);
    const UInt128 QMax = UInt128::max() / D;
    for (int J = 0; J < 30; ++J) {
      const UInt128 Raw = UInt128::fromHalves(rng()(), rng()());
      const UInt128 Q =
          D == UInt128(1)
              ? Raw // QMax + 1 would wrap; any quotient is valid.
              : UInt128::divMod(Raw, QMax + UInt128(1)).second;
      const UInt128 Multiple = Q * D;
      ASSERT_TRUE(Divider.divideExact(Multiple) == Q)
          << "d=" << D.toString();
      ASSERT_TRUE(Divider.isDivisible(Multiple));
      const UInt128 N = UInt128::fromHalves(rng()(), rng()());
      ASSERT_EQ(Divider.isDivisible(N),
                UInt128::divMod(N, D).second.isZero())
          << "n=" << N.toString() << " d=" << D.toString();
    }
  }
}

Int128 randomS128() {
  return Int128::fromBits(UInt128::fromHalves(rng()(), rng()()));
}

TEST(Divider128, SignedDividerAgainstInt128Oracle) {
  for (int I = 0; I < 300; ++I) {
    Int128 D = randomS128();
    // Shrink some divisors so small magnitudes get coverage too.
    if (rng()() & 1)
      D = D >> static_cast<int>(rng()() % 120);
    if (D.isZero())
      D = Int128(-7);
    const SignedDivider<Int128> Divider(D);
    for (int J = 0; J < 50; ++J) {
      const Int128 N = randomS128();
      if (N == Int128::min() && D == Int128(-1))
        continue;
      auto [RefQ, RefR] = Int128::divMod(N, D);
      ASSERT_TRUE(Divider.divide(N) == RefQ)
          << "n=" << N.toString() << " d=" << D.toString();
      ASSERT_TRUE(Divider.remainder(N) == RefR)
          << "n=" << N.toString() << " d=" << D.toString();
    }
  }
}

TEST(Divider128, SignedBoundaryCases) {
  for (const Int128 &D :
       {Int128(1), Int128(-1), Int128(2), Int128(-2), Int128(3),
        Int128(-3), Int128(10), Int128(-10), Int128::max(),
        Int128::fromBits(UInt128::pow2(100)), Int128::min()}) {
    const SignedDivider<Int128> Divider(D);
    for (const Int128 &N :
         {Int128(0), Int128(1), Int128(-1), D, Int128(0) - D,
          Int128::max(), Int128::min(),
          Int128::min() + Int128(1)}) {
      if (N == Int128::min() && D == Int128(-1))
        continue;
      auto [RefQ, RefR] = Int128::divMod(N, D);
      ASSERT_TRUE(Divider.divide(N) == RefQ)
          << "n=" << N.toString() << " d=" << D.toString();
    }
  }
  // The overflow case wraps, Figure 5.1-style.
  const SignedDivider<Int128> ByMinusOne(Int128(-1));
  EXPECT_TRUE(ByMinusOne.divide(Int128::min()) == Int128::min());
}

TEST(Divider128, FloorAndGeneralFloor) {
  for (int I = 0; I < 200; ++I) {
    Int128 D = randomS128() >> static_cast<int>(rng()() % 120);
    if (D.isZero())
      D = Int128(9);
    const FloorDivider<Int128> Floor(D);
    const GeneralFloorDivider<Int128> General(D);
    for (int J = 0; J < 30; ++J) {
      const Int128 N = randomS128();
      if (N == Int128::min() && D == Int128(-1))
        continue;
      auto [QT, RT] = Int128::divMod(N, D);
      Int128 Want = QT;
      if (!RT.isZero() && (RT.isNegative() != D.isNegative()))
        Want = Want - Int128(1);
      ASSERT_TRUE(Floor.divide(N) == Want)
          << "n=" << N.toString() << " d=" << D.toString();
      ASSERT_TRUE(General.divide(N) == Want)
          << "n=" << N.toString() << " d=" << D.toString();
      ASSERT_TRUE(General.modulo(N) == N - D * Want)
          << "n=" << N.toString() << " d=" << D.toString();
    }
  }
}

TEST(Divider128, RadixConversion128) {
  // The Figure 11.1 workload at N = 128: digits of 2^128 - 1.
  const UnsignedDivider<UInt128> By10(UInt128(10));
  UInt128 Value = UInt128::max();
  std::string Digits;
  while (!Value.isZero()) {
    auto [Quotient, Remainder] = std::pair<UInt128, UInt128>(
        By10.divide(Value), By10.remainder(Value));
    Digits.insert(Digits.begin(),
                  static_cast<char>('0' + Remainder.low64()));
    Value = Quotient;
  }
  EXPECT_EQ(Digits, "340282366920938463463374607431768211455");
}

} // namespace
