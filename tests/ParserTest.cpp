//===- tests/ParserTest.cpp - IR parser and round-trip tests --------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "codegen/DivCodeGen.h"
#include "ir/AsmPrinter.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x9c30d5392af26013ull);
  return Generator;
}

TEST(Parser, ParsesHandWrittenListing) {
  const std::string Text = R"(
    ; divide by 10, the canonical sequence
    t1 = const 0xcccccccd
    t2 = muluh n0, t1
    t3 = srl t2, 3
    => q: t3
  )";
  const ParseResult Result = parseProgram(Text, 32, 1);
  ASSERT_TRUE(Result.ok()) << Result.Error << " at line "
                           << Result.ErrorLine;
  const Program &P = *Result.Parsed;
  EXPECT_EQ(run(P, {12345})[0], 1234u);
  EXPECT_EQ(run(P, {4294967295ull})[0], 429496729u);
}

TEST(Parser, MaterializesElidedArguments) {
  // The printer elides bare arg loads; "n1" appearing as an operand must
  // create the Arg instruction.
  const ParseResult Result = parseProgram("t2 = add n0, n1\n=> s: t2",
                                          16, 2);
  ASSERT_TRUE(Result.ok()) << Result.Error;
  EXPECT_EQ(run(*Result.Parsed, {7, 8})[0], 15u);
}

TEST(Parser, ReportsErrorsWithLineNumbers) {
  const ParseResult Bad1 = parseProgram("t1 = bogus n0", 32, 1);
  EXPECT_FALSE(Bad1.ok());
  EXPECT_EQ(Bad1.ErrorLine, 1);
  EXPECT_NE(Bad1.Error.find("bogus"), std::string::npos);

  const ParseResult Bad2 =
      parseProgram("t1 = srl n0, 3\nt2 = add t1, tX", 32, 1);
  EXPECT_FALSE(Bad2.ok());
  EXPECT_EQ(Bad2.ErrorLine, 2);

  const ParseResult Bad3 = parseProgram("t1 = srl n0, 99", 32, 1);
  EXPECT_FALSE(Bad3.ok());
  EXPECT_NE(Bad3.Error.find("shift"), std::string::npos);

  const ParseResult Bad4 = parseProgram("t1 = arg 5", 32, 2);
  EXPECT_FALSE(Bad4.ok());
}

TEST(Parser, RoundTripsGeneratedSequences) {
  // print -> parse -> must compute identical results for every
  // generator output in the gallery.
  for (int Bits : {8, 16, 32, 64}) {
    const uint64_t Mask =
        Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
    for (uint64_t D : {3ull, 7ull, 10ull, 14ull, 100ull}) {
      for (const Program &P :
           {codegen::genUnsignedDivRem(Bits, D),
            codegen::genSignedDiv(Bits, static_cast<int64_t>(D)),
            codegen::genFloorDiv(Bits, static_cast<int64_t>(D) %
                                           ((Mask >> 1) | 1)),
            codegen::genDivisibilityTestUnsigned(Bits, D)}) {
        const std::string Text = formatProgram(P);
        const ParseResult Result = parseProgram(Text, Bits, 1);
        ASSERT_TRUE(Result.ok())
            << Result.Error << " at line " << Result.ErrorLine
            << "\nlisting:\n" << Text;
        for (int J = 0; J < 200; ++J) {
          const uint64_t N = rng()() & Mask;
          ASSERT_EQ(run(P, {N}), run(*Result.Parsed, {N}))
              << "bits=" << Bits << " d=" << D << "\n" << Text;
        }
      }
    }
  }
}

TEST(Parser, RoundTripsTwoArgPrograms) {
  const Program P = codegen::genDWordDivRem(32, 1000003);
  const std::string Text = formatProgram(P);
  const ParseResult Result = parseProgram(Text, 32, 2);
  ASSERT_TRUE(Result.ok()) << Result.Error;
  for (int J = 0; J < 500; ++J) {
    const uint64_t High = rng()() % 1000003;
    const uint64_t Low = rng()() & 0xffffffffull;
    ASSERT_EQ(run(P, {High, Low}), run(*Result.Parsed, {High, Low}));
  }
}

TEST(Parser, RoundTripPreservesResultNames) {
  const Program P = codegen::genUnsignedDivRem(32, 10);
  const ParseResult Result = parseProgram(formatProgram(P), 32, 1);
  ASSERT_TRUE(Result.ok());
  ASSERT_EQ(Result.Parsed->resultNames().size(), 2u);
  EXPECT_EQ(Result.Parsed->resultNames()[0], "q");
  EXPECT_EQ(Result.Parsed->resultNames()[1], "r");
}

TEST(Parser, AcceptsDivisionOpcodes) {
  const ParseResult Result = parseProgram(
      "t1 = const 100\nt2 = remu n0, t1\nt3 = divs n0, t1\n=> r: t2\n"
      "=> q: t3",
      32, 1);
  ASSERT_TRUE(Result.ok()) << Result.Error;
  EXPECT_EQ(run(*Result.Parsed, {12345})[0], 45u);
  EXPECT_EQ(run(*Result.Parsed, {12345})[1], 123u);
}

} // namespace
