//===- tests/soak_main.cpp - Long-running randomized cross-check ----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Not a gtest: an open-ended soak harness for release qualification.
// Runs randomized differential checks across every divider class and
// the code generators until the requested duration elapses, printing a
// progress line per round. Any mismatch aborts with the reproducing
// seed. Usage:
//
//   soak [--trace=FILE] [--metrics=FILE] [--profile=FILE] [seconds] [seed]
//                               (defaults: 10 seconds, random seed)
//
// CTest runs a 2-second smoke; CI or a release manager can run hours.
// --trace=FILE records one span per round and writes a Chrome
// trace-event JSON file on exit; round latency also feeds a telemetry
// histogram reported in the end-of-run summary. --metrics=FILE writes a
// metrics snapshot on exit (.json = JSON document, anything else the
// Prometheus text format) — CI's TSan leg scrapes it as an artifact.
// --profile=FILE arms the sampling profiler (GMDIV_PROF_HZ, default
// 97 Hz) and writes collapsed stacks (flamegraph.pl format) on exit.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchDivider.h"
#include "codegen/DivCodeGen.h"
#include "codegen/DivisionLowering.h"
#include "core/Divider.h"
#include "core/DWordDivider.h"
#include "core/ExactDiv.h"
#include "ir/Interp.h"
#include "metrics/Exporter.h"
#include "metrics/FlightRecorder.h"
#include "prof/Profiler.h"
#include "telemetry/Histogram.h"
#include "telemetry/Json.h"
#include "telemetry/Stats.h"
#include "trace/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

using namespace gmdiv;

namespace {

uint64_t Seed;
std::mt19937_64 Rng;

// The per-class check counters live in the telemetry registry so the
// end-of-run summary and the counter table come from the same source.
telemetry::Statistic UnsignedChecks("soak", "unsigned_checks");
telemetry::Statistic SignedChecks("soak", "signed_checks");
telemetry::Statistic CodegenChecks("soak", "codegen_checks");
telemetry::Statistic DWordChecks("soak", "dword_checks");
telemetry::Statistic BatchChecks("soak", "batch_checks");
telemetry::LatencyHistogram RoundLatency("soak", "round_us");

[[noreturn]] void fail(const char *What, uint64_t N, uint64_t D) {
  std::fprintf(stderr,
               "MISMATCH in %s: n=%llu d=%llu (seed %llu)\n", What,
               static_cast<unsigned long long>(N),
               static_cast<unsigned long long>(D),
               static_cast<unsigned long long>(Seed));
  // Machine-readable failure record; the seed reproduces the run:
  //   soak <seconds> <seed>
  telemetry::json::Writer W;
  W.beginObject()
      .key("soak")
      .value("mismatch")
      .key("in")
      .value(What)
      .key("n")
      .value(N)
      .key("d")
      .value(D)
      .key("seed")
      .value(Seed)
      .endObject();
  std::fprintf(stderr, "%s\n", W.str().c_str());
  std::exit(1);
}

template <typename UWord> void soakUnsignedRound() {
  UWord D = static_cast<UWord>(Rng() >> (Rng() % (sizeof(UWord) * 8)));
  if (D == 0)
    D = 1;
  const UnsignedDivider<UWord> Divider(D);
  const ExactUnsignedDivider<UWord> Exact(D);
  for (int J = 0; J < 4096; ++J) {
    const UWord N = static_cast<UWord>(Rng());
    if (Divider.divide(N) != static_cast<UWord>(N / D))
      fail("UnsignedDivider", N, D);
    if (Exact.isDivisible(N) != (N % D == 0))
      fail("isDivisible", N, D);
  }
  UnsignedChecks.increment(2 * 4096);
}

template <typename SWord> void soakSignedRound() {
  using UWord = std::make_unsigned_t<SWord>;
  SWord D = static_cast<SWord>(
      static_cast<UWord>(Rng() >> (Rng() % (sizeof(SWord) * 8))));
  if (D == 0)
    D = -3;
  const SignedDivider<SWord> Trunc(D);
  const FloorDivider<SWord> Floor(D);
  constexpr SWord Min = std::numeric_limits<SWord>::min();
  for (int J = 0; J < 4096; ++J) {
    const SWord N = static_cast<SWord>(static_cast<UWord>(Rng()));
    if (N == Min && D == -1)
      continue;
    const int64_t Want = static_cast<int64_t>(N) / static_cast<int64_t>(D);
    if (Trunc.divide(N) != static_cast<SWord>(Want))
      fail("SignedDivider", static_cast<uint64_t>(N),
           static_cast<uint64_t>(D));
    int64_t WantFloor = Want;
    const int64_t Rem =
        static_cast<int64_t>(N) % static_cast<int64_t>(D);
    if (Rem != 0 && ((Rem < 0) != (D < 0)))
      --WantFloor;
    if (Floor.divide(N) != static_cast<SWord>(WantFloor))
      fail("FloorDivider", static_cast<uint64_t>(N),
           static_cast<uint64_t>(D));
  }
  SignedChecks.increment(2 * 4096);
}

void soakCodegenRound() {
  const int Bits = 8 << (Rng() % 4);
  const uint64_t Mask =
      Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
  uint64_t D = Rng() & Mask;
  if (D == 0)
    D = 3;
  const ir::Program P = codegen::genUnsignedDivRem(Bits, D);
  for (int J = 0; J < 512; ++J) {
    const uint64_t N = Rng() & Mask;
    const std::vector<uint64_t> QR = ir::run(P, {N});
    if (QR[0] != N / D || QR[1] != N % D)
      fail("genUnsignedDivRem", N, D);
  }
  CodegenChecks.increment(512);
}

void soakDWordRound() {
  uint64_t D = Rng() >> (Rng() % 64);
  if (D == 0)
    D = 1;
  const DWordDivider<uint64_t> Divider(D);
  for (int J = 0; J < 1024; ++J) {
    const uint64_t High = D == 1 ? 0 : Rng() % D;
    const uint64_t Low = Rng();
    auto [Q, R] = Divider.divRem(UInt128::fromHalves(High, Low));
    auto [RefQ, RefR] =
        UInt128::divMod(UInt128::fromHalves(High, Low), UInt128(D));
    if (Q != RefQ.low64() || R != RefR.low64())
      fail("DWordDivider", Low, D);
  }
  DWordChecks.increment(1024);
}

// Batch kernels on the active (auto-dispatched) backend against the
// per-element dividers, with an odd buffer length so SIMD tails run.
template <typename UWord> void soakBatchUnsignedRound() {
  UWord D = static_cast<UWord>(Rng() >> (Rng() % (sizeof(UWord) * 8)));
  if (D == 0)
    D = 1;
  const batch::BatchDivider<UWord> Batch(D);
  const UnsignedDivider<UWord> Ref(D);
  const size_t Count = 257 + static_cast<size_t>(Rng() % 256);
  std::vector<UWord> In(Count), Quot(Count), Rem(Count);
  std::vector<uint8_t> Divisible(Count);
  for (UWord &Value : In)
    Value = static_cast<UWord>(Rng());
  Batch.divRem(In.data(), Quot.data(), Rem.data(), Count);
  Batch.divisible(In.data(), Divisible.data(), Count);
  for (size_t I = 0; I < Count; ++I) {
    if (Quot[I] != Ref.divide(In[I]))
      fail("BatchDivider.divRem(quot)", In[I], D);
    if (Rem[I] != Ref.remainder(In[I]))
      fail("BatchDivider.divRem(rem)", In[I], D);
    if (Divisible[I] != ((In[I] % D) == 0 ? 1 : 0))
      fail("BatchDivider.divisible", In[I], D);
  }
  BatchChecks.increment(3 * Count);
}

template <typename SWord> void soakBatchSignedRound() {
  using UWord = std::make_unsigned_t<SWord>;
  SWord D = static_cast<SWord>(
      static_cast<UWord>(Rng() >> (Rng() % (sizeof(SWord) * 8))));
  if (D == 0)
    D = -7;
  const batch::BatchDivider<SWord> Batch(D);
  const SignedDivider<SWord> Trunc(D);
  const FloorDivider<SWord> Floor(D);
  const CeilDivider<SWord> Ceil(D);
  const size_t Count = 257 + static_cast<size_t>(Rng() % 256);
  std::vector<SWord> In(Count), Quot(Count), FloorQ(Count), CeilQ(Count);
  for (SWord &Value : In)
    Value = static_cast<SWord>(static_cast<UWord>(Rng()));
  Batch.divide(In.data(), Quot.data(), Count);
  Batch.floorDivide(In.data(), FloorQ.data(), Count);
  Batch.ceilDivide(In.data(), CeilQ.data(), Count);
  for (size_t I = 0; I < Count; ++I) {
    if (Quot[I] != Trunc.divide(In[I]))
      fail("BatchDivider.divide(signed)", static_cast<uint64_t>(In[I]),
           static_cast<uint64_t>(D));
    if (FloorQ[I] != Floor.divide(In[I]))
      fail("BatchDivider.floorDivide", static_cast<uint64_t>(In[I]),
           static_cast<uint64_t>(D));
    if (CeilQ[I] != Ceil.divide(In[I]))
      fail("BatchDivider.ceilDivide", static_cast<uint64_t>(In[I]),
           static_cast<uint64_t>(D));
  }
  BatchChecks.increment(3 * Count);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *TraceFile = nullptr;
  const char *MetricsFile = nullptr;
  const char *ProfileFile = nullptr;
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--trace=", 8) == 0)
      TraceFile = Argv[I] + 8;
    else if (std::strncmp(Argv[I], "--metrics=", 10) == 0)
      MetricsFile = Argv[I] + 10;
    else if (std::strncmp(Argv[I], "--profile=", 10) == 0)
      ProfileFile = Argv[I] + 10;
    else
      Args.push_back(Argv[I]);
  }
  const double Seconds = Args.size() > 1 ? std::atof(Args[1]) : 10.0;
  Seed = Args.size() > 2 ? std::strtoull(Args[2], nullptr, 0)
                         : std::random_device{}();
  if (TraceFile)
    trace::setEnabled(true);
  // Long-running by design, so honor the exporter/flight-recorder env
  // wiring (GMDIV_METRICS_OUT, GMDIV_FLIGHT_RECORDER) like the tool.
  metrics::Exporter::global().startFromEnv();
  metrics::FlightRecorder::global().configureFromEnv();
  if (ProfileFile) {
    // --profile forces the profiler on; GMDIV_PROF_HZ still picks the
    // rate. Without the flag, GMDIV_PROF alone can arm it (no dump).
    int Hz = prof::Profiler::DefaultHz;
    if (const char *HzEnv = std::getenv("GMDIV_PROF_HZ"))
      if (const long Value = std::strtol(HzEnv, nullptr, 10); Value > 0)
        Hz = static_cast<int>(Value);
    prof::Profiler::global().start(Hz);
  } else {
    prof::Profiler::global().startFromEnv();
  }
  Rng.seed(Seed);
  std::printf("soak: %.1f seconds, seed %llu\n", Seconds,
              static_cast<unsigned long long>(Seed));
  const auto Start = std::chrono::steady_clock::now();
  uint64_t Rounds = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
             .count() < Seconds) {
    GMDIV_TRACE_SPAN("soak", "round", Rounds);
    const auto RoundStart = std::chrono::steady_clock::now();
    soakUnsignedRound<uint8_t>();
    soakUnsignedRound<uint16_t>();
    soakUnsignedRound<uint32_t>();
    soakUnsignedRound<uint64_t>();
    soakSignedRound<int8_t>();
    soakSignedRound<int16_t>();
    soakSignedRound<int32_t>();
    soakSignedRound<int64_t>();
    soakCodegenRound();
    soakDWordRound();
    soakBatchUnsignedRound<uint8_t>();
    soakBatchUnsignedRound<uint16_t>();
    soakBatchUnsignedRound<uint32_t>();
    soakBatchUnsignedRound<uint64_t>();
    soakBatchSignedRound<int8_t>();
    soakBatchSignedRound<int16_t>();
    soakBatchSignedRound<int32_t>();
    soakBatchSignedRound<int64_t>();
    RoundLatency.record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - RoundStart)
            .count()));
    ++Rounds;
  }
  const double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();
  const uint64_t TotalChecks =
      UnsignedChecks.value() + SignedChecks.value() +
      CodegenChecks.value() + DWordChecks.value() + BatchChecks.value();
  std::printf("soak: %llu rounds clean (%llu checks)\n",
              static_cast<unsigned long long>(Rounds),
              static_cast<unsigned long long>(TotalChecks));
  // Structured end-of-run summary (one JSON line): the run parameters
  // plus the per-class counters from the telemetry registry.
  telemetry::json::Writer W;
  W.beginObject()
      .key("soak")
      .value("clean")
      .key("seed")
      .value(Seed)
      .key("seconds")
      .value(Elapsed)
      .key("rounds")
      .value(Rounds)
      .key("checks")
      .value(TotalChecks)
      .key("backend")
      .value(batch::backendName(batch::activeBackend()));
  W.key("counters").beginObject();
  for (const telemetry::StatRecord &Record : telemetry::statsSnapshot())
    if (Record.Group == "soak")
      W.key(Record.Name).value(Record.Value);
  W.endObject();
  W.key("round_us").beginObject();
  for (const telemetry::HistogramRecord &H :
       telemetry::histogramsSnapshot()) {
    if (H.Group != "soak" || H.Name != "round_us")
      continue;
    W.key("count").value(H.Count);
    W.key("p50").value(H.P50);
    W.key("p90").value(H.P90);
    W.key("p99").value(H.P99);
    W.key("max").value(H.Max);
    W.key("mad").value(H.Mad);
  }
  W.endObject().endObject();
  std::printf("%s\n", W.str().c_str());
  if (TraceFile) {
    std::string Error;
    if (!trace::writeChromeTrace(TraceFile, &Error)) {
      std::fprintf(stderr, "soak: --trace: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "soak: trace written to %s\n", TraceFile);
  }
  if (MetricsFile) {
    std::string Error;
    if (!metrics::Exporter::writeSnapshotFile(MetricsFile, &Error)) {
      std::fprintf(stderr, "soak: --metrics: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "soak: metrics written to %s\n", MetricsFile);
  }
  if (ProfileFile) {
    prof::Profiler::global().stop();
    std::string Error;
    if (!prof::Profiler::global().writeCollapsed(ProfileFile, &Error)) {
      std::fprintf(stderr, "soak: --profile: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "soak: %llu profile samples written to %s\n",
                 static_cast<unsigned long long>(
                     prof::Profiler::global().sampleCount()),
                 ProfileFile);
  }
  metrics::Exporter::global().stop();
  return 0;
}
