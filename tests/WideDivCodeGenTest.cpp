//===- tests/WideDivCodeGenTest.cpp - Wide-register division tests --------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 11.1 Alpha scenario: an OpBits-wide unsigned division
/// compiled for a wider machine, where the full product fits a register
/// and the multiply can be strength-reduced to shifts and adds.
///
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"

#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xba7c9045f12c7f99ull);
  return Generator;
}

TEST(WideDivCodeGen, EightOnSixteenExhaustive) {
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genUnsignedDivWide(8, 16, D);
    for (uint32_t N = 0; N < 256; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(WideDivCodeGen, EightOnSixtyFourExhaustive) {
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genUnsignedDivWide(8, 64, D);
    for (uint32_t N = 0; N < 256; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(WideDivCodeGen, SixteenOnThirtyTwoAllDivisors) {
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const Program P = genUnsignedDivWide(16, 32, D);
    const uint32_t Probe[] = {0, 1, D, D - 1, 3 * D + 2, 0x7fff, 0x8000,
                              0xffff};
    for (uint32_t N : Probe) {
      if (N > 0xffff)
        continue;
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(WideDivCodeGen, ThirtyTwoOnSixtyFourRandom) {
  for (int I = 0; I < 1000; ++I) {
    uint32_t D = static_cast<uint32_t>(rng()() >> (rng()() % 32));
    if (D == 0)
      D = 1;
    const Program P = genUnsignedDivWide(32, 64, D);
    for (int J = 0; J < 100; ++J) {
      const uint32_t N = static_cast<uint32_t>(rng()());
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
    }
    ASSERT_EQ(run(P, {0xffffffffull})[0], 0xffffffffu / D);
  }
}

TEST(WideDivCodeGen, ThirtyTwoOnSixtyFourAllDividendsForGallery) {
  for (uint32_t D : {7u, 10u, 14u, 641u}) {
    const Program P = genUnsignedDivWide(32, 64, D);
    // Dense sweep over the low range plus strided coverage of the rest.
    for (uint64_t N = 0; N <= 0xffffull; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D);
    for (uint64_t N = 0; N <= 0xffffffffull; N += 65521) // prime stride
      ASSERT_EQ(run(P, {N})[0], N / D);
  }
}

TEST(WideDivCodeGen, AlphaStyleExpansionIsMultiplyFree) {
  // Table 11.1's Alpha column: with a 23-cycle multiply, x/10 expands
  // into shifts and adds; the generated code must contain no multiply
  // yet still divide correctly.
  GenOptions Options;
  Options.ExpandMulBelowCycles = 23; // Alpha 21064 mulq latency.
  const Program P = genUnsignedDivRemWide(32, 64, 10, Options);
  for (const Instr &I : P.instrs()) {
    ASSERT_NE(I.Op, Opcode::MulL);
    ASSERT_NE(I.Op, Opcode::MulUH);
    ASSERT_NE(I.Op, Opcode::MulSH);
  }
  for (int J = 0; J < 10000; ++J) {
    const uint32_t N = static_cast<uint32_t>(rng()());
    const std::vector<uint64_t> Results = run(P, {N});
    ASSERT_EQ(Results[0], N / 10u);
    ASSERT_EQ(Results[1], N % 10u);
  }
}

TEST(WideDivCodeGen, ExpansionRespectsThreshold) {
  // With a fast multiplier (3 cycles) the multiply must be kept.
  GenOptions Options;
  Options.ExpandMulBelowCycles = 3;
  const Program P = genUnsignedDivWide(32, 64, 10, Options);
  bool SawMultiply = false;
  for (const Instr &I : P.instrs())
    SawMultiply |= I.Op == Opcode::MulL || I.Op == Opcode::MulUH;
  EXPECT_TRUE(SawMultiply);
}

//===----------------------------------------------------------------------===//
// Signed wide form.
//===----------------------------------------------------------------------===//

int64_t signExtendTo64(uint64_t Value, int Bits) {
  const uint64_t SignBit = uint64_t{1} << (Bits - 1);
  const uint64_t Mask =
      Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
  return static_cast<int64_t>(((Value & Mask) ^ SignBit) - SignBit);
}

TEST(WideDivCodeGen, SignedEightOnSixtyFourExhaustive) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const Program P = genSignedDivWide(8, 64, D);
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      const uint64_t Arg = static_cast<uint64_t>(static_cast<int64_t>(N));
      ASSERT_EQ(static_cast<int64_t>(run(P, {Arg})[0]), N / D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(WideDivCodeGen, SignedSixteenOnThirtyTwoGallery) {
  for (int D : {3, -3, 7, 10, -10, 4096, -4096, 32767, -32768}) {
    const Program P = genSignedDivWide(16, 32, D);
    for (int N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      const uint64_t Arg =
          static_cast<uint64_t>(static_cast<int64_t>(N)) & 0xffffffffull;
      ASSERT_EQ(signExtendTo64(run(P, {Arg})[0], 32), N / D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(WideDivCodeGen, SignedThirtyTwoOnSixtyFourRandom) {
  for (int I = 0; I < 500; ++I) {
    int32_t D = static_cast<int32_t>(rng()()) >> (rng()() % 31);
    if (D == 0)
      D = -7;
    const Program P = genSignedDivWide(32, 64, D);
    for (int J = 0; J < 200; ++J) {
      const int32_t N = static_cast<int32_t>(rng()());
      if (N == std::numeric_limits<int32_t>::min() && D == -1)
        continue;
      const uint64_t Arg = static_cast<uint64_t>(static_cast<int64_t>(N));
      ASSERT_EQ(static_cast<int64_t>(run(P, {Arg})[0]),
                static_cast<int64_t>(N) / D)
          << "n=" << N << " d=" << D;
    }
    // The corner dividends.
    for (int32_t N : {std::numeric_limits<int32_t>::min(),
                      std::numeric_limits<int32_t>::max(), 0, -1, 1}) {
      if (N == std::numeric_limits<int32_t>::min() && D == -1)
        continue;
      const uint64_t Arg = static_cast<uint64_t>(static_cast<int64_t>(N));
      ASSERT_EQ(static_cast<int64_t>(run(P, {Arg})[0]),
                static_cast<int64_t>(N) / D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(WideDivCodeGen, SignedWideIsShorterThanNativeSigned) {
  // The wide trick folds MULSH + SRA into MULL + SRA and needs no long
  // path, so it beats the same division done at machine width.
  const Program Wide = genSignedDivWide(32, 64, 7);
  const Program Native = genSignedDiv(64, 7);
  EXPECT_LE(Wide.operationCount(), Native.operationCount());
  bool HasMulSH = false;
  for (const Instr &I : Wide.instrs())
    HasMulSH |= I.Op == Opcode::MulSH;
  EXPECT_FALSE(HasMulSH);
}

TEST(WideDivCodeGen, PowerOfTwoStaysAShift) {
  const Program P = genUnsignedDivWide(32, 64, 64);
  EXPECT_LE(P.operationCount(), 1);
}

} // namespace
