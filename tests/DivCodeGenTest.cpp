//===- tests/DivCodeGenTest.cpp - Figures 4.2/5.2/6.1 + §9 codegen tests --===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves every generated sequence equals reference division by running
/// it through the exact N-bit interpreter: exhaustively at 8 bits (all
/// divisors x all dividends), densely at 16 bits, randomized at 32/64.
/// Also checks the structural claims: powers of two become single
/// shifts, d = 10 at N = 32 produces the paper's exact constants, d = 7
/// takes the long path, d = 14 pre-shifts.
///
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"

#include "ir/Interp.h"
#include "telemetry/Remarks.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x2ffd72dbd01adfb7ull);
  return Generator;
}

uint64_t maskFor(int Bits) {
  return Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
}

int64_t signExtend(uint64_t Value, int Bits) {
  const uint64_t SignBit = uint64_t{1} << (Bits - 1);
  return static_cast<int64_t>(((Value & maskFor(Bits)) ^ SignBit) - SignBit);
}

//===----------------------------------------------------------------------===//
// Unsigned — Figure 4.2.
//===----------------------------------------------------------------------===//

TEST(DivCodeGen, UnsignedExhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genUnsignedDiv(8, D);
    for (uint32_t N = 0; N < 256; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(DivCodeGen, UnsignedDivRemExhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genUnsignedDivRem(8, D);
    for (uint32_t N = 0; N < 256; ++N) {
      const std::vector<uint64_t> Results = run(P, {N});
      ASSERT_EQ(Results[0], N / D) << "n=" << N << " d=" << D;
      ASSERT_EQ(Results[1], N % D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, UnsignedAllDivisors16) {
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const Program P = genUnsignedDiv(16, D);
    const uint32_t Probe[] = {0,      1,      D - 1,  D,      D + 1,
                              0x7fff, 0x8000, 0xfffe, 0xffff, 3 * D,
                              5 * D + 1};
    for (uint32_t N : Probe) {
      if (N > 0xffff)
        continue;
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, UnsignedAllDividends16ForGallery) {
  for (uint32_t D : {3u, 7u, 10u, 14u, 25u, 60u, 100u, 125u, 641u, 1000u,
                     32768u, 65535u}) {
    const Program P = genUnsignedDiv(16, D);
    for (uint32_t N = 0; N <= 0xffff; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(DivCodeGen, UnsignedRandom32And64) {
  for (int Bits : {32, 64}) {
    const uint64_t Mask = maskFor(Bits);
    for (int I = 0; I < 500; ++I) {
      uint64_t D = (rng()() >> (rng()() % Bits)) & Mask;
      if (D == 0)
        D = 1;
      const Program P = genUnsignedDiv(Bits, D);
      for (int J = 0; J < 100; ++J) {
        const uint64_t N = rng()() & Mask;
        ASSERT_EQ(run(P, {N})[0], N / D)
            << "bits=" << Bits << " n=" << N << " d=" << D;
      }
      ASSERT_EQ(run(P, {Mask})[0], Mask / D);
      ASSERT_EQ(run(P, {D})[0], 1u);
      ASSERT_EQ(run(P, {D - 1})[0], 0u);
    }
  }
}

TEST(DivCodeGen, UnsignedPowerOfTwoIsSingleShift) {
  for (int Bit = 0; Bit < 32; ++Bit) {
    const Program P = genUnsignedDiv(32, uint64_t{1} << Bit);
    // arg plus at most one srl.
    EXPECT_LE(P.operationCount(), 1) << "bit=" << Bit;
  }
}

TEST(DivCodeGen, UnsignedDivideBy10MatchesPaperConstants) {
  // §4 example: q = SRL(MULUH((2^34+1)/5, n), 3) — one multiply, one
  // shift, no pre-shift.
  const Program P = genUnsignedDiv(32, 10);
  bool SawMagic = false, SawShift3 = false;
  int Multiplies = 0;
  for (const Instr &I : P.instrs()) {
    if (I.Op == Opcode::Const && I.Imm == 3435973837u)
      SawMagic = true;
    if (I.Op == Opcode::Srl && I.Imm == 3)
      SawShift3 = true;
    if (I.Op == Opcode::MulUH || I.Op == Opcode::MulSH ||
        I.Op == Opcode::MulL)
      ++Multiplies;
  }
  EXPECT_TRUE(SawMagic);
  EXPECT_TRUE(SawShift3);
  EXPECT_EQ(Multiplies, 1);
  EXPECT_EQ(P.operationCount(), 3); // const + muluh + srl.
}

TEST(DivCodeGen, UnsignedDivideBy7UsesLongSequence) {
  // §4 example: m >= 2^32 forces t1 = MULUH(m - 2^N, n);
  // q = SRL(t1 + SRL(n - t1, 1), sh - 1).
  const Program P = genUnsignedDiv(32, 7);
  int Subs = 0, Adds = 0, Shifts = 0;
  for (const Instr &I : P.instrs()) {
    Subs += I.Op == Opcode::Sub;
    Adds += I.Op == Opcode::Add;
    Shifts += I.Op == Opcode::Srl;
  }
  EXPECT_EQ(Subs, 1);
  EXPECT_EQ(Adds, 1);
  EXPECT_EQ(Shifts, 2);
  // Cost claim of Figure 4.1: 1 multiply, 2 adds/subtracts, 2 shifts.
  EXPECT_EQ(P.operationCount(), 6); // + const.
}

TEST(DivCodeGen, UnsignedDivideBy14UsesPreShift) {
  // §4 example: q = SRL(MULUH((2^34+5)/7, SRL(n, 1)), 2).
  const Program P = genUnsignedDiv(32, 14);
  bool SawPreShift = false, SawMagic = false, SawPost2 = false;
  for (const Instr &I : P.instrs()) {
    if (I.Op == Opcode::Srl && I.Imm == 1)
      SawPreShift = true;
    if (I.Op == Opcode::Const &&
        I.Imm == ((uint64_t{1} << 34) + 5) / 7)
      SawMagic = true;
    if (I.Op == Opcode::Srl && I.Imm == 2)
      SawPost2 = true;
  }
  EXPECT_TRUE(SawPreShift);
  EXPECT_TRUE(SawMagic);
  EXPECT_TRUE(SawPost2);
}

//===----------------------------------------------------------------------===//
// Signed — Figure 5.2.
//===----------------------------------------------------------------------===//

TEST(DivCodeGen, SignedExhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const Program P = genSignedDiv(8, D);
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xff})[0];
      ASSERT_EQ(signExtend(Raw, 8), N / D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, SignedDivRemExhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const Program P = genSignedDivRem(8, D);
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      const std::vector<uint64_t> Results =
          run(P, {static_cast<uint64_t>(N) & 0xff});
      ASSERT_EQ(signExtend(Results[0], 8), N / D)
          << "n=" << N << " d=" << D;
      ASSERT_EQ(signExtend(Results[1], 8), N % D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, SignedAllDividends16ForGallery) {
  for (int D : {3, -3, 5, 7, -7, 10, -10, 25, 125, 4096, -4096, 32767,
                -32768}) {
    const Program P = genSignedDiv(16, D);
    for (int N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xffff})[0];
      ASSERT_EQ(signExtend(Raw, 16), N / D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, SignedRandom32And64) {
  for (int Bits : {32, 64}) {
    const uint64_t Mask = maskFor(Bits);
    for (int I = 0; I < 500; ++I) {
      int64_t D = signExtend(rng()() & Mask, Bits) >> (rng()() % (Bits - 1));
      if (D == 0)
        D = -5;
      const Program P = genSignedDiv(Bits, D);
      for (int J = 0; J < 100; ++J) {
        const int64_t N = signExtend(rng()() & Mask, Bits);
        if (N == signExtend(uint64_t{1} << (Bits - 1), Bits) && D == -1)
          continue;
        const uint64_t Raw =
            run(P, {static_cast<uint64_t>(N) & Mask})[0];
        ASSERT_EQ(signExtend(Raw, Bits), N / D)
            << "bits=" << Bits << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(DivCodeGen, SignedDivideBy3MatchesPaperCost) {
  // §5 example: one multiply, one shift, one subtract (plus constant).
  const Program P = genSignedDiv(32, 3);
  int Multiplies = 0, Shifts = 0, Subs = 0;
  for (const Instr &I : P.instrs()) {
    Multiplies += I.Op == Opcode::MulSH;
    Shifts += I.Op == Opcode::Sra || I.Op == Opcode::Srl;
    Subs += I.Op == Opcode::Sub;
  }
  EXPECT_EQ(Multiplies, 1);
  EXPECT_EQ(Subs, 1);
  // sh_post = 0 means no SRA beyond the XSIGN.
  bool SawMagic = false;
  for (const Instr &I : P.instrs())
    if (I.Op == Opcode::Const && I.Imm == 1431655766u)
      SawMagic = true;
  EXPECT_TRUE(SawMagic);
}

TEST(DivCodeGen, SignedPowerOfTwoSequence) {
  // Figure 5.2 power-of-two path: SRA(n + SRL(SRA(n, l-1), N-l), l).
  const Program P = genSignedDiv(32, 8);
  int Sras = 0, Srls = 0, Adds = 0;
  for (const Instr &I : P.instrs()) {
    Sras += I.Op == Opcode::Sra;
    Srls += I.Op == Opcode::Srl;
    Adds += I.Op == Opcode::Add;
  }
  EXPECT_EQ(Sras, 2);
  EXPECT_EQ(Srls, 1);
  EXPECT_EQ(Adds, 1);
  EXPECT_EQ(P.operationCount(), 4);
}

TEST(DivCodeGen, SignedByMinusOneIsNegate) {
  const Program P = genSignedDiv(32, -1);
  EXPECT_EQ(P.operationCount(), 1);
  EXPECT_EQ(P.instrs().back().Op, Opcode::Neg);
}

//===----------------------------------------------------------------------===//
// Floor — Figure 6.1.
//===----------------------------------------------------------------------===//

int64_t refFloorDiv(int64_t N, int64_t D) {
  const int64_t Quotient = N / D;
  if (N % D != 0 && ((N % D < 0) != (D < 0)))
    return Quotient - 1;
  return Quotient;
}

TEST(DivCodeGen, FloorExhaustive8) {
  for (int D = 1; D < 128; ++D) {
    const Program P = genFloorDiv(8, D);
    for (int N = -128; N < 128; ++N) {
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xff})[0];
      ASSERT_EQ(signExtend(Raw, 8), refFloorDiv(N, D))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, FloorModExhaustive8) {
  for (int D = 1; D < 128; ++D) {
    const Program P = genFloorDivMod(8, D);
    for (int N = -128; N < 128; ++N) {
      const std::vector<uint64_t> Results =
          run(P, {static_cast<uint64_t>(N) & 0xff});
      const int64_t Mod = N - D * refFloorDiv(N, D);
      ASSERT_EQ(signExtend(Results[1], 8), Mod) << "n=" << N << " d=" << D;
      ASSERT_GE(signExtend(Results[1], 8), 0); // d > 0 => mod >= 0.
    }
  }
}

TEST(DivCodeGen, FloorAllDividends16) {
  for (int D : {3, 7, 10, 100, 641, 32767}) {
    const Program P = genFloorDiv(16, D);
    for (int N = -32768; N <= 32767; ++N) {
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xffff})[0];
      ASSERT_EQ(signExtend(Raw, 16), refFloorDiv(N, D))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, FloorRandom32And64) {
  for (int Bits : {32, 64}) {
    const uint64_t Mask = maskFor(Bits);
    for (int I = 0; I < 500; ++I) {
      int64_t D =
          signExtend(rng()() & Mask, Bits) >> (rng()() % (Bits - 1));
      if (D <= 0)
        D = -D + 1;
      const Program P = genFloorDiv(Bits, D);
      for (int J = 0; J < 100; ++J) {
        const int64_t N = signExtend(rng()() & Mask, Bits);
        const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & Mask})[0];
        ASSERT_EQ(signExtend(Raw, Bits), refFloorDiv(N, D))
            << "bits=" << Bits << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(DivCodeGen, FloorMod10MatchesPaperSequence) {
  // §6 example: nsign = XSIGN(n); q0 = MULUH((2^33+3)/5, EOR(nsign, n));
  // q = EOR(nsign, SRL(q0, 2)); r = n - q*10 (here via MULL).
  const Program P = genFloorDivMod(32, 10);
  bool SawMagic = false;
  int Eors = 0, Xsigns = 0, MulUHs = 0;
  for (const Instr &I : P.instrs()) {
    if (I.Op == Opcode::Const && I.Imm == ((uint64_t{1} << 33) + 3) / 5)
      SawMagic = true;
    Eors += I.Op == Opcode::Eor;
    Xsigns += I.Op == Opcode::Xsign;
    MulUHs += I.Op == Opcode::MulUH;
  }
  EXPECT_TRUE(SawMagic);
  EXPECT_EQ(Eors, 2);
  EXPECT_EQ(Xsigns, 1);
  EXPECT_EQ(MulUHs, 1);
}

//===----------------------------------------------------------------------===//
// §9 — exact division and divisibility.
//===----------------------------------------------------------------------===//

TEST(DivCodeGen, ExactUnsignedExhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genExactUnsignedDiv(8, D);
    for (uint32_t Q = 0; Q * D < 256; ++Q)
      ASSERT_EQ(run(P, {Q * D})[0], Q) << "q=" << Q << " d=" << D;
  }
}

TEST(DivCodeGen, ExactSignedExhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const Program P = genExactSignedDiv(8, D);
    for (int N = -128; N < 128; ++N) {
      if (N % D != 0 || (N == -128 && D == -1))
        continue;
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xff})[0];
      ASSERT_EQ(signExtend(Raw, 8), N / D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DivCodeGen, ExactDivisionHasNoHighMultiply) {
  // §9's point: exact division needs only MULL, usable on machines
  // without a high-half multiply.
  for (uint64_t D : {3ull, 12ull, 100ull, 56ull}) {
    const Program P = genExactUnsignedDiv(32, D);
    for (const Instr &I : P.instrs()) {
      EXPECT_NE(I.Op, Opcode::MulUH);
      EXPECT_NE(I.Op, Opcode::MulSH);
    }
  }
}

TEST(DivCodeGen, DivisibilityTestExhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genDivisibilityTestUnsigned(8, D);
    for (uint32_t N = 0; N < 256; ++N)
      ASSERT_EQ(run(P, {N})[0], N % D == 0 ? 1u : 0u)
          << "n=" << N << " d=" << D;
  }
}

TEST(DivCodeGen, DivisibilityTestAllDividends16) {
  for (uint32_t D : {3u, 6u, 100u, 256u, 769u}) {
    const Program P = genDivisibilityTestUnsigned(16, D);
    for (uint32_t N = 0; N <= 0xffff; ++N)
      ASSERT_EQ(run(P, {N})[0], N % D == 0 ? 1u : 0u)
          << "n=" << N << " d=" << D;
  }
}

TEST(DivCodeGen, DivisibilityTestRandom64) {
  for (int I = 0; I < 300; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const Program P = genDivisibilityTestUnsigned(64, D);
    for (int J = 0; J < 100; ++J) {
      const uint64_t N = rng()();
      ASSERT_EQ(run(P, {N})[0], N % D == 0 ? 1u : 0u)
          << "n=" << N << " d=" << D;
    }
    const uint64_t Multiple = (rng()() % (~uint64_t{0} / D)) * D;
    ASSERT_EQ(run(P, {Multiple})[0], 1u);
  }
}

//===----------------------------------------------------------------------===//
// Telemetry remarks: each generator names the paper case it selected.
// (Compiled out with the telemetry layer under GMDIV_NO_TELEMETRY.)
//===----------------------------------------------------------------------===//

#ifndef GMDIV_NO_TELEMETRY

template <typename Fn>
std::vector<telemetry::Remark> collectRemarks(Fn &&Generate) {
  telemetry::CollectingRemarkSink Sink;
  telemetry::ScopedRemarkSink Guard(&Sink);
  Generate();
  return Sink.remarks();
}

TEST(DivCodeGen, UnsignedRemarkKindMatchesDivisorClass) {
  const struct {
    uint64_t D;
    const char *Kind;
  } Cases[] = {
      {8, "unsigned-pow2"},
      {7, "unsigned-long-form"},    // m >= 2^32 and d odd.
      {14, "unsigned-pre-shift"},   // even divisor rescued by SRL first.
      {641, "unsigned-short"},      // 641 * 6700417 = 2^32 + 1: m fits.
  };
  for (const auto &TestCase : Cases) {
    const auto Remarks =
        collectRemarks([&] { genUnsignedDiv(32, TestCase.D); });
    ASSERT_EQ(Remarks.size(), 1u) << "d=" << TestCase.D;
    EXPECT_EQ(Remarks[0].Kind, TestCase.Kind) << "d=" << TestCase.D;
    EXPECT_EQ(Remarks[0].Figure, "Figure 4.2");
    EXPECT_EQ(Remarks[0].DivisorBits, TestCase.D);
    EXPECT_FALSE(Remarks[0].IsSigned);
    EXPECT_EQ(Remarks[0].WordBits, 32);
  }
}

TEST(DivCodeGen, SignedFloorExactRemarkKinds) {
  const auto Check = [](std::vector<telemetry::Remark> Remarks,
                        const char *Kind) {
    ASSERT_EQ(Remarks.size(), 1u) << Kind;
    EXPECT_EQ(Remarks[0].Kind, Kind);
  };
  Check(collectRemarks([] { genSignedDiv(32, 1); }), "signed-unit");
  Check(collectRemarks([] { genSignedDiv(32, -8); }), "signed-pow2");
  Check(collectRemarks([] { genSignedDiv(32, 3); }), "signed-short");
  Check(collectRemarks([] { genSignedDiv(32, 7); }), "signed-add");
  Check(collectRemarks([] { genFloorDiv(32, 8); }), "floor-pow2");
  Check(collectRemarks([] { genFloorDiv(32, 10); }), "floor-short");
  Check(collectRemarks([] { genExactUnsignedDiv(32, 8); }), "exact-pow2");
  Check(collectRemarks([] { genExactUnsignedDiv(32, 12); }),
        "exact-inverse");
  Check(collectRemarks([] { genDivisibilityTestUnsigned(32, 1); }),
        "divtest-trivial");
  Check(collectRemarks([] { genDivisibilityTestUnsigned(32, 8); }),
        "divtest-pow2");
  Check(collectRemarks([] { genDivisibilityTestUnsigned(32, 12); }),
        "divtest-inverse");
}

TEST(DivCodeGen, EveryEntryPointEmitsExactlyOneRemark) {
  // The exactly-one invariant: one generated sequence, one remark, for
  // every divisor class reachable from the public entry points.
  for (uint64_t D : {1ull, 2ull, 3ull, 7ull, 10ull, 14ull, 25ull, 641ull,
                     0x80000000ull}) {
    EXPECT_EQ(collectRemarks([&] { genUnsignedDivRem(32, D); }).size(), 1u)
        << "unsigned d=" << D;
    EXPECT_EQ(collectRemarks([&] { genFloorDivMod(
                                 32, static_cast<int64_t>(D)); })
                  .size(),
              1u)
        << "floor d=" << D;
    if (D > 1) {
      EXPECT_EQ(
          collectRemarks([&] { genSignedDivRem(
                             32, -static_cast<int64_t>(D)); })
              .size(),
          1u)
          << "signed d=-" << D;
    }
  }
}

#endif // GMDIV_NO_TELEMETRY

} // namespace
