//===- tests/TelemetryTest.cpp - Stats, remarks, JSON, profiles -----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"
#include "telemetry/Profile.h"
#include "telemetry/Remarks.h"
#include "telemetry/Stats.h"

#include "codegen/DivCodeGen.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace gmdiv;
using namespace gmdiv::telemetry;

namespace {

uint64_t snapshotValue(const std::string &Group, const std::string &Name) {
  for (const StatRecord &Record : statsSnapshot())
    if (Record.Group == Group && Record.Name == Name)
      return Record.Value;
  return 0;
}

TEST(Stats, RegisterIncrementSnapshot) {
  Statistic Counter("telemetry_test", "register_increment");
  EXPECT_EQ(Counter.value(), 0u);
  Counter.increment();
  Counter.increment(41);
  EXPECT_EQ(Counter.value(), 42u);
  EXPECT_EQ(snapshotValue("telemetry_test", "register_increment"), 42u);
  EXPECT_EQ(statValue("telemetry_test", "register_increment"), 42u);
}

TEST(Stats, DuplicateCountersAggregate) {
  // The same GMDIV_STAT expanded in several template instantiations
  // produces several Statistic instances with one (group, name); the
  // snapshot must report their sum as one row.
  Statistic A("telemetry_test", "dup");
  Statistic B("telemetry_test", "dup");
  A.increment(3);
  B.increment(4);
  EXPECT_EQ(snapshotValue("telemetry_test", "dup"), 7u);
  int Rows = 0;
  for (const StatRecord &Record : statsSnapshot())
    if (Record.Group == "telemetry_test" && Record.Name == "dup")
      ++Rows;
  EXPECT_EQ(Rows, 1);
}

TEST(Stats, ScopedCountersUnregister) {
  {
    Statistic Scoped("telemetry_test", "scoped");
    Scoped.increment(9);
    EXPECT_EQ(snapshotValue("telemetry_test", "scoped"), 9u);
  }
  EXPECT_EQ(snapshotValue("telemetry_test", "scoped"), 0u);
}

TEST(Stats, JsonIsValidAndResetWorks) {
  Statistic Counter("telemetry_test", "json_check");
  Counter.increment(5);
  const std::string Doc = statsJson();
  EXPECT_TRUE(json::isValid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"telemetry_test\""), std::string::npos);
  EXPECT_NE(Doc.find("\"json_check\":5"), std::string::npos);
  resetStats();
  EXPECT_EQ(Counter.value(), 0u);
}

TEST(Json, EscapeCoversControlAndQuoteCharacters) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(Json, WriterProducesValidDocuments) {
  json::Writer W;
  W.beginObject()
      .key("s")
      .value("he \"said\"\n")
      .key("n")
      .value(uint64_t{18446744073709551615ull})
      .key("i")
      .value(int64_t{-7})
      .key("b")
      .value(true);
  W.key("arr").beginArray().value(1).value(2).null().endArray();
  W.key("nested").beginObject().endObject();
  W.endObject();
  EXPECT_TRUE(json::isValid(W.str())) << W.str();
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  // JSON has no NaN/Infinity literals; the writer must emit null so the
  // document stays spec-valid (and Perfetto/jq keep loading it).
  json::Writer W;
  W.beginObject()
      .key("nan")
      .value(std::nan(""))
      .key("pinf")
      .value(std::numeric_limits<double>::infinity())
      .key("ninf")
      .value(-std::numeric_limits<double>::infinity())
      .key("subnormal")
      .value(std::numeric_limits<double>::denorm_min())
      .key("negzero")
      .value(-0.0)
      .endObject();
  const std::string Doc = W.str();
  ASSERT_TRUE(json::isValid(Doc)) << Doc;
  json::Value Root;
  ASSERT_TRUE(json::parse(Doc, Root));
  EXPECT_EQ(Root.find("nan")->kind(), json::Value::Kind::Null);
  EXPECT_EQ(Root.find("pinf")->kind(), json::Value::Kind::Null);
  EXPECT_EQ(Root.find("ninf")->kind(), json::Value::Kind::Null);
  // Subnormals are finite: they must survive as (tiny) numbers.
  ASSERT_EQ(Root.find("subnormal")->kind(), json::Value::Kind::Number);
  EXPECT_GT(Root.find("subnormal")->asNumber(), 0.0);
  EXPECT_EQ(Root.find("negzero")->kind(), json::Value::Kind::Number);
}

TEST(Json, WriterParserRoundTripPreservesStructure) {
  json::Writer W;
  W.beginObject()
      .key("text")
      .value("he \"said\"\n\ttab \\ slash")
      .key("big")
      .value(uint64_t{9007199254740993ull})
      .key("neg")
      .value(int64_t{-42})
      .key("pi")
      .value(3.25)
      .key("flags")
      .beginArray()
      .value(true)
      .value(false)
      .null()
      .endArray()
      .key("empty")
      .beginObject()
      .endObject()
      .endObject();
  json::Value Root;
  ASSERT_TRUE(json::parse(W.str(), Root)) << W.str();
  EXPECT_EQ(Root.find("text")->asString(), "he \"said\"\n\ttab \\ slash");
  EXPECT_EQ(Root.find("neg")->asNumber(), -42.0);
  EXPECT_DOUBLE_EQ(Root.find("pi")->asNumber(), 3.25);
  ASSERT_EQ(Root.find("flags")->array().size(), 3u);
  EXPECT_TRUE(Root.find("flags")->array()[0].asBool());
  EXPECT_EQ(Root.find("flags")->array()[2].kind(),
            json::Value::Kind::Null);
  EXPECT_TRUE(Root.find("empty")->object().empty());
  EXPECT_EQ(Root.numberOr("missing", -1.0), -1.0);
  EXPECT_EQ(Root.stringOr("text", ""), "he \"said\"\n\ttab \\ slash");
}

TEST(Json, ParserDecodesEscapesAndSurrogatePairs) {
  json::Value V;
  ASSERT_TRUE(json::parse("\"a\\u0041\\n\\u00e9\"", V));
  EXPECT_EQ(V.asString(), "aA\n\xc3\xa9");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  ASSERT_TRUE(json::parse("\"\\ud83d\\ude00\"", V));
  EXPECT_EQ(V.asString(), "\xf0\x9f\x98\x80");
  // Lone or malformed surrogates are invalid.
  EXPECT_FALSE(json::parse("\"\\ud83d\"", V));
  EXPECT_FALSE(json::parse("\"\\ude00\"", V));
  EXPECT_FALSE(json::parse("\"\\ud83dx\"", V));
}

TEST(Json, ParserMatchesValidatorOnMalformedInput) {
  for (const char *Bad :
       {"", "{", "{\"a\":1,}", "[1 2]", "\"unterminated", "01",
        "{} extra", "nul", "{\"a\"}", "[,]"}) {
    json::Value V;
    EXPECT_FALSE(json::parse(Bad, V)) << Bad;
    EXPECT_FALSE(json::isValid(Bad)) << Bad;
  }
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(json::isValid("{\"a\":[1,2,{\"b\":null}]}"));
  EXPECT_FALSE(json::isValid(""));
  EXPECT_FALSE(json::isValid("{"));
  EXPECT_FALSE(json::isValid("{\"a\":1,}"));
  EXPECT_FALSE(json::isValid("{\"a\" 1}"));
  EXPECT_FALSE(json::isValid("[1 2]"));
  EXPECT_FALSE(json::isValid("\"unterminated"));
  EXPECT_FALSE(json::isValid("01"));
  EXPECT_FALSE(json::isValid("{} extra"));
}

TEST(Json, DeepNestingIsBoundedNotFatal) {
  // Both parsers are recursive-descent with a 256-level container
  // bound: comfortably deep documents parse, adversarial "[[[[..."
  // input is rejected cleanly instead of overflowing the stack.
  const auto nestedArray = [](int Depth) {
    return std::string(static_cast<size_t>(Depth), '[') + "1" +
           std::string(static_cast<size_t>(Depth), ']');
  };
  json::Value V;
  EXPECT_TRUE(json::isValid(nestedArray(200)));
  EXPECT_TRUE(json::parse(nestedArray(200), V));
  EXPECT_TRUE(json::isValid(nestedArray(256)));
  EXPECT_FALSE(json::isValid(nestedArray(257)));
  EXPECT_FALSE(json::parse(nestedArray(257), V));
  EXPECT_FALSE(json::isValid(nestedArray(100000)));
  EXPECT_FALSE(json::parse(nestedArray(100000), V));

  // Same bound for objects.
  std::string DeepObject;
  for (int I = 0; I < 300; ++I)
    DeepObject += "{\"k\":";
  DeepObject += "0";
  for (int I = 0; I < 300; ++I)
    DeepObject += '}';
  EXPECT_FALSE(json::isValid(DeepObject));
  EXPECT_FALSE(json::parse(DeepObject, V));
}

TEST(Json, DuplicateKeysKeepInsertionOrderAndFindReturnsFirst) {
  // RFC 8259 leaves duplicate member names to the implementation; ours
  // keeps every member in insertion order and find() returns the first.
  const std::string Doc = "{\"a\":1,\"b\":2,\"a\":3}";
  EXPECT_TRUE(json::isValid(Doc));
  json::Value Root;
  ASSERT_TRUE(json::parse(Doc, Root));
  ASSERT_EQ(Root.object().size(), 3u);
  EXPECT_EQ(Root.find("a")->asNumber(), 1.0);
  EXPECT_EQ(Root.object()[2].second.asNumber(), 3.0);
}

TEST(Json, NumbersAtIntegerAndDoubleBoundaries) {
  json::Value V;
  // UINT64_MAX: beyond double precision, so it rounds — but it must
  // parse, and to the nearest representable double.
  ASSERT_TRUE(json::parse("18446744073709551615", V));
  EXPECT_DOUBLE_EQ(V.asNumber(), 18446744073709551615.0);
  // INT64_MIN.
  ASSERT_TRUE(json::parse("-9223372036854775808", V));
  EXPECT_DOUBLE_EQ(V.asNumber(), -9223372036854775808.0);
  // 2^53 and 2^53 + 1: the edge of exact integer representation (the
  // latter rounds to the former).
  ASSERT_TRUE(json::parse("9007199254740992", V));
  EXPECT_EQ(V.asNumber(), 9007199254740992.0);
  ASSERT_TRUE(json::parse("9007199254740993", V));
  EXPECT_EQ(V.asNumber(), 9007199254740992.0);
  // Double range extremes: near-max, subnormal-min, and an exponent
  // past the representable range (strtod saturates to infinity — the
  // grammar accepts it; consumers see a non-finite number).
  ASSERT_TRUE(json::parse("1.7976931348623157e308", V));
  EXPECT_DOUBLE_EQ(V.asNumber(),
                   std::numeric_limits<double>::max());
  ASSERT_TRUE(json::parse("5e-324", V));
  EXPECT_GT(V.asNumber(), 0.0);
  ASSERT_TRUE(json::parse("1e999", V));
  EXPECT_TRUE(std::isinf(V.asNumber()));
}

TEST(Json, LoneSurrogateSplitsValidatorAndTreeParser) {
  // Documented contract (telemetry/Json.h): the validator checks only
  // that \u escapes are four hex digits, while the tree parser must
  // decode UTF-16 and so rejects unpaired surrogates. A lone surrogate
  // is the one class of input where isValid() and parse() disagree.
  for (const char *Doc : {"\"\\ud800\"", "\"\\udbff\"", "\"\\udc00\"",
                          "\"\\udfff\"", "\"\\ud83d \\ude00\""}) {
    EXPECT_TRUE(json::isValid(Doc)) << Doc;
    json::Value V;
    EXPECT_FALSE(json::parse(Doc, V)) << Doc;
  }
}

TEST(Remarks, CollectingSinkReceivesStructuredRemark) {
  CollectingRemarkSink Sink;
#ifndef GMDIV_NO_TELEMETRY
  EXPECT_FALSE(remarksEnabled());
#endif
  {
    ScopedRemarkSink Guard(&Sink);
#ifndef GMDIV_NO_TELEMETRY
    EXPECT_TRUE(remarksEnabled());
#endif
    Remark R;
    R.Kind = "unsigned-long-form";
    R.Figure = "Figure 4.2";
    R.CaseName = "long form (m >= 2^N)";
    R.WordBits = 32;
    R.DivisorBits = 7;
    R.Details = {{"m_minus_2N", "0x24924925"}, {"sh_post", "3"}};
    emitRemark(R);
  }
  EXPECT_FALSE(remarksEnabled());
  ASSERT_EQ(Sink.remarks().size(), 1u);
  const Remark &Got = Sink.remarks()[0];
  EXPECT_EQ(Got.Kind, "unsigned-long-form");
  EXPECT_EQ(Got.divisorString(), "7");
  EXPECT_EQ(Got.message(),
            "codegen: d=7, N=32 -> Figure 4.2 long form (m >= 2^N); "
            "m_minus_2N=0x24924925, sh_post=3");
  EXPECT_TRUE(json::isValid(Got.toJson())) << Got.toJson();
}

TEST(Remarks, DropAccountingSplitsEmittedFromDropped) {
  // The counters are process-global and monotone, so assert on deltas.
  uint64_t Emitted0 = 0, Dropped0 = 0;
  remarkCounts(Emitted0, Dropped0);

  Remark R;
  R.Kind = "drop-accounting";
  R.WordBits = 32;
  R.DivisorBits = 7;

  // No sink installed: the remark is dropped, and the drop is counted
  // (the metrics plane exposes this as gmdiv_remarks_dropped_total).
  emitRemark(R);
  uint64_t Emitted = 0, Dropped = 0;
  remarkCounts(Emitted, Dropped);
  EXPECT_EQ(Emitted, Emitted0);
  EXPECT_EQ(Dropped, Dropped0 + 1);

  // With a sink installed the same remark counts as emitted instead.
  CollectingRemarkSink Sink;
  {
    ScopedRemarkSink Guard(&Sink);
    emitRemark(R);
  }
  remarkCounts(Emitted, Dropped);
  EXPECT_EQ(Emitted, Emitted0 + 1);
  EXPECT_EQ(Dropped, Dropped0 + 1);
  ASSERT_EQ(Sink.remarks().size(), 1u);
  EXPECT_EQ(Sink.remarks()[0].Kind, "drop-accounting");
}

TEST(Remarks, DivisorStringHandlesSignAndRuntime) {
  Remark R;
  R.WordBits = 32;
  R.DivisorBits = static_cast<uint64_t>(int64_t{-5});
  R.IsSigned = true;
  EXPECT_EQ(R.divisorString(), "-5");
  R.IsSigned = false;
  R.DivisorBits = ~uint64_t{0};
  EXPECT_EQ(R.divisorString(), "18446744073709551615");
  R.HasDivisor = false;
  EXPECT_EQ(R.divisorString(), "<runtime>");
}

TEST(Remarks, JsonEscapesDetailValues) {
  CollectingRemarkSink Sink;
  ScopedRemarkSink Guard(&Sink);
  Remark R;
  R.Kind = "k\"quoted\"";
  R.CaseName = "line\nbreak";
  R.Details = {{"weird \"key\"", "tab\tvalue"}};
  emitRemark(R);
  ASSERT_EQ(Sink.remarks().size(), 1u);
  const std::string Doc = Sink.remarks()[0].toJson();
  EXPECT_TRUE(json::isValid(Doc)) << Doc;
  EXPECT_NE(Doc.find("k\\\"quoted\\\""), std::string::npos);
}

TEST(Remarks, SinksStack) {
  CollectingRemarkSink First;
  CollectingRemarkSink Second;
  ScopedRemarkSink GuardFirst(&First);
  ScopedRemarkSink GuardSecond(&Second);
  Remark R;
  R.Kind = "fanout";
  emitRemark(R);
  EXPECT_EQ(First.remarks().size(), 1u);
  EXPECT_EQ(Second.remarks().size(), 1u);
}

TEST(Profile, MatchesStaticCountsAndVerifiesExecution) {
  const ir::Program P = codegen::genUnsignedDivRem(32, 7);
  ProfilingInterpreter Interp(P);
  EXPECT_EQ(Interp.profile().OperationsPerRun, P.operationCount());
  for (uint64_t N : {0ull, 1ull, 6ull, 7ull, 1234567ull, 0xffffffffull}) {
    const std::vector<uint64_t> Got = Interp.run({N});
    ASSERT_EQ(Got.size(), 2u);
    EXPECT_EQ(Got[0], N / 7);
    EXPECT_EQ(Got[1], N % 7);
    EXPECT_EQ(Got, ir::run(P, {N}));
  }
  const ExecutionProfile &Prof = Interp.profile();
  EXPECT_EQ(Prof.Runs, 6u);
  // Straight-line IR: the dynamic mix equals the static count each run.
  EXPECT_EQ(Prof.TotalOps,
            Prof.Runs * static_cast<uint64_t>(Prof.OperationsPerRun));
  EXPECT_GT(Prof.CriticalPathDepth, 0);
  EXPECT_LE(Prof.CriticalPathDepth, Prof.OperationsPerRun);
  EXPECT_EQ(Prof.OpcodeHistogram.count("muluh"), 1u);
  EXPECT_TRUE(json::isValid(Prof.toJson())) << Prof.toJson();
}

TEST(Profile, CriticalPathShorterThanOpCountWhenParallel) {
  // q and r share the MULUH chain but the final SUB depends on MULL, so
  // depth < ops for any divisor needing the full sequence.
  const ir::Program P = codegen::genUnsignedDivRem(32, 10);
  ProfilingInterpreter Interp(P);
  EXPECT_LT(Interp.profile().CriticalPathDepth, P.operationCount());
}

} // namespace
