//===- tests/FamilyDividerTest.cpp - Successor divider families -----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the three successor divider families and the
/// cross-family selector:
///
///   * FastModDivider (LKK direct remainder, arXiv:1902.01961) —
///     quotient/remainder/divisibility against hardware, signed
///     wrapper including the INT_MIN row.
///   * RoundUpDivider (round-up/increment at the Optimal Bounds
///     minimal shift, arXiv:2012.12369) — correctness, the exact
///     admissibility predicate's truth table, and minimality of the
///     chosen shift.
///   * NarrowDivider (Mitsunari–Hoshino 32-on-64) — one-multiply
///     quotients, known multiplier values, signed wrapper.
///   * arch::selectFamily — the cost-model extension, including the
///     LKK section 3 refusal: fastmod/narrow must be rejected when the
///     2N-bit product would not fit the target word, falling back to a
///     full-width family.
///
/// The exhaustive N = 16 sweeps live in Exhaustive16Test.cpp; the
/// oracle-backed property sweeps at N = 4..12 plus fuzzing at 16/32/64
/// run under verify/ (properties fastmod-*, roundup-*, narrow32-*).
///
//===----------------------------------------------------------------------===//

#include "arch/Arch.h"
#include "arch/FamilySelect.h"
#include "core/Divider.h"
#include "core/FastModDivider.h"
#include "core/NarrowDivider.h"
#include "core/RoundUpDivider.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace gmdiv;

namespace {

std::vector<uint64_t> dividendGallery64(uint64_t D) {
  std::vector<uint64_t> Values = {0,
                                  1,
                                  2,
                                  D - 1,
                                  D,
                                  D + 1,
                                  2 * D - 1,
                                  2 * D,
                                  2 * D + 1,
                                  ~uint64_t{0} / 2,
                                  ~uint64_t{0} - 1,
                                  ~uint64_t{0}};
  std::mt19937_64 Rng(0x5eedf00dd15ea5e5ull);
  for (int I = 0; I < 300; ++I)
    Values.push_back(Rng());
  return Values;
}

const std::vector<uint64_t> &divisorGallery() {
  // Small odd, even (pre-shift), powers of two, 2^k +/- 1, the rare
  // 641, large divisors, and near-top values at each width.
  static const std::vector<uint64_t> Gallery = {
      1,       2,         3,          5,          6,          7,
      9,       10,        11,         12,         14,         25,
      60,      100,       125,        127,        128,        129,
      255,     256,       257,        641,        32767,      32768,
      32769,   65535,     0x7fffffff, 0x80000000, 0x80000001, 0xffffffff,
      uint64_t{1} << 62,  (uint64_t{1} << 62) - 1, ~uint64_t{0} - 1,
      ~uint64_t{0}};
  return Gallery;
}

//===----------------------------------------------------------------------===//
// fastmod (LKK)
//===----------------------------------------------------------------------===//

template <typename UWord> void fastModAgreesWithHardware() {
  for (uint64_t DRaw : divisorGallery()) {
    const UWord D = static_cast<UWord>(DRaw);
    if (D == 0)
      continue;
    const FastModDivider<UWord> Div(D);
    for (uint64_t NRaw : dividendGallery64(D)) {
      const UWord N = static_cast<UWord>(NRaw);
      const UWord Q = static_cast<UWord>(N / D);
      const UWord R = static_cast<UWord>(N % D);
      ASSERT_EQ(Div.divide(N), Q) << "d=" << uint64_t(D) << " n=" << uint64_t(N);
      ASSERT_EQ(Div.remainder(N), R)
          << "d=" << uint64_t(D) << " n=" << uint64_t(N);
      const auto QR = Div.divRem(N);
      ASSERT_EQ(QR.Quotient, Q);
      ASSERT_EQ(QR.Remainder, R);
      ASSERT_EQ(Div.isDivisible(N), R == 0)
          << "d=" << uint64_t(D) << " n=" << uint64_t(N);
    }
  }
}

TEST(FastModDivider, AgreesWithHardware8) { fastModAgreesWithHardware<uint8_t>(); }
TEST(FastModDivider, AgreesWithHardware16) {
  fastModAgreesWithHardware<uint16_t>();
}
TEST(FastModDivider, AgreesWithHardware32) {
  fastModAgreesWithHardware<uint32_t>();
}
TEST(FastModDivider, AgreesWithHardware64) {
  fastModAgreesWithHardware<uint64_t>();
}

TEST(FastModDivider, DivisibilityExhaustive8) {
  // The one-multiply-one-compare claim, proven over every (n, d) at
  // N = 8 right here (the verify harness repeats this at 4..12).
  for (uint32_t D = 2; D <= 0xff; ++D) {
    const FastModDivider<uint8_t> Div(static_cast<uint8_t>(D));
    for (uint32_t N = 0; N <= 0xff; ++N)
      ASSERT_EQ(Div.isDivisible(static_cast<uint8_t>(N)), N % D == 0)
          << "d=" << D << " n=" << N;
  }
}

TEST(FastModSignedDivider, SignCombinationsAndIntMin) {
  for (int64_t DRaw : {int64_t{1}, int64_t{-1}, int64_t{3}, int64_t{-3},
                       int64_t{7}, int64_t{-7}, int64_t{10}, int64_t{-10},
                       int64_t{INT32_MAX}, -int64_t{INT32_MAX},
                       int64_t{INT32_MIN}}) {
    const int32_t D = static_cast<int32_t>(DRaw);
    const FastModSignedDivider<int32_t> Div(D);
    for (int64_t NRaw :
         {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{100}, int64_t{-100},
          int64_t{INT32_MAX}, int64_t{INT32_MIN}, int64_t{INT32_MIN} + 1}) {
      const int32_t N = static_cast<int32_t>(NRaw);
      if (N == INT32_MIN && D == -1) {
        // Defined to wrap, matching the Oracle's overflow policy.
        EXPECT_EQ(Div.divide(N), INT32_MIN);
        EXPECT_EQ(Div.remainder(N), 0);
        continue;
      }
      ASSERT_EQ(Div.divide(N), N / D) << "d=" << D << " n=" << N;
      ASSERT_EQ(Div.remainder(N), N % D) << "d=" << D << " n=" << N;
      ASSERT_EQ(Div.isDivisible(N), N % D == 0) << "d=" << D << " n=" << N;
    }
  }
}

TEST(FastModDivider, KnownReciprocals) {
  // c = floor(2^64/d) + 1 at N = 32.
  const FastModDivider<uint32_t> Seven(7);
  EXPECT_EQ(Seven.magic(), ~uint64_t{0} / 7 + 1); // 0x2492492492492493
  const FastModDivider<uint32_t> Ten(10);
  EXPECT_EQ(Ten.magic(), ~uint64_t{0} / 10 + 1); // 0x199999999999999a
  // d = 1 bypasses the reciprocal entirely.
  const FastModDivider<uint32_t> One(1);
  EXPECT_EQ(One.magic(), 0u);
  EXPECT_EQ(One.divide(123u), 123u);
  EXPECT_TRUE(One.isDivisible(0xffffffffu));
}

//===----------------------------------------------------------------------===//
// roundup (Optimal Bounds)
//===----------------------------------------------------------------------===//

template <typename UWord> void roundUpAgreesWithHardware() {
  for (uint64_t DRaw : divisorGallery()) {
    const UWord D = static_cast<UWord>(DRaw);
    if (D == 0)
      continue;
    const RoundUpDivider<UWord> Div(D);
    for (uint64_t NRaw : dividendGallery64(D)) {
      const UWord N = static_cast<UWord>(NRaw);
      ASSERT_EQ(Div.divide(N), static_cast<UWord>(N / D))
          << Div.describe() << " n=" << uint64_t(N);
      ASSERT_EQ(Div.remainder(N), static_cast<UWord>(N % D))
          << Div.describe() << " n=" << uint64_t(N);
    }
  }
}

TEST(RoundUpDivider, AgreesWithHardware8) { roundUpAgreesWithHardware<uint8_t>(); }
TEST(RoundUpDivider, AgreesWithHardware16) {
  roundUpAgreesWithHardware<uint16_t>();
}
TEST(RoundUpDivider, AgreesWithHardware32) {
  roundUpAgreesWithHardware<uint32_t>();
}
TEST(RoundUpDivider, AgreesWithHardware64) {
  roundUpAgreesWithHardware<uint64_t>();
}

TEST(RoundUpDivider, PowersOfTwoUseShiftMode) {
  for (int K = 0; K < 32; ++K) {
    const RoundUpDivider<uint32_t> Div(uint32_t{1} << K);
    EXPECT_EQ(Div.mode(), RoundUpChoice<uint32_t>::Kind::Shift);
    EXPECT_EQ(Div.totalShift(), K);
  }
}

TEST(RoundUpDivider, PredicateTruthTable) {
  using Choice = RoundUpChoice<uint8_t>;
  // d = 7, N = 8: the exact predicate must accept the canonical
  // round-up multiplier at an admissible k and reject neighbors.
  // 2^10/7 = 146.29 => m_up = 147, e = 7*147 - 1024 = 5; worst dividend
  // n* = 251 (largest n = -1 mod 7 below 256): 5*251 = 1255 > 1024, so
  // k = 10 round-up is INADMISSIBLE; the increment form m = 146,
  // e' = 2, n0 = 252: 2*253 = 506 <= 1024 and the saturation row holds,
  // so increment at k = 10 is admissible.
  EXPECT_FALSE(checkRoundUpMultiplier<uint8_t>(7, 147, 10, false));
  EXPECT_TRUE(checkRoundUpMultiplier<uint8_t>(7, 146, 10, true));
  // Too-small and too-large multipliers are never admissible.
  EXPECT_FALSE(checkRoundUpMultiplier<uint8_t>(7, 0, 10, false));
  EXPECT_FALSE(checkRoundUpMultiplier<uint8_t>(7, 146, 10, false));
  EXPECT_FALSE(checkRoundUpMultiplier<uint8_t>(7, 256, 10, false));
  // Exact reciprocal: d | 2^k admits m = 2^k/d with e = 0.
  EXPECT_TRUE(checkRoundUpMultiplier<uint8_t>(4, 64, 8, false));
  // d = 2^N - 1 collides the n = d-1 and saturated-top rows in the
  // increment form: must be rejected no matter the multiplier.
  EXPECT_FALSE(checkRoundUpMultiplier<uint8_t>(255, 128, 15, true));
  // ...but the round-up form covers it (m = 129 at k = 15).
  EXPECT_TRUE(checkRoundUpMultiplier<uint8_t>(255, 129, 15, false));
  const RoundUpDivider<uint8_t> Top(255);
  EXPECT_NE(Top.mode(), Choice::Kind::Fixup);
}

TEST(RoundUpSignedDivider, SignCombinationsAndIntMin) {
  for (int64_t DRaw : {int64_t{1}, int64_t{-1}, int64_t{3}, int64_t{-3},
                       int64_t{7}, int64_t{-7}, int64_t{10}, int64_t{-10},
                       int64_t{INT32_MAX}, -int64_t{INT32_MAX},
                       int64_t{INT32_MIN}}) {
    const int32_t D = static_cast<int32_t>(DRaw);
    const RoundUpSignedDivider<int32_t> Div(D);
    EXPECT_EQ(Div.divisor(), D);
    for (int64_t NRaw :
         {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{100}, int64_t{-100},
          int64_t{INT32_MAX}, int64_t{INT32_MIN}, int64_t{INT32_MIN} + 1}) {
      const int32_t N = static_cast<int32_t>(NRaw);
      if (N == INT32_MIN && D == -1) {
        // Defined to wrap, matching the Oracle's overflow policy.
        EXPECT_EQ(Div.divide(N), INT32_MIN);
        EXPECT_EQ(Div.remainder(N), 0);
        continue;
      }
      ASSERT_EQ(Div.divide(N), N / D) << "d=" << D << " n=" << N;
      ASSERT_EQ(Div.remainder(N), N % D) << "d=" << D << " n=" << N;
      const auto Both = Div.divRem(N);
      ASSERT_EQ(Both.Quotient, N / D) << "d=" << D << " n=" << N;
      ASSERT_EQ(Both.Remainder, N % D) << "d=" << D << " n=" << N;
    }
  }
}

TEST(RoundUpSignedDivider, RandomAgainstHardware64) {
  std::mt19937_64 Rng(0xda3e39cb94b95bdbull);
  for (int64_t D : {int64_t{-3}, int64_t{-641}, int64_t{6700417},
                    int64_t{INT64_MIN}, int64_t{INT64_MAX}}) {
    const RoundUpSignedDivider<int64_t> Div(D);
    for (int Round = 0; Round < 4000; ++Round) {
      const int64_t N = static_cast<int64_t>(Rng());
      if (N == INT64_MIN && D == -1)
        continue;
      ASSERT_EQ(Div.divide(N), N / D) << "d=" << D << " n=" << N;
      ASSERT_EQ(Div.remainder(N), N % D) << "d=" << D << " n=" << N;
    }
  }
}

TEST(RoundUpDivider, ChosenShiftIsMinimal) {
  // Optimal Bounds: no k below the chosen one admits either variant.
  for (uint64_t DRaw : {uint64_t{3}, uint64_t{7}, uint64_t{10},
                        uint64_t{641}, uint64_t{0xffffffff}}) {
    const uint32_t D = static_cast<uint32_t>(DRaw);
    const RoundUpChoice<uint32_t> C = chooseRoundUpMultiplier(D);
    ASSERT_NE(C.Mode, RoundUpChoice<uint32_t>::Kind::Shift);
    ASSERT_NE(C.Mode, RoundUpChoice<uint32_t>::Kind::Fixup) << "d=" << D;
    for (int K = 32; K < C.TotalShift; ++K) {
      const auto QR = WordTraits<uint32_t>::udDivModPow2(K, uint64_t{D});
      EXPECT_FALSE(checkRoundUpMultiplier<uint32_t>(D, QR.first + 1, K, false))
          << "d=" << D << " k=" << K;
      EXPECT_FALSE(checkRoundUpMultiplier<uint32_t>(D, QR.first, K, true))
          << "d=" << D << " k=" << K;
    }
    // Word-sized by construction (that is what admissibility means).
    EXPECT_LE(C.MultiplierBits, 32);
  }
}

//===----------------------------------------------------------------------===//
// narrow (Mitsunari–Hoshino 32-on-64)
//===----------------------------------------------------------------------===//

template <typename UWord> void narrowAgreesWithHardware() {
  for (uint64_t DRaw : divisorGallery()) {
    const UWord D = static_cast<UWord>(DRaw);
    if (D == 0)
      continue;
    const NarrowDivider<UWord> Div(D);
    for (uint64_t NRaw : dividendGallery64(D)) {
      const UWord N = static_cast<UWord>(NRaw);
      ASSERT_EQ(Div.divide(N), static_cast<UWord>(N / D))
          << "d=" << uint64_t(D) << " n=" << uint64_t(N);
      const auto QR = Div.divRem(N);
      ASSERT_EQ(QR.Quotient, static_cast<UWord>(N / D));
      ASSERT_EQ(QR.Remainder, static_cast<UWord>(N % D));
    }
  }
}

TEST(NarrowDivider, AgreesWithHardware8) { narrowAgreesWithHardware<uint8_t>(); }
TEST(NarrowDivider, AgreesWithHardware16) { narrowAgreesWithHardware<uint16_t>(); }
TEST(NarrowDivider, AgreesWithHardware32) { narrowAgreesWithHardware<uint32_t>(); }

TEST(NarrowDivider, KnownMultipliers32) {
  // M = ceil(2^64/d) held in a uint64; on a 64-bit host the quotient is
  // literally MULUH64(M, n) — one multiply, no shift, no fixup.
  const Narrow32Divider Ten(10);
  EXPECT_EQ(Ten.magic(), 0x199999999999999aull);
  EXPECT_EQ(Ten.multiplierBits(), 61);
  const Narrow32Divider Seven(7);
  EXPECT_EQ(Seven.magic(), 0x2492492492492493ull);
  // Unconditional correctness: every divisor admits k = 2N, including
  // the ones GM needs the fixup for (d = 2^N - 1 and friends).
  const Narrow32Divider Top(0xffffffffu);
  EXPECT_EQ(Top.divide(0xffffffffu), 1u);
  EXPECT_EQ(Top.divide(0xfffffffeu), 0u);
}

TEST(NarrowSignedDivider, SignCombinationsAndIntMin) {
  for (int64_t DRaw : {int64_t{1}, int64_t{-1}, int64_t{7}, int64_t{-7},
                       int64_t{INT32_MAX}, int64_t{INT32_MIN}}) {
    const int32_t D = static_cast<int32_t>(DRaw);
    const Narrow32SignedDivider Div(D);
    for (int64_t NRaw : {int64_t{0}, int64_t{42}, int64_t{-42},
                         int64_t{INT32_MAX}, int64_t{INT32_MIN}}) {
      const int32_t N = static_cast<int32_t>(NRaw);
      if (N == INT32_MIN && D == -1) {
        EXPECT_EQ(Div.divide(N), INT32_MIN);
        EXPECT_EQ(Div.remainder(N), 0);
        continue;
      }
      ASSERT_EQ(Div.divide(N), N / D) << "d=" << D << " n=" << N;
      ASSERT_EQ(Div.remainder(N), N % D) << "d=" << D << " n=" << N;
    }
  }
}

//===----------------------------------------------------------------------===//
// arch::selectFamily
//===----------------------------------------------------------------------===//

TEST(FamilySelect, DivisibilityOnlyPicksFastMod) {
  // LKK's headline: on a 64-bit machine, u32 divisibility is one
  // multiply + one compare — cheaper than any quotient-based test.
  const arch::ArchProfile &R4000 = arch::profileByName("MIPS R4000");
  const arch::FamilyChoice C = arch::selectFamily(
      arch::DivOp::Divisibility, 32, 7, R4000, /*BatchSize=*/1000);
  EXPECT_EQ(C.Chosen, arch::Family::FastMod);
  EXPECT_TRUE(C.chosen().Eligible);
  EXPECT_LT(C.chosen().EffectiveCycles,
            C.candidate(arch::Family::GM).EffectiveCycles);
}

TEST(FamilySelect, Narrow32On64PicksNarrowForQuotients) {
  const arch::ArchProfile &Alpha = arch::profileByName("DEC Alpha 21064");
  const arch::FamilyChoice C = arch::selectFamily(
      arch::DivOp::Divide, 32, 10, Alpha, /*BatchSize=*/1000);
  EXPECT_EQ(C.Chosen, arch::Family::Narrow);
}

TEST(FamilySelect, RefusesFastModWhenRemainderWidthExceedsHostWord) {
  // The LKK section 3 precondition: at full width the 2N-bit fraction
  // does not fit a register, so fastmod/narrow must be refused and the
  // selector must fall back to a full-width family — GM here.
  const arch::ArchProfile &R4000 = arch::profileByName("MIPS R4000");
  ASSERT_EQ(R4000.WordBits, 64);
  const arch::FamilyChoice C = arch::selectFamily(
      arch::DivOp::Divisibility, 64, 10, R4000, /*BatchSize=*/1000);
  const arch::FamilyCandidate &FM = C.candidate(arch::Family::FastMod);
  EXPECT_FALSE(FM.Eligible);
  EXPECT_NE(FM.Reason.find("LKK"), std::string::npos) << FM.Reason;
  EXPECT_FALSE(C.candidate(arch::Family::Narrow).Eligible);
  EXPECT_EQ(C.Chosen, arch::Family::GM);
  EXPECT_TRUE(C.chosen().Eligible);
}

TEST(FamilySelect, SameRefusalAtHalfOfA32BitWord) {
  // 32-on-64 works; 32-on-32 must not: the rule is 2N <= word, not a
  // special case for 64-bit hosts.
  const arch::ArchProfile &Pentium = arch::profileByName("Intel Pentium");
  ASSERT_EQ(Pentium.WordBits, 32);
  const arch::FamilyChoice Refused = arch::selectFamily(
      arch::DivOp::Divisibility, 32, 7, Pentium, /*BatchSize=*/1000);
  EXPECT_FALSE(Refused.candidate(arch::Family::FastMod).Eligible);
  const arch::FamilyChoice Allowed = arch::selectFamily(
      arch::DivOp::Divisibility, 16, 7, Pentium, /*BatchSize=*/1000);
  EXPECT_TRUE(Allowed.candidate(arch::Family::FastMod).Eligible);
  EXPECT_EQ(Allowed.Chosen, arch::Family::FastMod);
}

TEST(FamilySelect, OneShotDivisionPrefersHardwareDivide) {
  // BatchSize = 1: no amortization, so the multiplicative families pay
  // their full precompute and the hardware divide wins.
  const arch::ArchProfile &R4000 = arch::profileByName("MIPS R4000");
  const arch::FamilyChoice C =
      arch::selectFamily(arch::DivOp::Divide, 32, 7, R4000, /*BatchSize=*/1);
  EXPECT_EQ(C.Chosen, arch::Family::HardwareDiv);
  EXPECT_EQ(C.chosen().SetupCycles, 0.0);
}

TEST(FamilySelect, PowerOfTwoPicksAShiftFamily) {
  const arch::ArchProfile &R4000 = arch::profileByName("MIPS R4000");
  const arch::FamilyChoice C = arch::selectFamily(
      arch::DivOp::Divide, 32, 8, R4000, /*BatchSize=*/1000);
  // GM and roundup both reduce to a plain shift; the tie breaks to GM.
  EXPECT_EQ(C.Chosen, arch::Family::GM);
  EXPECT_EQ(C.chosen().MultiplierBits, 0);
}

TEST(FamilySelect, NoHardwareDivideMeansHwdivIneligible) {
  arch::ArchProfile NoDiv = arch::profileByName("MIPS R4000");
  NoDiv.HasDivide = false;
  const arch::FamilyChoice C =
      arch::selectFamily(arch::DivOp::Divide, 32, 7, NoDiv, /*BatchSize=*/1);
  EXPECT_FALSE(C.candidate(arch::Family::HardwareDiv).Eligible);
  EXPECT_NE(C.Chosen, arch::Family::HardwareDiv);
}

TEST(FamilySelect, NothingEligibleFallsBackToGM) {
  // A 64-bit operand on a 32-bit machine: every family is refused (the
  // codegen layer handles this via the wide sequences instead); the
  // selector still answers with the portable reference.
  const arch::ArchProfile &Pentium = arch::profileByName("Intel Pentium");
  const arch::FamilyChoice C = arch::selectFamily(
      arch::DivOp::Divide, 64, 7, Pentium, /*BatchSize=*/1000);
  for (const arch::FamilyCandidate &Cand : C.Candidates)
    EXPECT_FALSE(Cand.Eligible) << arch::familyName(Cand.Fam);
  EXPECT_EQ(C.Chosen, arch::Family::GM);
}

TEST(FamilySelect, SignedSurchargeFlipsRoundUpToGM) {
  // Signed pricing: GM runs its native Figure 5.2 sequence (+2 simple
  // ops over unsigned), while roundup divides magnitudes behind the
  // RoundUpSignedDivider wrapper (+5). At 64-bit d=7 the unsigned
  // winner is roundup by a hair; the wrapper surcharge hands the
  // signed call site back to GM.
  const arch::ArchProfile &R4000 = arch::profileByName("MIPS R4000");
  const arch::FamilyChoice U = arch::selectFamily(
      arch::DivOp::Divide, 64, 7, R4000, /*BatchSize=*/1000);
  EXPECT_EQ(U.Chosen, arch::Family::RoundUp);
  const arch::FamilyChoice S =
      arch::selectFamily(arch::DivOp::Divide, 64, 7, R4000,
                         /*BatchSize=*/1000, /*SignedOperands=*/true);
  EXPECT_EQ(S.Chosen, arch::Family::GM);
  // The surcharge prices the wrapper, it does not disqualify it.
  EXPECT_TRUE(S.candidate(arch::Family::RoundUp).Eligible);
  EXPECT_LT(S.candidate(arch::Family::GM).EffectiveCycles,
            S.candidate(arch::Family::RoundUp).EffectiveCycles);

  // Not a blanket penalty: at 32-bit the narrow family's one-multiply
  // quotient absorbs the wrapper cost and keeps the win.
  const arch::FamilyChoice S32 =
      arch::selectFamily(arch::DivOp::Divide, 32, 7, R4000,
                         /*BatchSize=*/1000, /*SignedOperands=*/true);
  EXPECT_EQ(S32.Chosen, arch::Family::Narrow);
}

TEST(FamilySelect, SignedDivisorBitPatternUsesMagnitude) {
  // A negative divisor arrives as its N-bit two's-complement pattern;
  // the selector must price |d|, not the giant unsigned value.
  const arch::ArchProfile &R4000 = arch::profileByName("MIPS R4000");
  const uint64_t Neg7 = static_cast<uint32_t>(-7);
  const arch::FamilyChoice S =
      arch::selectFamily(arch::DivOp::Divide, 32, Neg7, R4000,
                         /*BatchSize=*/1000, /*SignedOperands=*/true);
  EXPECT_TRUE(S.chosen().Eligible);
  const arch::FamilyChoice Pos =
      arch::selectFamily(arch::DivOp::Divide, 32, 7, R4000,
                         /*BatchSize=*/1000, /*SignedOperands=*/true);
  EXPECT_EQ(S.Chosen, Pos.Chosen);
  EXPECT_DOUBLE_EQ(S.chosen().EffectiveCycles, Pos.chosen().EffectiveCycles);
}

TEST(FamilySelect, NamesAndParsing) {
  EXPECT_STREQ(arch::familyName(arch::Family::FastMod), "fastmod");
  EXPECT_STREQ(arch::divOpName(arch::DivOp::Divisibility), "divisible");
  arch::DivOp Op;
  EXPECT_TRUE(arch::parseDivOp("divisible", Op));
  EXPECT_EQ(Op, arch::DivOp::Divisibility);
  EXPECT_TRUE(arch::parseDivOp("divrem", Op));
  EXPECT_EQ(Op, arch::DivOp::DivRem);
  EXPECT_FALSE(arch::parseDivOp("frobnicate", Op));
}

} // namespace
