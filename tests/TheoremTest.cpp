//===- tests/TheoremTest.cpp - The paper's theorems, executed -------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mathematical statements themselves, tested as stated — not
/// through the code generators. For every (m, d, l) satisfying a
/// theorem's hypothesis the conclusion must hold over exhaustive
/// dividend sweeps; and just *outside* the hypothesis there must exist
/// counterexamples (sharpness), otherwise we'd be testing a weaker,
/// wrong theorem.
///
//===----------------------------------------------------------------------===//

#include "ops/Bits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xbdb5e6d9a3f15e2bull);
  return Generator;
}

//===----------------------------------------------------------------------===//
// Theorem 4.2: if 2^(N+l) <= m*d <= 2^(N+l) + 2^l, then
//   floor(n/d) = floor(m*n / 2^(N+l))  for all 0 <= n < 2^N.
// (We test the half-open version the code uses, m*d > 2^(N+l), plus the
// equality case the theorem also permits.)
//===----------------------------------------------------------------------===//

constexpr int N8 = 8;

TEST(Theorem42, AllValidTriplesExhaustiveAtN8) {
  // Enumerate every d, every l up to N, every m in the valid interval —
  // not just the one CHOOSE_MULTIPLIER picks — and check all n.
  long TriplesChecked = 0;
  for (uint64_t D = 1; D < 256; ++D) {
    for (int L = gmdiv::ceilLog2<uint8_t>(static_cast<uint8_t>(D));
         L <= N8; ++L) {
      const uint64_t Pow = uint64_t{1} << (N8 + L);
      const uint64_t MLow = (Pow + D - 1) / D;          // ceil(2^(N+l)/d)
      const uint64_t MHigh = (Pow + (uint64_t{1} << L)) / D;
      for (uint64_t M = MLow; M <= MHigh; ++M) {
        ASSERT_LE(Pow, M * D);
        ASSERT_LE(M * D, Pow + (uint64_t{1} << L));
        for (uint64_t N = 0; N < 256; ++N)
          ASSERT_EQ(N / D, (M * N) >> (N8 + L))
              << "d=" << D << " l=" << L << " m=" << M << " n=" << N;
        ++TriplesChecked;
      }
    }
  }
  // Every divisor must have admitted at least one multiplier per l.
  EXPECT_GT(TriplesChecked, 2000);
}

TEST(Theorem42, SharpnessBelowTheInterval) {
  // m = floor(2^(N+l)/d) with d not dividing 2^(N+l) violates the lower
  // bound; the theorem's conclusion must then FAIL for some n.
  for (uint64_t D : {3ull, 7ull, 10ull, 100ull, 641ull % 256}) {
    const int L = gmdiv::ceilLog2<uint8_t>(static_cast<uint8_t>(D));
    const uint64_t Pow = uint64_t{1} << (N8 + L);
    if (Pow % D == 0)
      continue;
    const uint64_t M = Pow / D;
    bool FoundCounterexample = false;
    for (uint64_t N = 0; N < 256 && !FoundCounterexample; ++N)
      FoundCounterexample = (N / D) != ((M * N) >> (N8 + L));
    EXPECT_TRUE(FoundCounterexample) << "d=" << D;
  }
}

TEST(Theorem42, SharpnessAboveTheInterval) {
  // The first m with m*d > 2^(N+l) + 2^l must fail for some n < 2^N.
  int Failures = 0;
  for (uint64_t D = 3; D < 256; D += 2) {
    const int L = gmdiv::ceilLog2<uint8_t>(static_cast<uint8_t>(D));
    const uint64_t Pow = uint64_t{1} << (N8 + L);
    const uint64_t M = (Pow + (uint64_t{1} << L)) / D + 1;
    bool FoundCounterexample = false;
    for (uint64_t N = 0; N < 256 && !FoundCounterexample; ++N)
      FoundCounterexample = (N / D) != ((M * N) >> (N8 + L));
    Failures += FoundCounterexample;
  }
  // The bound is tight for most divisors; some odd d have slack because
  // the next representable m*d overshoots by less than the worst-case
  // dividend needs. At N = 8, 79 of the 127 odd divisors exhibit a
  // counterexample — enough to show the interval cannot be widened.
  EXPECT_GT(Failures, 50);
}

TEST(Theorem42, RandomTriplesAtN16) {
  for (int Iteration = 0; Iteration < 3000; ++Iteration) {
    const uint64_t D = (rng()() % 0xffff) + 1;
    const int LMin = gmdiv::ceilLog2<uint16_t>(static_cast<uint16_t>(D));
    const int L = LMin + static_cast<int>(rng()() % (16 - LMin + 1));
    const uint64_t Pow = uint64_t{1} << (16 + L);
    const uint64_t MLow = (Pow + D - 1) / D;
    const uint64_t MHigh = (Pow + (uint64_t{1} << L)) / D;
    const uint64_t M = MLow + (MHigh > MLow ? rng()() % (MHigh - MLow + 1)
                                            : 0);
    for (int J = 0; J < 64; ++J) {
      const uint64_t N = rng()() & 0xffff;
      ASSERT_EQ(N / D, (M * N) >> (16 + L))
          << "d=" << D << " l=" << L << " m=" << M << " n=" << N;
    }
    for (uint64_t N : {uint64_t{0}, D - 1, D, 3 * D - 1, uint64_t{0xffff},
                       uint64_t{(0xffffull / D) * D - 1}}) {
      if (N > 0xffff)
        continue; // The theorem covers n < 2^N only.
      ASSERT_EQ(N / D, (M * N) >> (16 + L)) << "d=" << D << " m=" << M;
    }
  }
}

//===----------------------------------------------------------------------===//
// Theorem 5.1: if 0 < m*|d| - 2^(N+l-1) <= 2^l and q0 = floor(m*n /
// 2^(N+l-1)) for -2^(N-1) <= n < 2^(N-1), then TRUNC(n/d) is q0 / q0+1 /
// -q0 / -(1+q0) according to the signs of n and d.
//===----------------------------------------------------------------------===//

int64_t refTrunc(int64_t N, int64_t D) { return N / D; }

TEST(Theorem51, AllValidTriplesExhaustiveAtN8) {
  for (int64_t AbsD = 1; AbsD < 128; ++AbsD) {
    const int LMin =
        AbsD == 1 ? 1 : gmdiv::ceilLog2<uint8_t>(static_cast<uint8_t>(AbsD));
    for (int L = LMin; L <= N8 - 1; ++L) {
      const int64_t Pow = int64_t{1} << (N8 + L - 1);
      // All m with 0 < m*|d| - 2^(N+l-1) <= 2^l.
      const int64_t MLow = Pow / AbsD + 1;
      const int64_t MHigh = (Pow + (int64_t{1} << L)) / AbsD;
      for (int64_t M = MLow; M <= MHigh; ++M) {
        ASSERT_GT(M * AbsD - Pow, 0);
        ASSERT_LE(M * AbsD - Pow, int64_t{1} << L);
        for (int64_t N = -128; N < 128; ++N) {
          // q0 = floor(m*n / 2^(N+l-1)), exact for negative n too
          // (Pow is 2^(N+l-1)).
          const int64_t Product = M * N;
          const int64_t Q0Fixed =
              Product >= 0 ? Product / Pow
                           : -((-Product + Pow - 1) / Pow);
          // Theorem 5.1's four cases:
          //   n>=0, d>0: q0      n<0, d>0: 1+q0
          //   n>=0, d<0: -q0     n<0, d<0: -(1+q0)
          ASSERT_EQ(N >= 0 ? Q0Fixed : 1 + Q0Fixed, refTrunc(N, AbsD))
              << "d=" << AbsD << " l=" << L << " m=" << M << " n=" << N;
          ASSERT_EQ(N >= 0 ? -Q0Fixed : -(1 + Q0Fixed),
                    refTrunc(N, -AbsD))
              << "d=" << -AbsD << " l=" << L << " m=" << M << " n=" << N;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Lemma 8.1: with 2^(l-1) <= d < 2^l <= 2^N and 0 < 2^(N+l) - m*d <= d,
// for any 0 <= n < d*2^N the q1 defined by (8.3) satisfies
// 0 <= q1 <= 2^N - 1 and 0 <= n - q1*d < 2*d.
//===----------------------------------------------------------------------===//

TEST(Lemma81, ExhaustiveDivisorsAtN8) {
  constexpr int N = 8;
  for (uint64_t D = 1; D < 256; ++D) {
    const int L = 1 + gmdiv::floorLog2<uint8_t>(static_cast<uint8_t>(D));
    const uint64_t Pow = uint64_t{1} << (N + L);
    // Every valid m, not just the extreme one.
    const uint64_t MHigh = (Pow - 1) / D;              // k = Pow - m*d >= 1
    const uint64_t MLow = (Pow - D + D - 1) / D;       // k <= d
    for (uint64_t M = MLow; M <= MHigh; ++M) {
      ASSERT_GT(Pow, M * D);
      ASSERT_LE(Pow - M * D, D);
      const uint64_t Limit = D << N;
      for (uint64_t N0 = 0; N0 < Limit; N0 += (Limit / 997) + 1) {
        const uint64_t N2 = N0 >> L;
        const uint64_t N1 = (N0 >> (L - 1)) & 1;
        const uint64_t NLow = N0 & ((uint64_t{1} << (L - 1)) - 1);
        // (8.3): q1*2^N + q0 = n2*2^N + (n2+n1)(m-2^N)
        //        + n1*(d*2^(N-l) - 2^(N-1)) + n0*2^(N-l).
        const int64_t Value =
            static_cast<int64_t>(N2 << N) +
            static_cast<int64_t>((N2 + N1)) *
                (static_cast<int64_t>(M) - (int64_t{1} << N)) +
            static_cast<int64_t>(N1) *
                ((static_cast<int64_t>(D) << (N - L)) -
                 (int64_t{1} << (N - 1))) +
            static_cast<int64_t>(NLow << (N - L));
        ASSERT_GE(Value, 0) << "d=" << D << " m=" << M << " n=" << N0;
        const uint64_t Q1 = static_cast<uint64_t>(Value) >> N;
        ASSERT_LT(Q1, uint64_t{1} << N)
            << "d=" << D << " m=" << M << " n=" << N0;
        ASSERT_GE(N0, Q1 * D) << "d=" << D << " m=" << M << " n=" << N0;
        ASSERT_LT(N0 - Q1 * D, 2 * D)
            << "d=" << D << " m=" << M << " n=" << N0;
      }
    }
  }
}

} // namespace
