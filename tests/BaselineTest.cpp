//===- tests/BaselineTest.cpp - Alverson [1] baseline + §2 conventions ----===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"
#include "core/AlversonDivider.h"
#include "core/Divider.h"
#include "core/RemModSemantics.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x6121d95a3c2e40f7ull);
  return Generator;
}

//===----------------------------------------------------------------------===//
// Alverson baseline.
//===----------------------------------------------------------------------===//

TEST(AlversonBaseline, Exhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const AlversonDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (uint32_t N = 0; N < 256; ++N) {
      ASSERT_EQ(Divider.divide(static_cast<uint8_t>(N)), N / D)
          << "n=" << N << " d=" << D;
      ASSERT_EQ(Divider.remainder(static_cast<uint8_t>(N)), N % D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(AlversonBaseline, CodeGenExhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const ir::Program P = codegen::genUnsignedDivAlverson(8, D);
    for (uint32_t N = 0; N < 256; ++N)
      ASSERT_EQ(ir::run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(AlversonBaseline, Random64) {
  for (int I = 0; I < 500; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const AlversonDivider<uint64_t> Divider(D);
    const UnsignedDivider<uint64_t> Reference(D);
    for (int J = 0; J < 100; ++J) {
      const uint64_t N = rng()();
      ASSERT_EQ(Divider.divide(N), N / D) << "n=" << N << " d=" << D;
      // The paper's runtime form (Figure 4.1) and Alverson's reciprocal
      // coincide at run time; the codegen-level sequences differ.
      ASSERT_EQ(Divider.divide(N), Reference.divide(N));
    }
  }
}

TEST(AlversonBaseline, GmWinsOnSequenceLength) {
  // What CHOOSE_MULTIPLIER buys: census over all 16-bit divisors of
  // the generated operation counts (Figure 4.2 vs the Alverson form).
  long GmOps = 0, AlversonOps = 0;
  int GmShorter = 0, AlversonShorter = 0;
  for (uint32_t D = 2; D <= 0xffff; ++D) {
    const int Gm = codegen::genUnsignedDiv(16, D).operationCount();
    const int Al = codegen::genUnsignedDivAlverson(16, D).operationCount();
    GmOps += Gm;
    AlversonOps += Al;
    GmShorter += Gm < Al;
    AlversonShorter += Al < Gm;
    // Never worse.
    ASSERT_LE(Gm, Al) << "d=" << D;
  }
  EXPECT_EQ(AlversonShorter, 0);
  EXPECT_GT(GmShorter, 40000); // The majority of divisors get shorter code.
  EXPECT_LT(GmOps, AlversonOps);
}

TEST(AlversonBaseline, DivideBy10ShowsTheDifference) {
  // d = 10 at 32 bits: Figure 4.2 fits the multiplier in a word (one
  // MULUH + one SRL); Alverson pays the three extra operations.
  const ir::Program Gm = codegen::genUnsignedDiv(32, 10);
  const ir::Program Al = codegen::genUnsignedDivAlverson(32, 10);
  EXPECT_EQ(Gm.operationCount(), 3);  // const + muluh + srl.
  EXPECT_EQ(Al.operationCount(), 6);  // const + muluh + sub + srl + add + srl.
  for (int I = 0; I < 10000; ++I) {
    const uint64_t N = rng()() & 0xffffffffull;
    ASSERT_EQ(ir::run(Gm, {N})[0], ir::run(Al, {N})[0]);
  }
}

//===----------------------------------------------------------------------===//
// §2 remainder conventions.
//===----------------------------------------------------------------------===//

int64_t refFloorDiv(int64_t N, int64_t D) {
  const int64_t Quotient = N / D;
  if (N % D != 0 && ((N % D < 0) != (D < 0)))
    return Quotient - 1;
  return Quotient;
}

TEST(RemModSemantics, AllConventionsExhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const ConventionDivider<int8_t> Trunc(
        static_cast<int8_t>(D), RemainderConvention::Truncated);
    const ConventionDivider<int8_t> Floor(
        static_cast<int8_t>(D), RemainderConvention::Floored);
    const ConventionDivider<int8_t> Euclid(
        static_cast<int8_t>(D), RemainderConvention::Euclidean);
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      // Truncated: C semantics.
      EXPECT_EQ(Trunc.quotient(static_cast<int8_t>(N)),
                static_cast<int8_t>(N / D));
      EXPECT_EQ(Trunc.remainder(static_cast<int8_t>(N)),
                static_cast<int8_t>(N % D));
      // Floored: Fortran MODULO / Ada mod.
      EXPECT_EQ(Floor.quotient(static_cast<int8_t>(N)),
                static_cast<int8_t>(refFloorDiv(N, D)));
      const int FloorRem = N - D * static_cast<int>(refFloorDiv(N, D));
      EXPECT_EQ(Floor.remainder(static_cast<int8_t>(N)),
                static_cast<int8_t>(FloorRem));
      // Euclidean [Boute]: remainder in [0, |d|).
      auto [Quotient, Remainder] = Euclid.quotRem(static_cast<int8_t>(N));
      EXPECT_GE(Remainder, 0) << "n=" << N << " d=" << D;
      EXPECT_LT(Remainder, D < 0 ? -D : D) << "n=" << N << " d=" << D;
      EXPECT_EQ(static_cast<int8_t>(Quotient * D + Remainder),
                static_cast<int8_t>(N))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(RemModSemantics, DefinitionalIdentities) {
  // The §2 definitions: rem = n - d*TRUNC(n/d), mod = n - d*floor(n/d);
  // the conventions agree exactly when signs agree or division is exact.
  for (int I = 0; I < 20000; ++I) {
    int64_t D = static_cast<int64_t>(rng()()) >> (rng()() % 63);
    if (D == 0)
      D = 7;
    const int64_t N = static_cast<int64_t>(rng()()) >> (rng()() % 63);
    if (N == std::numeric_limits<int64_t>::min() && D == -1)
      continue;
    const ConventionDivider<int64_t> Trunc(D,
                                           RemainderConvention::Truncated);
    const ConventionDivider<int64_t> Floor(D,
                                           RemainderConvention::Floored);
    ASSERT_EQ(Trunc.remainder(N), N - D * (N / D));
    ASSERT_EQ(Floor.remainder(N), N - D * refFloorDiv(N, D));
    if ((N < 0) == (D < 0) || N % D == 0) {
      ASSERT_EQ(Trunc.quotient(N), Floor.quotient(N));
      ASSERT_EQ(Trunc.remainder(N), Floor.remainder(N));
    }
  }
}

TEST(RemModSemantics, ReconstructionInvariantAllConventions) {
  for (RemainderConvention Convention :
       {RemainderConvention::Truncated, RemainderConvention::Floored,
        RemainderConvention::Euclidean}) {
    for (int I = 0; I < 5000; ++I) {
      int32_t D = static_cast<int32_t>(rng()()) >> (rng()() % 31);
      if (D == 0)
        D = -11;
      const int32_t N = static_cast<int32_t>(rng()());
      if (N == std::numeric_limits<int32_t>::min() && D == -1)
        continue;
      const ConventionDivider<int32_t> Divider(D, Convention);
      auto [Quotient, Remainder] = Divider.quotRem(N);
      // n = q*d + r in wrapping arithmetic, and |r| < |d|.
      ASSERT_EQ(static_cast<int32_t>(
                    static_cast<uint32_t>(Quotient) *
                        static_cast<uint32_t>(D) +
                    static_cast<uint32_t>(Remainder)),
                N);
      const int64_t AbsD = D < 0 ? -static_cast<int64_t>(D) : D;
      ASSERT_LT(static_cast<int64_t>(Remainder < 0 ? -Remainder
                                                   : Remainder),
                AbsD);
    }
  }
}

} // namespace
