//===- tests/MulByConstTest.cpp - Shift/add multiply synthesis tests ------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "codegen/MulByConst.h"

#include "ir/Interp.h"
#include "ops/Bits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xb8e1afed6a267e96ull);
  return Generator;
}

uint64_t maskFor(int Bits) {
  return Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
}

/// Emits the synthesized sequence and checks it equals C*x mod 2^N over
/// sweeps; also confirms no multiply instruction appears.
void checkSynthesis(uint64_t C, int Bits) {
  Builder B(Bits, 1);
  const int X = B.arg(0);
  const int Product = emitMulByConst(B, X, C);
  B.markResult(Product, "p");
  const Program P = B.take();
  for (const Instr &I : P.instrs()) {
    ASSERT_NE(I.Op, Opcode::MulL) << "c=" << C;
    ASSERT_NE(I.Op, Opcode::MulUH) << "c=" << C;
    ASSERT_NE(I.Op, Opcode::MulSH) << "c=" << C;
  }
  const uint64_t Mask = maskFor(Bits);
  for (int J = 0; J < 200; ++J) {
    const uint64_t X0 = rng()() & Mask;
    ASSERT_EQ(run(P, {X0})[0], (C * X0) & Mask)
        << "c=" << C << " x=" << X0 << " bits=" << Bits;
  }
  for (uint64_t X0 : {uint64_t{0}, uint64_t{1}, Mask, Mask - 1, Mask >> 1})
    ASSERT_EQ(run(P, {X0})[0], (C * X0) & Mask) << "c=" << C;
}

TEST(MulByConst, Exhaustive8BitConstants) {
  for (uint64_t C = 0; C < 256; ++C)
    checkSynthesis(C, 8);
}

TEST(MulByConst, Exhaustive16BitConstants) {
  for (uint64_t C = 0; C <= 0xffff; ++C) {
    Builder B(16, 1);
    const int X = B.arg(0);
    B.markResult(emitMulByConst(B, X, C), "p");
    const Program P = B.take();
    // Two probes per constant keep this fast; correctness depth comes
    // from the 8-bit exhaustive and the random 32/64 tests.
    for (uint64_t X0 : {uint64_t{0xabcd}, uint64_t{0x00ff}})
      ASSERT_EQ(run(P, {X0})[0], (C * X0) & 0xffff) << "c=" << C;
  }
}

TEST(MulByConst, Random32And64) {
  for (int Bits : {32, 64}) {
    for (int I = 0; I < 300; ++I) {
      const uint64_t C = rng()() & maskFor(Bits);
      checkSynthesis(C >> (rng()() % Bits), Bits);
    }
  }
}

TEST(MulByConst, MagicMultipliersDecomposeCheaply) {
  // §11: "multipliers for small constant divisors have regular binary
  // patterns" — the paper's Alpha column expands the multiply by
  // (2^34+1)/5 = 0xCCCCCCCD into roughly nine shifts/adds/subtracts
  // (4*[(2^16+1)*(2^8+1)*(4*[4*(4*0-x)+x]-x)]+x). Our planner must find
  // a decomposition in the same ballpark — short enough to beat the
  // 23-cycle Alpha multiply — and it must compute the right product.
  const uint64_t MagicFor10 = ((uint64_t{1} << 34) + 1) / 5;
  const int Cost = mulByConstCost(MagicFor10, 64);
  EXPECT_LE(Cost, 12) << "must beat the Alpha's 23-cycle multiply";
  checkSynthesis(MagicFor10, 64);
  // Regularity also shows at 32 bits for the truncated 0xCCCCCCCD.
  EXPECT_LE(mulByConstCost(0xcccccccdull, 32), 12);
}

TEST(MulByConst, TrivialPlans) {
  EXPECT_EQ(mulByConstCost(0, 32), 0);
  EXPECT_EQ(mulByConstCost(1, 32), 0);
  EXPECT_EQ(mulByConstCost(2, 32), 1);  // one shift
  EXPECT_EQ(mulByConstCost(3, 32), 2);  // shift + add
  EXPECT_EQ(mulByConstCost(4, 32), 1);
  EXPECT_EQ(mulByConstCost(5, 32), 2);
  EXPECT_EQ(mulByConstCost(10, 32), 3); // (x<<2 + x) << 1
  EXPECT_LE(mulByConstCost(255, 32), 2); // (x<<8) - x
  EXPECT_LE(mulByConstCost(257, 32), 2); // (x<<8) + x
}

TEST(MulByConst, AllOnesIsNegation) {
  // c = 2^N - 1: c+1 wraps to zero, so the plan is 0 - x (one op).
  EXPECT_EQ(mulByConstCost(0xffffffffull, 32), 1);
  checkSynthesis(0xffffffffull, 32);
  EXPECT_EQ(mulByConstCost(~uint64_t{0}, 64), 1);
}

TEST(MulByConst, CostNeverExceedsBinaryMethod) {
  // The binary method costs at most popcount + number-of-shift-groups;
  // the planner must never do worse than ~2*popcount.
  for (int I = 0; I < 2000; ++I) {
    const uint64_t C = rng()();
    const int Cost = mulByConstCost(C, 64);
    EXPECT_LE(Cost, 2 * popCount64(C) + 1) << "c=" << C;
  }
}

TEST(MulByConst, ShouldExpandMultiplyThresholds) {
  // x*10 costs 3 simple ops: expand on a 23-cycle-multiply Alpha, keep
  // the multiply on a 3-cycle-multiply MC88110.
  EXPECT_TRUE(shouldExpandMultiply(10, 64, 23));
  EXPECT_FALSE(shouldExpandMultiply(10, 64, 3));
}

} // namespace
