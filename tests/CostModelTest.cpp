//===- tests/CostModelTest.cpp - Sequence pricing tests -------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "arch/CostModel.h"

#include "codegen/DivCodeGen.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::arch;
using namespace gmdiv::codegen;

namespace {

TEST(CostModel, CountsPaperFigure41Cost) {
  // Figure 4.1's stated cost: 1 multiply, 2 adds/subtracts, 2 shifts
  // (the d = 7 long form at N = 32).
  const ir::Program P = genUnsignedDiv(32, 7);
  const SequenceCost Cost =
      estimateCost(P, profileByName("Intel Pentium"));
  EXPECT_EQ(Cost.Multiplies, 1);
  EXPECT_EQ(Cost.SimpleOps, 4);
  EXPECT_EQ(Cost.Cycles, 10 + 4); // Pentium: 10-cycle multiply.
}

TEST(CostModel, CountsFigure51Cost) {
  // Figure 5.1 / 5.2 general case: "1 multiply, 3 adds, 2 shifts, 1 bit
  // op" is the run-time bound; constant divisors shave some. d = 7
  // signed at N = 32: MULSH + SRA + XSIGN + SUB + NEG-free.
  const ir::Program P = genSignedDiv(32, 7);
  const SequenceCost Cost =
      estimateCost(P, profileByName("Intel Pentium"));
  EXPECT_EQ(Cost.Multiplies, 1);
  EXPECT_LE(Cost.SimpleOps, 4);
}

TEST(CostModel, ArgAndConstAreFree) {
  ir::Builder B(32, 1);
  const int N = B.arg(0);
  const int C = B.constant(42);
  B.markResult(B.add(N, C));
  const ir::Program P = B.take();
  const SequenceCost Cost = estimateCost(P, profileByName("SPARC Viking"));
  EXPECT_EQ(Cost.Cycles, 1);
  EXPECT_EQ(Cost.SimpleOps, 1);
}

TEST(CostModel, SpeedupBeatsDivideOnEveryTableMachine) {
  // The headline claim: for d = 10 at each machine's word size, the
  // generated sequence beats the divide instruction on every CPU in
  // Table 1.1 with a hardware or software divide.
  for (const ArchProfile &Profile : table11Profiles()) {
    const ir::Program P = genUnsignedDiv(Profile.WordBits == 64 ? 64 : 32,
                                         10);
    const double Speedup = estimateSpeedup(P, Profile);
    EXPECT_GT(Speedup, 1.0) << Profile.Name;
  }
}

TEST(CostModel, SpeedupOrderingMatchesTable112Shape) {
  // Table 11.2's extremes: the Alpha (no divide instruction, 200-cycle
  // software divide) gains the most; machines with fast divides (POWER,
  // MC68040) gain the least. Our per-division estimates must reproduce
  // that ordering.
  const ir::Program P32 = genUnsignedDivRem(32, 10);
  const double SpeedupPower =
      estimateSpeedup(P32, profileByName("POWER/RIOS I"));
  const double SpeedupViking =
      estimateSpeedup(P32, profileByName("SPARC Viking"));
  const ir::Program P64 = genUnsignedDivRemWide(32, 64, 10);
  const double SpeedupAlpha =
      estimateSpeedup(P64, profileByName("DEC Alpha 21064"));
  EXPECT_GT(SpeedupAlpha, SpeedupViking);
  EXPECT_GT(SpeedupAlpha, SpeedupPower);
}

TEST(CostModel, ExpandedMultiplyCheaperOnAlpha) {
  // The Alpha trade-off: expanding the multiply must lower the cost
  // estimate when the multiplier is 23 cycles.
  const ArchProfile &Alpha = profileByName("DEC Alpha 21064");
  GenOptions Expand;
  Expand.ExpandMulBelowCycles = Alpha.mulCycles();
  const ir::Program Kept = genUnsignedDivWide(32, 64, 10);
  const ir::Program Expanded = genUnsignedDivWide(32, 64, 10, Expand);
  EXPECT_LT(estimateCost(Expanded, Alpha).Cycles,
            estimateCost(Kept, Alpha).Cycles);
  // And the reverse on a 3-cycle-multiply MC88110.
  const ArchProfile &MC88110 = profileByName("Motorola MC88110");
  GenOptions Fast;
  Fast.ExpandMulBelowCycles = MC88110.mulCycles();
  const ir::Program KeptFast = genUnsignedDivWide(32, 64, 10, Fast);
  EXPECT_LE(estimateCost(KeptFast, MC88110).Cycles,
            estimateCost(Expanded, MC88110).Cycles);
}

} // namespace
