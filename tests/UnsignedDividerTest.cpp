//===- tests/UnsignedDividerTest.cpp - Figure 4.1 tests -------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xa4093822299f31d0ull);
  return Generator;
}

TEST(UnsignedDivider, Exhaustive8) {
  // Every divisor against every dividend: 255 * 256 = 65280 quotients.
  for (unsigned D = 1; D < 256; ++D) {
    const UnsignedDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (unsigned N = 0; N < 256; ++N) {
      EXPECT_EQ(Divider.divide(static_cast<uint8_t>(N)), N / D)
          << "n=" << N << " d=" << D;
      EXPECT_EQ(Divider.remainder(static_cast<uint8_t>(N)), N % D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(UnsignedDivider, AllDivisors16WithStructuredDividends) {
  // All 65535 divisors; dividends probe quotient boundaries: around 0,
  // around multiples of d, and the extremes.
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const UnsignedDivider<uint16_t> Divider(static_cast<uint16_t>(D));
    const uint32_t Probe[] = {0,         1,          D - 1, D,
                              D + 1,     2 * D - 1,  2 * D, 0x7fffu,
                              0x8000u,   0xffffu - D, 0xfffeu, 0xffffu};
    for (uint32_t N : Probe) {
      if (N > 0xffffu)
        continue;
      EXPECT_EQ(Divider.divide(static_cast<uint16_t>(N)), N / D)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(UnsignedDivider, AllDividends16ForInterestingDivisors) {
  // The paper's divisor gallery: small odds, evens needing pre-shift
  // thinking, powers of two, the rare divisor 641, and near-2^16 values.
  for (uint32_t D : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 10u, 11u, 12u, 14u, 25u,
                     100u, 125u, 128u, 641u, 1000u, 32767u, 32768u, 32769u,
                     65534u, 65535u}) {
    const UnsignedDivider<uint16_t> Divider(static_cast<uint16_t>(D));
    for (uint32_t N = 0; N <= 0xffff; ++N)
      ASSERT_EQ(Divider.divide(static_cast<uint16_t>(N)), N / D)
          << "n=" << N << " d=" << D;
  }
}

template <typename UWord>
void checkRandomDivisors(int DivisorCount, int DividendCount) {
  for (int I = 0; I < DivisorCount; ++I) {
    UWord D = static_cast<UWord>(rng()() >> (rng()() % (sizeof(UWord) * 8)));
    if (D == 0)
      D = 1;
    const UnsignedDivider<UWord> Divider(D);
    const UWord Max = static_cast<UWord>(~UWord{0});
    // Boundary dividends first.
    const UWord Boundary[] = {
        UWord{0}, UWord{1}, D, static_cast<UWord>(D - 1),
        static_cast<UWord>(D + 1), static_cast<UWord>(Max - 1), Max,
        static_cast<UWord>(Max / 2), static_cast<UWord>(Max / 2 + 1),
        static_cast<UWord>(Max - D)};
    for (UWord N : Boundary)
      ASSERT_EQ(Divider.divide(N), static_cast<UWord>(N / D))
          << "n=" << static_cast<uint64_t>(N)
          << " d=" << static_cast<uint64_t>(D);
    for (int J = 0; J < DividendCount; ++J) {
      const UWord N =
          static_cast<UWord>(rng()() >> (rng()() % (sizeof(UWord) * 8)));
      ASSERT_EQ(Divider.divide(N), static_cast<UWord>(N / D))
          << "n=" << static_cast<uint64_t>(N)
          << " d=" << static_cast<uint64_t>(D);
    }
  }
}

TEST(UnsignedDivider, Random32) { checkRandomDivisors<uint32_t>(2000, 200); }
TEST(UnsignedDivider, Random64) { checkRandomDivisors<uint64_t>(2000, 200); }

TEST(UnsignedDivider, PowersOfTwo64) {
  for (int Bit = 0; Bit < 64; ++Bit) {
    const uint64_t D = uint64_t{1} << Bit;
    const UnsignedDivider<uint64_t> Divider(D);
    for (int J = 0; J < 1000; ++J) {
      const uint64_t N = rng()();
      ASSERT_EQ(Divider.divide(N), N / D) << "bit=" << Bit;
    }
    ASSERT_EQ(Divider.divide(~uint64_t{0}), ~uint64_t{0} >> Bit);
  }
}

TEST(UnsignedDivider, DivRemConsistent) {
  for (int I = 0; I < 2000; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const UnsignedDivider<uint64_t> Divider(D);
    const uint64_t N = rng()();
    auto [Quotient, Remainder] = Divider.divRem(N);
    EXPECT_EQ(Quotient, N / D);
    EXPECT_EQ(Remainder, N % D);
    EXPECT_EQ(Quotient * D + Remainder, N);
    EXPECT_LT(Remainder, D);
  }
}

TEST(UnsignedDivider, DivideCeil) {
  for (unsigned D = 1; D < 256; ++D) {
    const UnsignedDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (unsigned N = 0; N < 256; ++N) {
      const unsigned Expected = (N + D - 1) / D;
      EXPECT_EQ(Divider.divideCeil(static_cast<uint8_t>(N)), Expected)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(UnsignedDivider, DescribeShowsTheState) {
  const UnsignedDivider<uint32_t> By10(10);
  const std::string Text = By10.describe();
  EXPECT_NE(Text.find("n/10 at N=32"), std::string::npos) << Text;
  // The runtime form keeps the unreduced multiplier: m' = m - 2^N with
  // m = floor(2^36/10) + 1, i.e. 0x9999999a (Figure 4.2's *reduced*
  // 0xcccccccd appears only in constant-divisor codegen).
  EXPECT_NE(Text.find("0x9999999a"), std::string::npos) << Text;
  const UnsignedDivider<uint8_t> By3(3);
  EXPECT_NE(By3.describe().find("n/3 at N=8"), std::string::npos);
}

TEST(UnsignedDivider, PaperRadixConversionDigits) {
  // Figure 11.1's workload: peel decimal digits off a full 32-bit value.
  const UnsignedDivider<uint32_t> By10(10);
  uint32_t Value = 4294967295u;
  std::vector<int> Digits;
  while (Value != 0) {
    auto [Quotient, Remainder] = By10.divRem(Value);
    Digits.push_back(static_cast<int>(Remainder));
    Value = Quotient;
  }
  const std::vector<int> Expected = {5, 9, 2, 7, 6, 9, 4, 9, 2, 4};
  EXPECT_EQ(Digits, Expected); // 4294967295 read least digit first.
}

TEST(UnsignedDivider, PaperCautionNaiveFormOverflows) {
  // §4 CAUTION: "Conceptually q is SRL(n + t1, l)... Do not compute q
  // this way, since n + t1 may overflow N bits." Demonstrate the naive
  // form actually failing where the paper's split form is right.
  const uint32_t D = 7;
  const uint64_t M = ((uint64_t{1} << 35) + 3) / 7; // m for d = 7.
  const uint32_t MPrime = static_cast<uint32_t>(M); // m - 2^32.
  int NaiveFailures = 0;
  for (uint64_t N = 0xfffffff0ull; N <= 0xffffffffull; ++N) {
    const uint32_t N32 = static_cast<uint32_t>(N);
    const uint32_t T1 = static_cast<uint32_t>(
        (static_cast<uint64_t>(MPrime) * N32) >> 32);
    // Naive: SRL(n + t1, 3) with the add wrapping at 32 bits.
    const uint32_t Naive = static_cast<uint32_t>(N32 + T1) >> 3;
    // Paper: SRL(t1 + SRL(n - t1, 1), 2).
    const uint32_t Split = (T1 + ((N32 - T1) >> 1)) >> 2;
    ASSERT_EQ(Split, N32 / D) << N32;
    NaiveFailures += Naive != N32 / D;
  }
  EXPECT_GT(NaiveFailures, 0)
      << "expected the documented overflow failure";
}

TEST(UnsignedDivider, RareDivisors) {
  // 641 divides 2^32+1; 274177 divides 2^64+1 (zero final shift cases).
  const UnsignedDivider<uint32_t> By641(641);
  for (int I = 0; I < 100000; ++I) {
    const uint32_t N = static_cast<uint32_t>(rng()());
    ASSERT_EQ(By641.divide(N), N / 641);
  }
  const UnsignedDivider<uint64_t> By274177(274177);
  for (int I = 0; I < 100000; ++I) {
    const uint64_t N = rng()();
    ASSERT_EQ(By274177.divide(N), N / 274177);
  }
}

} // namespace
