//===- tests/VerifyExhaustiveTest.cpp - Parameterized-N full sweeps -------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heavyweight end of the differential harness: every property at
/// N in [9, 12] over the complete (n, d) state space — about 17 million
/// input pairs and 800 million comparisons at N = 12. Widths 4 through
/// 8 run in VerifyHarnessTest.cpp so the fast suite still exercises the
/// machinery; these carry the `exhaustive` ctest label and a longer
/// timeout.
///
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include <gtest/gtest.h>

using namespace gmdiv::verify;

namespace {

void expectWidthClean(int WordBits) {
  const VerifyReport Report = verifyWidth(WordBits);
  EXPECT_GT(Report.checks(), 0u);
  EXPECT_TRUE(Report.clean()) << reportJson(Report);
}

TEST(VerifyExhaustive, Width9) { expectWidthClean(9); }
TEST(VerifyExhaustive, Width10) { expectWidthClean(10); }
TEST(VerifyExhaustive, Width11) { expectWidthClean(11); }
TEST(VerifyExhaustive, Width12) { expectWidthClean(12); }

} // namespace
