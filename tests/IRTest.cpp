//===- tests/IRTest.cpp - IR structure tests ------------------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

TEST(IR, OpcodePredicates) {
  EXPECT_TRUE(opcodeIsLeaf(Opcode::Arg));
  EXPECT_TRUE(opcodeIsLeaf(Opcode::Const));
  EXPECT_FALSE(opcodeIsLeaf(Opcode::Add));

  EXPECT_TRUE(opcodeIsUnary(Opcode::Neg));
  EXPECT_TRUE(opcodeIsUnary(Opcode::Not));
  EXPECT_TRUE(opcodeIsUnary(Opcode::Xsign));
  EXPECT_TRUE(opcodeIsUnary(Opcode::Sll));
  EXPECT_TRUE(opcodeIsUnary(Opcode::Srl));
  EXPECT_TRUE(opcodeIsUnary(Opcode::Sra));
  EXPECT_TRUE(opcodeIsUnary(Opcode::Ror));
  EXPECT_FALSE(opcodeIsUnary(Opcode::Add));
  EXPECT_FALSE(opcodeIsUnary(Opcode::MulUH));

  EXPECT_TRUE(opcodeHasImmOperand(Opcode::Sll));
  EXPECT_TRUE(opcodeHasImmOperand(Opcode::Srl));
  EXPECT_TRUE(opcodeHasImmOperand(Opcode::Sra));
  EXPECT_TRUE(opcodeHasImmOperand(Opcode::Ror));
  EXPECT_FALSE(opcodeHasImmOperand(Opcode::Add));
  EXPECT_FALSE(opcodeHasImmOperand(Opcode::Const));
}

TEST(IR, OpcodeNames) {
  EXPECT_STREQ(opcodeName(Opcode::MulUH), "muluh");
  EXPECT_STREQ(opcodeName(Opcode::MulSH), "mulsh");
  EXPECT_STREQ(opcodeName(Opcode::MulL), "mull");
  EXPECT_STREQ(opcodeName(Opcode::Xsign), "xsign");
  EXPECT_STREQ(opcodeName(Opcode::Eor), "eor");
  EXPECT_STREQ(opcodeName(Opcode::SltU), "sltu");
}

TEST(IR, ProgramAppendAndResults) {
  Program P(32, 1);
  Instr Arg;
  Arg.Op = Opcode::Arg;
  Arg.Imm = 0;
  const int N = P.append(Arg);
  Instr C;
  C.Op = Opcode::Const;
  C.Imm = 10;
  const int Ten = P.append(C);
  Instr Mul;
  Mul.Op = Opcode::MulUH;
  Mul.Lhs = N;
  Mul.Rhs = Ten;
  const int Product = P.append(Mul);
  P.markResult(Product, "q");

  EXPECT_EQ(P.size(), 3);
  EXPECT_EQ(P.numArgs(), 1);
  EXPECT_EQ(P.wordBits(), 32);
  EXPECT_EQ(P.results().size(), 1u);
  EXPECT_EQ(P.results()[0], Product);
  EXPECT_EQ(P.resultNames()[0], "q");
  // Arg does not count as a machine operation; Const and MulUH do.
  EXPECT_EQ(P.operationCount(), 2);
  P.verify();
}

} // namespace
