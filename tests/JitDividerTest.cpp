//===- tests/JitDividerTest.cpp - JIT front-end tests ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JitDivider against native arithmetic across widths, signs, and the
/// divisor gallery. Every test runs on both backends: with the x86-64
/// emitter when the host has it, and through the interpreter fallback
/// otherwise (or under GMDIV_NO_JIT=1 — the CI leg that proves the
/// fallback is bit-for-bit identical).
///
//===----------------------------------------------------------------------===//

#include "jit/JitDivider.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

using namespace gmdiv;
using namespace gmdiv::jit;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x9e3779b97f4a7c15ull);
  return Generator;
}

template <typename T> void checkDivisor(T D) {
  const JitDivider<T> Div(D);
  EXPECT_EQ(Div.divisor(), D);
  EXPECT_EQ(Div.usesJit(), enabled()) << Div.describe();

  const auto CheckOne = [&](T N) {
    // Signed overflow (INT_MIN / -1) is UB in the C++ reference; the
    // generated sequences wrap, but skip the comparison.
    if (std::is_signed<T>::value && D == static_cast<T>(-1) &&
        N == std::numeric_limits<T>::min())
      return;
    const T Q = static_cast<T>(N / D);
    const T R = static_cast<T>(N % D);
    EXPECT_EQ(Div.divide(N), Q) << "n=" << +N << " d=" << +D;
    EXPECT_EQ(Div.remainder(N), R) << "n=" << +N << " d=" << +D;
    const auto [BothQ, BothR] = Div.divRem(N);
    EXPECT_EQ(BothQ, Q);
    EXPECT_EQ(BothR, R);
  };

  CheckOne(0);
  CheckOne(1);
  CheckOne(std::numeric_limits<T>::max());
  CheckOne(std::numeric_limits<T>::min());
  CheckOne(D);
  CheckOne(static_cast<T>(D - 1));
  for (int Round = 0; Round < 2000; ++Round)
    CheckOne(static_cast<T>(rng()()));
}

TEST(JitDivider, Unsigned8) {
  for (uint8_t D : {1, 2, 3, 7, 10, 128, 255})
    checkDivisor<uint8_t>(D);
}

TEST(JitDivider, Unsigned16) {
  for (uint16_t D : {1, 3, 7, 641, 32768, 65535})
    checkDivisor<uint16_t>(D);
}

TEST(JitDivider, Unsigned32) {
  for (uint32_t D : {1u, 3u, 7u, 10u, 641u, 6700417u, 0x80000000u,
                     0xffffffffu})
    checkDivisor<uint32_t>(D);
}

TEST(JitDivider, Unsigned64) {
  for (uint64_t D :
       {1ull, 3ull, 7ull, 641ull, 1000000007ull, 0x8000000000000000ull,
        0xffffffffffffffffull})
    checkDivisor<uint64_t>(D);
}

TEST(JitDivider, Signed32) {
  for (int32_t D : {1, -1, 3, -3, 7, -13, 641, -1000000007,
                    std::numeric_limits<int32_t>::min()})
    checkDivisor<int32_t>(D);
}

TEST(JitDivider, Signed64) {
  for (int64_t D :
       {int64_t{1}, int64_t{-1}, int64_t{3}, int64_t{-7},
        int64_t{1000000007}, std::numeric_limits<int64_t>::min()})
    checkDivisor<int64_t>(D);
}

TEST(JitDivider, PowersOfTwo) {
  for (int Shift = 0; Shift < 32; Shift += 5)
    checkDivisor<uint32_t>(uint32_t{1} << Shift);
  for (int Shift = 1; Shift < 31; Shift += 7) {
    checkDivisor<int32_t>(int32_t{1} << Shift);
    checkDivisor<int32_t>(-(int32_t{1} << Shift));
  }
}

TEST(JitDivider, BackendIsConsistent) {
  const JitDivider<uint32_t> Div(97);
  EXPECT_STREQ(Div.backend(), Div.usesJit() ? "jit" : "interp");
  EXPECT_NE(Div.describe().find(Div.backend()), std::string::npos);
  if (Div.usesJit()) {
    ASSERT_NE(Div.compiledDiv(), nullptr);
    EXPECT_GT(Div.compiledDiv()->codeSize(), 0u);
    EXPECT_FALSE(Div.compiledDiv()->lines().empty());
  } else {
    EXPECT_EQ(Div.compiledDiv(), nullptr);
  }
}

TEST(JitDivider, MatchesInterpreterExactly) {
  // The differential core: the compiled sequence and the interpreter
  // run the *same* prepared program, so they must agree bit-for-bit —
  // including on the wrapping INT_MIN / -1 case C++ leaves undefined.
  if (!enabled())
    GTEST_SKIP() << "jit unavailable on this host";
  for (const int64_t D : {int64_t{7}, int64_t{-13}, int64_t{-1}}) {
    ir::Program Prepared(32, 1);
    const auto Seq = compileCached(
        CodeCache::global(),
        {SeqKind::SDivRem, 32, static_cast<uint64_t>(D) & 0xffffffffull},
        &Prepared);
    ASSERT_NE(Seq, nullptr);
    std::vector<uint64_t> Args(1), Scratch, Want, Got;
    for (int Round = 0; Round < 5000; ++Round) {
      Args[0] = rng()() & 0xffffffffull;
      ir::runScratch(Prepared, Args, Scratch, Want);
      Seq->callAll(Args[0], 0, Got);
      ASSERT_EQ(Want, Got) << "n=" << Args[0] << " d=" << D;
    }
    Args[0] = 0x80000000ull; // INT_MIN, the wrap case.
    ir::runScratch(Prepared, Args, Scratch, Want);
    Seq->callAll(Args[0], 0, Got);
    ASSERT_EQ(Want, Got);
  }
}

} // namespace
