//===- tests/BitsTest.cpp - Bit scanning and logarithm tests --------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ops/Bits.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>

using namespace gmdiv;

namespace {

TEST(Bits, CountLeadingZeros64MatchesStd) {
  EXPECT_EQ(countLeadingZeros64(0), 64);
  for (int Bit = 0; Bit < 64; ++Bit) {
    const uint64_t Value = uint64_t{1} << Bit;
    EXPECT_EQ(countLeadingZeros64(Value), std::countl_zero(Value));
    EXPECT_EQ(countLeadingZeros64(Value | 1), std::countl_zero(Value | 1));
  }
  std::mt19937_64 Rng(1);
  for (int Iteration = 0; Iteration < 10000; ++Iteration) {
    const uint64_t Value = Rng();
    EXPECT_EQ(countLeadingZeros64(Value), std::countl_zero(Value));
  }
}

TEST(Bits, CountTrailingZeros64MatchesStd) {
  EXPECT_EQ(countTrailingZeros64(0), 64);
  std::mt19937_64 Rng(2);
  for (int Iteration = 0; Iteration < 10000; ++Iteration) {
    const uint64_t Value = Rng();
    EXPECT_EQ(countTrailingZeros64(Value), std::countr_zero(Value));
  }
}

TEST(Bits, PopCount64MatchesStd) {
  std::mt19937_64 Rng(3);
  EXPECT_EQ(popCount64(0), 0);
  EXPECT_EQ(popCount64(~uint64_t{0}), 64);
  for (int Iteration = 0; Iteration < 10000; ++Iteration) {
    const uint64_t Value = Rng();
    EXPECT_EQ(popCount64(Value), std::popcount(Value));
  }
}

TEST(Bits, NarrowWidthLeadingZeros) {
  EXPECT_EQ(countLeadingZeros<uint8_t>(0), 8);
  EXPECT_EQ(countLeadingZeros<uint8_t>(1), 7);
  EXPECT_EQ(countLeadingZeros<uint8_t>(0x80), 0);
  EXPECT_EQ(countLeadingZeros<uint16_t>(0x8000), 0);
  EXPECT_EQ(countLeadingZeros<uint16_t>(1), 15);
  for (unsigned Value = 1; Value < 256; ++Value)
    EXPECT_EQ(countLeadingZeros<uint8_t>(static_cast<uint8_t>(Value)),
              std::countl_zero(static_cast<uint8_t>(Value)));
}

TEST(Bits, FloorAndCeilLog2Exhaustive16) {
  // The paper's LDZ identities, validated against the direct definition.
  for (uint32_t Value = 1; Value <= 0xffff; ++Value) {
    int Floor = 0;
    while ((uint32_t{1} << (Floor + 1)) <= Value)
      ++Floor;
    const int Ceil = (uint32_t{1} << Floor) == Value ? Floor : Floor + 1;
    EXPECT_EQ(floorLog2<uint16_t>(static_cast<uint16_t>(Value)), Floor)
        << Value;
    EXPECT_EQ(ceilLog2<uint16_t>(static_cast<uint16_t>(Value)), Ceil)
        << Value;
  }
}

TEST(Bits, Log2SixtyFourBitBoundaries) {
  EXPECT_EQ(floorLog2<uint64_t>(1), 0);
  EXPECT_EQ(ceilLog2<uint64_t>(1), 0);
  EXPECT_EQ(floorLog2<uint64_t>(~uint64_t{0}), 63);
  EXPECT_EQ(ceilLog2<uint64_t>(~uint64_t{0}), 64);
  EXPECT_EQ(floorLog2<uint64_t>(uint64_t{1} << 63), 63);
  EXPECT_EQ(ceilLog2<uint64_t>(uint64_t{1} << 63), 63);
  EXPECT_EQ(ceilLog2<uint64_t>((uint64_t{1} << 63) + 1), 64);
}

TEST(Bits, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2<uint32_t>(0));
  for (int Bit = 0; Bit < 32; ++Bit) {
    EXPECT_TRUE(isPowerOf2<uint32_t>(uint32_t{1} << Bit));
    if (Bit >= 2) {
      EXPECT_FALSE(isPowerOf2<uint32_t>((uint32_t{1} << Bit) + 1));
    }
  }
  EXPECT_TRUE(isPowerOf2<uint64_t>(uint64_t{1} << 63));
}

} // namespace
