//===- tests/FlightRecorderTest.cpp - Crash-time flight recorder ----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit-dump path of the flight recorder (the signal path is
/// the same code minus the handler): the report must parse as JSON,
/// carry the recent trace spans, and embed a full metrics snapshot —
/// everything a postmortem needs from one file.
///
//===----------------------------------------------------------------------===//

#include "metrics/FlightRecorder.h"

#include "metrics/Metrics.h"
#include "telemetry/Json.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace gmdiv;
using namespace gmdiv::metrics;

namespace json = gmdiv::telemetry::json;

namespace {

void recordSomeSpans(int Count) {
  trace::setEnabled(true);
  for (int I = 0; I < Count; ++I) {
    trace::Span S("flight_test", "unit_span", static_cast<uint64_t>(I));
  }
}

TEST(FlightRecorder, ReportIsParseableAndCarriesSpansAndMetrics) {
  recordSomeSpans(3);
  Registry::global().counter("gmdiv_test_flight_total").inc();

  const std::string Doc =
      FlightRecorder::global().reportJson("unit_test");
  ASSERT_TRUE(json::isValid(Doc));
  json::Value Root;
  ASSERT_TRUE(json::parse(Doc, Root));

  EXPECT_EQ(Root.numberOr("gmdiv_flight_record", 0), 2.0);
  EXPECT_EQ(Root.stringOr("reason", ""), "unit_test");
  EXPECT_GT(Root.numberOr("unix_ms", 0), 0.0);
  EXPECT_GE(Root.numberOr("spans_kept", 0), 1.0);

  // At least one span, and our category is among them. Schema v2 spans
  // carry a "flow" field (0 = not part of a request flow).
  const json::Value *Spans = Root.find("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_GE(Spans->array().size(), 1u);
  bool SawOurs = false;
  for (const json::Value &Span : Spans->array()) {
    EXPECT_NE(Span.find("thread"), nullptr);
    EXPECT_NE(Span.find("start_ns"), nullptr);
    EXPECT_NE(Span.find("dur_ns"), nullptr);
    EXPECT_NE(Span.find("flow"), nullptr);
    if (Span.stringOr("cat", "") == "flight_test" &&
        Span.stringOr("name", "") == "unit_span")
      SawOurs = true;
  }
  EXPECT_TRUE(SawOurs) << Doc;

  // Schema v2 always carries a "profile" key: null when no profiler
  // has registered a provider, the profiler's JSON otherwise.
  EXPECT_NE(Root.find("profile"), nullptr);

  // The embedded metrics snapshot is the full snapshotJson document.
  const json::Value *Metrics = Root.find("metrics");
  ASSERT_NE(Metrics, nullptr);
  EXPECT_EQ(Metrics->numberOr("gmdiv_metrics", 0), 1.0);
  bool FoundCounter = false;
  for (const json::Value &F : Metrics->find("families")->array())
    if (F.stringOr("name", "") == "gmdiv_test_flight_total")
      FoundCounter = true;
  EXPECT_TRUE(FoundCounter) << Doc;
}

namespace {
std::string testProfileProvider() {
  return "{\"gmdiv_profile\":1,\"rate_hz\":97,\"samples_recorded\":5}";
}
} // namespace

// Satellite: the v1 -> v2 schema bump (profile section + per-span flow)
// must round-trip through the project parser with and without a
// profiler attached — a crash report with samples is still one valid
// JSON document.
TEST(FlightRecorder, ProfileSectionRoundTripsThroughParser) {
  recordSomeSpans(1);

  // Without a provider the key is present but null.
  FlightRecorder::setProfileProvider(nullptr);
  json::Value Root;
  ASSERT_TRUE(json::parse(FlightRecorder::global().reportJson("no_prof"),
                          Root));
  EXPECT_EQ(Root.numberOr("gmdiv_flight_record", 0), 2.0);
  const json::Value *Profile = Root.find("profile");
  ASSERT_NE(Profile, nullptr);
  EXPECT_TRUE(Profile->isNull());

  // With a provider the profiler document is spliced in verbatim and
  // the whole report still parses.
  FlightRecorder::setProfileProvider(&testProfileProvider);
  const std::string Doc =
      FlightRecorder::global().reportJson("with_prof");
  FlightRecorder::setProfileProvider(nullptr);
  ASSERT_TRUE(json::isValid(Doc)) << Doc;
  ASSERT_TRUE(json::parse(Doc, Root));
  Profile = Root.find("profile");
  ASSERT_NE(Profile, nullptr);
  EXPECT_EQ(Profile->numberOr("gmdiv_profile", 0), 1.0);
  EXPECT_EQ(Profile->numberOr("rate_hz", 0), 97.0);
  EXPECT_EQ(Profile->numberOr("samples_recorded", 0), 5.0);
  // The metrics section survives the splice.
  ASSERT_NE(Root.find("metrics"), nullptr);
  EXPECT_EQ(Root.find("metrics")->numberOr("gmdiv_metrics", 0), 1.0);
}

TEST(FlightRecorder, DumpWritesTheConfiguredFile) {
  recordSomeSpans(2);
  FlightRecorder &FR = FlightRecorder::global();
  FlightRecorder::Options O;
  O.Path = testing::TempDir() + "gmdiv_flight_test.json";
  O.MaxSpans = 64;
  FR.configure(O);
  EXPECT_EQ(FR.options().Path, O.Path);

  std::string Error;
  ASSERT_TRUE(FR.dump("explicit", &Error)) << Error;
  std::ifstream In(O.Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  json::Value Root;
  ASSERT_TRUE(json::parse(Buf.str(), Root));
  EXPECT_EQ(Root.stringOr("reason", ""), "explicit");
  EXPECT_GE(Root.find("spans")->array().size(), 1u);
  std::remove(O.Path.c_str());
}

TEST(FlightRecorder, MaxSpansKeepsOnlyTheMostRecent) {
  recordSomeSpans(40);
  FlightRecorder &FR = FlightRecorder::global();
  FlightRecorder::Options O;
  O.Path = testing::TempDir() + "gmdiv_flight_capped.json";
  O.MaxSpans = 8;
  FR.configure(O);

  json::Value Root;
  ASSERT_TRUE(json::parse(FR.reportJson("capped"), Root));
  EXPECT_LE(Root.find("spans")->array().size(), 8u);
  EXPECT_LE(Root.numberOr("spans_kept", 99), 8.0);
  // The recorder reports how much it recorded vs kept, so the cap is
  // visible, not silent.
  EXPECT_GE(Root.numberOr("spans_recorded", 0), 8.0);
}

} // namespace
