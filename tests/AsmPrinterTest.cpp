//===- tests/AsmPrinterTest.cpp - Listing printer tests -------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/AsmPrinter.h"

#include "codegen/DivCodeGen.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

TEST(AsmPrinter, FormatsInstructions) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int M = B.constant(0xcccccccd);
  const int High = B.mulUH(M, N);
  const int Q = B.srl(High, 3);
  B.markResult(Q, "q");
  const Program P = B.take();

  PrintOptions Options;
  Options.ShowComments = false;
  EXPECT_EQ(formatInstr(P, M, Options), "t1 = const 0xcccccccd");
  // Commutative canonicalization orders operands by value index.
  EXPECT_EQ(formatInstr(P, High, Options), "t2 = muluh n0, t1");
  EXPECT_EQ(formatInstr(P, Q, Options), "t3 = srl t2, 3");
}

TEST(AsmPrinter, ProgramListingContainsResults) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Q = B.srl(N, 1);
  B.markResult(Q, "q");
  const Program P = B.take();
  const std::string Listing = formatProgram(P);
  EXPECT_NE(Listing.find("srl n0, 1"), std::string::npos);
  EXPECT_NE(Listing.find("=> q:"), std::string::npos);
  // Bare argument loads are elided from listings.
  EXPECT_EQ(Listing.find("arg 0"), std::string::npos);
}

TEST(AsmPrinter, CommentsAligned) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Q = B.srl(N, 4, "divide by 16");
  B.markResult(Q, "q");
  const Program P = B.take();
  const std::string Line = formatInstr(P, Q);
  EXPECT_NE(Line.find("; divide by 16"), std::string::npos);
}

TEST(AsmPrinter, GoldenListingForDivideBy10) {
  // The canonical Table 11.1 loop body at 32 bits, pinned exactly. A
  // change here means the generated code shape changed — review it
  // against Figure 4.2 before updating the expectation.
  const ir::Program P = codegen::genUnsignedDivRem(32, 10);
  PrintOptions Options;
  Options.ShowComments = false;
  const std::string Expected = "  t1 = const 0xcccccccd\n"
                               "  t2 = muluh n0, t1\n"
                               "  t3 = srl t2, 3\n"
                               "  t4 = const 0xa\n"
                               "  t5 = mull t3, t4\n"
                               "  t6 = sub n0, t5\n"
                               "  => q: t3\n"
                               "  => r: t6\n";
  EXPECT_EQ(formatProgram(P, Options), Expected);
}

TEST(AsmPrinter, GoldenListingForSignedDivideBy3) {
  // §5's showcase: "one multiply, one shift, one subtract".
  const ir::Program P = codegen::genSignedDiv(32, 3);
  PrintOptions Options;
  Options.ShowComments = false;
  const std::string Expected = "  t1 = const 0x55555556\n"
                               "  t2 = mulsh n0, t1\n"
                               "  t3 = xsign n0\n"
                               "  t4 = sub t2, t3\n"
                               "  => q: t4\n";
  EXPECT_EQ(formatProgram(P, Options), Expected);
}

TEST(AsmPrinter, SmallImmediatesPrintedDecimal) {
  Builder B(32, 0);
  const int Five = B.constant(5);
  const int Big = B.constant(0xdeadbeef);
  B.markResult(Five);
  B.markResult(Big);
  const Program P = B.take();
  PrintOptions Options;
  Options.ShowComments = false;
  EXPECT_EQ(formatInstr(P, Five, Options), "t0 = const 5");
  EXPECT_EQ(formatInstr(P, Big, Options), "t1 = const 0xdeadbeef");
}

} // namespace
