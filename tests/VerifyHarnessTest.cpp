//===- tests/VerifyHarnessTest.cpp - Differential harness self-tests ------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification harness verified: exhaustive sweeps at the small
/// widths (the larger ones live in VerifyExhaustiveTest.cpp), the repro
/// string round-trip, replay, fuzzer determinism, and — via the
/// injected-mismatch hook — the harness's own failure path: a mismatch
/// must surface as a repro string, a verify.mismatch remark, and a
/// dirty report. A checker that cannot fail proves nothing.
///
//===----------------------------------------------------------------------===//

#include "verify/Fuzzer.h"
#include "verify/Verify.h"

#include "jit/Jit.h"
#include "telemetry/Remarks.h"
#include "telemetry/Stats.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::verify;

namespace {

//===----------------------------------------------------------------------===//
// Exhaustive sweeps, small widths
//===----------------------------------------------------------------------===//

void expectWidthClean(int WordBits) {
  const VerifyReport Report = verifyWidth(WordBits);
  EXPECT_EQ(Report.WordBits, WordBits);
  EXPECT_GT(Report.checks(), 0u);
  EXPECT_TRUE(Report.clean()) << reportJson(Report);
  EXPECT_TRUE(Report.Failures.empty());
}

TEST(VerifyExhaustiveSmall, Width4) { expectWidthClean(4); }
TEST(VerifyExhaustiveSmall, Width5) { expectWidthClean(5); }
TEST(VerifyExhaustiveSmall, Width6) { expectWidthClean(6); }
TEST(VerifyExhaustiveSmall, Width7) { expectWidthClean(7); }
TEST(VerifyExhaustiveSmall, Width8) { expectWidthClean(8); }

TEST(VerifyHarness, EveryPropertyRunsAtNativeWidth) {
  // N = 8 is a native width: the scalar dividers, the generated
  // sequences, the doubleword path AND the batch backends all run, so
  // every property family must report checks.
  const VerifyReport Report = verifyWidth(8);
  for (const PropertyCount &P : Report.Properties) {
    // The jit-* properties record zero checks where compiled code
    // cannot run (non-x86-64 hosts, GMDIV_NO_JIT=1) instead of
    // vacuously passing on the interpreter.
    if (!jit::enabled() && P.Name.rfind("jit-", 0) == 0)
      continue;
    EXPECT_GT(P.Checks, 0u) << "property never exercised: " << P.Name;
  }
}

TEST(VerifyHarness, NonNativeWidthSkipsNativeOnlyProperties) {
  // N = 9 runs on the SmallWord family: batch kernels and the float
  // divider require machine types, so those properties stay at zero
  // checks — and everything else still runs.
  const VerifyReport Report = verifyWidth(9);
  uint64_t BatchChecks = 0, FloatChecks = 0, ScalarChecks = 0;
  for (const PropertyCount &P : Report.Properties) {
    if (P.Name == "batch-unsigned" || P.Name == "batch-signed")
      BatchChecks += P.Checks;
    else if (P.Name == "float-unsigned" || P.Name == "float-signed")
      FloatChecks += P.Checks;
    else
      ScalarChecks += P.Checks;
  }
  EXPECT_EQ(BatchChecks, 0u);
  EXPECT_EQ(FloatChecks, 0u);
  EXPECT_GT(ScalarChecks, 0u);
}

TEST(VerifyHarness, ReportJsonShape) {
  const VerifyReport Report = verifyWidth(4);
  const std::string Json = reportJson(Report);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"word_bits\":4"), std::string::npos);
  EXPECT_NE(Json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"properties\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Repro strings
//===----------------------------------------------------------------------===//

TEST(VerifyRepro, RoundTripUnsigned) {
  Repro R;
  R.Property = "unsigned-divider";
  R.WordBits = 32;
  R.DBits = 7;
  R.NBits = 0xFFFFFFFFull;
  const std::string Text = reproString(R);
  EXPECT_EQ(Text, "gmdiv:v1:unsigned-divider:N=32:d=7:n=4294967295");
  Repro Back;
  ASSERT_TRUE(parseRepro(Text, Back));
  EXPECT_EQ(Back.Property, R.Property);
  EXPECT_EQ(Back.WordBits, R.WordBits);
  EXPECT_EQ(Back.DBits, R.DBits);
  EXPECT_EQ(Back.NBits, R.NBits);
  EXPECT_FALSE(Back.HasN2);
}

TEST(VerifyRepro, RoundTripSignedPrintsDecimals) {
  Repro R;
  R.Property = "signed-divider";
  R.WordBits = 16;
  R.DBits = 0xFFF9; // -7 in 16 bits.
  R.NBits = 0x8000; // INT16_MIN.
  const std::string Text = reproString(R);
  EXPECT_EQ(Text, "gmdiv:v1:signed-divider:N=16:d=-7:n=-32768");
  Repro Back;
  ASSERT_TRUE(parseRepro(Text, Back));
  EXPECT_EQ(Back.DBits, 0xFFF9u);
  EXPECT_EQ(Back.NBits, 0x8000u);
}

TEST(VerifyRepro, RoundTripDword) {
  Repro R;
  R.Property = "dword-divider";
  R.WordBits = 64;
  R.DBits = 1000003;
  R.NBits = 42;
  R.N2Bits = 999999; // High part, must stay < d.
  R.HasN2 = true;
  const std::string Text = reproString(R);
  Repro Back;
  ASSERT_TRUE(parseRepro(Text, Back));
  EXPECT_TRUE(Back.HasN2);
  EXPECT_EQ(Back.N2Bits, 999999u);
  EXPECT_EQ(Back.NBits, 42u);
}

TEST(VerifyRepro, RoundTripFamilyTag) {
  // Successor-family properties tag their repros with :f=<family>; the
  // paper's own "gm" family stays implicit, so pre-existing repro
  // strings are byte-identical.
  Repro R;
  R.Property = "fastmod-unsigned";
  R.WordBits = 16;
  R.DBits = 7;
  R.NBits = 65535;
  R.Family = "fastmod";
  const std::string Text = reproString(R);
  EXPECT_EQ(Text, "gmdiv:v1:fastmod-unsigned:N=16:d=7:n=65535:f=fastmod");
  Repro Back;
  ASSERT_TRUE(parseRepro(Text, Back));
  EXPECT_EQ(Back.Property, "fastmod-unsigned");
  EXPECT_EQ(Back.Family, "fastmod");

  // An untagged family repro gains the property's registered tag when
  // re-serialized (reproString consults the property table).
  Back.Family.clear();
  EXPECT_EQ(reproString(Back), Text);
}

TEST(VerifyRepro, CheckOnePassesOnSuccessorFamilies) {
  for (const char *Text : {
           "gmdiv:v1:fastmod-unsigned:N=16:d=7:n=65535:f=fastmod",
           "gmdiv:v1:fastmod-divisible:N=16:d=7:n=49:f=fastmod",
           "gmdiv:v1:fastmod-signed:N=16:d=-7:n=-32768:f=fastmod",
           "gmdiv:v1:roundup-unsigned:N=16:d=641:n=65535:f=roundup",
           "gmdiv:v1:roundup-bounds:N=16:d=641:n=0:f=roundup",
           "gmdiv:v1:narrow32-unsigned:N=16:d=10:n=65535:f=narrow32",
           "gmdiv:v1:narrow32-signed:N=16:d=-10:n=-32768:f=narrow32",
       }) {
    Repro R;
    ASSERT_TRUE(parseRepro(Text, R)) << Text;
    std::string Detail;
    EXPECT_TRUE(checkOne(R, &Detail)) << Text << ": " << Detail;
    EXPECT_NE(Detail.find("PASS"), std::string::npos) << Detail;
  }
}

TEST(VerifyRepro, CheckOneRejectsFamilyMismatch) {
  // A tag naming a different family than the property's registered one
  // is a corrupt repro, not a request to cross-check: reject it.
  Repro R;
  ASSERT_TRUE(parseRepro(
      "gmdiv:v1:fastmod-unsigned:N=16:d=7:n=65535:f=narrow32", R));
  EXPECT_EQ(R.Family, "narrow32");
  std::string Detail;
  EXPECT_FALSE(checkOne(R, &Detail));
  EXPECT_NE(Detail.find("family"), std::string::npos) << Detail;
}

TEST(VerifyRepro, ParseRejectsMalformed) {
  Repro Out;
  EXPECT_FALSE(parseRepro("", Out));
  EXPECT_FALSE(parseRepro("gmdiv:v1", Out));
  EXPECT_FALSE(parseRepro("notgmdiv:v1:unsigned-divider:N=8:d=3:n=5", Out));
  EXPECT_FALSE(parseRepro("gmdiv:v2:unsigned-divider:N=8:d=3:n=5", Out));
  EXPECT_FALSE(parseRepro("gmdiv:v1:unsigned-divider:N=xx:d=3:n=5", Out));
  EXPECT_FALSE(parseRepro("gmdiv:v1:unsigned-divider:N=8:d=:n=5", Out));
  EXPECT_FALSE(parseRepro("gmdiv:v1:unsigned-divider:N=99:d=3:n=5", Out));
}

TEST(VerifyRepro, CheckOnePassesOnCorrectCode) {
  for (const char *Text : {
           "gmdiv:v1:unsigned-divider:N=16:d=7:n=65535",
           "gmdiv:v1:signed-divider:N=16:d=-7:n=-32768",
           "gmdiv:v1:codegen-floor:N=32:d=10:n=-2147483648",
           "gmdiv:v1:dword-divider:N=32:d=1000003:n=12345:n2=999999",
           "gmdiv:v1:batch-unsigned:N=8:d=3:n=200",
       }) {
    Repro R;
    ASSERT_TRUE(parseRepro(Text, R)) << Text;
    std::string Detail;
    EXPECT_TRUE(checkOne(R, &Detail)) << Text << ": " << Detail;
    EXPECT_NE(Detail.find("PASS"), std::string::npos) << Detail;
  }
}

TEST(VerifyRepro, CheckOneRejectsUnknownProperty) {
  Repro R;
  R.Property = "no-such-property";
  R.WordBits = 8;
  R.DBits = 3;
  std::string Detail;
  EXPECT_FALSE(checkOne(R, &Detail));
  EXPECT_FALSE(Detail.empty());
}

TEST(VerifyRepro, ReplayReproHandlesMalformedText) {
  std::string Detail;
  EXPECT_FALSE(replayRepro("complete garbage", &Detail));
  EXPECT_NE(Detail.find("malformed"), std::string::npos);
  EXPECT_TRUE(replayRepro("gmdiv:v1:unsigned-divider:N=16:d=7:n=123"));
}

TEST(VerifyRepro, MinimizeKeepsPassingReproIntact) {
  // On correct code nothing fails, so minimization must return the
  // input repro unchanged rather than "shrink" a passing case.
  Repro R;
  R.Property = "unsigned-divider";
  R.WordBits = 16;
  R.DBits = 7;
  R.NBits = 65535;
  EXPECT_EQ(minimizeRepro(R), reproString(R));
}

//===----------------------------------------------------------------------===//
// The failure path, driven by the injection hook
//===----------------------------------------------------------------------===//

TEST(VerifyInjection, MismatchesSurfaceInReportAndRemarks) {
  telemetry::CollectingRemarkSink Sink;
  VerifyReport Report;
  {
    telemetry::ScopedRemarkSink Guard(&Sink);
    setInjectedMismatchPeriod(1000);
    std::vector<uint64_t> Ns;
    for (uint64_t N = 0; N < 256; ++N)
      Ns.push_back(N);
    Report = checkDivisor(8, 7, Ns, {{3, 200}});
    setInjectedMismatchPeriod(0);
  }

  EXPECT_GT(Report.mismatches(), 0u);
  ASSERT_FALSE(Report.Failures.empty());
  for (const std::string &Text : Report.Failures)
    EXPECT_EQ(Text.rfind("gmdiv:v1:", 0), 0u) << Text;

#ifndef GMDIV_NO_TELEMETRY
  // One verify.mismatch remark per recorded failure — replay and
  // minimization must not add more (they run remark-suppressed). The
  // sink also hears the codegen lowering remarks emitted while the
  // checker builds its programs, so filter by kind.
  std::vector<telemetry::Remark> Mismatches;
  for (const telemetry::Remark &R : Sink.remarks())
    if (R.Kind == "verify.mismatch")
      Mismatches.push_back(R);
  ASSERT_EQ(Mismatches.size(), Report.Failures.size());
  for (const telemetry::Remark &R : Mismatches) {
    EXPECT_EQ(R.Pass, "verify");
    EXPECT_EQ(R.WordBits, 8);
    bool HasRepro = false;
    for (const auto &[Key, Value] : R.Details)
      if (Key == "repro")
        HasRepro = Value.rfind("gmdiv:v1:", 0) == 0;
    EXPECT_TRUE(HasRepro) << R.message();
  }
#endif

  // With injection off, every recorded failure replays clean — and the
  // replay emits no remarks even with a sink installed.
  telemetry::CollectingRemarkSink ReplaySink;
  telemetry::ScopedRemarkSink ReplayGuard(&ReplaySink);
  for (const std::string &Text : Report.Failures)
    EXPECT_TRUE(replayRepro(Text)) << Text;
  for (const telemetry::Remark &R : ReplaySink.remarks())
    EXPECT_NE(R.Kind, "verify.mismatch");
}

TEST(VerifyInjection, ReportJsonCarriesFailures) {
  setInjectedMismatchPeriod(500);
  std::vector<uint64_t> Ns;
  for (uint64_t N = 0; N < 256; ++N)
    Ns.push_back(N);
  const VerifyReport Report = checkDivisor(8, 10, Ns, {});
  setInjectedMismatchPeriod(0);
  ASSERT_FALSE(Report.clean());
  const std::string Json = reportJson(Report);
  EXPECT_NE(Json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(Json.find("gmdiv:v1:"), std::string::npos);
}

TEST(VerifyInjection, SuccessorFamilyPropertiesOwnTheirMismatches) {
  // Period 1 corrupts every comparison, so each successor-family
  // property must tally mismatches under its own name — proving the new
  // checkers route failures to their property row rather than a
  // neighbour's — and every recorded failure must replay clean once the
  // injection is off.
  setInjectedMismatchPeriod(1);
  std::vector<uint64_t> Ns;
  for (uint64_t N = 0; N < 256; ++N)
    Ns.push_back(N);
  const VerifyReport Report = checkDivisor(8, 7, Ns, {});
  setInjectedMismatchPeriod(0);

  for (const char *Property :
       {"fastmod-unsigned", "fastmod-divisible", "fastmod-signed",
        "roundup-unsigned", "roundup-bounds", "narrow32-unsigned",
        "narrow32-signed"}) {
    EXPECT_GT(Report.mismatches(Property), 0u) << Property;
  }

  for (const std::string &Text : Report.Failures)
    EXPECT_TRUE(replayRepro(Text)) << Text;
}

#ifndef GMDIV_NO_TELEMETRY
TEST(VerifyTelemetry, ChecksFlowIntoStatsRegistry) {
  uint64_t Before = 0;
  for (const telemetry::StatRecord &Record : telemetry::statsSnapshot())
    if (Record.Group == "verify" && Record.Name == "checks")
      Before = Record.Value;
  const VerifyReport Report = verifyWidth(4);
  uint64_t After = 0;
  for (const telemetry::StatRecord &Record : telemetry::statsSnapshot())
    if (Record.Group == "verify" && Record.Name == "checks")
      After = Record.Value;
  EXPECT_GE(After - Before, Report.checks());
}
#endif

//===----------------------------------------------------------------------===//
// Fuzzer
//===----------------------------------------------------------------------===//

TEST(VerifyFuzzer, SmokeRunsClean) {
  FuzzOptions Options;
  Options.MaxRounds = 5;
  Options.Seconds = 300; // MaxRounds decides; the budget is a backstop.
  Options.Seed = 42;
  const FuzzReport Report = runFuzzer(Options);
  EXPECT_EQ(Report.Rounds, 5u);
  EXPECT_GT(Report.checks(), 0u);
  EXPECT_TRUE(Report.clean()) << fuzzJson(Report);
  ASSERT_EQ(Report.PerWidth.size(), 3u);
  EXPECT_EQ(Report.PerWidth[0].WordBits, 16);
  EXPECT_EQ(Report.PerWidth[1].WordBits, 32);
  EXPECT_EQ(Report.PerWidth[2].WordBits, 64);
  for (const VerifyReport &PerWidth : Report.PerWidth)
    EXPECT_GT(PerWidth.checks(), 0u);
}

TEST(VerifyFuzzer, DeterministicGivenSeed) {
  FuzzOptions Options;
  Options.MaxRounds = 3;
  Options.Seconds = 300;
  Options.Seed = 1234;
  const FuzzReport A = runFuzzer(Options);
  const FuzzReport B = runFuzzer(Options);
  EXPECT_EQ(A.checks(), B.checks());
  ASSERT_EQ(A.PerWidth.size(), B.PerWidth.size());
  for (size_t I = 0; I < A.PerWidth.size(); ++I)
    EXPECT_EQ(A.PerWidth[I].checks(), B.PerWidth[I].checks());
}

TEST(VerifyFuzzer, DifferentSeedsDiverge) {
  FuzzOptions Options;
  Options.MaxRounds = 3;
  Options.Seconds = 300;
  Options.Seed = 1;
  const FuzzReport A = runFuzzer(Options);
  Options.Seed = 2;
  const FuzzReport B = runFuzzer(Options);
  // Same shape, different inputs: exact check counts differ because the
  // data-dependent checks (divisible, doubleword filters) differ.
  EXPECT_NE(A.checks(), B.checks());
}

TEST(VerifyFuzzer, JsonSummaryShape) {
  FuzzOptions Options;
  Options.MaxRounds = 1;
  Options.Seconds = 300;
  const FuzzReport Report = runFuzzer(Options);
  const std::string Json = fuzzJson(Report);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"seed\""), std::string::npos);
  EXPECT_NE(Json.find("\"rounds\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"widths\":["), std::string::npos);
  EXPECT_NE(Json.find("\"failures\":[]"), std::string::npos);
}

TEST(VerifyFuzzer, NarrowWidthOption) {
  // The fuzzer accepts the exhaustive widths too (useful to stress one
  // width from the command line).
  FuzzOptions Options;
  Options.MaxRounds = 2;
  Options.Seconds = 300;
  Options.Widths = {8};
  const FuzzReport Report = runFuzzer(Options);
  EXPECT_TRUE(Report.clean()) << fuzzJson(Report);
  ASSERT_EQ(Report.PerWidth.size(), 1u);
  EXPECT_EQ(Report.PerWidth[0].WordBits, 8);
}

} // namespace
