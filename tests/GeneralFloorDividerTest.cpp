//===- tests/GeneralFloorDividerTest.cpp - (6.1)/(6.2) identity tests -----===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"
#include "core/DWordDivider.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x9216d5d98979fb1bull);
  return Generator;
}

int64_t refFloorDiv(int64_t N, int64_t D) {
  const int64_t Quotient = N / D;
  if (N % D != 0 && ((N % D < 0) != (D < 0)))
    return Quotient - 1;
  return Quotient;
}

TEST(GeneralFloorDivider, Exhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const GeneralFloorDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      EXPECT_EQ(Divider.divide(static_cast<int8_t>(N)),
                static_cast<int8_t>(refFloorDiv(N, D)))
          << "n=" << N << " d=" << D;
      const int Mod = static_cast<int>(N - D * refFloorDiv(N, D));
      EXPECT_EQ(Divider.modulo(static_cast<int8_t>(N)),
                static_cast<int8_t>(Mod))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(GeneralFloorDivider, AgreesWithFloorDividerExhaustive16) {
  for (int D : {3, -3, 10, -10, 127, -127, 4096, -4096, 32767, -32768}) {
    const GeneralFloorDivider<int16_t> General(static_cast<int16_t>(D));
    const FloorDivider<int16_t> Floor(static_cast<int16_t>(D));
    for (int N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      ASSERT_EQ(General.divide(static_cast<int16_t>(N)),
                Floor.divide(static_cast<int16_t>(N)))
          << "n=" << N << " d=" << D;
      ASSERT_EQ(General.modulo(static_cast<int16_t>(N)),
                Floor.modulo(static_cast<int16_t>(N)))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(GeneralFloorDivider, Random32And64) {
  for (int I = 0; I < 2000; ++I) {
    int64_t D = static_cast<int64_t>(rng()()) >> (rng()() % 63);
    if (D == 0)
      D = -9;
    const GeneralFloorDivider<int64_t> Divider(D);
    for (int J = 0; J < 100; ++J) {
      const int64_t N = static_cast<int64_t>(rng()()) >> (rng()() % 63);
      if (N == std::numeric_limits<int64_t>::min() && D == -1)
        continue;
      ASSERT_EQ(Divider.divide(N), refFloorDiv(N, D))
          << "n=" << N << " d=" << D;
      ASSERT_EQ(Divider.modulo(N), N - D * refFloorDiv(N, D))
          << "n=" << N << " d=" << D;
    }
  }
  for (int I = 0; I < 2000; ++I) {
    int32_t D = static_cast<int32_t>(rng()()) >> (rng()() % 31);
    if (D == 0)
      D = 11;
    const GeneralFloorDivider<int32_t> Divider(D);
    for (int J = 0; J < 50; ++J) {
      const int32_t N = static_cast<int32_t>(rng()());
      if (N == std::numeric_limits<int32_t>::min() && D == -1)
        continue;
      ASSERT_EQ(Divider.divide(N),
                static_cast<int32_t>(refFloorDiv(N, D)))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(GeneralFloorDivider, NoOverflowAtExtremes) {
  // (6.1)'s "the new numerators never overflow": probe the corners.
  constexpr int32_t Min = std::numeric_limits<int32_t>::min();
  constexpr int32_t Max = std::numeric_limits<int32_t>::max();
  for (int32_t D : {2, -2, 3, -3, Max, -Max, Min}) {
    const GeneralFloorDivider<int32_t> Divider(D);
    for (int32_t N : {Min, Min + 1, -1, 0, 1, Max - 1, Max}) {
      ASSERT_EQ(Divider.divide(N), static_cast<int32_t>(refFloorDiv(N, D)))
          << "n=" << N << " d=" << D;
    }
  }
}

//===----------------------------------------------------------------------===//
// DWordDivider::divRemFull (the no-precondition 2N / N form).
//===----------------------------------------------------------------------===//

TEST(DWordDividerFull, Exhaustive8) {
  for (uint32_t D = 1; D < 256; ++D) {
    const DWordDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (uint32_t N = 0; N <= 0xffff; N += 7) {
      const auto Full = Divider.divRemFull(static_cast<uint16_t>(N));
      const uint32_t Quotient =
          (static_cast<uint32_t>(Full.QuotientHigh) << 8) |
          Full.QuotientLow;
      ASSERT_EQ(Quotient, N / D) << "n=" << N << " d=" << D;
      ASSERT_EQ(Full.Remainder, N % D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DWordDividerFull, Random64AgainstUInt128) {
  for (int I = 0; I < 500; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const DWordDivider<uint64_t> Divider(D);
    for (int J = 0; J < 100; ++J) {
      const UInt128 N = UInt128::fromHalves(rng()(), rng()());
      const auto Full = Divider.divRemFull(N);
      auto [RefQ, RefR] = UInt128::divMod(N, UInt128(D));
      ASSERT_EQ(Full.QuotientHigh, RefQ.high64())
          << "n=" << N.toString() << " d=" << D;
      ASSERT_EQ(Full.QuotientLow, RefQ.low64())
          << "n=" << N.toString() << " d=" << D;
      ASSERT_EQ(Full.Remainder, RefR.low64())
          << "n=" << N.toString() << " d=" << D;
    }
  }
}

} // namespace
