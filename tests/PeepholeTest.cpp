//===- tests/PeepholeTest.cpp - Standalone optimizer tests ----------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pattern-rewrite unit tests plus a differential property test: random
/// programs, once optimized, must compute identical results on shared
/// inputs (the only acceptable notion of "optimization").
///
//===----------------------------------------------------------------------===//

#include "ir/Peephole.h"

#include "codegen/DivCodeGen.h"
#include "ir/Builder.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x3c7516dffd616b15ull);
  return Generator;
}

/// Builds a Program directly (no Builder folding) so the optimizer has
/// something to do.
Program rawProgram(int WordBits, int NumArgs,
                   const std::vector<Instr> &Instrs,
                   const std::vector<int> &Results) {
  Program P(WordBits, NumArgs);
  for (const Instr &I : Instrs)
    P.append(I);
  for (int R : Results)
    P.markResult(R);
  return P;
}

Instr makeInstr(Opcode Op, int Lhs = -1, int Rhs = -1, uint64_t Imm = 0) {
  Instr I;
  I.Op = Op;
  I.Lhs = Lhs;
  I.Rhs = Rhs;
  I.Imm = Imm;
  return I;
}

TEST(Peephole, CombinesShifts) {
  // SRL(SRL(x, 3), 4) => SRL(x, 7).
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Srl, 0, -1, 3),
       makeInstr(Opcode::Srl, 1, -1, 4)},
      {2});
  const Program Optimized = optimize(P);
  EXPECT_EQ(Optimized.operationCount(), 1);
  EXPECT_EQ(Optimized.instrs().back().Op, Opcode::Srl);
  EXPECT_EQ(Optimized.instrs().back().Imm, 7u);
  for (uint64_t N : {0ull, 1ull, 0xdeadbeefull, 0xffffffffull})
    EXPECT_EQ(run(P, {N})[0], run(Optimized, {N})[0]);
}

TEST(Peephole, OverlongShiftBecomesZero) {
  const Program P = rawProgram(
      16, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Srl, 0, -1, 9),
       makeInstr(Opcode::Srl, 1, -1, 8)},
      {2});
  const Program Optimized = optimize(P);
  // Result collapses to the constant zero.
  const Instr &Result =
      Optimized.instr(Optimized.results()[0]);
  EXPECT_EQ(Result.Op, Opcode::Const);
  EXPECT_EQ(Result.Imm, 0u);
}

TEST(Peephole, SraSaturatesAtWordWidth) {
  // SRA(SRA(x, 20), 20) => SRA(x, 31) at 32 bits.
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Sra, 0, -1, 20),
       makeInstr(Opcode::Sra, 1, -1, 20)},
      {2});
  const Program Optimized = optimize(P);
  EXPECT_EQ(Optimized.instrs().back().Imm, 31u);
  for (uint64_t N : {0x80000000ull, 0x7fffffffull, 0xffffffffull})
    EXPECT_EQ(run(P, {N})[0], run(Optimized, {N})[0]);
}

TEST(Peephole, EorSignMaskRoundTrip) {
  // EOR(s, EOR(s, x)) => x — the §6 floor pattern.
  const Program P = rawProgram(
      32, 2,
      {makeInstr(Opcode::Arg, -1, -1, 0), makeInstr(Opcode::Arg, -1, -1, 1),
       makeInstr(Opcode::Eor, 0, 1), makeInstr(Opcode::Eor, 0, 2)},
      {3});
  const Program Optimized = optimize(P);
  // Result must be argument 1 itself.
  const Instr &Result = Optimized.instr(Optimized.results()[0]);
  EXPECT_EQ(Result.Op, Opcode::Arg);
  EXPECT_EQ(Result.Imm, 1u);
}

TEST(Peephole, DoubleNotAndDoubleNeg) {
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Not, 0),
       makeInstr(Opcode::Not, 1), makeInstr(Opcode::Neg, 2),
       makeInstr(Opcode::Neg, 3)},
      {4});
  const Program Optimized = optimize(P);
  EXPECT_EQ(Optimized.operationCount(), 0);
  EXPECT_EQ(Optimized.instr(Optimized.results()[0]).Op, Opcode::Arg);
}

TEST(Peephole, XsignIdempotent) {
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Xsign, 0),
       makeInstr(Opcode::Xsign, 1)},
      {2});
  const Program Optimized = optimize(P);
  EXPECT_EQ(Optimized.operationCount(), 1);
}

TEST(Peephole, ClearedLowBitsRoundTripBecomesAnd) {
  // SUB(x, SLL(SRL(x, k), k)) => AND(x, 2^k - 1).
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Srl, 0, -1, 8),
       makeInstr(Opcode::Sll, 1, -1, 8), makeInstr(Opcode::Sub, 0, 2)},
      {3});
  const Program Optimized = optimize(P);
  const Instr &Result = Optimized.instr(Optimized.results()[0]);
  EXPECT_EQ(Result.Op, Opcode::And);
  for (uint64_t N : {0ull, 0x1234ull, 0xdeadbeefull, 0xffffffffull})
    EXPECT_EQ(run(P, {N})[0], run(Optimized, {N})[0]);
  // Mismatched shift counts must NOT rewrite.
  const Program Mismatch = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Srl, 0, -1, 8),
       makeInstr(Opcode::Sll, 1, -1, 9), makeInstr(Opcode::Sub, 0, 2)},
      {3});
  const Program Kept = optimize(Mismatch);
  for (uint64_t N : {0x1234ull, 0xdeadbeefull})
    EXPECT_EQ(run(Mismatch, {N})[0], run(Kept, {N})[0]);
}

TEST(Peephole, ShiftByZeroIsIdentity) {
  // SRL/SLL/SRA/ROR by zero all collapse to the operand — the shape a
  // sh_post of 0 leaves behind (e.g. signed division by 3 at 32 bits).
  for (Opcode Op :
       {Opcode::Srl, Opcode::Sll, Opcode::Sra, Opcode::Ror}) {
    const Program P = rawProgram(
        32, 1,
        {makeInstr(Opcode::Arg), makeInstr(Op, 0, -1, 0),
         makeInstr(Opcode::Add, 1, 1)},
        {2});
    PeepholeStats Stats;
    const Program Optimized = optimize(P, &Stats);
    for (const Instr &I : Optimized.instrs())
      EXPECT_NE(I.Op, Op) << "shift-by-zero survived";
    EXPECT_GT(Stats.total(), 0);
    for (uint64_t N : {0ull, 1ull, 0xdeadbeefull, 0xffffffffull})
      EXPECT_EQ(run(P, {N})[0], run(Optimized, {N})[0]);
  }
}

TEST(Peephole, MultiplyByOneIsIdentity) {
  // MULL(x, 1) => x, both operand orders.
  for (bool ConstOnLhs : {false, true}) {
    const Program P = rawProgram(
        32, 1,
        {makeInstr(Opcode::Arg), makeInstr(Opcode::Const, -1, -1, 1),
         ConstOnLhs ? makeInstr(Opcode::MulL, 1, 0)
                    : makeInstr(Opcode::MulL, 0, 1),
         makeInstr(Opcode::Add, 2, 2)},
        {3});
    const Program Optimized = optimize(P);
    for (const Instr &I : Optimized.instrs())
      EXPECT_NE(I.Op, Opcode::MulL) << "multiply-by-one survived";
    for (uint64_t N : {0ull, 7ull, 0xdeadbeefull, 0xffffffffull})
      EXPECT_EQ(run(P, {N})[0], run(Optimized, {N})[0]);
  }
}

TEST(Peephole, MulSHByOneBecomesSignMask) {
  // MULSH(x, 1) is the high word of sign-extended x: its sign mask.
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Const, -1, -1, 1),
       makeInstr(Opcode::MulSH, 0, 1)},
      {2});
  const Program Optimized = optimize(P);
  for (const Instr &I : Optimized.instrs())
    EXPECT_NE(I.Op, Opcode::MulSH);
  for (uint64_t N : {0ull, 7ull, 0x7fffffffull, 0x80000000ull,
                     0xffffffffull})
    EXPECT_EQ(run(P, {N})[0], run(Optimized, {N})[0]);
}

TEST(Peephole, MulSHByZeroBecomesZero) {
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Const, -1, -1, 0),
       makeInstr(Opcode::MulSH, 0, 1)},
      {2});
  const Program Optimized = optimize(P);
  const Instr &Result = Optimized.instr(Optimized.results()[0]);
  EXPECT_EQ(Result.Op, Opcode::Const);
  EXPECT_EQ(Result.Imm, 0u);
}

TEST(Peephole, SignedDivBy3CarriesNoDeadShift) {
  // d = 3 at 32 bits has sh_post == 0: the generated sequence must not
  // carry an SRA-by-zero, and re-optimizing must find nothing left.
  const Program P = codegen::genSignedDiv(32, 3);
  for (const Instr &I : P.instrs())
    if (I.Op == Opcode::Srl || I.Op == Opcode::Sra ||
        I.Op == Opcode::Sll)
      EXPECT_NE(I.Imm, 0u) << "dead shift in generated code";
  PeepholeStats Stats;
  const Program Optimized = optimize(P, &Stats);
  EXPECT_EQ(Optimized.operationCount(), P.operationCount());
}

TEST(Peephole, DeadCodeElimination) {
  // Two expensive dead computations plus one live add.
  Program P(32, 1);
  P.append(makeInstr(Opcode::Arg));
  const int C = P.append(makeInstr(Opcode::Const, -1, -1, 77));
  P.append(makeInstr(Opcode::MulUH, 0, C)); // dead
  P.append(makeInstr(Opcode::MulSH, 0, C)); // dead
  const int Live = P.append(makeInstr(Opcode::Add, 0, C));
  P.markResult(Live);
  int Removed = 0;
  const Program Cleaned = eliminateDeadCode(P, &Removed);
  EXPECT_EQ(Removed, 2);
  EXPECT_EQ(Cleaned.operationCount(), 2); // const + add.
  EXPECT_EQ(run(Cleaned, {5})[0], 82u);
}

TEST(Peephole, StatsAreReported) {
  const Program P = rawProgram(
      32, 1,
      {makeInstr(Opcode::Arg), makeInstr(Opcode::Srl, 0, -1, 0),
       makeInstr(Opcode::Const, -1, -1, 4),
       makeInstr(Opcode::Const, -1, -1, 5), makeInstr(Opcode::Add, 2, 3),
       makeInstr(Opcode::Add, 1, 4)},
      {5});
  PeepholeStats Stats;
  const Program Optimized = optimize(P, &Stats);
  EXPECT_GT(Stats.total(), 0);
  EXPECT_EQ(run(Optimized, {100})[0], 109u);
}

//===----------------------------------------------------------------------===//
// Differential property test over random programs.
//===----------------------------------------------------------------------===//

Program randomProgram(int WordBits, int Length) {
  Program P(WordBits, 2);
  P.append(makeInstr(Opcode::Arg, -1, -1, 0));
  P.append(makeInstr(Opcode::Arg, -1, -1, 1));
  static const Opcode Pool[] = {
      Opcode::Add,  Opcode::Sub,  Opcode::Neg,   Opcode::MulL,
      Opcode::MulUH, Opcode::MulSH, Opcode::And,  Opcode::Or,
      Opcode::Eor,  Opcode::Not,  Opcode::Sll,   Opcode::Srl,
      Opcode::Sra,  Opcode::Ror,  Opcode::Xsign, Opcode::SltS,
      Opcode::SltU, Opcode::Const};
  for (int I = 0; I < Length; ++I) {
    const Opcode Op = Pool[rng()() % std::size(Pool)];
    Instr Next;
    Next.Op = Op;
    if (Op == Opcode::Const) {
      Next.Imm = rng()();
    } else {
      Next.Lhs = static_cast<int>(rng()() % P.size());
      if (!opcodeIsUnary(Op))
        Next.Rhs = static_cast<int>(rng()() % P.size());
      if (opcodeHasImmOperand(Op))
        Next.Imm = rng()() % WordBits;
    }
    P.append(std::move(Next));
  }
  // Mark a few random results, always including the last value.
  P.markResult(P.size() - 1);
  P.markResult(static_cast<int>(rng()() % P.size()));
  P.markResult(static_cast<int>(rng()() % P.size()));
  return P;
}

TEST(Peephole, DifferentialOnRandomPrograms) {
  for (int WordBits : {8, 16, 32, 64}) {
    for (int Round = 0; Round < 300; ++Round) {
      const Program P = randomProgram(WordBits, 20);
      PeepholeStats Stats;
      const Program Optimized = optimize(P, &Stats);
      EXPECT_LE(Optimized.size(), P.size());
      for (int Input = 0; Input < 20; ++Input) {
        const std::vector<uint64_t> Args = {rng()(), rng()()};
        const std::vector<uint64_t> Before = run(P, Args);
        const std::vector<uint64_t> After = run(Optimized, Args);
        ASSERT_EQ(Before, After)
            << "bits=" << WordBits << " round=" << Round;
      }
    }
  }
}

TEST(Peephole, GeneratedDividerCodeIsAlreadyOptimal) {
  // The Builder applies folding/CSE at emission, so optimizing generated
  // division sequences must find nothing (no regression in emission
  // quality).
  for (int WordBits : {8, 16, 32, 64}) {
    for (uint64_t D : {3ull, 7ull, 10ull, 14ull, 100ull}) {
      // Use headers only reachable through Builder-built programs: here
      // we rebuild the muluh-shift pattern by hand via Builder.
      Builder B(WordBits, 1);
      const int N = B.arg(0);
      const int M = B.constant(0x123457ull);
      B.markResult(B.srl(B.mulUH(M, N), 2));
      const Program P = B.take();
      PeepholeStats Stats;
      const Program Optimized = optimize(P, &Stats);
      EXPECT_EQ(Optimized.operationCount(), P.operationCount())
          << "bits=" << WordBits << " d=" << D;
    }
  }
}

} // namespace
