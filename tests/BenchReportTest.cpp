//===- tests/BenchReportTest.cpp - gmdiv-bench-v2 + bench-diff ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "telemetry/BenchReport.h"

#include "telemetry/Json.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::telemetry;
using namespace gmdiv::telemetry::bench;

namespace {

BenchmarkResult makeResult(const std::string &Name,
                           std::vector<double> RealTimeNs) {
  BenchmarkResult R;
  R.Name = Name;
  R.RealTimeNs = RealTimeNs;
  R.CpuTimeNs = RealTimeNs;
  R.Iterations.assign(RealTimeNs.size(), 1000000);
  R.RealStats = robustStats(RealTimeNs, &R.OutliersRejected);
  return R;
}

BenchReport makeReport(std::vector<BenchmarkResult> Results) {
  BenchReport Report;
  Report.Suite = "bench_test";
  Report.Machine.Timestamp = "2026-01-01T00:00:00Z";
  Report.Machine.Hostname = "testhost";
  Report.Machine.CpuModel = "Test CPU";
  Report.Machine.Cpus = 4;
  Report.Machine.Governor = "performance";
  Report.Machine.Compiler = "gcc 12";
  Report.Machine.BuildType = "Release";
  Report.Machine.Flags = "-O2";
  Report.Machine.GitSha = "abc1234";
  Report.Repetitions = 5;
  Report.MinTime = 0.05;
  Report.WarmupTime = 0.05;
  Report.Benchmarks = std::move(Results);
  return Report;
}

TEST(RobustStats, RejectsFarOutliersKeepsCleanSamples) {
  // Four tight samples and one 10x outlier: MAD ~ 0.1, the outlier sits
  // far beyond 5 robust sigmas and must not drag the summary.
  size_t Rejected = 0;
  const SampleStats S =
      robustStats({10.0, 10.1, 9.9, 10.05, 100.0}, &Rejected);
  EXPECT_EQ(Rejected, 1u);
  EXPECT_EQ(S.Count, 4u);
  EXPECT_LT(S.Max, 11.0);
  EXPECT_NEAR(S.Median, 10.0, 0.2);
}

TEST(RobustStats, NoRejectionBelowFourSamplesOrZeroMad) {
  size_t Rejected = 7;
  const SampleStats Tiny = robustStats({1.0, 100.0, 1.0}, &Rejected);
  EXPECT_EQ(Rejected, 0u);
  EXPECT_EQ(Tiny.Count, 3u);
  // All-identical samples: MAD = 0 must not reject everything.
  const SampleStats Flat = robustStats({5, 5, 5, 5, 5}, &Rejected);
  EXPECT_EQ(Rejected, 0u);
  EXPECT_EQ(Flat.Count, 5u);
  EXPECT_DOUBLE_EQ(Flat.Cv, 0);
}

TEST(BenchReportJson, RoundTripsThroughJson) {
  BenchmarkResult WithCounters = makeResult("BM_A/7", {3.0, 3.1, 2.9});
  CounterRep Rep;
  Rep.Iterations = 123;
  Rep.Cycles = 1000;
  Rep.Instructions = 2500;
  Rep.BranchMisses = 3;
  Rep.CacheMisses = 5;
  Rep.Ipc = 2.5;
  WithCounters.Counters.push_back(Rep);
  const BenchReport Report =
      makeReport({WithCounters, makeResult("BM_B/10", {7.0, 7.2, 6.8})});

  const std::string Doc = toJson(Report);
  ASSERT_TRUE(json::isValid(Doc)) << Doc;

  BenchReport Back;
  std::string Error;
  ASSERT_TRUE(fromJson(Doc, Back, &Error)) << Error;
  EXPECT_EQ(Back.Suite, "bench_test");
  EXPECT_EQ(Back.Machine.CpuModel, "Test CPU");
  EXPECT_EQ(Back.Machine.Cpus, 4);
  EXPECT_EQ(Back.Machine.GitSha, "abc1234");
  EXPECT_EQ(Back.Repetitions, 5);
  ASSERT_EQ(Back.Benchmarks.size(), 2u);
  const BenchmarkResult &A = Back.Benchmarks[0];
  EXPECT_EQ(A.Name, "BM_A/7");
  ASSERT_EQ(A.RealTimeNs.size(), 3u);
  EXPECT_DOUBLE_EQ(A.RealTimeNs[1], 3.1);
  EXPECT_DOUBLE_EQ(A.RealStats.Median,
                   Report.Benchmarks[0].RealStats.Median);
  ASSERT_EQ(A.Counters.size(), 1u);
  EXPECT_EQ(A.Counters[0].Cycles, 1000u);
  EXPECT_DOUBLE_EQ(A.Counters[0].Ipc, 2.5);
  EXPECT_TRUE(Back.Benchmarks[1].Counters.empty());
}

TEST(BenchReportJson, RejectsWrongSchemaAndGarbage) {
  BenchReport Out;
  std::string Error;
  EXPECT_FALSE(fromJson("not json", Out, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(fromJson("{\"schema\":\"other-v1\"}", Out, &Error));
  EXPECT_FALSE(fromJson("[]", Out, &Error));
}

TEST(BenchDiff, IdenticalReportsAreClean) {
  const BenchReport Report =
      makeReport({makeResult("BM_A", {10.0, 10.1, 9.9, 10.0, 10.05})});
  const DiffReport Diff = compareReports(Report, Report);
  EXPECT_EQ(Diff.regressions(), 0);
  EXPECT_EQ(Diff.improvements(), 0);
  ASSERT_EQ(Diff.Entries.size(), 1u);
  EXPECT_EQ(Diff.Entries[0].V, DiffEntry::Verdict::Ok);
  EXPECT_DOUBLE_EQ(Diff.Entries[0].Ratio, 1.0);
}

TEST(BenchDiff, TwoTimesSlowdownIsARegression) {
  const BenchReport Old =
      makeReport({makeResult("BM_A", {10.0, 10.1, 9.9, 10.0, 10.05})});
  const BenchReport New =
      makeReport({makeResult("BM_A", {20.0, 20.2, 19.8, 20.0, 20.1})});
  const DiffReport Diff = compareReports(Old, New);
  EXPECT_EQ(Diff.regressions(), 1);
  ASSERT_EQ(Diff.Entries.size(), 1u);
  EXPECT_EQ(Diff.Entries[0].V, DiffEntry::Verdict::Regression);
  EXPECT_NEAR(Diff.Entries[0].Ratio, 2.0, 0.01);
  // And the mirror image is an improvement, not a regression.
  const DiffReport Back = compareReports(New, Old);
  EXPECT_EQ(Back.regressions(), 0);
  EXPECT_EQ(Back.improvements(), 1);
}

TEST(BenchDiff, NoisyBenchmarkNeedsMoreThanThreshold) {
  // 30% apparent slowdown, but the reps scatter by ~25%: the noise band
  // (3 combined robust sigmas) swallows the difference.
  const BenchReport Old =
      makeReport({makeResult("BM_A", {8.0, 10.0, 12.0, 9.0, 11.0})});
  const BenchReport New =
      makeReport({makeResult("BM_A", {10.4, 13.0, 15.6, 11.7, 14.3})});
  const DiffReport Diff = compareReports(Old, New, 0.15);
  EXPECT_EQ(Diff.regressions(), 0);
  ASSERT_EQ(Diff.Entries.size(), 1u);
  EXPECT_GT(Diff.Entries[0].NoiseRel, 0.15);
}

TEST(BenchDiff, UnpairedBenchmarksAreTrackedNotFlagged) {
  const BenchReport Old = makeReport(
      {makeResult("BM_A", {1, 1, 1}), makeResult("BM_Gone", {2, 2, 2})});
  const BenchReport New = makeReport(
      {makeResult("BM_A", {1, 1, 1}), makeResult("BM_New", {3, 3, 3})});
  const DiffReport Diff = compareReports(Old, New);
  EXPECT_EQ(Diff.regressions(), 0);
  int OnlyOld = 0, OnlyNew = 0;
  for (const DiffEntry &E : Diff.Entries) {
    OnlyOld += E.V == DiffEntry::Verdict::OnlyOld;
    OnlyNew += E.V == DiffEntry::Verdict::OnlyNew;
  }
  EXPECT_EQ(OnlyOld, 1);
  EXPECT_EQ(OnlyNew, 1);
}

TEST(BenchDiff, TextAndJsonOutputsAreWellFormed) {
  const BenchReport Old = makeReport({makeResult("BM_A", {10, 10, 10})});
  const BenchReport New = makeReport({makeResult("BM_A", {25, 25, 25})});
  const DiffReport Diff = compareReports(Old, New);
  const std::string Text = diffText(Diff);
  EXPECT_NE(Text.find("BM_A"), std::string::npos);
  EXPECT_NE(Text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(Text.find("1 regression(s)"), std::string::npos);
  const std::string Doc = diffJson(Diff);
  EXPECT_TRUE(json::isValid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"regressions\":1"), std::string::npos);
}

TEST(BenchDiff, SameMachineComparesWithoutWarning) {
  const BenchReport Report = makeReport({makeResult("BM_A", {10, 10, 10})});
  const DiffReport Diff = compareReports(Report, Report);
  EXPECT_FALSE(Diff.machineMismatch());
  EXPECT_EQ(diffText(Diff).find("WARNING"), std::string::npos);
  EXPECT_NE(diffJson(Diff).find("\"machine_mismatch\":false"),
            std::string::npos);
}

TEST(BenchDiff, DifferentMachinesTriggerALoudWarning) {
  const BenchReport Old = makeReport({makeResult("BM_A", {10, 10, 10})});
  BenchReport New = makeReport({makeResult("BM_A", {10, 10, 10})});
  New.Machine.CpuModel = "Other CPU";
  New.Machine.Cpus = 128;
  New.Machine.Governor = "powersave";
  const DiffReport Diff = compareReports(Old, New);
  EXPECT_TRUE(Diff.machineMismatch());
  const std::string Text = diffText(Diff);
  EXPECT_NE(Text.find("WARNING"), std::string::npos);
  EXPECT_NE(Text.find("NOT comparable"), std::string::npos);
  EXPECT_NE(Text.find("Other CPU"), std::string::npos);
  const std::string Doc = diffJson(Diff);
  EXPECT_TRUE(json::isValid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"machine_mismatch\":true"), std::string::npos);
  EXPECT_NE(Doc.find("\"machine_new\""), std::string::npos);
}

TEST(BenchDiff, UnrecordedMachineFieldsDoNotFalseAlarm) {
  // A report whose probes failed ("unknown" / empty / 0) must not be
  // flagged against a fully-populated one: absence of evidence.
  const BenchReport Old = makeReport({makeResult("BM_A", {10, 10, 10})});
  BenchReport New = makeReport({makeResult("BM_A", {10, 10, 10})});
  New.Machine.CpuModel = "unknown";
  New.Machine.Cpus = 0;
  New.Machine.Governor = "";
  const DiffReport Diff = compareReports(Old, New);
  EXPECT_FALSE(Diff.machineMismatch());
}

TEST(BenchReportFile, WriteReadRoundTripAndMissingFile) {
  const BenchReport Report = makeReport({makeResult("BM_A", {5, 5, 5})});
  const std::string Path =
      ::testing::TempDir() + "/gmdiv_bench_report_test.json";
  std::string Error;
  ASSERT_TRUE(writeFile(Path, Report, &Error)) << Error;
  BenchReport Back;
  ASSERT_TRUE(readFile(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back.Benchmarks.size(), 1u);
  EXPECT_FALSE(readFile(Path + ".does-not-exist", Back, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(MachineInfo, CollectFillsEveryFieldNonEmpty) {
  const MachineInfo Info = collectMachineInfo();
  EXPECT_FALSE(Info.Timestamp.empty());
  EXPECT_FALSE(Info.Hostname.empty());
  EXPECT_FALSE(Info.CpuModel.empty());
  EXPECT_GT(Info.Cpus, 0);
  EXPECT_FALSE(Info.Governor.empty());
  EXPECT_FALSE(Info.Compiler.empty());
  EXPECT_FALSE(Info.GitSha.empty());
  // ISO 8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
  ASSERT_EQ(Info.Timestamp.size(), 20u);
  EXPECT_EQ(Info.Timestamp[10], 'T');
  EXPECT_EQ(Info.Timestamp.back(), 'Z');
}

} // namespace
