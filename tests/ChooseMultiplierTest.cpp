//===- tests/ChooseMultiplierTest.cpp - Figure 6.2 property tests ---------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies every postcondition written in Figure 6.2's comments, over
/// all (d, prec) pairs at 8 and 16 bits, randomized at 32 and 64 bits,
/// plus the paper's worked N = 32 examples (d = 3, 5, 7, 10, 14, 25,
/// 125, 641).
///
//===----------------------------------------------------------------------===//

#include "core/ChooseMultiplier.h"

#include "wideint/UInt128.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace gmdiv;

namespace {

/// 192-bit value Hi*2^128 + Lo, wide enough for m*d with m <= 2^65 and
/// d < 2^64 (the N = 64 postcondition check needs up to 129 bits).
struct U192 {
  uint64_t Hi = 0;
  UInt128 Lo;

  friend bool operator<(const U192 &A, const U192 &B) {
    if (A.Hi != B.Hi)
      return A.Hi < B.Hi;
    return A.Lo < B.Lo;
  }
  friend bool operator<=(const U192 &A, const U192 &B) { return !(B < A); }
};

U192 mulWide(UInt128 A, uint64_t B) {
  const UInt128 P0 = UInt128::mulFull64(A.low64(), B);
  const UInt128 P1 = UInt128::mulFull64(A.high64(), B);
  const UInt128 Lo = P0 + (UInt128(P1.low64()) << 64);
  const uint64_t Carry = Lo < P0 ? 1 : 0;
  return {P1.high64() + Carry, Lo};
}

U192 pow2Wide(int Exponent) {
  if (Exponent < 128)
    return {0, UInt128::pow2(Exponent)};
  return {uint64_t{1} << (Exponent - 128), UInt128(0)};
}

U192 addWide(U192 A, U192 B) {
  U192 Sum;
  Sum.Lo = A.Lo + B.Lo;
  Sum.Hi = A.Hi + B.Hi + (Sum.Lo < A.Lo ? 1 : 0);
  return Sum;
}

template <typename UWord>
UInt128 multiplierAsU128(const MultiplierInfo<UWord> &Info) {
  using T = WordTraits<UWord>;
  if constexpr (T::Bits == 64)
    return Info.Multiplier;
  else
    return UInt128(static_cast<uint64_t>(Info.Multiplier));
}

template <typename UWord> void checkPostconditions(UWord D, int Prec) {
  using T = WordTraits<UWord>;
  constexpr int N = T::Bits;
  const MultiplierInfo<UWord> Info = chooseMultiplier<UWord>(D, Prec);
  const UInt128 M = multiplierAsU128(Info);
  const int L = Info.Log2Ceil;
  const int Sh = Info.ShiftPost;

  // 2^(l-1) < d <= 2^l.
  if (L > 0) {
    EXPECT_TRUE(UInt128::pow2(L - 1) < UInt128(static_cast<uint64_t>(D)))
        << "d=" << static_cast<uint64_t>(D) << " prec=" << Prec;
  }
  EXPECT_TRUE(UInt128(static_cast<uint64_t>(D)) <= UInt128::pow2(L))
      << "d=" << static_cast<uint64_t>(D) << " prec=" << Prec;

  // 0 <= sh_post <= l.
  EXPECT_GE(Sh, 0);
  EXPECT_LE(Sh, L);

  // 2^(N+sh) < m*d <= 2^(N+sh) * (1 + 2^-prec).
  const U192 Product = mulWide(M, static_cast<uint64_t>(D));
  const U192 LowBound = pow2Wide(N + Sh);
  const U192 HighBound = addWide(LowBound, pow2Wide(N + Sh - Prec));
  EXPECT_TRUE(LowBound < Product)
      << "d=" << static_cast<uint64_t>(D) << " prec=" << Prec;
  EXPECT_TRUE(Product <= HighBound)
      << "d=" << static_cast<uint64_t>(D) << " prec=" << Prec;

  // m < 2^(N+1) always. The corollary — m fits in max(prec, N-1) + 1
  // bits when d < 2^prec — is what Figures 5.2/6.1 rely on (prec = N-1
  // gives m < 2^N). As literally stated it fails for d = 1 with tiny
  // prec (no halvings are available when l = 0), and every generator
  // special-cases d = 1, so we check it for d >= 2.
  EXPECT_TRUE(M < UInt128::pow2(N + 1))
      << "d=" << static_cast<uint64_t>(D) << " prec=" << Prec;
  const int MaxBits =
      (Prec > N - 1 ? Prec : N - 1) + 1;
  if (D >= 2 && Prec <= N - 1 &&
      UInt128(static_cast<uint64_t>(D)) < UInt128::pow2(Prec)) {
    EXPECT_TRUE(M < UInt128::pow2(MaxBits))
        << "d=" << static_cast<uint64_t>(D) << " prec=" << Prec;
  }
}

TEST(ChooseMultiplier, PostconditionsExhaustive8) {
  for (unsigned D = 1; D < 256; ++D)
    for (int Prec = 1; Prec <= 8; ++Prec)
      checkPostconditions<uint8_t>(static_cast<uint8_t>(D), Prec);
}

TEST(ChooseMultiplier, PostconditionsExhaustive16) {
  for (unsigned D = 1; D <= 0xffff; ++D)
    for (int Prec : {1, 2, 7, 8, 9, 15, 16})
      checkPostconditions<uint16_t>(static_cast<uint16_t>(D), Prec);
}

TEST(ChooseMultiplier, PostconditionsRandom32) {
  std::mt19937_64 Rng(7);
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    const uint32_t D = static_cast<uint32_t>(Rng()) | 1u;
    checkPostconditions<uint32_t>(D, 32);
    checkPostconditions<uint32_t>(D, 31);
    checkPostconditions<uint32_t>((D >> (Rng() % 31)) | 1u, 32);
  }
}

TEST(ChooseMultiplier, PostconditionsRandom64) {
  std::mt19937_64 Rng(8);
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    uint64_t D = Rng() >> (Rng() % 63);
    if (D == 0)
      D = 1;
    checkPostconditions<uint64_t>(D, 64);
    checkPostconditions<uint64_t>(D, 63);
  }
  // Boundary divisors.
  for (uint64_t D : {uint64_t{1}, uint64_t{2}, uint64_t{3},
                     (uint64_t{1} << 63) - 1, uint64_t{1} << 63,
                     (uint64_t{1} << 63) + 1, ~uint64_t{0} - 1,
                     ~uint64_t{0}}) {
    checkPostconditions<uint64_t>(D, 64);
    checkPostconditions<uint64_t>(D, 63);
  }
}

//===----------------------------------------------------------------------===//
// The paper's worked examples at N = 32.
//===----------------------------------------------------------------------===//

TEST(ChooseMultiplier, PaperExampleDivideBy10) {
  // §4: CHOOSE_MULTIPLIER(10, 32) finds m_low = (2^36-6)/10 and
  // m_high = (2^36+14)/10, then after one round of halving returns
  // (m, sh_post, l) = ((2^34+1)/5, 3, 4).
  const MultiplierInfo<uint32_t> Info = chooseMultiplier<uint32_t>(10, 32);
  EXPECT_EQ(Info.Multiplier, ((uint64_t{1} << 34) + 1) / 5);
  EXPECT_EQ(Info.Multiplier, 3435973837u);
  EXPECT_EQ(Info.ShiftPost, 3);
  EXPECT_EQ(Info.Log2Ceil, 4);
  EXPECT_TRUE(Info.fitsInWord());
}

TEST(ChooseMultiplier, PaperExampleDivideBy7) {
  // §4: d = 7 has m = (2^35+3)/7 > 2^32, triggering the longer
  // Figure 4.1 sequence.
  const MultiplierInfo<uint32_t> Info = chooseMultiplier<uint32_t>(7, 32);
  EXPECT_EQ(Info.Multiplier, ((uint64_t{1} << 35) + 3) / 7);
  EXPECT_FALSE(Info.fitsInWord());
  EXPECT_EQ(Info.ShiftPost, 3);
}

TEST(ChooseMultiplier, PaperExampleDivideBy14) {
  // §4: d = 14 first returns the d = 7 multiplier; the even-divisor
  // improvement re-chooses with (7, N - 1), giving (2^34+5)/7 and a
  // separate pre-shift by 1: q = SRL(MULUH((2^34+5)/7, SRL(n,1)), 2).
  const MultiplierInfo<uint32_t> Whole = chooseMultiplier<uint32_t>(14, 32);
  EXPECT_FALSE(Whole.fitsInWord());
  const MultiplierInfo<uint32_t> Odd = chooseMultiplier<uint32_t>(7, 31);
  EXPECT_EQ(Odd.Multiplier, ((uint64_t{1} << 34) + 5) / 7);
  EXPECT_EQ(Odd.ShiftPost, 2);
  EXPECT_TRUE(Odd.fitsInWord());
}

TEST(ChooseMultiplier, PaperExampleSignedDivideBy3) {
  // §5: CHOOSE_MULTIPLIER(3, 31) returns sh_post = 0 and m = (2^32+2)/3,
  // so signed n/3 is one MULSH, one shift, one subtract.
  const MultiplierInfo<uint32_t> Info = chooseMultiplier<uint32_t>(3, 31);
  EXPECT_EQ(Info.Multiplier, ((uint64_t{1} << 32) + 2) / 3);
  EXPECT_EQ(Info.Multiplier, 1431655766u);
  EXPECT_EQ(Info.ShiftPost, 0);
}

TEST(ChooseMultiplier, PaperExampleFloorMod10) {
  // §6's n mod 10 example (Figure 6.1 with d = 10): q0 = MULUH((2^33+3)/5,
  // EOR(nsign, n)); q = EOR(nsign, SRL(q0, 2)) — CHOOSE_MULTIPLIER(10, 31)
  // returns multiplier (2^33+3)/5 with sh_post = 2.
  const MultiplierInfo<uint32_t> Info = chooseMultiplier<uint32_t>(10, 31);
  EXPECT_EQ(Info.Multiplier, ((uint64_t{1} << 33) + 3) / 5);
  EXPECT_EQ(Info.ShiftPost, 2);
  EXPECT_TRUE(Info.fitsInWord());
}

TEST(ChooseMultiplier, RareDivisor641HasZeroFinalShift) {
  // §4 improvement: d = 641 divides 2^32 + 2^25 + ... such that the
  // reduced multiplier is odd with sh_post reaching 0 ("in rare cases
  // the final shift is zero"). 641 divides 2^32 + 1.
  EXPECT_EQ(((uint64_t{1} << 32) + 1) % 641, 0u);
  const MultiplierInfo<uint32_t> Info = chooseMultiplier<uint32_t>(641, 32);
  EXPECT_EQ(Info.ShiftPost, 0);
  EXPECT_TRUE(Info.fitsInWord());
  EXPECT_EQ(Info.Multiplier, ((uint64_t{1} << 32) + 1) / 641);
}

TEST(ChooseMultiplier, RareDivisor274177At64Bits) {
  // The 64-bit analog: 274177 divides 2^64 + 1.
  const MultiplierInfo<uint64_t> Info =
      chooseMultiplier<uint64_t>(274177, 64);
  EXPECT_EQ(Info.ShiftPost, 0);
  EXPECT_TRUE(Info.fitsInWord());
  const UInt128 Expected =
      (UInt128::pow2(64) + UInt128(1)) / UInt128(274177);
  EXPECT_TRUE(Info.Multiplier == Expected);
}

TEST(ChooseMultiplier, GoldenMagicTable32) {
  // The classic magic numbers every compiler tables (cf. Hacker's
  // Delight ch. 10, itself derived from this paper). Regression guard:
  // these exact constants are ABI for anyone embedding them.
  struct GoldenRow {
    uint32_t D;
    uint64_t M;
    int Shift;
  };
  const GoldenRow Unsigned[] = {
      {3, 0xAAAAAAABull, 1},  {5, 0xCCCCCCCDull, 2},
      {6, 0xAAAAAAABull, 2},  {9, 0x38E38E39ull, 1},
      {10, 0xCCCCCCCDull, 3}, {11, 0xBA2E8BA3ull, 3},
      {25, 0x51EB851Full, 3}, {125, 0x10624DD3ull, 3},
      {625, 0xD1B71759ull, 9}};
  for (const GoldenRow &Row : Unsigned) {
    const MultiplierInfo<uint32_t> Info =
        chooseMultiplier<uint32_t>(Row.D, 32);
    EXPECT_EQ(static_cast<uint64_t>(Info.Multiplier), Row.M)
        << "d=" << Row.D;
    EXPECT_EQ(Info.ShiftPost, Row.Shift) << "d=" << Row.D;
  }
  const GoldenRow Signed[] = {
      {3, 0x55555556ull, 0},  {5, 0x66666667ull, 1},
      {7, 0x92492493ull, 2},  {9, 0x38E38E39ull, 1},
      {10, 0x66666667ull, 2}, {25, 0x51EB851Full, 3},
      {125, 0x10624DD3ull, 3}};
  for (const GoldenRow &Row : Signed) {
    const MultiplierInfo<uint32_t> Info =
        chooseMultiplier<uint32_t>(Row.D, 31);
    EXPECT_EQ(static_cast<uint64_t>(Info.Multiplier), Row.M)
        << "signed d=" << Row.D;
    EXPECT_EQ(Info.ShiftPost, Row.Shift) << "signed d=" << Row.D;
  }
}

TEST(ChooseMultiplier, GoldenMagicTable64) {
  // 64-bit classics: unsigned /10 and signed /3.
  const MultiplierInfo<uint64_t> U10 = chooseMultiplier<uint64_t>(10, 64);
  EXPECT_TRUE(U10.Multiplier == UInt128(0xCCCCCCCCCCCCCCCDull))
      << U10.Multiplier.toString();
  EXPECT_EQ(U10.ShiftPost, 3);
  const MultiplierInfo<uint64_t> S3 = chooseMultiplier<uint64_t>(3, 63);
  EXPECT_TRUE(S3.Multiplier == UInt128(0x5555555555555556ull))
      << S3.Multiplier.toString();
  EXPECT_EQ(S3.ShiftPost, 0);
}

TEST(ChooseMultiplier, DivisorOneYieldsIdentityShape) {
  // d = 1: l = 0, sh_post = 0, m = 2^N + 2^(N-prec); the generators
  // special-case d = 1 before consuming the multiplier.
  const MultiplierInfo<uint32_t> Info = chooseMultiplier<uint32_t>(1, 32);
  EXPECT_EQ(Info.Log2Ceil, 0);
  EXPECT_EQ(Info.ShiftPost, 0);
  EXPECT_EQ(Info.Multiplier, (uint64_t{1} << 32) + 1);
}

} // namespace
