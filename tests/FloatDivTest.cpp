//===- tests/FloatDivTest.cpp - §7 floating-point division tests ----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §7 claims exactness "regardless of the rounding modes used to compute
/// q_est" — so every test here runs under all four IEEE rounding modes.
///
//===----------------------------------------------------------------------===//

#include "core/FloatDiv.h"

#include <gtest/gtest.h>

#include <cfenv>
#include <cstdint>
#include <random>

using namespace gmdiv;

namespace {

const int RoundingModes[] = {FE_TONEAREST, FE_UPWARD, FE_DOWNWARD,
                             FE_TOWARDZERO};

class RoundingModeGuard {
public:
  explicit RoundingModeGuard(int Mode) : Saved(std::fegetround()) {
    std::fesetround(Mode);
  }
  ~RoundingModeGuard() { std::fesetround(Saved); }

private:
  int Saved;
};

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x3f84d5b5b5470917ull);
  return Generator;
}

TEST(FloatDivider, UnsignedExhaustive16AllRoundingModes) {
  for (int Mode : RoundingModes) {
    RoundingModeGuard Guard(Mode);
    for (uint32_t D : {1u, 2u, 3u, 7u, 10u, 100u, 255u, 256u, 32767u,
                       65535u}) {
      const FloatDivider<uint16_t> Divider(static_cast<uint16_t>(D));
      for (uint32_t N = 0; N <= 0xffff; ++N) {
        ASSERT_EQ(Divider.divide(static_cast<uint16_t>(N)), N / D)
            << "mode=" << Mode << " n=" << N << " d=" << D;
        ASSERT_EQ(Divider.divideViaReciprocal(static_cast<uint16_t>(N)),
                  N / D)
            << "mode=" << Mode << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(FloatDivider, SignedExhaustive16AllRoundingModes) {
  for (int Mode : RoundingModes) {
    RoundingModeGuard Guard(Mode);
    for (int D : {1, -1, 3, -3, 7, 10, -10, 32767, -32768}) {
      const FloatDivider<int16_t> Divider(static_cast<int16_t>(D));
      for (int N = -32768; N <= 32767; ++N) {
        const int Expected = N / D; // int arithmetic: no UB for these.
        ASSERT_EQ(Divider.divide(static_cast<int16_t>(N)),
                  static_cast<int16_t>(Expected))
            << "mode=" << Mode << " n=" << N << " d=" << D;
        ASSERT_EQ(Divider.divideViaReciprocal(static_cast<int16_t>(N)),
                  static_cast<int16_t>(Expected))
            << "mode=" << Mode << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(FloatDivider, Random32AllRoundingModes) {
  for (int Mode : RoundingModes) {
    RoundingModeGuard Guard(Mode);
    for (int I = 0; I < 300; ++I) {
      uint32_t D = static_cast<uint32_t>(rng()() >> (rng()() % 32));
      if (D == 0)
        D = 1;
      const FloatDivider<uint32_t> Divider(D);
      for (int J = 0; J < 300; ++J) {
        const uint32_t N = static_cast<uint32_t>(rng()());
        ASSERT_EQ(Divider.divide(N), N / D)
            << "mode=" << Mode << " n=" << N << " d=" << D;
        ASSERT_EQ(Divider.divideViaReciprocal(N), N / D)
            << "mode=" << Mode << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(FloatDivider, SignedRandom32AllRoundingModes) {
  for (int Mode : RoundingModes) {
    RoundingModeGuard Guard(Mode);
    for (int I = 0; I < 300; ++I) {
      int32_t D = static_cast<int32_t>(rng()()) >> (rng()() % 31);
      if (D == 0)
        D = -7;
      const FloatDivider<int32_t> Divider(D);
      for (int J = 0; J < 300; ++J) {
        const int32_t N = static_cast<int32_t>(rng()());
        if (N == std::numeric_limits<int32_t>::min() && D == -1)
          continue;
        const int32_t Expected =
            static_cast<int32_t>(static_cast<int64_t>(N) / D);
        ASSERT_EQ(Divider.divide(N), Expected)
            << "mode=" << Mode << " n=" << N << " d=" << D;
      }
    }
  }
}

TEST(FloatDivider, WorstCaseNearMultiples) {
  // The proof's tight spot: dividends just below/above exact multiples,
  // where a one-ulp error in q_est would cross an integer.
  for (int Mode : RoundingModes) {
    RoundingModeGuard Guard(Mode);
    for (uint32_t D : {3u, 7u, 641u, 0x7fffffffu, 0x80000001u, 0xffffffffu}) {
      const FloatDivider<uint32_t> Divider(D);
      for (uint64_t Q = 0; Q < 64; ++Q) {
        const uint64_t Base = Q * D;
        for (int64_t Offset = -2; Offset <= 2; ++Offset) {
          const int64_t N64 = static_cast<int64_t>(Base) + Offset;
          if (N64 < 0 || N64 > 0xffffffffll)
            continue;
          const uint32_t N = static_cast<uint32_t>(N64);
          ASSERT_EQ(Divider.divide(N), N / D)
              << "mode=" << Mode << " n=" << N << " d=" << D;
        }
      }
      // Largest dividends.
      for (uint32_t N = 0xffffffffu; N > 0xffffffffu - 64; --N)
        ASSERT_EQ(Divider.divide(N), N / D) << "mode=" << Mode;
    }
  }
}

TEST(FloatDivider, NaiveReciprocalFailsUnderDirectedRounding) {
  // Documents the boundary of §7's guarantee: with TWO roundings
  // (reciprocal then product) the estimate can land at 1 - 2^-53, a
  // representable value below the true quotient — the theorem's
  // "no representable number strictly between (1-2^-F)q and q" argument
  // only covers a single rounding. The fixup variant must still be exact.
  RoundingModeGuard Guard(FE_DOWNWARD);
  int NaiveFailures = 0;
  for (uint32_t D = 2; D <= 4096; ++D) {
    // volatile blocks compile-time folding of 1/d, which would otherwise
    // happen under the compiler's round-to-nearest.
    volatile uint32_t DRuntime = D;
    const FloatDivider<uint32_t> Divider(DRuntime);
    for (uint32_t Q = 1; Q <= 8; ++Q) {
      const uint32_t N = Q * D;
      if (Divider.divideViaReciprocalNoFixup(N) != Q)
        ++NaiveFailures;
      ASSERT_EQ(Divider.divideViaReciprocal(N), Q)
          << "fixup variant must stay exact, d=" << D;
      ASSERT_EQ(Divider.divide(N), Q)
          << "single rounding must stay exact, d=" << D;
    }
  }
  EXPECT_GT(NaiveFailures, 0)
      << "expected the documented two-rounding failures";
}

TEST(FloatDivider, RemainderMatches) {
  const FloatDivider<int32_t> Divider(-7);
  EXPECT_EQ(Divider.remainder(10), 3);
  EXPECT_EQ(Divider.remainder(-10), -3);
  const FloatDivider<uint32_t> UDivider(10);
  EXPECT_EQ(UDivider.remainder(123), 3u);
}

} // namespace
