//===- tests/FloorCeilDividerTest.cpp - §6 floor/ceil tests ---------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x452821e638d01377ull);
  return Generator;
}

/// Reference floor division in wide arithmetic.
int64_t refFloorDiv(int64_t N, int64_t D) {
  const int64_t Quotient = N / D;
  const int64_t Remainder = N % D;
  if (Remainder != 0 && ((Remainder < 0) != (D < 0)))
    return Quotient - 1;
  return Quotient;
}

/// Reference ceiling division in wide arithmetic.
int64_t refCeilDiv(int64_t N, int64_t D) {
  const int64_t Quotient = N / D;
  const int64_t Remainder = N % D;
  if (Remainder != 0 && ((Remainder < 0) == (D < 0)))
    return Quotient + 1;
  return Quotient;
}

TEST(FloorDivider, Exhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const FloorDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue; // Overflow case.
      EXPECT_EQ(Divider.divide(static_cast<int8_t>(N)),
                static_cast<int8_t>(refFloorDiv(N, D)))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(FloorDivider, ModuloHasDivisorSignExhaustive8) {
  // Fortran MODULO / Ada mod semantics (§2).
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const FloorDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      const int Expected = N - D * static_cast<int>(refFloorDiv(N, D));
      EXPECT_EQ(Divider.modulo(static_cast<int8_t>(N)),
                static_cast<int8_t>(Expected))
          << "n=" << N << " d=" << D;
      if (Expected != 0) {
        EXPECT_EQ(Expected < 0, D < 0) << "n=" << N << " d=" << D;
      }
    }
  }
}

TEST(CeilDivider, Exhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const CeilDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      EXPECT_EQ(Divider.divide(static_cast<int8_t>(N)),
                static_cast<int8_t>(refCeilDiv(N, D)))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(FloorDivider, AllDividends16ForInterestingDivisors) {
  for (int D : {1, 2, 3, 5, 7, 10, 100, 255, 4096, 32767, -1, -3, -10,
                -32768}) {
    const FloorDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      ASSERT_EQ(Divider.divide(static_cast<int16_t>(N)),
                static_cast<int16_t>(refFloorDiv(N, D)))
          << "n=" << N << " d=" << D;
    }
  }
}

template <typename SWord> void checkFloorCeilRandom(int Count) {
  using UWord = std::make_unsigned_t<SWord>;
  constexpr SWord Min = std::numeric_limits<SWord>::min();
  for (int I = 0; I < Count; ++I) {
    SWord D = static_cast<SWord>(
        static_cast<UWord>(rng()() >> (rng()() % (sizeof(SWord) * 8))));
    if (D == 0)
      D = 7;
    const FloorDivider<SWord> Floor(D);
    const CeilDivider<SWord> Ceil(D);
    for (int J = 0; J < 100; ++J) {
      const SWord N = static_cast<SWord>(
          static_cast<UWord>(rng()() >> (rng()() % (sizeof(SWord) * 8))));
      if (N == Min && D == -1)
        continue;
      ASSERT_EQ(Floor.divide(N),
                static_cast<SWord>(refFloorDiv(N, D)))
          << "n=" << static_cast<int64_t>(N)
          << " d=" << static_cast<int64_t>(D);
      ASSERT_EQ(Ceil.divide(N), static_cast<SWord>(refCeilDiv(N, D)))
          << "n=" << static_cast<int64_t>(N)
          << " d=" << static_cast<int64_t>(D);
    }
  }
}

TEST(FloorCeilDivider, Random16) { checkFloorCeilRandom<int16_t>(2000); }
TEST(FloorCeilDivider, Random32) { checkFloorCeilRandom<int32_t>(2000); }

TEST(FloorCeilDivider, Random64) {
  for (int I = 0; I < 2000; ++I) {
    int64_t D = static_cast<int64_t>(rng()()) >> (rng()() % 63);
    if (D == 0)
      D = 10;
    const FloorDivider<int64_t> Floor(D);
    const CeilDivider<int64_t> Ceil(D);
    for (int J = 0; J < 100; ++J) {
      const int64_t N = static_cast<int64_t>(rng()()) >> (rng()() % 63);
      if (N == std::numeric_limits<int64_t>::min() && D == -1)
        continue;
      ASSERT_EQ(Floor.divide(N), refFloorDiv(N, D))
          << "n=" << N << " d=" << D;
      ASSERT_EQ(Ceil.divide(N), refCeilDiv(N, D)) << "n=" << N << " d=" << D;
    }
  }
}

TEST(FloorDivider, PaperMod10Example) {
  // §6's worked example: nonnegative remainder r = n mod 10 for signed n.
  const FloorDivider<int32_t> By10(10);
  EXPECT_EQ(By10.modulo(123), 3);
  EXPECT_EQ(By10.modulo(-123), 7);
  EXPECT_EQ(By10.modulo(-1), 9);
  EXPECT_EQ(By10.modulo(0), 0);
  EXPECT_EQ(By10.divide(-1), -1);
  EXPECT_EQ(By10.divide(-10), -1);
  EXPECT_EQ(By10.divide(-11), -2);
  EXPECT_EQ(By10.modulo(std::numeric_limits<int32_t>::min()), 2);
}

TEST(FloorDivider, PowerOfTwoUsesPlainSra) {
  // §6: "SRA floors by powers of two" — floor(n / 2^k) == n >> k.
  for (int Bit = 0; Bit < 31; ++Bit) {
    const FloorDivider<int32_t> Divider(int32_t{1} << Bit);
    for (int J = 0; J < 1000; ++J) {
      const int32_t N = static_cast<int32_t>(rng()());
      ASSERT_EQ(Divider.divide(N), N >> Bit);
    }
  }
}

TEST(FloorDivider, IntMinDividend) {
  constexpr int32_t Min32 = std::numeric_limits<int32_t>::min();
  for (int32_t D : {2, 3, 7, 10, 100, 65536, 2147483647, -2, -3, -10}) {
    const FloorDivider<int32_t> Divider(D);
    ASSERT_EQ(Divider.divide(Min32), refFloorDiv(Min32, D)) << "d=" << D;
  }
}

TEST(FloorDivider, IntMinDividendPowerOfTwoNeighborhoods) {
  // n = -2^31 against d = +/-2^k and +/-(2^k +/- 1), floor quotient and
  // §6 modulo both checked against the wide reference. d = -1 is fine
  // here: FLOOR(-2^31 / -1) = 2^31 does not fit, but the divider's
  // wrapping arithmetic must still match the truncation of the wide
  // result to 32 bits — so it is pinned separately below, not swept.
  constexpr int32_t Min32 = std::numeric_limits<int32_t>::min();
  for (int Bit = 1; Bit < 32; ++Bit) {
    for (int64_t Delta : {-1, 0, 1}) {
      for (int Sign : {1, -1}) {
        const int64_t DWide = Sign * ((int64_t{1} << Bit) + Delta);
        if (DWide == 0 || DWide == -1 || DWide > 2147483647 ||
            DWide < int64_t{Min32})
          continue;
        const int32_t D = static_cast<int32_t>(DWide);
        const FloorDivider<int32_t> Floor(D);
        ASSERT_EQ(Floor.divide(Min32), refFloorDiv(Min32, D)) << "d=" << D;
        ASSERT_EQ(Floor.modulo(Min32),
                  static_cast<int32_t>(int64_t{Min32} -
                                       refFloorDiv(Min32, D) * int64_t{D}))
            << "d=" << D;
        const CeilDivider<int32_t> Ceil(D);
        ASSERT_EQ(Ceil.divide(Min32), refCeilDiv(Min32, D)) << "d=" << D;
      }
    }
  }
}

TEST(FloorDivider, IntMinByMinusOneWrapPolicy) {
  // The one overflowing pair: FLOOR(-2^(N-1) / -1) = 2^(N-1) does not
  // fit, the exact quotient wraps to -2^(N-1) with remainder 0, and a
  // zero remainder means no floor/ceil adjustment — both conventions
  // inherit the trunc divider's wrap value.
  constexpr int32_t Min32 = std::numeric_limits<int32_t>::min();
  const FloorDivider<int32_t> Floor(-1);
  const CeilDivider<int32_t> Ceil(-1);
  EXPECT_EQ(Floor.divide(Min32), Min32);
  EXPECT_EQ(Floor.modulo(Min32), 0);
  EXPECT_EQ(Ceil.divide(Min32), Min32);
  // Every other dividend negates exactly.
  EXPECT_EQ(Floor.divide(Min32 + 1), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(Ceil.divide(-7), 7);
}

TEST(FloorDivider, DivisorIntMin) {
  // d = -2^(N-1): FLOOR(n / d) is 1 at n = d, 0 for other n <= 0, and
  // -1 for n > 0 (the quotient is negative and not exact).
  constexpr int32_t Min32 = std::numeric_limits<int32_t>::min();
  constexpr int32_t Max32 = std::numeric_limits<int32_t>::max();
  const FloorDivider<int32_t> Floor(Min32);
  const CeilDivider<int32_t> Ceil(Min32);
  for (int32_t N : {Min32, Min32 + 1, -2, -1, 0, 1, 2, Max32 - 1, Max32}) {
    ASSERT_EQ(Floor.divide(N), refFloorDiv(N, Min32)) << "n=" << N;
    ASSERT_EQ(Floor.modulo(N),
              static_cast<int32_t>(int64_t{N} -
                                   refFloorDiv(N, Min32) * int64_t{Min32}))
        << "n=" << N;
    ASSERT_EQ(Ceil.divide(N), refCeilDiv(N, Min32)) << "n=" << N;
  }
  // Spot values make the shape explicit.
  EXPECT_EQ(Floor.divide(Min32), 1);
  EXPECT_EQ(Floor.divide(-1), 0);
  EXPECT_EQ(Floor.divide(1), -1);
  EXPECT_EQ(Floor.modulo(1), Min32 + 1);
  // And at 64 bits with hardware-independent expectations.
  constexpr int64_t Min64 = std::numeric_limits<int64_t>::min();
  const FloorDivider<int64_t> Floor64(Min64);
  EXPECT_EQ(Floor64.divide(Min64), 1);
  EXPECT_EQ(Floor64.divide(Min64 + 1), 0);
  EXPECT_EQ(Floor64.divide(-1), 0);
  EXPECT_EQ(Floor64.divide(0), 0);
  EXPECT_EQ(Floor64.divide(1), -1);
  EXPECT_EQ(Floor64.divide(std::numeric_limits<int64_t>::max()), -1);
}

} // namespace
