//===- tests/JitBatchDividerTest.cpp - Jitted vector-loop front end -------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JitBatchDivider against the static batch kernels and native
/// arithmetic: the dispatch matrix (lane type x divisor x count,
/// including sub-vector batches and ragged tails), the total-fallback
/// contract on narrow lane types, exact aliasing, and the code-cache
/// property the header promises — constructing a second divider for the
/// same divisor maps no new executable memory.
///
/// Every test also runs meaningfully with the jit off (GMDIV_NO_JIT=1
/// or GMDIV_JIT_VECTOR=0 CI legs): the differential checks then prove
/// the fallback path is bit-for-bit the static kernels, and the
/// jit-specific assertions gate on vectorJitIsa(). The oracle-backed
/// sweeps (exhaustive N = 4..12, fuzzing at 16/32/64) run under
/// verify/ as the jit-batch-* properties.
///
//===----------------------------------------------------------------------===//

#include "jit/JitBatchDivider.h"

#include "batch/BatchDivider.h"
#include "core/Divider.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <type_traits>
#include <vector>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x2545f4914f6cdd1dull);
  return Generator;
}

/// Whether this lane type should end up on the jitted path in this
/// process (narrower lanes always fall back; wider ones follow the
/// GMDIV_NO_JIT / GMDIV_JIT_VECTOR / CPUID gate).
template <typename T> bool expectJitted() {
  jit::VectorIsa Isa;
  return sizeof(T) >= 4 && jit::vectorJitIsa(Isa);
}

/// Dividend buffer with the corner values pinned up front and random
/// fill behind, sized to leave a ragged tail on every vector width.
template <typename T> std::vector<T> dividends(T D, size_t Count) {
  std::vector<T> In(Count);
  for (T &Value : In)
    Value = static_cast<T>(rng()());
  const T Corners[] = {T(0), T(1), std::numeric_limits<T>::max(),
                       std::numeric_limits<T>::min(), D,
                       static_cast<T>(D + D)};
  for (size_t I = 0; I < sizeof(Corners) / sizeof(Corners[0]) && I < Count;
       ++I)
    In[I] = Corners[I];
  return In;
}

/// One (divisor, count) cell of the dispatch matrix: every public
/// operation against both the static kernels and a native-arithmetic
/// reference.
template <typename T> void checkCell(T D, size_t Count) {
  const jit::JitBatchDivider<T> Jit(D);
  const batch::BatchDivider<T> Static(D);
  EXPECT_EQ(Jit.divisor(), D);
  EXPECT_EQ(Jit.usesJit(), expectJitted<T>()) << Jit.describe();

  const std::vector<T> In = dividends(D, Count);
  std::vector<T> QJ(Count), RJ(Count), QS(Count), RS(Count);

  Jit.divRem(In.data(), QJ.data(), RJ.data(), Count);
  Static.divRem(In.data(), QS.data(), RS.data(), Count);
  for (size_t I = 0; I < Count; ++I) {
    ASSERT_EQ(QJ[I], QS[I]) << "divRem quot d=" << +D << " i=" << I;
    ASSERT_EQ(RJ[I], RS[I]) << "divRem rem d=" << +D << " i=" << I;
    // Native check, skipping the one UB cell (INT_MIN / -1 wraps in
    // both implementations, by the Oracle's overflow policy).
    if (std::is_signed<T>::value && D == static_cast<T>(-1) &&
        In[I] == std::numeric_limits<T>::min())
      continue;
    ASSERT_EQ(QJ[I], static_cast<T>(In[I] / D)) << "d=" << +D << " i=" << I;
    ASSERT_EQ(RJ[I], static_cast<T>(In[I] % D)) << "d=" << +D << " i=" << I;
  }

  Jit.divide(In.data(), QJ.data(), Count);
  Static.divide(In.data(), QS.data(), Count);
  ASSERT_EQ(QJ, QS) << "divide d=" << +D << " count=" << Count;

  Jit.remainder(In.data(), RJ.data(), Count);
  Static.remainder(In.data(), RS.data(), Count);
  ASSERT_EQ(RJ, RS) << "remainder d=" << +D << " count=" << Count;
}

/// The §9 filter cell, unsigned lane types only.
template <typename T> void checkDivisibleCell(T D, size_t Count) {
  const jit::JitBatchDivider<T> Jit(D);
  const batch::BatchDivider<T> Static(D);
  const std::vector<T> In = dividends(D, Count);
  std::vector<uint8_t> FJ(Count, 0xaa), FS(Count, 0x55);
  Jit.divisible(In.data(), FJ.data(), Count);
  Static.divisible(In.data(), FS.data(), Count);
  for (size_t I = 0; I < Count; ++I) {
    ASSERT_EQ(FJ[I], FS[I]) << "divisible d=" << +D << " i=" << I;
    ASSERT_EQ(FJ[I], In[I] % D == 0 ? 1 : 0) << "d=" << +D << " i=" << I;
  }
}

// Counts straddle the vector geometry: below one vector (pure tail),
// exactly one unrolled stride, and ragged sizes around both.
constexpr size_t Counts[] = {0, 1, 3, 7, 15, 16, 31, 32, 63, 64, 257, 1000};

TEST(JitBatchDivider, DispatchMatrixU32) {
  for (uint32_t D : {1u, 2u, 3u, 7u, 10u, 641u, 6700417u, 0x80000000u,
                     0xffffffffu})
    for (size_t Count : Counts)
      checkCell<uint32_t>(D, Count);
}

TEST(JitBatchDivider, DispatchMatrixI32) {
  for (int32_t D : {1, -1, 3, -3, 7, -7, 10, 641, INT32_MAX, INT32_MIN})
    for (size_t Count : Counts)
      checkCell<int32_t>(D, Count);
}

TEST(JitBatchDivider, DispatchMatrixU64) {
  for (uint64_t D : {uint64_t{1}, uint64_t{3}, uint64_t{7}, uint64_t{10},
                     uint64_t{1} << 32, uint64_t{0x100000001},
                     ~uint64_t{0}})
    for (size_t Count : Counts)
      checkCell<uint64_t>(D, Count);
}

TEST(JitBatchDivider, DispatchMatrixI64) {
  for (int64_t D : {int64_t{1}, int64_t{-1}, int64_t{7}, int64_t{-10},
                    int64_t{INT64_MAX}, int64_t{INT64_MIN}})
    for (size_t Count : Counts)
      checkCell<int64_t>(D, Count);
}

TEST(JitBatchDivider, DivisibleMatrix) {
  for (uint32_t D : {1u, 3u, 7u, 10u, 641u, 0x80000000u})
    for (size_t Count : Counts)
      checkDivisibleCell<uint32_t>(D, Count);
  for (uint64_t D : {uint64_t{7}, uint64_t{10}, uint64_t{0x100000001}})
    for (size_t Count : Counts)
      checkDivisibleCell<uint64_t>(D, Count);
}

TEST(JitBatchDivider, NarrowLaneTypesDelegateWholesale) {
  // 8/16-bit lanes have no 8/16-bit vector containers in the emitter;
  // the divider must be a transparent shim over the static kernels.
  const jit::JitBatchDivider<uint16_t> U16(7);
  EXPECT_FALSE(U16.usesJit());
  EXPECT_EQ(U16.lanes(), 0u);
  EXPECT_EQ(U16.compiledDivide(), nullptr);
  EXPECT_STREQ(U16.backend(), batch::backendName(U16.fallback().backend()));
  for (size_t Count : Counts)
    checkCell<uint16_t>(uint16_t{641}, Count);
  for (size_t Count : Counts)
    checkCell<int8_t>(int8_t{-7}, Count);
}

TEST(JitBatchDivider, BackendNameMatchesPath) {
  const jit::JitBatchDivider<uint32_t> Div(7);
  if (Div.usesJit()) {
    EXPECT_TRUE(std::string(Div.backend()).rfind("jit-", 0) == 0)
        << Div.backend();
    EXPECT_GT(Div.lanes(), 0u);
    EXPECT_NE(Div.compiledDivide(), nullptr);
    EXPECT_TRUE(Div.compiledDivide()->isVectorLoop());
  } else {
    EXPECT_EQ(Div.lanes(), 0u);
    EXPECT_EQ(Div.compiledDivide(), nullptr);
  }
  // describe() names the divisor and the backend either way.
  EXPECT_NE(Div.describe().find("n/u7"), std::string::npos)
      << Div.describe();
  EXPECT_NE(Div.describe().find(Div.backend()), std::string::npos)
      << Div.describe();
}

TEST(JitBatchDivider, ExactAliasingInPlace) {
  // In == Out exact aliasing is part of the contract (same as the
  // static kernels); the loop loads before it stores.
  const uint32_t D = 10;
  const jit::JitBatchDivider<uint32_t> Jit(D);
  std::vector<uint32_t> Buf = dividends<uint32_t>(D, 1000);
  const std::vector<uint32_t> Orig = Buf;
  Jit.divide(Buf.data(), Buf.data(), Buf.size());
  for (size_t I = 0; I < Buf.size(); ++I)
    ASSERT_EQ(Buf[I], Orig[I] / D) << "i=" << I;
}

TEST(JitBatchDivider, SecondConstructionIsAllCacheHits) {
  jit::VectorIsa Isa;
  if (!jit::vectorJitIsa(Isa))
    GTEST_SKIP() << "vector jit unavailable on this host/config";

  // A private cache isolates the counters from every other test.
  jit::CodeCache Cache(4, 64);
  const jit::JitBatchDivider<uint32_t> First(1234567, Cache);
  ASSERT_TRUE(First.usesJit());
  const jit::CacheStats After1 = Cache.formStats(cache::KernelForm::Vector);
  // div + rem + divRem + divisible, every one a fresh compile.
  EXPECT_EQ(After1.Misses, After1.Inserts);
  EXPECT_GE(After1.Inserts, 3u);
  EXPECT_EQ(After1.Hits, 0u);

  const jit::JitBatchDivider<uint32_t> Second(1234567, Cache);
  EXPECT_TRUE(Second.usesJit());
  const jit::CacheStats After2 = Cache.formStats(cache::KernelForm::Vector);
  // The headline property: no new compiles, no new executable mappings.
  EXPECT_EQ(After2.Inserts, After1.Inserts);
  EXPECT_EQ(After2.Misses, After1.Misses);
  EXPECT_EQ(After2.Hits, After1.Misses);
  // Same code, not merely equivalent code.
  EXPECT_EQ(Second.compiledDivide(), First.compiledDivide());

  // The scalar form's counters never moved: the two forms are split.
  const jit::CacheStats Scalar = Cache.formStats(cache::KernelForm::Scalar);
  EXPECT_EQ(Scalar.Hits + Scalar.Misses + Scalar.Inserts, 0u);
}

TEST(JitBatchDivider, SignedFloorCeilRouteToStaticKernels) {
  const jit::JitBatchDivider<int32_t> Jit(-7);
  const batch::BatchDivider<int32_t> Static(-7);
  const std::vector<int32_t> In = dividends<int32_t>(-7, 333);
  std::vector<int32_t> OutJ(In.size()), OutS(In.size());
  Jit.floorDivide(In.data(), OutJ.data(), In.size());
  Static.floorDivide(In.data(), OutS.data(), In.size());
  EXPECT_EQ(OutJ, OutS);
  Jit.ceilDivide(In.data(), OutJ.data(), In.size());
  Static.ceilDivide(In.data(), OutS.data(), In.size());
  EXPECT_EQ(OutJ, OutS);
}

} // namespace
