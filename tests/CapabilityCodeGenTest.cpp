//===- tests/CapabilityCodeGenTest.cpp - §3 MULUH/MULSH conversion --------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation for machines with only one multiply-high flavor —
/// the POWER/RIOS I case ("5 (signed only)" in Table 1.1). Every
/// division kind must still be exactly right when the missing
/// instruction is synthesized via the §3 identity.
///
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"

#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x1f4864d7d69ca4f3ull);
  return Generator;
}

int64_t signExtend(uint64_t Value, int Bits) {
  const uint64_t SignBit = uint64_t{1} << (Bits - 1);
  const uint64_t Mask =
      Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
  return static_cast<int64_t>(((Value & Mask) ^ SignBit) - SignBit);
}

void expectNoOpcode(const Program &P, Opcode Op) {
  for (const Instr &I : P.instrs())
    ASSERT_NE(I.Op, Op);
}

TEST(CapabilityCodeGen, UnsignedSignedOnlyExhaustive8) {
  GenOptions Power;
  Power.MulHigh = MulHighCapability::SignedOnly;
  for (uint32_t D = 1; D < 256; ++D) {
    const Program P = genUnsignedDiv(8, D, Power);
    expectNoOpcode(P, Opcode::MulUH);
    for (uint32_t N = 0; N < 256; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(CapabilityCodeGen, SignedUnsignedOnlyExhaustive8) {
  GenOptions UnsignedOnly;
  UnsignedOnly.MulHigh = MulHighCapability::UnsignedOnly;
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const Program P = genSignedDiv(8, D, UnsignedOnly);
    expectNoOpcode(P, Opcode::MulSH);
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue;
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xff})[0];
      ASSERT_EQ(signExtend(Raw, 8), N / D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(CapabilityCodeGen, FloorSignedOnlyExhaustive8) {
  GenOptions Power;
  Power.MulHigh = MulHighCapability::SignedOnly;
  for (int D = 1; D < 128; ++D) {
    const Program P = genFloorDiv(8, D, Power);
    expectNoOpcode(P, Opcode::MulUH);
    for (int N = -128; N < 128; ++N) {
      const uint64_t Raw = run(P, {static_cast<uint64_t>(N) & 0xff})[0];
      int64_t Expected = N / D;
      if (N % D != 0 && N < 0)
        --Expected;
      ASSERT_EQ(signExtend(Raw, 8), Expected) << "n=" << N << " d=" << D;
    }
  }
}

TEST(CapabilityCodeGen, UnsignedSignedOnlyGallery16) {
  GenOptions Power;
  Power.MulHigh = MulHighCapability::SignedOnly;
  for (uint32_t D : {3u, 7u, 10u, 14u, 641u, 32769u, 65535u}) {
    const Program P = genUnsignedDiv(16, D, Power);
    expectNoOpcode(P, Opcode::MulUH);
    for (uint32_t N = 0; N <= 0xffff; ++N)
      ASSERT_EQ(run(P, {N})[0], N / D) << "n=" << N << " d=" << D;
  }
}

TEST(CapabilityCodeGen, Random32And64BothDirections) {
  for (int Bits : {32, 64}) {
    const uint64_t Mask =
        Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
    for (int I = 0; I < 200; ++I) {
      uint64_t D = (rng()() >> (rng()() % Bits)) & Mask;
      if (D == 0)
        D = 3;
      GenOptions Power;
      Power.MulHigh = MulHighCapability::SignedOnly;
      const Program PU = genUnsignedDiv(Bits, D, Power);
      GenOptions UOnly;
      UOnly.MulHigh = MulHighCapability::UnsignedOnly;
      const int64_t SD = signExtend(D, Bits) == 0
                             ? 3
                             : signExtend(D, Bits);
      const Program PS = genSignedDiv(Bits, SD, UOnly);
      for (int J = 0; J < 50; ++J) {
        const uint64_t N = rng()() & Mask;
        ASSERT_EQ(run(PU, {N})[0], N / D)
            << "bits=" << Bits << " n=" << N << " d=" << D;
        const int64_t SN = signExtend(N, Bits);
        if (SN == signExtend(uint64_t{1} << (Bits - 1), Bits) && SD == -1)
          continue;
        ASSERT_EQ(signExtend(run(PS, {N})[0], Bits), SN / SD)
            << "bits=" << Bits << " n=" << SN << " d=" << SD;
      }
    }
  }
}

TEST(CapabilityCodeGen, IdentityEmittersMatchDirectOpcodes) {
  // emitMulUHCapability/emitMulSHCapability against the direct opcode,
  // over random operands at every width.
  for (int Bits : {8, 16, 32, 64}) {
    const uint64_t Mask =
        Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
    Builder Direct(Bits, 2), ViaIdentity(Bits, 2);
    {
      const int X = Direct.arg(0), Y = Direct.arg(1);
      Direct.markResult(Direct.mulUH(X, Y), "uh");
      Direct.markResult(Direct.mulSH(X, Y), "sh");
    }
    {
      const int X = ViaIdentity.arg(0), Y = ViaIdentity.arg(1);
      ViaIdentity.markResult(
          emitMulUHCapability(ViaIdentity, X, Y,
                              MulHighCapability::SignedOnly),
          "uh");
      ViaIdentity.markResult(
          emitMulSHCapability(ViaIdentity, X, Y,
                              MulHighCapability::UnsignedOnly),
          "sh");
    }
    const Program PDirect = Direct.take();
    const Program PIdentity = ViaIdentity.take();
    for (int J = 0; J < 2000; ++J) {
      const std::vector<uint64_t> Args = {rng()() & Mask, rng()() & Mask};
      ASSERT_EQ(run(PDirect, Args), run(PIdentity, Args))
          << "bits=" << Bits;
    }
  }
}

TEST(CapabilityCodeGen, CostOfIdentityIsThreeExtraOps) {
  // §3's identity costs two ANDs + two XSIGNs + two adds in general;
  // with a constant multiplier of known sign at most 3 extra simple ops.
  const Program Plain = genUnsignedDiv(32, 10);
  GenOptions Power;
  Power.MulHigh = MulHighCapability::SignedOnly;
  const Program Synth = genUnsignedDiv(32, 10, Power);
  EXPECT_LE(Synth.operationCount(), Plain.operationCount() + 4);
}

} // namespace
