//===- tests/MultiPrecisionTest.cpp - §8 applied API tests ----------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/MultiPrecision.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::multiprecision;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x5ad4f10ce2b98d37ull);
  return Generator;
}

TEST(MultiPrecision, DecimalMatchesUInt128Formatting) {
  for (int I = 0; I < 5000; ++I) {
    const UInt128 Value = UInt128::fromHalves(rng()(), rng()());
    const std::vector<uint64_t> Limbs = {Value.low64(), Value.high64()};
    ASSERT_EQ(toDecimalString(Limbs), Value.toString());
  }
  EXPECT_EQ(toDecimalString({}), "0");
  EXPECT_EQ(toDecimalString({0, 0, 0}), "0");
  EXPECT_EQ(toDecimalString({1}), "1");
  EXPECT_EQ(toDecimalString({10000000000000000000ull}),
            "10000000000000000000");
  EXPECT_EQ(toDecimalString({0, 1}), "18446744073709551616"); // 2^64.
}

TEST(MultiPrecision, RoundTripThroughStrings) {
  for (int I = 0; I < 2000; ++I) {
    const int LimbCount = 1 + static_cast<int>(rng()() % 8);
    std::vector<uint64_t> Limbs;
    for (int L = 0; L < LimbCount; ++L)
      Limbs.push_back(rng()());
    const std::string Text = toDecimalString(Limbs);
    const std::vector<uint64_t> Parsed = fromDecimalString(Text);
    // Compare after trimming leading-zero limbs.
    std::vector<uint64_t> Trimmed = Limbs;
    while (!Trimmed.empty() && Trimmed.back() == 0)
      Trimmed.pop_back();
    ASSERT_EQ(Parsed, Trimmed) << Text;
  }
  EXPECT_TRUE(fromDecimalString("0").empty());
  EXPECT_EQ(fromDecimalString("340282366920938463463374607431768211456"),
            (std::vector<uint64_t>{0, 0, 1})); // 2^128.
}

TEST(MultiPrecision, DivModAgainstUInt128) {
  for (int I = 0; I < 5000; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 7;
    const DWordDivider<uint64_t> ByD(D);
    const UInt128 Value = UInt128::fromHalves(rng()(), rng()());
    std::vector<uint64_t> Limbs = {Value.low64(), Value.high64()};
    const uint64_t Remainder = divModInPlace(Limbs, ByD);
    auto [RefQ, RefR] = UInt128::divMod(Value, UInt128(D));
    ASSERT_EQ(Remainder, RefR.low64()) << "d=" << D;
    ASSERT_EQ(Limbs[0], RefQ.low64()) << "d=" << D;
    ASSERT_EQ(Limbs[1], RefQ.high64()) << "d=" << D;
  }
}

TEST(MultiPrecision, ModWithoutMutation) {
  const DWordDivider<uint64_t> By97(97);
  const std::vector<uint64_t> Limbs = {0x0123456789abcdefull,
                                       0xfedcba9876543210ull,
                                       0xdeadbeefcafebabeull};
  const std::vector<uint64_t> Copy = Limbs;
  const uint64_t Remainder = mod(Limbs, By97);
  EXPECT_EQ(Limbs, Copy);
  // Cross-check against repeated in-place division.
  std::vector<uint64_t> Scratch = Copy;
  EXPECT_EQ(divModInPlace(Scratch, By97), Remainder);
}

TEST(MultiPrecision, KnownBigFactorial) {
  // 40! = 815915283247897734345611269596115894272000000000 — built by
  // repeated mulAdd, rendered by repeated Figure 8.1 division.
  std::vector<uint64_t> Limbs = {1};
  for (uint64_t K = 2; K <= 40; ++K)
    mulAddInPlace(Limbs, K, 0);
  EXPECT_EQ(toDecimalString(Limbs),
            "815915283247897734345611269596115894272000000000");
  // And 40! mod 1e9+7, cross-checked by modular reduction step by step.
  const DWordDivider<uint64_t> ByPrime(1000000007ull);
  uint64_t Expected = 1;
  for (uint64_t K = 2; K <= 40; ++K)
    Expected = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Expected) * K) % 1000000007ull);
  EXPECT_EQ(mod(Limbs, ByPrime), Expected);
}

TEST(MultiPrecision, LargeValueStress) {
  // A 4096-bit value: 64 limbs; divide down to zero by 10^19, counting
  // digits, and compare the digit count against the round trip.
  std::vector<uint64_t> Limbs(64);
  for (uint64_t &Limb : Limbs)
    Limb = rng()() | 1;
  const std::string Text = toDecimalString(Limbs);
  EXPECT_GT(Text.size(), 1200u); // 4096 bits ~ 1233 decimal digits.
  EXPECT_EQ(fromDecimalString(Text), Limbs);
}

} // namespace
