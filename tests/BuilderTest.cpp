//===- tests/BuilderTest.cpp - Builder folding and CSE tests --------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

TEST(Builder, ObviousSimplificationsFromSection3) {
  // §3: "Some algorithms may produce expressions such as SRL(x, 0) or
  // (x - 0); the optimizer should make the obvious simplifications."
  Builder B(32, 1);
  const int N = B.arg(0);
  EXPECT_EQ(B.srl(N, 0), N);
  EXPECT_EQ(B.sll(N, 0), N);
  EXPECT_EQ(B.sra(N, 0), N);
  EXPECT_EQ(B.ror(N, 0), N);
  EXPECT_EQ(B.sub(N, B.constant(0)), N);
  EXPECT_EQ(B.add(N, B.constant(0)), N);
  EXPECT_EQ(B.add(B.constant(0), N), N);
  EXPECT_EQ(B.eor(N, B.constant(0)), N);
  EXPECT_EQ(B.or_(N, B.constant(0)), N);
  EXPECT_EQ(B.mulL(N, B.constant(1)), N);
}

TEST(Builder, ConstantFolding) {
  Builder B(32, 0);
  const int Six = B.constant(6);
  const int Seven = B.constant(7);
  const int Sum = B.add(Six, Seven);
  EXPECT_EQ(B.program().instr(Sum).Op, Opcode::Const);
  EXPECT_EQ(B.program().instr(Sum).Imm, 13u);
  const int Product = B.mulL(Six, Seven);
  EXPECT_EQ(B.program().instr(Product).Imm, 42u);
  // Folding respects the word width.
  Builder B8(8, 0);
  const int Wrapped = B8.mulL(B8.constant(16), B8.constant(17));
  EXPECT_EQ(B8.program().instr(Wrapped).Imm, (16 * 17) & 0xff);
}

TEST(Builder, ZeroAbsorption) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Zero = B.constant(0);
  EXPECT_EQ(B.program().instr(B.mulL(N, Zero)).Imm, 0u);
  EXPECT_EQ(B.program().instr(B.and_(N, Zero)).Imm, 0u);
  EXPECT_EQ(B.program().instr(B.sub(N, N)).Imm, 0u);
  // MULUH by 0 or 1 is 0.
  EXPECT_EQ(B.program().instr(B.mulUH(N, Zero)).Imm, 0u);
  EXPECT_EQ(B.program().instr(B.mulUH(N, B.constant(1))).Imm, 0u);
}

TEST(Builder, AndWithAllOnesIsIdentity) {
  Builder B(16, 1);
  const int N = B.arg(0);
  EXPECT_EQ(B.and_(N, B.constant(0xffff)), N);
}

TEST(Builder, CommonSubexpressionElimination) {
  // The paper's Table 11.1 notes GCC's CSE shares the quotient between
  // quotient and remainder; our builder must do the same.
  Builder B(32, 1);
  const int N = B.arg(0);
  const int M = B.constant(0xcccccccd);
  const int First = B.mulUH(M, N);
  const int Second = B.mulUH(M, N);
  EXPECT_EQ(First, Second);
  // Commutative canonicalization: operand order must not defeat CSE.
  const int Third = B.mulUH(N, M);
  EXPECT_EQ(First, Third);
  const int Shift1 = B.srl(First, 3);
  const int Shift2 = B.srl(First, 3);
  EXPECT_EQ(Shift1, Shift2);
  // Different immediates stay distinct.
  EXPECT_NE(B.srl(First, 2), Shift1);
}

TEST(Builder, ConstantsAreDeduplicated) {
  Builder B(32, 0);
  EXPECT_EQ(B.constant(42), B.constant(42));
  EXPECT_NE(B.constant(42), B.constant(43));
  // Constants are masked to the word width before dedup.
  Builder B8(8, 0);
  EXPECT_EQ(B8.constant(0x1ff), B8.constant(0xff));
}

TEST(Builder, SubFromZeroBecomesNeg) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Negated = B.sub(B.constant(0), N);
  EXPECT_EQ(B.program().instr(Negated).Op, Opcode::Neg);
}

TEST(Builder, FoldedProgramStillEvaluatesCorrectly) {
  // Build a small expression with foldable parts and confirm semantics.
  Builder B(32, 2);
  const int X = B.arg(0);
  const int Y = B.arg(1);
  const int Expr =
      B.add(B.mulL(X, B.constant(1)), B.sub(Y, B.constant(0)));
  B.markResult(Expr, "sum");
  const Program P = B.take();
  EXPECT_EQ(run(P, {123, 456})[0], 579u);
}

} // namespace
