//===- tests/PipelineCostTest.cpp - Critical path & register pressure -----===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pipelined cost model (Table 1.1's 'P' footnote:
/// "independent instructions can execute simultaneously") and the
/// register-pressure accounting §8 does by hand.
///
//===----------------------------------------------------------------------===//

#include "arch/CostModel.h"

#include "codegen/DivCodeGen.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace gmdiv;
using namespace gmdiv::arch;

namespace {

TEST(PipelineCost, PipelinedFlagMatchesFootnotes) {
  EXPECT_TRUE(profileByName("MIPS R3000").isPipelined());
  EXPECT_TRUE(profileByName("MIPS R4000").isPipelined());
  EXPECT_TRUE(profileByName("DEC Alpha 21064").isPipelined());
  EXPECT_TRUE(profileByName("Motorola MC88110").isPipelined());
  EXPECT_FALSE(profileByName("Intel Pentium").isPipelined());
  EXPECT_FALSE(profileByName("Motorola MC68020").isPipelined());
}

TEST(PipelineCost, CriticalPathOfChainEqualsSum) {
  // A pure dependence chain has no parallelism: both estimates agree.
  ir::Builder B(32, 1);
  int V = B.arg(0);
  for (int I = 0; I < 5; ++I)
    V = B.add(V, B.constant(static_cast<uint64_t>(I + 1)));
  B.markResult(V);
  const ir::Program P = B.take();
  const ArchProfile &R3000 = profileByName("MIPS R3000");
  EXPECT_EQ(estimateCriticalPathCycles(P, R3000),
            estimateCost(P, R3000).Cycles);
}

TEST(PipelineCost, IndependentOperationsOverlap) {
  // Two independent multiplies then one add: serial cost 2*mul+1,
  // critical path mul+1.
  ir::Builder B(32, 2);
  const int X = B.arg(0);
  const int Y = B.arg(1);
  const int MX = B.mulUH(X, B.constant(0x55555555));
  const int MY = B.mulUH(Y, B.constant(0x33333333));
  B.markResult(B.add(MX, MY));
  const ir::Program P = B.take();
  const ArchProfile &R3000 = profileByName("MIPS R3000"); // mul = 12.
  EXPECT_EQ(estimateCost(P, R3000).Cycles, 2 * 12 + 1);
  EXPECT_EQ(estimateCriticalPathCycles(P, R3000), 12 + 1);
  EXPECT_EQ(estimateEffectiveCycles(P, R3000), 12 + 1);
  // A non-pipelined machine pays the serial sum.
  const ArchProfile &MC68020 = profileByName("Motorola MC68020");
  EXPECT_EQ(estimateEffectiveCycles(P, MC68020),
            estimateCost(P, MC68020).Cycles);
}

TEST(PipelineCost, DivRemOverlapsOnPipelinedMachines) {
  // In the radix-conversion body the remainder multiply depends on the
  // quotient, but the final subtract's other operand (n) is free, so
  // the critical path is shorter than the serial sum on 'P' machines.
  const ir::Program P = codegen::genUnsignedDivRem(32, 10);
  const ArchProfile &R3000 = profileByName("MIPS R3000");
  EXPECT_LT(estimateCriticalPathCycles(P, R3000),
            estimateCost(P, R3000).Cycles + 1);
  EXPECT_GT(estimateCriticalPathCycles(P, R3000), 2 * 12.0 - 1);
}

TEST(PipelineCost, AlphaExpansionCriticalPath) {
  // The shift/add expansion is a mostly serial chain; its critical path
  // must still beat the 200-cycle software divide by a wide margin.
  codegen::GenOptions Options;
  Options.ExpandMulBelowCycles = 23;
  const ir::Program P = codegen::genUnsignedDivRemWide(32, 64, 10, Options);
  const ArchProfile &Alpha = profileByName("DEC Alpha 21064");
  const double Path = estimateCriticalPathCycles(P, Alpha);
  EXPECT_LT(Path, 2 * Alpha.divCycles() / 10);
  EXPECT_GT(Path, 5);
}

TEST(PipelineCost, RegisterPressureSmallForDividerSequences) {
  // Figure 4.1's quotient sequence needs only a handful of live values;
  // the paper's §8 kernel quotes five registers of precomputed state.
  const ir::Program Simple = codegen::genUnsignedDiv(32, 10);
  EXPECT_LE(registerPressure(Simple), 4);
  const ir::Program Long = codegen::genUnsignedDiv(32, 7);
  EXPECT_LE(registerPressure(Long), 5);
  const ir::Program DivRem = codegen::genUnsignedDivRem(32, 10);
  EXPECT_LE(registerPressure(DivRem), 6);
}

TEST(PipelineCost, RegisterPressureCountsOverlap) {
  // Three values alive at once.
  ir::Builder B(32, 2);
  const int X = B.arg(0);
  const int Y = B.arg(1);
  const int Sum = B.add(X, Y);
  const int Diff = B.sub(X, Y);
  const int Mix = B.eor(Sum, Diff);
  B.markResult(B.add(Mix, X));
  const ir::Program P = B.take();
  EXPECT_GE(registerPressure(P), 3);
  EXPECT_LE(registerPressure(P), 5);
}

} // namespace
