//===- tests/InterpTest.cpp - IR interpreter tests ------------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/Builder.h"
#include "ops/Ops.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xd1310ba698dfb5acull);
  return Generator;
}

/// evalOp must agree with the ops/ layer primitives at every width.
template <typename UWord> void checkEvalOpAgainstOps(int Iterations) {
  using T = WordTraits<UWord>;
  using SWord = typename T::SWord;
  constexpr int Bits = T::Bits;
  for (int I = 0; I < Iterations; ++I) {
    const UWord A = static_cast<UWord>(rng()());
    const UWord B = static_cast<UWord>(rng()());
    const int Sh = static_cast<int>(rng()() % Bits);
    const uint64_t A64 = static_cast<uint64_t>(A);
    const uint64_t B64 = static_cast<uint64_t>(B);
    EXPECT_EQ(evalOp(Opcode::Add, Bits, A64, B64, 0),
              static_cast<uint64_t>(static_cast<UWord>(A + B)));
    EXPECT_EQ(evalOp(Opcode::Sub, Bits, A64, B64, 0),
              static_cast<uint64_t>(static_cast<UWord>(A - B)));
    EXPECT_EQ(evalOp(Opcode::MulL, Bits, A64, B64, 0),
              static_cast<uint64_t>(mulL(A, B)));
    EXPECT_EQ(evalOp(Opcode::MulUH, Bits, A64, B64, 0),
              static_cast<uint64_t>(mulUH(A, B)));
    EXPECT_EQ(evalOp(Opcode::MulSH, Bits, A64, B64, 0),
              static_cast<uint64_t>(static_cast<UWord>(
                  mulSH(static_cast<SWord>(A), static_cast<SWord>(B)))));
    EXPECT_EQ(evalOp(Opcode::Srl, Bits, A64, 0, Sh),
              static_cast<uint64_t>(srl(A, Sh)));
    EXPECT_EQ(evalOp(Opcode::Sll, Bits, A64, 0, Sh),
              static_cast<uint64_t>(sll(A, Sh)));
    EXPECT_EQ(evalOp(Opcode::Sra, Bits, A64, 0, Sh),
              static_cast<uint64_t>(
                  static_cast<UWord>(sra(static_cast<SWord>(A), Sh))));
    EXPECT_EQ(evalOp(Opcode::Xsign, Bits, A64, 0, 0),
              static_cast<uint64_t>(
                  static_cast<UWord>(xsign(static_cast<SWord>(A)))));
    EXPECT_EQ(evalOp(Opcode::Not, Bits, A64, 0, 0),
              static_cast<uint64_t>(static_cast<UWord>(~A)));
    EXPECT_EQ(evalOp(Opcode::SltU, Bits, A64, B64, 0), A < B ? 1u : 0u);
    EXPECT_EQ(evalOp(Opcode::SltS, Bits, A64, B64, 0),
              static_cast<SWord>(A) < static_cast<SWord>(B) ? 1u : 0u);
    // Rotate: double rotation by Sh and Bits-Sh is the identity.
    const uint64_t Once = evalOp(Opcode::Ror, Bits, A64, 0, Sh);
    const uint64_t Back =
        evalOp(Opcode::Ror, Bits, Once, 0, (Bits - Sh) % Bits);
    EXPECT_EQ(Back, A64 & (Bits == 64 ? ~uint64_t{0}
                                      : (uint64_t{1} << Bits) - 1));
  }
}

TEST(Interp, EvalOpMatchesOps8) { checkEvalOpAgainstOps<uint8_t>(3000); }
TEST(Interp, EvalOpMatchesOps16) { checkEvalOpAgainstOps<uint16_t>(3000); }
TEST(Interp, EvalOpMatchesOps32) { checkEvalOpAgainstOps<uint32_t>(3000); }
TEST(Interp, EvalOpMatchesOps64) { checkEvalOpAgainstOps<uint64_t>(3000); }

TEST(Interp, RunsWholeProgram) {
  // q = (n * 3) >> 1 at 16 bits.
  Builder B(16, 1);
  const int N = B.arg(0);
  const int Tripled = B.add(B.sll(N, 1), N);
  B.markResult(B.srl(Tripled, 1), "q");
  const Program P = B.take();
  EXPECT_EQ(run(P, {10})[0], 15u);
  EXPECT_EQ(run(P, {0xffff})[0], ((0xffffu * 3) & 0xffffu) >> 1);
}

TEST(Interp, ArgsMaskedToWidth) {
  Builder B(8, 1);
  const int N = B.arg(0);
  B.markResult(N, "n");
  const Program P = B.take();
  EXPECT_EQ(run(P, {0x1ff})[0], 0xffu);
}

TEST(Interp, RunValueInspectsIntermediates) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Doubled = B.sll(N, 1);
  const int Result = B.add(Doubled, B.constant(5));
  B.markResult(Result, "r");
  const Program P = B.take();
  EXPECT_EQ(runValue(P, {21}, Doubled), 42u);
  EXPECT_EQ(runValue(P, {21}, Result), 47u);
}

TEST(Interp, MultipleResultsInOrder) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Q = B.srl(N, 2);
  const int R = B.and_(N, B.constant(3));
  B.markResult(Q, "q");
  B.markResult(R, "r");
  const Program P = B.take();
  const std::vector<uint64_t> Results = run(P, {30});
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[0], 7u);
  EXPECT_EQ(Results[1], 2u);
}

} // namespace
