//===- tests/TraceTest.cpp - Spans, ring buffer, Chrome export ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "trace/HwCounters.h"

#include "telemetry/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

using namespace gmdiv;
using namespace gmdiv::trace;

namespace {

/// Every test runs with a clean, enabled trace and leaves it disabled;
/// the suite shares one process-global ring registry.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    clear();
    setEnabled(true);
  }
  void TearDown() override {
    setEnabled(false);
    clear();
  }
};

/// All surviving events across threads, oldest first per thread.
std::vector<TraceEvent> allEvents() {
  std::vector<TraceEvent> Out;
  for (const ThreadSnapshot &T : snapshot())
    Out.insert(Out.end(), T.Events.begin(), T.Events.end());
  return Out;
}

// The Span class is always live; the GMDIV_TRACE_SPAN macro compiles
// out under GMDIV_NO_TELEMETRY. Library-behavior tests drive Span
// directly so they hold in both configurations; the macro's own
// contract is pinned in MacroMatchesBuildConfiguration.

TEST_F(TraceTest, SpanRecordsOneEventWithTiming) {
  { Span S("test", "unit-span", 42); }
  const std::vector<TraceEvent> Events = allEvents();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Category, "test");
  EXPECT_STREQ(Events[0].Name, "unit-span");
  EXPECT_EQ(Events[0].Arg, 42u);
  EXPECT_EQ(Events[0].Depth, 0u);
}

TEST_F(TraceTest, DropCountsTrackPerThreadWraparound) {
  // Fewer spans than the ring holds: nothing dropped.
  for (int I = 0; I < 10; ++I) {
    Span S("test", "underfill");
  }
  std::vector<ThreadDropCounts> Counts = dropCounts();
  uint64_t Recorded = 0, Dropped = 0;
  for (const ThreadDropCounts &C : Counts) {
    Recorded += C.Recorded;
    Dropped += C.Dropped;
  }
  EXPECT_EQ(Recorded, 10u);
  EXPECT_EQ(Dropped, 0u);

  // Overfill the ring: the per-thread row must show the loss, and the
  // totals must agree with droppedEvents() (the metrics plane exposes
  // these rows as gmdiv_trace_{recorded,dropped}_spans_total{thread=}).
  const uint64_t Total = RingCapacity + 100;
  for (uint64_t I = 10; I < Total; ++I) {
    Span S("test", "overfill");
  }
  Counts = dropCounts();
  Recorded = Dropped = 0;
  for (const ThreadDropCounts &C : Counts) {
    Recorded += C.Recorded;
    Dropped += C.Dropped;
  }
  EXPECT_EQ(Recorded, Total);
  EXPECT_GT(Dropped, 0u);
  EXPECT_EQ(Dropped, droppedEvents());
  // What survived plus what dropped is everything recorded.
  uint64_t Survived = 0;
  for (const ThreadSnapshot &T : snapshot())
    Survived += T.Events.size();
  EXPECT_EQ(Survived + Dropped, Recorded);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    Span Outer("test", "outer");
    {
      Span Middle("test", "middle");
      { Span Inner("test", "inner"); }
    }
  }
  std::vector<TraceEvent> Events = allEvents();
  ASSERT_EQ(Events.size(), 3u);
  // Spans close innermost-first.
  EXPECT_STREQ(Events[0].Name, "inner");
  EXPECT_STREQ(Events[1].Name, "middle");
  EXPECT_STREQ(Events[2].Name, "outer");
  EXPECT_EQ(Events[0].Depth, 2u);
  EXPECT_EQ(Events[1].Depth, 1u);
  EXPECT_EQ(Events[2].Depth, 0u);
  // Containment: each parent starts no later and ends no earlier.
  for (int I = 0; I < 2; ++I) {
    EXPECT_LE(Events[I + 1].StartNs, Events[I].StartNs);
    EXPECT_GE(Events[I + 1].StartNs + Events[I + 1].DurNs,
              Events[I].StartNs + Events[I].DurNs);
  }
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  setEnabled(false);
  { Span S("test", "while-disabled"); }
  EXPECT_TRUE(allEvents().empty());
}

TEST_F(TraceTest, SpanOpenAcrossEnableStaysInert) {
  setEnabled(false);
  {
    Span S("test", "straddles-enable");
    setEnabled(true);
  }
  // A span constructed while disabled never sampled a start time, so it
  // must not fabricate an event on close.
  EXPECT_TRUE(allEvents().empty());
}

TEST_F(TraceTest, MacroMatchesBuildConfiguration) {
  { GMDIV_TRACE_SPAN("test", "via-macro", 1); }
#ifdef GMDIV_NO_TELEMETRY
  // The macro compiles out entirely; only direct Span use records.
  EXPECT_TRUE(allEvents().empty());
#else
  const std::vector<TraceEvent> Events = allEvents();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "via-macro");
#endif
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDrops) {
  const size_t Total = RingCapacity + 100;
  for (size_t I = 0; I < Total; ++I) {
    Span S("test", "wrap", I);
  }
  const std::vector<ThreadSnapshot> Threads = snapshot();
  // Only this test's thread recorded since clear().
  uint64_t Recorded = 0, Dropped = 0;
  std::vector<TraceEvent> Events;
  for (const ThreadSnapshot &T : Threads) {
    if (T.Events.empty())
      continue;
    Recorded += T.Recorded;
    Dropped += T.Dropped;
    Events.insert(Events.end(), T.Events.begin(), T.Events.end());
  }
  EXPECT_EQ(Recorded, Total);
  // The drop count includes the one slot sacrificed as a safety margin
  // against the write frontier: Recorded - survivors.
  EXPECT_EQ(Dropped, Total - (RingCapacity - 1));
  EXPECT_EQ(droppedEvents(), Total - (RingCapacity - 1));
  // The survivors are the newest events, oldest first, with one extra
  // slot sacrificed to stay clear of the write frontier.
  ASSERT_EQ(Events.size(), RingCapacity - 1);
  EXPECT_EQ(Events.front().Arg, Total - (RingCapacity - 1));
  EXPECT_EQ(Events.back().Arg, Total - 1);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Arg, Events[I - 1].Arg + 1);
}

TEST_F(TraceTest, ThreadsGetDistinctLanes) {
  { Span S("test", "main-thread"); }
  std::thread Worker([] { Span S("test", "worker-thread"); });
  Worker.join();
  const std::vector<ThreadSnapshot> Threads = snapshot();
  uint32_t MainLane = 0, WorkerLane = 0;
  bool SawMain = false, SawWorker = false;
  for (const ThreadSnapshot &T : Threads)
    for (const TraceEvent &E : T.Events) {
      if (std::string(E.Name) == "main-thread") {
        MainLane = T.ThreadId;
        SawMain = true;
      }
      if (std::string(E.Name) == "worker-thread") {
        WorkerLane = T.ThreadId;
        SawWorker = true;
      }
    }
  ASSERT_TRUE(SawMain);
  ASSERT_TRUE(SawWorker); // The exited thread's ring must survive it.
  EXPECT_NE(MainLane, WorkerLane);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  {
    Span Outer("verify", "outer", 8);
    Span Inner("verify", "inner");
  }
  const std::string Doc = chromeTraceJson();
  ASSERT_TRUE(telemetry::json::isValid(Doc)) << Doc;
  telemetry::json::Value Root;
  ASSERT_TRUE(telemetry::json::parse(Doc, Root));
  const telemetry::json::Value *Events = Root.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->array().size(), 2u);
  for (const telemetry::json::Value &E : Events->array()) {
    EXPECT_EQ(E.find("ph")->asString(), "X");
    EXPECT_EQ(E.find("cat")->asString(), "verify");
    EXPECT_GE(E.find("dur")->asNumber(), 0.0);
    ASSERT_NE(E.find("args"), nullptr);
    EXPECT_NE(E.find("args")->find("depth"), nullptr);
  }
  const telemetry::json::Value *Other = Root.find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Other->numberOr("events_recorded", -1), 2.0);
  EXPECT_EQ(Other->numberOr("events_dropped", -1), 0.0);
}

TEST_F(TraceTest, WriteChromeTraceReportsUnwritablePath) {
  std::string Error;
  EXPECT_FALSE(writeChromeTrace("/nonexistent-dir/trace.json", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(TraceTest, ClearResetsCountsAndEvents) {
  { GMDIV_TRACE_SPAN("test", "before-clear"); }
  clear();
  EXPECT_TRUE(allEvents().empty());
  EXPECT_EQ(droppedEvents(), 0u);
}

TEST(HwCountersTest, UnavailableFacadeIsSafeToDrive) {
  // In containers and on non-Linux hosts perf_event_open is denied; the
  // facade must degrade to a no-op with a reason, not crash or lie.
  HwCounters Hw;
  if (!Hw.available()) {
    EXPECT_FALSE(Hw.unavailableReason().empty());
    Hw.start(); // Must be harmless.
    const CounterSample Sample = Hw.read();
    EXPECT_FALSE(Sample.Valid);
    EXPECT_EQ(Sample.Cycles, 0u);
    EXPECT_EQ(Sample.ipc(), 0.0);
    Hw.stop();
    return;
  }
  // With perf access, cycles accumulate across start/stop.
  Hw.start();
  volatile uint64_t Sink = 1;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink * 3 + 1;
  Hw.stop();
  const CounterSample Sample = Hw.read();
  EXPECT_TRUE(Sample.Valid);
  EXPECT_TRUE(Sample.HasCycles);
  EXPECT_GT(Sample.Cycles, 0u);
}

TEST(HwCountersTest, SampleSubtractionIsComponentWise) {
  CounterSample A, B;
  A.Valid = B.Valid = true;
  A.HasCycles = B.HasCycles = true;
  A.HasInstructions = B.HasInstructions = true;
  A.Cycles = 100;
  B.Cycles = 250;
  A.Instructions = 500;
  B.Instructions = 900;
  const CounterSample Delta = B - A;
  EXPECT_EQ(Delta.Cycles, 150u);
  EXPECT_EQ(Delta.Instructions, 400u);
  EXPECT_DOUBLE_EQ(Delta.ipc(), 400.0 / 150.0);
}

} // namespace
