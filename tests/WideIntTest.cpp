//===- tests/WideIntTest.cpp - UInt128/Int128 unit tests ------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "wideint/Int128.h"
#include "wideint/UInt128.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace gmdiv;

namespace {

#ifdef __SIZEOF_INT128__
using NativeU128 = unsigned __int128;

NativeU128 toNative(UInt128 Value) {
  return (static_cast<NativeU128>(Value.high64()) << 64) | Value.low64();
}

#endif

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x9e3779b97f4a7c15ull);
  return Generator;
}

/// Random 128-bit value with a random bit-length so small and large limbs
/// both get exercised.
UInt128 randomU128() {
  std::uniform_int_distribution<int> LenDist(0, 128);
  const int Len = LenDist(rng());
  if (Len == 0)
    return UInt128(0);
  UInt128 Value = UInt128::fromHalves(rng()(), rng()());
  if (Len < 128)
    Value = Value & (UInt128::pow2(Len) - UInt128(1));
  // Force the top bit of the chosen length half the time.
  if (Len > 0 && (rng()() & 1))
    Value = Value | UInt128::pow2(Len - 1);
  return Value;
}

TEST(UInt128, BasicConstructionAndAccessors) {
  const UInt128 Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.low64(), 0u);
  EXPECT_EQ(Zero.high64(), 0u);

  const UInt128 Small(42);
  EXPECT_TRUE(Small.fitsIn64());
  EXPECT_EQ(Small.low64(), 42u);

  const UInt128 Split = UInt128::fromHalves(7, 9);
  EXPECT_FALSE(Split.fitsIn64());
  EXPECT_EQ(Split.high64(), 7u);
  EXPECT_EQ(Split.low64(), 9u);
}

TEST(UInt128, Pow2AndBit) {
  for (int Exp = 0; Exp < 128; ++Exp) {
    const UInt128 Value = UInt128::pow2(Exp);
    for (int Bit = 0; Bit < 128; ++Bit)
      EXPECT_EQ(Value.bit(Bit), Bit == Exp) << "exp=" << Exp;
    EXPECT_EQ(Value.countLeadingZeros(), 127 - Exp);
    EXPECT_EQ(Value.countTrailingZeros(), Exp);
    EXPECT_EQ(Value.bitLength(), Exp + 1);
  }
  EXPECT_EQ(UInt128(0).countLeadingZeros(), 128);
  EXPECT_EQ(UInt128(0).countTrailingZeros(), 128);
  EXPECT_EQ(UInt128(0).bitLength(), 0);
}

TEST(UInt128, AdditionCarriesAcrossHalves) {
  const UInt128 AllLow = UInt128::fromHalves(0, ~uint64_t{0});
  const UInt128 Sum = AllLow + UInt128(1);
  EXPECT_EQ(Sum.high64(), 1u);
  EXPECT_EQ(Sum.low64(), 0u);
  EXPECT_EQ(Sum - UInt128(1), AllLow);
  // Wrap-around at 2^128.
  EXPECT_TRUE((UInt128::max() + UInt128(1)).isZero());
}

TEST(UInt128, ShiftEdgeCases) {
  const UInt128 One(1);
  EXPECT_EQ(One << 64, UInt128::fromHalves(1, 0));
  EXPECT_EQ(One << 127, UInt128::pow2(127));
  EXPECT_EQ(UInt128::pow2(127) >> 127, One);
  EXPECT_EQ(UInt128::pow2(64) >> 64, One);
  const UInt128 Mixed = UInt128::fromHalves(0x0123456789abcdefull,
                                            0xfedcba9876543210ull);
  EXPECT_EQ(Mixed << 0, Mixed);
  EXPECT_EQ(Mixed >> 0, Mixed);
  EXPECT_EQ((Mixed >> 4).low64(), 0xffedcba987654321ull);
}

#ifdef __SIZEOF_INT128__
TEST(UInt128, ArithmeticMatchesCompilerInt128) {
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    const UInt128 A = randomU128();
    const UInt128 B = randomU128();
    const NativeU128 NA = toNative(A), NB = toNative(B);
    EXPECT_EQ(toNative(A + B), static_cast<NativeU128>(NA + NB));
    EXPECT_EQ(toNative(A - B), static_cast<NativeU128>(NA - NB));
    EXPECT_EQ(toNative(A * B), static_cast<NativeU128>(NA * NB));
    EXPECT_EQ(A < B, NA < NB);
    EXPECT_EQ(A == B, NA == NB);
    if (!B.isZero()) {
      auto [Quotient, Remainder] = UInt128::divMod(A, B);
      EXPECT_EQ(toNative(Quotient), static_cast<NativeU128>(NA / NB));
      EXPECT_EQ(toNative(Remainder), static_cast<NativeU128>(NA % NB));
    }
  }
}

TEST(UInt128, ShiftsMatchCompilerInt128) {
  for (int Iteration = 0; Iteration < 5000; ++Iteration) {
    const UInt128 A = randomU128();
    const int Count = static_cast<int>(rng()() % 128);
    EXPECT_EQ(toNative(A << Count),
              static_cast<NativeU128>(toNative(A) << Count));
    EXPECT_EQ(toNative(A >> Count),
              static_cast<NativeU128>(toNative(A) >> Count));
  }
}

TEST(Int128, ArithmeticMatchesCompilerInt128) {
  using NativeS128 = __int128;
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    const Int128 A = Int128::fromBits(randomU128());
    const Int128 B = Int128::fromBits(randomU128());
    const NativeS128 NA = static_cast<NativeS128>(toNative(A.bits()));
    const NativeS128 NB = static_cast<NativeS128>(toNative(B.bits()));
    EXPECT_EQ(toNative((A + B).bits()),
              static_cast<NativeU128>(NA + NB));
    EXPECT_EQ(toNative((A - B).bits()),
              static_cast<NativeU128>(NA - NB));
    EXPECT_EQ(toNative((A * B).bits()),
              static_cast<NativeU128>(NA * NB));
    EXPECT_EQ(A < B, NA < NB);
    if (!B.isZero() && !(A == Int128::min() && NB == -1)) {
      auto [Quotient, Remainder] = Int128::divMod(A, B);
      EXPECT_EQ(toNative(Quotient.bits()),
                static_cast<NativeU128>(NA / NB));
      EXPECT_EQ(toNative(Remainder.bits()),
                static_cast<NativeU128>(NA % NB));
    }
  }
}

TEST(Int128, ArithmeticShiftMatchesCompiler) {
  using NativeS128 = __int128;
  for (int Iteration = 0; Iteration < 5000; ++Iteration) {
    const Int128 A = Int128::fromBits(randomU128());
    const int Count = static_cast<int>(rng()() % 128);
    const NativeS128 NA = static_cast<NativeS128>(toNative(A.bits()));
    EXPECT_EQ(toNative((A >> Count).bits()),
              static_cast<NativeU128>(NA >> Count));
  }
}
#endif // __SIZEOF_INT128__

TEST(UInt128, DivModKnownValues) {
  // 2^96 / 10^9 — crosses both limbs.
  const UInt128 Dividend = UInt128::pow2(96);
  const UInt128 Divisor(1000000000);
  auto [Quotient, Remainder] = UInt128::divMod(Dividend, Divisor);
  EXPECT_EQ(Quotient.toString(), "79228162514264337593");
  EXPECT_EQ(Remainder.toString(), "543950336");
  // Divisor wider than 64 bits.
  const UInt128 WideDivisor = UInt128::fromHalves(1, 1);
  auto [Q2, R2] = UInt128::divMod(UInt128::max(), WideDivisor);
  EXPECT_EQ(Q2 * WideDivisor + R2, UInt128::max());
  EXPECT_TRUE(R2 < WideDivisor);
}

TEST(UInt128, DivModReconstruction) {
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    const UInt128 A = randomU128();
    UInt128 B = randomU128();
    if (B.isZero())
      B = UInt128(1);
    auto [Quotient, Remainder] = UInt128::divMod(A, B);
    EXPECT_EQ(Quotient * B + Remainder, A);
    EXPECT_TRUE(Remainder < B);
  }
}

TEST(UInt128, DivModPow2MatchesDivMod) {
  for (int Exp = 0; Exp < 128; ++Exp) {
    UInt128 Divisor = randomU128();
    if (Divisor.isZero())
      Divisor = UInt128(3);
    auto [Q1, R1] = UInt128::divModPow2(Exp, Divisor);
    auto [Q2, R2] = UInt128::divMod(UInt128::pow2(Exp), Divisor);
    EXPECT_EQ(Q1, Q2) << "exp=" << Exp;
    EXPECT_EQ(R1, R2) << "exp=" << Exp;
  }
}

TEST(UInt128, DivModPow2FullExponent) {
  // 2^128 = q*d + r cases that exceed the representable numerator.
  for (uint64_t Divisor : {2ull, 3ull, 5ull, 7ull, 10ull, 641ull,
                           0xffffffffffffffffull}) {
    auto [Quotient, Remainder] = UInt128::divModPow2(128, UInt128(Divisor));
    // Verify q*d + r == 2^128 via wrap-around: q*d + r mod 2^128 == 0 and
    // q != 0.
    EXPECT_TRUE((Quotient * UInt128(Divisor) + Remainder).isZero());
    EXPECT_FALSE(Quotient.isZero());
    EXPECT_TRUE(Remainder < UInt128(Divisor));
  }
  // d = 274177 divides 2^64 + 1 (the paper's "rare case" divisor).
  auto [Q, R] = UInt128::divModPow2(128, UInt128(274177));
  EXPECT_TRUE(R < UInt128(274177));
}

TEST(UInt128, DivModKnuthAddBackCases) {
  // Algorithm D's rarely-taken D6 "add back" step fires when the
  // estimated quotient digit overshoots by one; classic triggers have
  // dividend limbs just below the divisor's pattern. Build operands
  // from boundary limbs so the step is exercised deterministically and
  // densely.
  const uint32_t Limbs[] = {0u,          1u,          2u,
                            0x7fffffffu, 0x80000000u, 0x80000001u,
                            0xfffffffeu, 0xffffffffu};
  auto Make = [](uint32_t L3, uint32_t L2, uint32_t L1, uint32_t L0) {
    return UInt128::fromHalves((uint64_t{L3} << 32) | L2,
                               (uint64_t{L1} << 32) | L0);
  };
  int Count = 0;
  for (uint32_t A3 : Limbs)
    for (uint32_t A2 : Limbs)
      for (uint32_t A1 : Limbs)
        for (uint32_t B1 : Limbs)
          for (uint32_t B0 : Limbs) {
            const UInt128 A = Make(A3, A2, A1, 0xffffffffu);
            const UInt128 B = Make(0, 0, B1, B0) |
                              UInt128::fromHalves(uint64_t{B1} << 32, 0);
            if (B.isZero())
              continue;
            auto [Quotient, Remainder] = UInt128::divMod(A, B);
            ASSERT_EQ(Quotient * B + Remainder, A)
                << A.toHexString() << " / " << B.toHexString();
            ASSERT_TRUE(Remainder < B);
            ++Count;
          }
  EXPECT_GT(Count, 30000);
#ifdef __SIZEOF_INT128__
  // The textbook add-back instance at base 2^32.
  const UInt128 A = Make(0x7fffffffu, 0x80000000u, 0, 0);
  const UInt128 B = Make(0, 0x80000000u, 0, 1);
  auto [Quotient, Remainder] = UInt128::divMod(A, B);
  const NativeU128 NA = toNative(A), NB = toNative(B);
  EXPECT_EQ(toNative(Quotient), NA / NB);
  EXPECT_EQ(toNative(Remainder), NA % NB);
#endif
}

TEST(UInt128, Formatting) {
  EXPECT_EQ(UInt128(0).toString(), "0");
  EXPECT_EQ(UInt128(12345).toString(), "12345");
  EXPECT_EQ(UInt128::max().toString(),
            "340282366920938463463374607431768211455");
  EXPECT_EQ(UInt128::pow2(64).toString(), "18446744073709551616");
  EXPECT_EQ(UInt128(0).toHexString(), "0x0");
  EXPECT_EQ(UInt128(0xdeadbeef).toHexString(), "0xdeadbeef");
  EXPECT_EQ(UInt128::pow2(64).toHexString(), "0x10000000000000000");
}

TEST(UInt128, FromStringRoundTrips) {
  for (int Iteration = 0; Iteration < 1000; ++Iteration) {
    const UInt128 Value = randomU128();
    EXPECT_EQ(UInt128::fromString(Value.toString()), Value);
  }
}

TEST(Int128, SignBasics) {
  EXPECT_TRUE(Int128(-1).isNegative());
  EXPECT_FALSE(Int128(0).isNegative());
  EXPECT_FALSE(Int128(1).isNegative());
  EXPECT_EQ(Int128(-1).bits(), UInt128::max());
  EXPECT_EQ(Int128::min().magnitude(), UInt128::pow2(127));
  EXPECT_EQ(Int128(-5).magnitude(), UInt128(5));
  EXPECT_EQ(Int128(-5).toString(), "-5");
  EXPECT_EQ(Int128::min().toString(),
            "-170141183460469231731687303715884105728");
}

TEST(Int128, DivModTruncatesTowardZero) {
  EXPECT_EQ(Int128::divMod(Int128(7), Int128(2)).first, Int128(3));
  EXPECT_EQ(Int128::divMod(Int128(-7), Int128(2)).first, Int128(-3));
  EXPECT_EQ(Int128::divMod(Int128(7), Int128(-2)).first, Int128(-3));
  EXPECT_EQ(Int128::divMod(Int128(-7), Int128(-2)).first, Int128(3));
  EXPECT_EQ(Int128::divMod(Int128(-7), Int128(2)).second, Int128(-1));
  EXPECT_EQ(Int128::divMod(Int128(7), Int128(-2)).second, Int128(1));
}

} // namespace
