//===- tests/Exhaustive16Test.cpp - Full 16-bit state-space proofs --------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest statement testing can make: every divisor against
/// every dividend at N = 16 — 2^32 quotients per divider class, no
/// sampling anywhere. These take a few seconds each in release builds;
/// together with the 8-bit exhaustive suites they verify the identical
/// templated code that runs at 32/64 bits.
///
//===----------------------------------------------------------------------===//

#include "batch/BatchDivider.h"
#include "core/Divider.h"
#include "core/ExactDiv.h"
#include "core/FastModDivider.h"
#include "core/NarrowDivider.h"
#include "core/RemModSemantics.h"
#include "core/RoundUpDivider.h"

#include <gtest/gtest.h>

#include <vector>

using namespace gmdiv;

namespace {

TEST(Exhaustive16, UnsignedDividerFullStateSpace) {
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const UnsignedDivider<uint16_t> Divider(static_cast<uint16_t>(D));
    for (uint32_t N = 0; N <= 0xffff; ++N) {
      const uint16_t Got = Divider.divide(static_cast<uint16_t>(N));
      if (Got != N / D) // Branch instead of ASSERT_EQ: keeps the loop hot.
        FAIL() << "n=" << N << " d=" << D << " got=" << Got
               << " want=" << N / D;
    }
  }
}

TEST(Exhaustive16, SignedDividerFullStateSpace) {
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const SignedDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int32_t N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue; // Overflow case, defined to wrap; checked elsewhere.
      const int16_t Got = Divider.divide(static_cast<int16_t>(N));
      if (Got != N / D)
        FAIL() << "n=" << N << " d=" << D << " got=" << Got
               << " want=" << N / D;
    }
  }
}

TEST(Exhaustive16, DivisibilityTestFullStateSpace) {
  // §9's branch-free test, proven over the entire 16-bit state space.
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const ExactUnsignedDivider<uint16_t> Divider(
        static_cast<uint16_t>(D));
    for (uint32_t N = 0; N <= 0xffff; ++N) {
      const bool Got = Divider.isDivisible(static_cast<uint16_t>(N));
      if (Got != (N % D == 0))
        FAIL() << "n=" << N << " d=" << D;
    }
  }
}

TEST(Exhaustive16, FloorDividerFullStateSpace) {
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const FloorDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int32_t N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      int32_t Want = N / D;
      if (N % D != 0 && ((N % D < 0) != (D < 0)))
        --Want;
      const int16_t Got = Divider.divide(static_cast<int16_t>(N));
      if (Got != Want)
        FAIL() << "n=" << N << " d=" << D << " got=" << Got
               << " want=" << Want;
    }
  }
}

TEST(Exhaustive16, BatchBackendsUnsignedFullStateSpace) {
  // Every compiled-in batch backend (scalar fallback and each SIMD
  // path) over the complete 16-bit state space: one divRem call per
  // divisor covering all 2^16 dividends, plus the §9 branch-free
  // divisibility filter on the same array.
  std::vector<uint16_t> In(1 << 16), Quot(1 << 16), Rem(1 << 16);
  std::vector<uint8_t> Divisible(1 << 16);
  for (uint32_t N = 0; N <= 0xffff; ++N)
    In[N] = static_cast<uint16_t>(N);
  for (const batch::Backend B : batch::compiledBackends()) {
    if (!batch::backendAvailable(B))
      continue;
    for (uint32_t D = 1; D <= 0xffff; ++D) {
      const batch::BatchDivider<uint16_t> Div(static_cast<uint16_t>(D), B);
      Div.divRem(In.data(), Quot.data(), Rem.data(), In.size());
      Div.divisible(In.data(), Divisible.data(), In.size());
      for (uint32_t N = 0; N <= 0xffff; ++N) {
        if (Quot[N] != N / D || Rem[N] != N % D)
          FAIL() << batch::backendName(B) << ": n=" << N << " d=" << D
                 << " q=" << Quot[N] << " r=" << Rem[N];
        if (Divisible[N] != (N % D == 0 ? 1 : 0))
          FAIL() << batch::backendName(B) << ": divisible n=" << N
                 << " d=" << D;
      }
    }
  }
}

TEST(Exhaustive16, BatchBackendsSignedFullStateSpace) {
  // Signed trunc/floor/ceil batch kernels over the full state space on
  // the auto-dispatched backend (the per-backend sweep above already
  // proves the dispatch surface; lane arithmetic is shared).
  std::vector<int16_t> In(1 << 16), Quot(1 << 16), FloorQ(1 << 16),
      CeilQ(1 << 16);
  for (uint32_t N = 0; N <= 0xffff; ++N)
    In[N] = static_cast<int16_t>(static_cast<uint16_t>(N));
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const batch::BatchDivider<int16_t> Div(static_cast<int16_t>(D));
    Div.divide(In.data(), Quot.data(), In.size());
    Div.floorDivide(In.data(), FloorQ.data(), In.size());
    Div.ceilDivide(In.data(), CeilQ.data(), In.size());
    for (uint32_t I = 0; I <= 0xffff; ++I) {
      const int32_t N = In[I];
      if (N == -32768 && D == -1)
        continue; // Overflow pair: wraps, policy checked elsewhere.
      const int32_t Trunc = N / D;
      int32_t Floor = Trunc, Ceil = Trunc;
      if (N % D != 0) {
        if ((N % D < 0) != (D < 0))
          --Floor;
        else
          ++Ceil;
      }
      if (Quot[I] != Trunc || FloorQ[I] != Floor || CeilQ[I] != Ceil)
        FAIL() << "n=" << N << " d=" << D << " trunc=" << Quot[I]
               << " floor=" << FloorQ[I] << " ceil=" << CeilQ[I];
    }
  }
}

TEST(Exhaustive16, FamilyGalleryUnsignedAllDividends) {
  // The successor families — fastmod (LKK), roundup (Optimal Bounds)
  // and narrow (Mitsunari–Hoshino) — over every 16-bit dividend for the
  // divisor gallery where their theorems bind: powers of two, 2^k +/- 1
  // (where the round-up error term is extremal), and the top of the
  // divisor range. The all-divisor sweeps run in the verify harness at
  // N = 4..12; this pins the 16-bit instantiation.
  std::vector<uint32_t> Divisors = {1, 3, 5, 7, 9, 641};
  for (int K = 1; K <= 16; ++K) {
    const uint32_t P = 1u << (K - 1);
    for (uint32_t D : {P - 1, P, P + 1})
      if (D >= 1 && D <= 0xffff)
        Divisors.push_back(D);
  }
  for (uint32_t D : {0xfffeu, 0xffffu})
    Divisors.push_back(D);
  for (uint32_t D : Divisors) {
    const FastModDivider<uint16_t> FM(static_cast<uint16_t>(D));
    const RoundUpDivider<uint16_t> RU(static_cast<uint16_t>(D));
    const NarrowDivider<uint16_t> Nar(static_cast<uint16_t>(D));
    for (uint32_t N = 0; N <= 0xffff; ++N) {
      const uint16_t Q = static_cast<uint16_t>(N / D);
      const uint16_t R = static_cast<uint16_t>(N % D);
      const uint16_t Word = static_cast<uint16_t>(N);
      if (FM.divide(Word) != Q || FM.remainder(Word) != R ||
          FM.isDivisible(Word) != (R == 0))
        FAIL() << "fastmod: n=" << N << " d=" << D;
      if (RU.divide(Word) != Q || RU.remainder(Word) != R)
        FAIL() << "roundup[" << RoundUpChoice<uint16_t>::kindName(RU.mode())
               << "]: n=" << N << " d=" << D;
      if (Nar.divide(Word) != Q || Nar.remainder(Word) != R)
        FAIL() << "narrow: n=" << N << " d=" << D;
    }
  }
}

TEST(Exhaustive16, FamilyGallerySignedAllDividends) {
  // The signed wrappers across the INT_MIN-adjacent divisor rows and
  // sign boundaries, every dividend including the INT16_MIN / -1 wrap.
  const std::vector<int32_t> Divisors = {
      1,     -1,     2,      -2,     3,     -3,     7,     -7,
      255,   -255,   256,    -256,   257,   -257,   16383, -16383,
      16384, -16384, 16385,  -16385, 32767, -32767, -32768};
  for (int32_t D : Divisors) {
    const FastModSignedDivider<int16_t> FM(static_cast<int16_t>(D));
    const NarrowSignedDivider<int16_t> Nar(static_cast<int16_t>(D));
    for (int32_t N = -32768; N <= 32767; ++N) {
      const int16_t Word = static_cast<int16_t>(N);
      if (N == -32768 && D == -1) {
        // Defined to wrap with remainder 0 (the Oracle's policy).
        if (FM.divide(Word) != INT16_MIN || FM.remainder(Word) != 0 ||
            Nar.divide(Word) != INT16_MIN || Nar.remainder(Word) != 0)
          FAIL() << "INT_MIN/-1 wrap";
        continue;
      }
      const int16_t Q = static_cast<int16_t>(N / D);
      const int16_t R = static_cast<int16_t>(N % D);
      if (FM.divide(Word) != Q || FM.remainder(Word) != R ||
          FM.isDivisible(Word) != (R == 0))
        FAIL() << "fastmod-signed: n=" << N << " d=" << D;
      if (Nar.divide(Word) != Q || Nar.remainder(Word) != R)
        FAIL() << "narrow-signed: n=" << N << " d=" << D;
    }
  }
}

TEST(Exhaustive16, EuclideanConventionFullStateSpace) {
  // Boute's definition [6]: 0 <= r < |d| and n = q*d + r, for every
  // signed divisor and dividend.
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const ConventionDivider<int16_t> Euclid(
        static_cast<int16_t>(D), RemainderConvention::Euclidean);
    const int32_t AbsD = D < 0 ? -D : D;
    for (int32_t N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      auto [Quotient, Remainder] = Euclid.quotRem(static_cast<int16_t>(N));
      if (Remainder < 0 || Remainder >= AbsD)
        FAIL() << "range: n=" << N << " d=" << D << " r=" << Remainder;
      // Reconstruction in wrapping 16-bit arithmetic (the 1u factor
      // keeps the multiply unsigned; bare uint16 operands promote to
      // int, where the wrap is undefined).
      const int16_t Back = static_cast<int16_t>(
          1u * static_cast<uint16_t>(Quotient) * static_cast<uint16_t>(D) +
          static_cast<uint16_t>(Remainder));
      if (Back != static_cast<int16_t>(N))
        FAIL() << "reconstruct: n=" << N << " d=" << D;
    }
  }
}

} // namespace
