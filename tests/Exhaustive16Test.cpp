//===- tests/Exhaustive16Test.cpp - Full 16-bit state-space proofs --------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest statement testing can make: every divisor against
/// every dividend at N = 16 — 2^32 quotients per divider class, no
/// sampling anywhere. These take a few seconds each in release builds;
/// together with the 8-bit exhaustive suites they verify the identical
/// templated code that runs at 32/64 bits.
///
//===----------------------------------------------------------------------===//

#include "core/Divider.h"
#include "core/ExactDiv.h"
#include "core/RemModSemantics.h"

#include <gtest/gtest.h>

using namespace gmdiv;

namespace {

TEST(Exhaustive16, UnsignedDividerFullStateSpace) {
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const UnsignedDivider<uint16_t> Divider(static_cast<uint16_t>(D));
    for (uint32_t N = 0; N <= 0xffff; ++N) {
      const uint16_t Got = Divider.divide(static_cast<uint16_t>(N));
      if (Got != N / D) // Branch instead of ASSERT_EQ: keeps the loop hot.
        FAIL() << "n=" << N << " d=" << D << " got=" << Got
               << " want=" << N / D;
    }
  }
}

TEST(Exhaustive16, SignedDividerFullStateSpace) {
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const SignedDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int32_t N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue; // Overflow case, defined to wrap; checked elsewhere.
      const int16_t Got = Divider.divide(static_cast<int16_t>(N));
      if (Got != N / D)
        FAIL() << "n=" << N << " d=" << D << " got=" << Got
               << " want=" << N / D;
    }
  }
}

TEST(Exhaustive16, DivisibilityTestFullStateSpace) {
  // §9's branch-free test, proven over the entire 16-bit state space.
  for (uint32_t D = 1; D <= 0xffff; ++D) {
    const ExactUnsignedDivider<uint16_t> Divider(
        static_cast<uint16_t>(D));
    for (uint32_t N = 0; N <= 0xffff; ++N) {
      const bool Got = Divider.isDivisible(static_cast<uint16_t>(N));
      if (Got != (N % D == 0))
        FAIL() << "n=" << N << " d=" << D;
    }
  }
}

TEST(Exhaustive16, FloorDividerFullStateSpace) {
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const FloorDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int32_t N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      int32_t Want = N / D;
      if (N % D != 0 && ((N % D < 0) != (D < 0)))
        --Want;
      const int16_t Got = Divider.divide(static_cast<int16_t>(N));
      if (Got != Want)
        FAIL() << "n=" << N << " d=" << D << " got=" << Got
               << " want=" << Want;
    }
  }
}

TEST(Exhaustive16, EuclideanConventionFullStateSpace) {
  // Boute's definition [6]: 0 <= r < |d| and n = q*d + r, for every
  // signed divisor and dividend.
  for (int32_t D = -32768; D <= 32767; ++D) {
    if (D == 0)
      continue;
    const ConventionDivider<int16_t> Euclid(
        static_cast<int16_t>(D), RemainderConvention::Euclidean);
    const int32_t AbsD = D < 0 ? -D : D;
    for (int32_t N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      auto [Quotient, Remainder] = Euclid.quotRem(static_cast<int16_t>(N));
      if (Remainder < 0 || Remainder >= AbsD)
        FAIL() << "range: n=" << N << " d=" << D << " r=" << Remainder;
      // Reconstruction in wrapping 16-bit arithmetic.
      const int16_t Back = static_cast<int16_t>(
          static_cast<uint16_t>(Quotient) * static_cast<uint16_t>(D) +
          static_cast<uint16_t>(Remainder));
      if (Back != static_cast<int16_t>(N))
        FAIL() << "reconstruct: n=" << N << " d=" << D;
    }
  }
}

} // namespace
