//===- tests/IntegrationTest.cpp - Cross-module workloads -----------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end scenarios spanning several modules: the Figure 11.1 radix
/// converter against snprintf, the generated-IR radix converter against
/// the library dividers, the §9 strength-reduced loop, and a prime-
/// modulus hash table (the §11 "hashing" workload).
///
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"
#include "core/Divider.h"
#include "core/DWordDivider.h"
#include "core/ExactDiv.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x6c9e6e748a1e7e85ull);
  return Generator;
}

/// Figure 11.1's decimal() routine, with the divider substituted for the
/// hardware divide.
std::string decimalViaDivider(uint32_t Value) {
  static const UnsignedDivider<uint32_t> By10(10);
  char Buffer[16];
  char *Cursor = Buffer + sizeof(Buffer) - 1;
  *Cursor = '\0';
  do {
    auto [Quotient, Remainder] = By10.divRem(Value);
    *--Cursor = static_cast<char>('0' + Remainder);
    Value = Quotient;
  } while (Value != 0);
  return std::string(Cursor);
}

TEST(Integration, RadixConversionMatchesSnprintf) {
  char Expected[16];
  for (uint64_t Value : {0ull, 1ull, 9ull, 10ull, 12345ull, 99999999ull,
                         4294967295ull, 2147483648ull}) {
    std::snprintf(Expected, sizeof(Expected), "%u",
                  static_cast<uint32_t>(Value));
    EXPECT_EQ(decimalViaDivider(static_cast<uint32_t>(Value)), Expected);
  }
  for (int I = 0; I < 200000; ++I) {
    const uint32_t Value = static_cast<uint32_t>(rng()());
    std::snprintf(Expected, sizeof(Expected), "%u", Value);
    ASSERT_EQ(decimalViaDivider(Value), Expected);
  }
}

TEST(Integration, GeneratedCodeRadixConversion) {
  // Drive the compiled-constant sequence (Figure 4.2 output, as GCC
  // would emit for Figure 11.1) through the interpreter digit by digit.
  const ir::Program DivRem = codegen::genUnsignedDivRem(32, 10);
  for (int I = 0; I < 2000; ++I) {
    const uint32_t Start = static_cast<uint32_t>(rng()());
    uint32_t Value = Start;
    std::string Digits;
    do {
      const std::vector<uint64_t> QR = ir::run(DivRem, {Value});
      Digits.insert(Digits.begin(),
                    static_cast<char>('0' + QR[1]));
      Value = static_cast<uint32_t>(QR[0]);
    } while (Value != 0);
    char Expected[16];
    std::snprintf(Expected, sizeof(Expected), "%u", Start);
    ASSERT_EQ(Digits, Expected);
  }
}

TEST(Integration, StrengthReducedDivisibilityLoop) {
  // §9's closing example, built from library pieces this time: find all
  // multiples of 100 in a range without any divide or multiply in the
  // loop body.
  const ExactSignedDivider<int32_t> By100(100);
  int Count = 0;
  for (int32_t I = -50000; I <= 50000; ++I) {
    if (By100.isDivisible(I))
      ++Count;
  }
  EXPECT_EQ(Count, 1001);
}

TEST(Integration, HashTableWithPrimeModulus) {
  // §11: "benchmarks that involve hashing show improvements up to about
  // 30%" — division by an invariant prime table size is the kernel.
  // Verify an open-addressing table built on the divider behaves exactly
  // like one built on the hardware %.
  const uint64_t TableSize = 1009; // prime
  const UnsignedDivider<uint64_t> BySize(TableSize);
  std::vector<uint64_t> DividerTable(TableSize, ~uint64_t{0});
  std::vector<uint64_t> HardwareTable(TableSize, ~uint64_t{0});
  for (int I = 0; I < 700; ++I) {
    const uint64_t Key = rng()();
    // Insert with linear probing, once per implementation.
    uint64_t SlotA = BySize.remainder(Key);
    while (DividerTable[SlotA] != ~uint64_t{0})
      SlotA = SlotA + 1 == TableSize ? 0 : SlotA + 1;
    DividerTable[SlotA] = Key;
    uint64_t SlotB = Key % TableSize;
    while (HardwareTable[SlotB] != ~uint64_t{0})
      SlotB = SlotB + 1 == TableSize ? 0 : SlotB + 1;
    HardwareTable[SlotB] = Key;
  }
  EXPECT_EQ(DividerTable, HardwareTable);
}

TEST(Integration, MultiPrecisionDecimalPrinting) {
  // Print a 128-bit value in decimal using only the §8 kernel (divide
  // the running remainder chunk by 10^19 word by word) — the classic
  // multi-precision use the paper cites from Knuth.
  const UInt128 Value = UInt128::fromHalves(0x0123456789abcdefull,
                                            0xfedcba9876543210ull);
  // Reference via UInt128's own toString (tested against __int128).
  const std::string Expected = Value.toString();
  // Long division by 10 using DWordDivider on (remainder, limb) chunks.
  const DWordDivider<uint64_t> By10(10);
  uint64_t Limbs[2] = {Value.low64(), Value.high64()};
  std::string Digits;
  bool NonZero = true;
  while (NonZero) {
    uint64_t Remainder = 0;
    for (int I = 1; I >= 0; --I) {
      auto [Q, R] = By10.divRem(UInt128::fromHalves(Remainder, Limbs[I]));
      Limbs[I] = Q;
      Remainder = R;
    }
    Digits.insert(Digits.begin(), static_cast<char>('0' + Remainder));
    NonZero = (Limbs[0] | Limbs[1]) != 0;
  }
  EXPECT_EQ(Digits, Expected);
}

TEST(Integration, DividerAgreesWithGeneratedCodeEverywhere) {
  // The runtime divider (Figure 4.1) and the constant-divisor generator
  // (Figure 4.2) may pick different sequences; they must still agree on
  // every quotient. Exhaustive at 16 bits for a divisor mix.
  for (uint32_t D : {3u, 7u, 10u, 14u, 641u, 32768u}) {
    const UnsignedDivider<uint16_t> Divider(static_cast<uint16_t>(D));
    const ir::Program P = codegen::genUnsignedDiv(16, D);
    for (uint32_t N = 0; N <= 0xffff; ++N)
      ASSERT_EQ(static_cast<uint64_t>(
                    Divider.divide(static_cast<uint16_t>(N))),
                ir::run(P, {N})[0])
          << "n=" << N << " d=" << D;
  }
}

} // namespace
