//===- tests/DivisionLoweringTest.cpp - §10 compiler pass tests -----------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowering pass must (a) remove every constant-divisor Div/Rem,
/// (b) keep run-time divisors untouched, (c) preserve program semantics
/// exactly — verified exhaustively at 8 bits and differentially on
/// random division-heavy programs — and (d) strictly lower the cost
/// estimate on every Table 1.1 machine.
///
//===----------------------------------------------------------------------===//

#include "codegen/DivisionLowering.h"

#include "arch/CostModel.h"
#include "ir/Builder.h"
#include "ir/Interp.h"
#include "telemetry/Remarks.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x64b1f5d6a7c8e9fbull);
  return Generator;
}

bool hasDivision(const Program &P) {
  for (const Instr &I : P.instrs())
    if (I.Op == Opcode::DivU || I.Op == Opcode::DivS ||
        I.Op == Opcode::RemU || I.Op == Opcode::RemS)
      return true;
  return false;
}

TEST(DivisionLowering, DivideByOneFoldsBeforeThePass) {
  // x/1 and x%1 are folded by the builder itself; the pass never sees
  // them.
  Builder B(8, 1);
  const int N = B.arg(0);
  const int One = B.constant(1);
  B.markResult(B.divU(N, One), "q");
  B.markResult(B.remU(N, One), "r");
  const Program Original = B.take();
  EXPECT_FALSE(hasDivision(Original));
  LoweringStats Stats;
  const Program Lowered = lowerDivisions(Original, GenOptions(), &Stats);
  EXPECT_EQ(Stats.total(), 0);
  EXPECT_EQ(run(Lowered, {200})[0], 200u);
  EXPECT_EQ(run(Lowered, {200})[1], 0u);
}

TEST(DivisionLowering, LowersAllFourKindsExhaustive8) {
  for (int D = 2; D < 256; ++D) {
    Builder B(8, 1);
    const int N = B.arg(0);
    const int C = B.constant(static_cast<uint64_t>(D));
    B.markResult(B.divU(N, C), "qu");
    B.markResult(B.remU(N, C), "ru");
    B.markResult(B.divS(N, C), "qs");
    B.markResult(B.remS(N, C), "rs");
    const Program Original = B.take();
    LoweringStats Stats;
    const Program Lowered = lowerDivisions(Original, GenOptions(), &Stats);
    ASSERT_FALSE(hasDivision(Lowered)) << "d=" << D;
    ASSERT_EQ(Stats.total(), 4) << "d=" << D;
    for (uint64_t N0 = 0; N0 < 256; ++N0) {
      ASSERT_EQ(run(Original, {N0}), run(Lowered, {N0}))
          << "n=" << N0 << " d=" << D;
    }
  }
}

TEST(DivisionLowering, NegativeDivisorsExhaustive8) {
  for (int D = -128; D < 0; ++D) {
    Builder B(8, 1);
    const int N = B.arg(0);
    const int C = B.constant(static_cast<uint64_t>(D) & 0xff);
    B.markResult(B.divS(N, C), "q");
    B.markResult(B.remS(N, C), "r");
    const Program Original = B.take();
    const Program Lowered = lowerDivisions(Original);
    ASSERT_FALSE(hasDivision(Lowered)) << "d=" << D;
    for (uint64_t N0 = 0; N0 < 256; ++N0)
      ASSERT_EQ(run(Original, {N0}), run(Lowered, {N0}))
          << "n=" << N0 << " d=" << D;
  }
}

TEST(DivisionLowering, IntMinOverMinusOneMatchesInterpreter) {
  // Both sides define INT_MIN / -1 as INT_MIN (wrap) with remainder 0.
  Builder B(32, 1);
  const int N = B.arg(0);
  const int C = B.constant(0xffffffffull);
  B.markResult(B.divS(N, C), "q");
  B.markResult(B.remS(N, C), "r");
  const Program Original = B.take();
  const Program Lowered = lowerDivisions(Original);
  const std::vector<uint64_t> Before = run(Original, {0x80000000ull});
  const std::vector<uint64_t> After = run(Lowered, {0x80000000ull});
  EXPECT_EQ(Before, After);
  EXPECT_EQ(After[0], 0x80000000ull);
  EXPECT_EQ(After[1], 0u);
}

TEST(DivisionLowering, RuntimeDivisorsSurvive) {
  // §10: "We have not implemented any algorithm for run-time invariant
  // divisors" — non-constant divisors pass through unchanged.
  Builder B(32, 2);
  const int N = B.arg(0);
  const int D = B.arg(1);
  B.markResult(B.divU(N, D), "q");
  B.markResult(B.divU(N, B.constant(10)), "q10");
  const Program Original = B.take();
  LoweringStats Stats;
  const Program Lowered = lowerDivisions(Original, GenOptions(), &Stats);
  EXPECT_EQ(Stats.RuntimeDivisorsKept, 1);
  EXPECT_EQ(Stats.UnsignedDivsLowered, 1);
  EXPECT_TRUE(hasDivision(Lowered)); // The runtime one.
  for (int I = 0; I < 1000; ++I) {
    const uint64_t N0 = rng()() & 0xffffffffull;
    uint64_t D0 = rng()() & 0xffffffffull;
    if (D0 == 0)
      D0 = 1;
    ASSERT_EQ(run(Original, {N0, D0}), run(Lowered, {N0, D0}));
  }
}

TEST(DivisionLowering, PowerOfTwoRemainderBecomesCheap) {
  // x % 2^k lowers to shifts; the unsigned case in particular must not
  // contain any multiply.
  Builder B(32, 1);
  const int N = B.arg(0);
  B.markResult(B.remU(N, B.constant(64)), "r");
  const Program Lowered = lowerDivisions(B.take());
  for (const Instr &I : Lowered.instrs()) {
    EXPECT_NE(I.Op, Opcode::MulL);
    EXPECT_NE(I.Op, Opcode::MulUH);
  }
  for (int I = 0; I < 1000; ++I) {
    const uint64_t N0 = rng()() & 0xffffffffull;
    ASSERT_EQ(run(Lowered, {N0})[0], N0 % 64);
  }
}

TEST(DivisionLowering, SharedQuotientViaCse) {
  // n/10 and n%10 in one program share the quotient computation, the
  // Table 11.1 CSE point.
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Ten = B.constant(10);
  B.markResult(B.divU(N, Ten), "q");
  B.markResult(B.remU(N, Ten), "r");
  const Program Lowered = lowerDivisions(B.take());
  int MulUHs = 0;
  for (const Instr &I : Lowered.instrs())
    MulUHs += I.Op == Opcode::MulUH;
  EXPECT_EQ(MulUHs, 1) << "quotient must be computed once";
}

TEST(DivisionLowering, DifferentialOnRandomPrograms) {
  // Random programs mixing arithmetic with constant-divisor divisions.
  for (int WordBits : {8, 16, 32, 64}) {
    const uint64_t Mask =
        WordBits == 64 ? ~uint64_t{0} : (uint64_t{1} << WordBits) - 1;
    for (int Round = 0; Round < 200; ++Round) {
      Builder B(WordBits, 2);
      std::vector<int> Values = {B.arg(0), B.arg(1)};
      for (int Step = 0; Step < 12; ++Step) {
        const int X = Values[rng()() % Values.size()];
        uint64_t D = rng()() & Mask & 0xffff;
        if (D == 0)
          D = 3;
        const int C = B.constant(D);
        switch (rng()() % 6) {
        case 0:
          Values.push_back(B.divU(X, C));
          break;
        case 1:
          Values.push_back(B.divS(X, C));
          break;
        case 2:
          Values.push_back(B.remU(X, C));
          break;
        case 3:
          Values.push_back(B.remS(X, C));
          break;
        case 4:
          Values.push_back(B.add(X, Values[rng()() % Values.size()]));
          break;
        default:
          Values.push_back(B.eor(X, Values[rng()() % Values.size()]));
          break;
        }
      }
      B.markResult(Values.back(), "out");
      B.markResult(Values[Values.size() / 2], "mid");
      const Program Original = B.take();
      LoweringStats Stats;
      const Program Lowered =
          lowerDivisions(Original, GenOptions(), &Stats);
      ASSERT_FALSE(hasDivision(Lowered));
      for (int Input = 0; Input < 30; ++Input) {
        const std::vector<uint64_t> Args = {rng()() & Mask,
                                            rng()() & Mask};
        ASSERT_EQ(run(Original, Args), run(Lowered, Args))
            << "bits=" << WordBits << " round=" << Round;
      }
    }
  }
}

TEST(DivisionLowering, CostDropsOnEveryTableMachine) {
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Ten = B.constant(10);
  B.markResult(B.divU(N, Ten), "q");
  B.markResult(B.remU(N, Ten), "r");
  const Program Original = B.take();
  const Program Lowered = lowerDivisions(Original);
  for (const arch::ArchProfile &Profile : arch::table11Profiles()) {
    const double Before = arch::estimateCost(Original, Profile).Cycles;
    const double After = arch::estimateCost(Lowered, Profile).Cycles;
    EXPECT_LT(After, Before) << Profile.Name;
  }
}

TEST(DivisionLowering, HonorsCapabilityOption) {
  Builder B(32, 1);
  const int N = B.arg(0);
  B.markResult(B.divU(N, B.constant(10)), "q");
  const Program Original = B.take();
  GenOptions Power;
  Power.MulHigh = MulHighCapability::SignedOnly;
  const Program Lowered = lowerDivisions(Original, Power);
  for (const Instr &I : Lowered.instrs())
    EXPECT_NE(I.Op, Opcode::MulUH);
  for (int I = 0; I < 1000; ++I) {
    const uint64_t N0 = rng()() & 0xffffffffull;
    ASSERT_EQ(run(Lowered, {N0})[0], N0 / 10);
  }
}


#ifndef GMDIV_NO_TELEMETRY
TEST(DivisionLowering, EmitsPerSiteAndSummaryRemarks) {
  Builder B(32, 2);
  const int N = B.arg(0);
  const int M = B.arg(1);
  B.markResult(B.divU(N, B.constant(12)), "q");
  B.markResult(B.remU(N, B.constant(8)), "r");
  B.markResult(B.divU(N, M), "qrt"); // Runtime divisor: kept.
  const Program Original = B.take();

  telemetry::CollectingRemarkSink Sink;
  {
    telemetry::ScopedRemarkSink Guard(&Sink);
    lowerDivisions(Original, GenOptions());
  }

  // One codegen remark for the d=12 divide, one pass remark for the
  // d=8 remainder (pure AND, no generator involved), one pass summary.
  ASSERT_EQ(Sink.remarks().size(), 3u);
  EXPECT_EQ(Sink.remarks()[0].Pass, "codegen");
  EXPECT_EQ(Sink.remarks()[0].Kind, "unsigned-short");
  EXPECT_EQ(Sink.remarks()[0].DivisorBits, 12u);
  EXPECT_EQ(Sink.remarks()[1].Pass, "lowering");
  EXPECT_EQ(Sink.remarks()[1].Kind, "unsigned-rem-pow2-mask");
  EXPECT_EQ(Sink.remarks()[1].DivisorBits, 8u);
  const telemetry::Remark &Summary = Sink.remarks()[2];
  EXPECT_EQ(Summary.Pass, "lowering");
  EXPECT_EQ(Summary.Kind, "summary");
  EXPECT_FALSE(Summary.HasDivisor);
  bool SawRuntimeKept = false;
  for (const auto &[Key, Value] : Summary.Details) {
    if (Key == "unsigned_divs") {
      EXPECT_EQ(Value, "1");
    }
    if (Key == "unsigned_rems") {
      EXPECT_EQ(Value, "1");
    }
    if (Key == "runtime_kept") {
      EXPECT_EQ(Value, "1");
      SawRuntimeKept = true;
    }
  }
  EXPECT_TRUE(SawRuntimeKept);
}
#endif // GMDIV_NO_TELEMETRY

} // namespace
