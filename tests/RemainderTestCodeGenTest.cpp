//===- tests/RemainderTestCodeGenTest.cpp - §9 remainder tests ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"

#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::codegen;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x2b3a1c5d7e9f0a1bull);
  return Generator;
}

TEST(RemainderTestCodeGen, UnsignedExhaustive8) {
  // Every divisor, every remainder target, every dividend: the test
  // must be exactly (n % d == r) without ever computing a remainder.
  for (uint32_t D = 1; D < 256; ++D) {
    for (uint32_t R = 0; R < D; ++R) {
      const Program P = genRemainderTestUnsigned(8, D, R);
      for (const Instr &I : P.instrs()) {
        ASSERT_NE(I.Op, Opcode::MulUH);
        ASSERT_NE(I.Op, Opcode::MulSH);
      }
      for (uint32_t N = 0; N < 256; ++N)
        ASSERT_EQ(run(P, {N})[0], N % D == R ? 1u : 0u)
            << "n=" << N << " d=" << D << " r=" << R;
    }
  }
}

TEST(RemainderTestCodeGen, Unsigned16Gallery) {
  for (uint32_t D : {3u, 6u, 100u, 256u, 1000u}) {
    for (uint32_t R : {0u, 1u, 2u, D - 1}) {
      if (R >= D)
        continue;
      const Program P = genRemainderTestUnsigned(16, D, R);
      for (uint32_t N = 0; N <= 0xffff; ++N)
        ASSERT_EQ(run(P, {N})[0], N % D == R ? 1u : 0u)
            << "n=" << N << " d=" << D << " r=" << R;
    }
  }
}

TEST(RemainderTestCodeGen, UnsignedRandom64) {
  for (int I = 0; I < 200; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D < 2)
      D = 2;
    const uint64_t R = rng()() % D;
    const Program P = genRemainderTestUnsigned(64, D, R);
    for (int J = 0; J < 100; ++J) {
      const uint64_t N = rng()();
      ASSERT_EQ(run(P, {N})[0], N % D == R ? 1u : 0u)
          << "n=" << N << " d=" << D << " r=" << R;
    }
    // Exact hits.
    const uint64_t QRange = (~uint64_t{0} - R) / D;
    const uint64_t Q = QRange == 0 ? 0 : rng()() % QRange;
    ASSERT_EQ(run(P, {Q * D + R})[0], 1u);
  }
}

TEST(RemainderTestCodeGen, SignedExhaustive8) {
  // 1 <= r < d, d >= 2 not a power of two; matches only nonnegative n
  // (the C rem carries the dividend's sign).
  for (int D = 3; D < 128; ++D) {
    if ((D & (D - 1)) == 0)
      continue;
    for (int R = 1; R < D; ++R) {
      const Program P = genRemainderTestSigned(8, D, R);
      for (int N = -128; N < 128; ++N) {
        const bool Expected = N >= 0 && N % D == R;
        ASSERT_EQ(run(P, {static_cast<uint64_t>(N) & 0xff})[0],
                  Expected ? 1u : 0u)
            << "n=" << N << " d=" << D << " r=" << R;
      }
    }
  }
}

TEST(RemainderTestCodeGen, SignedPaperStyle100) {
  // The §9 example family: i rem 100 == r for a sweep of r at 32 bits.
  for (int64_t R : {1ll, 25ll, 50ll, 99ll}) {
    const Program P = genRemainderTestSigned(32, 100, R);
    for (int I = 0; I < 100000; ++I) {
      const int32_t N = static_cast<int32_t>(rng()());
      const bool Expected = N >= 0 && N % 100 == R;
      ASSERT_EQ(run(P, {static_cast<uint64_t>(N) & 0xffffffffull})[0],
                Expected ? 1u : 0u)
          << "n=" << N << " r=" << R;
    }
  }
}

} // namespace
