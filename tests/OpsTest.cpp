//===- tests/OpsTest.cpp - Table 3.1 primitive operation tests ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the machine model: MULUH/MULSH against wide reference
/// products, the §3 identities (SRA from SRL, MULUH <-> MULSH), XSIGN,
/// and the doubleword helpers that back CHOOSE_MULTIPLIER.
///
//===----------------------------------------------------------------------===//

#include "ops/Ops.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x243f6a8885a308d3ull);
  return Generator;
}

//===----------------------------------------------------------------------===//
// Exhaustive 8-bit checks against arithmetic done at 32-bit width.
//===----------------------------------------------------------------------===//

TEST(Ops, MulPrimitivesExhaustive8) {
  for (unsigned X = 0; X < 256; ++X) {
    for (unsigned Y = 0; Y < 256; ++Y) {
      const uint8_t UX = static_cast<uint8_t>(X);
      const uint8_t UY = static_cast<uint8_t>(Y);
      const unsigned Product = X * Y;
      EXPECT_EQ(mulL(UX, UY), static_cast<uint8_t>(Product));
      EXPECT_EQ(mulUH(UX, UY), static_cast<uint8_t>(Product >> 8));
      const int SX = static_cast<int8_t>(UX);
      const int SY = static_cast<int8_t>(UY);
      const int SProduct = SX * SY;
      EXPECT_EQ(mulSH(static_cast<int8_t>(SX), static_cast<int8_t>(SY)),
                static_cast<int8_t>(SProduct >> 8));
    }
  }
}

TEST(Ops, ShiftsAndXsignExhaustive8) {
  for (unsigned X = 0; X < 256; ++X) {
    const uint8_t UX = static_cast<uint8_t>(X);
    const int8_t SX = static_cast<int8_t>(UX);
    EXPECT_EQ(xsign(SX), SX < 0 ? -1 : 0);
    for (int Shift = 0; Shift < 8; ++Shift) {
      EXPECT_EQ(sll(UX, Shift), static_cast<uint8_t>(X << Shift));
      EXPECT_EQ(srl(UX, Shift), static_cast<uint8_t>(X >> Shift));
      // Reference SRA via sign-extended 32-bit arithmetic.
      EXPECT_EQ(sra(SX, Shift),
                static_cast<int8_t>(static_cast<int>(SX) >> Shift));
    }
    EXPECT_EQ(sllWide(UX, 8), 0);
    EXPECT_EQ(srlWide(UX, 8), 0);
  }
}

//===----------------------------------------------------------------------===//
// §3 identities, exhaustively at 8 bits and randomized at 32/64 bits.
//===----------------------------------------------------------------------===//

TEST(Ops, MulHighConversionIdentityExhaustive8) {
  for (unsigned X = 0; X < 256; ++X) {
    for (unsigned Y = 0; Y < 256; ++Y) {
      const uint8_t UX = static_cast<uint8_t>(X);
      const uint8_t UY = static_cast<uint8_t>(Y);
      EXPECT_EQ(mulUHFromMulSH(UX, UY), mulUH(UX, UY));
      EXPECT_EQ(mulSHFromMulUH(static_cast<int8_t>(UX),
                               static_cast<int8_t>(UY)),
                mulSH(static_cast<int8_t>(UX), static_cast<int8_t>(UY)));
    }
  }
}

template <typename UWord> void checkMulIdentitiesRandom(int Iterations) {
  using SWord = typename WordTraits<UWord>::SWord;
  for (int Iteration = 0; Iteration < Iterations; ++Iteration) {
    const UWord X = static_cast<UWord>(rng()());
    const UWord Y = static_cast<UWord>(rng()());
    EXPECT_EQ(mulUHFromMulSH(X, Y), mulUH(X, Y));
    EXPECT_EQ(mulSHFromMulUH(static_cast<SWord>(X), static_cast<SWord>(Y)),
              mulSH(static_cast<SWord>(X), static_cast<SWord>(Y)));
  }
}

TEST(Ops, MulHighConversionIdentityRandom16) {
  checkMulIdentitiesRandom<uint16_t>(20000);
}
TEST(Ops, MulHighConversionIdentityRandom32) {
  checkMulIdentitiesRandom<uint32_t>(20000);
}
TEST(Ops, MulHighConversionIdentityRandom64) {
  checkMulIdentitiesRandom<uint64_t>(20000);
}

TEST(Ops, MulSH64MatchesCompilerInt128) {
#ifdef __SIZEOF_INT128__
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    const int64_t X = static_cast<int64_t>(rng()());
    const int64_t Y = static_cast<int64_t>(rng()());
    const __int128 Product = static_cast<__int128>(X) * Y;
    EXPECT_EQ(mulSH(X, Y), static_cast<int64_t>(Product >> 64));
    EXPECT_EQ(
        mulUH(static_cast<uint64_t>(X), static_cast<uint64_t>(Y)),
        static_cast<uint64_t>(
            (static_cast<unsigned __int128>(static_cast<uint64_t>(X)) *
             static_cast<unsigned __int128>(static_cast<uint64_t>(Y))) >>
            64));
  }
#else
  GTEST_SKIP() << "no compiler __int128 to compare against";
#endif
}

TEST(Ops, FastPathMatchesPortableAtAllWidths) {
  // The __int128 fast path for 64-bit MULUH/MULSH must agree with the
  // portable UInt128 route bit for bit.
  for (int Iteration = 0; Iteration < 50000; ++Iteration) {
    const uint64_t X = rng()();
    const uint64_t Y = rng()();
    EXPECT_EQ(mulUH(X, Y), mulUHPortable(X, Y));
    EXPECT_EQ(mulSH(static_cast<int64_t>(X), static_cast<int64_t>(Y)),
              mulSHPortable(static_cast<int64_t>(X),
                            static_cast<int64_t>(Y)));
  }
  for (uint64_t X : {uint64_t{0}, uint64_t{1}, ~uint64_t{0},
                     uint64_t{1} << 63, (uint64_t{1} << 63) - 1})
    for (uint64_t Y : {uint64_t{0}, uint64_t{1}, ~uint64_t{0},
                       uint64_t{1} << 63}) {
      EXPECT_EQ(mulUH(X, Y), mulUHPortable(X, Y));
      EXPECT_EQ(mulSH(static_cast<int64_t>(X), static_cast<int64_t>(Y)),
                mulSHPortable(static_cast<int64_t>(X),
                              static_cast<int64_t>(Y)));
    }
}

TEST(Ops, SraViaSrlIdentityMatchesReference) {
  // SRA(x, n) = SRL(x + 2^(N-1), n) - 2^(N-1-n) is how sra() is
  // implemented; cross-check against the compiler's arithmetic shift.
  for (int Iteration = 0; Iteration < 20000; ++Iteration) {
    const int64_t X = static_cast<int64_t>(rng()());
    const int Shift = static_cast<int>(rng()() % 64);
    EXPECT_EQ(sra(X, Shift), X >> Shift);
    const int32_t X32 = static_cast<int32_t>(X);
    EXPECT_EQ(sra(X32, Shift % 32), X32 >> (Shift % 32));
  }
}

//===----------------------------------------------------------------------===//
// Doubleword helpers.
//===----------------------------------------------------------------------===//

template <typename UWord> void checkUdDivModPow2() {
  using T = WordTraits<UWord>;
  constexpr int Bits = T::Bits;
  for (int Exponent = 0; Exponent <= 2 * Bits; ++Exponent) {
    for (uint64_t D : {1ull, 2ull, 3ull, 7ull, 10ull, 255ull}) {
      if (Exponent == 2 * Bits && D == 1)
        continue; // Quotient would not fit; documented precondition.
      const UWord DWord = static_cast<UWord>(D);
      if (DWord == 0 || static_cast<uint64_t>(DWord) != D)
        continue;
      auto [Quotient, Remainder] =
          T::udDivModPow2(Exponent, T::udFromWord(DWord));
      // q*d + r must equal 2^Exponent; verify modulo 2^(2N) plus the
      // remainder range, which pins the value uniquely.
      using UDWord = typename T::UDWord;
      const UDWord Reconstructed = static_cast<UDWord>(
          Quotient * T::udFromWord(DWord) + Remainder);
      UDWord Expected;
      if (Exponent < 2 * Bits)
        Expected = T::udPow2(Exponent);
      else
        Expected = static_cast<UDWord>(T::udFromWord(UWord{0}));
      EXPECT_TRUE(Reconstructed == Expected)
          << "width=" << Bits << " exp=" << Exponent << " d=" << D;
      EXPECT_TRUE(Remainder < T::udFromWord(DWord));
    }
  }
}

TEST(Ops, UdDivModPow2AllWidths) {
  checkUdDivModPow2<uint8_t>();
  checkUdDivModPow2<uint16_t>();
  checkUdDivModPow2<uint32_t>();
  checkUdDivModPow2<uint64_t>();
}

TEST(Ops, WordTraitsHalves) {
  using T8 = WordTraits<uint8_t>;
  EXPECT_EQ(T8::udHigh(static_cast<uint16_t>(0xabcd)), 0xab);
  EXPECT_EQ(T8::udLow(static_cast<uint16_t>(0xabcd)), 0xcd);
  using T64 = WordTraits<uint64_t>;
  const UInt128 Wide = UInt128::fromHalves(7, 9);
  EXPECT_EQ(T64::udHigh(Wide), 7u);
  EXPECT_EQ(T64::udLow(Wide), 9u);
  EXPECT_EQ(T64::sdHigh(Int128(-1)), -1);
  EXPECT_EQ(T64::sdLow(Int128(-1)), ~uint64_t{0});
}

} // namespace
