//===- tests/ExactDivTest.cpp - §9 exact division tests -------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/ExactDiv.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xc0ac29b7c97c50ddull);
  return Generator;
}

//===----------------------------------------------------------------------===//
// Unsigned
//===----------------------------------------------------------------------===//

TEST(ExactUnsignedDivider, DivideExactExhaustive8) {
  for (unsigned D = 1; D < 256; ++D) {
    const ExactUnsignedDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (unsigned Q = 0; Q * D < 256; ++Q)
      EXPECT_EQ(Divider.divideExact(static_cast<uint8_t>(Q * D)), Q)
          << "q=" << Q << " d=" << D;
  }
}

TEST(ExactUnsignedDivider, IsDivisibleExhaustive8) {
  for (unsigned D = 1; D < 256; ++D) {
    const ExactUnsignedDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (unsigned N = 0; N < 256; ++N)
      EXPECT_EQ(Divider.isDivisible(static_cast<uint8_t>(N)), N % D == 0)
          << "n=" << N << " d=" << D;
  }
}

TEST(ExactUnsignedDivider, RemainderIsExhaustive8) {
  for (unsigned D = 2; D < 256; ++D) {
    const ExactUnsignedDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    for (unsigned R = 0; R < D; ++R)
      for (unsigned N = 0; N < 256; ++N)
        ASSERT_EQ(Divider.remainderIs(static_cast<uint8_t>(N),
                                      static_cast<uint8_t>(R)),
                  N % D == R)
            << "n=" << N << " d=" << D << " r=" << R;
  }
}

TEST(ExactUnsignedDivider, IsDivisible16AllDividends) {
  for (unsigned D : {3u, 4u, 6u, 10u, 12u, 100u, 255u, 256u, 768u, 10000u,
                     32768u, 65535u}) {
    const ExactUnsignedDivider<uint16_t> Divider(static_cast<uint16_t>(D));
    for (unsigned N = 0; N <= 0xffff; ++N)
      ASSERT_EQ(Divider.isDivisible(static_cast<uint16_t>(N)), N % D == 0)
          << "n=" << N << " d=" << D;
  }
}

TEST(ExactUnsignedDivider, Random32) {
  for (int I = 0; I < 2000; ++I) {
    uint32_t D = static_cast<uint32_t>(rng()() >> (rng()() % 32));
    if (D == 0)
      D = 1;
    const ExactUnsignedDivider<uint32_t> Divider(D);
    for (int J = 0; J < 100; ++J) {
      const uint64_t QRange = 0xffffffffull / D + 1;
      const uint32_t Q = static_cast<uint32_t>(rng()() % QRange);
      ASSERT_EQ(Divider.divideExact(Q * D), Q) << "q=" << Q << " d=" << D;
      const uint32_t N = static_cast<uint32_t>(rng()());
      ASSERT_EQ(Divider.isDivisible(N), N % D == 0)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(ExactUnsignedDivider, Random64) {
  for (int I = 0; I < 2000; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const ExactUnsignedDivider<uint64_t> Divider(D);
    for (int J = 0; J < 100; ++J) {
      const uint64_t QRange = ~uint64_t{0} / D; // Avoid +1 wrap at d = 1.
      const uint64_t Q = QRange == ~uint64_t{0}
                             ? rng()()
                             : rng()() % (QRange + 1);
      ASSERT_EQ(Divider.divideExact(Q * D), Q) << "q=" << Q << " d=" << D;
      const uint64_t N = rng()();
      ASSERT_EQ(Divider.isDivisible(N), N % D == 0)
          << "n=" << N << " d=" << D;
    }
  }
}

//===----------------------------------------------------------------------===//
// Signed
//===----------------------------------------------------------------------===//

TEST(ExactSignedDivider, DivideExactExhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const ExactSignedDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      if (N % D != 0)
        continue;
      if (N == -128 && D == -1)
        continue; // Quotient unrepresentable.
      EXPECT_EQ(Divider.divideExact(static_cast<int8_t>(N)),
                static_cast<int8_t>(N / D))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(ExactSignedDivider, IsDivisibleExhaustive8) {
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const ExactSignedDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N)
      EXPECT_EQ(Divider.isDivisible(static_cast<int8_t>(N)), N % D == 0)
          << "n=" << N << " d=" << D;
  }
}

TEST(ExactSignedDivider, RemainderIsExhaustive8) {
  // n rem d == r for 1 <= r < |d|; rem carries the dividend's sign, so
  // only nonnegative n can match a positive r.
  for (int D = 3; D < 128; ++D) {
    if ((D & (D - 1)) == 0)
      continue; // Power-of-two divisors use the low-bits test instead.
    const ExactSignedDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int R = 1; R < D; ++R)
      for (int N = -128; N < 128; ++N)
        ASSERT_EQ(Divider.remainderIs(static_cast<int8_t>(N),
                                      static_cast<int8_t>(R)),
                  N >= 0 && N % D == R)
            << "n=" << N << " d=" << D << " r=" << R;
  }
}

TEST(ExactSignedDivider, IsDivisible16AllDividends) {
  for (int D : {3, -3, 6, 10, -10, 100, -100, 255, 4096, -4096, 32767,
                -32768}) {
    const ExactSignedDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int N = -32768; N <= 32767; ++N)
      ASSERT_EQ(Divider.isDivisible(static_cast<int16_t>(N)), N % D == 0)
          << "n=" << N << " d=" << D;
  }
}

TEST(ExactSignedDivider, PaperDivisibleBy100Example) {
  // §9: d = 100, d_inv = (19*2^32+1)/25, q_max = (2^31-48)/25; check a
  // signed 32-bit value is divisible by 100 iff MULL(d_inv, n) is a
  // multiple of 4 in [-q_max, q_max].
  const ExactSignedDivider<int32_t> Divider(100);
  EXPECT_EQ(Divider.inverse(),
            static_cast<uint32_t>((19ull * (uint64_t{1} << 32) + 1) / 25));
  for (int32_t N : {0, 100, -100, 2147483600, -2147483600, 1, 50, 99, 101,
                    -99, -101, 2147483647,
                    std::numeric_limits<int32_t>::min()}) {
    EXPECT_EQ(Divider.isDivisible(N), N % 100 == 0) << N;
  }
  for (int I = 0; I < 100000; ++I) {
    const int32_t N = static_cast<int32_t>(rng()());
    ASSERT_EQ(Divider.isDivisible(N), N % 100 == 0) << N;
  }
}

TEST(ExactSignedDivider, PointerSubtractionUseCase) {
  // §9's motivating example: C pointer subtraction divides the byte
  // difference by the object size, which is known to divide exactly.
  struct Object {
    char Payload[48];
  };
  const ExactSignedDivider<int64_t> BySize(
      static_cast<int64_t>(sizeof(Object)));
  Object Array[1000];
  for (int I = 0; I < 1000; I += 37) {
    const int64_t ByteDiff =
        reinterpret_cast<const char *>(&Array[I]) -
        reinterpret_cast<const char *>(&Array[0]);
    EXPECT_EQ(BySize.divideExact(ByteDiff), I);
  }
}

TEST(ExactSignedDivider, Random64) {
  for (int I = 0; I < 2000; ++I) {
    int64_t D = static_cast<int64_t>(rng()()) >> (rng()() % 63);
    if (D == 0)
      D = 3;
    const ExactSignedDivider<int64_t> Divider(D);
    const uint64_t AbsD =
        D < 0 ? uint64_t{0} - static_cast<uint64_t>(D)
              : static_cast<uint64_t>(D);
    for (int J = 0; J < 100; ++J) {
      const int64_t QMax =
          static_cast<int64_t>(std::numeric_limits<int64_t>::max() /
                               static_cast<int64_t>(AbsD == 0 ? 1 : AbsD));
      if (QMax == 0)
        continue;
      const int64_t Q =
          static_cast<int64_t>(rng()()) % (QMax + 1);
      ASSERT_EQ(Divider.divideExact(Q * D), Q) << "q=" << Q << " d=" << D;
      const int64_t N = static_cast<int64_t>(rng()());
      ASSERT_EQ(Divider.isDivisible(N), N % D == 0)
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(ExactDividers, StrengthReducedLoopFromPaper) {
  // The §9 closing example: replace (i % 100 == 0) inside a loop with a
  // running test value updated by d_inv each iteration — no multiply or
  // divide remains in the loop body.
  const uint32_t DInv = static_cast<uint32_t>((19ull * (1ull << 32) + 1) / 25);
  const uint32_t QMax = static_cast<uint32_t>(((1ull << 31) - 48) / 25);
  uint32_t Test = QMax; // test = d_inv * i + q_max (mod 2^32) at i = 0.
  for (int32_t I = 0; I < 100000; ++I, Test += DInv) {
    const bool Divisible = Test <= 2 * QMax && (Test & 3) == 0;
    ASSERT_EQ(Divisible, I % 100 == 0) << I;
  }
}

} // namespace
