//===- tests/TargetTest.cpp - Backend selection/RA/emission tests ---------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 11.1 backend must preserve semantics through instruction
/// selection AND register allocation (machine interpreter vs IR
/// interpreter), respect the register file, use the HI-register multiply
/// pairs on MIPS/SPARC, and fuse scaled adds on the Alpha.
///
//===----------------------------------------------------------------------===//

#include "arch/Target.h"

#include "codegen/DivCodeGen.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::target;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x4d2d8a7c63b91f05ull);
  return Generator;
}

void checkBackendPreservesSemantics(const ir::Program &P, TargetKind Kind,
                                    int Sweep) {
  const uint64_t Mask = P.wordBits() == 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << P.wordBits()) - 1;
  MachineFunction Selected = selectInstructions(P, Kind);
  // Virtual-register execution.
  for (int J = 0; J < Sweep; ++J) {
    std::vector<uint64_t> Args;
    for (int Arg = 0; Arg < P.numArgs(); ++Arg)
      Args.push_back(rng()() & Mask);
    ASSERT_EQ(runMachine(Selected, Args), ir::run(P, Args))
        << targetDesc(Kind).Name << " (virtual regs)";
  }
  // Physical-register execution.
  allocateRegisters(Selected);
  ASSERT_LE(Selected.PeakRegisters, targetDesc(Kind).NumRegs);
  for (int J = 0; J < Sweep; ++J) {
    std::vector<uint64_t> Args;
    for (int Arg = 0; Arg < P.numArgs(); ++Arg)
      Args.push_back(rng()() & Mask);
    ASSERT_EQ(runMachine(Selected, Args), ir::run(P, Args))
        << targetDesc(Kind).Name << " (allocated)";
  }
  // Emission shouldn't crash and must mention every mnemonic once.
  const std::string Asm = emitAssembly(Selected);
  EXPECT_FALSE(Asm.empty());
}

TEST(Target, DivRemBy10AllTargets) {
  const ir::Program P32 = codegen::genUnsignedDivRem(32, 10);
  checkBackendPreservesSemantics(P32, TargetKind::Mips, 500);
  checkBackendPreservesSemantics(P32, TargetKind::Sparc, 500);
  codegen::GenOptions Power;
  Power.MulHigh = codegen::MulHighCapability::SignedOnly;
  checkBackendPreservesSemantics(codegen::genUnsignedDivRem(32, 10, Power),
                                 TargetKind::Power, 500);
  codegen::GenOptions Alpha;
  Alpha.ExpandMulBelowCycles = 23;
  checkBackendPreservesSemantics(
      codegen::genUnsignedDivRemWide(32, 64, 10, Alpha), TargetKind::Alpha,
      500);
}

TEST(Target, GalleryAcrossDivisors) {
  for (uint64_t D : {3ull, 7ull, 14ull, 641ull, 1000003ull}) {
    const ir::Program P = codegen::genUnsignedDivRem(32, D);
    checkBackendPreservesSemantics(P, TargetKind::Mips, 200);
    checkBackendPreservesSemantics(P, TargetKind::Sparc, 200);
    const ir::Program PS =
        codegen::genSignedDivRem(32, static_cast<int64_t>(D));
    checkBackendPreservesSemantics(PS, TargetKind::Mips, 200);
    const ir::Program P64 = codegen::genUnsignedDivRem(64, D);
    checkBackendPreservesSemantics(P64, TargetKind::Alpha, 200);
  }
}

TEST(Target, TwoArgFigure81Program) {
  const ir::Program P = codegen::genDWordDivRem(32, 1000003);
  MachineFunction Selected = selectInstructions(P, TargetKind::Mips);
  allocateRegisters(Selected);
  for (int J = 0; J < 500; ++J) {
    const uint64_t High = rng()() % 1000003;
    const uint64_t Low = rng()() & 0xffffffffull;
    ASSERT_EQ(runMachine(Selected, {High, Low}), ir::run(P, {High, Low}));
  }
}

TEST(Target, MipsUsesMultMfhiPair) {
  const ir::Program P = codegen::genUnsignedDiv(32, 10);
  const MachineFunction Selected = selectInstructions(P, TargetKind::Mips);
  int Multu = 0, Mfhi = 0;
  for (const MachineInstr &I : Selected.Instrs) {
    Multu += I.Mnemonic == "multu";
    Mfhi += I.Mnemonic == "mfhi";
  }
  EXPECT_EQ(Multu, 1);
  EXPECT_EQ(Mfhi, 1);
}

TEST(Target, SparcUsesRdY) {
  const ir::Program P = codegen::genUnsignedDiv(32, 10);
  const MachineFunction Selected =
      selectInstructions(P, TargetKind::Sparc);
  bool SawUmul = false, SawRdY = false;
  for (const MachineInstr &I : Selected.Instrs) {
    SawUmul |= I.Mnemonic == "umul";
    SawRdY |= I.Mnemonic.rfind("rd", 0) == 0;
  }
  EXPECT_TRUE(SawUmul);
  EXPECT_TRUE(SawRdY);
}

TEST(Target, SparcSplitsWideConstants) {
  // 0xcccccccd needs sethi + or, as the paper's SPARC column shows.
  const ir::Program P = codegen::genUnsignedDiv(32, 10);
  const MachineFunction Selected =
      selectInstructions(P, TargetKind::Sparc);
  bool SawSethi = false, SawOrImm = false;
  for (const MachineInstr &I : Selected.Instrs) {
    SawSethi |= I.Mnemonic == "sethi";
    SawOrImm |= I.Mnemonic == "or" && I.HasImm;
  }
  EXPECT_TRUE(SawSethi);
  EXPECT_TRUE(SawOrImm);
}

TEST(Target, AlphaFusesScaledAdds) {
  // The expanded multiply-free divide-by-10 contains (x << 2) ± y
  // patterns that must fuse into s4addq/s4subq, as in Table 11.1.
  codegen::GenOptions Options;
  Options.ExpandMulBelowCycles = 23;
  const ir::Program P = codegen::genUnsignedDivRemWide(32, 64, 10, Options);
  const MachineFunction Selected =
      selectInstructions(P, TargetKind::Alpha);
  int Scaled = 0, BareSll = 0;
  for (const MachineInstr &I : Selected.Instrs) {
    Scaled += I.Sem == MachineSem::ScaledAdd ||
              I.Sem == MachineSem::ScaledSub;
    BareSll += I.Mnemonic == "sll" && I.Imm <= 3 && I.Imm >= 2;
  }
  EXPECT_GT(Scaled, 0) << emitAssembly(Selected);
  // Fused shifts should not also appear as bare shifts.
  EXPECT_EQ(BareSll, 0) << emitAssembly(Selected);
  // And the machine code still divides correctly.
  MachineFunction Allocated = selectInstructions(P, TargetKind::Alpha);
  allocateRegisters(Allocated);
  for (int J = 0; J < 2000; ++J) {
    const uint64_t N = rng()() & 0xffffffffull;
    const std::vector<uint64_t> QR = runMachine(Allocated, {N});
    ASSERT_EQ(QR[0], N / 10);
    ASSERT_EQ(QR[1], N % 10);
  }
}

TEST(Target, RegisterPressureIsSmall) {
  for (uint64_t D : {7ull, 10ull, 641ull}) {
    MachineFunction MF = selectInstructions(
        codegen::genUnsignedDivRem(32, D), TargetKind::Mips);
    allocateRegisters(MF);
    EXPECT_LE(MF.PeakRegisters, 6) << "d=" << D;
  }
}

TEST(Target, GoldenMipsAssembly) {
  // The Table 11.1 MIPS shape, pinned end to end (selection + RA +
  // emission). Review against Figure 4.2 before updating.
  const ir::Program P = codegen::genUnsignedDivRem(32, 10);
  MachineFunction MF = selectInstructions(P, TargetKind::Mips);
  allocateRegisters(MF);
  const std::string Asm = emitAssembly(MF);
  const char *Expected = "  lui $3, 0xcccc0000\n"
                         "  ori $3, $3, 0xcccd\n";
  EXPECT_EQ(Asm.substr(0, std::string(Expected).size()), Expected) << Asm;
  EXPECT_NE(Asm.find("multu $2, $3"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("mfhi $3"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("srl $3, $3, 3"), std::string::npos) << Asm;
}

TEST(Target, GoldenAlphaUsesScaledOpsForDivideBy10) {
  codegen::GenOptions Options;
  Options.ExpandMulBelowCycles = 23;
  const ir::Program P =
      codegen::genUnsignedDivRemWide(32, 64, 10, Options);
  MachineFunction MF = selectInstructions(P, TargetKind::Alpha);
  allocateRegisters(MF);
  const std::string Asm = emitAssembly(MF);
  EXPECT_NE(Asm.find("s4addq"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("s4subq"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("srl"), std::string::npos) << Asm;
  EXPECT_EQ(Asm.find("mulq"), std::string::npos)
      << "multiply-free, as in the paper's Alpha column:\n" << Asm;
}

TEST(Target, EmissionShapes) {
  const ir::Program P = codegen::genUnsignedDiv(32, 10);
  MachineFunction MF = selectInstructions(P, TargetKind::Mips);
  allocateRegisters(MF);
  const std::string Asm = emitAssembly(MF);
  // MIPS is dst-first; the post-shift by 3 must appear.
  EXPECT_NE(Asm.find("srl $"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("multu $"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("; result q in $"), std::string::npos) << Asm;
}

} // namespace
