//===- tests/DWordDividerTest.cpp - Figure 8.1 tests ----------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/DWordDivider.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xbe5466cf34e90c6cull);
  return Generator;
}

TEST(DWordDivider, Exhaustive8) {
  // Every divisor; every dividend below d * 2^8 (the quotient-fits
  // precondition). That is sum(d * 256) ≈ 8.3M divisions.
  for (uint32_t D = 1; D < 256; ++D) {
    const DWordDivider<uint8_t> Divider(static_cast<uint8_t>(D));
    const uint32_t Limit = D << 8;
    for (uint32_t N = 0; N < Limit; ++N) {
      auto [Quotient, Remainder] =
          Divider.divRem(static_cast<uint16_t>(N));
      ASSERT_EQ(Quotient, N / D) << "n=" << N << " d=" << D;
      ASSERT_EQ(Remainder, N % D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(DWordDivider, Random16) {
  for (int I = 0; I < 2000; ++I) {
    uint16_t D = static_cast<uint16_t>(rng()() >> (rng()() % 16));
    if (D == 0)
      D = 1;
    const DWordDivider<uint16_t> Divider(D);
    const uint32_t Limit = static_cast<uint32_t>(D) << 16;
    for (int J = 0; J < 500; ++J) {
      const uint32_t N = static_cast<uint32_t>(rng()()) % Limit;
      auto [Quotient, Remainder] = Divider.divRem(N);
      ASSERT_EQ(Quotient, N / D) << "n=" << N << " d=" << D;
      ASSERT_EQ(Remainder, N % D) << "n=" << N << " d=" << D;
    }
    // The largest admissible dividend.
    auto [Quotient, Remainder] = Divider.divRem(Limit - 1);
    ASSERT_EQ(Quotient, (Limit - 1) / D);
    ASSERT_EQ(Remainder, (Limit - 1) % D);
  }
}

TEST(DWordDivider, Random32) {
  for (int I = 0; I < 2000; ++I) {
    uint32_t D = static_cast<uint32_t>(rng()() >> (rng()() % 32));
    if (D == 0)
      D = 1;
    const DWordDivider<uint32_t> Divider(D);
    const uint64_t Limit = static_cast<uint64_t>(D) << 32;
    for (int J = 0; J < 500; ++J) {
      const uint64_t N = rng()() % Limit;
      auto [Quotient, Remainder] = Divider.divRem(N);
      ASSERT_EQ(Quotient, static_cast<uint32_t>(N / D))
          << "n=" << N << " d=" << D;
      ASSERT_EQ(Remainder, static_cast<uint32_t>(N % D))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(DWordDivider, Random64AgainstUInt128Reference) {
  for (int I = 0; I < 500; ++I) {
    uint64_t D = rng()() >> (rng()() % 64);
    if (D == 0)
      D = 1;
    const DWordDivider<uint64_t> Divider(D);
    for (int J = 0; J < 200; ++J) {
      // n uniform in [0, d * 2^64): high word < d.
      const uint64_t High = D == 1 ? 0 : rng()() % D;
      const uint64_t Low = rng()();
      const UInt128 N = UInt128::fromHalves(High, Low);
      auto [Quotient, Remainder] = Divider.divRem(N);
      auto [RefQ, RefR] = UInt128::divMod(N, UInt128(D));
      ASSERT_EQ(Quotient, RefQ.low64())
          << "n=" << N.toString() << " d=" << D;
      ASSERT_EQ(Remainder, RefR.low64())
          << "n=" << N.toString() << " d=" << D;
    }
  }
}

TEST(DWordDivider, BoundaryDivisors64) {
  for (uint64_t D : {uint64_t{1}, uint64_t{2}, uint64_t{3},
                     uint64_t{1} << 32, (uint64_t{1} << 63) - 1,
                     uint64_t{1} << 63, (uint64_t{1} << 63) + 1,
                     ~uint64_t{0} - 1, ~uint64_t{0}}) {
    const DWordDivider<uint64_t> Divider(D);
    // Max admissible dividend: d * 2^64 - 1.
    const UInt128 Max =
        UInt128::fromHalves(D - 1, ~uint64_t{0});
    auto [Quotient, Remainder] = Divider.divRem(Max);
    auto [RefQ, RefR] = UInt128::divMod(Max, UInt128(D));
    EXPECT_EQ(Quotient, RefQ.low64()) << "d=" << D;
    EXPECT_EQ(Remainder, RefR.low64()) << "d=" << D;
    // Smallest dividends.
    for (uint64_t Low : {uint64_t{0}, uint64_t{1}, D - 1, D}) {
      auto [Q2, R2] = Divider.divRem(UInt128(Low));
      EXPECT_EQ(Q2, D == 0 ? 0 : Low / D);
      EXPECT_EQ(R2, Low % D);
    }
  }
}

TEST(DWordDivider, KnuthStylePrimitiveUse) {
  // §8's motivation: the udword/uword step of multi-precision division.
  // Divide a 256-bit number (as four 64-bit limbs) by an invariant word
  // divisor using the Figure 8.1 kernel limb by limb, and check against
  // schoolbook long division done with UInt128.
  const uint64_t D = 0x9e3779b97f4a7c15ull;
  const DWordDivider<uint64_t> Divider(D);
  uint64_t Limbs[4] = {rng()(), rng()(), rng()(), rng()() % D};
  // Long division, most significant limb first (Limbs[3] < D already).
  uint64_t Remainder = Limbs[3];
  for (int I = 2; I >= 0; --I) {
    const UInt128 Chunk = UInt128::fromHalves(Remainder, Limbs[I]);
    auto [Q, R] = Divider.divRem(Chunk);
    Remainder = R;
    auto [RefQ, RefR] = UInt128::divMod(Chunk, UInt128(D));
    ASSERT_EQ(Q, RefQ.low64());
    ASSERT_EQ(R, RefR.low64());
  }
  EXPECT_LT(Remainder, D);
}

} // namespace
