//===- tests/SignedDividerTest.cpp - Figure 5.1 tests ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "core/Divider.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x082efa98ec4e6c89ull);
  return Generator;
}

/// Reference trunc division computed in a wider signed type.
template <typename SWord> SWord refDiv(SWord N, SWord D) {
  return static_cast<SWord>(static_cast<int64_t>(N) /
                            static_cast<int64_t>(D));
}
template <typename SWord> SWord refRem(SWord N, SWord D) {
  return static_cast<SWord>(static_cast<int64_t>(N) %
                            static_cast<int64_t>(D));
}

TEST(SignedDivider, Exhaustive8) {
  // All nonzero divisors (including -128) against all dividends.
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const SignedDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      if (N == -128 && D == -1)
        continue; // Overflow case, checked separately.
      EXPECT_EQ(Divider.divide(static_cast<int8_t>(N)),
                refDiv<int8_t>(static_cast<int8_t>(N),
                               static_cast<int8_t>(D)))
          << "n=" << N << " d=" << D;
      EXPECT_EQ(Divider.remainder(static_cast<int8_t>(N)),
                refRem<int8_t>(static_cast<int8_t>(N),
                               static_cast<int8_t>(D)))
          << "n=" << N << " d=" << D;
    }
  }
}

TEST(SignedDivider, OverflowCaseMatchesHardware) {
  // The paper (§5, OVERFLOW DETECTION): n = -2^(N-1), d = -1 overflows;
  // "the algorithm in Figure 5.1 returns -2^(N-1)".
  const SignedDivider<int8_t> By8(-1);
  EXPECT_EQ(By8.divide(std::numeric_limits<int8_t>::min()),
            std::numeric_limits<int8_t>::min());
  const SignedDivider<int32_t> By32(-1);
  EXPECT_EQ(By32.divide(std::numeric_limits<int32_t>::min()),
            std::numeric_limits<int32_t>::min());
  const SignedDivider<int64_t> By64(-1);
  EXPECT_EQ(By64.divide(std::numeric_limits<int64_t>::min()),
            std::numeric_limits<int64_t>::min());
}

TEST(SignedDivider, AllDividends16ForInterestingDivisors) {
  for (int D : {1, -1, 2, -2, 3, -3, 5, -5, 7, -7, 9, 10, -10, 25, 125,
                -125, 255, 256, -256, 32767, -32767, -32768}) {
    const SignedDivider<int16_t> Divider(static_cast<int16_t>(D));
    for (int N = -32768; N <= 32767; ++N) {
      if (N == -32768 && D == -1)
        continue;
      ASSERT_EQ(Divider.divide(static_cast<int16_t>(N)),
                refDiv<int16_t>(static_cast<int16_t>(N),
                                static_cast<int16_t>(D)))
          << "n=" << N << " d=" << D;
    }
  }
}

template <typename SWord>
void checkRandomSigned(int DivisorCount, int DividendCount) {
  using UWord = std::make_unsigned_t<SWord>;
  constexpr SWord Min = std::numeric_limits<SWord>::min();
  constexpr SWord Max = std::numeric_limits<SWord>::max();
  for (int I = 0; I < DivisorCount; ++I) {
    SWord D = static_cast<SWord>(
        static_cast<UWord>(rng()() >> (rng()() % (sizeof(SWord) * 8))));
    if (D == 0)
      D = 1;
    const SignedDivider<SWord> Divider(D);
    const SWord Boundary[] = {
        SWord{0},  SWord{1},  SWord{-1}, D,
        static_cast<SWord>(-static_cast<UWord>(D)), Min,
        static_cast<SWord>(Min + 1), Max, static_cast<SWord>(Max - 1)};
    for (SWord N : Boundary) {
      if (N == Min && D == -1)
        continue;
      const int64_t Expected =
          static_cast<int64_t>(N) / static_cast<int64_t>(D);
      ASSERT_EQ(Divider.divide(N), static_cast<SWord>(Expected))
          << "n=" << static_cast<int64_t>(N)
          << " d=" << static_cast<int64_t>(D);
    }
    for (int J = 0; J < DividendCount; ++J) {
      const SWord N = static_cast<SWord>(
          static_cast<UWord>(rng()() >> (rng()() % (sizeof(SWord) * 8))));
      if (N == Min && D == -1)
        continue;
      ASSERT_EQ(Divider.divide(N),
                static_cast<SWord>(static_cast<int64_t>(N) /
                                   static_cast<int64_t>(D)))
          << "n=" << static_cast<int64_t>(N)
          << " d=" << static_cast<int64_t>(D);
    }
  }
}

TEST(SignedDivider, Random16) { checkRandomSigned<int16_t>(2000, 100); }
TEST(SignedDivider, Random32) { checkRandomSigned<int32_t>(2000, 200); }

TEST(SignedDivider, Random64) {
  for (int I = 0; I < 2000; ++I) {
    int64_t D = static_cast<int64_t>(rng()()) >> (rng()() % 63);
    if (D == 0)
      D = 3;
    const SignedDivider<int64_t> Divider(D);
    for (int J = 0; J < 200; ++J) {
      const int64_t N = static_cast<int64_t>(rng()()) >> (rng()() % 63);
      if (N == std::numeric_limits<int64_t>::min() && D == -1)
        continue;
      ASSERT_EQ(Divider.divide(N), N / D) << "n=" << N << " d=" << D;
      ASSERT_EQ(Divider.remainder(N), N % D) << "n=" << N << " d=" << D;
    }
  }
}

TEST(SignedDivider, DivideCheckedFlagsTheOnlyOverflow) {
  // §5 OVERFLOW DETECTION: only n = -2^(N-1), d = -1 overflows.
  const SignedDivider<int32_t> ByMinusOne(-1);
  bool Overflow = false;
  EXPECT_EQ(ByMinusOne.divideChecked(std::numeric_limits<int32_t>::min(),
                                     Overflow),
            std::numeric_limits<int32_t>::min());
  EXPECT_TRUE(Overflow);
  EXPECT_EQ(ByMinusOne.divideChecked(-12345, Overflow), 12345);
  EXPECT_FALSE(Overflow);
  const SignedDivider<int32_t> ByMinusTwo(-2);
  EXPECT_EQ(ByMinusTwo.divideChecked(std::numeric_limits<int32_t>::min(),
                                     Overflow),
            1073741824);
  EXPECT_FALSE(Overflow);
  // Exhaustive at 8 bits: the flag fires exactly once across all pairs.
  int Fires = 0;
  for (int D = -128; D < 128; ++D) {
    if (D == 0)
      continue;
    const SignedDivider<int8_t> Divider(static_cast<int8_t>(D));
    for (int N = -128; N < 128; ++N) {
      bool Flag = false;
      (void)Divider.divideChecked(static_cast<int8_t>(N), Flag);
      Fires += Flag;
    }
  }
  EXPECT_EQ(Fires, 1);
}

TEST(SignedDivider, IntMinDividendAllSmallDivisors) {
  // n = -2^(N-1) is the asymmetric corner of two's complement; sweep it
  // against every divisor magnitude that fits a table.
  constexpr int32_t Min32 = std::numeric_limits<int32_t>::min();
  for (int32_t D = -1000; D <= 1000; ++D) {
    if (D == 0 || D == -1)
      continue;
    const SignedDivider<int32_t> Divider(D);
    ASSERT_EQ(Divider.divide(Min32),
              static_cast<int32_t>(static_cast<int64_t>(Min32) / D))
        << "d=" << D;
  }
  // And the power-of-two magnitude divisors, including INT_MIN itself.
  for (int Bit = 1; Bit < 32; ++Bit) {
    const int32_t D = static_cast<int32_t>(int64_t{-1} << Bit);
    const SignedDivider<int32_t> Divider(D);
    ASSERT_EQ(Divider.divide(Min32),
              static_cast<int32_t>(static_cast<int64_t>(Min32) / D))
        << "d=" << D;
  }
}

TEST(SignedDivider, PaperExampleDivideBy3Cost) {
  // §5: "q = TRUNC(n/3) ... uses one multiply, one shift, one subtract."
  // Functional spot-check of the constants that make that true.
  const SignedDivider<int32_t> By3(3);
  for (int32_t N : {0, 1, 2, 3, 4, -1, -2, -3, -4, 2147483647,
                    -2147483647, std::numeric_limits<int32_t>::min()}) {
    EXPECT_EQ(By3.divide(N), N / 3) << N;
  }
}

TEST(SignedDivider, IntMinDividendPowerOfTwoNeighborhoods) {
  // n = -2^(N-1) against d = +/-2^k and +/-(2^k +/- 1): the divisors
  // where CHOOSE_MULTIPLIER's sh_post and the |d| = 2^(N-1) special
  // case all change shape. d = -1 is excluded (its wrap policy has its
  // own test below); everything else must agree with wide trunc.
  constexpr int32_t Min32 = std::numeric_limits<int32_t>::min();
  for (int Bit = 1; Bit < 32; ++Bit) {
    for (int64_t Delta : {-1, 0, 1}) {
      for (int Sign : {1, -1}) {
        const int64_t DWide = Sign * ((int64_t{1} << Bit) + Delta);
        if (DWide == 0 || DWide == -1 || DWide > 2147483647 ||
            DWide < int64_t{Min32})
          continue;
        const int32_t D = static_cast<int32_t>(DWide);
        const SignedDivider<int32_t> Divider(D);
        const auto [Quotient, Remainder] = Divider.divRem(Min32);
        ASSERT_EQ(Quotient, refDiv<int32_t>(Min32, D)) << "d=" << D;
        ASSERT_EQ(Remainder, refRem<int32_t>(Min32, D)) << "d=" << D;
      }
    }
  }
  // Same sweep at 64 bits; for d != -1 the hardware trunc is the
  // reference (INT64_MIN / d does not overflow there).
  constexpr int64_t Min64 = std::numeric_limits<int64_t>::min();
  for (int Bit = 1; Bit < 64; ++Bit) {
    for (int64_t Delta : {-1, 0, 1}) {
      for (int Sign : {1, -1}) {
        // Build |d| = 2^Bit + Delta in unsigned space so 2^63 - 1 and
        // -2^63 are reachable without overflow, then skip the pairs
        // that do not fit.
        const uint64_t Magnitude = (uint64_t{1} << Bit) + Delta;
        if (Magnitude == 0 ||
            (Sign > 0 && Magnitude > (uint64_t{1} << 63) - 1) ||
            (Sign < 0 && Magnitude > uint64_t{1} << 63))
          continue;
        // Negate in unsigned space so d = -2^63 is formed without
        // signed overflow.
        const int64_t D = static_cast<int64_t>(
            Sign > 0 ? Magnitude : ~Magnitude + 1);
        if (D == 0 || D == -1)
          continue;
        const SignedDivider<int64_t> Divider(D);
        const auto [Quotient, Remainder] = Divider.divRem(Min64);
        ASSERT_EQ(Quotient, Min64 / D) << "d=" << D;
        ASSERT_EQ(Remainder, Min64 % D) << "d=" << D;
      }
    }
  }
}

TEST(SignedDivider, IntMinByMinusOneWrapPolicyAllWidths) {
  // Documented policy for the one overflowing pair at every width:
  // divide() wraps to -2^(N-1) (matching two's-complement negation),
  // remainder() is 0, and divideChecked() raises the flag.
  const auto checkWidth = [](auto Tag) {
    using SWord = decltype(Tag);
    constexpr SWord Min = std::numeric_limits<SWord>::min();
    const SignedDivider<SWord> ByMinusOne(static_cast<SWord>(-1));
    EXPECT_EQ(ByMinusOne.divide(Min), Min);
    EXPECT_EQ(ByMinusOne.remainder(Min), 0);
    bool Overflow = false;
    EXPECT_EQ(ByMinusOne.divideChecked(Min, Overflow), Min);
    EXPECT_TRUE(Overflow);
    // One above the corner negates cleanly and leaves the flag down.
    Overflow = false;
    EXPECT_EQ(ByMinusOne.divideChecked(static_cast<SWord>(Min + 1),
                                       Overflow),
              std::numeric_limits<SWord>::max());
    EXPECT_FALSE(Overflow);
  };
  checkWidth(int8_t{});
  checkWidth(int16_t{});
  checkWidth(int32_t{});
  checkWidth(int64_t{});
}

TEST(SignedDivider, DivisorIntMinEveryWidth) {
  // d = -2^(N-1): the quotient is 1 only for n = -2^(N-1) and 0 for
  // every other n (|n| < |d|), so the remainder is n itself there.
  const auto checkWidth = [](auto Tag) {
    using SWord = decltype(Tag);
    constexpr SWord Min = std::numeric_limits<SWord>::min();
    constexpr SWord Max = std::numeric_limits<SWord>::max();
    const SignedDivider<SWord> Divider(Min);
    EXPECT_EQ(Divider.divide(Min), 1);
    EXPECT_EQ(Divider.remainder(Min), 0);
    for (SWord N : {static_cast<SWord>(Min + 1), static_cast<SWord>(-1),
                    static_cast<SWord>(0), static_cast<SWord>(1),
                    static_cast<SWord>(Max - 1), Max}) {
      const auto [Quotient, Remainder] = Divider.divRem(N);
      EXPECT_EQ(Quotient, 0) << "n=" << +N;
      EXPECT_EQ(Remainder, N) << "n=" << +N;
    }
  };
  checkWidth(int8_t{});
  checkWidth(int16_t{});
  checkWidth(int32_t{});
  checkWidth(int64_t{});
}

TEST(SignedDivider, RemainderSignMatchesDividend) {
  // §2: rem takes the sign of the dividend (C semantics).
  const SignedDivider<int32_t> By7(7);
  EXPECT_EQ(By7.remainder(10), 3);
  EXPECT_EQ(By7.remainder(-10), -3);
  const SignedDivider<int32_t> ByNeg7(-7);
  EXPECT_EQ(ByNeg7.remainder(10), 3);
  EXPECT_EQ(ByNeg7.remainder(-10), -3);
}

} // namespace
