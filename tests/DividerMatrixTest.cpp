//===- tests/DividerMatrixTest.cpp - Cross-implementation TEST_P matrix ---===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) pitting every
/// implementation of the same division against the hardware reference on
/// the same dividends: the Figure 4.1/5.1 dividers, the Figure 4.2/5.2/
/// 6.1 generated code run through the interpreter, the §7 float divider,
/// the §3-identity capability variants, and the wide (Alpha-style) form.
/// One divisor disagreement anywhere fails with the divisor in the test
/// name.
///
//===----------------------------------------------------------------------===//

#include "codegen/DivCodeGen.h"
#include "core/Divider.h"
#include "core/FastModDivider.h"
#include "core/FloatDiv.h"
#include "core/NarrowDivider.h"
#include "core/RoundUpDivider.h"
#include "ir/Interp.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace gmdiv;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0xd1cff191b3a8c1adull);
  return Generator;
}

std::vector<uint32_t> unsignedDividends(uint32_t D) {
  std::vector<uint32_t> Values = {0,          1,          2,
                                  D - 1,      D,          D + 1,
                                  2 * D,      0x7fffffffu, 0x80000000u,
                                  0xfffffffeu, 0xffffffffu};
  for (int I = 0; I < 200; ++I)
    Values.push_back(static_cast<uint32_t>(rng()()));
  return Values;
}

//===----------------------------------------------------------------------===//
// Unsigned matrix.
//===----------------------------------------------------------------------===//

class UnsignedDivisorMatrix : public ::testing::TestWithParam<uint32_t> {};

TEST_P(UnsignedDivisorMatrix, AllImplementationsAgree32) {
  const uint32_t D = GetParam();
  const UnsignedDivider<uint32_t> Divider(D);
  const FloatDivider<uint32_t> Float(D);
  const ir::Program Generated = codegen::genUnsignedDiv(32, D);
  codegen::GenOptions Power;
  Power.MulHigh = codegen::MulHighCapability::SignedOnly;
  const ir::Program SignedOnly = codegen::genUnsignedDiv(32, D, Power);
  const ir::Program Wide = codegen::genUnsignedDivWide(32, 64, D);
  codegen::GenOptions Expand;
  Expand.ExpandMulBelowCycles = 23;
  const ir::Program WideExpanded =
      codegen::genUnsignedDivWide(32, 64, D, Expand);

  for (uint32_t N : unsignedDividends(D)) {
    const uint32_t Expected = N / D;
    ASSERT_EQ(Divider.divide(N), Expected) << "Figure 4.1, n=" << N;
    ASSERT_EQ(Float.divide(N), Expected) << "§7 float, n=" << N;
    ASSERT_EQ(Float.divideViaReciprocal(N), Expected)
        << "§7 reciprocal, n=" << N;
    ASSERT_EQ(ir::run(Generated, {N})[0], Expected)
        << "Figure 4.2, n=" << N;
    ASSERT_EQ(ir::run(SignedOnly, {N})[0], Expected)
        << "§3 identity form, n=" << N;
    ASSERT_EQ(ir::run(Wide, {N})[0], Expected) << "wide form, n=" << N;
    ASSERT_EQ(ir::run(WideExpanded, {N})[0], Expected)
        << "wide expanded form, n=" << N;
  }
}

TEST_P(UnsignedDivisorMatrix, RemainderPathsAgree32) {
  const uint32_t D = GetParam();
  const UnsignedDivider<uint32_t> Divider(D);
  const ir::Program DivRem = codegen::genUnsignedDivRem(32, D);
  for (uint32_t N : unsignedDividends(D)) {
    auto [Quotient, Remainder] = Divider.divRem(N);
    const std::vector<uint64_t> QR = ir::run(DivRem, {N});
    ASSERT_EQ(Quotient, N / D);
    ASSERT_EQ(Remainder, N % D);
    ASSERT_EQ(QR[0], N / D);
    ASSERT_EQ(QR[1], N % D);
  }
}

TEST_P(UnsignedDivisorMatrix, SuccessorFamiliesAgree32) {
  // The successor families against the wide-integer Oracle AND the
  // paper's own Figure 4.1 divider, per (family, op) cell: fastmod on
  // divide/rem/divRem/isDivisible, roundup and narrow on divide/rem.
  const uint32_t D = GetParam();
  const verify::Oracle Ref(32, D, /*IsSigned=*/false);
  const UnsignedDivider<uint32_t> GM(D);
  const FastModDivider<uint32_t> FM(D);
  const RoundUpDivider<uint32_t> RU(D);
  const NarrowDivider<uint32_t> Nar(D);
  for (uint32_t N : unsignedDividends(D)) {
    const verify::DivRef R = Ref.ref(N);
    ASSERT_EQ(GM.divide(N), R.TruncQ) << "gm, n=" << N;
    ASSERT_EQ(FM.divide(N), R.TruncQ) << "fastmod, n=" << N;
    ASSERT_EQ(FM.remainder(N), R.TruncR) << "fastmod rem, n=" << N;
    ASSERT_EQ(FM.isDivisible(N), R.Divisible) << "fastmod divis, n=" << N;
    const auto QR = FM.divRem(N);
    ASSERT_EQ(QR.Quotient, GM.divide(N));
    ASSERT_EQ(QR.Remainder, GM.remainder(N));
    ASSERT_EQ(RU.divide(N), R.TruncQ) << RU.describe() << ", n=" << N;
    ASSERT_EQ(RU.remainder(N), GM.remainder(N)) << "roundup rem, n=" << N;
    ASSERT_EQ(Nar.divide(N), R.TruncQ) << "narrow, n=" << N;
    ASSERT_EQ(Nar.remainder(N), R.TruncR) << "narrow rem, n=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGallery, UnsignedDivisorMatrix,
    ::testing::Values(1u, 2u, 3u, 5u, 6u, 7u, 9u, 10u, 11u, 12u, 14u,
                      25u, 60u, 100u, 125u, 128u, 625u, 641u, 1000u,
                      65535u, 65536u, 1000003u, 0x7fffffffu, 0x80000000u,
                      0x80000001u, 0xfffffffeu, 0xffffffffu));

std::vector<uint32_t> randomUnsignedDivisors() {
  std::mt19937_64 Local(42);
  std::vector<uint32_t> Divisors;
  for (int I = 0; I < 48; ++I) {
    uint32_t D = static_cast<uint32_t>(Local() >> (Local() % 32));
    if (D == 0)
      D = 1;
    Divisors.push_back(D);
  }
  return Divisors;
}

INSTANTIATE_TEST_SUITE_P(RandomDivisors, UnsignedDivisorMatrix,
                         ::testing::ValuesIn(randomUnsignedDivisors()));

//===----------------------------------------------------------------------===//
// Signed matrix.
//===----------------------------------------------------------------------===//

class SignedDivisorMatrix : public ::testing::TestWithParam<int32_t> {};

TEST_P(SignedDivisorMatrix, AllImplementationsAgree32) {
  const int32_t D = GetParam();
  const SignedDivider<int32_t> Divider(D);
  const FloatDivider<int32_t> Float(D);
  const ir::Program Generated = codegen::genSignedDiv(32, D);
  codegen::GenOptions UOnly;
  UOnly.MulHigh = codegen::MulHighCapability::UnsignedOnly;
  const ir::Program UnsignedOnly = codegen::genSignedDiv(32, D, UOnly);

  std::vector<int32_t> Dividends = {0,     1,      -1,    D,     -D,
                                    2 * D, -2 * D, 0x7fffffff,
                                    static_cast<int32_t>(0x80000001),
                                    std::numeric_limits<int32_t>::min()};
  for (int I = 0; I < 200; ++I)
    Dividends.push_back(static_cast<int32_t>(rng()()));

  for (int32_t N : Dividends) {
    if (N == std::numeric_limits<int32_t>::min() && D == -1)
      continue;
    const int32_t Expected =
        static_cast<int32_t>(static_cast<int64_t>(N) / D);
    ASSERT_EQ(Divider.divide(N), Expected) << "Figure 5.1, n=" << N;
    ASSERT_EQ(Float.divide(N), Expected) << "§7 float, n=" << N;
    const uint64_t Bits = static_cast<uint32_t>(N);
    ASSERT_EQ(static_cast<int32_t>(ir::run(Generated, {Bits})[0]),
              Expected)
        << "Figure 5.2, n=" << N;
    ASSERT_EQ(static_cast<int32_t>(ir::run(UnsignedOnly, {Bits})[0]),
              Expected)
        << "§3 identity form, n=" << N;
  }
}

TEST_P(SignedDivisorMatrix, FloorFamilyConsistent32) {
  const int32_t D = GetParam();
  const FloorDivider<int32_t> Floor(D);
  const GeneralFloorDivider<int32_t> General(D);
  const CeilDivider<int32_t> Ceil(D);
  std::vector<int32_t> Dividends = {0, 1, -1, D, -D,
                                    std::numeric_limits<int32_t>::min(),
                                    std::numeric_limits<int32_t>::max()};
  for (int I = 0; I < 200; ++I)
    Dividends.push_back(static_cast<int32_t>(rng()()));
  for (int32_t N : Dividends) {
    if (N == std::numeric_limits<int32_t>::min() && D == -1)
      continue;
    const int32_t FloorQ = Floor.divide(N);
    ASSERT_EQ(General.divide(N), FloorQ) << "(6.1) identity, n=" << N;
    // floor <= trunc <= ceil, and they differ by at most one.
    const int32_t CeilQ = Ceil.divide(N);
    ASSERT_LE(FloorQ, CeilQ);
    ASSERT_LE(CeilQ - FloorQ, 1);
    // Exact divisions collapse all three.
    if (static_cast<int64_t>(N) % D == 0) {
      ASSERT_EQ(FloorQ, CeilQ);
    }
    // Floor modulo has the divisor's sign.
    const int32_t Mod = Floor.modulo(N);
    if (Mod != 0) {
      ASSERT_EQ(Mod < 0, D < 0) << "n=" << N;
    }
    ASSERT_EQ(General.modulo(N), Mod) << "(6.2) identity, n=" << N;
  }
}

TEST_P(SignedDivisorMatrix, SuccessorFamiliesAgree32) {
  // The signed successor wrappers against the signed Oracle and the
  // Figure 5.1 divider — including the INT_MIN / -1 row, where all of
  // them follow the Oracle's documented wrap-to-INT_MIN policy.
  const int32_t D = GetParam();
  const verify::Oracle Ref(32, static_cast<uint32_t>(D), /*IsSigned=*/true);
  const SignedDivider<int32_t> GM(D);
  const FastModSignedDivider<int32_t> FM(D);
  const NarrowSignedDivider<int32_t> Nar(D);

  std::vector<int32_t> Dividends = {0,     1,      -1,    D,     -D,
                                    2 * D, -2 * D, 0x7fffffff,
                                    static_cast<int32_t>(0x80000001),
                                    std::numeric_limits<int32_t>::min()};
  for (int I = 0; I < 200; ++I)
    Dividends.push_back(static_cast<int32_t>(rng()()));

  for (int32_t N : Dividends) {
    const verify::DivRef R = Ref.ref(static_cast<uint32_t>(N));
    const int32_t WantQ = static_cast<int32_t>(R.TruncQ);
    const int32_t WantR = static_cast<int32_t>(R.TruncR);
    // Figure 5.1 leaves INT_MIN / -1 unspecified; the successor
    // wrappers commit to the Oracle's wrap policy, so only the GM
    // comparison skips the overflow row.
    if (!R.Overflow)
      ASSERT_EQ(GM.divide(N), WantQ) << "gm, n=" << N;
    ASSERT_EQ(FM.divide(N), WantQ) << "fastmod-signed, n=" << N;
    ASSERT_EQ(FM.remainder(N), WantR) << "fastmod-signed rem, n=" << N;
    ASSERT_EQ(FM.isDivisible(N), R.Divisible)
        << "fastmod-signed divis, n=" << N;
    ASSERT_EQ(Nar.divide(N), WantQ) << "narrow-signed, n=" << N;
    ASSERT_EQ(Nar.remainder(N), WantR) << "narrow-signed rem, n=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGallery, SignedDivisorMatrix,
    ::testing::Values(1, -1, 2, -2, 3, -3, 5, -5, 7, -7, 9, -9, 10, -10,
                      25, -25, 125, -125, 256, -256, 641, -641,
                      0x40000000, -0x40000000, 0x7fffffff, -0x7fffffff));

std::vector<int32_t> randomSignedDivisors() {
  std::mt19937_64 Local(43);
  std::vector<int32_t> Divisors;
  for (int I = 0; I < 48; ++I) {
    int32_t D = static_cast<int32_t>(Local()) >>
                static_cast<int>(Local() % 31);
    if (D == 0)
      D = 17;
    Divisors.push_back(D);
  }
  return Divisors;
}

INSTANTIATE_TEST_SUITE_P(RandomDivisors, SignedDivisorMatrix,
                         ::testing::ValuesIn(randomSignedDivisors()));

//===----------------------------------------------------------------------===//
// 64-bit matrix (no float divider: N > F - 3).
//===----------------------------------------------------------------------===//

class Unsigned64DivisorMatrix
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Unsigned64DivisorMatrix, AllImplementationsAgree64) {
  const uint64_t D = GetParam();
  const UnsignedDivider<uint64_t> Divider(D);
  const ir::Program Generated = codegen::genUnsignedDiv(64, D);
  codegen::GenOptions Power;
  Power.MulHigh = codegen::MulHighCapability::SignedOnly;
  const ir::Program SignedOnly = codegen::genUnsignedDiv(64, D, Power);
  std::vector<uint64_t> Dividends = {0, 1, D - 1, D, D + 1,
                                     ~uint64_t{0} - 1, ~uint64_t{0},
                                     uint64_t{1} << 63};
  for (int I = 0; I < 200; ++I)
    Dividends.push_back(rng()());
  for (uint64_t N : Dividends) {
    const uint64_t Expected = N / D;
    ASSERT_EQ(Divider.divide(N), Expected) << "Figure 4.1, n=" << N;
    ASSERT_EQ(ir::run(Generated, {N})[0], Expected)
        << "Figure 4.2, n=" << N;
    ASSERT_EQ(ir::run(SignedOnly, {N})[0], Expected)
        << "§3 identity form, n=" << N;
  }
}

TEST_P(Unsigned64DivisorMatrix, SuccessorFamiliesAgree64) {
  // At full 64-bit width fastmod and narrow run on the emulated 128-bit
  // doubleword (the portable path arch::selectFamily refuses to *price*
  // on a 64-bit target but the templates still prove correct), roundup
  // on the native word. All three against the Oracle and Figure 4.1.
  const uint64_t D = GetParam();
  const verify::Oracle Ref(64, D, /*IsSigned=*/false);
  const UnsignedDivider<uint64_t> GM(D);
  const FastModDivider<uint64_t> FM(D);
  const RoundUpDivider<uint64_t> RU(D);
  const NarrowDivider<uint64_t> Nar(D);
  std::vector<uint64_t> Dividends = {0, 1, D - 1, D, D + 1,
                                     ~uint64_t{0} - 1, ~uint64_t{0},
                                     uint64_t{1} << 63};
  for (int I = 0; I < 200; ++I)
    Dividends.push_back(rng()());
  for (uint64_t N : Dividends) {
    const verify::DivRef R = Ref.ref(N);
    ASSERT_EQ(GM.divide(N), R.TruncQ) << "gm, n=" << N;
    ASSERT_EQ(FM.divide(N), R.TruncQ) << "fastmod, n=" << N;
    ASSERT_EQ(FM.remainder(N), R.TruncR) << "fastmod rem, n=" << N;
    ASSERT_EQ(FM.isDivisible(N), R.Divisible) << "fastmod divis, n=" << N;
    ASSERT_EQ(RU.divide(N), R.TruncQ) << RU.describe() << ", n=" << N;
    ASSERT_EQ(RU.remainder(N), R.TruncR) << "roundup rem, n=" << N;
    ASSERT_EQ(Nar.divide(N), R.TruncQ) << "narrow, n=" << N;
    ASSERT_EQ(Nar.remainder(N), R.TruncR) << "narrow rem, n=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGallery, Unsigned64DivisorMatrix,
    ::testing::Values(uint64_t{1}, uint64_t{3}, uint64_t{7}, uint64_t{10},
                      uint64_t{274177}, uint64_t{1} << 32,
                      (uint64_t{1} << 32) + 1, (uint64_t{1} << 63) - 1,
                      uint64_t{1} << 63, (uint64_t{1} << 63) + 1,
                      ~uint64_t{0} - 1, ~uint64_t{0}));

} // namespace
