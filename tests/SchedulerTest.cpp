//===- tests/SchedulerTest.cpp - List scheduler tests ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "ir/Scheduler.h"

#include "arch/CostModel.h"
#include "codegen/DivCodeGen.h"
#include "codegen/DivisionLowering.h"
#include "ir/Builder.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <random>

using namespace gmdiv;
using namespace gmdiv::ir;

namespace {

std::mt19937_64 &rng() {
  static std::mt19937_64 Generator(0x7b1466d3a0e5c917ull);
  return Generator;
}

double unitLatency(const Instr &I) {
  return opcodeIsLeaf(I.Op) ? 0 : 1;
}

TEST(Scheduler, PreservesSemanticsOnGeneratedPrograms) {
  const arch::ArchProfile &R3000 = arch::profileByName("MIPS R3000");
  for (int Bits : {8, 16, 32, 64}) {
    const uint64_t Mask =
        Bits == 64 ? ~uint64_t{0} : (uint64_t{1} << Bits) - 1;
    for (uint64_t D : {3ull, 7ull, 10ull, 641ull}) {
      const Program P = codegen::genUnsignedDivRem(Bits, D);
      const Program Scheduled = arch::scheduleForProfile(P, R3000);
      EXPECT_EQ(Scheduled.size(), P.size());
      for (int J = 0; J < 300; ++J) {
        const uint64_t N = rng()() & Mask;
        ASSERT_EQ(run(P, {N}), run(Scheduled, {N}))
            << "bits=" << Bits << " d=" << D;
      }
    }
  }
}

TEST(Scheduler, HoistsLongLatencyOps) {
  // Two independent chains: a multiply chain and an add chain, joined
  // at the end. Source order puts the adds first; the scheduler must
  // start the multiply as early as possible, reducing in-order cycles.
  Builder B(32, 2);
  const int X = B.arg(0);
  const int Y = B.arg(1);
  int Adds = Y;
  for (int I = 0; I < 6; ++I)
    Adds = B.add(Adds, B.constant(static_cast<uint64_t>(I + 1)));
  const int Product = B.mulUH(X, B.constant(0xcccccccd));
  B.markResult(B.eor(Adds, Product), "out");
  const Program P = B.take();

  const arch::ArchProfile &R3000 = arch::profileByName("MIPS R3000");
  const Program Scheduled = arch::scheduleForProfile(P, R3000);
  const double Before = arch::estimateInOrderCycles(P, R3000);
  const double After = arch::estimateInOrderCycles(Scheduled, R3000);
  EXPECT_LT(After, Before);
  // The multiply overlapped all six adds: completion ~= mul latency + 2.
  EXPECT_LE(After, R3000.mulCycles() + 3);
  for (int J = 0; J < 300; ++J) {
    const std::vector<uint64_t> Args = {rng()() & 0xffffffff,
                                        rng()() & 0xffffffff};
    ASSERT_EQ(run(P, Args), run(Scheduled, Args));
  }
}

TEST(Scheduler, InOrderCostBetweenPathAndSerial) {
  const arch::ArchProfile &R3000 = arch::profileByName("MIPS R3000");
  for (uint64_t D : {7ull, 10ull, 100ull}) {
    const Program P = codegen::genUnsignedDivRem(32, D);
    const double Path = arch::estimateCriticalPathCycles(P, R3000);
    const double InOrder = arch::estimateInOrderCycles(P, R3000);
    const double Serial = arch::estimateCost(P, R3000).Cycles;
    EXPECT_LE(Path, InOrder + 1e-9) << "d=" << D;
    EXPECT_LE(InOrder, Serial + P.operationCount()) << "d=" << D;
  }
}

TEST(Scheduler, DeterministicOutput) {
  const Program P = codegen::genUnsignedDivRem(32, 10);
  const Program A = scheduleProgram(P, unitLatency);
  const Program B2 = scheduleProgram(P, unitLatency);
  ASSERT_EQ(A.size(), B2.size());
  for (int Index = 0; Index < A.size(); ++Index) {
    EXPECT_EQ(A.instr(Index).Op, B2.instr(Index).Op);
    EXPECT_EQ(A.instr(Index).Imm, B2.instr(Index).Imm);
  }
}

TEST(Scheduler, RandomProgramsDifferential) {
  const arch::ArchProfile &Alpha = arch::profileByName("DEC Alpha 21064");
  for (int Round = 0; Round < 300; ++Round) {
    // Random DAG of arithmetic.
    Builder B(32, 2);
    std::vector<int> Values = {B.arg(0), B.arg(1), B.constant(rng()())};
    for (int Step = 0; Step < 15; ++Step) {
      const int A = Values[rng()() % Values.size()];
      const int C = Values[rng()() % Values.size()];
      switch (rng()() % 5) {
      case 0:
        Values.push_back(B.add(A, C));
        break;
      case 1:
        Values.push_back(B.mulL(A, C));
        break;
      case 2:
        Values.push_back(B.mulUH(A, C));
        break;
      case 3:
        Values.push_back(B.eor(A, C));
        break;
      default:
        Values.push_back(B.srl(A, static_cast<int>(rng()() % 32)));
        break;
      }
    }
    B.markResult(Values.back(), "out");
    B.markResult(Values[Values.size() / 2], "mid");
    const Program P = B.take();
    const Program Scheduled = arch::scheduleForProfile(P, Alpha);
    // Greedy critical-path list scheduling is not optimal on arbitrary
    // DAGs: the height heuristic can delay a shorter chain by a few
    // issue slots. Allow small slack; large regressions would still
    // signal a broken scheduler.
    EXPECT_LE(arch::estimateInOrderCycles(Scheduled, Alpha),
              arch::estimateInOrderCycles(P, Alpha) + 5)
        << "scheduler regressed the in-order estimate badly";
    for (int J = 0; J < 20; ++J) {
      const std::vector<uint64_t> Args = {rng()(), rng()()};
      ASSERT_EQ(run(P, Args), run(Scheduled, Args)) << Round;
    }
  }
}

TEST(Scheduler, ComposesWithLoweringAndPeephole) {
  // The full §10-style pipeline: lower divisions, then schedule; all
  // stages preserve semantics.
  Builder B(32, 1);
  const int N = B.arg(0);
  const int Q = B.divU(N, B.constant(10));
  const int R = B.remU(N, B.constant(10));
  B.markResult(B.add(B.mulL(Q, B.constant(3)), R), "mix");
  const Program Frontend = B.take();
  const Program Lowered = codegen::lowerDivisions(Frontend);
  const Program Scheduled = arch::scheduleForProfile(
      Lowered, arch::profileByName("MIPS R4000 (32-bit ops)"));
  for (int J = 0; J < 2000; ++J) {
    const uint64_t N0 = rng()() & 0xffffffffull;
    ASSERT_EQ(run(Frontend, {N0}), run(Scheduled, {N0}));
  }
}

} // namespace
