//===- wideint/UInt256.cpp - 256-bit unsigned integer ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "wideint/UInt256.h"

using namespace gmdiv;

UInt256 UInt256::mulFull128(UInt128 A, UInt128 B) {
  // Schoolbook over 64-bit limbs: (a1*W + a0)(b1*W + b0) with W = 2^64.
  const UInt128 LoLo = UInt128::mulFull64(A.low64(), B.low64());
  const UInt128 LoHi = UInt128::mulFull64(A.low64(), B.high64());
  const UInt128 HiLo = UInt128::mulFull64(A.high64(), B.low64());
  const UInt128 HiHi = UInt128::mulFull64(A.high64(), B.high64());

  // Accumulate the middle terms into bits [64, 192).
  UInt128 Mid = UInt128(LoLo.high64()) + UInt128(LoHi.low64()) +
                UInt128(HiLo.low64());
  const UInt128 Low =
      UInt128::fromHalves(Mid.low64(), LoLo.low64());
  const UInt128 High = HiHi + UInt128(LoHi.high64()) +
                       UInt128(HiLo.high64()) + UInt128(Mid.high64());
  return fromHalves(High, Low);
}

std::pair<UInt256, UInt256> UInt256::divMod(const UInt256 &Dividend,
                                            const UInt256 &Divisor) {
  assert(!Divisor.isZero() && "division by zero");
  if (Dividend < Divisor)
    return {UInt256(), Dividend};
  if (Dividend.Hi.isZero()) {
    // Both fit 128 bits: delegate.
    auto [Quotient, Remainder] =
        UInt128::divMod(Dividend.Lo, Divisor.Lo);
    return {UInt256(Quotient), UInt256(Remainder)};
  }
  // Bitwise long division, aligned to the leading bits.
  UInt256 Remainder;
  UInt256 Quotient;
  for (int Bit = Dividend.bitLength() - 1; Bit >= 0; --Bit) {
    // Remainder = (Remainder << 1) | dividend bit.
    Remainder = Remainder + Remainder;
    const bool BitSet =
        Bit < 128 ? Dividend.Lo.bit(Bit) : Dividend.Hi.bit(Bit - 128);
    if (BitSet)
      Remainder += UInt256(UInt128(1));
    if (!(Remainder < Divisor)) {
      Remainder -= Divisor;
      if (Bit < 128)
        Quotient.Lo = Quotient.Lo | UInt128::pow2(Bit);
      else
        Quotient.Hi = Quotient.Hi | UInt128::pow2(Bit - 128);
    }
  }
  return {Quotient, Remainder};
}

std::pair<UInt256, UInt256> UInt256::divModPow2(int Exponent,
                                                const UInt256 &Divisor) {
  assert(Exponent >= 0 && Exponent <= 256 && "exponent out of range");
  assert(!Divisor.isZero() && "division by zero");
  if (Exponent < 256)
    return divMod(pow2(Exponent), Divisor);
  assert(Divisor > UInt256(UInt128(1)) &&
         "2^256 / 1 does not fit in 256 bits");
  // Same doubling trick as UInt128::divModPow2.
  auto [Quotient, Remainder] = divMod(pow2(255), Divisor);
  const bool DoublingWrapped =
      !Remainder.high128().isZero() && Remainder.high128().bit(127);
  Quotient = Quotient + Quotient;
  Remainder = Remainder + Remainder;
  if (DoublingWrapped || Remainder >= Divisor) {
    Remainder -= Divisor;
    Quotient += UInt256(UInt128(1));
  }
  return {Quotient, Remainder};
}

std::string UInt256::toString() const {
  if (isZero())
    return "0";
  std::string Digits;
  UInt256 Value = *this;
  const UInt256 Ten(UInt128(10));
  while (!Value.isZero()) {
    auto [Quotient, Remainder] = divMod(Value, Ten);
    Digits.push_back(
        static_cast<char>('0' + Remainder.low128().low64()));
    Value = Quotient;
  }
  return std::string(Digits.rbegin(), Digits.rend());
}
