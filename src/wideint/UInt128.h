//===- wideint/UInt128.h - 128-bit unsigned integer -------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch 128-bit unsigned integer built from two 64-bit limbs.
///
/// The paper's algorithms require "udword" (2N-bit) arithmetic for an N-bit
/// machine word: CHOOSE_MULTIPLIER (Figure 6.2) computes ⌊2^(N+l)/d⌋, the
/// MULUH/MULSH primitives of Table 3.1 need full 2N-bit products, and §8
/// divides a udword by a uword. For N = 64 no standard C++ type provides
/// this, so we implement one. Multiplication decomposes into 32-bit limbs;
/// division uses short division for 64-bit divisors and a Knuth-style
/// algorithm-D loop for wider divisors. No compiler extensions are used.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_WIDEINT_UINT128_H
#define GMDIV_WIDEINT_UINT128_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

namespace gmdiv {

/// 128-bit unsigned integer with wrap-around (mod 2^128) semantics,
/// mirroring the behavior of the built-in unsigned types.
class UInt128 {
public:
  constexpr UInt128() : Lo(0), Hi(0) {}
  constexpr UInt128(uint64_t Value) : Lo(Value), Hi(0) {}

  /// Builds a value from explicit high and low 64-bit halves.
  static constexpr UInt128 fromHalves(uint64_t High, uint64_t Low) {
    UInt128 Result;
    Result.Lo = Low;
    Result.Hi = High;
    return Result;
  }

  /// Returns 2^Exponent. \p Exponent must be in [0, 128).
  static constexpr UInt128 pow2(int Exponent) {
    assert(Exponent >= 0 && Exponent < 128 && "pow2 exponent out of range");
    return UInt128(1) << Exponent;
  }

  /// Returns 2^128 - 1, the largest representable value.
  static constexpr UInt128 max() {
    return fromHalves(~uint64_t{0}, ~uint64_t{0});
  }

  constexpr uint64_t low64() const { return Lo; }
  constexpr uint64_t high64() const { return Hi; }

  /// True if the value fits in a plain uint64_t.
  constexpr bool fitsIn64() const { return Hi == 0; }

  constexpr bool isZero() const { return (Lo | Hi) == 0; }

  /// Value of bit \p Index (0 = least significant).
  constexpr bool bit(int Index) const {
    assert(Index >= 0 && Index < 128 && "bit index out of range");
    if (Index < 64)
      return (Lo >> Index) & 1;
    return (Hi >> (Index - 64)) & 1;
  }

  //===--------------------------------------------------------------------===//
  // Comparison
  //===--------------------------------------------------------------------===//

  friend constexpr bool operator==(UInt128 A, UInt128 B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend constexpr bool operator!=(UInt128 A, UInt128 B) { return !(A == B); }
  friend constexpr bool operator<(UInt128 A, UInt128 B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
  friend constexpr bool operator>(UInt128 A, UInt128 B) { return B < A; }
  friend constexpr bool operator<=(UInt128 A, UInt128 B) { return !(B < A); }
  friend constexpr bool operator>=(UInt128 A, UInt128 B) { return !(A < B); }

  //===--------------------------------------------------------------------===//
  // Addition / subtraction / negation (mod 2^128)
  //===--------------------------------------------------------------------===//

  friend constexpr UInt128 operator+(UInt128 A, UInt128 B) {
    UInt128 Result;
    Result.Lo = A.Lo + B.Lo;
    Result.Hi = A.Hi + B.Hi + (Result.Lo < A.Lo ? 1 : 0);
    return Result;
  }
  friend constexpr UInt128 operator-(UInt128 A, UInt128 B) {
    UInt128 Result;
    Result.Lo = A.Lo - B.Lo;
    Result.Hi = A.Hi - B.Hi - (A.Lo < B.Lo ? 1 : 0);
    return Result;
  }
  friend constexpr UInt128 operator-(UInt128 A) { return UInt128(0) - A; }

  UInt128 &operator+=(UInt128 B) { return *this = *this + B; }
  UInt128 &operator-=(UInt128 B) { return *this = *this - B; }

  UInt128 &operator++() { return *this += UInt128(1); }
  UInt128 &operator--() { return *this -= UInt128(1); }

  //===--------------------------------------------------------------------===//
  // Bitwise operations
  //===--------------------------------------------------------------------===//

  friend constexpr UInt128 operator&(UInt128 A, UInt128 B) {
    return fromHalves(A.Hi & B.Hi, A.Lo & B.Lo);
  }
  friend constexpr UInt128 operator|(UInt128 A, UInt128 B) {
    return fromHalves(A.Hi | B.Hi, A.Lo | B.Lo);
  }
  friend constexpr UInt128 operator^(UInt128 A, UInt128 B) {
    return fromHalves(A.Hi ^ B.Hi, A.Lo ^ B.Lo);
  }
  friend constexpr UInt128 operator~(UInt128 A) {
    return fromHalves(~A.Hi, ~A.Lo);
  }

  UInt128 &operator&=(UInt128 B) { return *this = *this & B; }
  UInt128 &operator|=(UInt128 B) { return *this = *this | B; }
  UInt128 &operator^=(UInt128 B) { return *this = *this ^ B; }

  //===--------------------------------------------------------------------===//
  // Shifts. Counts must be in [0, 128); a count of 128 is rejected by
  // assertion just like shifting a built-in type by its full width would be
  // undefined behavior.
  //===--------------------------------------------------------------------===//

  friend constexpr UInt128 operator<<(UInt128 A, int Count) {
    assert(Count >= 0 && Count < 128 && "shift count out of range");
    if (Count == 0)
      return A;
    if (Count >= 64)
      return fromHalves(A.Lo << (Count - 64), 0);
    return fromHalves((A.Hi << Count) | (A.Lo >> (64 - Count)),
                      A.Lo << Count);
  }
  friend constexpr UInt128 operator>>(UInt128 A, int Count) {
    assert(Count >= 0 && Count < 128 && "shift count out of range");
    if (Count == 0)
      return A;
    if (Count >= 64)
      return fromHalves(0, A.Hi >> (Count - 64));
    return fromHalves(A.Hi >> Count,
                      (A.Lo >> Count) | (A.Hi << (64 - Count)));
  }

  UInt128 &operator<<=(int Count) { return *this = *this << Count; }
  UInt128 &operator>>=(int Count) { return *this = *this >> Count; }

  //===--------------------------------------------------------------------===//
  // Multiplication (mod 2^128)
  //===--------------------------------------------------------------------===//

  /// Full 64x64 -> 128-bit product, computed from 32-bit limbs.
  static constexpr UInt128 mulFull64(uint64_t A, uint64_t B) {
    const uint64_t ALo = A & 0xffffffffu, AHi = A >> 32;
    const uint64_t BLo = B & 0xffffffffu, BHi = B >> 32;
    const uint64_t LoLo = ALo * BLo;
    const uint64_t LoHi = ALo * BHi;
    const uint64_t HiLo = AHi * BLo;
    const uint64_t HiHi = AHi * BHi;
    // Sum the three middle partial products' contribution to bits [32, 96).
    uint64_t Mid = (LoLo >> 32) + (LoHi & 0xffffffffu) + (HiLo & 0xffffffffu);
    uint64_t Low = (LoLo & 0xffffffffu) | (Mid << 32);
    uint64_t High = HiHi + (LoHi >> 32) + (HiLo >> 32) + (Mid >> 32);
    return fromHalves(High, Low);
  }

  friend constexpr UInt128 operator*(UInt128 A, UInt128 B) {
    UInt128 Result = mulFull64(A.Lo, B.Lo);
    Result.Hi += A.Lo * B.Hi + A.Hi * B.Lo;
    return Result;
  }
  UInt128 &operator*=(UInt128 B) { return *this = *this * B; }

  //===--------------------------------------------------------------------===//
  // Division
  //===--------------------------------------------------------------------===//

  /// Computes quotient and remainder of \p Dividend / \p Divisor.
  /// \p Divisor must be nonzero.
  static std::pair<UInt128, UInt128> divMod(UInt128 Dividend,
                                            UInt128 Divisor);

  friend UInt128 operator/(UInt128 A, UInt128 B) {
    return divMod(A, B).first;
  }
  friend UInt128 operator%(UInt128 A, UInt128 B) {
    return divMod(A, B).second;
  }
  UInt128 &operator/=(UInt128 B) { return *this = *this / B; }
  UInt128 &operator%=(UInt128 B) { return *this = *this % B; }

  /// Computes (q, r) with 2^Exponent = q * Divisor + r, 0 <= r < Divisor,
  /// for exponents up to 128 *inclusive* — the numerator itself may exceed
  /// 2^128 - 1, which divMod cannot represent. CHOOSE_MULTIPLIER needs
  /// ⌊2^(N+l)/d⌋ where N + l reaches 128 for 64-bit divisors.
  /// The quotient must fit in 128 bits (guaranteed when Divisor > 1 or
  /// Exponent < 128; asserted otherwise).
  static std::pair<UInt128, UInt128> divModPow2(int Exponent,
                                                UInt128 Divisor);

  //===--------------------------------------------------------------------===//
  // Bit scanning
  //===--------------------------------------------------------------------===//

  /// Number of leading zero bits; 128 when the value is zero.
  int countLeadingZeros() const;
  /// Number of trailing zero bits; 128 when the value is zero.
  int countTrailingZeros() const;
  /// Position of the highest set bit plus one; 0 when the value is zero.
  int bitLength() const { return 128 - countLeadingZeros(); }

  //===--------------------------------------------------------------------===//
  // Formatting
  //===--------------------------------------------------------------------===//

  /// Decimal representation, e.g. "340282366920938463463374607431768211455".
  std::string toString() const;
  /// Hexadecimal representation with "0x" prefix and no leading zeros.
  std::string toHexString() const;
  /// Parses a decimal string. Asserts on malformed input or overflow;
  /// intended for tests and constant tables, not user input.
  static UInt128 fromString(const std::string &Text);

private:
  uint64_t Lo;
  uint64_t Hi;
};

} // namespace gmdiv

#endif // GMDIV_WIDEINT_UINT128_H
