//===- wideint/UInt256.h - 256-bit unsigned integer -------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 256-bit unsigned integer assembled from two UInt128 halves — the
/// "udword" for an N = 128 machine. It exists so the paper's algorithms
/// can be instantiated one word size beyond anything the host supports,
/// demonstrating that the N-bit derivations hold for any N: with this
/// type as the doubleword, `UnsignedDivider<UInt128>` divides 128-bit
/// values by invariant 128-bit divisors using one 128x128->256
/// multiply-high — and the reference it is tested against is our own
/// (independently validated) UInt128 division.
///
/// Only the operations the algorithms need are provided: comparisons,
/// add/sub, full multiplication, shifts, and quotient/remainder (bitwise
/// long division — this type runs at divider setup and in tests, never
/// in a per-division hot path).
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_WIDEINT_UINT256_H
#define GMDIV_WIDEINT_UINT256_H

#include "wideint/UInt128.h"

#include <cassert>
#include <string>
#include <utility>

namespace gmdiv {

/// 256-bit unsigned integer with wrap-around (mod 2^256) semantics.
class UInt256 {
public:
  constexpr UInt256() = default;
  constexpr UInt256(uint64_t Value) : Lo(Value) {}
  constexpr UInt256(UInt128 Value) : Lo(Value) {}

  static constexpr UInt256 fromHalves(UInt128 High, UInt128 Low) {
    UInt256 Result;
    Result.Hi = High;
    Result.Lo = Low;
    return Result;
  }

  /// Returns 2^Exponent for Exponent in [0, 256).
  static UInt256 pow2(int Exponent) {
    assert(Exponent >= 0 && Exponent < 256 && "pow2 exponent out of range");
    if (Exponent < 128)
      return fromHalves(UInt128(0), UInt128::pow2(Exponent));
    return fromHalves(UInt128::pow2(Exponent - 128), UInt128(0));
  }

  constexpr UInt128 low128() const { return Lo; }
  constexpr UInt128 high128() const { return Hi; }
  constexpr bool isZero() const { return Lo.isZero() && Hi.isZero(); }

  friend constexpr bool operator==(const UInt256 &A, const UInt256 &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend constexpr bool operator!=(const UInt256 &A, const UInt256 &B) {
    return !(A == B);
  }
  friend constexpr bool operator<(const UInt256 &A, const UInt256 &B) {
    if (!(A.Hi == B.Hi))
      return A.Hi < B.Hi;
    return A.Lo < B.Lo;
  }
  friend constexpr bool operator>(const UInt256 &A, const UInt256 &B) {
    return B < A;
  }
  friend constexpr bool operator<=(const UInt256 &A, const UInt256 &B) {
    return !(B < A);
  }
  friend constexpr bool operator>=(const UInt256 &A, const UInt256 &B) {
    return !(A < B);
  }

  friend constexpr UInt256 operator+(const UInt256 &A, const UInt256 &B) {
    UInt256 Result;
    Result.Lo = A.Lo + B.Lo;
    Result.Hi = A.Hi + B.Hi + (Result.Lo < A.Lo ? UInt128(1) : UInt128(0));
    return Result;
  }
  friend constexpr UInt256 operator-(const UInt256 &A, const UInt256 &B) {
    UInt256 Result;
    Result.Lo = A.Lo - B.Lo;
    Result.Hi = A.Hi - B.Hi - (A.Lo < B.Lo ? UInt128(1) : UInt128(0));
    return Result;
  }
  UInt256 &operator+=(const UInt256 &B) { return *this = *this + B; }
  UInt256 &operator-=(const UInt256 &B) { return *this = *this - B; }

  friend constexpr UInt256 operator~(const UInt256 &A) {
    return fromHalves(~A.Hi, ~A.Lo);
  }

  /// Full 128x128 -> 256 product.
  static UInt256 mulFull128(UInt128 A, UInt128 B);

  friend UInt256 operator*(const UInt256 &A, const UInt256 &B) {
    UInt256 Result = mulFull128(A.Lo, B.Lo);
    Result.Hi = Result.Hi + A.Lo * B.Hi + A.Hi * B.Lo;
    return Result;
  }

  friend UInt256 operator<<(const UInt256 &A, int Count) {
    assert(Count >= 0 && Count < 256 && "shift count out of range");
    if (Count == 0)
      return A;
    if (Count >= 128)
      return fromHalves(A.Lo << (Count - 128), UInt128(0));
    return fromHalves((A.Hi << Count) | (A.Lo >> (128 - Count)),
                      A.Lo << Count);
  }
  friend UInt256 operator>>(const UInt256 &A, int Count) {
    assert(Count >= 0 && Count < 256 && "shift count out of range");
    if (Count == 0)
      return A;
    if (Count >= 128)
      return fromHalves(UInt128(0), A.Hi >> (Count - 128));
    return fromHalves(A.Hi >> Count,
                      (A.Lo >> Count) | (A.Hi << (128 - Count)));
  }

  /// Position of the highest set bit plus one; 0 for zero.
  int bitLength() const {
    if (!Hi.isZero())
      return 128 + Hi.bitLength();
    return Lo.bitLength();
  }

  /// Quotient and remainder; bitwise long division (setup paths only).
  static std::pair<UInt256, UInt256> divMod(const UInt256 &Dividend,
                                            const UInt256 &Divisor);

  /// (q, r) with 2^Exponent = q*Divisor + r, Exponent up to 256
  /// inclusive (the CHOOSE_MULTIPLIER numerator for N = 128).
  static std::pair<UInt256, UInt256> divModPow2(int Exponent,
                                                const UInt256 &Divisor);

  /// Decimal rendering (tests and diagnostics).
  std::string toString() const;

private:
  UInt128 Lo;
  UInt128 Hi;
};

} // namespace gmdiv

#endif // GMDIV_WIDEINT_UINT256_H
