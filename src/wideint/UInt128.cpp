//===- wideint/UInt128.cpp - 128-bit unsigned integer ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "wideint/UInt128.h"

#include "ops/Bits.h"

#include <array>

using namespace gmdiv;

int UInt128::countLeadingZeros() const {
  if (Hi != 0)
    return countLeadingZeros64(Hi);
  return 64 + countLeadingZeros64(Lo);
}

int UInt128::countTrailingZeros() const {
  if (Lo != 0)
    return countTrailingZeros64(Lo);
  return 64 + countTrailingZeros64(Hi);
}

namespace {

/// Decomposes a UInt128 into four base-2^32 limbs, least significant first.
std::array<uint32_t, 4> toLimbs(UInt128 Value) {
  return {static_cast<uint32_t>(Value.low64()),
          static_cast<uint32_t>(Value.low64() >> 32),
          static_cast<uint32_t>(Value.high64()),
          static_cast<uint32_t>(Value.high64() >> 32)};
}

UInt128 fromLimbs(const uint32_t *Limbs) {
  const uint64_t Low = Limbs[0] | (uint64_t{Limbs[1]} << 32);
  const uint64_t High = Limbs[2] | (uint64_t{Limbs[3]} << 32);
  return UInt128::fromHalves(High, Low);
}

/// Short division of a multi-limb dividend by a single 32-bit limb.
std::pair<UInt128, UInt128> divModShort(UInt128 Dividend, uint32_t Divisor) {
  const std::array<uint32_t, 4> U = toLimbs(Dividend);
  std::array<uint32_t, 4> Quotient = {0, 0, 0, 0};
  uint64_t Remainder = 0;
  for (int I = 3; I >= 0; --I) {
    const uint64_t Part = (Remainder << 32) | U[I];
    Quotient[I] = static_cast<uint32_t>(Part / Divisor);
    Remainder = Part % Divisor;
  }
  return {fromLimbs(Quotient.data()), UInt128(Remainder)};
}

/// Knuth's Algorithm D (TAOCP vol. 2, §4.3.1) over base-2^32 limbs, for
/// divisors of two or more limbs. Both operands have at most four limbs.
std::pair<UInt128, UInt128> divModKnuth(UInt128 Dividend, UInt128 Divisor) {
  constexpr uint64_t Base = uint64_t{1} << 32;
  std::array<uint32_t, 4> VRaw = toLimbs(Divisor);
  int N = 4;
  while (N > 0 && VRaw[N - 1] == 0)
    --N;
  assert(N >= 2 && "single-limb divisors take the short-division path");

  int M = 4;
  std::array<uint32_t, 4> URaw = toLimbs(Dividend);
  while (M > 0 && URaw[M - 1] == 0)
    --M;
  if (M < N)
    return {UInt128(0), Dividend};

  // D1: normalize so the top divisor limb has its high bit set.
  const int Shift = countLeadingZeros<uint32_t>(VRaw[N - 1]);
  std::array<uint32_t, 5> U = {0, 0, 0, 0, 0};
  std::array<uint32_t, 4> V = {0, 0, 0, 0};
  for (int I = N - 1; I > 0; --I)
    V[I] = (VRaw[I] << Shift) |
           (Shift ? static_cast<uint32_t>(uint64_t{VRaw[I - 1]} >>
                                          (32 - Shift))
                  : 0);
  V[0] = VRaw[0] << Shift;
  U[M] = Shift ? static_cast<uint32_t>(uint64_t{URaw[M - 1]} >> (32 - Shift))
               : 0;
  for (int I = M - 1; I > 0; --I)
    U[I] = (URaw[I] << Shift) |
           (Shift ? static_cast<uint32_t>(uint64_t{URaw[I - 1]} >>
                                          (32 - Shift))
                  : 0);
  U[0] = URaw[0] << Shift;

  std::array<uint32_t, 4> Quotient = {0, 0, 0, 0};

  // D2..D7: main loop.
  for (int J = M - N; J >= 0; --J) {
    // D3: estimate the quotient limb.
    const uint64_t Numerator = (uint64_t{U[J + N]} << 32) | U[J + N - 1];
    uint64_t QHat = Numerator / V[N - 1];
    uint64_t RHat = Numerator % V[N - 1];
    while (QHat >= Base ||
           QHat * V[N - 2] > ((RHat << 32) | U[J + N - 2])) {
      --QHat;
      RHat += V[N - 1];
      if (RHat >= Base)
        break;
    }

    // D4: multiply and subtract.
    int64_t Borrow = 0;
    uint64_t Carry = 0;
    for (int I = 0; I < N; ++I) {
      const uint64_t Product = QHat * V[I] + Carry;
      Carry = Product >> 32;
      const int64_t Diff = static_cast<int64_t>(U[I + J]) -
                           static_cast<int64_t>(Product & 0xffffffffu) +
                           Borrow;
      U[I + J] = static_cast<uint32_t>(Diff);
      Borrow = Diff >> 32; // Arithmetic shift: 0 or -1.
    }
    const int64_t Diff = static_cast<int64_t>(U[J + N]) -
                         static_cast<int64_t>(Carry) + Borrow;
    U[J + N] = static_cast<uint32_t>(Diff);

    // D5/D6: if we subtracted too much, add one divisor back.
    if (Diff < 0) {
      --QHat;
      uint64_t AddCarry = 0;
      for (int I = 0; I < N; ++I) {
        const uint64_t Sum = uint64_t{U[I + J]} + V[I] + AddCarry;
        U[I + J] = static_cast<uint32_t>(Sum);
        AddCarry = Sum >> 32;
      }
      U[J + N] = static_cast<uint32_t>(U[J + N] + AddCarry);
    }

    Quotient[J] = static_cast<uint32_t>(QHat);
  }

  // D8: denormalize the remainder.
  std::array<uint32_t, 4> R = {0, 0, 0, 0};
  for (int I = 0; I < N - 1; ++I)
    R[I] = (U[I] >> Shift) |
           (Shift ? static_cast<uint32_t>(uint64_t{U[I + 1]} << (32 - Shift))
                  : 0);
  R[N - 1] = U[N - 1] >> Shift;
  return {fromLimbs(Quotient.data()), fromLimbs(R.data())};
}

} // namespace

std::pair<UInt128, UInt128> UInt128::divMod(UInt128 Dividend,
                                            UInt128 Divisor) {
  assert(!Divisor.isZero() && "division by zero");
  if (Dividend < Divisor)
    return {UInt128(0), Dividend};
  if (Divisor.fitsIn64() && Divisor.low64() <= 0xffffffffu)
    return divModShort(Dividend, static_cast<uint32_t>(Divisor.low64()));
  if (Dividend.fitsIn64()) {
    // Divisor also fits (it is <= Dividend), so use native 64-bit division.
    return {UInt128(Dividend.low64() / Divisor.low64()),
            UInt128(Dividend.low64() % Divisor.low64())};
  }
  return divModKnuth(Dividend, Divisor);
}

std::pair<UInt128, UInt128> UInt128::divModPow2(int Exponent,
                                                UInt128 Divisor) {
  assert(Exponent >= 0 && Exponent <= 128 && "exponent out of range");
  assert(!Divisor.isZero() && "division by zero");
  if (Exponent < 128)
    return divMod(pow2(Exponent), Divisor);
  assert(Divisor > UInt128(1) &&
         "2^128 / 1 does not fit in 128 bits");
  // 2^128 = 2*q0*d + 2*r0 where 2^127 = q0*d + r0. Since r0 < d, a single
  // conditional subtraction reduces 2*r0 below d. Doubling r0 may wrap past
  // 2^128; in that case 2*r0 >= 2^128 > d, so the subtraction is mandatory
  // and the wrapped value minus d equals the true residue (2*r0 - d < d).
  auto [Quotient, Remainder] = divMod(pow2(127), Divisor);
  const bool DoublingWrapped = Remainder.bit(127);
  Quotient <<= 1;
  Remainder <<= 1;
  if (DoublingWrapped || Remainder >= Divisor) {
    Remainder -= Divisor;
    ++Quotient;
  }
  return {Quotient, Remainder};
}

std::string UInt128::toString() const {
  if (isZero())
    return "0";
  std::string Digits;
  UInt128 Value = *this;
  while (!Value.isZero()) {
    auto [Quotient, Remainder] = divMod(Value, UInt128(10));
    Digits.push_back(static_cast<char>('0' + Remainder.low64()));
    Value = Quotient;
  }
  return std::string(Digits.rbegin(), Digits.rend());
}

std::string UInt128::toHexString() const {
  static const char HexDigits[] = "0123456789abcdef";
  if (isZero())
    return "0x0";
  std::string Digits;
  UInt128 Value = *this;
  while (!Value.isZero()) {
    Digits.push_back(HexDigits[Value.low64() & 0xf]);
    Value >>= 4;
  }
  return "0x" + std::string(Digits.rbegin(), Digits.rend());
}

UInt128 UInt128::fromString(const std::string &Text) {
  assert(!Text.empty() && "empty string is not a number");
  UInt128 Value(0);
  for (char Ch : Text) {
    assert(Ch >= '0' && Ch <= '9' && "malformed decimal digit");
    const UInt128 Scaled = Value * UInt128(10);
    assert(divMod(Scaled, UInt128(10)).first == Value && "overflow");
    Value = Scaled + UInt128(static_cast<uint64_t>(Ch - '0'));
    assert(Value >= Scaled && "overflow");
  }
  return Value;
}
