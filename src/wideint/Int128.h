//===- wideint/Int128.h - 128-bit signed integer ----------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two's complement 128-bit signed integer on top of UInt128.
///
/// This is the paper's "sdword" for N = 64: the signed doubleword that
/// MULSH produces and that §8 uses for the remainder adjustment. Division
/// truncates toward zero, matching the dominant C convention the paper
/// discusses in §2.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_WIDEINT_INT128_H
#define GMDIV_WIDEINT_INT128_H

#include "wideint/UInt128.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

namespace gmdiv {

/// 128-bit two's complement signed integer. Addition, subtraction and
/// multiplication wrap mod 2^128 exactly like the unsigned type (two's
/// complement makes them bit-identical); comparisons, shifts and division
/// are sign-aware.
class Int128 {
public:
  constexpr Int128() : Rep() {}
  constexpr Int128(int64_t Value)
      : Rep(UInt128::fromHalves(Value < 0 ? ~uint64_t{0} : 0,
                                static_cast<uint64_t>(Value))) {}

  /// Reinterprets an unsigned 128-bit pattern as signed (two's complement).
  static constexpr Int128 fromBits(UInt128 Bits) {
    Int128 Result;
    Result.Rep = Bits;
    return Result;
  }

  /// Explicit bit-pattern conversions, so the width-generic algorithm
  /// templates can `static_cast` between the signed and unsigned views
  /// the same way they do for built-in words.
  explicit constexpr Int128(UInt128 Bits) : Rep(Bits) {}
  explicit constexpr operator UInt128() const { return Rep; }

  static constexpr Int128 min() {
    return fromBits(UInt128::pow2(127));
  }
  static constexpr Int128 max() {
    return fromBits(UInt128::pow2(127) - UInt128(1));
  }

  /// The underlying two's complement bit pattern.
  constexpr UInt128 bits() const { return Rep; }

  constexpr bool isNegative() const { return Rep.bit(127); }
  constexpr bool isZero() const { return Rep.isZero(); }

  /// Magnitude as an unsigned value; correct even for min() (2^127).
  constexpr UInt128 magnitude() const {
    return isNegative() ? -Rep : Rep;
  }

  /// Truncates to the low 64 bits (two's complement).
  constexpr int64_t low64() const {
    return static_cast<int64_t>(Rep.low64());
  }

  /// True if the value is representable as int64_t.
  constexpr bool fitsIn64() const {
    return Rep.high64() == (Rep.bit(63) ? ~uint64_t{0} : 0);
  }

  //===--------------------------------------------------------------------===//
  // Comparison (signed)
  //===--------------------------------------------------------------------===//

  friend constexpr bool operator==(Int128 A, Int128 B) {
    return A.Rep == B.Rep;
  }
  friend constexpr bool operator!=(Int128 A, Int128 B) { return !(A == B); }
  friend constexpr bool operator<(Int128 A, Int128 B) {
    if (A.isNegative() != B.isNegative())
      return A.isNegative();
    return A.Rep < B.Rep;
  }
  friend constexpr bool operator>(Int128 A, Int128 B) { return B < A; }
  friend constexpr bool operator<=(Int128 A, Int128 B) { return !(B < A); }
  friend constexpr bool operator>=(Int128 A, Int128 B) { return !(A < B); }

  //===--------------------------------------------------------------------===//
  // Arithmetic (wrapping, mod 2^128)
  //===--------------------------------------------------------------------===//

  friend constexpr Int128 operator+(Int128 A, Int128 B) {
    return fromBits(A.Rep + B.Rep);
  }
  friend constexpr Int128 operator-(Int128 A, Int128 B) {
    return fromBits(A.Rep - B.Rep);
  }
  friend constexpr Int128 operator-(Int128 A) { return fromBits(-A.Rep); }
  friend constexpr Int128 operator*(Int128 A, Int128 B) {
    return fromBits(A.Rep * B.Rep);
  }

  Int128 &operator+=(Int128 B) { return *this = *this + B; }
  Int128 &operator-=(Int128 B) { return *this = *this - B; }
  Int128 &operator*=(Int128 B) { return *this = *this * B; }

  //===--------------------------------------------------------------------===//
  // Bitwise and shifts
  //===--------------------------------------------------------------------===//

  friend constexpr Int128 operator&(Int128 A, Int128 B) {
    return fromBits(A.Rep & B.Rep);
  }
  friend constexpr Int128 operator|(Int128 A, Int128 B) {
    return fromBits(A.Rep | B.Rep);
  }
  friend constexpr Int128 operator^(Int128 A, Int128 B) {
    return fromBits(A.Rep ^ B.Rep);
  }
  friend constexpr Int128 operator~(Int128 A) { return fromBits(~A.Rep); }

  friend constexpr Int128 operator<<(Int128 A, int Count) {
    return fromBits(A.Rep << Count);
  }
  /// Arithmetic right shift (sign-propagating).
  friend constexpr Int128 operator>>(Int128 A, int Count) {
    assert(Count >= 0 && Count < 128 && "shift count out of range");
    if (!A.isNegative())
      return fromBits(A.Rep >> Count);
    if (Count == 0)
      return A;
    // Shift in ones from the top: ~(~x >> count).
    return fromBits(~(~A.Rep >> Count));
  }

  //===--------------------------------------------------------------------===//
  // Division (truncating toward zero, like C)
  //===--------------------------------------------------------------------===//

  /// Computes quotient and remainder with C semantics: the quotient
  /// truncates toward zero and the remainder has the sign of the dividend.
  /// min() / -1 wraps to min(), matching two's complement hardware.
  static std::pair<Int128, Int128> divMod(Int128 Dividend, Int128 Divisor) {
    assert(!Divisor.isZero() && "division by zero");
    auto [QMag, RMag] = UInt128::divMod(Dividend.magnitude(),
                                        Divisor.magnitude());
    const bool QNegative = Dividend.isNegative() != Divisor.isNegative();
    Int128 Quotient = fromBits(QNegative ? -QMag : QMag);
    Int128 Remainder = fromBits(Dividend.isNegative() ? -RMag : RMag);
    return {Quotient, Remainder};
  }

  friend Int128 operator/(Int128 A, Int128 B) { return divMod(A, B).first; }
  friend Int128 operator%(Int128 A, Int128 B) { return divMod(A, B).second; }

  /// Decimal representation with a leading '-' for negative values.
  std::string toString() const {
    if (!isNegative())
      return Rep.toString();
    return "-" + magnitude().toString();
  }

private:
  UInt128 Rep;
};

} // namespace gmdiv

#endif // GMDIV_WIDEINT_INT128_H
