//===- wideint/Int256.h - 256-bit signed integer ----------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two's complement 256-bit integer over UInt256 — the "sdword" for the
/// N = 128 instantiation. Only what MULSH and the signed dividers need:
/// wrapping add/sub/mul (bit-identical to unsigned), sign-aware
/// comparison, arithmetic right shift, and high/low extraction.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_WIDEINT_INT256_H
#define GMDIV_WIDEINT_INT256_H

#include "wideint/Int128.h"
#include "wideint/UInt256.h"

namespace gmdiv {

/// 256-bit two's complement signed integer.
class Int256 {
public:
  constexpr Int256() = default;
  Int256(int64_t Value)
      : Rep(UInt256::fromHalves(
            Value < 0 ? ~UInt128(0) : UInt128(0),
            UInt128::fromHalves(Value < 0 ? ~uint64_t{0} : 0,
                                static_cast<uint64_t>(Value)))) {}
  /// Sign-extends a 128-bit signed value.
  explicit Int256(Int128 Value)
      : Rep(UInt256::fromHalves(Value.isNegative() ? ~UInt128(0)
                                                   : UInt128(0),
                                Value.bits())) {}

  static constexpr Int256 fromBits(const UInt256 &Bits) {
    Int256 Result;
    Result.Rep = Bits;
    return Result;
  }
  constexpr const UInt256 &bits() const { return Rep; }

  bool isNegative() const { return Rep.high128().bit(127); }

  /// High and low 128-bit halves; the high half is the MULSH result.
  Int128 high128() const { return Int128::fromBits(Rep.high128()); }
  UInt128 low128() const { return Rep.low128(); }

  friend Int256 operator+(const Int256 &A, const Int256 &B) {
    return fromBits(A.Rep + B.Rep);
  }
  friend Int256 operator-(const Int256 &A, const Int256 &B) {
    return fromBits(A.Rep - B.Rep);
  }
  friend Int256 operator*(const Int256 &A, const Int256 &B) {
    // Two's complement: the low 256 bits of the product are
    // sign-agnostic, and signed operands were sign-extended on entry.
    return fromBits(A.Rep * B.Rep);
  }
  friend bool operator==(const Int256 &A, const Int256 &B) {
    return A.Rep == B.Rep;
  }
  friend bool operator<(const Int256 &A, const Int256 &B) {
    if (A.isNegative() != B.isNegative())
      return A.isNegative();
    return A.Rep < B.Rep;
  }

  /// Arithmetic right shift: shift in ones from the top for negatives,
  /// via ~(~x >> count).
  friend Int256 operator>>(const Int256 &A, int Count) {
    if (!A.isNegative())
      return fromBits(A.Rep >> Count);
    return fromBits(~((~A.Rep) >> Count));
  }

private:
  UInt256 Rep;
};

} // namespace gmdiv

#endif // GMDIV_WIDEINT_INT256_H
