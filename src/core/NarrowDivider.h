//===- core/NarrowDivider.h - narrow-word GM, no fixup ---------*- C++ -*-===//
//
// Part of the gmdiv project: a faithful, testable reproduction of
// "Division by Invariant Integers using Multiplication" (Granlund &
// Montgomery, PLDI 1994), grown toward successor techniques.
//
// Mitsunari–Hoshino's observation: when the operand width N is at most
// half the host word, GM's whole shift/add fixup apparatus is
// unnecessary. Take the full 2N fraction bits:
//
//   M = ceil(2^(2N) / d),   q = floor(M*n / 2^(2N))
//
// M always fits the 2N-bit doubleword (M <= 2^(2N-1) + 1 for d >= 2),
// and the error term e = M*d - 2^(2N) satisfies e <= d-1, so
// e*n <= (d-1)(2^N - 1) < 2^(2N) for *every* divisor and dividend — the
// round-up correctness condition holds unconditionally at k = 2N. The
// quotient is one widening multiply's high half: no shift (the shift
// count is exactly the doubleword width), no add, no special cases
// beyond d = 1. On a 64-bit host this turns u32 division into a single
// 64-bit multiply — the "32-on-64" trick. The canonical instantiations
// are Narrow32Divider / Narrow32SignedDivider; the template form lets
// the verify harness sweep the same algorithm at N = 4..12 and 8/16.
//
// Like FastModDivider, the eligibility condition on real hardware is
// 2N <= host word bits; arch/FamilySelect.h enforces it.
//
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_NARROWDIVIDER_H
#define GMDIV_CORE_NARROWDIVIDER_H

#include "core/FastModDivider.h" // detail::udMulHigh2N
#include "ops/Ops.h"

#include <cassert>
#include <string>

namespace gmdiv {

/// Unsigned narrow divider: one doubleword multiply per quotient.
template <typename UWordT>
class NarrowDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  using UDWord = typename Traits::UDWord;
  static constexpr int N = Traits::Bits;

  explicit NarrowDivider(UWord Divisor) : D(Divisor) {
    assert(Divisor >= 1 && "divisor must be nonzero");
    Trivial = Divisor == static_cast<UWord>(1);
    if (Trivial) {
      M = static_cast<UDWord>(0);
      return;
    }
    // M = ceil(2^(2N)/d) = floor + (2^(2N) mod d != 0).
    const auto QR = Traits::udDivModPow2(2 * N, Traits::udFromWord(D));
    const UDWord Zero = Traits::udFromWord(static_cast<UWord>(0));
    M = static_cast<UDWord>(
        QR.first +
        Traits::udFromWord(static_cast<UWord>(QR.second == Zero ? 0 : 1)));
  }

  UWord divisor() const { return D; }
  /// The 2N-bit multiplier (0 for the trivial d == 1).
  UDWord magic() const { return M; }
  int multiplierBits() const {
    return Trivial ? 0 : floorLog2(M) + 1;
  }

  /// floor(n/d) = high half of the M*n doubleword product.
  UWord divide(UWord Numerator) const {
    if (Trivial)
      return Numerator;
    return Traits::udLow(
        detail::udMulHigh2N<Traits>(M, Traits::udFromWord(Numerator)));
  }

  UWord remainder(UWord Numerator) const {
    return static_cast<UWord>(Numerator - mulL(divide(Numerator), D));
  }

  struct Result {
    UWord Quotient;
    UWord Remainder;
  };

  Result divRem(UWord Numerator) const {
    const UWord Q = divide(Numerator);
    return {Q, static_cast<UWord>(Numerator - mulL(Q, D))};
  }

  std::string describe() const {
    if (Trivial)
      return "narrow: d=1 passthrough";
    return "narrow: q = MULUH_" + std::to_string(2 * N) +
           "(M, n), M bits=" + std::to_string(multiplierBits()) +
           ", no shift, no fixup";
  }

private:
  UWord D;
  UDWord M;
  bool Trivial;
};

/// Signed wrapper: |n|, |d| through the unsigned core, signs patched
/// with the EOR/subtract idiom. INT_MIN / -1 wraps to INT_MIN with
/// remainder 0 (the Oracle's documented overflow policy).
template <typename SWordT>
class NarrowSignedDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;
  using UDWord = typename Traits::UDWord;
  static constexpr int N = Traits::Bits;

  explicit NarrowSignedDivider(SWord Divisor)
      : D(Divisor), U(absWord(Divisor)),
        DSignMask(static_cast<UWord>(xsign(Divisor))) {
    assert(Divisor != static_cast<SWord>(0) && "divisor must be nonzero");
  }

  SWord divisor() const { return D; }
  UDWord magic() const { return U.magic(); }
  int multiplierBits() const { return U.multiplierBits(); }

  SWord divide(SWord Numerator) const {
    const UWord Quot = U.divide(absWord(Numerator));
    const UWord Mask =
        static_cast<UWord>(static_cast<UWord>(xsign(Numerator)) ^ DSignMask);
    return static_cast<SWord>(static_cast<UWord>((Quot ^ Mask) - Mask));
  }

  SWord remainder(SWord Numerator) const {
    const UWord Rem = U.remainder(absWord(Numerator));
    const UWord Mask = static_cast<UWord>(xsign(Numerator));
    return static_cast<SWord>(static_cast<UWord>((Rem ^ Mask) - Mask));
  }

  std::string describe() const {
    return "narrow-signed over |d|: " + U.describe();
  }

private:
  static UWord absWord(SWord Value) {
    const UWord Mask = static_cast<UWord>(xsign(Value));
    return static_cast<UWord>((static_cast<UWord>(Value) ^ Mask) - Mask);
  }

  SWord D;
  NarrowDivider<UWord> U;
  UWord DSignMask;
};

/// The canonical Mitsunari–Hoshino instantiations: u32/i32 served by one
/// 64-bit multiply on 64-bit hosts.
using Narrow32Divider = NarrowDivider<uint32_t>;
using Narrow32SignedDivider = NarrowSignedDivider<int32_t>;

} // namespace gmdiv

#endif // GMDIV_CORE_NARROWDIVIDER_H
