//===- core/MultiPrecision.h - §8 applied: bignum / word ops ----*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §8 exists because "one primitive operation for multiple precision
/// arithmetic [Knuth v2, p. 251] is the division of a udword by a
/// uword". This header is that primitive put to work: divide, reduce
/// and decimal-format arbitrary-length little-endian limb arrays with an
/// invariant word divisor, each long-division step running the
/// Figure 8.1 kernel instead of a hardware divide.
///
/// Decimal conversion divides by 10^19 (the largest power of ten in a
/// 64-bit word) per round, producing 19 digits per multi-precision
/// pass — the production-grade version of the paper's radix-conversion
/// workload.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_MULTIPRECISION_H
#define GMDIV_CORE_MULTIPRECISION_H

#include "core/DWordDivider.h"

#include <cassert>
#include <string>
#include <vector>

namespace gmdiv {
namespace multiprecision {

/// Divides the little-endian limb array in place by the divider's word
/// divisor; returns the remainder. One Figure 8.1 kernel call per limb.
inline uint64_t divModInPlace(std::vector<uint64_t> &Limbs,
                              const DWordDivider<uint64_t> &ByD) {
  uint64_t Remainder = 0;
  for (size_t Index = Limbs.size(); Index-- > 0;) {
    auto [Quotient, NextRemainder] =
        ByD.divRem(UInt128::fromHalves(Remainder, Limbs[Index]));
    Limbs[Index] = Quotient;
    Remainder = NextRemainder;
  }
  return Remainder;
}

/// n mod d for a limb array, without modifying it.
inline uint64_t mod(const std::vector<uint64_t> &Limbs,
                    const DWordDivider<uint64_t> &ByD) {
  uint64_t Remainder = 0;
  for (size_t Index = Limbs.size(); Index-- > 0;) {
    Remainder =
        ByD.divRem(UInt128::fromHalves(Remainder, Limbs[Index])).second;
  }
  return Remainder;
}

/// True when every limb is zero (the canonical zero may have any
/// length, including none).
inline bool isZero(const std::vector<uint64_t> &Limbs) {
  for (uint64_t Limb : Limbs)
    if (Limb != 0)
      return false;
  return true;
}

/// Multiplies the limb array in place by a word and adds a word carry
/// (the inverse building block, used by parsing and by tests).
inline void mulAddInPlace(std::vector<uint64_t> &Limbs, uint64_t Factor,
                          uint64_t Addend) {
  uint64_t Carry = Addend;
  for (uint64_t &Limb : Limbs) {
    const UInt128 Product =
        UInt128::mulFull64(Limb, Factor) + UInt128(Carry);
    Limb = Product.low64();
    Carry = Product.high64();
  }
  if (Carry != 0)
    Limbs.push_back(Carry);
}

/// Decimal rendering via invariant division by 10^19.
inline std::string toDecimalString(std::vector<uint64_t> Limbs) {
  static constexpr uint64_t Chunk = 10000000000000000000ull; // 10^19.
  static const DWordDivider<uint64_t> ByChunk(Chunk);
  if (isZero(Limbs))
    return "0";
  std::string Digits;
  while (!isZero(Limbs)) {
    uint64_t Part = divModInPlace(Limbs, ByChunk);
    while (!Limbs.empty() && Limbs.back() == 0)
      Limbs.pop_back();
    const bool Last = isZero(Limbs);
    // 19 digits per chunk, left-padded with zeros except the leading one.
    for (int DigitIndex = 0; DigitIndex < 19; ++DigitIndex) {
      Digits.push_back(static_cast<char>('0' + Part % 10));
      Part /= 10;
      if (Last && Part == 0)
        break;
    }
  }
  return std::string(Digits.rbegin(), Digits.rend());
}

/// Parses a decimal string into limbs. Asserts on malformed input;
/// intended for tests and fixtures.
inline std::vector<uint64_t> fromDecimalString(const std::string &Text) {
  assert(!Text.empty() && "empty string is not a number");
  std::vector<uint64_t> Limbs;
  for (char Ch : Text) {
    assert(Ch >= '0' && Ch <= '9' && "malformed decimal digit");
    if (Limbs.empty())
      Limbs.push_back(0);
    mulAddInPlace(Limbs, 10, static_cast<uint64_t>(Ch - '0'));
  }
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  return Limbs;
}

} // namespace multiprecision
} // namespace gmdiv

#endif // GMDIV_CORE_MULTIPRECISION_H
