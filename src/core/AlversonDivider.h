//===- core/AlversonDivider.h - The Alverson [1] baseline -------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prior art the paper builds on: Robert Alverson, "Integer division
/// using reciprocals" (ARITH-10, 1991), deployed on the Tera Computer
/// System. Alverson picks the reciprocal f = ⌈2^(N+l)/d⌉ with
/// l = ⌈log2 d⌉ — always rounding up, no reduction — so f occupies
/// N+1 bits for every non-power-of-two divisor and every division pays
/// the full n + MULUH(f - 2^N, n) correction sequence.
///
/// Granlund & Montgomery's CHOOSE_MULTIPLIER improves on exactly this:
/// the (m_low, m_high) interval plus the lowest-terms reduction lets the
/// multiplier fit a machine word for most divisors, dropping the two
/// adds and one shift (compare Figure 4.1's sh1/sh2 with the plain
/// MULUH/SRL form). This class is the faithful baseline so benches can
/// measure that difference; correctness is identical.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_ALVERSONDIVIDER_H
#define GMDIV_CORE_ALVERSONDIVIDER_H

#include "ops/Bits.h"
#include "ops/Ops.h"

#include <cassert>

namespace gmdiv {

/// Unsigned invariant-divisor division with Alverson's always-round-up
/// N+1-bit reciprocal.
template <typename UWordT> class AlversonDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  static constexpr int N = Traits::Bits;

  explicit AlversonDivider(UWord Divisor) : D(Divisor) {
    assert(Divisor >= 1 && "divisor must be nonzero");
    L = ceilLog2(Divisor);
    // f = ceil(2^(N+l)/d); f - 2^N is the word-sized part.
    auto [Quotient, Remainder] =
        Traits::udDivModPow2(N + L, Traits::udFromWord(Divisor));
    if (!(Remainder == Traits::udFromWord(UWord{0})))
      Quotient = Quotient + Traits::udFromWord(UWord{1});
    FPrime = Traits::udLow(
        Quotient - Traits::udPow2(N)); // f - 2^N, zero for powers of 2.
    Shift1 = L < 1 ? L : 1;
    Shift2 = L - 1 > 0 ? L - 1 : 0;
  }

  UWord divisor() const { return D; }
  /// The low word of the N+1-bit reciprocal (f - 2^N).
  UWord reciprocalLow() const { return FPrime; }

  /// ⌊n/d⌋ — always the long correction sequence, Alverson-style.
  UWord divide(UWord N0) const {
    const UWord T1 = mulUH(FPrime, N0);
    const UWord Sum =
        static_cast<UWord>(T1 + srl(static_cast<UWord>(N0 - T1), Shift1));
    return srl(Sum, Shift2);
  }

  /// n mod d.
  UWord remainder(UWord N0) const {
    return static_cast<UWord>(N0 - mulL(divide(N0), D));
  }

private:
  UWord D;
  UWord FPrime;
  int L;
  int Shift1;
  int Shift2;
};

} // namespace gmdiv

#endif // GMDIV_CORE_ALVERSONDIVIDER_H
