//===- core/DWordDivider.h - Figure 8.1 udword/uword division ----*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §8: division of an unsigned doubleword by a run-time invariant unsigned
/// word, yielding word quotient and remainder — the primitive operation of
/// multiple-precision arithmetic [Knuth v2, §4.3.1].
///
/// After initialization depending only on the divisor, each division costs
/// two multiplications plus ~20 simple operations (Figure 8.1), with no
/// hardware divide. Lemma 8.1 guarantees the first estimate q1 satisfies
/// 0 <= n - q1*d < 2*d, so a single conditional correction finishes.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_DWORDDIVIDER_H
#define GMDIV_CORE_DWORDDIVIDER_H

#include "ops/Bits.h"
#include "ops/Ops.h"

#include <cassert>
#include <utility>

namespace gmdiv {

/// Divides 2N-bit dividends by an invariant N-bit divisor (Figure 8.1).
/// The quotient must fit in a word, i.e. HIGH(n) < d.
template <typename UWordT> class DWordDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  using UDWord = typename Traits::UDWord;
  using SWord = typename Traits::SWord;
  static constexpr int N = Traits::Bits;

  /// Precomputes the reciprocal state. \p Divisor must be nonzero.
  explicit DWordDivider(UWord Divisor) : D(Divisor) {
    assert(Divisor > 0 && "divisor must be nonzero");
    // l = 1 + ⌊log2 d⌋, so 2^(l-1) <= d < 2^l, 1 <= l <= N.
    L = 1 + floorLog2(Divisor);
    // m' = ⌊(2^(N+l) - 1)/d⌋ - 2^N  (the paper's ⌊2^N*(2^l - d) - 1)/d⌋).
    // Note this rounds the reciprocal *down*, unlike the earlier sections.
    auto [Quotient, Remainder] =
        Traits::udDivModPow2(N + L, Traits::udFromWord(Divisor));
    if (Remainder == Traits::udFromWord(UWord{0}))
      Quotient = static_cast<UDWord>(Quotient - Traits::udFromWord(UWord{1}));
    MPrime = Traits::udLow(
        static_cast<UDWord>(Quotient - Traits::udPow2(N)));
    // Normalized divisor d * 2^(N-l) with its top bit set.
    DNorm = sll(Divisor, N - L);
  }

  UWord divisor() const { return D; }

  /// Computes (q, r) with n = q*d + r, 0 <= r < d.
  /// Requires HIGH(n) < d so the quotient fits in a word.
  std::pair<UWord, UWord> divRem(UDWord N0) const {
    assert(Traits::udHigh(N0) < D && "quotient would overflow a word");
    const UWord High = Traits::udHigh(N0);
    const UWord Low = Traits::udLow(N0);

    // n2 = top N bits of n below bit N+l; n10 = the next bits, aligned so
    // that n1 (bit l-1 of LOW(n)) lands in the sign position.
    const UWord N2 =
        static_cast<UWord>(sll(High, N - L) + srlWide(Low, L));
    const UWord N10 = sll(Low, N - L);

    // -n1 as a mask: all ones if bit N-1 of n10 is set.
    const UWord N1Mask = static_cast<UWord>(xsign(static_cast<SWord>(N10)));
    // n_adj = n10 + n1*(d_norm - 2^N); in N-bit arithmetic the -2^N term
    // vanishes, and the true value is nonnegative (underflow impossible).
    const UWord NAdj = static_cast<UWord>(N10 + (N1Mask & DNorm));

    // q1 = n2 + HIGH(m' * (n2 - (-n1)) + n_adj)   [Lemma 8.1].
    const UDWord Product =
        Traits::udFromWord(MPrime) *
        Traits::udFromWord(static_cast<UWord>(N2 - N1Mask));
    const UWord Q1 = static_cast<UWord>(
        N2 + Traits::udHigh(static_cast<UDWord>(
                 Product + Traits::udFromWord(NAdj))));

    // dr = n - q1*d - d, a signed doubleword in [-d, d). Computed as
    // n + (2^N - 1 - q1)*d - 2^N*d so everything stays unsigned.
    const UDWord DR = static_cast<UDWord>(
        static_cast<UDWord>(
            N0 + Traits::udFromWord(static_cast<UWord>(~Q1)) *
                     Traits::udFromWord(D)) -
        static_cast<UDWord>(Traits::udFromWord(D) << N));

    // HIGH(dr) is 0 if dr >= 0, all ones if dr < 0.
    const UWord DRHigh = Traits::udHigh(DR);
    const UWord Quotient = static_cast<UWord>(Q1 + UWord{1} + DRHigh);
    const UWord Remainder =
        static_cast<UWord>(Traits::udLow(DR) + (D & DRHigh));
    return {Quotient, Remainder};
  }

  /// Quotient only.
  UWord divide(UDWord N0) const { return divRem(N0).first; }

  /// Full 2N-bit quotient for arbitrary dividends (no HIGH(n) < d
  /// precondition): two applications of the Figure 8.1 kernel, exactly
  /// how multi-precision long division strings it limb by limb.
  struct FullQuotient {
    UWord QuotientHigh;
    UWord QuotientLow;
    UWord Remainder;
  };
  FullQuotient divRemFull(UDWord N0) const {
    // High limb first: HIGH(n) = qh*d + r1 with qh < 2^N since the
    // chunk's own high word is zero.
    auto [QuotientHigh, R1] =
        divRem(static_cast<UDWord>(Traits::udFromWord(Traits::udHigh(N0))));
    // Then the (r1, LOW(n)) chunk, whose high word r1 < d.
    const UDWord Chunk = static_cast<UDWord>(
        static_cast<UDWord>(Traits::udFromWord(R1) << N) +
        Traits::udFromWord(Traits::udLow(N0)));
    auto [QuotientLow, Remainder] = divRem(Chunk);
    return {QuotientHigh, QuotientLow, Remainder};
  }

private:
  UWord D;
  UWord MPrime;
  UWord DNorm;
  int L;
};

} // namespace gmdiv

#endif // GMDIV_CORE_DWORDDIVIDER_H
