//===- core/RoundUpDivider.h - round-up variant, optimal bounds -*- C++ -*-===//
//
// Part of the gmdiv project: a faithful, testable reproduction of
// "Division by Invariant Integers using Multiplication" (Granlund &
// Montgomery, PLDI 1994), grown toward successor techniques.
//
// The round-up family: q = floor(m*n / 2^k) with m = ceil(2^k/d) (the
// "round-up" form), or q = floor(m*(n+1) / 2^k) with m = floor(2^k/d)
// and a saturating increment (the "increment" form). Either way the
// post-multiply fixup adds GM's Figure 4.1 needs (the n + t1 overflow
// dance) disappears: one MULUH, one shift, optionally one increment.
//
// GM's Theorem 4.2 brackets the multiplier into [2^N, 2^(N+1)) and
// accepts the fixup when m overflows a word. Lemire–Bartlett–Kaser
// ("Integer Division by Constants: Optimal Bounds", arXiv:2012.12369)
// prove the *minimal* k for which a word-sized round-up or increment
// multiplier exists; the full correctness proof of the round-up variant
// is arXiv:2412.03680. Both reduce to exact O(1) predicates on (d, m, k)
// — encoded here as checkRoundUpMultiplier(), the family's analogue of
// verify::checkMultiplier — evaluated at the single worst-case dividend:
//
//   round-up  (e = m*d - 2^k >= 0):  e * nstar < 2^k where nstar is the
//             largest n < 2^N with n == -1 (mod d)       [d <= 2^(N-1)]
//   increment (e' = 2^k - m*d > 0):  e' * (n0+1) <= 2^k where n0 is the
//             largest multiple of d below 2^N            [d <= 2^(N-1)]
//
// plus direct endpoint checks for d > 2^(N-1) (where quotients are only
// 0 or 1) and for the saturated top dividend of the increment form.
// chooseRoundUpMultiplier() scans k upward from N and returns the first
// (minimal) admissible pair, preferring round-up over increment at equal
// k; divisors admitting neither within k <= 2N-1 fall back to an
// embedded GM divider (Mode::Fixup) so the family stays total.
//
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_ROUNDUPDIVIDER_H
#define GMDIV_CORE_ROUNDUPDIVIDER_H

#include "core/Divider.h"
#include "ops/Ops.h"

#include <cassert>
#include <optional>
#include <string>

namespace gmdiv {

/// Exact correctness test for a round-up/increment multiplier: true iff
/// floor(M*n / 2^K) (round-up) resp. floor(M*(n+1 saturating) / 2^K)
/// (increment) equals floor(n / Divisor) for every n in [0, 2^N).
/// Constant-time — evaluates the closed-form worst-case dividends rather
/// than sweeping. Requires N <= K <= 2N-1 and a word-sized M (a
/// multiplier that does not fit a word is reported unusable, mirroring
/// MultiplierCheck::FitsWord).
template <typename UWord>
bool checkRoundUpMultiplier(UWord Divisor,
                            typename WordTraits<UWord>::UDWord M, int K,
                            bool IncrementVariant) {
  using T = WordTraits<UWord>;
  using UDWord = typename T::UDWord;
  constexpr int N = T::Bits;
  assert(Divisor >= 1 && "divisor must be nonzero");
  assert(K >= N && K < 2 * N && "k out of range");

  const UDWord Zero = T::udFromWord(static_cast<UWord>(0));
  const UDWord One = T::udFromWord(static_cast<UWord>(1));
  const UDWord DW = T::udFromWord(Divisor);
  if (M == Zero || !(M < T::udPow2(N)))
    return false;
  const UDWord P2K = T::udPow2(K);
  const UDWord MaxN = static_cast<UDWord>(T::udPow2(N) - One);
  const UDWord TopQ = T::udDivMod(MaxN, DW).first;
  const UDWord HalfN = T::udPow2(N - 1);
  const UDWord MD = static_cast<UDWord>(M * DW);

  if (!IncrementVariant) {
    // Round-up form: m*d = 2^k + e with e >= 0.
    if (MD < P2K)
      return false;
    const UDWord E = static_cast<UDWord>(MD - P2K);
    if (E == Zero)
      return true; // exact reciprocal: d divides 2^k
    if (DW > HalfN) {
      // Quotients are only 0 (n <= d-1) and 1 (n >= d); monotonicity
      // reduces correctness to the two extreme dividends.
      return static_cast<UDWord>(M * static_cast<UDWord>(DW - One)) >> K ==
                 Zero &&
             static_cast<UDWord>(M * MaxN) >> K == One;
    }
    // d <= 2^(N-1): the binding dividend is the largest n == -1 (mod d).
    const UDWord Gap =
        T::udDivMod(static_cast<UDWord>(MaxN - (DW - One)), DW).second;
    const UDWord NStar = static_cast<UDWord>(MaxN - Gap);
    return static_cast<UDWord>(E * NStar) < P2K;
  }

  // Increment form: m*d = 2^k - e' with e' > 0 (e' == 0 is the exact
  // case, which belongs to the round-up form).
  if (!(MD < P2K))
    return false;
  const UDWord EP = static_cast<UDWord>(P2K - MD);
  bool Ok;
  if (DW > HalfN) {
    if (DW == MaxN)
      return false; // n = d-1 and the saturated top collide on m*(2^N-1)
    Ok = static_cast<UDWord>(M * DW) >> K == Zero &&
         static_cast<UDWord>(M * static_cast<UDWord>(DW + One)) >> K == One;
  } else {
    if (EP > MaxN)
      return false;
    // The binding unsaturated dividend is the largest multiple of d.
    const UDWord NZero =
        static_cast<UDWord>(DW * T::udDivMod(MaxN, DW).first);
    Ok = !(static_cast<UDWord>(EP * static_cast<UDWord>(NZero + One)) > P2K);
  }
  // The saturating increment clamps n = 2^N-1 to itself; that dividend
  // must still produce the top quotient.
  return Ok && static_cast<UDWord>(M * MaxN) >> K == TopQ;
}

/// What chooseRoundUpMultiplier decided for a divisor.
template <typename UWordT> struct RoundUpChoice {
  using UWord = UWordT;
  using UDWord = typename WordTraits<UWord>::UDWord;

  enum class Kind {
    Shift,     ///< d = 2^l: plain SRL, no multiply.
    RoundUp,   ///< q = SRL(MULUH(m, n), k - N), m = ceil(2^k/d).
    Increment, ///< q = SRL(MULUH(m, n + (n < 2^N-1)), k - N), m = floor.
    Fixup,     ///< no word-sized multiplier up to k = 2N-1: GM fallback.
  };

  Kind Mode = Kind::Fixup;
  UDWord Multiplier{}; ///< word-sized m (RoundUp/Increment modes only)
  int TotalShift = 0;  ///< k; the run-time post-shift is k - N
  int MultiplierBits = 0;

  static const char *kindName(Kind K) {
    switch (K) {
    case Kind::Shift:
      return "shift";
    case Kind::RoundUp:
      return "round-up";
    case Kind::Increment:
      return "increment";
    case Kind::Fixup:
      return "gm-fixup";
    }
    return "?";
  }
};

/// Minimal-k scan per the Optimal Bounds criterion: the first k in
/// [N, 2N-1] admitting a word-sized multiplier wins, round-up preferred
/// over increment at equal k (it saves the increment op).
template <typename UWord>
RoundUpChoice<UWord> chooseRoundUpMultiplier(UWord Divisor) {
  using T = WordTraits<UWord>;
  using UDWord = typename T::UDWord;
  using Choice = RoundUpChoice<UWord>;
  constexpr int N = T::Bits;
  assert(Divisor >= 1 && "divisor must be nonzero");

  Choice C;
  if (isPowerOf2(Divisor)) {
    C.Mode = Choice::Kind::Shift;
    C.TotalShift = floorLog2(Divisor);
    C.Multiplier = T::udFromWord(static_cast<UWord>(1));
    C.MultiplierBits = 1;
    return C;
  }

  const UDWord DW = T::udFromWord(Divisor);
  const UDWord Zero = T::udFromWord(static_cast<UWord>(0));
  const int L = ceilLog2(Divisor);
  const int KMax = N + L <= 2 * N - 1 ? N + L : 2 * N - 1;
  for (int K = N; K <= KMax; ++K) {
    const auto QR = T::udDivModPow2(K, DW);
    const UDWord MUp =
        static_cast<UDWord>(QR.first + T::udFromWord(static_cast<UWord>(1)));
    if (checkRoundUpMultiplier(Divisor, MUp, K, /*IncrementVariant=*/false)) {
      C.Mode = Choice::Kind::RoundUp;
      C.Multiplier = MUp;
      C.TotalShift = K;
      C.MultiplierBits = floorLog2(MUp) + 1;
      return C;
    }
    if (QR.first != Zero &&
        checkRoundUpMultiplier(Divisor, QR.first, K, /*IncrementVariant=*/true)) {
      C.Mode = Choice::Kind::Increment;
      C.Multiplier = QR.first;
      C.TotalShift = K;
      C.MultiplierBits = floorLog2(QR.first) + 1;
      return C;
    }
  }
  return C; // Fixup
}

/// Divider front-end over the choice: Shift and RoundUp cost one shift
/// resp. one MULUH + one shift; Increment adds a saturating increment;
/// Fixup delegates to the embedded GM UnsignedDivider so every divisor
/// is served.
template <typename UWordT> class RoundUpDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  using UDWord = typename Traits::UDWord;
  using Choice = RoundUpChoice<UWord>;
  static constexpr int N = Traits::Bits;

  explicit RoundUpDivider(UWord Divisor)
      : D(Divisor), C(chooseRoundUpMultiplier(Divisor)) {
    if (C.Mode == Choice::Kind::Fixup)
      Fallback.emplace(Divisor);
    else if (C.Mode != Choice::Kind::Shift)
      Magic = Traits::udLow(C.Multiplier);
  }

  UWord divisor() const { return D; }
  const Choice &choice() const { return C; }
  typename Choice::Kind mode() const { return C.Mode; }
  bool usesFixup() const { return C.Mode == Choice::Kind::Fixup; }
  UWord magic() const { return Magic; }
  int totalShift() const { return C.TotalShift; }
  int multiplierBits() const { return C.MultiplierBits; }

  UWord divide(UWord Numerator) const {
    switch (C.Mode) {
    case Choice::Kind::Shift:
      return srl(Numerator, C.TotalShift);
    case Choice::Kind::RoundUp:
      return srl(mulUH(Magic, Numerator), C.TotalShift - N);
    case Choice::Kind::Increment: {
      const UWord MaxN = static_cast<UWord>(~static_cast<UWord>(0));
      const UWord Bumped = static_cast<UWord>(
          Numerator +
          static_cast<UWord>(Numerator == MaxN ? 0 : 1));
      return srl(mulUH(Magic, Bumped), C.TotalShift - N);
    }
    case Choice::Kind::Fixup:
      return Fallback->divide(Numerator);
    }
    return static_cast<UWord>(0); // unreachable
  }

  UWord remainder(UWord Numerator) const {
    return static_cast<UWord>(Numerator - mulL(divide(Numerator), D));
  }

  struct Result {
    UWord Quotient;
    UWord Remainder;
  };

  Result divRem(UWord Numerator) const {
    const UWord Q = divide(Numerator);
    return {Q, static_cast<UWord>(Numerator - mulL(Q, D))};
  }

  std::string describe() const {
    std::string Out = "roundup[";
    Out += Choice::kindName(C.Mode);
    Out += "]: k=" + std::to_string(C.TotalShift) +
           ", m bits=" + std::to_string(C.MultiplierBits);
    if (usesFixup())
      Out += " (GM Figure 4.1 fallback)";
    return Out;
  }

private:
  UWord D;
  Choice C;
  UWord Magic{};
  std::optional<UnsignedDivider<UWord>> Fallback;
};

/// Signed front-end over the unsigned round-up machinery: divide on
/// magnitudes, then restore the sign with the branch-free xor/sub mask
/// (the same shape as FastModSignedDivider and the paper's Figure 5.2
/// sign handling). Truncating C semantics: the quotient rounds toward
/// zero, the remainder takes the dividend's sign. INT_MIN / -1
/// *wraps*: |INT_MIN| is INT_MIN again in word arithmetic, the
/// magnitude quotient is INT_MIN, and the sign fixup maps it back to
/// INT_MIN — exactly what hardware two's-complement division traps on
/// and what UnsignedDivider-backed SignedDivider already defines; the
/// family test pins this down.
template <typename SWordT> class RoundUpSignedDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;
  using Choice = RoundUpChoice<UWord>;
  static constexpr int N = Traits::Bits;

  explicit RoundUpSignedDivider(SWord Divisor)
      : D(Divisor), U(absWord(Divisor)),
        DSignMask(static_cast<UWord>(xsign(Divisor))) {
    assert(Divisor != static_cast<SWord>(0) && "divisor must be nonzero");
  }

  SWord divisor() const { return D; }
  const Choice &choice() const { return U.choice(); }
  typename Choice::Kind mode() const { return U.mode(); }
  bool usesFixup() const { return U.usesFixup(); }

  SWord divide(SWord Numerator) const {
    const UWord Quot = U.divide(absWord(Numerator));
    const UWord Mask =
        static_cast<UWord>(static_cast<UWord>(xsign(Numerator)) ^ DSignMask);
    return static_cast<SWord>(static_cast<UWord>((Quot ^ Mask) - Mask));
  }

  SWord remainder(SWord Numerator) const {
    const UWord Rem = U.remainder(absWord(Numerator));
    const UWord Mask = static_cast<UWord>(xsign(Numerator));
    return static_cast<SWord>(static_cast<UWord>((Rem ^ Mask) - Mask));
  }

  struct Result {
    SWord Quotient;
    SWord Remainder;
  };

  Result divRem(SWord Numerator) const {
    const SWord Q = divide(Numerator);
    return {Q, static_cast<SWord>(static_cast<UWord>(Numerator) -
                                  static_cast<UWord>(mulL(
                                      static_cast<UWord>(Q),
                                      static_cast<UWord>(D))))};
  }

  std::string describe() const {
    return "roundup-signed over |d|=" +
           std::to_string(static_cast<uint64_t>(U.divisor())) + ": " +
           U.describe();
  }

private:
  static UWord absWord(SWord Value) {
    const UWord Mask = static_cast<UWord>(xsign(Value));
    return static_cast<UWord>((static_cast<UWord>(Value) ^ Mask) - Mask);
  }

  SWord D;
  RoundUpDivider<UWord> U;
  UWord DSignMask;
};

} // namespace gmdiv

#endif // GMDIV_CORE_ROUNDUPDIVIDER_H
