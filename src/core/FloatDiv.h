//===- core/FloatDiv.h - §7 division via floating point ----------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §7: an alternative to MULUH/MULSH using floating point. With an F-bit
/// mantissa and N <= F - 3, equation (7.1) guarantees
///   TRUNC(n/d) = TRUNC(q_est),  q_est = (fp)n / (fp)d,
/// for |n| <= 2^N - 1 and 0 < |d| < 2^N, *regardless of rounding mode*,
/// because the worst-case relative error (1 + 2^(2-F)) is too small to
/// move the estimate across an integer. IEEE double has F = 53, so all
/// widths up to 32 bits qualify (N = 32 <= 50); the 64-bit instantiation
/// is deliberately rejected at compile time.
///
/// The reciprocal variant multiplies by a precomputed 1/d. Two roundings
/// (reciprocal, then product) can exceed the one-ulp budget the proof's
/// "no representable number strictly between (1-2^-F)q and q" step
/// relies on: under FE_DOWNWARD, fl(7 * fl(1/7)) = 1 - 2^-53 < 1, so the
/// naive trunc yields 0 instead of 1. divideViaReciprocal therefore
/// follows the multiply with an exact integer fixup (one MULL-and-
/// compare), keeping it division-free while restoring exactness in every
/// rounding mode. Tests demonstrate both the failure of the naive form
/// and the correctness of the fixed-up one.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_FLOATDIV_H
#define GMDIV_CORE_FLOATDIV_H

#include "ops/Ops.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <type_traits>

namespace gmdiv {

namespace detail {

template <typename Word> struct FloatDivTraits {
  static constexpr int WordBits = static_cast<int>(sizeof(Word) * 8);
  static constexpr int MantissaBits = 53; // IEEE double.
  static_assert(WordBits <= MantissaBits - 3,
                "§7 requires N <= F - 3; use the integer dividers for "
                "64-bit words");
};

} // namespace detail

/// Division via floating point (§7), for signed or unsigned words of at
/// most 32 bits. Quotients truncate towards zero, matching (7.1).
template <typename WordT> class FloatDivider {
public:
  using Word = WordT;

  explicit FloatDivider(Word Divisor)
      : D(Divisor), DAsDouble(static_cast<double>(Divisor)),
        Reciprocal(1.0 / static_cast<double>(Divisor)) {
    (void)sizeof(detail::FloatDivTraits<Word>);
    assert(Divisor != 0 && "divisor must be nonzero");
  }

  Word divisor() const { return D; }

  /// TRUNC(n/d) via one FP divide.
  Word divide(Word N0) const {
    const double Estimate = static_cast<double>(N0) / DAsDouble;
    return static_cast<Word>(std::trunc(Estimate));
  }

  /// TRUNC(n/d) via multiply by the precomputed reciprocal, plus an
  /// exact integer fixup: the estimate is off by at most one, so one
  /// conditional step in each direction restores the true quotient.
  Word divideViaReciprocal(Word N0) const {
    const double Estimate = static_cast<double>(N0) * Reciprocal;
    int64_t Quotient = static_cast<int64_t>(std::trunc(Estimate));
    const int64_t N64 = static_cast<int64_t>(N0);
    const int64_t D64 = static_cast<int64_t>(D);
    const int64_t AbsD = D64 < 0 ? -D64 : D64;
    int64_t Remainder = N64 - Quotient * D64;
    const int64_t Step = (D64 < 0) == (N64 < 0) ? 1 : -1;
    // Trunc semantics: remainder has the dividend's sign, |r| < |d|.
    if (N64 >= 0) {
      if (Remainder < 0)
        Quotient -= Step;
      else if (Remainder >= AbsD)
        Quotient += Step;
    } else {
      if (Remainder > 0)
        Quotient -= Step;
      else if (Remainder <= -AbsD)
        Quotient += Step;
    }
    return static_cast<Word>(Quotient);
  }

  /// The naive reciprocal multiply *without* fixup — provided so the
  /// benchmark and tests can demonstrate where §7's guarantee stops: it
  /// is exact for single-rounding division but not for two roundings.
  Word divideViaReciprocalNoFixup(Word N0) const {
    const double Estimate = static_cast<double>(N0) * Reciprocal;
    return static_cast<Word>(std::trunc(Estimate));
  }

  /// n - d*TRUNC(n/d): the rem operator (sign of the dividend).
  Word remainder(Word N0) const {
    if constexpr (std::is_signed_v<Word>) {
      using UWord = std::make_unsigned_t<Word>;
      return static_cast<Word>(
          static_cast<UWord>(N0) -
          static_cast<UWord>(static_cast<UWord>(divide(N0)) *
                             static_cast<UWord>(D)));
    } else {
      return static_cast<Word>(N0 - divide(N0) * D);
    }
  }

private:
  Word D;
  double DAsDouble;
  double Reciprocal;
};

} // namespace gmdiv

#endif // GMDIV_CORE_FLOATDIV_H
