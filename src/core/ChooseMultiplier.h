//===- core/ChooseMultiplier.h - Figure 6.2 multiplier selection -*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CHOOSE_MULTIPLIER (Figure 6.2): selects the magic multiplier m, the
/// post-shift sh_post and l = ⌈log2 d⌉ for dividing by a constant d.
///
/// Postconditions, straight from the figure's comments (and enforced by
/// the property tests):
///   * 2^(l-1) < d <= 2^l
///   * 0 <= sh_post <= l
///   * 2^(N+sh_post) < m * d <= 2^(N+sh_post) * (1 + 2^-prec)
///   * if d < 2^prec then m fits in max(prec, N-1) + 1 unsigned bits;
///     in particular m < 2^N when prec <= N-1, and m < 2^(N+1) always.
///
/// The returned multiplier may exceed the word (m >= 2^N); the code
/// generators handle that case with the n + MULUH(m - 2^N, n) sequence of
/// Figure 4.1 / 5.1. Internally ⌊2^(N+l)/d⌋ needs up to 2N+1-bit
/// arithmetic; udDivModPow2 (UInt128::divModPow2 at N = 64) provides it.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_CHOOSEMULTIPLIER_H
#define GMDIV_CORE_CHOOSEMULTIPLIER_H

#include "ops/Bits.h"
#include "ops/Ops.h"

#include <cassert>

namespace gmdiv {

/// The (m, sh_post, l) triple produced by CHOOSE_MULTIPLIER.
template <typename UWord> struct MultiplierInfo {
  using Traits = WordTraits<UWord>;
  using UDWord = typename Traits::UDWord;

  /// The multiplier m; may be as large as 2^N + 2^(N-prec), so it is held
  /// in a doubleword.
  UDWord Multiplier;
  /// Right-shift applied after the high multiply.
  int ShiftPost;
  /// l = ⌈log2 d⌉ for the divisor this multiplier was chosen for.
  int Log2Ceil;

  /// True if m < 2^N, i.e. the multiplier fits in a machine word and the
  /// short MULUH sequence applies.
  bool fitsInWord() const {
    return Multiplier < Traits::udPow2(Traits::Bits);
  }
  /// The multiplier as a word. Only valid when fitsInWord().
  UWord wordMultiplier() const {
    assert(fitsInWord() && "multiplier does not fit in a word");
    return Traits::udLow(Multiplier);
  }
  /// m - 2^N as a word bit pattern, for the long sequence used when
  /// m >= 2^N (Figures 4.1, 5.1: multiply by m - 2^N, then add n).
  UWord truncatedMultiplier() const {
    return Traits::udLow(Multiplier);
  }
};

/// CHOOSE_MULTIPLIER(d, prec) of Figure 6.2.
///
/// \param D     the divisor to invert, 1 <= d < 2^N.
/// \param Prec  number of bits of precision needed, 1 <= prec <= N.
///              Unsigned division uses prec = N; signed uses prec = N-1.
template <typename UWord>
MultiplierInfo<UWord> chooseMultiplier(UWord D, int Prec) {
  using T = WordTraits<UWord>;
  using UDWord = typename T::UDWord;
  constexpr int N = T::Bits;
  assert(D >= 1 && "divisor must be nonzero");
  assert(Prec >= 1 && Prec <= N && "precision out of range");

  const int L = ceilLog2(D);
  int ShiftPost = L;

  // m_low  = ⌊2^(N+l) / d⌋
  // m_high = ⌊(2^(N+l) + 2^(N+l-prec)) / d⌋
  //        = m_low + ⌊(r_low + 2^(N+l-prec)) / d⌋.
  // N+l <= 2N, so udDivModPow2 covers the exponent; the second division's
  // numerator is r_low + 2^(N+l-prec) < d + 2^N+... which fits a udword.
  auto [MLow, RLow] = T::udDivModPow2(N + L, T::udFromWord(D));
  assert(N + L - Prec >= 0 && "exponent underflow");
  const UDWord Bump = static_cast<UDWord>(RLow + T::udPow2(N + L - Prec));
  assert(Bump >= RLow && "bump addition overflowed the udword");
  UDWord MHigh = static_cast<UDWord>(
      MLow + T::udDivMod(Bump, T::udFromWord(D)).first);

  // Reduce to lowest terms: halve both bounds while they still straddle an
  // integer, i.e. while ⌊m_low/2⌋ < ⌊m_high/2⌋.
  UDWord MLowCursor = MLow;
  while (static_cast<UDWord>(MLowCursor >> 1) <
             static_cast<UDWord>(MHigh >> 1) &&
         ShiftPost > 0) {
    MLowCursor = static_cast<UDWord>(MLowCursor >> 1);
    MHigh = static_cast<UDWord>(MHigh >> 1);
    --ShiftPost;
  }

  MultiplierInfo<UWord> Result;
  Result.Multiplier = MHigh;
  Result.ShiftPost = ShiftPost;
  Result.Log2Ceil = L;
  return Result;
}

} // namespace gmdiv

#endif // GMDIV_CORE_CHOOSEMULTIPLIER_H
