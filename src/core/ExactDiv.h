//===- core/ExactDiv.h - §9 exact division and divisibility -----*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §9: division whose remainder is known a priori to be zero (e.g. C
/// pointer subtraction divided by the object size), plus branch-free
/// divisibility and remainder-equality tests.
///
/// Write d = 2^e * d_odd. With d_inv the inverse of d_odd mod 2^N (found
/// by the Newton iteration (9.2)), the exact quotient is simply
/// SRL/SRA(MULL(d_inv, n), e) — only the *low* half of a product, so it
/// works even on machines without a high-multiply.
///
/// The divisibility test exploits that x -> MULL(d_inv, x) permutes the
/// N-bit words: x is a multiple of d exactly when the image, rotated
/// right by e, lands in the small interval [0, ⌊(2^N-1)/d⌋].
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_EXACTDIV_H
#define GMDIV_CORE_EXACTDIV_H

#include "numtheory/ModArith.h"
#include "ops/Bits.h"
#include "ops/Ops.h"

#include <cassert>

namespace gmdiv {

//===----------------------------------------------------------------------===//
// Unsigned
//===----------------------------------------------------------------------===//

/// Exact unsigned division and divisibility testing by a constant or
/// invariant divisor d >= 1.
template <typename UWordT> class ExactUnsignedDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  static constexpr int N = Traits::Bits;

  explicit ExactUnsignedDivider(UWord Divisor) : D(Divisor) {
    assert(Divisor >= 1 && "divisor must be nonzero");
    Shift = countTrailingZeros(Divisor); // <= N-1 since d != 0.
    const UWord DOdd = srl(Divisor, Shift);
    Inverse = modInverseNewton(DOdd);
    // ⌊(2^N - 1)/d⌋: the largest representable quotient.
    QMax = static_cast<UWord>(static_cast<UWord>(~UWord{0}) / Divisor);
  }

  UWord divisor() const { return D; }
  /// The multiplicative inverse of the odd part of d, mod 2^N.
  UWord inverse() const { return Inverse; }
  /// e with d = 2^e * d_odd. Exposed for the batch kernels (src/batch).
  int shift() const { return Shift; }
  /// ⌊(2^N - 1)/d⌋, the divisibility-test bound.
  UWord maxQuotient() const { return QMax; }

  /// n / d for n known to be a multiple of d. One MULL and one shift.
  UWord divideExact(UWord N0) const {
    assert(N0 % D == 0 && "divideExact requires an exact multiple");
    return srl(mulL(Inverse, N0), Shift);
  }

  /// True iff d divides n, without computing a remainder.
  bool isDivisible(UWord N0) const {
    const UWord Q0 = mulL(Inverse, N0);
    return rotateRight(Q0, Shift) <= QMax;
  }

  /// True iff n mod d == r, for a constant 0 <= r < d.
  /// One subtract, one MULL, a rotate and a compare.
  bool remainderIs(UWord N0, UWord R) const {
    assert(R < D && "remainder target must be below the divisor");
    const UWord Q0 = mulL(Inverse, static_cast<UWord>(N0 - R));
    // Bound ⌊(2^N - 1 - r)/d⌋ rejects the wrapped case n < r.
    const UWord Bound =
        static_cast<UWord>(static_cast<UWord>(~UWord{0} - R) / D);
    return rotateRight(Q0, Shift) <= Bound;
  }

private:
  static UWord rotateRight(UWord Value, int Count) {
    if (Count == 0)
      return Value;
    return static_cast<UWord>(srl(Value, Count) | sll(Value, N - Count));
  }

  UWord D;
  UWord Inverse;
  UWord QMax;
  int Shift;
};

//===----------------------------------------------------------------------===//
// Signed
//===----------------------------------------------------------------------===//

/// Exact signed division and divisibility testing by a constant or
/// invariant divisor d != 0.
template <typename SWordT> class ExactSignedDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;
  static constexpr int N = Traits::Bits;

  explicit ExactSignedDivider(SWord Divisor) : D(Divisor) {
    assert(Divisor != 0 && "divisor must be nonzero");
    Negative = Divisor < 0;
    const UWord AbsD =
        Negative ? static_cast<UWord>(UWord{0} - static_cast<UWord>(Divisor))
                 : static_cast<UWord>(Divisor);
    Shift = countTrailingZeros(AbsD);
    IsPowerOf2 = isPowerOf2(AbsD);
    const UWord DOdd = srl(AbsD, Shift);
    Inverse = modInverseNewton(DOdd);
    // ⌊(2^(N-1) - 1)/|d|⌋ * 2^e bounds |MULL(d_inv, n)| for multiples.
    const UWord SMax = srl(static_cast<UWord>(~UWord{0}), 1); // 2^(N-1) - 1
    QMax = IsPowerOf2 ? UWord{0} : sll(static_cast<UWord>(SMax / AbsD), Shift);
  }

  SWord divisor() const { return D; }
  /// The multiplicative inverse of the odd part of |d|, mod 2^N.
  UWord inverse() const { return Inverse; }

  /// n / d for n known to be a multiple of d. One MULL, one SRA, and a
  /// negation when d < 0.
  SWord divideExact(SWord N0) const {
    const UWord Q0 = mulL(Inverse, static_cast<UWord>(N0));
    const SWord Quotient = sra(static_cast<SWord>(Q0), Shift);
    if (!Negative)
      return Quotient;
    return static_cast<SWord>(UWord{0} - static_cast<UWord>(Quotient));
  }

  /// True iff d divides n. For |d| = 2^k this is a low-bits check (the
  /// paper's special case); otherwise MULL + interval test.
  bool isDivisible(SWord N0) const {
    const UWord UN = static_cast<UWord>(N0);
    if (IsPowerOf2)
      return (UN & static_cast<UWord>(sllWide(UWord{1}, Shift) - UWord{1})) ==
             0;
    const UWord Q0 = mulL(Inverse, UN);
    // q0 must be a multiple of 2^e inside [-QMax, QMax]; fold the signed
    // interval test into one unsigned compare: q0 + QMax <= 2*QMax.
    if ((Q0 & static_cast<UWord>(sll(UWord{1}, Shift) - UWord{1})) != 0)
      return false;
    return static_cast<UWord>(Q0 + QMax) <=
           static_cast<UWord>(static_cast<UWord>(QMax) + QMax);
  }

  /// True iff n rem d == r (C remainder, sign of dividend), for a constant
  /// 1 <= r < |d|; per §9 this implies n must be nonnegative to match.
  bool remainderIs(SWord N0, SWord R) const {
    assert(R >= 1 && "use isDivisible for r == 0");
    assert(!IsPowerOf2 && "power-of-two divisors: test the low bits");
    const UWord AbsD =
        Negative ? static_cast<UWord>(UWord{0} - static_cast<UWord>(D))
                 : static_cast<UWord>(D);
    assert(static_cast<UWord>(R) < AbsD && "remainder out of range");
    const UWord Q0 =
        mulL(Inverse, static_cast<UWord>(static_cast<UWord>(N0) -
                                         static_cast<UWord>(R)));
    // Nonnegative multiple of 2^e not exceeding 2^e*⌊(2^(N-1)-1-r)/|d|⌋.
    if ((Q0 & static_cast<UWord>(sll(UWord{1}, Shift) - UWord{1})) != 0)
      return false;
    const UWord SMax = static_cast<UWord>(static_cast<UWord>(~UWord{0}) >> 1);
    const UWord Bound = sll(
        static_cast<UWord>(
            static_cast<UWord>(SMax - static_cast<UWord>(R)) / AbsD),
        Shift);
    return Q0 <= Bound;
  }

private:
  SWord D;
  UWord Inverse;
  UWord QMax;
  int Shift;
  bool Negative;
  bool IsPowerOf2;
};

} // namespace gmdiv

#endif // GMDIV_CORE_EXACTDIV_H
