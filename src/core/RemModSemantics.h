//===- core/RemModSemantics.h - §2 remainder conventions --------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2: "Two remainder operators are common in language definitions.
/// Sometimes a remainder has the sign of the dividend and sometimes the
/// sign of the divisor. We use the Ada notations
///     n rem d = n - d * TRUNC(n/d)   (sign of dividend)
///     n mod d = n - d * ⌊n/d⌋        (sign of divisor)
/// The Fortran 90 names are MOD and MODULO. ... Other definitions have
/// been proposed [6, 7]" — [6] being Boute's Euclidean definition,
/// whose remainder is always nonnegative.
///
/// This header implements all three conventions on top of the invariant
/// dividers, so language runtimes with any of the semantics can divide
/// without a divide instruction. Exhaustive tests pin the definitional
/// identities against each other.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_REMMODSEMANTICS_H
#define GMDIV_CORE_REMMODSEMANTICS_H

#include "core/Divider.h"

#include <cassert>

namespace gmdiv {

/// The remainder conventions of §2 and its citations.
enum class RemainderConvention {
  Truncated, ///< C `%` / Ada `rem` / Fortran MOD: sign of the dividend.
  Floored,   ///< Ada `mod` / Fortran MODULO: sign of the divisor.
  Euclidean, ///< Boute [6]: remainder always in [0, |d|).
};

/// Quotient/remainder for a run-time invariant divisor under any of the
/// §2 conventions. Backed by the Figure 5.1 trunc divider plus the
/// branch-free convention fixups.
template <typename SWordT> class ConventionDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;

  ConventionDivider(SWord Divisor, RemainderConvention Convention)
      : D(Divisor), Convention(Convention), Trunc(Divisor) {
    assert(Divisor != 0 && "divisor must be nonzero");
  }

  SWord divisor() const { return D; }
  RemainderConvention convention() const { return Convention; }

  /// The quotient paired with remainder() such that n = q*d + r always.
  SWord quotient(SWord N0) const {
    auto [Quotient, Remainder] = Trunc.divRem(N0);
    return static_cast<SWord>(static_cast<UWord>(Quotient) -
                              static_cast<UWord>(fixup(Remainder)));
  }

  /// The remainder under the configured convention.
  SWord remainder(SWord N0) const {
    auto [Quotient, Remainder] = Trunc.divRem(N0);
    (void)Quotient;
    // The 1u factor promotes sub-int words to unsigned before the
    // multiply; plain UWord operands would promote to (signed) int,
    // where the wrap this arithmetic relies on is undefined.
    return static_cast<SWord>(
        static_cast<UWord>(Remainder) +
        1u * static_cast<UWord>(fixup(Remainder)) * static_cast<UWord>(D));
  }

  /// Both at once (one division).
  std::pair<SWord, SWord> quotRem(SWord N0) const {
    auto [Quotient, Remainder] = Trunc.divRem(N0);
    const SWord Adjust = fixup(Remainder);
    return {static_cast<SWord>(static_cast<UWord>(Quotient) -
                               static_cast<UWord>(Adjust)),
            static_cast<SWord>(static_cast<UWord>(Remainder) +
                               1u * static_cast<UWord>(Adjust) *
                                   static_cast<UWord>(D))};
  }

private:
  /// How much to *subtract* from the trunc quotient (0 or ±1); the
  /// remainder gains that multiple of d.
  SWord fixup(SWord TruncRem) const {
    switch (Convention) {
    case RemainderConvention::Truncated:
      return 0;
    case RemainderConvention::Floored:
      // q floors: adjust when the remainder's sign differs from d's.
      if (TruncRem != 0 && ((TruncRem < 0) != (D < 0)))
        return 1;
      return 0;
    case RemainderConvention::Euclidean:
      // Remainder into [0, |d|): adjust only when it is negative.
      if (TruncRem < 0)
        return D > 0 ? 1 : -1;
      return 0;
    }
    assert(false && "unknown convention");
    return 0;
  }

  SWord D;
  RemainderConvention Convention;
  SignedDivider<SWord> Trunc;
};

} // namespace gmdiv

#endif // GMDIV_CORE_REMMODSEMANTICS_H
