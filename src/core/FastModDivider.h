//===- core/FastModDivider.h - LKK direct remainder ------------*- C++ -*-===//
//
// Part of the gmdiv project: a faithful, testable reproduction of
// "Division by Invariant Integers using Multiplication" (Granlund &
// Montgomery, PLDI 1994), grown toward successor techniques.
//
// The Lemire–Kaser–Kurz family ("Faster Remainder by Direct Computation",
// arXiv:1902.01961): instead of the GM route remainder = n - d*(n/d), keep
// the *fractional* part of the approximate reciprocal product and multiply
// it back by d. With F = 2N fraction bits and
//
//   c = floor(2^F / d) + 1            (the round-up reciprocal)
//
// the identities are, for all 0 <= n < 2^N and 2 <= d < 2^N:
//
//   quotient   n / d    = floor(c*n / 2^F)                (high half)
//   remainder  n mod d  = floor((c*n mod 2^F) * d / 2^F)  (low half * d)
//   divisible  d | n    <=>  (c*n mod 2^F) < c            (one compare!)
//
// The divisibility test is the family's headline: one multiply and one
// compare, versus GM's multiply + shifts + multiply + compare. The
// precondition is that 2N-bit products must be cheap — i.e. the operand
// width is at most half the host word (LKK section 3). arch/FamilySelect.h
// encodes that restriction; here the wide arithmetic is exact at every
// width via the doubleword traits, so the verify harness can sweep the
// family at N = 4..12 and 16/32/64 regardless of host.
//
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_FASTMODDIVIDER_H
#define GMDIV_CORE_FASTMODDIVIDER_H

#include "ops/Ops.h"

#include <cassert>
#include <string>

namespace gmdiv {

namespace detail {

/// floor(X * Y / 2^(2N)) where X, Y are held in the doubleword of an
/// N-bit word family. Two cases:
///  - the doubleword is exactly 2N bits wide (all native widths,
///    including uint64 whose doubleword is UInt128): this is mulUH at
///    the doubleword width;
///  - the emulated SmallUWord family stores its doubleword in uint64_t
///    (2N <= 32 bits): a plain 64-bit multiply and shift is exact
///    because both operands are < 2^(2N) only when the caller says so.
/// Callers guarantee X * Y < 2^(4N) (always true for products of
/// 2N-bit values) and, on the emulated path, X * Y fits uint64_t.
template <typename Traits>
typename Traits::UDWord
udMulHigh2N(typename Traits::UDWord X, typename Traits::UDWord Y) {
  using UDWord = typename Traits::UDWord;
  constexpr int N = Traits::Bits;
  if constexpr (WordTraits<UDWord>::Bits == 2 * N) {
    return mulUH<UDWord>(X, Y);
  } else {
    // Emulated small widths: UDWord is uint64_t and 2N <= 32.
    static_assert(2 * N <= 32, "emulated doubleword must fit uint64_t");
    return static_cast<UDWord>((X * Y) >> (2 * N));
  }
}

/// X * Y mod 2^(2N) in the doubleword type.
template <typename Traits>
typename Traits::UDWord
udMulLow2N(typename Traits::UDWord X, typename Traits::UDWord Y) {
  using UDWord = typename Traits::UDWord;
  constexpr int N = Traits::Bits;
  if constexpr (WordTraits<UDWord>::Bits == 2 * N) {
    return static_cast<UDWord>(X * Y); // the type wraps mod 2^(2N)
  } else {
    const UDWord Mask =
        static_cast<UDWord>((uint64_t{1} << (2 * N)) - 1);
    return static_cast<UDWord>((X * Y) & Mask);
  }
}

} // namespace detail

/// Unsigned LKK divider: remainder and divisibility by direct
/// computation, quotient via the same round-up reciprocal. Divisor 1 is
/// handled by a trivial flag (the reciprocal 2^(2N) + 1 does not fit the
/// doubleword); divisor 0 is a precondition violation as everywhere else.
template <typename UWordT>
class FastModDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  using UDWord = typename Traits::UDWord;
  static constexpr int N = Traits::Bits;
  static constexpr int FractionBits = 2 * N;

  explicit FastModDivider(UWord Divisor) : D(Divisor) {
    assert(Divisor >= static_cast<UWord>(1) && "divisor must be >= 1");
    Trivial = Divisor == static_cast<UWord>(1);
    if (Trivial) {
      C = static_cast<UDWord>(0);
      return;
    }
    // c = floor(2^(2N) / d) + 1. The exponent-2N form is exactly what
    // udDivModPow2 exists for (the quotient fits: d >= 2).
    const auto QR = Traits::udDivModPow2(FractionBits, Traits::udFromWord(D));
    C = static_cast<UDWord>(QR.first + Traits::udFromWord(static_cast<UWord>(1)));
  }

  UWord divisor() const { return D; }

  /// The round-up reciprocal c (0 when d == 1, which bypasses it).
  UDWord magic() const { return C; }

  /// floor(n / d): the high 2N bits of c*n.
  UWord divide(UWord Numerator) const {
    if (Trivial)
      return Numerator;
    return Traits::udLow(detail::udMulHigh2N<Traits>(
        C, Traits::udFromWord(Numerator)));
  }

  /// n mod d without forming the quotient: scale the fractional part
  /// (c*n mod 2^(2N)) back up by d.
  UWord remainder(UWord Numerator) const {
    if (Trivial)
      return static_cast<UWord>(0);
    const UDWord Frac =
        detail::udMulLow2N<Traits>(C, Traits::udFromWord(Numerator));
    return Traits::udLow(
        detail::udMulHigh2N<Traits>(Frac, Traits::udFromWord(D)));
  }

  struct Result {
    UWord Quotient;
    UWord Remainder;
  };

  Result divRem(UWord Numerator) const {
    return {divide(Numerator), remainder(Numerator)};
  }

  /// d | n <=> c*n mod 2^(2N) < c (LKK Theorem 2). One multiply, one
  /// compare — no quotient, no remainder.
  bool isDivisible(UWord Numerator) const {
    if (Trivial)
      return true;
    const UDWord Frac =
        detail::udMulLow2N<Traits>(C, Traits::udFromWord(Numerator));
    return Frac < C;
  }

  std::string describe() const {
    std::string Out = "fastmod: F=" + std::to_string(FractionBits) +
                      " fraction bits; divisible(n) = (c*n mod 2^F) < c";
    if (Trivial)
      Out += " [trivial d=1]";
    return Out;
  }

private:
  UWord D;
  UDWord C;
  bool Trivial;
};

/// Signed LKK divider: run the unsigned machinery on |n|, |d| and patch
/// signs with the paper's EOR/subtract idiom (quotient sign is
/// sign(n) ^ sign(d), remainder takes the sign of n — C truncated
/// semantics). INT_MIN / -1 wraps to INT_MIN with remainder 0, matching
/// the Oracle's documented policy for the overflow case.
template <typename SWordT>
class FastModSignedDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;
  using UDWord = typename Traits::UDWord;
  static constexpr int N = Traits::Bits;

  explicit FastModSignedDivider(SWord Divisor)
      : D(Divisor), U(absWord(Divisor)),
        DSignMask(static_cast<UWord>(xsign(Divisor))) {
    assert(Divisor != static_cast<SWord>(0) && "divisor must be nonzero");
  }

  SWord divisor() const { return D; }
  UDWord magic() const { return U.magic(); }

  SWord divide(SWord Numerator) const {
    const UWord Quot = U.divide(absWord(Numerator));
    const UWord Mask =
        static_cast<UWord>(static_cast<UWord>(xsign(Numerator)) ^ DSignMask);
    return static_cast<SWord>(
        static_cast<UWord>((Quot ^ Mask) - Mask));
  }

  SWord remainder(SWord Numerator) const {
    const UWord Rem = U.remainder(absWord(Numerator));
    const UWord Mask = static_cast<UWord>(xsign(Numerator));
    return static_cast<SWord>(
        static_cast<UWord>((Rem ^ Mask) - Mask));
  }

  /// d | n in the signed sense (|d| divides |n|).
  bool isDivisible(SWord Numerator) const {
    return U.isDivisible(absWord(Numerator));
  }

  std::string describe() const {
    return "fastmod-signed over |d|=" + std::to_string(uint64_t(U.divisor())) +
           ": " + U.describe();
  }

private:
  static UWord absWord(SWord Value) {
    const UWord Mask = static_cast<UWord>(xsign(Value));
    return static_cast<UWord>(
        (static_cast<UWord>(Value) ^ Mask) - Mask);
  }

  SWord D;
  FastModDivider<UWord> U;
  UWord DSignMask;
};

} // namespace gmdiv

#endif // GMDIV_CORE_FASTMODDIVIDER_H
