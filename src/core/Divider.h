//===- core/Divider.h - Invariant-divisor division ---------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time invariant division: precompute a small amount of state from
/// the divisor once, then divide many dividends with a multiply and a few
/// cheap operations, never a hardware divide.
///
///   UnsignedDivider<UWord>  — Figure 4.1;   q = ⌊n/d⌋.
///   SignedDivider<SWord>    — Figure 5.1;   q = trunc(n/d) (C semantics).
///   FloorDivider<SWord>     — §6;           q = ⌊n/d⌋ (Fortran MODULO
///                             partner). Uses the Figure 6.1 sequence for
///                             d > 0 and a branch-free fixup otherwise.
///   CeilDivider<SWord>      — §6 analog;    q = ⌈n/d⌉.
///
/// All intermediate arithmetic runs in the unsigned domain so that the
/// wrap-around the paper's two's complement model assumes is well-defined
/// C++ (signed overflow would be UB).
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CORE_DIVIDER_H
#define GMDIV_CORE_DIVIDER_H

#include "core/ChooseMultiplier.h"
#include "ops/Bits.h"
#include "ops/Ops.h"

#include <cassert>
#include <cstdint>
#include <sstream>
#include <string>

namespace gmdiv {

//===----------------------------------------------------------------------===//
// UnsignedDivider — Figure 4.1
//===----------------------------------------------------------------------===//

/// Unsigned division by a run-time invariant divisor (Figure 4.1).
///
/// Initialization computes m' = ⌊2^N*(2^l - d)/d⌋ + 1 (the low word of the
/// N+1-bit multiplier m = ⌊2^(N+l)/d⌋ + 1) and the two shift counts; each
/// quotient then costs one MULUH, two adds/subtracts and two shifts.
template <typename UWordT> class UnsignedDivider {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  static constexpr int N = Traits::Bits;

  /// Precomputes the division state. \p Divisor must satisfy 1 <= d < 2^N.
  explicit UnsignedDivider(UWord Divisor) : D(Divisor) {
    assert(Divisor >= 1 && "divisor must be nonzero");
    const int L = ceilLog2(Divisor);
    // m' = ⌊2^(N+l)/d⌋ - 2^N + 1: subtracting 2^N*d from the numerator is
    // exact, so compute ⌊2^N*(2^l - d)/d⌋ + 1 as the paper writes it.
    auto [Quotient, Remainder] =
        Traits::udDivModPow2(N + L, Traits::udFromWord(Divisor));
    (void)Remainder;
    MPrime = static_cast<UWord>(
        Traits::udLow(Quotient - Traits::udPow2(N)) + UWord{1});
    Shift1 = L < 1 ? L : 1;          // min(l, 1)
    Shift2 = L - 1 > 0 ? L - 1 : 0;  // max(l - 1, 0)
  }

  UWord divisor() const { return D; }
  /// The precomputed m' of Figure 4.1 (low word of the N+1-bit
  /// multiplier). Exposed so batch kernels (src/batch) can reuse the
  /// state instead of re-deriving it.
  UWord magic() const { return MPrime; }
  /// sh1 = min(l, 1) of Figure 4.1.
  int preShift() const { return Shift1; }
  /// sh2 = max(l - 1, 0) of Figure 4.1.
  int postShift() const { return Shift2; }

  /// ⌊n/d⌋.
  UWord divide(UWord N0) const {
    const UWord T1 = mulUH(MPrime, N0);
    // Conceptually q = SRL(n + t1, l), but n + t1 may overflow N bits; the
    // paper's safe form splits the add across the two shifts.
    const UWord Sum =
        static_cast<UWord>(T1 + srl(static_cast<UWord>(N0 - T1), Shift1));
    return srl(Sum, Shift2);
  }

  /// n mod d, via one extra MULL and subtract.
  UWord remainder(UWord N0) const {
    return static_cast<UWord>(N0 - mulL(divide(N0), D));
  }

  /// Quotient and remainder together.
  std::pair<UWord, UWord> divRem(UWord N0) const {
    const UWord Quotient = divide(N0);
    return {Quotient, static_cast<UWord>(N0 - mulL(Quotient, D))};
  }

  /// ⌈n/d⌉ = ⌊n/d⌋ + (n mod d != 0).
  UWord divideCeil(UWord N0) const {
    auto [Quotient, Remainder] = divRem(N0);
    return static_cast<UWord>(Quotient + (Remainder != 0 ? 1 : 0));
  }

  /// Human-readable account of the precomputed state, libdivide-style:
  /// "n/10 = SRL(t1 + SRL(n - t1, 1), 3), t1 = MULUH(0xcccccccc, n)".
  std::string describe() const {
    std::ostringstream Out;
    Out << "n/" << static_cast<uint64_t>(D) << " at N=" << N
        << ": t1 = MULUH(0x" << std::hex
        << static_cast<uint64_t>(MPrime) << std::dec
        << ", n); q = SRL(t1 + SRL(n - t1, " << Shift1 << "), " << Shift2
        << ")";
    return Out.str();
  }

private:
  UWord D;
  UWord MPrime;
  int Shift1;
  int Shift2;
};

//===----------------------------------------------------------------------===//
// SignedDivider — Figure 5.1 (quotient rounds towards zero)
//===----------------------------------------------------------------------===//

/// Signed division by a run-time invariant divisor with the quotient
/// rounded towards zero (Figure 5.1) — the C `/` operator.
///
/// Each quotient costs one MULSH, three adds/subtracts, two shifts and one
/// EOR. As the paper notes, n = -2^(N-1) divided by d = -1 overflows; this
/// implementation returns -2^(N-1), matching common hardware.
template <typename SWordT> class SignedDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;
  static constexpr int N = Traits::Bits;

  /// Precomputes the division state. \p Divisor must be nonzero;
  /// -2^(N-1) (whose magnitude is a power of two) is accepted.
  explicit SignedDivider(SWord Divisor) : D(Divisor) {
    assert(Divisor != 0 && "divisor must be nonzero");
    // |d| computed in the unsigned domain so -2^(N-1) is representable.
    const UWord AbsD =
        Divisor < 0 ? static_cast<UWord>(UWord{0} - static_cast<UWord>(Divisor))
                    : static_cast<UWord>(Divisor);
    // l = max(⌈log2 |d|⌉, 1).
    const int L = AbsD == 1 ? 1 : ceilLog2(AbsD);
    // m = 1 + ⌊2^(N+l-1) / |d|⌋; m - 2^N fits in a signed word.
    auto [Quotient, Remainder] =
        Traits::udDivModPow2(N + L - 1, Traits::udFromWord(AbsD));
    (void)Remainder;
    MPrime = static_cast<UWord>(Traits::udLow(Quotient) + UWord{1});
    DSign = xsign(Divisor);
    ShiftPost = L - 1;
  }

  SWord divisor() const { return D; }
  /// Bit pattern of m - 2^N (an sword value), Figure 5.1. Exposed for
  /// the batch kernels (src/batch).
  UWord magic() const { return MPrime; }
  /// sh_post = l - 1 of Figure 5.1.
  int postShift() const { return ShiftPost; }
  /// XSIGN(d): -1 for negative divisors, else 0.
  SWord divisorSign() const { return DSign; }

  /// trunc(n/d).
  SWord divide(SWord N0) const {
    const UWord UN = static_cast<UWord>(N0);
    // q0 = n + MULSH(m - 2^N, n) = ⌊m*n/2^N⌋; the add wraps mod 2^N for
    // d = ±1 and corrects itself in the next step, so use unsigned adds.
    const UWord Q0 = static_cast<UWord>(
        UN + static_cast<UWord>(mulSH(static_cast<SWord>(MPrime), N0)));
    const SWord Shifted = sra(static_cast<SWord>(Q0), ShiftPost);
    const UWord Q1 = static_cast<UWord>(static_cast<UWord>(Shifted) -
                                        static_cast<UWord>(xsign(N0)));
    // Negate if the divisor is negative: EOR with the sign mask, subtract.
    const UWord Mask = static_cast<UWord>(DSign);
    return static_cast<SWord>(static_cast<UWord>((Q1 ^ Mask) - Mask));
  }

  /// trunc(n/d) with the §5 overflow check: sets \p Overflow when
  /// n = -2^(N-1) and d = -1 (the only overflowing pair), in which case
  /// the returned value is the wrapped -2^(N-1). "If overflow detection
  /// is required, the final subtraction of d_sign should check for
  /// overflow."
  SWord divideChecked(SWord N0, bool &Overflow) const {
    constexpr SWord Min = static_cast<SWord>(
        typename Traits::UWord{1} << (N - 1));
    Overflow = D == -1 && N0 == Min;
    return divide(N0);
  }

  /// n rem d (sign of the dividend), the C `%` operator.
  SWord remainder(SWord N0) const {
    return static_cast<SWord>(static_cast<UWord>(N0) -
                              mulL(static_cast<UWord>(divide(N0)),
                                   static_cast<UWord>(D)));
  }

  /// Quotient and remainder together.
  std::pair<SWord, SWord> divRem(SWord N0) const {
    const SWord Quotient = divide(N0);
    const SWord Remainder = static_cast<SWord>(
        static_cast<UWord>(N0) - mulL(static_cast<UWord>(Quotient),
                                      static_cast<UWord>(D)));
    return {Quotient, Remainder};
  }

private:
  SWord D;
  UWord MPrime; // Bit pattern of m - 2^N (an sword value).
  SWord DSign;
  int ShiftPost;
};

//===----------------------------------------------------------------------===//
// FloorDivider — §6 (quotient rounds towards -∞)
//===----------------------------------------------------------------------===//

/// Signed division rounding towards -∞ by a run-time invariant divisor.
///
/// For d > 0 this is the branch-free Figure 6.1 sequence: one unsigned
/// MULUH of EOR(XSIGN(n), n), a shift and two EORs. For d < 0 (where the
/// paper falls back to identities over trunc division) we use the trunc
/// divider plus a branch-free fixup: q-- when the remainder is nonzero
/// and has sign opposite to the divisor.
template <typename SWordT> class FloorDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;
  static constexpr int N = Traits::Bits;

  explicit FloorDivider(SWord Divisor)
      : D(Divisor), Trunc(Divisor), Magic(0), ShiftPost(0), PowerOf2Log(-1) {
    assert(Divisor != 0 && "divisor must be nonzero");
    if (Divisor <= 0)
      return; // Negative divisors take the fixup path.
    const UWord AbsD = static_cast<UWord>(Divisor);
    if (isPowerOf2(AbsD)) {
      PowerOf2Log = floorLog2(AbsD);
      return;
    }
    const MultiplierInfo<UWord> Info =
        chooseMultiplier<UWord>(AbsD, N - 1);
    assert(Info.fitsInWord() &&
           "Figure 6.1 requires m < 2^N, guaranteed for d < 2^(N-1)");
    Magic = Info.wordMultiplier();
    ShiftPost = Info.ShiftPost;
  }

  SWord divisor() const { return D; }

  /// ⌊n/d⌋.
  SWord divide(SWord N0) const {
    if (D > 0) {
      if (PowerOf2Log >= 0)
        return sra(N0, PowerOf2Log); // SRA already floors.
      // Figure 6.1: both EOR(nsign, n) and the final EOR are cheap; the
      // multiply is *unsigned* high.
      const UWord NSign = static_cast<UWord>(xsign(N0));
      const UWord Q0 =
          mulUH(Magic, static_cast<UWord>(NSign ^ static_cast<UWord>(N0)));
      return static_cast<SWord>(NSign ^ srl(Q0, ShiftPost));
    }
    // d < 0: trunc quotient, then subtract one when the division was
    // inexact and the remainder's sign differs from the divisor's.
    auto [Quotient, Remainder] = Trunc.divRem(N0);
    const bool NeedsFixup =
        Remainder != 0 && ((Remainder < 0) != (D < 0));
    return static_cast<SWord>(static_cast<UWord>(Quotient) -
                              static_cast<UWord>(NeedsFixup ? 1 : 0));
  }

  /// n mod d (Fortran MODULO / Ada mod: result has the divisor's sign).
  SWord modulo(SWord N0) const {
    return static_cast<SWord>(static_cast<UWord>(N0) -
                              mulL(static_cast<UWord>(divide(N0)),
                                   static_cast<UWord>(D)));
  }

private:
  SWord D;
  SignedDivider<SWord> Trunc; // Used for d < 0.
  UWord Magic;
  int ShiftPost;
  int PowerOf2Log;
};

//===----------------------------------------------------------------------===//
// GeneralFloorDivider — the §6 identities (6.1)/(6.2), branch-free
//===----------------------------------------------------------------------===//

/// Floor division by a run-time invariant divisor of unknown sign, via
/// the paper's identity (6.1):
///
///   ⌊n/d⌋ = TRUNC((n + d_sign - n_sign)/d) + q_sign,
///     d_sign = XSIGN(d),  n_sign = XSIGN(OR(n, n + d_sign)),
///     q_sign = EOR(n_sign, d_sign),
///
/// and its remainder corollary (6.2):
///
///   n mod d = ((n + d_sign - n_sign) rem d) + AND(d - 2*d_sign - 1,
///                                                 q_sign).
///
/// "Since the new numerators never overflow, these identities can be
/// used for computation" — all adjustment arithmetic is branch-free.
/// The inner TRUNC is the Figure 5.1 divider. FloorDivider is usually
/// faster when the divisor's sign is known; this class exists for the
/// fully general case and as an executable proof of (6.1)/(6.2).
template <typename SWordT> class GeneralFloorDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;

  explicit GeneralFloorDivider(SWord Divisor)
      : D(Divisor), Trunc(Divisor),
        DSignMask(static_cast<UWord>(xsign(Divisor))),
        DAdjusted(static_cast<UWord>(static_cast<UWord>(Divisor) -
                                     UWord{2} * DSignMask - UWord{1})) {
    assert(Divisor != 0 && "divisor must be nonzero");
  }

  SWord divisor() const { return D; }

  /// ⌊n/d⌋ via (6.1).
  SWord divide(SWord N0) const {
    const UWord UN = static_cast<UWord>(N0);
    const UWord NPlus = static_cast<UWord>(UN + DSignMask);
    const UWord NSignMask =
        static_cast<UWord>(xsign(static_cast<SWord>(UN | NPlus)));
    const SWord Adjusted = static_cast<SWord>(
        static_cast<UWord>(NPlus - NSignMask));
    const UWord QSignMask = DSignMask ^ NSignMask;
    return static_cast<SWord>(
        static_cast<UWord>(static_cast<UWord>(Trunc.divide(Adjusted)) +
                           QSignMask));
  }

  /// n mod d (divisor-sign remainder) via (6.2).
  SWord modulo(SWord N0) const {
    const UWord UN = static_cast<UWord>(N0);
    const UWord NPlus = static_cast<UWord>(UN + DSignMask);
    const UWord NSignMask =
        static_cast<UWord>(xsign(static_cast<SWord>(UN | NPlus)));
    const SWord Adjusted = static_cast<SWord>(
        static_cast<UWord>(NPlus - NSignMask));
    const UWord QSignMask = DSignMask ^ NSignMask;
    const SWord Rem = Trunc.remainder(Adjusted);
    return static_cast<SWord>(static_cast<UWord>(
        static_cast<UWord>(Rem) + (DAdjusted & QSignMask)));
  }

private:
  SWord D;
  SignedDivider<SWord> Trunc;
  UWord DSignMask;
  UWord DAdjusted; // d - 2*d_sign - 1: d-1 for d > 0, d+1 for d < 0.
};

//===----------------------------------------------------------------------===//
// CeilDivider — §6 analog (quotient rounds towards +∞)
//===----------------------------------------------------------------------===//

/// Signed division rounding towards +∞ by a run-time invariant divisor.
/// Implemented as trunc division plus a branch-free fixup: q++ when the
/// remainder is nonzero and has the divisor's sign.
template <typename SWordT> class CeilDivider {
public:
  using SWord = SWordT;
  using Traits = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename Traits::UWord;

  explicit CeilDivider(SWord Divisor) : D(Divisor), Trunc(Divisor) {
    assert(Divisor != 0 && "divisor must be nonzero");
  }

  SWord divisor() const { return D; }

  /// ⌈n/d⌉.
  SWord divide(SWord N0) const {
    auto [Quotient, Remainder] = Trunc.divRem(N0);
    const bool NeedsFixup =
        Remainder != 0 && ((Remainder < 0) == (D < 0));
    return static_cast<SWord>(static_cast<UWord>(Quotient) +
                              static_cast<UWord>(NeedsFixup ? 1 : 0));
  }

private:
  SWord D;
  SignedDivider<SWord> Trunc;
};

} // namespace gmdiv

#endif // GMDIV_CORE_DIVIDER_H
