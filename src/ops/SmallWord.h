//===- ops/SmallWord.h - Emulated words for parameterized-N checks -*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emulated N-bit word types for small, non-native N (2 <= N <= 16).
///
/// The paper's theorems are stated for an arbitrary N-bit machine, but the
/// native word family only instantiates the algorithms at N = 8, 16, 32,
/// 64. SmallUWord<N>/SmallSWord<N> are drop-in word types with full
/// WordTraits/SignedWordTraits specializations, so CHOOSE_MULTIPLIER, the
/// core dividers and the codegen emitters instantiate *unchanged* at
/// N = 4..12 — small enough that the verification harness (src/verify)
/// can check every (n, d) pair exhaustively against the oracle.
///
/// Representation: an unsigned value is held zero-extended in a uint32_t
/// (invariant: Raw <= 2^N - 1); a signed value is held sign-extended in an
/// int32_t (invariant: -2^(N-1) <= Raw < 2^(N-1)), so comparisons are
/// plain comparisons of the storage. All arithmetic wraps mod 2^N through
/// the constructor, exactly the two's complement machine of the paper.
/// The doubleword is uint64_t/int64_t (2N <= 32 bits needed, so native
/// 64-bit arithmetic covers every udword computation exactly).
///
/// Conversions mirror the built-in word families: construction from an
/// integer is implicit (it masks, like static_cast to uint8_t), while
/// conversions *out* (to uint64_t/int64_t and between the signed and
/// unsigned siblings) are explicit, so the existing static_casts in the
/// algorithm templates compile and no accidental widening changes
/// semantics.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_OPS_SMALLWORD_H
#define GMDIV_OPS_SMALLWORD_H

#include "ops/Bits.h"
#include "ops/Ops.h"

#include <cassert>
#include <compare>
#include <cstdint>

namespace gmdiv {

template <int NBits> struct SmallSWord;

/// Unsigned N-bit word emulated in uint32_t storage, 2 <= N <= 16.
template <int NBits> struct SmallUWord {
  static_assert(NBits >= 2 && NBits <= 16,
                "SmallUWord emulates sub-native widths only");
  static constexpr int Bits = NBits;
  static constexpr uint32_t RawMask = (uint32_t{1} << NBits) - 1;

  uint32_t Raw = 0; ///< Invariant: Raw <= RawMask.

  constexpr SmallUWord() = default;
  /// Implicit, masking — mirrors integral conversion to a narrow type.
  constexpr SmallUWord(uint64_t Value)
      : Raw(static_cast<uint32_t>(Value) & RawMask) {}

  constexpr uint32_t raw() const { return Raw; }
  explicit constexpr operator uint64_t() const { return Raw; }
  explicit constexpr operator uint32_t() const { return Raw; }
  explicit constexpr operator SmallSWord<NBits>() const;

  friend constexpr SmallUWord operator+(SmallUWord A, SmallUWord B) {
    return SmallUWord(uint64_t{A.Raw} + B.Raw);
  }
  friend constexpr SmallUWord operator-(SmallUWord A, SmallUWord B) {
    return SmallUWord(uint64_t{A.Raw} - B.Raw);
  }
  friend constexpr SmallUWord operator*(SmallUWord A, SmallUWord B) {
    return SmallUWord(uint64_t{A.Raw} * B.Raw);
  }
  friend constexpr SmallUWord operator/(SmallUWord A, SmallUWord B) {
    assert(B.Raw != 0 && "division by zero");
    return SmallUWord(uint64_t{A.Raw} / B.Raw);
  }
  friend constexpr SmallUWord operator%(SmallUWord A, SmallUWord B) {
    assert(B.Raw != 0 && "division by zero");
    return SmallUWord(uint64_t{A.Raw} % B.Raw);
  }
  friend constexpr SmallUWord operator&(SmallUWord A, SmallUWord B) {
    return SmallUWord(uint64_t{A.Raw & B.Raw});
  }
  friend constexpr SmallUWord operator|(SmallUWord A, SmallUWord B) {
    return SmallUWord(uint64_t{A.Raw | B.Raw});
  }
  friend constexpr SmallUWord operator^(SmallUWord A, SmallUWord B) {
    return SmallUWord(uint64_t{A.Raw ^ B.Raw});
  }
  friend constexpr SmallUWord operator~(SmallUWord A) {
    return SmallUWord(uint64_t{~A.Raw});
  }
  friend constexpr SmallUWord operator<<(SmallUWord A, int Count) {
    assert(Count >= 0 && Count < 32 && "shift count out of range");
    return SmallUWord(uint64_t{A.Raw} << Count);
  }
  friend constexpr SmallUWord operator>>(SmallUWord A, int Count) {
    assert(Count >= 0 && Count < 32 && "shift count out of range");
    return SmallUWord(uint64_t{A.Raw >> Count});
  }
  friend constexpr bool operator==(SmallUWord A, SmallUWord B) {
    return A.Raw == B.Raw;
  }
  friend constexpr std::strong_ordering operator<=>(SmallUWord A,
                                                    SmallUWord B) {
    return A.Raw <=> B.Raw;
  }
};

/// Signed N-bit word emulated in int32_t storage (two's complement).
template <int NBits> struct SmallSWord {
  static_assert(NBits >= 2 && NBits <= 16,
                "SmallSWord emulates sub-native widths only");
  static constexpr int Bits = NBits;
  static constexpr uint32_t RawMask = (uint32_t{1} << NBits) - 1;

  int32_t Raw = 0; ///< Invariant: -2^(N-1) <= Raw < 2^(N-1).

  static constexpr int32_t canonicalize(uint32_t Low) {
    Low &= RawMask;
    if (Low & (uint32_t{1} << (NBits - 1)))
      return static_cast<int32_t>(Low) - (int32_t{1} << NBits);
    return static_cast<int32_t>(Low);
  }

  constexpr SmallSWord() = default;
  /// Implicit, wrapping mod 2^N then sign-extending from bit N-1.
  constexpr SmallSWord(int64_t Value)
      : Raw(canonicalize(static_cast<uint32_t>(Value))) {}

  constexpr int32_t raw() const { return Raw; }
  explicit constexpr operator int64_t() const { return Raw; }
  /// Sign-extends, as converting a native signed word to uint64_t does.
  explicit constexpr operator uint64_t() const {
    return static_cast<uint64_t>(static_cast<int64_t>(Raw));
  }
  explicit constexpr operator SmallUWord<NBits>() const {
    return SmallUWord<NBits>(
        static_cast<uint64_t>(static_cast<int64_t>(Raw)));
  }

  friend constexpr SmallSWord operator-(SmallSWord A) {
    return SmallSWord(-int64_t{A.Raw});
  }
  friend constexpr SmallSWord operator+(SmallSWord A, SmallSWord B) {
    return SmallSWord(int64_t{A.Raw} + B.Raw);
  }
  friend constexpr SmallSWord operator-(SmallSWord A, SmallSWord B) {
    return SmallSWord(int64_t{A.Raw} - B.Raw);
  }
  friend constexpr SmallSWord operator*(SmallSWord A, SmallSWord B) {
    return SmallSWord(int64_t{A.Raw} * B.Raw);
  }
  friend constexpr bool operator==(SmallSWord A, SmallSWord B) {
    return A.Raw == B.Raw;
  }
  friend constexpr std::strong_ordering operator<=>(SmallSWord A,
                                                    SmallSWord B) {
    return A.Raw <=> B.Raw;
  }
};

template <int NBits>
constexpr SmallUWord<NBits>::operator SmallSWord<NBits>() const {
  return SmallSWord<NBits>(int64_t{Raw});
}

/// WordTraits over the emulated family: the doubleword is uint64_t, which
/// exactly covers the up-to-2N+1-bit intermediates (2N <= 32) the
/// algorithms need.
template <int NBits> struct WordTraits<SmallUWord<NBits>> {
  using UWord = SmallUWord<NBits>;
  using SWord = SmallSWord<NBits>;
  using UDWord = uint64_t;
  using SDWord = int64_t;
  static constexpr int Bits = NBits;

  static constexpr UDWord udFromWord(UWord Value) { return Value.raw(); }
  static constexpr UWord udLow(UDWord Value) { return UWord(Value); }
  static constexpr UWord udHigh(UDWord Value) { return UWord(Value >> NBits); }
  static constexpr SDWord sdFromWord(SWord Value) { return Value.raw(); }
  static constexpr UWord sdLow(SDWord Value) {
    return UWord(static_cast<uint64_t>(Value));
  }
  static constexpr SWord sdHigh(SDWord Value) { return SWord(Value >> NBits); }
  static std::pair<UDWord, UDWord> udDivMod(UDWord A, UDWord B) {
    assert(B != 0 && "division by zero");
    return {A / B, A % B};
  }
  /// 2^K as a doubleword, 0 <= K < 2*Bits (same contract as the native
  /// traits; 2N <= 32 so uint64_t holds it exactly).
  static constexpr UDWord udPow2(int K) {
    assert(K >= 0 && K < 2 * NBits && "udPow2 exponent out of range");
    return uint64_t{1} << K;
  }
  /// (q, r) with 2^Exponent = q*Divisor + r; Exponent may be up to 2*Bits.
  static std::pair<UDWord, UDWord> udDivModPow2(int Exponent, UDWord Divisor) {
    assert(Exponent >= 0 && Exponent <= 2 * NBits && "exponent out of range");
    assert(Divisor != 0 && "division by zero");
    const uint64_t Numerator = uint64_t{1} << Exponent;
    return {Numerator / Divisor, Numerator % Divisor};
  }
};

template <int NBits> struct SignedWordTraits<SmallSWord<NBits>> {
  using Traits = WordTraits<SmallUWord<NBits>>;
};

/// Bit-scanning overloads. More specialized than the Bits.h primaries, so
/// overload resolution picks these (the primaries' static_asserts would
/// reject a class type); found by ADL at each instantiation point.
template <int NBits> constexpr int countLeadingZeros(SmallUWord<NBits> Value) {
  return countLeadingZeros64(Value.raw()) - (64 - NBits);
}
template <int NBits> constexpr int countTrailingZeros(SmallUWord<NBits> Value) {
  if (Value.raw() == 0)
    return NBits;
  return countTrailingZeros64(Value.raw());
}
template <int NBits> constexpr int floorLog2(SmallUWord<NBits> Value) {
  assert(Value.raw() >= 1 && "floorLog2 requires a positive argument");
  return NBits - 1 - countLeadingZeros(Value);
}
template <int NBits> constexpr int ceilLog2(SmallUWord<NBits> Value) {
  assert(Value.raw() >= 1 && "ceilLog2 requires a positive argument");
  if (Value.raw() == 1)
    return 0;
  return 64 - countLeadingZeros64(Value.raw() - 1);
}
template <int NBits> constexpr bool isPowerOf2(SmallUWord<NBits> Value) {
  return Value.raw() != 0 && (Value.raw() & (Value.raw() - 1)) == 0;
}

/// The word's bit width for generic code (ModArith): specialized here
/// because sizeof(SmallUWord) says nothing about N.
template <int NBits> struct WordBitWidth<SmallUWord<NBits>> {
  static constexpr int value = NBits;
};

} // namespace gmdiv

#endif // GMDIV_OPS_SMALLWORD_H
