//===- ops/Ops.h - Table 3.1 primitive operations ---------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model of the paper: an N-bit two's complement architecture
/// with the primitive operations of Table 3.1 (MULL, MULUH, MULSH, shifts,
/// XSIGN, bit operations) plus the §3 identities between them.
///
/// Everything is templated over the unsigned word type through WordTraits,
/// so the same algorithm code instantiates at N = 8, 16, 32 and 64. The
/// doubleword types ("udword"/"sdword") are the next-wider built-in type
/// where one exists and the from-scratch UInt128/Int128 at N = 64.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_OPS_OPS_H
#define GMDIV_OPS_OPS_H

#include "ops/Bits.h"
#include "wideint/Int128.h"
#include "wideint/Int256.h"
#include "wideint/UInt128.h"
#include "wideint/UInt256.h"

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace gmdiv {

//===----------------------------------------------------------------------===//
// WordTraits: word / doubleword type families per machine width N.
//===----------------------------------------------------------------------===//

template <typename UWordT> struct WordTraits;

namespace detail {

/// Common helpers for widths whose doubleword is a built-in integer type.
template <typename UWordT, typename SWordT, typename UDWordT,
          typename SDWordT>
struct NativeWordTraits {
  using UWord = UWordT;
  using SWord = SWordT;
  using UDWord = UDWordT;
  using SDWord = SDWordT;
  static constexpr int Bits = static_cast<int>(sizeof(UWord) * 8);

  static constexpr UDWord udFromWord(UWord Value) {
    return static_cast<UDWord>(Value);
  }
  static constexpr UWord udLow(UDWord Value) {
    return static_cast<UWord>(Value);
  }
  static constexpr UWord udHigh(UDWord Value) {
    return static_cast<UWord>(Value >> Bits);
  }
  static constexpr SDWord sdFromWord(SWord Value) {
    return static_cast<SDWord>(Value);
  }
  static constexpr UWord sdLow(SDWord Value) {
    return static_cast<UWord>(static_cast<UDWord>(Value));
  }
  static constexpr SWord sdHigh(SDWord Value) {
    return static_cast<SWord>(Value >> Bits);
  }
  static std::pair<UDWord, UDWord> udDivMod(UDWord A, UDWord B) {
    assert(B != 0 && "division by zero");
    return {static_cast<UDWord>(A / B), static_cast<UDWord>(A % B)};
  }
  /// 2^K as a doubleword, 0 <= K < 2*Bits.
  static constexpr UDWord udPow2(int K) {
    assert(K >= 0 && K < 2 * Bits && "udPow2 exponent out of range");
    return static_cast<UDWord>(UDWord{1} << K);
  }
  /// (q, r) with 2^Exponent = q*Divisor + r; Exponent may be up to 2*Bits.
  static std::pair<UDWord, UDWord> udDivModPow2(int Exponent, UDWord Divisor) {
    assert(Exponent >= 0 && Exponent <= 2 * Bits && "exponent out of range");
    assert(Divisor != 0 && "division by zero");
    if (Exponent < 2 * Bits) {
      const UDWord Numerator = static_cast<UDWord>(UDWord{1} << Exponent);
      return udDivMod(Numerator, Divisor);
    }
    assert(Divisor > 1 && "2^(2N) / 1 does not fit in a udword");
    auto [Quotient, Remainder] =
        udDivMod(static_cast<UDWord>(UDWord{1} << (2 * Bits - 1)), Divisor);
    const bool Wrapped =
        (Remainder >> (2 * Bits - 1)) != 0; // 2r overflows 2N bits.
    Quotient = static_cast<UDWord>(Quotient << 1);
    Remainder = static_cast<UDWord>(Remainder << 1);
    if (Wrapped || Remainder >= Divisor) {
      Remainder = static_cast<UDWord>(Remainder - Divisor);
      Quotient = static_cast<UDWord>(Quotient + 1);
    }
    return {Quotient, Remainder};
  }
};

} // namespace detail

template <>
struct WordTraits<uint8_t>
    : detail::NativeWordTraits<uint8_t, int8_t, uint16_t, int16_t> {};
template <>
struct WordTraits<uint16_t>
    : detail::NativeWordTraits<uint16_t, int16_t, uint32_t, int32_t> {};
template <>
struct WordTraits<uint32_t>
    : detail::NativeWordTraits<uint32_t, int32_t, uint64_t, int64_t> {};

/// N = 64: the doubleword is the from-scratch 128-bit type.
template <> struct WordTraits<uint64_t> {
  using UWord = uint64_t;
  using SWord = int64_t;
  using UDWord = UInt128;
  using SDWord = Int128;
  static constexpr int Bits = 64;

  static constexpr UDWord udFromWord(UWord Value) { return UInt128(Value); }
  static constexpr UWord udLow(UDWord Value) { return Value.low64(); }
  static constexpr UWord udHigh(UDWord Value) { return Value.high64(); }
  static constexpr SDWord sdFromWord(SWord Value) { return Int128(Value); }
  static constexpr UWord sdLow(SDWord Value) { return Value.bits().low64(); }
  static constexpr SWord sdHigh(SDWord Value) {
    return static_cast<SWord>(Value.bits().high64());
  }
  static std::pair<UDWord, UDWord> udDivMod(UDWord A, UDWord B) {
    return UInt128::divMod(A, B);
  }
  /// 2^K as a doubleword, 0 <= K < 2*Bits.
  static constexpr UDWord udPow2(int K) { return UInt128::pow2(K); }
  static std::pair<UDWord, UDWord> udDivModPow2(int Exponent, UDWord Divisor) {
    return UInt128::divModPow2(Exponent, Divisor);
  }
};

/// N = 128: one size beyond the host. The doubleword is the 256-bit
/// type, the "word" is our own UInt128 — instantiating the paper's
/// algorithms at a width no hardware provides, with the independently
/// validated 128-bit division as the test reference. Signed members are
/// deliberately absent (no Int256); only the unsigned algorithms
/// instantiate at this width.
template <> struct WordTraits<UInt128> {
  using UWord = UInt128;
  using SWord = Int128;
  using UDWord = UInt256;
  using SDWord = Int256;
  static constexpr int Bits = 128;

  static UDWord udFromWord(UWord Value) { return UInt256(Value); }
  static UWord udLow(const UDWord &Value) { return Value.low128(); }
  static UWord udHigh(const UDWord &Value) { return Value.high128(); }
  static UDWord udPow2(int K) { return UInt256::pow2(K); }
  static std::pair<UDWord, UDWord> udDivMod(const UDWord &A,
                                            const UDWord &B) {
    return UInt256::divMod(A, B);
  }
  static std::pair<UDWord, UDWord> udDivModPow2(int Exponent,
                                                const UDWord &Divisor) {
    return UInt256::divModPow2(Exponent, Divisor);
  }
  static SDWord sdFromWord(SWord Value) { return Int256(Value); }
  static UWord sdLow(const SDWord &Value) { return Value.low128(); }
  static SWord sdHigh(const SDWord &Value) { return Value.high128(); }
};

/// Bit-scanning overloads for the class-type word (the templates in
/// Bits.h are constrained to built-in unsigned types).
inline int countLeadingZeros(const UInt128 &Value) {
  return Value.countLeadingZeros();
}
inline int countTrailingZeros(const UInt128 &Value) {
  return Value.countTrailingZeros();
}
inline int floorLog2(const UInt128 &Value) {
  assert(!Value.isZero() && "floorLog2 requires a positive argument");
  return Value.bitLength() - 1;
}
inline int ceilLog2(const UInt128 &Value) {
  assert(!Value.isZero() && "ceilLog2 requires a positive argument");
  return (Value - UInt128(1)).bitLength();
}
inline bool isPowerOf2(const UInt128 &Value) {
  return !Value.isZero() && (Value & (Value - UInt128(1))).isZero();
}

/// Maps a signed word type back to its unsigned family.
template <typename SWordT> struct SignedWordTraits;
template <> struct SignedWordTraits<int8_t> {
  using Traits = WordTraits<uint8_t>;
};
template <> struct SignedWordTraits<int16_t> {
  using Traits = WordTraits<uint16_t>;
};
template <> struct SignedWordTraits<int32_t> {
  using Traits = WordTraits<uint32_t>;
};
template <> struct SignedWordTraits<int64_t> {
  using Traits = WordTraits<uint64_t>;
};
template <> struct SignedWordTraits<Int128> {
  using Traits = WordTraits<UInt128>;
};

//===----------------------------------------------------------------------===//
// Table 3.1 primitives.
//
// Shift counts follow the paper: 0 <= n <= N-1 for the plain forms. The
// *wide* forms additionally accept n == N (needed by Figure 8.1, where the
// paper notes "the shift count may equal N; if this is too large, use
// separate shifts") and return 0 in that case.
//===----------------------------------------------------------------------===//

/// MULL(x, y): lower half of the product, i.e. x*y mod 2^N.
template <typename UWord>
constexpr UWord mulL(UWord X, UWord Y) {
  using T = WordTraits<UWord>;
  return T::udLow(T::udFromWord(X) * T::udFromWord(Y));
}

/// MULUH(x, y): upper half of the unsigned product.
///
/// At N = 64 this is the one hot primitive where portability costs real
/// cycles: the from-scratch UInt128 multiply decomposes into four 32-bit
/// partial products, while most 64-bit ISAs have a single widening
/// multiply the compiler exposes through __int128. Production practice
/// (libdivide, GMP longlong.h) is a builtin fast path with the portable
/// route as fallback; tests cross-check the two against each other and
/// against the §3 identities.
template <typename UWord>
constexpr UWord mulUH(UWord X, UWord Y) {
  using T = WordTraits<UWord>;
  if constexpr (T::Bits == 64) {
#ifdef __SIZEOF_INT128__
    return static_cast<UWord>(
        (static_cast<unsigned __int128>(X) *
         static_cast<unsigned __int128>(Y)) >>
        64);
#endif
  }
  return T::udHigh(T::udFromWord(X) * T::udFromWord(Y));
}

/// MULSH(x, y): upper half of the signed product.
template <typename SWord>
constexpr SWord mulSH(SWord X, SWord Y) {
  using T = typename SignedWordTraits<SWord>::Traits;
  if constexpr (T::Bits == 64) {
#ifdef __SIZEOF_INT128__
    return static_cast<SWord>(
        (static_cast<__int128>(X) * static_cast<__int128>(Y)) >> 64);
#endif
  }
  return T::sdHigh(T::sdFromWord(X) * T::sdFromWord(Y));
}

/// The portable (builtin-free) forms, kept callable so tests can verify
/// the fast paths against them on every platform.
template <typename UWord>
constexpr UWord mulUHPortable(UWord X, UWord Y) {
  using T = WordTraits<UWord>;
  return T::udHigh(T::udFromWord(X) * T::udFromWord(Y));
}
template <typename SWord>
constexpr SWord mulSHPortable(SWord X, SWord Y) {
  using T = typename SignedWordTraits<SWord>::Traits;
  return T::sdHigh(T::sdFromWord(X) * T::sdFromWord(Y));
}

/// SLL(x, n): logical left shift, 0 <= n <= N-1.
template <typename UWord>
constexpr UWord sll(UWord X, int N) {
  assert(N >= 0 && N < WordTraits<UWord>::Bits && "shift count out of range");
  return static_cast<UWord>(X << N);
}

/// SRL(x, n): logical right shift, 0 <= n <= N-1.
template <typename UWord>
constexpr UWord srl(UWord X, int N) {
  assert(N >= 0 && N < WordTraits<UWord>::Bits && "shift count out of range");
  return static_cast<UWord>(X >> N);
}

/// SRA(x, n): arithmetic right shift, 0 <= n <= N-1. C++20 defines >> on
/// signed types as arithmetic, but we route through the unsigned identity
/// of §3 so the semantics are explicit and testable:
///   SRA(x, n) = SRL(x + 2^(N-1), n) - 2^(N-n-1)   for 0 < n <= N-1.
template <typename SWord>
constexpr SWord sra(SWord X, int N) {
  using T = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename T::UWord;
  assert(N >= 0 && N < T::Bits && "shift count out of range");
  if (N == 0)
    return X;
  const UWord Biased = static_cast<UWord>(
      static_cast<UWord>(X) + (UWord{1} << (T::Bits - 1)));
  const UWord Shifted = static_cast<UWord>(Biased >> N);
  return static_cast<SWord>(
      static_cast<UWord>(Shifted - (UWord{1} << (T::Bits - 1 - N))));
}

/// SLL permitting a shift count of N (result 0).
template <typename UWord>
constexpr UWord sllWide(UWord X, int N) {
  if (N == WordTraits<UWord>::Bits)
    return 0;
  return sll(X, N);
}

/// SRL permitting a shift count of N (result 0).
template <typename UWord>
constexpr UWord srlWide(UWord X, int N) {
  if (N == WordTraits<UWord>::Bits)
    return 0;
  return srl(X, N);
}

/// XSIGN(x): -1 if x < 0, else 0. "Short for SRA(x, N-1)."
template <typename SWord>
constexpr SWord xsign(SWord X) {
  return sra(X, SignedWordTraits<SWord>::Traits::Bits - 1);
}

/// EOR / AND / OR / NOT exist natively; NOT on a signed word is -1 - x.

//===----------------------------------------------------------------------===//
// §3 identities — each is both a usable fallback for architectures missing
// an instruction and a testable claim of the paper.
//===----------------------------------------------------------------------===//

/// MULUH computed from MULSH (for machines with only a signed high
/// multiply):
///   MULUH(x, y) = MULSH(x, y) + AND(x, XSIGN(y)) + AND(y, XSIGN(x)).
template <typename UWord>
constexpr UWord mulUHFromMulSH(UWord X, UWord Y) {
  using T = WordTraits<UWord>;
  using SWord = typename T::SWord;
  const SWord SX = static_cast<SWord>(X), SY = static_cast<SWord>(Y);
  const UWord High = static_cast<UWord>(mulSH(SX, SY));
  return static_cast<UWord>(High +
                            (X & static_cast<UWord>(xsign(SY))) +
                            (Y & static_cast<UWord>(xsign(SX))));
}

/// MULSH computed from MULUH (the same identity solved the other way).
template <typename SWord>
constexpr SWord mulSHFromMulUH(SWord X, SWord Y) {
  using T = typename SignedWordTraits<SWord>::Traits;
  using UWord = typename T::UWord;
  const UWord UX = static_cast<UWord>(X), UY = static_cast<UWord>(Y);
  const UWord High = mulUH(UX, UY);
  return static_cast<SWord>(static_cast<UWord>(
      High - (UX & static_cast<UWord>(xsign(Y))) -
      (UY & static_cast<UWord>(xsign(X)))));
}

/// Reference TRUNC on rationals is provided by the dividers; on floating
/// point it is std::trunc (used by §7's FloatDivider).

} // namespace gmdiv

#endif // GMDIV_OPS_OPS_H
