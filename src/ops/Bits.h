//===- ops/Bits.h - Bit scanning and integer logarithms ---------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leading/trailing zero counts and the integer logarithms of §3.
///
/// The paper derives both logarithms from a leading-zero-count (LDZ)
/// instruction:
///   ⌈log2 x⌉ = N - LDZ(x - 1)        (1 < x <= 2^(N-1))
///   ⌊log2 x⌋ = N - 1 - LDZ(x)        (x >= 1)
/// We implement LDZ itself by binary search so the library is
/// self-contained; tests cross-check against std::countl_zero.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_OPS_BITS_H
#define GMDIV_OPS_BITS_H

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace gmdiv {

/// Number of leading zero bits in a 64-bit value; 64 for zero.
constexpr int countLeadingZeros64(uint64_t Value) {
  if (Value == 0)
    return 64;
  int Count = 0;
  if ((Value >> 32) == 0) {
    Count += 32;
    Value <<= 32;
  }
  if ((Value >> 48) == 0) {
    Count += 16;
    Value <<= 16;
  }
  if ((Value >> 56) == 0) {
    Count += 8;
    Value <<= 8;
  }
  if ((Value >> 60) == 0) {
    Count += 4;
    Value <<= 4;
  }
  if ((Value >> 62) == 0) {
    Count += 2;
    Value <<= 2;
  }
  if ((Value >> 63) == 0)
    Count += 1;
  return Count;
}

/// Number of trailing zero bits in a 64-bit value; 64 for zero.
constexpr int countTrailingZeros64(uint64_t Value) {
  if (Value == 0)
    return 64;
  int Count = 0;
  if ((Value & 0xffffffffu) == 0) {
    Count += 32;
    Value >>= 32;
  }
  if ((Value & 0xffffu) == 0) {
    Count += 16;
    Value >>= 16;
  }
  if ((Value & 0xffu) == 0) {
    Count += 8;
    Value >>= 8;
  }
  if ((Value & 0xfu) == 0) {
    Count += 4;
    Value >>= 4;
  }
  if ((Value & 0x3u) == 0) {
    Count += 2;
    Value >>= 2;
  }
  if ((Value & 0x1u) == 0)
    Count += 1;
  return Count;
}

/// Number of set bits in a 64-bit value.
constexpr int popCount64(uint64_t Value) {
  Value = Value - ((Value >> 1) & 0x5555555555555555ull);
  Value = (Value & 0x3333333333333333ull) +
          ((Value >> 2) & 0x3333333333333333ull);
  Value = (Value + (Value >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<int>((Value * 0x0101010101010101ull) >> 56);
}

/// Leading-zero count within a word of \p Bits bits (the paper's LDZ).
template <typename UWord>
constexpr int countLeadingZeros(UWord Value) {
  static_assert(std::is_unsigned_v<UWord>, "LDZ operates on unsigned words");
  constexpr int Bits = static_cast<int>(sizeof(UWord) * 8);
  return countLeadingZeros64(static_cast<uint64_t>(Value)) - (64 - Bits);
}

/// Trailing-zero count within a word; width of the word for zero.
template <typename UWord>
constexpr int countTrailingZeros(UWord Value) {
  static_assert(std::is_unsigned_v<UWord>, "CTZ operates on unsigned words");
  constexpr int Bits = static_cast<int>(sizeof(UWord) * 8);
  if (Value == 0)
    return Bits;
  return countTrailingZeros64(static_cast<uint64_t>(Value));
}

/// ⌊log2 Value⌋ for Value >= 1, via the paper's LDZ identity.
template <typename UWord>
constexpr int floorLog2(UWord Value) {
  assert(Value >= 1 && "floorLog2 requires a positive argument");
  constexpr int Bits = static_cast<int>(sizeof(UWord) * 8);
  return Bits - 1 - countLeadingZeros<UWord>(Value);
}

/// ⌈log2 Value⌉ for Value >= 1, via the paper's LDZ identity.
/// Unlike the paper's statement (which assumes 1 < x <= 2^(N-1)) this
/// also handles Value == 1 (result 0) and values above 2^(N-1).
template <typename UWord>
constexpr int ceilLog2(UWord Value) {
  assert(Value >= 1 && "ceilLog2 requires a positive argument");
  if (Value == 1)
    return 0;
  constexpr int Bits = static_cast<int>(sizeof(UWord) * 8);
  return Bits - countLeadingZeros<UWord>(static_cast<UWord>(Value - 1));
}

/// True if \p Value is a power of two (and nonzero).
template <typename UWord>
constexpr bool isPowerOf2(UWord Value) {
  static_assert(std::is_unsigned_v<UWord>, "requires an unsigned word");
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Bit width of a word type, for generic code that cannot rely on
/// sizeof (emulated small words store N logical bits in wider storage).
/// The default covers every built-in integer and UInt128 (sizeof 16).
template <typename UWord> struct WordBitWidth {
  static constexpr int value = static_cast<int>(sizeof(UWord) * 8);
};

template <typename UWord>
inline constexpr int WordBitWidthV = WordBitWidth<UWord>::value;

} // namespace gmdiv

#endif // GMDIV_OPS_BITS_H
