//===- numtheory/ModArith.cpp - GCD and inverses mod 2^N ------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "numtheory/ModArith.h"

using namespace gmdiv;

ExtendedGcd128 gmdiv::extendedGcd(UInt128 A, UInt128 B) {
  assert((!A.isZero() || !B.isZero()) && "gcd(0, 0) is undefined here");
  // Iterative extended Euclid. Invariants:
  //   OldX*A0 + OldY*B0 = OldR,  X*A0 + Y*B0 = R.
  // Coefficients stay below max(A, B) in magnitude, so Int128 cannot
  // overflow for 128-bit inputs of which at least one is < 2^127; our
  // callers pass (d, 2^N) with N <= 64, far inside the safe range.
  Int128 OldX(1), X(0);
  Int128 OldY(0), Y(1);
  UInt128 OldR = A, R = B;
  while (!R.isZero()) {
    auto [Quotient, Remainder] = UInt128::divMod(OldR, R);
    assert(!Quotient.bit(127) &&
           "quotient magnitude in range for signed coefficient update");
    const Int128 Q = Int128::fromBits(Quotient);
    const Int128 NextX = OldX - Q * X;
    const Int128 NextY = OldY - Q * Y;
    OldR = R;
    R = Remainder;
    OldX = X;
    X = NextX;
    OldY = Y;
    Y = NextY;
  }
  return {OldX, OldY, OldR};
}
