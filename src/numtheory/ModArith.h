//===- numtheory/ModArith.h - GCD and inverses mod 2^N ----------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Number-theoretic support for §9 (exact division by constants).
///
/// The exact-division algorithm needs d_inv with d_inv * d_odd ≡ 1
/// (mod 2^N) for the odd part of the divisor. The paper offers two
/// constructions, both implemented here and cross-checked in tests:
///   1. the extended Euclidean algorithm [Knuth v2, p. 325], and
///   2. the Newton iteration (9.2): x <- x*(2 - d*x) mod 2^N, starting at
///      x = d (valid mod 2^3), doubling the valid exponent each step, so
///      ⌈log2(N/3)⌉ iterations suffice.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_NUMTHEORY_MODARITH_H
#define GMDIV_NUMTHEORY_MODARITH_H

#include "ops/Bits.h"
#include "wideint/Int128.h"
#include "wideint/UInt128.h"

#include <cassert>
#include <cstdint>

namespace gmdiv {

/// Greatest common divisor (Euclid); gcd(0, 0) == 0 by convention.
constexpr uint64_t gcd64(uint64_t A, uint64_t B) {
  while (B != 0) {
    const uint64_t Next = A % B;
    A = B;
    B = Next;
  }
  return A;
}

/// Result of the extended Euclidean algorithm: G = gcd(A, B) and Bezout
/// coefficients with X*A + Y*B = G.
struct ExtendedGcd128 {
  Int128 X;
  Int128 Y;
  UInt128 G;
};

/// Extended Euclidean algorithm over 128-bit values. \p A and \p B must
/// not both be zero.
ExtendedGcd128 extendedGcd(UInt128 A, UInt128 B);

/// Inverse of an odd value modulo 2^N via extended Euclid.
template <typename UWord>
UWord modInverseEuclid(UWord OddValue) {
  constexpr int Bits = WordBitWidthV<UWord>;
  assert((OddValue & 1) != 0 && "only odd values are invertible mod 2^N");
  const UInt128 Modulus = UInt128::pow2(Bits);
  const ExtendedGcd128 Result =
      extendedGcd(UInt128(static_cast<uint64_t>(OddValue)), Modulus);
  assert(Result.G == UInt128(1) && "odd value must be coprime to 2^N");
  // Reduce the Bezout coefficient into [0, 2^N).
  UInt128 Inverse = Result.X.bits() & (Modulus - UInt128(1));
  return static_cast<UWord>(Inverse.low64());
}

/// Inverse of an odd value modulo 2^N via the Newton iteration (9.2).
template <typename UWord>
constexpr UWord modInverseNewton(UWord OddValue) {
  constexpr int Bits = WordBitWidthV<UWord>;
  assert((OddValue & 1) != 0 && "only odd values are invertible mod 2^N");
  // x = d satisfies d*x ≡ 1 (mod 2^3); each iteration doubles the
  // exponent, so iterate while 3 * 2^k < N, i.e. ⌈log2(N/3)⌉ times.
  UWord Inverse = OddValue;
  for (int Precision = 3; Precision < Bits; Precision *= 2)
    Inverse = static_cast<UWord>(
        Inverse * static_cast<UWord>(UWord{2} - OddValue * Inverse));
  assert(static_cast<UWord>(Inverse * OddValue) == 1 &&
         "Newton iteration failed to converge");
  return Inverse;
}

} // namespace gmdiv

#endif // GMDIV_NUMTHEORY_MODARITH_H
