//===- verify/Oracle.h - Wide-integer reference oracle ----------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference side of the differential verification harness: exact
/// floor/trunc/ceil quotients, remainders and divisibility for any word
/// width in [2, 64], plus the paper's multiplier preconditions (Theorem
/// 4.2's bracket on m and sh_post, Theorem 5.1 / §5's word-size bound)
/// as first-class checks.
///
/// The quotient machinery is deliberately *not* the code under test: an
/// Oracle divides unsigned magnitudes through the §8 multi-precision
/// primitive (core/MultiPrecision.h, one Figure 8.1 kernel per limb) and
/// then asserts the result against the hardware divide, so a bug would
/// have to hit two independent implementations identically to slip
/// through. Derived quotients (trunc/floor/ceil and their remainders)
/// come from the sign rules of §2 applied in wrap-exact uint64
/// arithmetic, masked to the target width.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_VERIFY_ORACLE_H
#define GMDIV_VERIFY_ORACLE_H

#include "core/DWordDivider.h"

#include <cstdint>
#include <vector>

namespace gmdiv {
namespace verify {

/// Every reference result for one (n, d) pair, as bit patterns masked to
/// the oracle's word width. For unsigned oracles Trunc == Floor and Ceil
/// is the round-up quotient; remainders satisfy n = q*d + r exactly in
/// N-bit wrap arithmetic for each rounding mode.
struct DivRef {
  uint64_t TruncQ = 0;
  uint64_t TruncR = 0;
  uint64_t FloorQ = 0;
  uint64_t FloorR = 0; ///< The §2 `mod` remainder (sign of the divisor).
  uint64_t CeilQ = 0;
  uint64_t CeilR = 0;
  bool Divisible = false;
  /// Signed INT_MIN / -1: the quotient is unrepresentable; the fields
  /// hold the documented wrap-to-INT_MIN policy the dividers follow.
  bool Overflow = false;
};

/// Reference divider for one (width, divisor, signedness); construct once
/// per divisor, query per dividend.
class Oracle {
public:
  /// \p DBits is the divisor bit pattern in the low \p WordBits bits
  /// (sign-extended semantics when \p IsSigned); must be nonzero.
  Oracle(int WordBits, uint64_t DBits, bool IsSigned);

  int wordBits() const { return W; }
  bool isSigned() const { return Signed; }
  uint64_t divisorBits() const { return DBits; }

  /// All reference results for dividend bit pattern \p NBits.
  DivRef ref(uint64_t NBits) const;

private:
  int W;
  bool Signed;
  uint64_t DBits;
  uint64_t Mask;
  uint64_t AbsD; ///< Divisor magnitude (for signed oracles).
  DWordDivider<uint64_t> MagnitudeDivider;
  mutable std::vector<uint64_t> Limbs; ///< Single-limb scratch.
};

/// Verdict on a (m, sh_post) pair returned by CHOOSE_MULTIPLIER.
struct MultiplierCheck {
  /// Log2Ceil == ceil(log2 d) and 0 <= sh_post <= Log2Ceil.
  bool ShiftInRange = false;
  /// Theorem 4.2 bracket: 2^(N+sh_post) <= m*d <= 2^(N+sh_post) +
  /// 2^(N+sh_post-prec). (The CHOOSE_MULTIPLIER postcondition; with
  /// prec = N this is exactly the theorem's 2^(N+l) .. 2^(N+l) + 2^l.)
  bool MultiplierInRange = false;
  /// m < 2^N — guaranteed by §5 for prec <= N-1 (and d >= 2).
  bool FitsWord = false;
  /// m < 2^(N-1) — when true the short signed sequence applies without
  /// the Figure 5.2 add fixup.
  bool FitsSignedWord = false;

  /// The paper's precondition proper (shift plus Theorem 4.2 range).
  bool ok() const { return ShiftInRange && MultiplierInRange; }
};

/// Checks a multiplier against the Theorem 4.2 / §5 preconditions.
/// \p MultiplierLow / \p MultiplierHigh are the low/high 64-bit halves of
/// m (m < 2^(N+1) <= 2^65, so two halves always suffice); \p D is the
/// divisor magnitude. All power-of-two arithmetic runs through the §8
/// multi-precision primitive, exact for every N <= 64.
MultiplierCheck checkMultiplier(int WordBits, int Precision, uint64_t D,
                                uint64_t MultiplierLow,
                                uint64_t MultiplierHigh, int ShiftPost,
                                int Log2Ceil);

} // namespace verify
} // namespace gmdiv

#endif // GMDIV_VERIFY_ORACLE_H
