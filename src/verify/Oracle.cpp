//===- verify/Oracle.cpp - Wide-integer reference oracle ------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "verify/Oracle.h"

#include "core/MultiPrecision.h"
#include "ops/Bits.h"

#include <cassert>

using namespace gmdiv;
using namespace gmdiv::verify;

namespace {

uint64_t maskFor(int WordBits) {
  return WordBits == 64 ? ~uint64_t{0} : (uint64_t{1} << WordBits) - 1;
}

int64_t signExtend(uint64_t Value, int WordBits) {
  const uint64_t SignBit = uint64_t{1} << (WordBits - 1);
  return static_cast<int64_t>((Value ^ SignBit) - SignBit);
}

/// |v| of a sign-extended value, computed mod 2^64 so INT64_MIN is safe.
uint64_t magnitude(int64_t Value) {
  return Value < 0 ? 0 - static_cast<uint64_t>(Value)
                   : static_cast<uint64_t>(Value);
}

/// Little-endian limbs of 2^K (0 <= K <= 191).
std::vector<uint64_t> pow2Limbs(int K) {
  assert(K >= 0 && K < 192 && "exponent out of the oracle's range");
  std::vector<uint64_t> Limbs(static_cast<size_t>(K / 64) + 1, 0);
  Limbs.back() = uint64_t{1} << (K % 64);
  return Limbs;
}

/// Adds 2^K into the limb array (which must already span bit K).
void addPow2InPlace(std::vector<uint64_t> &Limbs, int K) {
  size_t Index = static_cast<size_t>(K / 64);
  uint64_t Carry = uint64_t{1} << (K % 64);
  while (Carry != 0) {
    assert(Index < Limbs.size() && "carry out of the limb array");
    const uint64_t Sum = Limbs[Index] + Carry;
    Carry = Sum < Carry ? 1 : 0;
    Limbs[Index++] = Sum;
  }
}

/// floor(value/d) of a limb array, returned as (low64, high64); asserts
/// the quotient fits two limbs (always true for the multiplier brackets,
/// which are below 2^(N+2) <= 2^66).
std::pair<uint64_t, uint64_t> divToHalves(std::vector<uint64_t> Limbs,
                                          const DWordDivider<uint64_t> &ByD,
                                          uint64_t *RemainderOut = nullptr) {
  const uint64_t Remainder = multiprecision::divModInPlace(Limbs, ByD);
  if (RemainderOut)
    *RemainderOut = Remainder;
  while (Limbs.size() > 2) {
    assert(Limbs.back() == 0 && "quotient exceeds 128 bits");
    Limbs.pop_back();
  }
  return {Limbs.empty() ? 0 : Limbs[0], Limbs.size() > 1 ? Limbs[1] : 0};
}

/// Lexicographic compare of (high, low) 128-bit halves.
int compareHalves(uint64_t ALow, uint64_t AHigh, uint64_t BLow,
                  uint64_t BHigh) {
  if (AHigh != BHigh)
    return AHigh < BHigh ? -1 : 1;
  if (ALow != BLow)
    return ALow < BLow ? -1 : 1;
  return 0;
}

} // namespace

Oracle::Oracle(int WordBits, uint64_t DBits, bool IsSigned)
    : W(WordBits), Signed(IsSigned), DBits(DBits & maskFor(WordBits)),
      Mask(maskFor(WordBits)),
      AbsD(IsSigned ? magnitude(signExtend(DBits & maskFor(WordBits),
                                           WordBits))
                    : DBits & maskFor(WordBits)),
      MagnitudeDivider(AbsD), Limbs(1, 0) {
  assert(WordBits >= 2 && WordBits <= 64 && "unsupported word width");
  assert(AbsD != 0 && "divisor must be nonzero");
}

DivRef Oracle::ref(uint64_t NBits) const {
  NBits &= Mask;
  DivRef Result;
  if (!Signed) {
    // Magnitude division through the §8 kernel, cross-checked against
    // the hardware divide.
    Limbs[0] = NBits;
    const uint64_t R = multiprecision::divModInPlace(Limbs, MagnitudeDivider);
    const uint64_t Q = Limbs[0];
    assert(Q == NBits / AbsD && R == NBits % AbsD &&
           "multi-precision and hardware division disagree");
    Result.TruncQ = Q & Mask;
    Result.TruncR = R & Mask;
    Result.FloorQ = Result.TruncQ;
    Result.FloorR = Result.TruncR;
    Result.CeilQ = (Q + (R != 0 ? 1 : 0)) & Mask;
    Result.CeilR = (R != 0 ? R - AbsD : 0) & Mask;
    Result.Divisible = R == 0;
    return Result;
  }

  const int64_t N = signExtend(NBits, W);
  const int64_t D = signExtend(DBits, W);
  Limbs[0] = magnitude(N);
  const uint64_t MagR = multiprecision::divModInPlace(Limbs, MagnitudeDivider);
  const uint64_t MagQ = Limbs[0];
  assert(MagQ == magnitude(N) / AbsD && MagR == magnitude(N) % AbsD &&
         "multi-precision and hardware division disagree");

  // §2 sign rules applied as wrap-exact uint64 arithmetic, then masked:
  // trunc quotient negates when the signs differ, the trunc ("rem")
  // remainder takes the dividend's sign.
  const bool QNegative = (N < 0) != (D < 0);
  const uint64_t TruncQ = QNegative ? 0 - MagQ : MagQ;
  const uint64_t TruncR = N < 0 ? 0 - MagR : MagR;
  Result.TruncQ = TruncQ & Mask;
  Result.TruncR = TruncR & Mask;
  Result.Divisible = MagR == 0;

  // Floor: subtract one from the trunc quotient (and add d to the
  // remainder) when a nonzero remainder's sign differs from d's.
  uint64_t FloorQ = TruncQ, FloorR = TruncR;
  if (MagR != 0 && QNegative) {
    FloorQ -= 1;
    FloorR += static_cast<uint64_t>(D);
  }
  Result.FloorQ = FloorQ & Mask;
  Result.FloorR = FloorR & Mask;

  // Ceil: the mirror adjustment when the signs agree.
  uint64_t CeilQ = TruncQ, CeilR = TruncR;
  if (MagR != 0 && !QNegative) {
    CeilQ += 1;
    CeilR -= static_cast<uint64_t>(D);
  }
  Result.CeilQ = CeilQ & Mask;
  Result.CeilR = CeilR & Mask;

  // INT_MIN / -1: every quotient is 2^(N-1), unrepresentable. The
  // dividers wrap to INT_MIN (the masked value already says so); flag it
  // so callers can apply their documented policy.
  Result.Overflow = D == -1 && NBits == (uint64_t{1} << (W - 1));
  return Result;
}

MultiplierCheck verify::checkMultiplier(int WordBits, int Precision,
                                        uint64_t D, uint64_t MultiplierLow,
                                        uint64_t MultiplierHigh,
                                        int ShiftPost, int Log2Ceil) {
  assert(WordBits >= 2 && WordBits <= 64 && "unsupported word width");
  assert(D != 0 && "divisor must be nonzero");
  assert(Precision >= 1 && Precision <= WordBits && "precision out of range");
  MultiplierCheck Check;

  // ceil(log2 d) from the 64-bit LDZ, independent of the traits layer.
  const int L = D == 1 ? 0 : 64 - countLeadingZeros64(D - 1);
  Check.ShiftInRange = Log2Ceil == L && ShiftPost >= 0 && ShiftPost <= L;
  if (!Check.ShiftInRange)
    return Check;

  // Theorem 4.2 bracket, as bounds on m (division is exact in limbs):
  //   m_min = ceil(2^(N+sh)/d)
  //   m_max = floor((2^(N+sh) + 2^(N+sh-prec))/d)
  const DWordDivider<uint64_t> ByD(D);
  const int K = WordBits + ShiftPost;
  uint64_t Remainder = 0;
  auto [MinLow, MinHigh] = divToHalves(pow2Limbs(K), ByD, &Remainder);
  if (Remainder != 0) {
    MinLow += 1;
    if (MinLow == 0)
      MinHigh += 1;
  }
  std::vector<uint64_t> UpperLimbs = pow2Limbs(K);
  addPow2InPlace(UpperLimbs, K - Precision);
  auto [MaxLow, MaxHigh] = divToHalves(std::move(UpperLimbs), ByD);
  Check.MultiplierInRange =
      compareHalves(MultiplierLow, MultiplierHigh, MinLow, MinHigh) >= 0 &&
      compareHalves(MultiplierLow, MultiplierHigh, MaxLow, MaxHigh) <= 0;

  // §5's word-size guarantees.
  const uint64_t WordTop =
      WordBits == 64 ? 0 : uint64_t{1} << WordBits; // 2^N (0 flags 2^64).
  Check.FitsWord = MultiplierHigh == 0 &&
                   (WordBits == 64 || MultiplierLow < WordTop);
  Check.FitsSignedWord =
      MultiplierHigh == 0 &&
      MultiplierLow < (uint64_t{1} << (WordBits - 1));
  return Check;
}
