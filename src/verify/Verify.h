//===- verify/Verify.h - Differential verification driver -------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checking side of the differential verification harness. Every
/// divider in src/core, every generated sequence in src/codegen (run
/// through the IR interpreter) and, at native widths, every batch
/// backend is compared bit-for-bit against the wide-integer oracle
/// (verify/Oracle.h), grouped into named *properties* so a report can
/// say exactly which algorithm diverged and on which inputs.
///
/// verifyWidth(N) checks one width exhaustively over all 2^N * (2^N - 1)
/// (n, d) pairs — practical for N in [4, 12], where the theorems'
/// corner cases (d near 2^(N-1), m >= 2^N, the INT_MIN row) all occur
/// within milliseconds of search space. The same per-divisor checkers
/// back the boundary-biased fuzzer (verify/Fuzzer.h) at N = 16/32/64.
///
/// Failures are recorded as standalone repro strings
///   gmdiv:v1:<property>:N=<bits>:d=<divisor>:n=<dividend>[:n2=<extra>]
///     [:f=<family>]
/// (signed properties print signed decimals; n2 carries the high word
/// for doubleword properties; f names the divider family for the
/// successor-family properties — "fastmod", "roundup", "narrow32" — and
/// is omitted for the paper's own "gm" algorithms). checkOne() replays
/// one repro against exactly that family, which is also how the fuzzer
/// minimizes failures.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_VERIFY_VERIFY_H
#define GMDIV_VERIFY_VERIFY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gmdiv {

namespace telemetry {
namespace json {
class Writer;
} // namespace json
} // namespace telemetry

namespace verify {

/// Checks/mismatch tally for one named property ("unsigned-divider",
/// "codegen-floor", ...). The full property list is fixed; properties
/// that cannot run at a width (e.g. batch backends at non-native N)
/// simply report zero checks.
struct PropertyCount {
  std::string Name;
  uint64_t Checks = 0;
  uint64_t Mismatches = 0;
};

/// Outcome of one verification sweep (exhaustive or fuzz).
struct VerifyReport {
  int WordBits = 0;
  std::vector<PropertyCount> Properties;
  /// Standalone repro strings, deduplicated, capped (see FailureCap).
  std::vector<std::string> Failures;

  uint64_t checks() const;
  uint64_t mismatches() const;
  bool clean() const { return mismatches() == 0; }

  /// Mismatch count for one property (0 when absent).
  uint64_t mismatches(const std::string &Property) const;

  /// Merges another report's tallies into this one (same width layout).
  void merge(const VerifyReport &Other);
};

/// Most failures kept per report; later ones only bump the counters.
inline constexpr size_t FailureCap = 32;

/// Exhaustively verifies every property at \p WordBits (4 <= N <= 12)
/// over all divisors and all dividends.
VerifyReport verifyWidth(int WordBits);

/// Checks one divisor over the given dividend bit patterns: all scalar
/// dividers and generated sequences per dividend, the per-divisor
/// CHOOSE_MULTIPLIER / doubleword checks once, \p DwordPairs as extra
/// (high, low) doubleword dividends (pairs with high >= d are skipped),
/// and — at native widths — every batch backend over \p Ns. This is the
/// fuzzer's entry point into the shared checker.
VerifyReport
checkDivisor(int WordBits, uint64_t DBits, const std::vector<uint64_t> &Ns,
             const std::vector<std::pair<uint64_t, uint64_t>> &DwordPairs);

/// One report as a JSON object (word_bits, totals, per-property counts,
/// failure repro strings).
std::string reportJson(const VerifyReport &Report);

/// Same, written into an existing JSON writer (for embedding in a
/// larger document, e.g. the fuzzer's per-width array).
void reportJsonInto(telemetry::json::Writer &W, const VerifyReport &Report);

/// A parsed repro string.
struct Repro {
  std::string Property;
  int WordBits = 0;
  uint64_t DBits = 0;  ///< Divisor bit pattern (low WordBits bits).
  uint64_t NBits = 0;  ///< Dividend bit pattern.
  uint64_t N2Bits = 0; ///< Extra operand (doubleword high part).
  bool HasN2 = false;
  /// Divider family tag ("gm", "fastmod", "roundup", "narrow32").
  /// Empty means unspecified; when set it must match the property's
  /// registered family or checkOne() rejects the repro.
  std::string Family;
};

/// Formats \p R as a gmdiv:v1 repro string (signed properties print
/// sign-extended decimals).
std::string reproString(const Repro &R);

/// Parses a gmdiv:v1 repro string; returns false on malformed input.
bool parseRepro(const std::string &Text, Repro &Out);

/// Re-runs the checks behind one repro. Returns true when the named
/// property now passes on those inputs; \p DetailOut (optional) receives
/// a human-readable account either way. Replays never emit
/// verify.mismatch remarks (so minimization does not multiply the one
/// remark a discovered failure produced).
bool checkOne(const Repro &R, std::string *DetailOut = nullptr);

/// Test hook: every \p Period-th comparison reports a deliberately
/// corrupted value, so the harness's own failure path (repro strings,
/// telemetry remarks, exit codes) can be exercised. 0 disables.
void setInjectedMismatchPeriod(uint64_t Period);

} // namespace verify
} // namespace gmdiv

#endif // GMDIV_VERIFY_VERIFY_H
