//===- verify/Fuzzer.cpp - Boundary-biased differential fuzzer ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "verify/Fuzzer.h"

#include "metrics/Metrics.h"
#include "telemetry/Json.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace gmdiv;
using namespace gmdiv::verify;

namespace json = gmdiv::telemetry::json;

namespace {

uint64_t maskFor(int WordBits) {
  return WordBits == 64 ? ~uint64_t{0} : (uint64_t{1} << WordBits) - 1;
}

/// SplitMix64: tiny, deterministic, full-period — the campaign replays
/// exactly from (Seed, Widths).
struct SplitMix64 {
  uint64_t State;
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }
};

/// Divisors biased towards the paper's structure: tiny d, 2^k and its
/// neighbors (the pre-shift / pow2 special cases), 2^(N-1) (the largest
/// signed magnitude), all-ones (signed -1), INT_MAX, random odd.
uint64_t pickDivisor(SplitMix64 &Rng, int WordBits) {
  const uint64_t Mask = maskFor(WordBits);
  uint64_t D;
  switch (Rng.next() % 8) {
  case 0:
    D = 1 + Rng.next() % 16;
    break;
  case 1: {
    const int K = static_cast<int>(Rng.next() % WordBits);
    D = (uint64_t{1} << K) + (Rng.next() % 3) - 1;
    break;
  }
  case 2:
    D = Mask; // Signed -1.
    break;
  case 3:
    D = uint64_t{1} << (WordBits - 1); // Signed INT_MIN; unsigned 2^(N-1).
    break;
  case 4:
    D = (uint64_t{1} << (WordBits - 1)) - 1; // Signed INT_MAX.
    break;
  case 5:
    D = Rng.next() | 1; // Random odd (exercises §9 inverses).
    break;
  case 6:
    D = Mask - Rng.next() % 16; // Small negative magnitudes.
    break;
  default:
    D = Rng.next();
    break;
  }
  D &= Mask;
  return D == 0 ? 3 : D;
}

/// Dividends biased at the theorems' case boundaries: 2^k +/- 1 (where
/// the quotient estimate is tightest), multiples of d and of d-1 off by
/// one, INT_MIN and its neighborhood, all-ones, tiny values, and sparse
/// random patterns.
uint64_t pickDividend(SplitMix64 &Rng, int WordBits, uint64_t DBits) {
  const uint64_t Mask = maskFor(WordBits);
  switch (Rng.next() % 8) {
  case 0: {
    const int K = static_cast<int>(Rng.next() % WordBits);
    return ((uint64_t{1} << K) + (Rng.next() % 3) - 1) & Mask;
  }
  case 1: { // k*d +/- 1: straddles every quotient step.
    const uint64_t MaxQ = Mask / DBits; // MaxQ + 1 wraps to 0 when d = 1.
    const uint64_t Quotient =
        MaxQ == ~uint64_t{0} ? Rng.next() : Rng.next() % (MaxQ + 1);
    return (Quotient * DBits + (Rng.next() % 3) - 1) & Mask;
  }
  case 2: { // k*(d-1) +/- 1.
    const uint64_t Step = DBits > 1 ? DBits - 1 : 1;
    const uint64_t MaxQ = Mask / Step;
    const uint64_t Quotient =
        MaxQ == ~uint64_t{0} ? Rng.next() : Rng.next() % (MaxQ + 1);
    return (Quotient * Step + (Rng.next() % 3) - 1) & Mask;
  }
  case 3: // INT_MIN neighborhood.
    return ((uint64_t{1} << (WordBits - 1)) + (Rng.next() % 5) - 2) & Mask;
  case 4: // All-ones neighborhood (unsigned max, signed -1).
    return (Mask - Rng.next() % 3) & Mask;
  case 5:
    return Rng.next() % 17;
  case 6:
    return (Rng.next() & Rng.next()) & Mask; // Sparse bits.
  default:
    return Rng.next() & Mask;
  }
}

} // namespace

uint64_t FuzzReport::checks() const {
  uint64_t Total = 0;
  for (const VerifyReport &R : PerWidth)
    Total += R.checks();
  return Total;
}

uint64_t FuzzReport::mismatches() const {
  uint64_t Total = 0;
  for (const VerifyReport &R : PerWidth)
    Total += R.mismatches();
  return Total;
}

FuzzReport verify::runFuzzer(const FuzzOptions &Options) {
  GMDIV_TRACE_SPAN("verify", "fuzzCampaign", Options.Seed);
  FuzzReport Report;
  Report.Seed = Options.Seed;
  Report.RequestedSeconds = Options.Seconds;
  Report.PerWidth.reserve(Options.Widths.size());
  for (const int W : Options.Widths) {
    assert(((W >= 4 && W <= 12) || W == 16 || W == 32 || W == 64) &&
           "unsupported fuzz width");
    VerifyReport Empty;
    Empty.WordBits = W;
    Report.PerWidth.push_back(Empty);
  }

  SplitMix64 Rng(Options.Seed ^ 0x6a09e667f3bcc909ull);
  const auto Start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  std::vector<uint64_t> Ns;
  std::vector<std::pair<uint64_t, uint64_t>> DwordPairs;
  constexpr size_t DividendsPerRound = 48;
  constexpr size_t DwordPairsPerRound = 4;

  while (Options.MaxRounds != 0 ? Report.Rounds < Options.MaxRounds
                                : elapsed() < Options.Seconds) {
    GMDIV_TRACE_SPAN("verify", "fuzzRound", Report.Rounds);
    for (size_t WidthIndex = 0; WidthIndex < Options.Widths.size();
         ++WidthIndex) {
      const int W = Options.Widths[WidthIndex];
      const uint64_t DBits = pickDivisor(Rng, W);
      Ns.clear();
      for (size_t I = 0; I < DividendsPerRound; ++I)
        Ns.push_back(pickDividend(Rng, W, DBits));
      DwordPairs.clear();
      for (size_t I = 0; I < DwordPairsPerRound; ++I)
        DwordPairs.emplace_back(Rng.next() % DBits,
                                pickDividend(Rng, W, DBits));
      Report.PerWidth[WidthIndex].merge(checkDivisor(W, DBits, Ns,
                                                     DwordPairs));
    }
    ++Report.Rounds;
    static metrics::Counter &RoundsMetric =
        metrics::Registry::global().counter("gmdiv_verify_fuzz_rounds_total",
                                            "Fuzz campaign rounds completed");
    RoundsMetric.inc();
  }
  Report.ElapsedSeconds = elapsed();

  // Minimize every recorded failure (replays are remark-silent, so this
  // cannot inflate the one-remark-per-failure accounting).
  for (const VerifyReport &PerWidth : Report.PerWidth) {
    for (const std::string &Text : PerWidth.Failures) {
      Repro R;
      if (!parseRepro(Text, R))
        continue;
      const std::string Minimized = minimizeRepro(R);
      if (Report.Failures.size() >= FailureCap)
        break;
      if (std::find(Report.Failures.begin(), Report.Failures.end(),
                    Minimized) == Report.Failures.end())
        Report.Failures.push_back(Minimized);
    }
  }
  return Report;
}

std::string verify::minimizeRepro(const Repro &Original) {
  Repro R = Original;
  const uint64_t Mask = maskFor(R.WordBits);
  R.DBits &= Mask;
  R.NBits &= Mask;
  R.N2Bits &= Mask;
  if (checkOne(R))
    return reproString(Original); // Not failing (flaky or fixed): keep as-is.

  const auto stillFails = [](const Repro &Candidate) {
    return !checkOne(Candidate);
  };
  // Greedy descent, bounded: each accepted step strictly shrinks one
  // field, so the loop terminates; the cap guards against pathological
  // replay costs.
  int Budget = 512;
  bool Progress = true;
  while (Progress && Budget > 0) {
    Progress = false;
    const auto tryField = [&](uint64_t Repro::*Field, uint64_t Value,
                              bool Valid) {
      if (!Valid || Progress || Budget <= 0 || R.*Field == Value)
        return;
      Repro Candidate = R;
      Candidate.*Field = Value;
      --Budget;
      if (stillFails(Candidate)) {
        R = Candidate;
        Progress = true;
      }
    };
    // Shrink the dividend: halve, decrement, drop the top set bit.
    tryField(&Repro::NBits, R.NBits / 2, true);
    tryField(&Repro::NBits, R.NBits - 1, R.NBits != 0);
    for (int Bit = 63; Bit >= 0 && !Progress; --Bit)
      if ((R.NBits >> Bit) & 1)
        tryField(&Repro::NBits, R.NBits & ~(uint64_t{1} << Bit), true);
    // Shrink the doubleword high part (must stay below d).
    if (R.HasN2) {
      tryField(&Repro::N2Bits, R.N2Bits / 2, true);
      tryField(&Repro::N2Bits, R.N2Bits - 1, R.N2Bits != 0);
    }
    // Shrink the divisor (nonzero; must stay above the high part).
    const uint64_t FloorD = R.HasN2 ? R.N2Bits + 1 : 1;
    tryField(&Repro::DBits, R.DBits / 2, R.DBits / 2 >= FloorD);
    tryField(&Repro::DBits, R.DBits - 1, R.DBits - 1 >= FloorD);
  }
  return reproString(R);
}

bool verify::replayRepro(const std::string &Text, std::string *DetailOut) {
  Repro R;
  if (!parseRepro(Text, R)) {
    if (DetailOut)
      *DetailOut = "malformed repro string: " + Text;
    return false;
  }
  return checkOne(R, DetailOut);
}

void verify::fuzzJsonInto(telemetry::json::Writer &Wr,
                          const FuzzReport &Report) {
  Wr.beginObject()
      .key("seed")
      .value(Report.Seed)
      .key("requested_seconds")
      .value(Report.RequestedSeconds)
      .key("elapsed_seconds")
      .value(Report.ElapsedSeconds)
      .key("rounds")
      .value(Report.Rounds)
      .key("checks")
      .value(Report.checks())
      .key("mismatches")
      .value(Report.mismatches())
      .key("clean")
      .value(Report.clean())
      .key("widths")
      .beginArray();
  for (const VerifyReport &PerWidth : Report.PerWidth)
    reportJsonInto(Wr, PerWidth);
  Wr.endArray().key("failures").beginArray();
  for (const std::string &F : Report.Failures)
    Wr.value(F);
  Wr.endArray().endObject();
}

std::string verify::fuzzJson(const FuzzReport &Report) {
  json::Writer Wr;
  fuzzJsonInto(Wr, Report);
  return Wr.str();
}
