//===- verify/Fuzzer.h - Boundary-biased differential fuzzer ----*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing for the widths the exhaustive driver cannot
/// cover (N = 16/32/64): a deterministic seeded PRNG picks divisors and
/// dividends biased towards the paper's boundary structure — powers of
/// two and their neighbors, multiples of d and d-1 off by one, INT_MIN,
/// d = 2^(N-1), all-ones — and every divider, generated sequence and
/// batch backend is cross-checked against the oracle and the hardware
/// divide through the same per-divisor checker the exhaustive pass uses.
///
/// Failures come back as minimized standalone repro strings (the
/// fuzzer greedily shrinks n, the doubleword high part and d while the
/// named property keeps failing); replayRepro() re-runs one, which is
/// what `gmdiv_tool verify --replay` and tests/fuzz_main.cpp call.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_VERIFY_FUZZER_H
#define GMDIV_VERIFY_FUZZER_H

#include "verify/Verify.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gmdiv {
namespace verify {

/// Fuzzing campaign parameters. Identical (Seed, Widths) settings
/// reproduce the identical input sequence; Seconds only decides where
/// the sequence stops.
struct FuzzOptions {
  double Seconds = 5.0;
  uint64_t Seed = 1;
  std::vector<int> Widths = {16, 32, 64};
  /// When nonzero, stop after this many rounds even if time remains
  /// (tests use it for determinism).
  uint64_t MaxRounds = 0;
};

/// Campaign outcome: one merged VerifyReport per width plus the
/// minimized failure repro strings.
struct FuzzReport {
  uint64_t Seed = 0;
  double RequestedSeconds = 0;
  double ElapsedSeconds = 0;
  uint64_t Rounds = 0;
  std::vector<VerifyReport> PerWidth;
  std::vector<std::string> Failures;

  uint64_t checks() const;
  uint64_t mismatches() const;
  bool clean() const { return mismatches() == 0; }
};

/// Runs a fuzzing campaign. Deterministic given (Seed, Widths,
/// MaxRounds); time-budgeted otherwise.
FuzzReport runFuzzer(const FuzzOptions &Options);

/// The campaign as one JSON object (seed, rounds, per-width property
/// tallies, minimized failures).
std::string fuzzJson(const FuzzReport &Report);

/// Same, written into an existing JSON writer (for embedding in a
/// larger document, e.g. `gmdiv_tool verify`'s combined summary).
void fuzzJsonInto(telemetry::json::Writer &W, const FuzzReport &Report);

/// Parses and re-runs one repro string. Returns true when the named
/// property passes on those inputs; \p DetailOut (optional) receives a
/// human-readable account.
bool replayRepro(const std::string &Text, std::string *DetailOut = nullptr);

/// Greedy minimization: shrinks n (and n2, and then d) towards zero
/// while checkOne() keeps failing. Returns the repro of the smallest
/// still-failing input (or of \p R itself if it no longer fails).
std::string minimizeRepro(const Repro &R);

} // namespace verify
} // namespace gmdiv

#endif // GMDIV_VERIFY_FUZZER_H
