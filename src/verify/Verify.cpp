//===- verify/Verify.cpp - Differential verification driver ---------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Layout: a fixed table of named properties, a Reporter that tallies
// comparisons (and turns mismatches into repro strings, statistics and
// telemetry remarks), and one DivisorChecker<UWord> template that owns
// every divider and generated program for a single (width, d) and runs
// all per-dividend comparisons. verifyWidth / checkOne / the fuzzer all
// drive the same checker, so an exhaustive pass, a fuzz round and a
// repro replay cannot drift apart.
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include "batch/BatchDivider.h"
#include "codegen/DivCodeGen.h"
#include "core/AlversonDivider.h"
#include "core/ChooseMultiplier.h"
#include "core/DWordDivider.h"
#include "core/Divider.h"
#include "core/ExactDiv.h"
#include "core/FastModDivider.h"
#include "core/FloatDiv.h"
#include "core/NarrowDivider.h"
#include "core/RoundUpDivider.h"
#include "core/MultiPrecision.h"
#include "core/RemModSemantics.h"
#include "ir/Interp.h"
#include "jit/JitBatchDivider.h"
#include "jit/JitDivider.h"
#include "metrics/Metrics.h"
#include "ops/SmallWord.h"
#include "telemetry/Json.h"
#include "telemetry/Remarks.h"
#include "telemetry/Stats.h"
#include "trace/Trace.h"
#include "verify/Oracle.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <type_traits>

using namespace gmdiv;
using namespace gmdiv::verify;

namespace json = gmdiv::telemetry::json;

//===----------------------------------------------------------------------===//
// Property table
//===----------------------------------------------------------------------===//

namespace {

struct PropertyInfo {
  const char *Name;
  bool IsSigned; ///< Repro strings print signed decimals.
  bool HasN2;    ///< Uses the n2 operand (doubleword high part).
  /// Divider family the property exercises. "gm" (the paper's own
  /// algorithms) is the default and is omitted from repro strings; the
  /// successor families tag their repros with ":f=<family>" so a replay
  /// targets the exact implementation that produced the mismatch.
  const char *Family = "gm";
};

enum Property : int {
  PChooseU,
  POracleU,
  PUDiv,
  PAlverson,
  PExactU,
  PFloatU,
  PDWord,
  PCodegenU,
  PCodegenAlverson,
  PCodegenExactU,
  PCodegenDivisU,
  PCodegenRemTestU,
  PCodegenDWord,
  PCodegenWideU,
  PBatchU,
  PJitU,
  PFastModU,
  PFastModDivis,
  PRoundUpU,
  PRoundUpBounds,
  PNarrowU,
  PChooseS,
  POracleS,
  PSDiv,
  PFloorDiv,
  PGeneralFloor,
  PCeilDiv,
  PConvention,
  PExactS,
  PFloatS,
  PCodegenS,
  PCodegenFloor,
  PCodegenExactS,
  PCodegenDivisS,
  PCodegenRemTestS,
  PCodegenFloorRt,
  PCodegenWideS,
  PBatchS,
  PJitS,
  PJitFloor,
  PFastModS,
  PNarrowS,
  PJitBatchU,
  PJitBatchS,
  PJitBatchDivis,
  PropertyEnd,
};

constexpr PropertyInfo PropertyTable[PropertyEnd] = {
    {"choose-multiplier-unsigned", false, false},
    {"oracle-unsigned", false, false},
    {"unsigned-divider", false, false},
    {"alverson-divider", false, false},
    {"exact-unsigned", false, false},
    {"float-unsigned", false, false},
    {"dword-divider", false, true},
    {"codegen-unsigned", false, false},
    {"codegen-alverson", false, false},
    {"codegen-exact-unsigned", false, false},
    {"codegen-divisibility-unsigned", false, false},
    {"codegen-remtest-unsigned", false, false},
    {"codegen-dword", false, true},
    {"codegen-wide-unsigned", false, false},
    {"batch-unsigned", false, false},
    {"jit-unsigned", false, false},
    {"fastmod-unsigned", false, false, "fastmod"},
    {"fastmod-divisible", false, false, "fastmod"},
    {"roundup-unsigned", false, false, "roundup"},
    {"roundup-bounds", false, false, "roundup"},
    {"narrow32-unsigned", false, false, "narrow32"},
    {"choose-multiplier-signed", true, false},
    {"oracle-signed", true, false},
    {"signed-divider", true, false},
    {"floor-divider", true, false},
    {"general-floor-divider", true, false},
    {"ceil-divider", true, false},
    {"convention-divider", true, false},
    {"exact-signed", true, false},
    {"float-signed", true, false},
    {"codegen-signed", true, false},
    {"codegen-floor", true, false},
    {"codegen-exact-signed", true, false},
    {"codegen-divisibility-signed", true, false},
    {"codegen-remtest-signed", true, false},
    {"codegen-floor-runtime", true, false},
    {"codegen-wide-signed", true, false},
    {"batch-signed", true, false},
    {"jit-signed", true, false},
    {"jit-floor", true, false},
    {"fastmod-signed", true, false, "fastmod"},
    {"narrow32-signed", true, false, "narrow32"},
    // Runtime-emitted vector batch loops (jit::JitBatchDivider's
    // kernels), appended so existing repro strings keep their indices.
    {"jit-batch-unsigned", false, false},
    {"jit-batch-signed", true, false},
    {"jit-batch-divisible", false, false},
};

int propertyIndex(const std::string &Name) {
  for (int I = 0; I < PropertyEnd; ++I)
    if (Name == PropertyTable[I].Name)
      return I;
  return -1;
}

uint64_t maskFor(int WordBits) {
  return WordBits == 64 ? ~uint64_t{0} : (uint64_t{1} << WordBits) - 1;
}

int64_t signExtend64(uint64_t Value, int WordBits) {
  const uint64_t SignBit = uint64_t{1} << (WordBits - 1);
  return static_cast<int64_t>(((Value & maskFor(WordBits)) ^ SignBit) -
                              SignBit);
}

std::string decString(uint64_t Bits, int WordBits, bool IsSigned) {
  if (IsSigned)
    return std::to_string(signExtend64(Bits, WordBits));
  return std::to_string(Bits & maskFor(WordBits));
}

//===----------------------------------------------------------------------===//
// Injection hook (harness self-test)
//===----------------------------------------------------------------------===//

std::atomic<uint64_t> InjectedPeriod{0};
std::atomic<uint64_t> InjectionCounter{0};

/// Remark suppression for replays (checkOne): a failure found by a
/// sweep emits exactly one remark; re-running it for minimization or
/// diagnosis must not emit more.
std::atomic<int> RemarkSuppression{0};

struct ScopedRemarkSuppression {
  ScopedRemarkSuppression() {
    RemarkSuppression.fetch_add(1, std::memory_order_relaxed);
  }
  ~ScopedRemarkSuppression() {
    RemarkSuppression.fetch_sub(1, std::memory_order_relaxed);
  }
};

//===----------------------------------------------------------------------===//
// Reporter
//===----------------------------------------------------------------------===//

/// Tallies comparisons per property; a mismatch becomes (at most once per
/// distinct input tuple) a repro string, a verify.mismatch remark and a
/// statistics bump.
class Reporter {
public:
  explicit Reporter(int WordBits) : W(WordBits) {}

  bool check(Property P, uint64_t Expected, uint64_t Actual, uint64_t DBits,
             uint64_t NBits) {
    return checkImpl(P, Expected, Actual, DBits, NBits, 0, false);
  }
  bool check2(Property P, uint64_t Expected, uint64_t Actual, uint64_t DBits,
              uint64_t NBits, uint64_t N2Bits) {
    return checkImpl(P, Expected, Actual, DBits, NBits, N2Bits, true);
  }

  /// Builds the report and flushes the bulk checks counter into the
  /// telemetry statistics registry.
  VerifyReport take() {
    VerifyReport Report;
    Report.WordBits = W;
    Report.Properties.reserve(PropertyEnd);
    uint64_t Total = 0;
    for (int I = 0; I < PropertyEnd; ++I) {
      Report.Properties.push_back(Counts[I]);
      Report.Properties.back().Name = PropertyTable[I].Name;
      Total += Counts[I].Checks;
    }
    Report.Failures = std::move(Failures);
    Failures.clear();
    // Mirrored natively into the metrics plane under the same family
    // name the Stats bridge would synthesize, so the exposition keeps
    // counting under GMDIV_NO_TELEMETRY (the native sample shadows the
    // bridged one; both read the same flush, so they cannot disagree).
    GMDIV_STAT_ADD(verify, checks, Total - Flushed);
    static metrics::Counter &ChecksMetric = metrics::Registry::global().counter(
        "gmdiv_verify_checks_total", "Differential properties checked");
    ChecksMetric.add(Total - Flushed);
    Flushed = Total;
    return Report;
  }

private:
  bool checkImpl(Property P, uint64_t Expected, uint64_t Actual,
                 uint64_t DBits, uint64_t NBits, uint64_t N2Bits,
                 bool HasN2) {
    ++Counts[P].Checks;
    const uint64_t Period = InjectedPeriod.load(std::memory_order_relaxed);
    if (Period != 0 &&
        InjectionCounter.fetch_add(1, std::memory_order_relaxed) % Period ==
            Period - 1)
      Actual ^= 1;
    if (Expected == Actual)
      return true;
    ++Counts[P].Mismatches;
    GMDIV_STAT(verify, mismatches);
    static metrics::Counter &MismatchMetric =
        metrics::Registry::global().counter("gmdiv_verify_mismatches_total",
                                            "Differential mismatches found");
    MismatchMetric.inc();
    recordFailure(P, Expected, Actual, DBits, NBits, N2Bits, HasN2);
    return false;
  }

  void recordFailure(Property P, uint64_t Expected, uint64_t Actual,
                     uint64_t DBits, uint64_t NBits, uint64_t N2Bits,
                     bool HasN2) {
    Repro Rep;
    Rep.Property = PropertyTable[P].Name;
    Rep.WordBits = W;
    Rep.DBits = DBits;
    Rep.NBits = NBits;
    Rep.N2Bits = N2Bits;
    Rep.HasN2 = HasN2;
    Rep.Family = PropertyTable[P].Family;
    const std::string Text = reproString(Rep);
    if (std::find(Failures.begin(), Failures.end(), Text) != Failures.end())
      return; // Same input already recorded (a sibling comparison).
    if (Failures.size() >= FailureCap)
      return;
    Failures.push_back(Text);
    if (telemetry::remarksEnabled() &&
        RemarkSuppression.load(std::memory_order_relaxed) == 0) {
      telemetry::Remark R;
      R.Pass = "verify";
      R.Kind = "verify.mismatch";
      R.CaseName = PropertyTable[P].Name;
      R.WordBits = W;
      R.DivisorBits = DBits;
      R.IsSigned = PropertyTable[P].IsSigned;
      R.Details.emplace_back(
          "n", decString(NBits, W, PropertyTable[P].IsSigned));
      if (HasN2)
        R.Details.emplace_back("n2", decString(N2Bits, W, false));
      R.Details.emplace_back("expected", std::to_string(Expected));
      R.Details.emplace_back("actual", std::to_string(Actual));
      R.Details.emplace_back("repro", Text);
      telemetry::emitRemark(R);
    }
  }

  int W;
  PropertyCount Counts[PropertyEnd];
  std::vector<std::string> Failures;
  uint64_t Flushed = 0;
};

//===----------------------------------------------------------------------===//
// Width dispatch
//===----------------------------------------------------------------------===//

/// Runs \p Fn with the word type for \p WordBits: the native types at
/// 8/16/32/64, SmallUWord elsewhere in [4, 12].
template <typename F> void withUWord(int WordBits, F &&Fn) {
  switch (WordBits) {
  case 4:
    return Fn.template operator()<SmallUWord<4>>();
  case 5:
    return Fn.template operator()<SmallUWord<5>>();
  case 6:
    return Fn.template operator()<SmallUWord<6>>();
  case 7:
    return Fn.template operator()<SmallUWord<7>>();
  case 8:
    return Fn.template operator()<uint8_t>();
  case 9:
    return Fn.template operator()<SmallUWord<9>>();
  case 10:
    return Fn.template operator()<SmallUWord<10>>();
  case 11:
    return Fn.template operator()<SmallUWord<11>>();
  case 12:
    return Fn.template operator()<SmallUWord<12>>();
  case 16:
    return Fn.template operator()<uint16_t>();
  case 32:
    return Fn.template operator()<uint32_t>();
  case 64:
    return Fn.template operator()<uint64_t>();
  default:
    assert(false && "no word family for this verification width");
  }
}

bool widthSupported(int WordBits) {
  return (WordBits >= 4 && WordBits <= 12) || WordBits == 16 ||
         WordBits == 32 || WordBits == 64;
}

//===----------------------------------------------------------------------===//
// DivisorChecker
//===----------------------------------------------------------------------===//

/// Everything the harness knows how to check for one (width, divisor):
/// scalar dividers, generated sequences through the IR interpreter, and
/// (native widths) the batch backends — all against the Oracle.
template <typename UWordT> class DivisorChecker {
public:
  using UWord = UWordT;
  using Traits = WordTraits<UWord>;
  using SWord = typename Traits::SWord;
  using UDWord = typename Traits::UDWord;
  static constexpr int W = Traits::Bits;
  static constexpr bool Native = std::is_integral_v<UWord>;

  DivisorChecker(Reporter &R, uint64_t DivisorBits)
      : R(R), Mask(maskFor(W)), DBits(DivisorBits & Mask),
        DSigned(signExtend64(DBits, W)),
        AbsD(DSigned < 0 ? 0 - static_cast<uint64_t>(DSigned)
                         : static_cast<uint64_t>(DSigned)),
        DU(static_cast<UWord>(DBits)), DS(static_cast<SWord>(DSigned)),
        OU(W, DBits, /*IsSigned=*/false), OS(W, DBits, /*IsSigned=*/true),
        UDiv(DU), Alv(DU), ExactU(DU), DWord(DU), SDiv(DS), Floor(DS),
        GFloor(DS), Ceil(DS), ConvTrunc(DS, RemainderConvention::Truncated),
        ConvFloor(DS, RemainderConvention::Floored),
        ConvEuclid(DS, RemainderConvention::Euclidean), ExactS(DS),
        FMU(DU), FMS(DS), RUp(DU), Nar(DU), NarS(DS),
        PUDivRem(codegen::genUnsignedDivRem(W, DBits)),
        PAlv(codegen::genUnsignedDivAlverson(W, DBits)),
        ProgExactU(codegen::genExactUnsignedDiv(W, DBits)),
        PDivisU(codegen::genDivisibilityTestUnsigned(W, DBits)),
        PDword(codegen::genDWordDivRem(W, DBits)),
        PSDivRem(codegen::genSignedDivRem(W, DSigned)),
        ProgExactS(codegen::genExactSignedDiv(W, DSigned)),
        PDivisS(codegen::genDivisibilityTestSigned(W, DSigned)),
        PFloorRt(codegen::genFloorDivModRuntime(W)), Args1(1), Args2(2) {
    assert(DBits != 0 && "divisor must be nonzero");
    RemR0 = DBits >= 2 ? DBits / 2 : 0;
    PRemTest0.emplace(codegen::genRemainderTestUnsigned(W, DBits, RemR0));
    if (DBits >= 2) {
      RemR1 = DBits - 1;
      PRemTest1.emplace(codegen::genRemainderTestUnsigned(W, DBits, RemR1));
    }
    if (DSigned > 0)
      PFloorMod.emplace(codegen::genFloorDivMod(W, DSigned));
    if (DSigned >= 2 && (AbsD & (AbsD - 1)) != 0) {
      RemS1 = 1;
      RemS2 = DSigned - 1;
      PRemTestS1.emplace(codegen::genRemainderTestSigned(W, DSigned, RemS1));
      PRemTestS2.emplace(codegen::genRemainderTestSigned(W, DSigned, RemS2));
    }
    if constexpr (Native && W < 64) {
      PWideU.emplace(codegen::genUnsignedDivWide(W, 64, DBits));
      PWideS.emplace(codegen::genSignedDivWide(W, 64, DSigned));
    }
    if constexpr (Native && sizeof(UWord) <= 4) {
      FloatU.emplace(DU);
      FloatS.emplace(DS);
    }
    // JIT-executed sequences: the same generated programs, compiled to
    // native code through the full Peephole + Scheduler + emitter
    // pipeline. On hosts without the backend (or GMDIV_NO_JIT=1) the
    // handles stay null and the jit-* properties record zero checks —
    // the interpreter comparisons above still cover the sequences.
    if (jit::enabled()) {
      jit::CompileInfo Info;
      Info.DivisorBits = DBits;
      Info.HasDivisor = true;
      Info.CaseName = "verify-unsigned";
      JitU = jit::compile(jit::prepareForJit(PUDivRem), Info);
      Info.CaseName = "verify-signed";
      Info.IsSigned = true;
      JitS = jit::compile(jit::prepareForJit(PSDivRem), Info);
      if (PFloorMod) {
        Info.CaseName = "verify-floor";
        JitFloor = jit::compile(jit::prepareForJit(*PFloorMod), Info);
      }
    }
  }

  /// Per-divisor checks: CHOOSE_MULTIPLIER against Theorem 4.2 / §5, plus
  /// sampled doubleword divisions.
  void checkDivisorOnce() {
    // Unsigned: prec = N (Figure 4.2's call).
    const MultiplierInfo<UWord> InfoN = chooseMultiplier<UWord>(DU, W);
    uint64_t Lo = 0, Hi = 0;
    udHalves(InfoN.Multiplier, Lo, Hi);
    const MultiplierCheck CkN =
        checkMultiplier(W, W, DBits, Lo, Hi, InfoN.ShiftPost, InfoN.Log2Ceil);
    R.check(PChooseU, 1, CkN.ok() ? 1 : 0, DBits, 0);

    // prec = N-1: §5 guarantees m < 2^N for every d >= 2 (d = 1 yields
    // m = 2^N + 2, which the figure's callers never request).
    const MultiplierInfo<UWord> Info1 = chooseMultiplier<UWord>(DU, W - 1);
    udHalves(Info1.Multiplier, Lo, Hi);
    const MultiplierCheck Ck1 = checkMultiplier(W, W - 1, DBits, Lo, Hi,
                                                Info1.ShiftPost,
                                                Info1.Log2Ceil);
    R.check(PChooseU, 1, Ck1.ok() ? 1 : 0, DBits, 1);
    R.check(PChooseU, 1, (DBits == 1 || Ck1.FitsWord) ? 1 : 0, DBits, 2);

    // Signed: prec = N-1 over |d| (Figure 5.2's call).
    const MultiplierInfo<UWord> InfoS =
        chooseMultiplier<UWord>(static_cast<UWord>(AbsD), W - 1);
    udHalves(InfoS.Multiplier, Lo, Hi);
    const MultiplierCheck CkS = checkMultiplier(W, W - 1, AbsD, Lo, Hi,
                                                InfoS.ShiftPost,
                                                InfoS.Log2Ceil);
    R.check(PChooseS, 1, CkS.ok() ? 1 : 0, DBits, 0);
    R.check(PChooseS, 1, (AbsD == 1 || CkS.FitsWord) ? 1 : 0, DBits, 1);

    // Optimal Bounds certificate for the round-up family: the chosen
    // (mode, m, k) must satisfy the exact arXiv:2412.03680 predicate,
    // fit a word, and be k-minimal — no admissible multiplier of either
    // variant exists at any smaller shift (probe indices in the n slot,
    // mirroring the choose-multiplier checks above).
    {
      using Choice = RoundUpChoice<UWord>;
      const Choice &C = RUp.choice();
      const UDWord One = Traits::udFromWord(static_cast<UWord>(1));
      const auto AdmissibleAt = [&](int K, bool Inc) {
        const auto QR = Traits::udDivModPow2(K, Traits::udFromWord(DU));
        const UDWord M = Inc ? QR.first : static_cast<UDWord>(QR.first + One);
        return checkRoundUpMultiplier(DU, M, K, Inc);
      };
      switch (C.Mode) {
      case Choice::Kind::Shift:
        R.check(PRoundUpBounds, 1, isPowerOf2(DU) ? 1 : 0, DBits, 0);
        break;
      case Choice::Kind::RoundUp:
      case Choice::Kind::Increment: {
        const bool Inc = C.Mode == Choice::Kind::Increment;
        R.check(PRoundUpBounds, 1,
                checkRoundUpMultiplier(DU, C.Multiplier, C.TotalShift, Inc)
                    ? 1
                    : 0,
                DBits, 0);
        R.check(PRoundUpBounds, 1, C.MultiplierBits <= W ? 1 : 0, DBits, 1);
        bool SmallerWorks = false;
        for (int K = W; K < C.TotalShift && !SmallerWorks; ++K)
          SmallerWorks = AdmissibleAt(K, false) || AdmissibleAt(K, true);
        R.check(PRoundUpBounds, 0, SmallerWorks ? 1 : 0, DBits, 2);
        if (Inc) // round-up is preferred at equal k, so it must not fit
          R.check(PRoundUpBounds, 0,
                  AdmissibleAt(C.TotalShift, false) ? 1 : 0, DBits, 3);
        break;
      }
      case Choice::Kind::Fixup: {
        // GM fallback is only legitimate when no k in [N, 2N-1] admits a
        // word-sized multiplier of either variant.
        bool AnyWorks = false;
        for (int K = W; K <= 2 * W - 1 && !AnyWorks; ++K)
          AnyWorks = AdmissibleAt(K, false) || AdmissibleAt(K, true);
        R.check(PRoundUpBounds, 0, AnyWorks ? 1 : 0, DBits, 0);
        break;
      }
      }
    }

    // §8 doubleword division, sampled over boundary high/low halves.
    const uint64_t HighProbe[] = {0, 1, DBits / 2, DBits - 1};
    const uint64_t LowProbe[] = {0,
                                 1,
                                 2,
                                 Mask,
                                 Mask - 1,
                                 (Mask >> 1) + 1,
                                 0x5555555555555555ull & Mask,
                                 (DBits - 1) & Mask};
    uint64_t Done[4];
    int DoneCount = 0;
    for (uint64_t High : HighProbe) {
      if (High >= DBits)
        continue;
      bool Seen = false;
      for (int I = 0; I < DoneCount; ++I)
        Seen |= Done[I] == High;
      if (Seen)
        continue;
      Done[DoneCount++] = High;
      for (uint64_t Low : LowProbe)
        checkDwordPair(High, Low);
    }
  }

  /// Doubleword (High:Low) / d against 128-bit-exact reference values.
  /// Requires High < d (the §8 precondition).
  void checkDwordPair(uint64_t HighBits, uint64_t LowBits) {
    HighBits &= Mask;
    LowBits &= Mask;
    assert(HighBits < DBits && "dword dividend high part must be < d");
    uint64_t RefQ = 0, RefR = 0;
    if (W <= 32) {
      const uint64_t Value = (HighBits << W) | LowBits;
      RefQ = Value / DBits;
      RefR = Value % DBits;
    } else {
      // Up to 128-bit dividend: divide limb-wise through the (already
      // hardware-cross-checked) multi-precision kernel.
      std::vector<uint64_t> Limbs = {LowBits, HighBits};
      const DWordDivider<uint64_t> ByD(DBits);
      RefR = multiprecision::divModInPlace(Limbs, ByD);
      assert(Limbs.size() < 2 || Limbs[1] == 0);
      RefQ = Limbs[0];
    }

    const UDWord N0 = makeUDWord(HighBits, LowBits);
    const auto [Q, Rm] = DWord.divRem(N0);
    R.check2(PDWord, RefQ, ubits(Q), DBits, LowBits, HighBits);
    R.check2(PDWord, RefR, ubits(Rm), DBits, LowBits, HighBits);

    Args2[0] = HighBits;
    Args2[1] = LowBits;
    ir::runScratch(PDword, Args2, Scratch, Results);
    R.check2(PCodegenDWord, RefQ, Results[0], DBits, LowBits, HighBits);
    R.check2(PCodegenDWord, RefR, Results[1], DBits, LowBits, HighBits);
  }

  /// Every per-dividend property for dividend bit pattern \p NBits.
  void checkN(uint64_t NBits) {
    NBits &= Mask;
    const DivRef RU = OU.ref(NBits);
    const DivRef RS = OS.ref(NBits);
    const UWord NU = static_cast<UWord>(NBits);
    const int64_t NSigned = signExtend64(NBits, W);
    const SWord NS = static_cast<SWord>(NSigned);

    // Oracle vs. hardware: the oracle's derived quotients must agree
    // with plain 64-bit machine division (the third independent path).
    R.check(POracleU, (NBits / DBits) & Mask, RU.TruncQ, DBits, NBits);
    R.check(POracleU, (NBits % DBits) & Mask, RU.TruncR, DBits, NBits);
    if (!RS.Overflow) {
      R.check(POracleS, static_cast<uint64_t>(NSigned / DSigned) & Mask,
              RS.TruncQ, DBits, NBits);
      R.check(POracleS, static_cast<uint64_t>(NSigned % DSigned) & Mask,
              RS.TruncR, DBits, NBits);
    } else {
      // INT_MIN / -1: the documented policy is wrap-to-INT_MIN, r = 0.
      R.check(POracleS, (uint64_t{1} << (W - 1)) & Mask, RS.TruncQ, DBits,
              NBits);
      R.check(POracleS, 0, RS.TruncR, DBits, NBits);
    }

    // Figure 4.1/4.2 scalar divider.
    R.check(PUDiv, RU.TruncQ, ubits(UDiv.divide(NU)), DBits, NBits);
    R.check(PUDiv, RU.TruncR, ubits(UDiv.remainder(NU)), DBits, NBits);
    {
      const auto [Q, Rm] = UDiv.divRem(NU);
      R.check(PUDiv, RU.TruncQ, ubits(Q), DBits, NBits);
      R.check(PUDiv, RU.TruncR, ubits(Rm), DBits, NBits);
    }
    R.check(PUDiv, RU.CeilQ, ubits(UDiv.divideCeil(NU)), DBits, NBits);

    // Alverson baseline.
    R.check(PAlverson, RU.TruncQ, ubits(Alv.divide(NU)), DBits, NBits);
    R.check(PAlverson, RU.TruncR, ubits(Alv.remainder(NU)), DBits, NBits);

    // Successor families (docs/FAMILIES.md). LKK fastmod: quotient,
    // direct remainder, and the one-multiply divisibility test.
    R.check(PFastModU, RU.TruncQ, ubits(FMU.divide(NU)), DBits, NBits);
    R.check(PFastModU, RU.TruncR, ubits(FMU.remainder(NU)), DBits, NBits);
    {
      const auto [Q, Rm] = FMU.divRem(NU);
      R.check(PFastModU, RU.TruncQ, ubits(Q), DBits, NBits);
      R.check(PFastModU, RU.TruncR, ubits(Rm), DBits, NBits);
    }
    R.check(PFastModDivis, RU.Divisible ? 1 : 0, FMU.isDivisible(NU) ? 1 : 0,
            DBits, NBits);

    // Round-up / optimal-bounds variant (fixup-free where a word-sized
    // multiplier exists; GM fallback otherwise — both paths must agree).
    R.check(PRoundUpU, RU.TruncQ, ubits(RUp.divide(NU)), DBits, NBits);
    R.check(PRoundUpU, RU.TruncR, ubits(RUp.remainder(NU)), DBits, NBits);

    // Narrow (Mitsunari–Hoshino 32-on-64 style) form: one doubleword
    // multiply, no shift, no fixup.
    R.check(PNarrowU, RU.TruncQ, ubits(Nar.divide(NU)), DBits, NBits);
    R.check(PNarrowU, RU.TruncR, ubits(Nar.remainder(NU)), DBits, NBits);

    // §9 exact division and remainder filters.
    R.check(PExactU, RU.Divisible ? 1 : 0, ExactU.isDivisible(NU) ? 1 : 0,
            DBits, NBits);
    if (RU.Divisible)
      R.check(PExactU, RU.TruncQ, ubits(ExactU.divideExact(NU)), DBits,
              NBits);
    if (DBits >= 2) {
      R.check(PExactU, 1,
              ExactU.remainderIs(NU, static_cast<UWord>(RU.TruncR)) ? 1 : 0,
              DBits, NBits);
      const uint64_t Wrong = (RU.TruncR + 1) % DBits;
      R.check(PExactU, 0,
              ExactU.remainderIs(NU, static_cast<UWord>(Wrong)) ? 1 : 0,
              DBits, NBits);
    }

    // §7 float division (double mantissa covers N <= 32 only).
    if constexpr (Native && sizeof(UWord) <= 4) {
      R.check(PFloatU, RU.TruncQ, ubits(FloatU->divide(NU)), DBits, NBits);
      R.check(PFloatU, RU.TruncQ, ubits(FloatU->divideViaReciprocal(NU)),
              DBits, NBits);
      if (!RS.Overflow) {
        R.check(PFloatS, RS.TruncQ, sbits(FloatS->divide(NS)), DBits, NBits);
        R.check(PFloatS, RS.TruncQ, sbits(FloatS->divideViaReciprocal(NS)),
                DBits, NBits);
      }
    }

    // Generated unsigned sequences, through the IR interpreter.
    Args1[0] = NBits;
    ir::runScratch(PUDivRem, Args1, Scratch, Results);
    R.check(PCodegenU, RU.TruncQ, Results[0], DBits, NBits);
    R.check(PCodegenU, RU.TruncR, Results[1], DBits, NBits);
    ir::runScratch(PAlv, Args1, Scratch, Results);
    R.check(PCodegenAlverson, RU.TruncQ, Results[0], DBits, NBits);
    if (RU.Divisible) {
      ir::runScratch(ProgExactU, Args1, Scratch, Results);
      R.check(PCodegenExactU, RU.TruncQ, Results[0], DBits, NBits);
    }
    ir::runScratch(PDivisU, Args1, Scratch, Results);
    R.check(PCodegenDivisU, RU.Divisible ? 1 : 0, Results[0], DBits, NBits);
    if (PRemTest0) {
      ir::runScratch(*PRemTest0, Args1, Scratch, Results);
      R.check(PCodegenRemTestU, NBits % DBits == RemR0 ? 1 : 0, Results[0],
              DBits, NBits);
    }
    if (PRemTest1) {
      ir::runScratch(*PRemTest1, Args1, Scratch, Results);
      R.check(PCodegenRemTestU, NBits % DBits == RemR1 ? 1 : 0, Results[0],
              DBits, NBits);
    }
    if (PWideU) {
      ir::runScratch(*PWideU, Args1, Scratch, Results);
      R.check(PCodegenWideU, NBits / DBits, Results[0], DBits, NBits);
    }

    // The same unsigned divRem sequence, JIT-executed: native code must
    // agree with the Oracle (and hence with the interpreter runs above).
    if (JitU) {
      JitU->callAll(NBits, 0, Results);
      R.check(PJitU, RU.TruncQ, Results[0], DBits, NBits);
      R.check(PJitU, RU.TruncR, Results[1], DBits, NBits);
    }

    // Figure 5.1/5.2 scalar divider (trunc), with the overflow check.
    R.check(PSDiv, RS.TruncQ, sbits(SDiv.divide(NS)), DBits, NBits);
    {
      bool Overflow = false;
      const SWord Q = SDiv.divideChecked(NS, Overflow);
      R.check(PSDiv, RS.Overflow ? 1 : 0, Overflow ? 1 : 0, DBits, NBits);
      R.check(PSDiv, RS.TruncQ, sbits(Q), DBits, NBits);
    }
    R.check(PSDiv, RS.TruncR, sbits(SDiv.remainder(NS)), DBits, NBits);
    {
      const auto [Q, Rm] = SDiv.divRem(NS);
      R.check(PSDiv, RS.TruncQ, sbits(Q), DBits, NBits);
      R.check(PSDiv, RS.TruncR, sbits(Rm), DBits, NBits);
    }

    // Signed successor families: |n|,|d| through the unsigned cores with
    // the EOR/subtract sign patch-up; the INT_MIN / -1 wrap is covered
    // because the Oracle's overflow policy matches.
    R.check(PFastModS, RS.TruncQ, sbits(FMS.divide(NS)), DBits, NBits);
    R.check(PFastModS, RS.TruncR, sbits(FMS.remainder(NS)), DBits, NBits);
    R.check(PFastModS, RS.Divisible ? 1 : 0, FMS.isDivisible(NS) ? 1 : 0,
            DBits, NBits);
    R.check(PNarrowS, RS.TruncQ, sbits(NarS.divide(NS)), DBits, NBits);
    R.check(PNarrowS, RS.TruncR, sbits(NarS.remainder(NS)), DBits, NBits);

    // §6 floor/ceil dividers and the §2 convention matrix.
    R.check(PFloorDiv, RS.FloorQ, sbits(Floor.divide(NS)), DBits, NBits);
    R.check(PFloorDiv, RS.FloorR, sbits(Floor.modulo(NS)), DBits, NBits);
    R.check(PGeneralFloor, RS.FloorQ, sbits(GFloor.divide(NS)), DBits,
            NBits);
    R.check(PGeneralFloor, RS.FloorR, sbits(GFloor.modulo(NS)), DBits,
            NBits);
    R.check(PCeilDiv, RS.CeilQ, sbits(Ceil.divide(NS)), DBits, NBits);
    {
      const auto [Q, Rm] = ConvTrunc.quotRem(NS);
      R.check(PConvention, RS.TruncQ, sbits(Q), DBits, NBits);
      R.check(PConvention, RS.TruncR, sbits(Rm), DBits, NBits);
    }
    {
      const auto [Q, Rm] = ConvFloor.quotRem(NS);
      R.check(PConvention, RS.FloorQ, sbits(Q), DBits, NBits);
      R.check(PConvention, RS.FloorR, sbits(Rm), DBits, NBits);
    }
    {
      // Euclidean: r in [0, |d|), i.e. floor for d > 0, ceil for d < 0.
      const auto [Q, Rm] = ConvEuclid.quotRem(NS);
      R.check(PConvention, DSigned > 0 ? RS.FloorQ : RS.CeilQ, sbits(Q),
              DBits, NBits);
      R.check(PConvention, DSigned > 0 ? RS.FloorR : RS.CeilR, sbits(Rm),
              DBits, NBits);
    }

    // §9 signed exact division.
    R.check(PExactS, RS.Divisible ? 1 : 0, ExactS.isDivisible(NS) ? 1 : 0,
            DBits, NBits);
    if (RS.Divisible)
      R.check(PExactS, RS.TruncQ, sbits(ExactS.divideExact(NS)), DBits,
              NBits);
    if (AbsD >= 3 && (AbsD & (AbsD - 1)) != 0) {
      const int64_t TruncR = signExtend64(RS.TruncR, W);
      for (const int64_t Probe : {int64_t{1}, static_cast<int64_t>(AbsD) - 1}) {
        R.check(PExactS, TruncR == Probe ? 1 : 0,
                ExactS.remainderIs(NS, static_cast<SWord>(Probe)) ? 1 : 0,
                DBits, NBits);
      }
    }

    // Generated signed sequences.
    ir::runScratch(PSDivRem, Args1, Scratch, Results);
    R.check(PCodegenS, RS.TruncQ, Results[0], DBits, NBits);
    R.check(PCodegenS, RS.TruncR, Results[1], DBits, NBits);
    if (PFloorMod) {
      ir::runScratch(*PFloorMod, Args1, Scratch, Results);
      R.check(PCodegenFloor, RS.FloorQ, Results[0], DBits, NBits);
      R.check(PCodegenFloor, RS.FloorR, Results[1], DBits, NBits);
    }
    if (RS.Divisible) {
      ir::runScratch(ProgExactS, Args1, Scratch, Results);
      R.check(PCodegenExactS, RS.TruncQ, Results[0], DBits, NBits);
    }
    ir::runScratch(PDivisS, Args1, Scratch, Results);
    R.check(PCodegenDivisS, RS.Divisible ? 1 : 0, Results[0], DBits, NBits);
    if (PRemTestS1) {
      const int64_t TruncR = signExtend64(RS.TruncR, W);
      ir::runScratch(*PRemTestS1, Args1, Scratch, Results);
      R.check(PCodegenRemTestS, TruncR == RemS1 ? 1 : 0, Results[0], DBits,
              NBits);
      ir::runScratch(*PRemTestS2, Args1, Scratch, Results);
      R.check(PCodegenRemTestS, TruncR == RemS2 ? 1 : 0, Results[0], DBits,
              NBits);
    }
    if (!RS.Overflow) {
      // Identity (6.1) with both operands at run time (the sequence
      // carries a real DivS, which would trap on the overflow pair).
      Args2[0] = NBits;
      Args2[1] = DBits;
      ir::runScratch(PFloorRt, Args2, Scratch, Results);
      R.check(PCodegenFloorRt, RS.FloorQ, Results[0], DBits, NBits);
      R.check(PCodegenFloorRt, RS.FloorR, Results[1], DBits, NBits);
    }
    if (PWideS && !RS.Overflow) {
      Args1[0] = static_cast<uint64_t>(NSigned);
      ir::runScratch(*PWideS, Args1, Scratch, Results);
      R.check(PCodegenWideS, static_cast<uint64_t>(NSigned / DSigned),
              Results[0], DBits, NBits);
      Args1[0] = NBits;
    }

    // JIT-executed signed and floor sequences.
    if (JitS) {
      JitS->callAll(NBits, 0, Results);
      R.check(PJitS, RS.TruncQ, Results[0], DBits, NBits);
      R.check(PJitS, RS.TruncR, Results[1], DBits, NBits);
    }
    if (JitFloor) {
      JitFloor->callAll(NBits, 0, Results);
      R.check(PJitFloor, RS.FloorQ, Results[0], DBits, NBits);
      R.check(PJitFloor, RS.FloorR, Results[1], DBits, NBits);
    }
  }

  /// Batch backends over \p Ns (bit patterns), native widths only; every
  /// compiled-in backend is swept so the scalar fallback and any SIMD
  /// paths are compared against the same oracle.
  void checkBatch(const std::vector<uint64_t> &Ns) {
    if constexpr (Native) {
      using SInt = std::make_signed_t<UWord>;
      const size_t Count = Ns.size();
      std::vector<UWord> In(Count);
      std::vector<SInt> SIn(Count);
      for (size_t I = 0; I < Count; ++I) {
        In[I] = static_cast<UWord>(Ns[I] & Mask);
        SIn[I] = static_cast<SInt>(In[I]);
      }
      std::vector<UWord> Q(Count), Rm(Count);
      std::vector<SInt> SQ(Count), SR(Count);
      std::vector<uint8_t> Flags(Count);
      for (const batch::Backend B : batch::compiledBackends()) {
        if (!batch::backendAvailable(B))
          continue;
        const batch::BatchDivider<UWord> BU(static_cast<UWord>(DBits), B);
        BU.divRem(In.data(), Q.data(), Rm.data(), Count);
        BU.divisible(In.data(), Flags.data(), Count);
        for (size_t I = 0; I < Count; ++I) {
          const DivRef Ref = OU.ref(Ns[I] & Mask);
          R.check(PBatchU, Ref.TruncQ, ubits(Q[I]), DBits, Ns[I] & Mask);
          R.check(PBatchU, Ref.TruncR, ubits(Rm[I]), DBits, Ns[I] & Mask);
          R.check(PBatchU, Ref.Divisible ? 1 : 0, Flags[I] ? 1 : 0, DBits,
                  Ns[I] & Mask);
        }
        const batch::BatchDivider<SInt> BS(static_cast<SInt>(DSigned), B);
        BS.divRem(SIn.data(), SQ.data(), SR.data(), Count);
        for (size_t I = 0; I < Count; ++I) {
          const DivRef Ref = OS.ref(Ns[I] & Mask);
          R.check(PBatchS, Ref.TruncQ, sbits(static_cast<SWord>(SQ[I])),
                  DBits, Ns[I] & Mask);
          R.check(PBatchS, Ref.TruncR, sbits(static_cast<SWord>(SR[I])),
                  DBits, Ns[I] & Mask);
        }
        BS.floorDivide(SIn.data(), SQ.data(), Count);
        BS.ceilDivide(SIn.data(), SR.data(), Count);
        for (size_t I = 0; I < Count; ++I) {
          const DivRef Ref = OS.ref(Ns[I] & Mask);
          R.check(PBatchS, Ref.FloorQ, sbits(static_cast<SWord>(SQ[I])),
                  DBits, Ns[I] & Mask);
          R.check(PBatchS, Ref.CeilQ, sbits(static_cast<SWord>(SR[I])),
                  DBits, Ns[I] & Mask);
        }
      }
    } else {
      (void)Ns;
    }
  }

  /// The runtime-emitted vector loops (the kernels behind
  /// jit::JitBatchDivider) against the Oracle. Unlike checkBatch this
  /// runs at *every* emittable width, not just native ones: any N in
  /// [2, 32] maps onto 32-bit memory lanes, N = 64 onto 64-bit lanes —
  /// so the exhaustive N = 4..12 sweeps drive the real AVX2/AVX-512
  /// recipes over every (n, d) pair, and the fuzzer reuses the same
  /// path at 16/32/64. Inputs are padded to a whole number of vectors
  /// so the loop (not the fallback tail) covers every real element;
  /// outputs are pre-poisoned so a short-running loop shows up as a
  /// mismatch rather than silence. Zero checks when the host lacks the
  /// ISA or GMDIV_JIT_VECTOR=0 — the same policy the divider obeys.
  void checkJitBatch(const std::vector<uint64_t> &Ns) {
    jit::VectorIsa Isa;
    if (Ns.empty() || !jit::vectorJitIsa(Isa))
      return;
    if constexpr (W > 32 && W != 64)
      return;
    using Elem = std::conditional_t<W == 64, uint64_t, uint32_t>;

    const auto CompileLoop = [&](jit::SeqKind Kind, bool ByteResult) {
      jit::VectorEmitOptions Opts;
      Opts.Isa = Isa;
      Opts.ByteResult0 = ByteResult;
      jit::CompileInfo Info;
      Info.CaseName = std::string("verify-vec-") + jit::seqKindName(Kind);
      Info.DivisorBits = DBits;
      Info.HasDivisor = true;
      Info.IsSigned = Kind == jit::SeqKind::SDivRem;
      return jit::compileVectorLoop(
          jit::prepareForJit(jit::genSequence(Kind, W, DBits)), Opts, Info);
    };
    const auto UBoth = CompileLoop(jit::SeqKind::UDivRem, false);
    const auto SBoth = CompileLoop(jit::SeqKind::SDivRem, false);
    const auto UDivis = CompileLoop(jit::SeqKind::UDivisible, true);
    if (!UBoth && !SBoth && !UDivis)
      return;

    const size_t Count = Ns.size();
    std::vector<Elem> In(Count);
    for (size_t I = 0; I < Count; ++I)
      In[I] = static_cast<Elem>(Ns[I] & Mask);
    const auto PadTo = [&](size_t Lanes) {
      std::vector<Elem> Out = In;
      while (Out.size() % Lanes)
        Out.push_back(0);
      return Out;
    };
    constexpr Elem Poison = static_cast<Elem>(~Elem{0});

    if (UBoth) {
      std::vector<Elem> PIn = PadTo(UBoth->vectorShape().Lanes);
      std::vector<Elem> Q(PIn.size(), Poison), Rm(PIn.size(), Poison);
      UBoth->batchFn()(PIn.data(), Q.data(), Rm.data(), PIn.size());
      for (size_t I = 0; I < Count; ++I) {
        const DivRef Ref = OU.ref(Ns[I] & Mask);
        R.check(PJitBatchU, Ref.TruncQ, static_cast<uint64_t>(Q[I]) & Mask,
                DBits, Ns[I] & Mask);
        R.check(PJitBatchU, Ref.TruncR, static_cast<uint64_t>(Rm[I]) & Mask,
                DBits, Ns[I] & Mask);
      }
    }
    if (SBoth) {
      std::vector<Elem> PIn = PadTo(SBoth->vectorShape().Lanes);
      std::vector<Elem> Q(PIn.size(), Poison), Rm(PIn.size(), Poison);
      SBoth->batchFn()(PIn.data(), Q.data(), Rm.data(), PIn.size());
      for (size_t I = 0; I < Count; ++I) {
        const DivRef Ref = OS.ref(Ns[I] & Mask);
        R.check(PJitBatchS, Ref.TruncQ, static_cast<uint64_t>(Q[I]) & Mask,
                DBits, Ns[I] & Mask);
        R.check(PJitBatchS, Ref.TruncR, static_cast<uint64_t>(Rm[I]) & Mask,
                DBits, Ns[I] & Mask);
      }
    }
    if (UDivis) {
      std::vector<Elem> PIn = PadTo(UDivis->vectorShape().Lanes);
      std::vector<uint8_t> Flags(PIn.size(), 0xAA);
      UDivis->batchFn()(PIn.data(), Flags.data(), nullptr, PIn.size());
      for (size_t I = 0; I < Count; ++I) {
        const DivRef Ref = OU.ref(Ns[I] & Mask);
        R.check(PJitBatchDivis, Ref.Divisible ? 1 : 0, Flags[I], DBits,
                Ns[I] & Mask);
      }
    }
  }

  uint64_t divisorBits() const { return DBits; }

private:
  uint64_t ubits(UWord Value) const {
    return static_cast<uint64_t>(Value) & Mask;
  }
  uint64_t sbits(SWord Value) const {
    return static_cast<uint64_t>(Value) & Mask;
  }
  static void udHalves(UDWord Value, uint64_t &Lo, uint64_t &Hi) {
    if constexpr (W == 64) {
      Lo = Value.low64();
      Hi = Value.high64();
    } else {
      Lo = static_cast<uint64_t>(Value);
      Hi = 0;
    }
  }
  static UDWord makeUDWord(uint64_t HighBits, uint64_t LowBits) {
    if constexpr (W == 64)
      return UInt128::fromHalves(HighBits, LowBits);
    else
      return static_cast<UDWord>((HighBits << W) | LowBits);
  }

  Reporter &R;
  uint64_t Mask;
  uint64_t DBits;
  int64_t DSigned;
  uint64_t AbsD;
  UWord DU;
  SWord DS;
  Oracle OU, OS;
  UnsignedDivider<UWord> UDiv;
  AlversonDivider<UWord> Alv;
  ExactUnsignedDivider<UWord> ExactU;
  DWordDivider<UWord> DWord;
  SignedDivider<SWord> SDiv;
  FloorDivider<SWord> Floor;
  GeneralFloorDivider<SWord> GFloor;
  CeilDivider<SWord> Ceil;
  ConventionDivider<SWord> ConvTrunc, ConvFloor, ConvEuclid;
  ExactSignedDivider<SWord> ExactS;
  FastModDivider<UWord> FMU;
  FastModSignedDivider<SWord> FMS;
  RoundUpDivider<UWord> RUp;
  NarrowDivider<UWord> Nar;
  NarrowSignedDivider<SWord> NarS;
  ir::Program PUDivRem, PAlv, ProgExactU, PDivisU, PDword, PSDivRem,
      ProgExactS, PDivisS, PFloorRt;
  std::optional<ir::Program> PRemTest0, PRemTest1, PFloorMod, PRemTestS1,
      PRemTestS2, PWideU, PWideS;
  std::optional<FloatDivider<UWord>> FloatU;
  std::optional<FloatDivider<SWord>> FloatS;
  std::shared_ptr<const jit::CompiledSequence> JitU, JitS, JitFloor;
  uint64_t RemR0 = 0, RemR1 = 0;
  int64_t RemS1 = 0, RemS2 = 0;
  std::vector<uint64_t> Args1, Args2, Scratch, Results;
};

} // namespace

//===----------------------------------------------------------------------===//
// VerifyReport
//===----------------------------------------------------------------------===//

uint64_t VerifyReport::checks() const {
  uint64_t Total = 0;
  for (const PropertyCount &P : Properties)
    Total += P.Checks;
  return Total;
}

uint64_t VerifyReport::mismatches() const {
  uint64_t Total = 0;
  for (const PropertyCount &P : Properties)
    Total += P.Mismatches;
  return Total;
}

uint64_t VerifyReport::mismatches(const std::string &Property) const {
  for (const PropertyCount &P : Properties)
    if (P.Name == Property)
      return P.Mismatches;
  return 0;
}

void VerifyReport::merge(const VerifyReport &Other) {
  if (Properties.empty()) {
    *this = Other;
    return;
  }
  assert(Properties.size() == Other.Properties.size() &&
         "merging reports with different property layouts");
  for (size_t I = 0; I < Properties.size(); ++I) {
    Properties[I].Checks += Other.Properties[I].Checks;
    Properties[I].Mismatches += Other.Properties[I].Mismatches;
  }
  for (const std::string &F : Other.Failures) {
    if (Failures.size() >= FailureCap)
      break;
    if (std::find(Failures.begin(), Failures.end(), F) == Failures.end())
      Failures.push_back(F);
  }
}

void verify::reportJsonInto(json::Writer &Wr, const VerifyReport &Report) {
  Wr.beginObject()
      .key("word_bits")
      .value(Report.WordBits)
      .key("checks")
      .value(Report.checks())
      .key("mismatches")
      .value(Report.mismatches())
      .key("clean")
      .value(Report.clean())
      .key("properties")
      .beginArray();
  for (const PropertyCount &P : Report.Properties) {
    if (P.Checks == 0 && P.Mismatches == 0)
      continue;
    Wr.beginObject()
        .key("name")
        .value(P.Name)
        .key("checks")
        .value(P.Checks)
        .key("mismatches")
        .value(P.Mismatches)
        .endObject();
  }
  Wr.endArray().key("failures").beginArray();
  for (const std::string &F : Report.Failures)
    Wr.value(F);
  Wr.endArray().endObject();
}

std::string verify::reportJson(const VerifyReport &Report) {
  json::Writer Wr;
  reportJsonInto(Wr, Report);
  return Wr.str();
}

//===----------------------------------------------------------------------===//
// Repro strings
//===----------------------------------------------------------------------===//

std::string verify::reproString(const Repro &R) {
  const int Index = propertyIndex(R.Property);
  const bool IsSigned = Index >= 0 && PropertyTable[Index].IsSigned;
  std::string Text = "gmdiv:v1:";
  Text += R.Property;
  Text += ":N=" + std::to_string(R.WordBits);
  Text += ":d=" + decString(R.DBits, R.WordBits, IsSigned);
  Text += ":n=" + decString(R.NBits, R.WordBits, IsSigned);
  if (R.HasN2)
    Text += ":n2=" + decString(R.N2Bits, R.WordBits, false);
  // Family tag: explicit tag wins, else the property's registered
  // family; the default "gm" stays implicit so pre-existing repro
  // strings remain byte-identical.
  std::string Family = R.Family;
  if (Family.empty() && Index >= 0)
    Family = PropertyTable[Index].Family;
  if (!Family.empty() && Family != "gm")
    Text += ":f=" + Family;
  return Text;
}

namespace {

/// Splits on ':' (values never contain one: property slugs are
/// kebab-case, numbers are decimal with an optional leading minus).
std::vector<std::string> splitColons(const std::string &Text) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    const size_t Pos = Text.find(':', Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

bool parseField(const std::string &Part, const char *Key, uint64_t &Out,
                int WordBits) {
  const std::string Prefix = std::string(Key) + "=";
  if (Part.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  const std::string Value = Part.substr(Prefix.size());
  if (Value.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  if (Value[0] == '-') {
    const long long Parsed = std::strtoll(Value.c_str(), &End, 10);
    if (errno != 0 || End == nullptr || *End != '\0')
      return false;
    Out = static_cast<uint64_t>(Parsed) & maskFor(WordBits);
  } else {
    const unsigned long long Parsed = std::strtoull(Value.c_str(), &End, 10);
    if (errno != 0 || End == nullptr || *End != '\0')
      return false;
    Out = static_cast<uint64_t>(Parsed) & maskFor(WordBits);
  }
  return true;
}

} // namespace

bool verify::parseRepro(const std::string &Text, Repro &Out) {
  const std::vector<std::string> Parts = splitColons(Text);
  if (Parts.size() < 6 || Parts.size() > 8)
    return false;
  if (Parts[0] != "gmdiv" || Parts[1] != "v1")
    return false;
  Repro R;
  R.Property = Parts[2];
  uint64_t Bits = 0;
  if (!parseField(Parts[3], "N", Bits, 64))
    return false;
  R.WordBits = static_cast<int>(Bits);
  if (R.WordBits < 2 || R.WordBits > 64)
    return false;
  if (!parseField(Parts[4], "d", R.DBits, R.WordBits))
    return false;
  if (!parseField(Parts[5], "n", R.NBits, R.WordBits))
    return false;
  size_t Next = 6;
  if (Next < Parts.size() && Parts[Next].compare(0, 3, "n2=") == 0) {
    if (!parseField(Parts[Next], "n2", R.N2Bits, R.WordBits))
      return false;
    R.HasN2 = true;
    ++Next;
  }
  if (Next < Parts.size()) {
    // Optional trailing family tag, always last.
    if (Parts[Next].compare(0, 2, "f=") != 0)
      return false;
    R.Family = Parts[Next].substr(2);
    if (R.Family.empty())
      return false;
    ++Next;
  }
  if (Next != Parts.size())
    return false;
  Out = R;
  return true;
}

//===----------------------------------------------------------------------===//
// Drivers
//===----------------------------------------------------------------------===//

void verify::setInjectedMismatchPeriod(uint64_t Period) {
  InjectedPeriod.store(Period, std::memory_order_relaxed);
  InjectionCounter.store(0, std::memory_order_relaxed);
}

VerifyReport verify::verifyWidth(int WordBits) {
  assert(WordBits >= 4 && WordBits <= 12 &&
         "exhaustive verification is sized for N in [4, 12]");
  GMDIV_TRACE_SPAN("verify", "verifyWidth",
                   static_cast<uint64_t>(WordBits));
  Reporter R(WordBits);
  withUWord(WordBits, [&]<typename UWord>() {
    const uint64_t Mask = maskFor(WordBits);
    std::vector<uint64_t> AllN;
    AllN.reserve(static_cast<size_t>(Mask) + 1);
    for (uint64_t N = 0; N <= Mask; ++N)
      AllN.push_back(N);
    for (uint64_t D = 1; D <= Mask; ++D) {
      DivisorChecker<UWord> Checker(R, D);
      Checker.checkDivisorOnce();
      for (uint64_t N = 0; N <= Mask; ++N)
        Checker.checkN(N);
      Checker.checkBatch(AllN);
      Checker.checkJitBatch(AllN);
    }
  });
  return R.take();
}

VerifyReport verify::checkDivisor(
    int WordBits, uint64_t DBits, const std::vector<uint64_t> &Ns,
    const std::vector<std::pair<uint64_t, uint64_t>> &DwordPairs) {
  assert(widthSupported(WordBits) && "unsupported verification width");
  const uint64_t Mask = maskFor(WordBits);
  assert((DBits & Mask) != 0 && "divisor must be nonzero");
  Reporter R(WordBits);
  withUWord(WordBits, [&]<typename UWord>() {
    DivisorChecker<UWord> Checker(R, DBits & Mask);
    Checker.checkDivisorOnce();
    for (const uint64_t N : Ns)
      Checker.checkN(N);
    for (const auto &[High, Low] : DwordPairs)
      if ((High & Mask) < Checker.divisorBits())
        Checker.checkDwordPair(High & Mask, Low & Mask);
    Checker.checkBatch(Ns);
    Checker.checkJitBatch(Ns);
  });
  return R.take();
}

bool verify::checkOne(const Repro &R, std::string *DetailOut) {
  const ScopedRemarkSuppression Silence;
  const int Index = propertyIndex(R.Property);
  const uint64_t Mask = maskFor(R.WordBits);
  const uint64_t DBits = R.DBits & Mask;
  if (Index < 0 || !widthSupported(R.WordBits) || DBits == 0) {
    if (DetailOut)
      *DetailOut = "invalid repro: unknown property, width or zero divisor";
    return false;
  }
  if (PropertyTable[Index].HasN2 && (R.N2Bits & Mask) >= DBits) {
    if (DetailOut)
      *DetailOut = "invalid repro: dword high part must be below the divisor";
    return false;
  }
  if (!R.Family.empty() && R.Family != PropertyTable[Index].Family) {
    if (DetailOut)
      *DetailOut = "invalid repro: family tag '" + R.Family +
                   "' does not match property " + R.Property + " (family " +
                   PropertyTable[Index].Family + ")";
    return false;
  }
  Reporter Rep(R.WordBits);
  withUWord(R.WordBits, [&]<typename UWord>() {
    DivisorChecker<UWord> Checker(Rep, DBits);
    if (PropertyTable[Index].HasN2) {
      Checker.checkDwordPair(R.N2Bits & Mask, R.NBits & Mask);
    } else {
      Checker.checkDivisorOnce();
      Checker.checkN(R.NBits & Mask);
      if (R.Property == "batch-unsigned" || R.Property == "batch-signed")
        Checker.checkBatch({R.NBits & Mask});
      if (R.Property.compare(0, 10, "jit-batch-") == 0)
        Checker.checkJitBatch({R.NBits & Mask});
    }
  });
  const VerifyReport Report = Rep.take();
  const uint64_t Bad = Report.mismatches(R.Property);
  const bool Pass = Bad == 0;
  if (DetailOut) {
    *DetailOut = R.Property + " at N=" + std::to_string(R.WordBits) +
                 " d=" + decString(DBits, R.WordBits,
                                   PropertyTable[Index].IsSigned) +
                 " n=" + decString(R.NBits, R.WordBits,
                                   PropertyTable[Index].IsSigned) +
                 (R.HasN2 ? " n2=" + decString(R.N2Bits, R.WordBits, false)
                          : std::string()) +
                 (Pass ? ": PASS" : ": FAIL (" + std::to_string(Bad) +
                                        " mismatching comparisons)");
  }
  return Pass;
}
