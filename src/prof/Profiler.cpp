//===- prof/Profiler.cpp - Signal-based sampling profiler -----------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "prof/Profiler.h"

#include "metrics/FlightRecorder.h"
#include "metrics/Metrics.h"
#include "telemetry/Json.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define GMDIV_PROF_HAVE_SIGPROF 1
#include <csignal>
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>
#include <ucontext.h>
#endif

using namespace gmdiv;
using namespace gmdiv::prof;

namespace {

/// Frames kept per sample after dropping the handler/trampoline pair.
constexpr int MaxFrames = 16;
/// Leading frames of every in-handler backtrace: the handler itself and
/// the kernel signal trampoline. Off-by-one here only adds a benign
/// extra frame to the collapsed output, it never loses the leaf.
constexpr int SkipFrames = 2;
/// Samples retained per thread before overwrite (drop-accounted).
constexpr int RingCapacity = 1024;
/// Per-thread rings, claimed on first signal in a thread; threads past
/// the pool drop their samples (accounted, like trace's rings).
constexpr int MaxRings = 64;

/// All fields are relaxed atomics so the signal-context writer and the
/// dump-time reader never constitute a data race (and stay TSan-clean);
/// torn *samples* are still possible if a dump races the handler, which
/// is acceptable for a statistical profile and impossible after stop().
struct SampleSlot {
  std::atomic<uintptr_t> Frames[MaxFrames];
  std::atomic<uint32_t> NumFrames;
};

struct SampleRing {
  SampleSlot Slots[RingCapacity];
  /// Total samples ever written to this ring; release-published so a
  /// reader's acquire load sees the slots the count covers.
  std::atomic<uint64_t> Next{0};
};

/// Static pool: zero-page BSS until a thread actually samples.
SampleRing Rings[MaxRings];
std::atomic<unsigned> RingsClaimed{0};
std::atomic<uint64_t> DroppedNoSlot{0};
std::atomic<bool> Armed{false};
std::atomic<int> ActiveHz{0};

#if GMDIV_PROF_HAVE_SIGPROF
struct sigaction PrevAction;

/// -1 = not yet claimed, -2 = pool exhausted for this thread.
thread_local int MyRing = -1;

void profSignalHandler(int, siginfo_t *, void *Context) {
  if (!Armed.load(std::memory_order_relaxed))
    return;
  int Slot = MyRing;
  if (Slot == -1) {
    const unsigned Claimed = RingsClaimed.fetch_add(1, std::memory_order_relaxed);
    Slot = Claimed < MaxRings ? static_cast<int>(Claimed) : -2;
    MyRing = Slot;
  }
  if (Slot < 0) {
    DroppedNoSlot.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // backtrace() is pre-warmed in start(), so this allocates nothing.
  void *Raw[SkipFrames + MaxFrames];
  int N = backtrace(Raw, SkipFrames + MaxFrames);
  int First = SkipFrames;
  if (N <= First) {
    // The unwinder could not step past the signal frame (e.g. the
    // interrupted PC is JIT'd code with no unwind info). Keep at least
    // the interrupted PC so the sample is attributed, not lost.
    First = 0;
    N = 0;
#if defined(__linux__) && defined(__x86_64__)
    if (Context) {
      Raw[0] = reinterpret_cast<void *>(
          static_cast<ucontext_t *>(Context)->uc_mcontext.gregs[REG_RIP]);
      N = 1;
    }
#else
    (void)Context;
#endif
    if (N == 0) {
      DroppedNoSlot.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  SampleRing &R = Rings[Slot];
  const uint64_t Seq = R.Next.load(std::memory_order_relaxed);
  SampleSlot &S = R.Slots[Seq % RingCapacity];
  const int Kept = std::min(N - First, MaxFrames);
  for (int I = 0; I < Kept; ++I)
    S.Frames[I].store(reinterpret_cast<uintptr_t>(Raw[First + I]),
                      std::memory_order_relaxed);
  S.NumFrames.store(static_cast<uint32_t>(Kept), std::memory_order_relaxed);
  R.Next.store(Seq + 1, std::memory_order_release);
}
#endif // GMDIV_PROF_HAVE_SIGPROF

uint64_t recordedTotal() {
  uint64_t Total = 0;
  const unsigned Claimed =
      std::min<unsigned>(RingsClaimed.load(std::memory_order_relaxed), MaxRings);
  for (unsigned I = 0; I < Claimed; ++I)
    Total += Rings[I].Next.load(std::memory_order_relaxed);
  return Total;
}

uint64_t overwrittenTotal() {
  uint64_t Total = 0;
  const unsigned Claimed =
      std::min<unsigned>(RingsClaimed.load(std::memory_order_relaxed), MaxRings);
  for (unsigned I = 0; I < Claimed; ++I) {
    const uint64_t Next = Rings[I].Next.load(std::memory_order_relaxed);
    Total += Next - std::min<uint64_t>(Next, RingCapacity);
  }
  return Total;
}

/// Fold every retained sample into (leaf-first stack) -> count.
std::map<std::vector<uintptr_t>, uint64_t> foldSamples() {
  std::map<std::vector<uintptr_t>, uint64_t> Folded;
  const unsigned Claimed =
      std::min<unsigned>(RingsClaimed.load(std::memory_order_relaxed), MaxRings);
  for (unsigned I = 0; I < Claimed; ++I) {
    SampleRing &R = Rings[I];
    const uint64_t Next = R.Next.load(std::memory_order_acquire);
    const uint64_t Kept = std::min<uint64_t>(Next, RingCapacity);
    for (uint64_t Seq = Next - Kept; Seq < Next; ++Seq) {
      const SampleSlot &S = R.Slots[Seq % RingCapacity];
      const uint32_t N = std::min<uint32_t>(
          S.NumFrames.load(std::memory_order_relaxed), MaxFrames);
      if (N == 0)
        continue;
      std::vector<uintptr_t> Stack(N);
      for (uint32_t F = 0; F < N; ++F)
        Stack[F] = S.Frames[F].load(std::memory_order_relaxed);
      ++Folded[Stack];
    }
  }
  return Folded;
}

/// Collapsed-stack frames must not contain the separators the format
/// reserves (';' between frames, ' ' before the count).
std::string sanitizeFrame(std::string Name) {
  for (char &C : Name) {
    if (C == ';')
      C = ':';
    else if (C == ' ')
      C = '_';
  }
  return Name;
}

std::string symbolizePc(uintptr_t Pc) {
#if GMDIV_PROF_HAVE_SIGPROF
  // The captured PC is a return address (one past the call) except for
  // the leaf; back up one byte so call-site frames attribute to the
  // calling line's function, the standard profiler adjustment.
  Dl_info Info;
  std::memset(&Info, 0, sizeof(Info));
  if (dladdr(reinterpret_cast<void *>(Pc), &Info)) {
    if (Info.dli_sname) {
      int Status = -1;
      char *Demangled =
          abi::__cxa_demangle(Info.dli_sname, nullptr, nullptr, &Status);
      std::string Out =
          (Status == 0 && Demangled) ? Demangled : Info.dli_sname;
      std::free(Demangled);
      return sanitizeFrame(Out);
    }
    if (Info.dli_fname && Info.dli_fbase) {
      const char *Base = std::strrchr(Info.dli_fname, '/');
      Base = Base ? Base + 1 : Info.dli_fname;
      char Buf[512];
      std::snprintf(Buf, sizeof(Buf), "%s+0x%zx", Base,
                    static_cast<size_t>(Pc - reinterpret_cast<uintptr_t>(
                                                 Info.dli_fbase)));
      return sanitizeFrame(Buf);
    }
  }
#endif
  // Raw addresses (typically JIT'd code) still show up honestly.
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%zx", static_cast<size_t>(Pc));
  return Buf;
}

class SymbolCache {
public:
  const std::string &name(uintptr_t Pc) {
    auto It = Cache.find(Pc);
    if (It == Cache.end())
      It = Cache.emplace(Pc, symbolizePc(Pc)).first;
    return It->second;
  }

private:
  std::map<uintptr_t, std::string> Cache;
};

void registerProfMetricsOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    metrics::Registry::global().addCollector([](metrics::SnapshotBuilder &B) {
      B.counter("gmdiv_prof_samples_total",
                "CPU stack samples captured by the sampling profiler", {},
                static_cast<double>(recordedTotal()));
      B.counter("gmdiv_prof_dropped_total",
                "Profiler samples lost to ring overwrite or thread-slot "
                "exhaustion",
                {},
                static_cast<double>(overwrittenTotal() +
                                    DroppedNoSlot.load(
                                        std::memory_order_relaxed)));
      B.gauge("gmdiv_prof_rate_hz",
              "Configured profiler sampling rate (0 when stopped)", {},
              Armed.load(std::memory_order_relaxed)
                  ? ActiveHz.load(std::memory_order_relaxed)
                  : 0);
    });
  });
}

std::string profileProviderThunk() {
  return Profiler::global().profileJson();
}

} // namespace

Profiler &Profiler::global() {
  static Profiler *P = new Profiler();
  return *P;
}

bool Profiler::start(int Hz) {
#if GMDIV_PROF_HAVE_SIGPROF
  if (Hz <= 0)
    Hz = DefaultHz;
  bool Expected = false;
  if (!Armed.compare_exchange_strong(Expected, true))
    return false;

  // First backtrace() call may dlopen/allocate; do it here, outside
  // signal context, so the handler never does.
  void *Warm[4];
  backtrace(Warm, 4);

  registerProfMetricsOnce();
  metrics::FlightRecorder::setProfileProvider(&profileProviderThunk);

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_sigaction = &profSignalHandler;
  SA.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&SA.sa_mask);
  if (sigaction(SIGPROF, &SA, &PrevAction) != 0) {
    Armed.store(false);
    return false;
  }

  struct itimerval TV;
  TV.it_interval.tv_sec = 0;
  TV.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / Hz);
  if (TV.it_interval.tv_usec == 0)
    TV.it_interval.tv_usec = 1;
  TV.it_value = TV.it_interval;
  if (setitimer(ITIMER_PROF, &TV, nullptr) != 0) {
    sigaction(SIGPROF, &PrevAction, nullptr);
    Armed.store(false);
    return false;
  }
  ActiveHz.store(Hz, std::memory_order_relaxed);
  return true;
#else
  (void)Hz;
  return false;
#endif
}

void Profiler::stop() {
#if GMDIV_PROF_HAVE_SIGPROF
  bool Expected = true;
  if (!Armed.compare_exchange_strong(Expected, false))
    return;
  struct itimerval Off;
  std::memset(&Off, 0, sizeof(Off));
  setitimer(ITIMER_PROF, &Off, nullptr);
  sigaction(SIGPROF, &PrevAction, nullptr);
#endif
}

bool Profiler::startFromEnv() {
  const char *Env = std::getenv("GMDIV_PROF");
  if (!Env || !*Env || std::strcmp(Env, "0") == 0)
    return false;
  if (running())
    return true;
  long Hz = std::strtol(Env, nullptr, 10);
  if (Hz <= 1) {
    // GMDIV_PROF=1 (or any truthy non-number) means "on at the default
    // rate"; GMDIV_PROF_HZ overrides that default.
    Hz = DefaultHz;
    if (const char *HzEnv = std::getenv("GMDIV_PROF_HZ")) {
      const long V = std::strtol(HzEnv, nullptr, 10);
      if (V > 0)
        Hz = V;
    }
  }
  return start(static_cast<int>(Hz));
}

bool Profiler::running() const {
  return Armed.load(std::memory_order_relaxed);
}

int Profiler::rateHz() const {
  return ActiveHz.load(std::memory_order_relaxed);
}

uint64_t Profiler::sampleCount() const { return recordedTotal(); }

uint64_t Profiler::droppedCount() const {
  return overwrittenTotal() + DroppedNoSlot.load(std::memory_order_relaxed);
}

void Profiler::reset() {
  const unsigned Claimed =
      std::min<unsigned>(RingsClaimed.load(std::memory_order_relaxed), MaxRings);
  for (unsigned I = 0; I < Claimed; ++I)
    Rings[I].Next.store(0, std::memory_order_relaxed);
  DroppedNoSlot.store(0, std::memory_order_relaxed);
}

std::string Profiler::collapsed() const {
  const auto Folded = foldSamples();
  SymbolCache Symbols;
  // Symbolized line -> count (distinct raw stacks can fold to one line).
  std::map<std::string, uint64_t> Lines;
  for (const auto &Entry : Folded) {
    std::string Line;
    // Stored leaf-first; collapsed format wants root-first.
    for (auto It = Entry.first.rbegin(); It != Entry.first.rend(); ++It) {
      if (!Line.empty())
        Line += ';';
      Line += Symbols.name(*It);
    }
    Lines[Line] += Entry.second;
  }
  std::string Out;
  for (const auto &L : Lines) {
    Out += L.first;
    Out += ' ';
    Out += std::to_string(L.second);
    Out += '\n';
  }
  return Out;
}

bool Profiler::writeCollapsed(const std::string &Path,
                              std::string *Error) const {
  const std::string Body = collapsed();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  const bool Ok =
      Body.empty() || std::fwrite(Body.data(), 1, Body.size(), F) == Body.size();
  if (std::fclose(F) != 0 || !Ok) {
    if (Error)
      *Error = "short write to " + Path;
    return false;
  }
  return true;
}

std::string Profiler::profileJson() const {
  namespace json = telemetry::json;
  const auto Folded = foldSamples();

  // Order stacks by descending weight and cap what the crash report
  // embeds; the drop is visible through stacks_total vs stacks_kept.
  std::vector<std::pair<const std::vector<uintptr_t> *, uint64_t>> Ordered;
  Ordered.reserve(Folded.size());
  for (const auto &Entry : Folded)
    Ordered.emplace_back(&Entry.first, Entry.second);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.second > B.second; });
  constexpr size_t MaxStacks = 64;
  const size_t Kept = std::min(Ordered.size(), MaxStacks);

  SymbolCache Symbols;
  json::Writer W;
  W.beginObject();
  W.key("gmdiv_profile").value(int64_t{1});
  W.key("rate_hz").value(static_cast<int64_t>(rateHz()));
  W.key("running").value(running());
  W.key("samples_recorded").value(sampleCount());
  W.key("samples_dropped").value(droppedCount());
  W.key("stacks_total").value(static_cast<uint64_t>(Ordered.size()));
  W.key("stacks_kept").value(static_cast<uint64_t>(Kept));
  W.key("stacks").beginArray();
  for (size_t I = 0; I < Kept; ++I) {
    W.beginObject();
    W.key("count").value(Ordered[I].second);
    W.key("frames").beginArray();
    // Leaf-first in JSON: the first frame is where the CPU was.
    for (uintptr_t Pc : *Ordered[I].first)
      W.value(Symbols.name(Pc));
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}
