//===- prof/Profiler.h - Signal-based sampling profiler --------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process sampling profiler: SIGPROF fires on process CPU time
/// (setitimer(ITIMER_PROF)) at a configurable rate; the handler captures
/// a raw stack into a lock-free per-thread ring (same overwrite +
/// drop-accounting discipline as trace's span rings); symbolization and
/// aggregation happen only at dump time, never in the signal path.
///
/// Output formats:
///   - collapsed(): one "frame;frame;leaf count" line per unique stack,
///     directly consumable by flamegraph.pl and speedscope.
///   - profileJson(): the same aggregation as a JSON object, embedded
///     into the FlightRecorder crash report (schema v2).
///
/// Arming:
///   - Profiler::global().start(Hz) / stop() programmatically.
///   - startFromEnv(): GMDIV_PROF=<hz> (or any non-numeric truthy value
///     for the 97 Hz default; GMDIV_PROF_HZ overrides the default rate).
///   - gmdiv_tool / soak / fuzz accept --profile=<file> and write the
///     collapsed form at exit.
///
/// Metrics: gmdiv_prof_samples_total, gmdiv_prof_dropped_total and
/// gmdiv_prof_rate_hz are registered with the global metrics registry
/// the first time the profiler starts.
///
/// Async-signal-safety notes (the load-bearing part):
///   - backtrace(3) is pre-warmed in start(); after the first call it
///     performs no allocation, so calling it from the handler is safe
///     (the same approach production profilers take).
///   - The handler touches only plain arrays, initial-exec TLS and
///     relaxed/release atomics. No locks, no allocation, no I/O.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_PROF_PROFILER_H
#define GMDIV_PROF_PROFILER_H

#include <cstdint>
#include <string>

namespace gmdiv {
namespace prof {

class Profiler {
public:
  /// Default sampling rate; 97 Hz is prime so the sampler cannot phase-
  /// lock with 10/100/1000 Hz periodic work.
  static constexpr int DefaultHz = 97;

  static Profiler &global();

  /// Install the SIGPROF handler and arm the interval timer at \p Hz
  /// samples per second of process CPU time. Idempotent while running
  /// (returns false without changing the rate). Returns false if the
  /// timer could not be armed.
  bool start(int Hz = DefaultHz);

  /// Disarm the timer and restore the previous SIGPROF disposition.
  /// Captured samples are retained for collapsed()/profileJson().
  void stop();

  /// Arm from GMDIV_PROF / GMDIV_PROF_HZ. Returns true if the profiler
  /// was started (or was already running).
  bool startFromEnv();

  bool running() const;
  int rateHz() const;

  /// Samples successfully written into rings since the last reset.
  uint64_t sampleCount() const;
  /// Samples lost: ring overwrites plus handler hits on threads beyond
  /// the slot pool. Honest accounting, mirrored as a metric.
  uint64_t droppedCount() const;

  /// Drop all captured samples and zero the counters.
  void reset();

  /// Fold the rings and symbolize: "frame;frame;leaf count\n" lines in
  /// root-first order (flamegraph.pl / speedscope collapsed format).
  /// Static symbols resolve via dladdr when the binary exports them
  /// (ENABLE_EXPORTS); otherwise frames degrade to "module+0xoffset",
  /// never to an empty string.
  std::string collapsed() const;

  /// Write collapsed() to \p Path (plain overwrite; profiles are not
  /// consumed concurrently the way metrics snapshots are). Returns
  /// false and fills \p Error on I/O failure.
  bool writeCollapsed(const std::string &Path, std::string *Error = nullptr) const;

  /// JSON object for the FlightRecorder report: rate, sample/drop
  /// counters and the folded stacks.
  std::string profileJson() const;

private:
  Profiler() = default;
};

} // namespace prof
} // namespace gmdiv

#endif // GMDIV_PROF_PROFILER_H
