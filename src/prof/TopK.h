//===- prof/TopK.h - Space-saving heavy-hitter sketch ----------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded top-K heavy-hitter sketch (Metwally-Agrawal-El Abbadi
/// "space-saving") over an arbitrary key type. The registry and the JIT
/// code cache both feed one of these with divisor keys so the metrics
/// exposition can answer "which divisors dominate traffic" without an
/// unbounded per-key counter map.
///
/// Invariants of the algorithm (and what the tests check):
///   - At most K slots are ever allocated; memory is O(K).
///   - Every reported count overestimates the true count by at most the
///     reported per-slot Error, i.e. Count - Error <= true <= Count.
///   - If the stream is skewed so that the true top-K keys each occur
///     more often than the (K+1)-th key plus the maximum error, the
///     identified key *set* is exactly the true top-K.
///   - With capacity >= distinct keys no eviction ever happens, every
///     Error is 0, and counts equal exact reference counts.
///
/// offer() takes an internal mutex: callers on hot paths are expected
/// to sample (the registry offers on its existing 1/64 sampled ops, the
/// JIT cache on compile-or-lookup calls, both far from per-divide).
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_PROF_TOPK_H
#define GMDIV_PROF_TOPK_H

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace gmdiv {
namespace prof {

/// Read the shared sketch capacity knob. GMDIV_TOPK=<n> overrides the
/// caller's default; values outside [1, 4096] are clamped.
inline size_t topKCapacityFromEnv(size_t Default) {
  const char *Env = std::getenv("GMDIV_TOPK");
  if (!Env || !*Env)
    return Default;
  const long V = std::strtol(Env, nullptr, 10);
  if (V < 1)
    return 1;
  if (V > 4096)
    return 4096;
  return static_cast<size_t>(V);
}

template <typename KeyT, typename HashT = std::hash<KeyT>> class TopK {
public:
  struct Item {
    KeyT Key;
    /// Estimated occurrence count (an overestimate by at most Error).
    uint64_t Count = 0;
    /// Count inherited from the evicted slot at admission time; the
    /// true count is bounded below by Count - Error.
    uint64_t Error = 0;
  };

  explicit TopK(size_t Capacity = 32) : Cap(Capacity ? Capacity : 1) {
    Slots.reserve(Cap);
    Index.reserve(Cap);
  }

  /// Credit \p Weight occurrences to \p Key. Weight lets sampled
  /// callers scale back up to an estimate of the unsampled stream
  /// (offer(K, SamplePeriod) once per sampled hit).
  void offer(const KeyT &Key, uint64_t Weight = 1) {
    std::lock_guard<std::mutex> Lock(Mutex);
    TotalOffered += Weight;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Slots[It->second].Count += Weight;
      return;
    }
    if (Slots.size() < Cap) {
      Index.emplace(Key, Slots.size());
      Slots.push_back(Item{Key, Weight, 0});
      return;
    }
    // Space-saving eviction: the new key inherits the minimum slot's
    // count as its error bound.
    size_t Min = 0;
    for (size_t I = 1; I < Slots.size(); ++I)
      if (Slots[I].Count < Slots[Min].Count)
        Min = I;
    ++Evictions;
    Index.erase(Slots[Min].Key);
    const uint64_t Inherited = Slots[Min].Count;
    Slots[Min] = Item{Key, Inherited + Weight, Inherited};
    Index.emplace(Key, Min);
  }

  /// Current contents, sorted by descending estimated count.
  std::vector<Item> items() const {
    std::vector<Item> Out;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Out = Slots;
    }
    std::sort(Out.begin(), Out.end(), [](const Item &A, const Item &B) {
      return A.Count > B.Count;
    });
    return Out;
  }

  size_t capacity() const { return Cap; }

  /// Total weight offered over the sketch's lifetime (exact).
  uint64_t totalOffered() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return TotalOffered;
  }

  /// Number of space-saving evictions (0 means every count is exact).
  uint64_t evictions() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Evictions;
  }

private:
  mutable std::mutex Mutex;
  size_t Cap;
  std::unordered_map<KeyT, size_t, HashT> Index;
  std::vector<Item> Slots;
  uint64_t TotalOffered = 0;
  uint64_t Evictions = 0;
};

} // namespace prof
} // namespace gmdiv

#endif // GMDIV_PROF_TOPK_H
