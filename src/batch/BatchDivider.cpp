//===- batch/BatchDivider.cpp - Facade implementation ---------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Builds the flattened batch state from the scalar dividers — the same
// ChooseMultiplier / Figure 5.2 / §9 precomputation the per-element API
// runs, done once per BatchDivider — and binds the kernel table of the
// selected backend.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchDivider.h"

#include "core/Divider.h"
#include "core/ExactDiv.h"
#include "ops/Bits.h"
#include "telemetry/Stats.h"

#include <cinttypes>
#include <cstdio>

namespace gmdiv {
namespace batch {

// Defined in BatchDispatch.cpp.
const KernelTables &tablesForBackend(Backend B);
void noteBackendSelected(Backend B, const char *Source);

namespace {

template <typename T> UnsignedBatchState<T> buildUnsignedState(T Divisor) {
  UnsignedBatchState<T> S;
  S.Divisor = Divisor;
  const UnsignedDivider<T> Div(Divisor);
  S.MPrime = Div.magic();
  S.Shift1 = Div.preShift();
  S.Shift2 = Div.postShift();
  const ExactUnsignedDivider<T> Exact(Divisor);
  S.Inverse = Exact.inverse();
  S.QMax = Exact.maxQuotient();
  S.ExactShift = Exact.shift();
  S.IsPow2 = isPowerOf2(Divisor);
  S.Pow2Shift = countTrailingZeros(Divisor);
  return S;
}

template <typename T> SignedBatchState<T> buildSignedState(T Divisor) {
  SignedBatchState<T> S;
  S.Divisor = Divisor;
  const SignedDivider<T> Div(Divisor);
  S.MPrime = Div.magic();
  S.ShiftPost = Div.postShift();
  S.DSign = Div.divisorSign();
  return S;
}

template <typename T> const char *laneName() {
  if constexpr (std::is_signed_v<T>)
    return sizeof(T) == 1 ? "i8"
                          : sizeof(T) == 2 ? "i16"
                                           : sizeof(T) == 4 ? "i32" : "i64";
  else
    return sizeof(T) == 1 ? "u8"
                          : sizeof(T) == 2 ? "u16"
                                           : sizeof(T) == 4 ? "u32" : "u64";
}

} // namespace

template <typename T>
BatchDivider<T>::BatchDivider(T Divisor, Backend B)
    : Selected(backendAvailable(B) ? B : Backend::Scalar) {
  if constexpr (IsSigned) {
    State = buildSignedState<T>(Divisor);
    Kernels = tablesForBackend(Selected).template signedFor<T>();
  } else {
    State = buildUnsignedState<T>(Divisor);
    Kernels = tablesForBackend(Selected).template unsignedFor<T>();
  }
  GMDIV_STAT_ADD(batch, dividers_constructed, 1);
  noteBackendSelected(Selected, "divider");
}

template <typename T>
BatchDivider<T>::BatchDivider(T Divisor)
    : BatchDivider(Divisor, activeBackend()) {}

template <typename T> std::string BatchDivider<T>::describe() const {
  char Buf[192];
  if constexpr (IsSigned) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s d=%" PRId64 ": backend=%s, m'=0x%" PRIx64
                  ", sh_post=%d, dsign=%d",
                  laneName<T>(), static_cast<int64_t>(State.Divisor),
                  backendName(Selected), static_cast<uint64_t>(State.MPrime),
                  State.ShiftPost, static_cast<int>(State.DSign));
  } else {
    std::snprintf(Buf, sizeof(Buf),
                  "%s d=%" PRIu64 ": backend=%s, m'=0x%" PRIx64
                  ", sh1=%d, sh2=%d, inverse=0x%" PRIx64 ", qmax=%" PRIu64
                  ", e=%d",
                  laneName<T>(), static_cast<uint64_t>(State.Divisor),
                  backendName(Selected), static_cast<uint64_t>(State.MPrime),
                  State.Shift1, State.Shift2,
                  static_cast<uint64_t>(State.Inverse),
                  static_cast<uint64_t>(State.QMax), State.ExactShift);
  }
  return std::string(Buf);
}

template class BatchDivider<uint8_t>;
template class BatchDivider<uint16_t>;
template class BatchDivider<uint32_t>;
template class BatchDivider<uint64_t>;
template class BatchDivider<int8_t>;
template class BatchDivider<int16_t>;
template class BatchDivider<int32_t>;
template class BatchDivider<int64_t>;

} // namespace batch
} // namespace gmdiv
