//===- batch/BatchSSE2.cpp - 128-bit x86 backend --------------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// SSE2 is part of the x86-64 baseline, so this backend needs no
// per-file flags and no runtime CPU check. It only defines the VecOps
// trait; every kernel body lives in BatchX86Kernels.h, shared with the
// AVX2 instantiation.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchKernels.h"

#if !defined(GMDIV_FORCE_SCALAR_BATCH) && \
    (defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__))

#include "batch/BatchX86Kernels.h"

#include <emmintrin.h>

namespace gmdiv {
namespace batch {
namespace {

struct Sse2Ops {
  using V = __m128i;
  static constexpr int VectorBytes = 16;

  static V load(const void *P) {
    return _mm_loadu_si128(static_cast<const __m128i *>(P));
  }
  static void store(void *P, V A) {
    _mm_storeu_si128(static_cast<__m128i *>(P), A);
  }

  static V zero() { return _mm_setzero_si128(); }
  static V ones() { return _mm_set1_epi32(-1); }
  static V set1_8(uint8_t X) { return _mm_set1_epi8(static_cast<char>(X)); }
  static V set1_16(uint16_t X) {
    return _mm_set1_epi16(static_cast<short>(X));
  }
  static V set1_32(uint32_t X) { return _mm_set1_epi32(static_cast<int>(X)); }
  static V set1_64(uint64_t X) {
    return _mm_set1_epi64x(static_cast<long long>(X));
  }

  static V add8(V A, V B) { return _mm_add_epi8(A, B); }
  static V add16(V A, V B) { return _mm_add_epi16(A, B); }
  static V add32(V A, V B) { return _mm_add_epi32(A, B); }
  static V add64(V A, V B) { return _mm_add_epi64(A, B); }
  static V sub8(V A, V B) { return _mm_sub_epi8(A, B); }
  static V sub16(V A, V B) { return _mm_sub_epi16(A, B); }
  static V sub32(V A, V B) { return _mm_sub_epi32(A, B); }
  static V sub64(V A, V B) { return _mm_sub_epi64(A, B); }

  static V and_(V A, V B) { return _mm_and_si128(A, B); }
  static V or_(V A, V B) { return _mm_or_si128(A, B); }
  static V xor_(V A, V B) { return _mm_xor_si128(A, B); }
  /// B & ~A (intrinsic operand order).
  static V andnot(V A, V B) { return _mm_andnot_si128(A, B); }

  static V srl16(V A, int C) { return _mm_srl_epi16(A, count(C)); }
  static V srl32(V A, int C) { return _mm_srl_epi32(A, count(C)); }
  static V srl64(V A, int C) { return _mm_srl_epi64(A, count(C)); }
  static V sll16(V A, int C) { return _mm_sll_epi16(A, count(C)); }
  static V sll32(V A, int C) { return _mm_sll_epi32(A, count(C)); }
  static V sll64(V A, int C) { return _mm_sll_epi64(A, count(C)); }
  static V sra16(V A, int C) { return _mm_sra_epi16(A, count(C)); }
  static V sra32(V A, int C) { return _mm_sra_epi32(A, count(C)); }

  static V mullo16(V A, V B) { return _mm_mullo_epi16(A, B); }
  static V mulhi_epu16(V A, V B) { return _mm_mulhi_epu16(A, B); }
  static V mulhi_epi16(V A, V B) { return _mm_mulhi_epi16(A, B); }
  /// Widening 32x32->64 multiply of the even 32-bit lanes.
  static V mul_epu32(V A, V B) { return _mm_mul_epu32(A, B); }

  static V cmpeq32(V A, V B) { return _mm_cmpeq_epi32(A, B); }
  static V cmpgt8(V A, V B) { return _mm_cmpgt_epi8(A, B); }
  static V cmpgt16(V A, V B) { return _mm_cmpgt_epi16(A, B); }
  static V cmpgt32(V A, V B) { return _mm_cmpgt_epi32(A, B); }

  /// Odd 32-bit lane duplicated over each 64-bit element: (3,3,1,1).
  static V dupOdd32(V A) {
    return _mm_shuffle_epi32(A, _MM_SHUFFLE(3, 3, 1, 1));
  }
  /// 32-bit lanes swapped within each 64-bit element: (2,3,0,1).
  static V swapPairs32(V A) {
    return _mm_shuffle_epi32(A, _MM_SHUFFLE(2, 3, 0, 1));
  }

private:
  static __m128i count(int C) { return _mm_cvtsi32_si128(C); }
};

} // namespace

const KernelTables *sse2Kernels() {
  static const KernelTables Tables = x86::makeTables<Sse2Ops>();
  return &Tables;
}

} // namespace batch
} // namespace gmdiv

#else // non-x86 build or forced-scalar build

namespace gmdiv {
namespace batch {
const KernelTables *sse2Kernels() { return nullptr; }
} // namespace batch
} // namespace gmdiv

#endif
