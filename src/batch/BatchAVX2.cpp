//===- batch/BatchAVX2.cpp - 256-bit x86 backend --------------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// This TU alone is compiled with -mavx2 (see src/CMakeLists.txt), so no
// AVX2 instruction can leak into code that runs before the dispatcher's
// CPUID check. Only the VecOps trait lives here; the kernel bodies are
// the shared templates in BatchX86Kernels.h. All shuffles used by the
// kernels stay within 128-bit halves, so the in-lane semantics of the
// AVX2 shuffle instructions match the SSE2 ones lane-for-lane.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchKernels.h"

#if !defined(GMDIV_FORCE_SCALAR_BATCH) && defined(__AVX2__)

#include "batch/BatchX86Kernels.h"

#include <immintrin.h>

namespace gmdiv {
namespace batch {
namespace {

struct Avx2Ops {
  using V = __m256i;
  static constexpr int VectorBytes = 32;

  static V load(const void *P) {
    return _mm256_loadu_si256(static_cast<const __m256i *>(P));
  }
  static void store(void *P, V A) {
    _mm256_storeu_si256(static_cast<__m256i *>(P), A);
  }

  static V zero() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi32(-1); }
  static V set1_8(uint8_t X) {
    return _mm256_set1_epi8(static_cast<char>(X));
  }
  static V set1_16(uint16_t X) {
    return _mm256_set1_epi16(static_cast<short>(X));
  }
  static V set1_32(uint32_t X) {
    return _mm256_set1_epi32(static_cast<int>(X));
  }
  static V set1_64(uint64_t X) {
    return _mm256_set1_epi64x(static_cast<long long>(X));
  }

  static V add8(V A, V B) { return _mm256_add_epi8(A, B); }
  static V add16(V A, V B) { return _mm256_add_epi16(A, B); }
  static V add32(V A, V B) { return _mm256_add_epi32(A, B); }
  static V add64(V A, V B) { return _mm256_add_epi64(A, B); }
  static V sub8(V A, V B) { return _mm256_sub_epi8(A, B); }
  static V sub16(V A, V B) { return _mm256_sub_epi16(A, B); }
  static V sub32(V A, V B) { return _mm256_sub_epi32(A, B); }
  static V sub64(V A, V B) { return _mm256_sub_epi64(A, B); }

  static V and_(V A, V B) { return _mm256_and_si256(A, B); }
  static V or_(V A, V B) { return _mm256_or_si256(A, B); }
  static V xor_(V A, V B) { return _mm256_xor_si256(A, B); }
  /// B & ~A (intrinsic operand order).
  static V andnot(V A, V B) { return _mm256_andnot_si256(A, B); }

  static V srl16(V A, int C) { return _mm256_srl_epi16(A, count(C)); }
  static V srl32(V A, int C) { return _mm256_srl_epi32(A, count(C)); }
  static V srl64(V A, int C) { return _mm256_srl_epi64(A, count(C)); }
  static V sll16(V A, int C) { return _mm256_sll_epi16(A, count(C)); }
  static V sll32(V A, int C) { return _mm256_sll_epi32(A, count(C)); }
  static V sll64(V A, int C) { return _mm256_sll_epi64(A, count(C)); }
  static V sra16(V A, int C) { return _mm256_sra_epi16(A, count(C)); }
  static V sra32(V A, int C) { return _mm256_sra_epi32(A, count(C)); }

  static V mullo16(V A, V B) { return _mm256_mullo_epi16(A, B); }
  static V mulhi_epu16(V A, V B) { return _mm256_mulhi_epu16(A, B); }
  static V mulhi_epi16(V A, V B) { return _mm256_mulhi_epi16(A, B); }
  /// Widening 32x32->64 multiply of the even 32-bit lanes.
  static V mul_epu32(V A, V B) { return _mm256_mul_epu32(A, B); }

  static V cmpeq32(V A, V B) { return _mm256_cmpeq_epi32(A, B); }
  static V cmpgt8(V A, V B) { return _mm256_cmpgt_epi8(A, B); }
  static V cmpgt16(V A, V B) { return _mm256_cmpgt_epi16(A, B); }
  static V cmpgt32(V A, V B) { return _mm256_cmpgt_epi32(A, B); }

  /// Odd 32-bit lane duplicated over each 64-bit element (in-lane).
  static V dupOdd32(V A) {
    return _mm256_shuffle_epi32(A, _MM_SHUFFLE(3, 3, 1, 1));
  }
  /// 32-bit lanes swapped within each 64-bit element (in-lane).
  static V swapPairs32(V A) {
    return _mm256_shuffle_epi32(A, _MM_SHUFFLE(2, 3, 0, 1));
  }

private:
  static __m128i count(int C) { return _mm_cvtsi32_si128(C); }
};

} // namespace

const KernelTables *avx2Kernels() {
  static const KernelTables Tables = x86::makeTables<Avx2Ops>();
  return &Tables;
}

} // namespace batch
} // namespace gmdiv

#else // not compiled with AVX2 enabled, or forced-scalar build

namespace gmdiv {
namespace batch {
const KernelTables *avx2Kernels() { return nullptr; }
} // namespace batch
} // namespace gmdiv

#endif
