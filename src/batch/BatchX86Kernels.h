//===- batch/BatchX86Kernels.h - Shared x86 SIMD kernel templates -*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 4.1/5.1 sequences as width-generic vector code, templated
/// over a VecOps trait so BatchSSE2.cpp (128-bit) and BatchAVX2.cpp
/// (256-bit, compiled with -mavx2) instantiate identical algorithms.
///
/// Per-lane MULUH/MULSH follow the Highway/NumPy intdiv idiom:
///   8-bit   promote to 16-bit sublanes, MULLO, take the high byte
///   16-bit  native mulhi instructions
///   32-bit  even/odd _mm*_mul_epu32 widening splits
///   64-bit  four-partial-product decomposition over mul_epu32
/// Variable shifts are uniform per batch (the shift count is part of
/// the divisor state), so the *_srl_epi* forms with a scalar count
/// suffice everywhere; 8-bit shifts are emulated with 16-bit shifts
/// plus byte masks.
///
/// Only included by the backend TUs; everything is internal.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_BATCH_BATCHX86KERNELS_H
#define GMDIV_BATCH_BATCHX86KERNELS_H

#include "batch/BatchKernels.h"

#include <cstring>

namespace gmdiv {
namespace batch {
namespace x86 {

/// Width-generic wrappers over a VecOps trait. All `int` shift counts
/// are uniform (taken from the divisor state, 0 <= count < lane bits).
template <class Ops> struct Vec {
  using V = typename Ops::V;

  template <typename T> static constexpr size_t lanes() {
    return Ops::VectorBytes / sizeof(T);
  }

  template <typename T> static V set1(T Value) {
    if constexpr (sizeof(T) == 1)
      return Ops::set1_8(static_cast<uint8_t>(Value));
    else if constexpr (sizeof(T) == 2)
      return Ops::set1_16(static_cast<uint16_t>(Value));
    else if constexpr (sizeof(T) == 4)
      return Ops::set1_32(static_cast<uint32_t>(Value));
    else
      return Ops::set1_64(static_cast<uint64_t>(Value));
  }

  template <typename T> static V add(V A, V B) {
    if constexpr (sizeof(T) == 1)
      return Ops::add8(A, B);
    else if constexpr (sizeof(T) == 2)
      return Ops::add16(A, B);
    else if constexpr (sizeof(T) == 4)
      return Ops::add32(A, B);
    else
      return Ops::add64(A, B);
  }

  template <typename T> static V sub(V A, V B) {
    if constexpr (sizeof(T) == 1)
      return Ops::sub8(A, B);
    else if constexpr (sizeof(T) == 2)
      return Ops::sub16(A, B);
    else if constexpr (sizeof(T) == 4)
      return Ops::sub32(A, B);
    else
      return Ops::sub64(A, B);
  }

  static V notV(V A) { return Ops::xor_(A, Ops::ones()); }

  /// Logical right shift by a uniform count, per T-wide lane.
  template <typename T> static V srl(V A, int Count) {
    if constexpr (sizeof(T) == 1) {
      if (Count == 0)
        return A;
      return Ops::and_(Ops::srl16(A, Count),
                       Ops::set1_8(static_cast<uint8_t>(0xFF >> Count)));
    } else if constexpr (sizeof(T) == 2)
      return Ops::srl16(A, Count);
    else if constexpr (sizeof(T) == 4)
      return Ops::srl32(A, Count);
    else
      return Ops::srl64(A, Count);
  }

  /// Logical left shift by a uniform count, per T-wide lane.
  template <typename T> static V sll(V A, int Count) {
    if constexpr (sizeof(T) == 1) {
      if (Count == 0)
        return A;
      return Ops::and_(
          Ops::sll16(A, Count),
          Ops::set1_8(static_cast<uint8_t>((0xFF << Count) & 0xFF)));
    } else if constexpr (sizeof(T) == 2)
      return Ops::sll16(A, Count);
    else if constexpr (sizeof(T) == 4)
      return Ops::sll32(A, Count);
    else
      return Ops::sll64(A, Count);
  }

  /// Arithmetic right shift by a uniform count. 8-bit lanes use the
  /// xor-bias trick; 64-bit lanes the same trick over srl64.
  template <typename T> static V sra(V A, int Count) {
    if constexpr (sizeof(T) == 1) {
      if (Count == 0)
        return A;
      const V Bias = Ops::set1_8(static_cast<uint8_t>(0x80 >> Count));
      return Ops::sub8(Ops::xor_(srl<T>(A, Count), Bias), Bias);
    } else if constexpr (sizeof(T) == 2)
      return Ops::sra16(A, Count);
    else if constexpr (sizeof(T) == 4)
      return Ops::sra32(A, Count);
    else {
      if (Count == 0)
        return A;
      const V Bias = Ops::srl64(Ops::set1_64(0x8000000000000000ull), Count);
      return Ops::sub64(Ops::xor_(Ops::srl64(A, Count), Bias), Bias);
    }
  }

  /// XSIGN per lane: all-ones for negative lanes, zero otherwise.
  template <typename T> static V xsignV(V A) {
    if constexpr (sizeof(T) == 1)
      return Ops::cmpgt8(Ops::zero(), A);
    else if constexpr (sizeof(T) == 2)
      return Ops::sra16(A, 15);
    else if constexpr (sizeof(T) == 4)
      return Ops::sra32(A, 31);
    else
      return Ops::sra32(Ops::dupOdd32(A), 31);
  }

  /// Signed greater-than-zero mask (floor/ceil fixups).
  template <typename T> static V gtZero(V A) {
    if constexpr (sizeof(T) == 1)
      return Ops::cmpgt8(A, Ops::zero());
    else if constexpr (sizeof(T) == 2)
      return Ops::cmpgt16(A, Ops::zero());
    else if constexpr (sizeof(T) == 4)
      return Ops::cmpgt32(A, Ops::zero());
    else {
      // r > 0  <=>  r != 0 and r not negative.
      const V Eq32 = Ops::cmpeq32(A, Ops::zero());
      const V Zero64 = Ops::and_(Eq32, Ops::swapPairs32(Eq32));
      return Ops::andnot(Ops::or_(xsignV<T>(A), Zero64), Ops::ones());
    }
  }

  /// MULUH: upper lane-half of the unsigned product with a broadcast
  /// multiplier (every lane of M holds the same value).
  template <typename T> static V muluh(V X, V M) {
    if constexpr (sizeof(T) == 1) {
      const V ByteLo = Ops::set1_16(0x00FF);
      const V M16 = Ops::and_(M, ByteLo);
      const V ProdEven = Ops::mullo16(Ops::and_(X, ByteLo), M16);
      const V ProdOdd = Ops::mullo16(Ops::srl16(X, 8), M16);
      return Ops::or_(Ops::srl16(ProdEven, 8),
                      Ops::and_(ProdOdd, Ops::set1_16(0xFF00)));
    } else if constexpr (sizeof(T) == 2)
      return Ops::mulhi_epu16(X, M);
    else if constexpr (sizeof(T) == 4) {
      const V ProdEven = Ops::mul_epu32(X, M);
      const V ProdOdd = Ops::mul_epu32(Ops::srl64(X, 32), M);
      return Ops::or_(
          Ops::srl64(ProdEven, 32),
          Ops::and_(ProdOdd, Ops::set1_64(0xFFFFFFFF00000000ull)));
    } else {
      // Four 32x32 partial products with carry propagation.
      const V XH = Ops::srl64(X, 32);
      const V YH = Ops::srl64(M, 32);
      const V LoLo = Ops::mul_epu32(X, M);
      const V HiLo = Ops::mul_epu32(XH, M);
      const V LoHi = Ops::mul_epu32(X, YH);
      const V HiHi = Ops::mul_epu32(XH, YH);
      const V Lo32 = Ops::set1_64(0x00000000FFFFFFFFull);
      const V Mid = Ops::add64(HiLo, Ops::srl64(LoLo, 32));
      const V MidLo = Ops::add64(Ops::and_(Mid, Lo32), LoHi);
      return Ops::add64(HiHi, Ops::add64(Ops::srl64(Mid, 32),
                                         Ops::srl64(MidLo, 32)));
    }
  }

  /// MULSH with a broadcast multiplier, via the §3 identity
  /// MULSH(x, m) = MULUH(x, m) - (m & XSIGN(x)) - (x & XSIGN(m));
  /// XSIGN(m) is a per-batch constant, so \p MNeg carries it. 8/16-bit
  /// lanes use the widening/native signed forms directly.
  template <typename T> static V mulsh(V X, V M, bool MNeg) {
    if constexpr (sizeof(T) == 1) {
      const V ByteLo = Ops::set1_16(0x00FF);
      const V M16 = Ops::sra16(Ops::sll16(Ops::and_(M, ByteLo), 8), 8);
      const V Bias = Ops::set1_16(0x0080);
      const V EvenX =
          Ops::sub16(Ops::xor_(Ops::and_(X, ByteLo), Bias), Bias);
      const V ProdEven = Ops::mullo16(EvenX, M16);
      const V ProdOdd = Ops::mullo16(Ops::sra16(X, 8), M16);
      return Ops::or_(Ops::and_(Ops::srl16(ProdEven, 8), ByteLo),
                      Ops::and_(ProdOdd, Ops::set1_16(0xFF00)));
    } else if constexpr (sizeof(T) == 2) {
      (void)MNeg;
      return Ops::mulhi_epi16(X, M);
    } else {
      V High = muluh<T>(X, M);
      High = sub<T>(High, Ops::and_(M, xsignV<T>(X)));
      if (MNeg)
        High = sub<T>(High, X);
      return High;
    }
  }

  /// MULL with a broadcast multiplier.
  template <typename T> static V mullo(V X, V M) {
    if constexpr (sizeof(T) == 1) {
      const V ByteLo = Ops::set1_16(0x00FF);
      const V M16 = Ops::and_(M, ByteLo);
      const V ProdEven = Ops::mullo16(Ops::and_(X, ByteLo), M16);
      const V ProdOdd = Ops::mullo16(Ops::srl16(X, 8), M16);
      return Ops::or_(Ops::and_(ProdEven, ByteLo), Ops::sll16(ProdOdd, 8));
    } else if constexpr (sizeof(T) == 2)
      return Ops::mullo16(X, M);
    else if constexpr (sizeof(T) == 4) {
      const V ProdEven = Ops::mul_epu32(X, M);
      const V ProdOdd = Ops::mul_epu32(Ops::srl64(X, 32), M);
      return Ops::or_(Ops::and_(ProdEven, Ops::set1_64(0xFFFFFFFFull)),
                      Ops::sll64(ProdOdd, 32));
    } else {
      const V Cross = Ops::add64(Ops::mul_epu32(Ops::srl64(X, 32), M),
                                 Ops::mul_epu32(X, Ops::srl64(M, 32)));
      return Ops::add64(Ops::mul_epu32(X, M), Ops::sll64(Cross, 32));
    }
  }

  /// Signed greater-than mask (divisibility's unsigned compare after a
  /// sign-bit flip). 64-bit is never needed: the 64-bit divisibility
  /// kernel stays scalar.
  template <typename T> static V cmpgt(V A, V B) {
    if constexpr (sizeof(T) == 1)
      return Ops::cmpgt8(A, B);
    else if constexpr (sizeof(T) == 2)
      return Ops::cmpgt16(A, B);
    else
      return Ops::cmpgt32(A, B);
  }
};

//===----------------------------------------------------------------------===//
// Vector bodies of the paper sequences
//===----------------------------------------------------------------------===//

/// Figure 4.1 on one vector: q = SRL(t1 + SRL(n - t1, sh1), sh2).
template <class Ops, typename T>
inline typename Ops::V divVecU(const UnsignedBatchState<T> &S,
                               typename Ops::V X, typename Ops::V MB) {
  using W = Vec<Ops>;
  const auto T1 = W::template muluh<T>(X, MB);
  const auto Diff = W::template sub<T>(X, T1);
  const auto Sum =
      W::template add<T>(T1, W::template srl<T>(Diff, S.Shift1));
  return W::template srl<T>(Sum, S.Shift2);
}

/// Figure 5.1 on one vector: q = EOR(SRA(n + MULSH(m', n), sh) -
/// XSIGN(n), dsign) - dsign.
template <class Ops, typename T>
inline typename Ops::V divVecS(const SignedBatchState<T> &S,
                               typename Ops::V X, typename Ops::V MB,
                               bool MNeg, typename Ops::V DMask) {
  using W = Vec<Ops>;
  const auto Q0 = W::template add<T>(X, W::template mulsh<T>(X, MB, MNeg));
  const auto Shifted = W::template sra<T>(Q0, S.ShiftPost);
  const auto Q1 = W::template sub<T>(Shifted, W::template xsignV<T>(X));
  return W::template sub<T>(Ops::xor_(Q1, DMask), DMask);
}

//===----------------------------------------------------------------------===//
// Array kernels (vector body + scalar tail)
//===----------------------------------------------------------------------===//

template <class Ops, typename T>
void divideSimdU(const UnsignedBatchState<T> &S, const T *In, T *Out,
                 size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(S.MPrime);
  size_t I = 0;
  for (; I + L <= Count; I += L)
    Ops::store(Out + I, divVecU<Ops, T>(S, Ops::load(In + I), MB));
  for (; I < Count; ++I)
    Out[I] = divideOneU(S, In[I]);
}

template <class Ops, typename T>
void remainderSimdU(const UnsignedBatchState<T> &S, const T *In, T *Out,
                    size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(S.MPrime);
  const auto DB = W::template set1<T>(S.Divisor);
  size_t I = 0;
  for (; I + L <= Count; I += L) {
    const auto X = Ops::load(In + I);
    const auto Q = divVecU<Ops, T>(S, X, MB);
    Ops::store(Out + I,
               W::template sub<T>(X, W::template mullo<T>(Q, DB)));
  }
  for (; I < Count; ++I)
    Out[I] = remainderOneU(S, In[I]);
}

template <class Ops, typename T>
void divRemSimdU(const UnsignedBatchState<T> &S, const T *In, T *Quot,
                 T *Rem, size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(S.MPrime);
  const auto DB = W::template set1<T>(S.Divisor);
  size_t I = 0;
  for (; I + L <= Count; I += L) {
    const auto X = Ops::load(In + I);
    const auto Q = divVecU<Ops, T>(S, X, MB);
    Ops::store(Quot + I, Q);
    Ops::store(Rem + I,
               W::template sub<T>(X, W::template mullo<T>(Q, DB)));
  }
  for (; I < Count; ++I) {
    const T Q = divideOneU(S, In[I]);
    Quot[I] = Q;
    Rem[I] = static_cast<T>(In[I] - mulL(Q, S.Divisor));
  }
}

/// §9 filter: ROR(MULL(d_inv, n), e) <= qmax, unsigned compare via a
/// sign-bit flip. 8/16/32-bit lanes only (64-bit table entries point at
/// the scalar loop below).
template <class Ops, typename T>
void divisibleSimdU(const UnsignedBatchState<T> &S, const T *In,
                    uint8_t *Out, size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  constexpr int N = static_cast<int>(sizeof(T) * 8);
  constexpr T SignBit = static_cast<T>(T{1} << (N - 1));
  const auto InvB = W::template set1<T>(S.Inverse);
  const auto SignB = W::template set1<T>(SignBit);
  const auto QMaxFlipped =
      W::template set1<T>(static_cast<T>(S.QMax ^ SignBit));
  const auto OneB = W::template set1<T>(static_cast<T>(1));
  T Tmp[Ops::VectorBytes / sizeof(T)];
  size_t I = 0;
  for (; I + L <= Count; I += L) {
    const auto Q0 = W::template mullo<T>(Ops::load(In + I), InvB);
    const auto Ror =
        S.ExactShift == 0
            ? Q0
            : Ops::or_(W::template srl<T>(Q0, S.ExactShift),
                       W::template sll<T>(Q0, N - S.ExactShift));
    const auto NotDiv =
        W::template cmpgt<T>(Ops::xor_(Ror, SignB), QMaxFlipped);
    Ops::store(Tmp, Ops::andnot(NotDiv, OneB));
    for (size_t J = 0; J < L; ++J)
      Out[I + J] = static_cast<uint8_t>(Tmp[J]);
  }
  for (; I < Count; ++I)
    Out[I] = divisibleOneU(S, In[I]) ? 1 : 0;
}

/// Scalar fallback registered for the 64-bit divisibility entry.
template <typename T>
void divisibleScalarU(const UnsignedBatchState<T> &S, const T *In,
                      uint8_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = divisibleOneU(S, In[I]) ? 1 : 0;
}

template <class Ops, typename T>
void divideSimdS(const SignedBatchState<T> &S, const T *In, T *Out,
                 size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(static_cast<T>(S.MPrime));
  const bool MNeg = static_cast<T>(S.MPrime) < 0;
  const auto DMask = W::template set1<T>(S.DSign);
  size_t I = 0;
  for (; I + L <= Count; I += L)
    Ops::store(Out + I,
               divVecS<Ops, T>(S, Ops::load(In + I), MB, MNeg, DMask));
  for (; I < Count; ++I)
    Out[I] = divideOneS(S, In[I]);
}

template <class Ops, typename T>
void remainderSimdS(const SignedBatchState<T> &S, const T *In, T *Out,
                    size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(static_cast<T>(S.MPrime));
  const bool MNeg = static_cast<T>(S.MPrime) < 0;
  const auto DMask = W::template set1<T>(S.DSign);
  const auto DB = W::template set1<T>(S.Divisor);
  size_t I = 0;
  for (; I + L <= Count; I += L) {
    const auto X = Ops::load(In + I);
    const auto Q = divVecS<Ops, T>(S, X, MB, MNeg, DMask);
    Ops::store(Out + I,
               W::template sub<T>(X, W::template mullo<T>(Q, DB)));
  }
  for (; I < Count; ++I)
    Out[I] = remainderOneS(S, In[I]);
}

template <class Ops, typename T>
void divRemSimdS(const SignedBatchState<T> &S, const T *In, T *Quot, T *Rem,
                 size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(static_cast<T>(S.MPrime));
  const bool MNeg = static_cast<T>(S.MPrime) < 0;
  const auto DMask = W::template set1<T>(S.DSign);
  const auto DB = W::template set1<T>(S.Divisor);
  size_t I = 0;
  for (; I + L <= Count; I += L) {
    const auto X = Ops::load(In + I);
    const auto Q = divVecS<Ops, T>(S, X, MB, MNeg, DMask);
    Ops::store(Quot + I, Q);
    Ops::store(Rem + I,
               W::template sub<T>(X, W::template mullo<T>(Q, DB)));
  }
  for (; I < Count; ++I) {
    const T Q = divideOneS(S, In[I]);
    Quot[I] = Q;
    Rem[I] = remainderOneS(S, In[I]);
  }
}

/// Floor (Round = -1) / ceil (Round = +1): trunc quotient plus the
/// branch-free fixup. The divisor's sign is a per-batch constant, so
/// the fixup mask is just "r < 0" or "r > 0".
template <class Ops, typename T, int Round>
void roundDivSimdS(const SignedBatchState<T> &S, const T *In, T *Out,
                   size_t Count) {
  using W = Vec<Ops>;
  constexpr size_t L = W::template lanes<T>();
  const auto MB = W::template set1<T>(static_cast<T>(S.MPrime));
  const bool MNeg = static_cast<T>(S.MPrime) < 0;
  const auto DMask = W::template set1<T>(S.DSign);
  const auto DB = W::template set1<T>(S.Divisor);
  // floor fixes lanes whose remainder sign differs from d's, ceil
  // lanes whose remainder sign matches.
  const bool FixNegativeRem = Round < 0 ? S.Divisor > 0 : S.Divisor < 0;
  size_t I = 0;
  for (; I + L <= Count; I += L) {
    const auto X = Ops::load(In + I);
    auto Q = divVecS<Ops, T>(S, X, MB, MNeg, DMask);
    const auto R = W::template sub<T>(X, W::template mullo<T>(Q, DB));
    const auto Fix =
        FixNegativeRem ? W::template xsignV<T>(R) : W::template gtZero<T>(R);
    // Fix lanes are all-ones (-1): floor adds the mask, ceil subtracts.
    Q = Round < 0 ? W::template add<T>(Q, Fix) : W::template sub<T>(Q, Fix);
    Ops::store(Out + I, Q);
  }
  for (; I < Count; ++I)
    Out[I] = Round < 0 ? floorDivideOneS(S, In[I]) : ceilDivideOneS(S, In[I]);
}

/// Builds the full table for one VecOps instantiation.
template <class Ops> KernelTables makeTables() {
  KernelTables Tables;
  Tables.U8 = {divideSimdU<Ops, uint8_t>, remainderSimdU<Ops, uint8_t>,
               divRemSimdU<Ops, uint8_t>, divisibleSimdU<Ops, uint8_t>};
  Tables.U16 = {divideSimdU<Ops, uint16_t>, remainderSimdU<Ops, uint16_t>,
                divRemSimdU<Ops, uint16_t>, divisibleSimdU<Ops, uint16_t>};
  Tables.U32 = {divideSimdU<Ops, uint32_t>, remainderSimdU<Ops, uint32_t>,
                divRemSimdU<Ops, uint32_t>, divisibleSimdU<Ops, uint32_t>};
  Tables.U64 = {divideSimdU<Ops, uint64_t>, remainderSimdU<Ops, uint64_t>,
                divRemSimdU<Ops, uint64_t>, divisibleScalarU<uint64_t>};
  Tables.S8 = {divideSimdS<Ops, int8_t>, remainderSimdS<Ops, int8_t>,
               divRemSimdS<Ops, int8_t>, roundDivSimdS<Ops, int8_t, -1>,
               roundDivSimdS<Ops, int8_t, 1>};
  Tables.S16 = {divideSimdS<Ops, int16_t>, remainderSimdS<Ops, int16_t>,
                divRemSimdS<Ops, int16_t>, roundDivSimdS<Ops, int16_t, -1>,
                roundDivSimdS<Ops, int16_t, 1>};
  Tables.S32 = {divideSimdS<Ops, int32_t>, remainderSimdS<Ops, int32_t>,
                divRemSimdS<Ops, int32_t>, roundDivSimdS<Ops, int32_t, -1>,
                roundDivSimdS<Ops, int32_t, 1>};
  Tables.S64 = {divideSimdS<Ops, int64_t>, remainderSimdS<Ops, int64_t>,
                divRemSimdS<Ops, int64_t>, roundDivSimdS<Ops, int64_t, -1>,
                roundDivSimdS<Ops, int64_t, 1>};
  return Tables;
}

} // namespace x86
} // namespace batch
} // namespace gmdiv

#endif // GMDIV_BATCH_BATCHX86KERNELS_H
