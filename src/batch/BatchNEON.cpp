//===- batch/BatchNEON.cpp - 128-bit AArch64 backend ----------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// NEON kernels for 8/16/32-bit lanes: MULUH/MULSH come from the
// widening vmull_* multiplies plus a vshrn_* narrowing shift, and all
// post-shifts use vshlq with a negative (runtime) count. 64-bit lanes
// have no widening multiply on NEON, so — as in Highway's
// contrib/intdiv — their table entries are plain scalar loops over the
// per-element reference sequences.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchKernels.h"

#if !defined(GMDIV_FORCE_SCALAR_BATCH) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__))

#include <arm_neon.h>

namespace gmdiv {
namespace batch {
namespace {

/// Uniform names over the width-suffixed NEON intrinsics. `shr` is a
/// logical shift for unsigned specializations and arithmetic for
/// signed ones (both via vshlq with a negated count, which supports
/// runtime shift amounts).
template <typename T> struct NT;

template <> struct NT<uint8_t> {
  using V = uint8x16_t;
  static constexpr size_t Lanes = 16;
  static constexpr int Bits = 8;
  static V load(const uint8_t *P) { return vld1q_u8(P); }
  static void store(uint8_t *P, V A) { vst1q_u8(P, A); }
  static V dup(uint8_t X) { return vdupq_n_u8(X); }
  static V add(V A, V B) { return vaddq_u8(A, B); }
  static V sub(V A, V B) { return vsubq_u8(A, B); }
  static V mul(V A, V B) { return vmulq_u8(A, B); }
  static V orr(V A, V B) { return vorrq_u8(A, B); }
  static V and_(V A, V B) { return vandq_u8(A, B); }
  static V shr(V A, int C) { return vshlq_u8(A, vdupq_n_s8(int8_t(-C))); }
  static V shl(V A, int C) { return vshlq_u8(A, vdupq_n_s8(int8_t(C))); }
  static V cmple(V A, V B) { return vcleq_u8(A, B); }
  static V mulhi(V X, V M) {
    const uint16x8_t Lo = vmull_u8(vget_low_u8(X), vget_low_u8(M));
    const uint16x8_t Hi = vmull_u8(vget_high_u8(X), vget_high_u8(M));
    return vcombine_u8(vshrn_n_u16(Lo, 8), vshrn_n_u16(Hi, 8));
  }
};

template <> struct NT<uint16_t> {
  using V = uint16x8_t;
  static constexpr size_t Lanes = 8;
  static constexpr int Bits = 16;
  static V load(const uint16_t *P) { return vld1q_u16(P); }
  static void store(uint16_t *P, V A) { vst1q_u16(P, A); }
  static V dup(uint16_t X) { return vdupq_n_u16(X); }
  static V add(V A, V B) { return vaddq_u16(A, B); }
  static V sub(V A, V B) { return vsubq_u16(A, B); }
  static V mul(V A, V B) { return vmulq_u16(A, B); }
  static V orr(V A, V B) { return vorrq_u16(A, B); }
  static V and_(V A, V B) { return vandq_u16(A, B); }
  static V shr(V A, int C) { return vshlq_u16(A, vdupq_n_s16(int16_t(-C))); }
  static V shl(V A, int C) { return vshlq_u16(A, vdupq_n_s16(int16_t(C))); }
  static V cmple(V A, V B) { return vcleq_u16(A, B); }
  static V mulhi(V X, V M) {
    const uint32x4_t Lo = vmull_u16(vget_low_u16(X), vget_low_u16(M));
    const uint32x4_t Hi = vmull_u16(vget_high_u16(X), vget_high_u16(M));
    return vcombine_u16(vshrn_n_u32(Lo, 16), vshrn_n_u32(Hi, 16));
  }
};

template <> struct NT<uint32_t> {
  using V = uint32x4_t;
  static constexpr size_t Lanes = 4;
  static constexpr int Bits = 32;
  static V load(const uint32_t *P) { return vld1q_u32(P); }
  static void store(uint32_t *P, V A) { vst1q_u32(P, A); }
  static V dup(uint32_t X) { return vdupq_n_u32(X); }
  static V add(V A, V B) { return vaddq_u32(A, B); }
  static V sub(V A, V B) { return vsubq_u32(A, B); }
  static V mul(V A, V B) { return vmulq_u32(A, B); }
  static V orr(V A, V B) { return vorrq_u32(A, B); }
  static V and_(V A, V B) { return vandq_u32(A, B); }
  static V shr(V A, int C) { return vshlq_u32(A, vdupq_n_s32(-C)); }
  static V shl(V A, int C) { return vshlq_u32(A, vdupq_n_s32(C)); }
  static V cmple(V A, V B) { return vcleq_u32(A, B); }
  static V mulhi(V X, V M) {
    const uint64x2_t Lo = vmull_u32(vget_low_u32(X), vget_low_u32(M));
    const uint64x2_t Hi = vmull_u32(vget_high_u32(X), vget_high_u32(M));
    return vcombine_u32(vshrn_n_u64(Lo, 32), vshrn_n_u64(Hi, 32));
  }
};

template <> struct NT<int8_t> {
  using V = int8x16_t;
  static constexpr size_t Lanes = 16;
  static constexpr int Bits = 8;
  static V load(const int8_t *P) { return vld1q_s8(P); }
  static void store(int8_t *P, V A) { vst1q_s8(P, A); }
  static V dup(int8_t X) { return vdupq_n_s8(X); }
  static V add(V A, V B) { return vaddq_s8(A, B); }
  static V sub(V A, V B) { return vsubq_s8(A, B); }
  static V mul(V A, V B) { return vmulq_s8(A, B); }
  static V eor(V A, V B) { return veorq_s8(A, B); }
  static V shr(V A, int C) { return vshlq_s8(A, vdupq_n_s8(int8_t(-C))); }
  static V ltzMask(V A) {
    return vreinterpretq_s8_u8(vcltq_s8(A, vdupq_n_s8(0)));
  }
  static V gtzMask(V A) {
    return vreinterpretq_s8_u8(vcgtq_s8(A, vdupq_n_s8(0)));
  }
  static V mulhi(V X, V M) {
    const int16x8_t Lo = vmull_s8(vget_low_s8(X), vget_low_s8(M));
    const int16x8_t Hi = vmull_s8(vget_high_s8(X), vget_high_s8(M));
    return vcombine_s8(vshrn_n_s16(Lo, 8), vshrn_n_s16(Hi, 8));
  }
};

template <> struct NT<int16_t> {
  using V = int16x8_t;
  static constexpr size_t Lanes = 8;
  static constexpr int Bits = 16;
  static V load(const int16_t *P) { return vld1q_s16(P); }
  static void store(int16_t *P, V A) { vst1q_s16(P, A); }
  static V dup(int16_t X) { return vdupq_n_s16(X); }
  static V add(V A, V B) { return vaddq_s16(A, B); }
  static V sub(V A, V B) { return vsubq_s16(A, B); }
  static V mul(V A, V B) { return vmulq_s16(A, B); }
  static V eor(V A, V B) { return veorq_s16(A, B); }
  static V shr(V A, int C) { return vshlq_s16(A, vdupq_n_s16(int16_t(-C))); }
  static V ltzMask(V A) {
    return vreinterpretq_s16_u16(vcltq_s16(A, vdupq_n_s16(0)));
  }
  static V gtzMask(V A) {
    return vreinterpretq_s16_u16(vcgtq_s16(A, vdupq_n_s16(0)));
  }
  static V mulhi(V X, V M) {
    const int32x4_t Lo = vmull_s16(vget_low_s16(X), vget_low_s16(M));
    const int32x4_t Hi = vmull_s16(vget_high_s16(X), vget_high_s16(M));
    return vcombine_s16(vshrn_n_s32(Lo, 16), vshrn_n_s32(Hi, 16));
  }
};

template <> struct NT<int32_t> {
  using V = int32x4_t;
  static constexpr size_t Lanes = 4;
  static constexpr int Bits = 32;
  static V load(const int32_t *P) { return vld1q_s32(P); }
  static void store(int32_t *P, V A) { vst1q_s32(P, A); }
  static V dup(int32_t X) { return vdupq_n_s32(X); }
  static V add(V A, V B) { return vaddq_s32(A, B); }
  static V sub(V A, V B) { return vsubq_s32(A, B); }
  static V mul(V A, V B) { return vmulq_s32(A, B); }
  static V eor(V A, V B) { return veorq_s32(A, B); }
  static V shr(V A, int C) { return vshlq_s32(A, vdupq_n_s32(-C)); }
  static V ltzMask(V A) {
    return vreinterpretq_s32_u32(vcltq_s32(A, vdupq_n_s32(0)));
  }
  static V gtzMask(V A) {
    return vreinterpretq_s32_u32(vcgtq_s32(A, vdupq_n_s32(0)));
  }
  static V mulhi(V X, V M) {
    const int64x2_t Lo = vmull_s32(vget_low_s32(X), vget_low_s32(M));
    const int64x2_t Hi = vmull_s32(vget_high_s32(X), vget_high_s32(M));
    return vcombine_s32(vshrn_n_s64(Lo, 32), vshrn_n_s64(Hi, 32));
  }
};

//===----------------------------------------------------------------------===//
// Vector bodies
//===----------------------------------------------------------------------===//

/// Figure 4.1 on one vector.
template <typename T>
inline typename NT<T>::V divVecU(const UnsignedBatchState<T> &S,
                                 typename NT<T>::V X, typename NT<T>::V MB) {
  using W = NT<T>;
  const auto T1 = W::mulhi(X, MB);
  const auto Sum = W::add(T1, W::shr(W::sub(X, T1), S.Shift1));
  return W::shr(Sum, S.Shift2);
}

/// Figure 5.1 on one vector (shr is arithmetic for signed NT).
template <typename T>
inline typename NT<T>::V divVecS(const SignedBatchState<T> &S,
                                 typename NT<T>::V X, typename NT<T>::V MB,
                                 typename NT<T>::V DMask) {
  using W = NT<T>;
  const auto Q0 = W::add(X, W::mulhi(X, MB));
  const auto Q1 = W::sub(W::shr(Q0, S.ShiftPost), W::shr(X, W::Bits - 1));
  return W::sub(W::eor(Q1, DMask), DMask);
}

//===----------------------------------------------------------------------===//
// Array kernels
//===----------------------------------------------------------------------===//

template <typename T>
void divideNeonU(const UnsignedBatchState<T> &S, const T *In, T *Out,
                 size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(S.MPrime);
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes)
    W::store(Out + I, divVecU(S, W::load(In + I), MB));
  for (; I < Count; ++I)
    Out[I] = divideOneU(S, In[I]);
}

template <typename T>
void remainderNeonU(const UnsignedBatchState<T> &S, const T *In, T *Out,
                    size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(S.MPrime);
  const auto DB = W::dup(S.Divisor);
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes) {
    const auto X = W::load(In + I);
    const auto Q = divVecU(S, X, MB);
    W::store(Out + I, W::sub(X, W::mul(Q, DB)));
  }
  for (; I < Count; ++I)
    Out[I] = remainderOneU(S, In[I]);
}

template <typename T>
void divRemNeonU(const UnsignedBatchState<T> &S, const T *In, T *Quot,
                 T *Rem, size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(S.MPrime);
  const auto DB = W::dup(S.Divisor);
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes) {
    const auto X = W::load(In + I);
    const auto Q = divVecU(S, X, MB);
    W::store(Quot + I, Q);
    W::store(Rem + I, W::sub(X, W::mul(Q, DB)));
  }
  for (; I < Count; ++I) {
    const T Q = divideOneU(S, In[I]);
    Quot[I] = Q;
    Rem[I] = static_cast<T>(In[I] - mulL(Q, S.Divisor));
  }
}

template <typename T>
void divisibleNeonU(const UnsignedBatchState<T> &S, const T *In,
                    uint8_t *Out, size_t Count) {
  using W = NT<T>;
  const auto InvB = W::dup(S.Inverse);
  const auto QMaxB = W::dup(S.QMax);
  const auto OneB = W::dup(static_cast<T>(1));
  T Tmp[W::Lanes];
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes) {
    const auto Q0 = W::mul(W::load(In + I), InvB);
    const auto Ror = S.ExactShift == 0
                         ? Q0
                         : W::orr(W::shr(Q0, S.ExactShift),
                                  W::shl(Q0, W::Bits - S.ExactShift));
    W::store(Tmp, W::and_(W::cmple(Ror, QMaxB), OneB));
    for (size_t J = 0; J < W::Lanes; ++J)
      Out[I + J] = static_cast<uint8_t>(Tmp[J]);
  }
  for (; I < Count; ++I)
    Out[I] = divisibleOneU(S, In[I]) ? 1 : 0;
}

template <typename T>
void divideNeonS(const SignedBatchState<T> &S, const T *In, T *Out,
                 size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(static_cast<T>(S.MPrime));
  const auto DMask = W::dup(S.DSign);
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes)
    W::store(Out + I, divVecS(S, W::load(In + I), MB, DMask));
  for (; I < Count; ++I)
    Out[I] = divideOneS(S, In[I]);
}

template <typename T>
void remainderNeonS(const SignedBatchState<T> &S, const T *In, T *Out,
                    size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(static_cast<T>(S.MPrime));
  const auto DMask = W::dup(S.DSign);
  const auto DB = W::dup(S.Divisor);
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes) {
    const auto X = W::load(In + I);
    const auto Q = divVecS(S, X, MB, DMask);
    W::store(Out + I, W::sub(X, W::mul(Q, DB)));
  }
  for (; I < Count; ++I)
    Out[I] = remainderOneS(S, In[I]);
}

template <typename T>
void divRemNeonS(const SignedBatchState<T> &S, const T *In, T *Quot, T *Rem,
                 size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(static_cast<T>(S.MPrime));
  const auto DMask = W::dup(S.DSign);
  const auto DB = W::dup(S.Divisor);
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes) {
    const auto X = W::load(In + I);
    const auto Q = divVecS(S, X, MB, DMask);
    W::store(Quot + I, Q);
    W::store(Rem + I, W::sub(X, W::mul(Q, DB)));
  }
  for (; I < Count; ++I) {
    Quot[I] = divideOneS(S, In[I]);
    Rem[I] = remainderOneS(S, In[I]);
  }
}

/// Floor (Round = -1) / ceil (Round = +1) via trunc plus the
/// branch-free fixup; d's sign picks the fixup mask per batch.
template <typename T, int Round>
void roundDivNeonS(const SignedBatchState<T> &S, const T *In, T *Out,
                   size_t Count) {
  using W = NT<T>;
  const auto MB = W::dup(static_cast<T>(S.MPrime));
  const auto DMask = W::dup(S.DSign);
  const auto DB = W::dup(S.Divisor);
  const bool FixNegativeRem = Round < 0 ? S.Divisor > 0 : S.Divisor < 0;
  size_t I = 0;
  for (; I + W::Lanes <= Count; I += W::Lanes) {
    const auto X = W::load(In + I);
    auto Q = divVecS(S, X, MB, DMask);
    const auto R = W::sub(X, W::mul(Q, DB));
    const auto Fix = FixNegativeRem ? W::ltzMask(R) : W::gtzMask(R);
    Q = Round < 0 ? W::add(Q, Fix) : W::sub(Q, Fix);
    W::store(Out + I, Q);
  }
  for (; I < Count; ++I)
    Out[I] = Round < 0 ? floorDivideOneS(S, In[I]) : ceilDivideOneS(S, In[I]);
}

//===----------------------------------------------------------------------===//
// Scalar delegates for 64-bit lanes (no widening 64-bit NEON multiply)
//===----------------------------------------------------------------------===//

void divideScalarU64(const UnsignedBatchState<uint64_t> &S,
                     const uint64_t *In, uint64_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = divideOneU(S, In[I]);
}
void remainderScalarU64(const UnsignedBatchState<uint64_t> &S,
                        const uint64_t *In, uint64_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = remainderOneU(S, In[I]);
}
void divRemScalarU64(const UnsignedBatchState<uint64_t> &S,
                     const uint64_t *In, uint64_t *Quot, uint64_t *Rem,
                     size_t Count) {
  for (size_t I = 0; I < Count; ++I) {
    Quot[I] = divideOneU(S, In[I]);
    Rem[I] = static_cast<uint64_t>(In[I] - mulL(Quot[I], S.Divisor));
  }
}
void divisibleScalarU64(const UnsignedBatchState<uint64_t> &S,
                        const uint64_t *In, uint8_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = divisibleOneU(S, In[I]) ? 1 : 0;
}
void divideScalarS64(const SignedBatchState<int64_t> &S, const int64_t *In,
                     int64_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = divideOneS(S, In[I]);
}
void remainderScalarS64(const SignedBatchState<int64_t> &S,
                        const int64_t *In, int64_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = remainderOneS(S, In[I]);
}
void divRemScalarS64(const SignedBatchState<int64_t> &S, const int64_t *In,
                     int64_t *Quot, int64_t *Rem, size_t Count) {
  for (size_t I = 0; I < Count; ++I) {
    Quot[I] = divideOneS(S, In[I]);
    Rem[I] = remainderOneS(S, In[I]);
  }
}
void floorScalarS64(const SignedBatchState<int64_t> &S, const int64_t *In,
                    int64_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = floorDivideOneS(S, In[I]);
}
void ceilScalarS64(const SignedBatchState<int64_t> &S, const int64_t *In,
                   int64_t *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = ceilDivideOneS(S, In[I]);
}

} // namespace

const KernelTables *neonKernels() {
  static const KernelTables Tables = {
      {divideNeonU<uint8_t>, remainderNeonU<uint8_t>, divRemNeonU<uint8_t>,
       divisibleNeonU<uint8_t>},
      {divideNeonU<uint16_t>, remainderNeonU<uint16_t>,
       divRemNeonU<uint16_t>, divisibleNeonU<uint16_t>},
      {divideNeonU<uint32_t>, remainderNeonU<uint32_t>,
       divRemNeonU<uint32_t>, divisibleNeonU<uint32_t>},
      {divideScalarU64, remainderScalarU64, divRemScalarU64,
       divisibleScalarU64},
      {divideNeonS<int8_t>, remainderNeonS<int8_t>, divRemNeonS<int8_t>,
       roundDivNeonS<int8_t, -1>, roundDivNeonS<int8_t, 1>},
      {divideNeonS<int16_t>, remainderNeonS<int16_t>, divRemNeonS<int16_t>,
       roundDivNeonS<int16_t, -1>, roundDivNeonS<int16_t, 1>},
      {divideNeonS<int32_t>, remainderNeonS<int32_t>, divRemNeonS<int32_t>,
       roundDivNeonS<int32_t, -1>, roundDivNeonS<int32_t, 1>},
      {divideScalarS64, remainderScalarS64, divRemScalarS64, floorScalarS64,
       ceilScalarS64}};
  return &Tables;
}

} // namespace batch
} // namespace gmdiv

#else // not an ARM NEON build, or forced-scalar build

namespace gmdiv {
namespace batch {
const KernelTables *neonKernels() { return nullptr; }
} // namespace batch
} // namespace gmdiv

#endif
