//===- batch/BatchScalar.cpp - Portable scalar/SWAR backend ---------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// The always-available fallback backend: plain loops over the
// per-element Figure 4.1/5.1 sequences, plus one genuinely packed path
// — a SWAR kernel for 8-bit unsigned lanes that runs the Figure 4.1
// sequence on eight bytes packed in a uint64_t. Because every 16-bit
// sublane product m' * byte is < 2^16, a single 64-bit multiply
// computes four byte-MULUHs with no cross-lane carries.
//
//===----------------------------------------------------------------------===//

#include "batch/BatchKernels.h"

#include <cstring>

namespace gmdiv {
namespace batch {
namespace {

//===----------------------------------------------------------------------===//
// SWAR helpers: eight 8-bit lanes in a uint64_t.
//===----------------------------------------------------------------------===//

constexpr uint64_t EvenBytes = 0x00FF00FF00FF00FFull;
constexpr uint64_t OddBytes = 0xFF00FF00FF00FF00ull;
constexpr uint64_t SignBits = 0x8080808080808080ull;

inline uint64_t repeatByte(uint8_t B) {
  return 0x0101010101010101ull * B;
}

/// Lane-wise x - y (mod 256 per byte, no cross-lane borrow).
inline uint64_t swarSub8(uint64_t X, uint64_t Y) {
  return ((X | SignBits) - (Y & ~SignBits)) ^ ((X ^ ~Y) & SignBits);
}

/// Lane-wise x + y (mod 256 per byte, no cross-lane carry).
inline uint64_t swarAdd8(uint64_t X, uint64_t Y) {
  return ((X & ~SignBits) + (Y & ~SignBits)) ^ ((X ^ Y) & SignBits);
}

/// Lane-wise logical right shift by a uniform count.
inline uint64_t swarSrl8(uint64_t X, int Count) {
  return (X >> Count) & repeatByte(static_cast<uint8_t>(0xFF >> Count));
}

/// Figure 4.1 on eight packed bytes: two 64-bit multiplies replace
/// eight widening byte multiplies.
inline uint64_t swarDivide8(const UnsignedBatchState<uint8_t> &S,
                            uint64_t Packed) {
  const uint64_t M = S.MPrime;
  const uint64_t ProdEven = (Packed & EvenBytes) * M;
  const uint64_t ProdOdd = ((Packed >> 8) & EvenBytes) * M;
  const uint64_t T1 = ((ProdEven >> 8) & EvenBytes) | (ProdOdd & OddBytes);
  const uint64_t Diff = swarSub8(Packed, T1);
  const uint64_t Sum = swarAdd8(T1, swarSrl8(Diff, S.Shift1));
  return swarSrl8(Sum, S.Shift2);
}

//===----------------------------------------------------------------------===//
// Generic scalar kernels
//===----------------------------------------------------------------------===//

template <typename T>
void divideU(const UnsignedBatchState<T> &S, const T *In, T *Out,
             size_t Count) {
  if constexpr (sizeof(T) == 1) {
    // SWAR bulk path: eight lanes per 64-bit word.
    size_t I = 0;
    for (; I + 8 <= Count; I += 8) {
      uint64_t Packed;
      std::memcpy(&Packed, In + I, 8);
      const uint64_t Q = swarDivide8(S, Packed);
      std::memcpy(Out + I, &Q, 8);
    }
    for (; I < Count; ++I)
      Out[I] = divideOneU(S, In[I]);
  } else {
    for (size_t I = 0; I < Count; ++I)
      Out[I] = divideOneU(S, In[I]);
  }
}

template <typename T>
void remainderU(const UnsignedBatchState<T> &S, const T *In, T *Out,
                size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = remainderOneU(S, In[I]);
}

template <typename T>
void divRemU(const UnsignedBatchState<T> &S, const T *In, T *Quot, T *Rem,
             size_t Count) {
  for (size_t I = 0; I < Count; ++I) {
    const T Q = divideOneU(S, In[I]);
    Quot[I] = Q;
    Rem[I] = static_cast<T>(In[I] - mulL(Q, S.Divisor));
  }
}

template <typename T>
void divisibleU(const UnsignedBatchState<T> &S, const T *In, uint8_t *Out,
                size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = divisibleOneU(S, In[I]) ? 1 : 0;
}

template <typename T>
void divideS(const SignedBatchState<T> &S, const T *In, T *Out,
             size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = divideOneS(S, In[I]);
}

template <typename T>
void remainderS(const SignedBatchState<T> &S, const T *In, T *Out,
                size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = remainderOneS(S, In[I]);
}

template <typename T>
void divRemS(const SignedBatchState<T> &S, const T *In, T *Quot, T *Rem,
             size_t Count) {
  using UWord = typename SignedBatchState<T>::UWord;
  for (size_t I = 0; I < Count; ++I) {
    const T Q = divideOneS(S, In[I]);
    Quot[I] = Q;
    Rem[I] = static_cast<T>(static_cast<UWord>(In[I]) -
                            mulL(static_cast<UWord>(Q),
                                 static_cast<UWord>(S.Divisor)));
  }
}

template <typename T>
void floorDivideS(const SignedBatchState<T> &S, const T *In, T *Out,
                  size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = floorDivideOneS(S, In[I]);
}

template <typename T>
void ceilDivideS(const SignedBatchState<T> &S, const T *In, T *Out,
                 size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = ceilDivideOneS(S, In[I]);
}

template <typename T> constexpr UnsignedKernels<T> makeUnsigned() {
  return {divideU<T>, remainderU<T>, divRemU<T>, divisibleU<T>};
}
template <typename T> constexpr SignedKernels<T> makeSigned() {
  return {divideS<T>, remainderS<T>, divRemS<T>, floorDivideS<T>,
          ceilDivideS<T>};
}

} // namespace

const KernelTables &scalarKernels() {
  static const KernelTables Tables = {
      makeUnsigned<uint8_t>(),  makeUnsigned<uint16_t>(),
      makeUnsigned<uint32_t>(), makeUnsigned<uint64_t>(),
      makeSigned<int8_t>(),     makeSigned<int16_t>(),
      makeSigned<int32_t>(),    makeSigned<int64_t>()};
  return Tables;
}

} // namespace batch
} // namespace gmdiv
