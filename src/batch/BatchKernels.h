//===- batch/BatchKernels.h - Batch kernel internals ------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared by the batch backends: the flattened precomputed
/// state (built once per divisor from the scalar dividers), the
/// per-element reference sequences every backend must match bit-for-bit,
/// and the kernel function tables one per backend.
///
/// The state is a plain struct of words and shift counts so a SIMD
/// backend can broadcast each field into a vector register without
/// touching the divider classes. buildUnsignedState/buildSignedState
/// (BatchDivider.cpp) populate it from UnsignedDivider, SignedDivider
/// and ExactUnsignedDivider — the same Figure 4.1/5.1/§9 precomputation
/// the scalar path uses, done exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_BATCH_BATCHKERNELS_H
#define GMDIV_BATCH_BATCHKERNELS_H

#include "ops/Ops.h"

#include <cstddef>
#include <cstdint>

namespace gmdiv {
namespace batch {

//===----------------------------------------------------------------------===//
// Flattened per-divisor state
//===----------------------------------------------------------------------===//

/// Figure 4.1 state plus the §9 divisibility constants, flattened for
/// broadcast into vector registers.
template <typename UWordT> struct UnsignedBatchState {
  using UWord = UWordT;
  UWord Divisor = 1;
  // Figure 4.1: q = SRL(t1 + SRL(n - t1, Shift1), Shift2),
  //             t1 = MULUH(MPrime, n). Valid for every d >= 1.
  UWord MPrime = 1;
  int Shift1 = 0;
  int Shift2 = 0;
  // §9: d = 2^ExactShift * d_odd; Inverse = d_odd^-1 mod 2^N.
  // n divisible by d iff ROR(MULL(Inverse, n), ExactShift) <= QMax.
  UWord Inverse = 1;
  UWord QMax = 0;
  int ExactShift = 0;
  // Power-of-two divisors reduce every kernel to one shift.
  bool IsPow2 = false;
  int Pow2Shift = 0;
};

/// Figure 5.1 state, flattened for broadcast.
template <typename SWordT> struct SignedBatchState {
  using SWord = SWordT;
  using UWord = typename SignedWordTraits<SWord>::Traits::UWord;
  SWord Divisor = 1;
  // q0 = n + MULSH(MPrime, n); q1 = SRA(q0, ShiftPost) - XSIGN(n);
  // q = EOR(q1, DSign) - DSign.
  UWord MPrime = 1; ///< Bit pattern of m - 2^N (an sword value).
  int ShiftPost = 0;
  SWord DSign = 0; ///< XSIGN(d).
};

//===----------------------------------------------------------------------===//
// Per-element reference sequences
//
// Every backend — including the SIMD tail loops — funnels single
// elements through these, so "bit-for-bit agreement" is by construction
// for tails and by test for vector bodies.
//===----------------------------------------------------------------------===//

template <typename UWord>
inline UWord divideOneU(const UnsignedBatchState<UWord> &S, UWord N0) {
  const UWord T1 = mulUH(S.MPrime, N0);
  const UWord Sum =
      static_cast<UWord>(T1 + srl(static_cast<UWord>(N0 - T1), S.Shift1));
  return srl(Sum, S.Shift2);
}

template <typename UWord>
inline UWord remainderOneU(const UnsignedBatchState<UWord> &S, UWord N0) {
  return static_cast<UWord>(N0 - mulL(divideOneU(S, N0), S.Divisor));
}

template <typename UWord>
inline bool divisibleOneU(const UnsignedBatchState<UWord> &S, UWord N0) {
  constexpr int N = WordTraits<UWord>::Bits;
  const UWord Q0 = mulL(S.Inverse, N0);
  const UWord Rotated =
      S.ExactShift == 0
          ? Q0
          : static_cast<UWord>(srl(Q0, S.ExactShift) |
                               sll(Q0, N - S.ExactShift));
  return Rotated <= S.QMax;
}

template <typename SWord>
inline SWord divideOneS(const SignedBatchState<SWord> &S, SWord N0) {
  using UWord = typename SignedBatchState<SWord>::UWord;
  const UWord UN = static_cast<UWord>(N0);
  const UWord Q0 = static_cast<UWord>(
      UN + static_cast<UWord>(mulSH(static_cast<SWord>(S.MPrime), N0)));
  const SWord Shifted = sra(static_cast<SWord>(Q0), S.ShiftPost);
  const UWord Q1 = static_cast<UWord>(static_cast<UWord>(Shifted) -
                                      static_cast<UWord>(xsign(N0)));
  const UWord Mask = static_cast<UWord>(S.DSign);
  return static_cast<SWord>(static_cast<UWord>((Q1 ^ Mask) - Mask));
}

template <typename SWord>
inline SWord remainderOneS(const SignedBatchState<SWord> &S, SWord N0) {
  using UWord = typename SignedBatchState<SWord>::UWord;
  return static_cast<SWord>(static_cast<UWord>(N0) -
                            mulL(static_cast<UWord>(divideOneS(S, N0)),
                                 static_cast<UWord>(S.Divisor)));
}

/// ⌊n/d⌋ = trunc(n/d) - (r != 0 && sign(r) != sign(d)).
template <typename SWord>
inline SWord floorDivideOneS(const SignedBatchState<SWord> &S, SWord N0) {
  using UWord = typename SignedBatchState<SWord>::UWord;
  const SWord Q = divideOneS(S, N0);
  const SWord R = static_cast<SWord>(
      static_cast<UWord>(N0) -
      mulL(static_cast<UWord>(Q), static_cast<UWord>(S.Divisor)));
  const bool Fix = R != 0 && ((R < 0) != (S.Divisor < 0));
  return static_cast<SWord>(static_cast<UWord>(Q) -
                            static_cast<UWord>(Fix ? 1 : 0));
}

/// ⌈n/d⌉ = trunc(n/d) + (r != 0 && sign(r) == sign(d)).
template <typename SWord>
inline SWord ceilDivideOneS(const SignedBatchState<SWord> &S, SWord N0) {
  using UWord = typename SignedBatchState<SWord>::UWord;
  const SWord Q = divideOneS(S, N0);
  const SWord R = static_cast<SWord>(
      static_cast<UWord>(N0) -
      mulL(static_cast<UWord>(Q), static_cast<UWord>(S.Divisor)));
  const bool Fix = R != 0 && ((R < 0) == (S.Divisor < 0));
  return static_cast<SWord>(static_cast<UWord>(Q) +
                            static_cast<UWord>(Fix ? 1 : 0));
}

//===----------------------------------------------------------------------===//
// Kernel tables
//===----------------------------------------------------------------------===//

/// Array kernels for one unsigned lane type. All pointers are non-null
/// in a registered table.
template <typename T> struct UnsignedKernels {
  void (*Divide)(const UnsignedBatchState<T> &, const T *, T *, size_t);
  void (*Remainder)(const UnsignedBatchState<T> &, const T *, T *, size_t);
  void (*DivRem)(const UnsignedBatchState<T> &, const T *, T *, T *,
                 size_t);
  /// §9 branch-free divisibility filter: Out[i] = 1 iff d | In[i].
  void (*Divisible)(const UnsignedBatchState<T> &, const T *, uint8_t *,
                    size_t);
};

/// Array kernels for one signed lane type.
template <typename T> struct SignedKernels {
  void (*Divide)(const SignedBatchState<T> &, const T *, T *, size_t);
  void (*Remainder)(const SignedBatchState<T> &, const T *, T *, size_t);
  void (*DivRem)(const SignedBatchState<T> &, const T *, T *, T *, size_t);
  void (*FloorDivide)(const SignedBatchState<T> &, const T *, T *, size_t);
  void (*CeilDivide)(const SignedBatchState<T> &, const T *, T *, size_t);
};

/// One backend's complete kernel set: every lane width, both signs.
struct KernelTables {
  UnsignedKernels<uint8_t> U8;
  UnsignedKernels<uint16_t> U16;
  UnsignedKernels<uint32_t> U32;
  UnsignedKernels<uint64_t> U64;
  SignedKernels<int8_t> S8;
  SignedKernels<int16_t> S16;
  SignedKernels<int32_t> S32;
  SignedKernels<int64_t> S64;

  template <typename T> const UnsignedKernels<T> &unsignedFor() const {
    if constexpr (sizeof(T) == 1)
      return U8;
    else if constexpr (sizeof(T) == 2)
      return U16;
    else if constexpr (sizeof(T) == 4)
      return U32;
    else
      return U64;
  }
  template <typename T> const SignedKernels<T> &signedFor() const {
    if constexpr (sizeof(T) == 1)
      return S8;
    else if constexpr (sizeof(T) == 2)
      return S16;
    else if constexpr (sizeof(T) == 4)
      return S32;
    else
      return S64;
  }
};

/// The portable fallback; always present.
const KernelTables &scalarKernels();
/// SIMD backends; null when not compiled in (wrong architecture or
/// GMDIV_FORCE_SCALAR_BATCH).
const KernelTables *sse2Kernels();
const KernelTables *avx2Kernels();
const KernelTables *neonKernels();

} // namespace batch
} // namespace gmdiv

#endif // GMDIV_BATCH_BATCHKERNELS_H
