//===- batch/BatchDivider.h - Array invariant-division kernels --*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput-oriented batch division: the paper's whole premise is
/// amortizing one divisor-dependent precomputation over many dividends,
/// and this facade takes that to its conclusion — array kernels that
/// divide N dividends per call, backed by interchangeable backends:
///
///   Scalar  portable C++ loop over the Figure 4.1/5.1 sequences, with
///           a SWAR fast path for 8-bit unsigned lanes.
///   SSE2    128-bit x86 vectors (baseline on x86-64).
///   AVX2    256-bit x86 vectors (own TU compiled with -mavx2, chosen
///           only after a runtime CPUID check).
///   NEON    128-bit ARM vectors (64-bit lanes fall back to scalar, as
///           in Highway's contrib/intdiv).
///
/// The per-lane MULUH uses widening multiplies: even/odd
/// _mm*_mul_epu32 splits for 32/64-bit lanes, mulhi instructions for
/// 16-bit, a promote-multiply-narrow for 8-bit. All backends agree
/// bit-for-bit with UnsignedDivider / SignedDivider; the dispatch
/// (CPUID/HWCAP plus the GMDIV_BATCH_BACKEND environment override)
/// emits one telemetry remark per backend selection (kind
/// "batch.backend", see docs/OBSERVABILITY.md).
///
/// Break-even guidance — the batch size at which a vector backend
/// overtakes the scalar loop on a given architecture profile — comes
/// from arch::estimateBatchCost (src/arch/CostModel.h).
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_BATCH_BATCHDIVIDER_H
#define GMDIV_BATCH_BATCHDIVIDER_H

#include "batch/BatchKernels.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace gmdiv {
namespace batch {

/// The interchangeable kernel implementations.
enum class Backend {
  Scalar, ///< Portable C++ / SWAR fallback; always available.
  SSE2,   ///< x86-64 baseline 128-bit vectors.
  AVX2,   ///< 256-bit vectors; requires runtime CPUID support.
  NEON,   ///< AArch64 128-bit vectors.
};

/// Stable lowercase slug: "scalar", "sse2", "avx2", "neon".
const char *backendName(Backend B);

/// All backends compiled into this binary (Scalar always included).
std::vector<Backend> compiledBackends();

/// True when \p B is compiled in and the running CPU supports it.
bool backendAvailable(Backend B);

/// The backend batch dividers use by default: the widest available one,
/// unless the GMDIV_BATCH_BACKEND environment variable (scalar | sse2 |
/// avx2 | neon) overrides it. Resolved once per process; the resolution
/// emits one "batch.backend" telemetry remark.
Backend activeBackend();

/// Break-even routing accounting (the metrics plane's
/// gmdiv_batch_calls_below_break_even_total): calls with fewer than
/// this many elements have not amortized the vector setup cost (§10).
/// Defaults to 8; tools with an arch::estimateBatchCost profile in
/// hand can tighten it.
void setBatchBreakEvenHint(size_t Elements);
size_t batchBreakEvenHint();

/// Internal: records one kernel call (call count, element count,
/// break-even routing) in the metrics plane. Called by every
/// BatchDivider array entry point; a few ns against a whole-array
/// kernel.
void noteBatchCall(size_t Count);

/// Divides many dividends by one invariant divisor. The constructor
/// runs the divisor-dependent precomputation once (reusing
/// UnsignedDivider / SignedDivider / ExactUnsignedDivider); every array
/// call then streams through the selected backend's kernels. Immutable
/// after construction and safe to share across threads.
///
/// T is one of {u,i}{8,16,32,64}. Unsigned instantiations additionally
/// provide the §9 divisibility filter; signed ones provide floor/ceil.
template <typename T> class BatchDivider {
public:
  static constexpr bool IsSigned = std::is_signed_v<T>;

  /// Precomputes state for \p Divisor (nonzero) on activeBackend().
  explicit BatchDivider(T Divisor);
  /// Same, pinning a specific backend (falls back to Scalar when \p B
  /// is unavailable at runtime) — used by tests and benchmarks.
  BatchDivider(T Divisor, Backend B);

  T divisor() const { return State.Divisor; }
  Backend backend() const { return Selected; }

  /// Out[i] = In[i] / d for i < Count (⌊n/d⌋ unsigned, trunc signed).
  /// In and Out may alias exactly (in-place) but not partially overlap.
  void divide(const T *In, T *Out, size_t Count) const {
    noteBatchCall(Count);
    Kernels.Divide(State, In, Out, Count);
  }

  /// Out[i] = In[i] rem d (unsigned mod; C `%` for signed).
  void remainder(const T *In, T *Out, size_t Count) const {
    noteBatchCall(Count);
    Kernels.Remainder(State, In, Out, Count);
  }

  /// Fused quotient+remainder: one multiply chain, two result streams.
  void divRem(const T *In, T *Quot, T *Rem, size_t Count) const {
    noteBatchCall(Count);
    Kernels.DivRem(State, In, Quot, Rem, Count);
  }

  /// §9 branch-free divisibility filter: Out[i] = 1 iff d | In[i].
  /// Unsigned lane types only.
  template <typename U = T,
            typename = std::enable_if_t<std::is_unsigned_v<U>>>
  void divisible(const T *In, uint8_t *Out, size_t Count) const {
    noteBatchCall(Count);
    Kernels.Divisible(State, In, Out, Count);
  }

  /// ⌊n/d⌋ per element. Signed lane types only.
  template <typename U = T, typename = std::enable_if_t<std::is_signed_v<U>>>
  void floorDivide(const T *In, T *Out, size_t Count) const {
    noteBatchCall(Count);
    Kernels.FloorDivide(State, In, Out, Count);
  }

  /// ⌈n/d⌉ per element. Signed lane types only.
  template <typename U = T, typename = std::enable_if_t<std::is_signed_v<U>>>
  void ceilDivide(const T *In, T *Out, size_t Count) const {
    noteBatchCall(Count);
    Kernels.CeilDivide(State, In, Out, Count);
  }

  /// Human-readable one-liner: divisor, backend, Figure 4.1/5.1 state.
  std::string describe() const;

private:
  using StateT = std::conditional_t<IsSigned, SignedBatchState<T>,
                                    UnsignedBatchState<T>>;
  using KernelsT =
      std::conditional_t<IsSigned, SignedKernels<T>, UnsignedKernels<T>>;

  StateT State;
  KernelsT Kernels;
  Backend Selected;
};

extern template class BatchDivider<uint8_t>;
extern template class BatchDivider<uint16_t>;
extern template class BatchDivider<uint32_t>;
extern template class BatchDivider<uint64_t>;
extern template class BatchDivider<int8_t>;
extern template class BatchDivider<int16_t>;
extern template class BatchDivider<int32_t>;
extern template class BatchDivider<int64_t>;

} // namespace batch
} // namespace gmdiv

#endif // GMDIV_BATCH_BATCHDIVIDER_H
