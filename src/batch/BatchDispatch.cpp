//===- batch/BatchDispatch.cpp - Runtime backend selection ----------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
//
// Picks the widest kernel set the running CPU supports: compiled-in
// backends are probed via the null/non-null kernel-table pointers, and
// AVX2 additionally requires a CPUID check (__builtin_cpu_supports,
// which also verifies OS XSAVE state). The GMDIV_BATCH_BACKEND
// environment variable overrides the choice when it names an available
// backend. Every selection is reported through one "batch.backend"
// telemetry remark (see docs/OBSERVABILITY.md).
//
//===----------------------------------------------------------------------===//

#include "batch/BatchDivider.h"

#include "metrics/Metrics.h"
#include "telemetry/Remarks.h"
#include "telemetry/Stats.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace gmdiv {
namespace batch {

const char *backendName(Backend B) {
  switch (B) {
  case Backend::Scalar:
    return "scalar";
  case Backend::SSE2:
    return "sse2";
  case Backend::AVX2:
    return "avx2";
  case Backend::NEON:
    return "neon";
  }
  return "scalar";
}

/// Internal: the kernel table backing \p B; scalar when \p B is not
/// available (callers should have checked backendAvailable).
const KernelTables &tablesForBackend(Backend B) {
  const KernelTables *Tables = nullptr;
  switch (B) {
  case Backend::Scalar:
    return scalarKernels();
  case Backend::SSE2:
    Tables = sse2Kernels();
    break;
  case Backend::AVX2:
    Tables = avx2Kernels();
    break;
  case Backend::NEON:
    Tables = neonKernels();
    break;
  }
  return Tables ? *Tables : scalarKernels();
}

std::vector<Backend> compiledBackends() {
  std::vector<Backend> Result{Backend::Scalar};
  if (sse2Kernels())
    Result.push_back(Backend::SSE2);
  if (avx2Kernels())
    Result.push_back(Backend::AVX2);
  if (neonKernels())
    Result.push_back(Backend::NEON);
  return Result;
}

namespace {

/// CPU check over and above "the kernels were compiled in". SSE2 and
/// NEON are baseline on the targets where their TUs compile; AVX2 needs
/// the runtime probe.
bool cpuSupports(Backend B) {
  if (B != Backend::AVX2)
    return true;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

} // namespace

bool backendAvailable(Backend B) {
  if (B == Backend::Scalar)
    return true;
  switch (B) {
  case Backend::SSE2:
    if (!sse2Kernels())
      return false;
    break;
  case Backend::AVX2:
    if (!avx2Kernels())
      return false;
    break;
  case Backend::NEON:
    if (!neonKernels())
      return false;
    break;
  case Backend::Scalar:
    break;
  }
  return cpuSupports(B);
}

/// Internal: one "batch.backend" remark per selection event — the
/// process-wide default resolution and every explicitly pinned
/// BatchDivider. Guarded by remarksEnabled(), so the default (no sink)
/// costs nothing and GMDIV_NO_TELEMETRY compiles it out.
void noteBackendSelected(Backend B, const char *Source) {
  GMDIV_STAT_ADD(batch, backend_selections, 1);
  metrics::Registry::global()
      .counter("gmdiv_batch_backend_selected_total",
               "Batch backend selection events by backend and source",
               {{"backend", backendName(B)}, {"source", Source}})
      .inc();
  if (!telemetry::remarksEnabled())
    return;
  telemetry::Remark R;
  R.Pass = "batch";
  R.Kind = "batch.backend";
  R.Figure = "Figure 4.1/5.1";
  R.CaseName = "batch backend selection";
  R.HasDivisor = false;
  R.Details.emplace_back("backend", backendName(B));
  R.Details.emplace_back("source", Source);
  telemetry::emitRemark(R);
}

namespace {

/// Calls with fewer elements than this are routed "below break-even":
/// per §10 (and arch::estimateBatchCost) the vector setup cost has not
/// amortized yet and the scalar per-element API would have been at
/// least as fast. The default matches the cost model's typical
/// break-even batch for 32-bit lanes; tools with a profile in hand can
/// refine it via setBatchBreakEvenHint().
std::atomic<size_t> BreakEvenHint{8};

} // namespace

void setBatchBreakEvenHint(size_t Elements) {
  BreakEvenHint.store(Elements == 0 ? 1 : Elements,
                      std::memory_order_relaxed);
}

size_t batchBreakEvenHint() {
  return BreakEvenHint.load(std::memory_order_relaxed);
}

void noteBatchCall(size_t Count) {
  auto &Reg = metrics::Registry::global();
  static metrics::Counter &Calls = Reg.counter(
      "gmdiv_batch_calls_total", "Batch kernel invocations");
  static metrics::Counter &Elements = Reg.counter(
      "gmdiv_batch_elements_total", "Elements processed by batch kernels");
  static metrics::Counter &BelowBreakEven = Reg.counter(
      "gmdiv_batch_calls_below_break_even_total",
      "Batch calls smaller than the break-even batch size");
  Calls.inc();
  Elements.add(Count);
  if (Count < BreakEvenHint.load(std::memory_order_relaxed))
    BelowBreakEven.inc();
}

Backend activeBackend() {
  static const Backend Resolved = [] {
    if (const char *Env = std::getenv("GMDIV_BATCH_BACKEND")) {
      for (Backend B : {Backend::Scalar, Backend::SSE2, Backend::AVX2,
                        Backend::NEON}) {
        if (std::strcmp(Env, backendName(B)) == 0) {
          if (backendAvailable(B)) {
            noteBackendSelected(B, "env-override");
            return B;
          }
          break; // Named but unavailable: fall through to autodetect.
        }
      }
    }
    for (Backend B : {Backend::AVX2, Backend::SSE2, Backend::NEON}) {
      if (backendAvailable(B)) {
        noteBackendSelected(B, "autodetect");
        return B;
      }
    }
    noteBackendSelected(Backend::Scalar, "fallback");
    return Backend::Scalar;
  }();
  return Resolved;
}

} // namespace batch
} // namespace gmdiv
