//===- trace/HwCounters.cpp - perf_event_open facade ----------------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "trace/HwCounters.h"

#if defined(__linux__)
#include <cerrno>
#include <cstring>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace gmdiv;
using namespace gmdiv::trace;

CounterSample CounterSample::operator-(const CounterSample &Other) const {
  CounterSample Out = *this;
  Out.Cycles -= Other.Cycles;
  Out.Instructions -= Other.Instructions;
  Out.BranchMisses -= Other.BranchMisses;
  Out.CacheMisses -= Other.CacheMisses;
  Out.Valid = Valid && Other.Valid;
  return Out;
}

#if defined(__linux__)

namespace {

/// The four events, leader first. All PERF_TYPE_HARDWARE.
constexpr uint64_t EventConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_BRANCH_MISSES,
    PERF_COUNT_HW_CACHE_MISSES,
};

int openEvent(uint64_t Config, int GroupFd) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.type = PERF_TYPE_HARDWARE;
  Attr.size = sizeof(Attr);
  Attr.config = Config;
  Attr.disabled = GroupFd == -1 ? 1 : 0; // Leader starts disabled.
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  Attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &Attr, /*pid=*/0,
                                  /*cpu=*/-1, GroupFd, /*flags=*/0UL));
}

/// Reads one event fd, scaling for multiplexing. Returns false on a
/// failed read (the counter then reports as absent).
bool readScaled(int Fd, uint64_t &Out) {
  uint64_t Buf[3] = {0, 0, 0}; // value, time_enabled, time_running
  if (Fd < 0 || ::read(Fd, Buf, sizeof(Buf)) != sizeof(Buf))
    return false;
  if (Buf[2] != 0 && Buf[2] < Buf[1]) {
    const double Scale =
        static_cast<double>(Buf[1]) / static_cast<double>(Buf[2]);
    Out = static_cast<uint64_t>(static_cast<double>(Buf[0]) * Scale);
  } else {
    Out = Buf[0];
  }
  return true;
}

} // namespace

HwCounters::HwCounters() {
  Fd[0] = openEvent(EventConfigs[0], -1);
  if (Fd[0] < 0) {
    Reason = std::string("perf_event_open failed: ") + std::strerror(errno);
    return;
  }
  // Group the rest under the cycle leader so one ioctl gates them all;
  // events this PMU lacks just stay closed.
  for (int I = 1; I < 4; ++I)
    Fd[I] = openEvent(EventConfigs[I], Fd[0]);
  Available = true;
}

HwCounters::~HwCounters() {
  for (int I = 3; I >= 0; --I)
    if (Fd[I] >= 0)
      ::close(Fd[I]);
}

void HwCounters::start() {
  if (!Available)
    return;
  ioctl(Fd[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(Fd[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

CounterSample HwCounters::stop() {
  if (!Available)
    return CounterSample();
  ioctl(Fd[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  return read();
}

CounterSample HwCounters::read() const {
  CounterSample S;
  if (!Available)
    return S;
  S.HasCycles = readScaled(Fd[0], S.Cycles);
  S.HasInstructions = readScaled(Fd[1], S.Instructions);
  S.HasBranchMisses = readScaled(Fd[2], S.BranchMisses);
  S.HasCacheMisses = readScaled(Fd[3], S.CacheMisses);
  S.Valid = S.HasCycles;
  return S;
}

#else // !__linux__

HwCounters::HwCounters() : Reason("not built for Linux") {}
HwCounters::~HwCounters() {}
void HwCounters::start() {}
CounterSample HwCounters::stop() { return CounterSample(); }
CounterSample HwCounters::read() const { return CounterSample(); }

#endif
