//===- trace/HwCounters.h - perf_event_open facade --------------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware performance counters for the bench runner and the verify
/// campaign: cycles, instructions, branch misses and cache misses read
/// through Linux perf_event_open, counting this thread in user space
/// only. The paper's whole evaluation is cycle counts (Table 1.1 gives
/// mul vs. div latencies per machine); this facade lets a bench report
/// carry the same currency instead of wall time alone.
///
///   HwCounters Hw;
///   if (Hw.available()) {
///     Hw.start();
///     workload();
///     CounterSample S = Hw.stop();   // S.Cycles, S.Instructions, ...
///   }
///
/// Degrades gracefully everywhere perf is not usable — non-Linux
/// builds, containers with a locked-down perf_event_paranoid, seccomp
/// filters, missing PMU: available() is false, unavailableReason()
/// says why, start()/stop() stay safe no-ops and every CounterSample
/// reports Valid = false. Counters that multiplex are scaled by
/// time_enabled / time_running, and events the kernel rejects
/// individually (e.g. cache-misses on some PMUs) are simply absent
/// while the rest keep working.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_TRACE_HWCOUNTERS_H
#define GMDIV_TRACE_HWCOUNTERS_H

#include <cstdint>
#include <string>

namespace gmdiv {
namespace trace {

/// One reading (or delta) of the counter group. A counter whose event
/// could not be opened reads as its Has* flag false and value 0.
struct CounterSample {
  bool Valid = false;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t BranchMisses = 0;
  uint64_t CacheMisses = 0;
  bool HasCycles = false;
  bool HasInstructions = false;
  bool HasBranchMisses = false;
  bool HasCacheMisses = false;

  /// Instructions per cycle; 0 when either counter is missing or zero.
  double ipc() const {
    return (HasCycles && HasInstructions && Cycles)
               ? static_cast<double>(Instructions) /
                     static_cast<double>(Cycles)
               : 0.0;
  }

  /// Component-wise difference (for cumulative-read deltas).
  CounterSample operator-(const CounterSample &Other) const;
};

class HwCounters {
public:
  /// Opens the event group for the calling thread (user space only).
  HwCounters();
  ~HwCounters();
  HwCounters(const HwCounters &) = delete;
  HwCounters &operator=(const HwCounters &) = delete;

  /// True when at least the cycle counter opened.
  bool available() const { return Available; }

  /// Human-readable reason when available() is false ("perf_event_open
  /// failed: Permission denied", "not built for Linux", ...).
  const std::string &unavailableReason() const { return Reason; }

  /// Zeroes and enables the counters. No-op when unavailable.
  void start();

  /// Disables the counters and returns the interval since start().
  CounterSample stop();

  /// Reads the running totals without disabling (cumulative; subtract
  /// two reads for a bracketed delta). Counters must be started.
  CounterSample read() const;

private:
  bool Available = false;
  std::string Reason;
  /// One fd per event, -1 where the kernel rejected the event.
  int Fd[4] = {-1, -1, -1, -1};
};

} // namespace trace
} // namespace gmdiv

#endif // GMDIV_TRACE_HWCOUNTERS_H
