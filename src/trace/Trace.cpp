//===- trace/Trace.cpp - Scoped spans and Chrome trace export -------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "telemetry/Json.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

using namespace gmdiv;
using namespace gmdiv::trace;

namespace {

std::atomic<bool> TraceEnabled{false};

/// steady_clock origin for exported timestamps; fixed on first enable so
/// every trace starts near ts = 0.
std::atomic<int64_t> EpochNs{0};

int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One thread's ring. Allocated on the thread's first record and handed
/// to the registry, which owns it from then on — the events of a thread
/// that has exited stay exportable.
struct ThreadRing {
  TraceEvent Events[RingCapacity];
  /// Total events ever recorded; Events[Next % RingCapacity] is the next
  /// slot. Written by the owner thread only (release), read by export.
  std::atomic<uint64_t> Next{0};
  uint32_t ThreadId = 0;
  uint32_t Depth = 0; ///< Owner-thread-only nesting counter.
};

struct Registry {
  std::mutex Mutex;
  std::vector<ThreadRing *> Rings; ///< Owned, leaked at process exit.
  uint32_t NextThreadId = 0;
};

Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

ThreadRing &threadRing() {
  thread_local ThreadRing *Ring = [] {
    ThreadRing *R = new ThreadRing;
    Registry &Reg = registry();
    std::lock_guard<std::mutex> Lock(Reg.Mutex);
    R->ThreadId = Reg.NextThreadId++;
    Reg.Rings.push_back(R);
    return R;
  }();
  return *Ring;
}

/// Process-wide flow id allocator; 0 is reserved for "no flow".
std::atomic<uint64_t> NextFlow{1};

/// The calling thread's open flow (set by FlowScope, read by Span).
thread_local uint64_t CurrentFlow = 0;

} // namespace

bool trace::enabled() {
  return TraceEnabled.load(std::memory_order_relaxed);
}

void trace::setEnabled(bool On) {
  if (On) {
    int64_t Expected = 0;
    EpochNs.compare_exchange_strong(Expected, steadyNowNs(),
                                    std::memory_order_relaxed);
  }
  TraceEnabled.store(On, std::memory_order_relaxed);
}

uint64_t trace::nowNs() {
  const int64_t Epoch = EpochNs.load(std::memory_order_relaxed);
  const int64_t Now = steadyNowNs();
  return Now > Epoch ? static_cast<uint64_t>(Now - Epoch) : 0;
}

uint64_t trace::nextFlowId() {
  return NextFlow.fetch_add(1, std::memory_order_relaxed);
}

uint64_t trace::currentFlow() { return CurrentFlow; }

FlowScope::FlowScope(uint64_t Flow) : Prev(CurrentFlow), Active(Flow != 0) {
  if (Active)
    CurrentFlow = Flow;
}

FlowScope::~FlowScope() {
  if (Active)
    CurrentFlow = Prev;
}

void trace::recordSpan(const char *Category, const char *Name,
                       uint64_t StartNs, uint64_t DurNs, uint64_t Arg,
                       uint64_t Flow) {
  if (!enabled())
    return;
  ThreadRing &Ring = threadRing();
  const uint64_t Slot = Ring.Next.load(std::memory_order_relaxed);
  TraceEvent &E = Ring.Events[Slot % RingCapacity];
  E.Category = Category;
  E.Name = Name;
  E.Arg = Arg;
  E.Flow = Flow;
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.StartTsc = 0;
  E.DurTsc = 0;
  E.ThreadId = Ring.ThreadId;
  E.Depth = Ring.Depth;
  Ring.Next.store(Slot + 1, std::memory_order_release);
}

uint64_t trace::readTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t Value;
  asm volatile("mrs %0, cntvct_el0" : "=r"(Value));
  return Value;
#else
  return 0;
#endif
}

Span::Span(const char *Category, const char *Name, uint64_t Arg)
    : Category(Category), Name(Name), Arg(Arg), Flow(CurrentFlow), StartNs(0),
      StartTsc(0), Active(enabled()) {
  if (!Active)
    return;
  ThreadRing &Ring = threadRing();
  ++Ring.Depth;
  StartNs = static_cast<uint64_t>(
      steadyNowNs() - EpochNs.load(std::memory_order_relaxed));
  StartTsc = readTsc();
}

Span::~Span() {
  if (!Active)
    return;
  const uint64_t EndTsc = readTsc();
  const uint64_t EndNs = static_cast<uint64_t>(
      steadyNowNs() - EpochNs.load(std::memory_order_relaxed));
  ThreadRing &Ring = threadRing();
  const uint64_t Slot = Ring.Next.load(std::memory_order_relaxed);
  TraceEvent &E = Ring.Events[Slot % RingCapacity];
  E.Category = Category;
  E.Name = Name;
  E.Arg = Arg;
  E.Flow = Flow;
  E.StartNs = StartNs;
  E.DurNs = EndNs >= StartNs ? EndNs - StartNs : 0;
  E.StartTsc = StartTsc;
  E.DurTsc = EndTsc >= StartTsc ? EndTsc - StartTsc : 0;
  E.ThreadId = Ring.ThreadId;
  E.Depth = Ring.Depth > 0 ? Ring.Depth - 1 : 0;
  Ring.Next.store(Slot + 1, std::memory_order_release);
  if (Ring.Depth > 0)
    --Ring.Depth;
}

std::vector<ThreadSnapshot> trace::snapshot() {
  std::vector<ThreadRing *> Rings;
  {
    Registry &Reg = registry();
    std::lock_guard<std::mutex> Lock(Reg.Mutex);
    Rings = Reg.Rings;
  }
  std::vector<ThreadSnapshot> Out;
  Out.reserve(Rings.size());
  for (const ThreadRing *Ring : Rings) {
    ThreadSnapshot S;
    S.ThreadId = Ring->ThreadId;
    S.Recorded = Ring->Next.load(std::memory_order_acquire);
    // Once wrapped, skip one extra slot past the logical oldest event:
    // that slot is the writer's next target and could tear mid-copy.
    uint64_t Keep = S.Recorded;
    if (Keep > RingCapacity)
      Keep = RingCapacity - 1;
    S.Dropped = S.Recorded - Keep;
    S.Events.reserve(Keep);
    for (uint64_t I = S.Recorded - Keep; I < S.Recorded; ++I)
      S.Events.push_back(Ring->Events[I % RingCapacity]);
    Out.push_back(std::move(S));
  }
  return Out;
}

uint64_t trace::droppedEvents() {
  uint64_t Total = 0;
  for (const ThreadSnapshot &S : snapshot())
    Total += S.Dropped;
  return Total;
}

std::vector<ThreadDropCounts> trace::dropCounts() {
  std::vector<ThreadRing *> Rings;
  {
    Registry &Reg = registry();
    std::lock_guard<std::mutex> Lock(Reg.Mutex);
    Rings = Reg.Rings;
  }
  std::vector<ThreadDropCounts> Out;
  Out.reserve(Rings.size());
  for (const ThreadRing *Ring : Rings) {
    ThreadDropCounts C;
    C.ThreadId = Ring->ThreadId;
    C.Recorded = Ring->Next.load(std::memory_order_acquire);
    // Same accounting as snapshot(): once wrapped, one extra slot past
    // the logical oldest event is conceded to the write frontier.
    uint64_t Keep = C.Recorded;
    if (Keep > RingCapacity)
      Keep = RingCapacity - 1;
    C.Dropped = C.Recorded - Keep;
    Out.push_back(C);
  }
  return Out;
}

void trace::clear() {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> Lock(Reg.Mutex);
  for (ThreadRing *Ring : Reg.Rings) {
    Ring->Next.store(0, std::memory_order_release);
    Ring->Depth = 0;
  }
}

std::string trace::chromeTraceJson() {
  using telemetry::json::Writer;
  const std::vector<ThreadSnapshot> Threads = snapshot();
  Writer W;
  W.beginObject().key("traceEvents").beginArray();
  for (const ThreadSnapshot &S : Threads) {
    for (const TraceEvent &E : S.Events) {
      W.beginObject()
          .key("name")
          .value(E.Name)
          .key("cat")
          .value(E.Category)
          .key("ph")
          .value("X")
          .key("ts")
          .value(static_cast<double>(E.StartNs) / 1000.0)
          .key("dur")
          .value(static_cast<double>(E.DurNs) / 1000.0)
          .key("pid")
          .value(int64_t{1})
          .key("tid")
          .value(static_cast<uint64_t>(E.ThreadId))
          .key("args")
          .beginObject()
          .key("arg")
          .value(E.Arg)
          .key("flow")
          .value(E.Flow)
          .key("depth")
          .value(static_cast<uint64_t>(E.Depth))
          .key("tsc_start")
          .value(E.StartTsc)
          .key("tsc_dur")
          .value(E.DurTsc)
          .endObject()
          .endObject();
    }
  }
  // Flow arrows: for every flow id that tags more than one span, emit a
  // "s" (start) / "t" (step) / "f" (finish) chain so Perfetto draws
  // submit -> queue-wait -> execute as one linked request across
  // threads. Each link's ts sits at the midpoint of its span so the
  // viewer binds it to the enclosing slice.
  struct FlowRef {
    uint64_t Flow;
    uint64_t MidNs;
    uint32_t ThreadId;
  };
  std::vector<FlowRef> Refs;
  for (const ThreadSnapshot &S : Threads)
    for (const TraceEvent &E : S.Events)
      if (E.Flow != 0)
        Refs.push_back({E.Flow, E.StartNs + E.DurNs / 2, E.ThreadId});
  std::sort(Refs.begin(), Refs.end(), [](const FlowRef &A, const FlowRef &B) {
    return A.Flow != B.Flow ? A.Flow < B.Flow : A.MidNs < B.MidNs;
  });
  for (size_t I = 0; I < Refs.size();) {
    size_t End = I;
    while (End < Refs.size() && Refs[End].Flow == Refs[I].Flow)
      ++End;
    if (End - I >= 2) {
      for (size_t J = I; J < End; ++J) {
        const bool First = J == I;
        const bool Last = J + 1 == End;
        W.beginObject()
            .key("name")
            .value("flow")
            .key("cat")
            .value("flow")
            .key("ph")
            .value(First ? "s" : (Last ? "f" : "t"));
        if (Last)
          W.key("bp").value("e");
        W.key("id")
            .value(Refs[J].Flow)
            .key("ts")
            .value(static_cast<double>(Refs[J].MidNs) / 1000.0)
            .key("pid")
            .value(int64_t{1})
            .key("tid")
            .value(static_cast<uint64_t>(Refs[J].ThreadId))
            .endObject();
      }
    }
    I = End;
  }
  W.endArray();
  W.key("displayTimeUnit").value("ms");
  W.key("otherData").beginObject();
  W.key("tool").value("gmdiv");
  W.key("clock").value("steady_clock ns since trace enable");
  uint64_t Dropped = 0, Recorded = 0;
  for (const ThreadSnapshot &S : Threads) {
    Dropped += S.Dropped;
    Recorded += S.Recorded;
  }
  W.key("events_recorded").value(Recorded);
  W.key("events_dropped").value(Dropped);
  W.endObject().endObject();
  return W.str();
}

bool trace::writeChromeTrace(const std::string &Path, std::string *Error) {
  const std::string Doc = chromeTraceJson();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  const size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), Out);
  const bool Ok = Written == Doc.size() && std::fclose(Out) == 0;
  if (!Ok && Error)
    *Error = "short write to " + Path;
  return Ok;
}
