//===- trace/Trace.h - Scoped spans and Chrome trace export -----*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead tracing spans for the performance-observability layer.
/// A span measures one scoped region with both steady_clock (wall ns)
/// and the raw timestamp counter, and records a completed event into a
/// fixed-capacity per-thread ring buffer. The record path is lock-free:
/// one relaxed atomic load (the enable flag), a thread-local pointer
/// chase, an array store and a release increment — no allocation, no
/// mutex. When the ring wraps, the oldest events are overwritten and a
/// drop count keeps the loss visible.
///
///   trace::setEnabled(true);
///   {
///     GMDIV_TRACE_SPAN("verify", "verifyWidth", WordBits);
///     ...
///   }
///   trace::writeChromeTrace("campaign.trace.json");
///
/// The export is Chrome trace-event JSON ("X" complete events), directly
/// loadable in Perfetto / chrome://tracing: every span becomes one event
/// with microsecond ts/dur, its thread lane, and the TSC interval plus
/// nesting depth in args. Tracing is off by default; with no spans the
/// cost of an instrumented region is the one atomic load.
///
/// GMDIV_NO_TELEMETRY compiles the GMDIV_TRACE_SPAN macro out entirely
/// (the library itself stays available for explicit use).
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_TRACE_TRACE_H
#define GMDIV_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace gmdiv {
namespace trace {

/// One completed span. Name/Category must be string literals (or
/// otherwise outlive the trace): the ring buffer stores the pointers.
struct TraceEvent {
  const char *Category = "";
  const char *Name = "";
  uint64_t StartNs = 0; ///< steady_clock ns since the trace epoch.
  uint64_t DurNs = 0;
  uint64_t StartTsc = 0; ///< Raw TSC at span entry (0 if unavailable).
  uint64_t DurTsc = 0;
  uint64_t Arg = 0;      ///< Free-form detail (width, divisor, round).
  uint64_t Flow = 0;     ///< Request-flow id linking spans (0 = none).
  uint32_t ThreadId = 0; ///< Small dense id assigned at first record.
  uint32_t Depth = 0;    ///< Nesting depth at span entry (0 = top).
};

/// Events kept per thread; older events are overwritten once a thread
/// records more than this many (power of two, see ringMask in Trace.cpp).
inline constexpr size_t RingCapacity = 4096;

/// Whether spans record. Off by default; reading it is one relaxed load.
bool enabled();

/// Turns recording on or off. The first enable fixes the trace epoch
/// (ts = 0 in the exported trace).
void setEnabled(bool On);

/// Raw timestamp counter (rdtsc / cntvct); 0 on targets without one.
uint64_t readTsc();

/// steady_clock ns since the trace epoch (the exported ts = 0 origin).
/// Callers that record spans with explicit start times (the
/// BatchService queue-wait span) must stamp with this clock so the
/// synthetic span lands at the right ts in the exported trace.
uint64_t nowNs();

//===----------------------------------------------------------------------===//
// Request-flow attribution
//===----------------------------------------------------------------------===//
//
// A flow is a request identity that survives thread hops: the submitter
// allocates an id, every span recorded while a FlowScope is open carries
// it, and the Chrome export links same-flow spans with flow arrows
// ("s"/"t"/"f" events), so submit -> queue-wait -> execute reads as one
// request even though the three spans live on two threads.

/// Allocates a fresh nonzero flow id (process-wide, wait-free).
uint64_t nextFlowId();

/// The calling thread's current flow id (0 outside any FlowScope).
uint64_t currentFlow();

/// RAII: spans recorded by this thread inside the scope carry \p Flow.
/// Scopes nest; the previous flow is restored on exit. Passing 0 makes
/// the scope inert (spans keep whatever flow was already current), so
/// call sites can propagate "no flow" without branching.
class FlowScope {
public:
  explicit FlowScope(uint64_t Flow);
  ~FlowScope();
  FlowScope(const FlowScope &) = delete;
  FlowScope &operator=(const FlowScope &) = delete;

private:
  uint64_t Prev;
  bool Active;
};

/// Records one already-completed span into the calling thread's ring:
/// the cross-thread attribution primitive (a worker back-dating the
/// queue-wait interval it just observed). \p StartNs is trace-epoch
/// relative (see nowNs()). No-op while tracing is disabled.
void recordSpan(const char *Category, const char *Name, uint64_t StartNs,
                uint64_t DurNs, uint64_t Arg = 0, uint64_t Flow = 0);

/// RAII span. Construction samples the clocks when tracing is enabled;
/// destruction records one TraceEvent into the calling thread's ring.
/// A span constructed while tracing is disabled stays inert even if
/// tracing is enabled before it closes (no half-sampled events).
class Span {
public:
  Span(const char *Category, const char *Name, uint64_t Arg = 0);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Category;
  const char *Name;
  uint64_t Arg;
  uint64_t Flow; ///< currentFlow() at construction.
  uint64_t StartNs;
  uint64_t StartTsc;
  bool Active;
};

/// Per-thread view of the ring at snapshot time.
struct ThreadSnapshot {
  uint32_t ThreadId = 0;
  uint64_t Recorded = 0; ///< Total events ever recorded by the thread.
  uint64_t Dropped = 0;  ///< Events lost to ring wraparound.
  /// Surviving events, oldest first.
  std::vector<TraceEvent> Events;
};

/// Copies every thread's surviving events. Safe to call while other
/// threads keep recording (a racing writer can at worst tear the
/// oldest, about-to-be-overwritten slot; the snapshot drops one extra
/// event per ring lap to stay clear of the write frontier).
std::vector<ThreadSnapshot> snapshot();

/// Total events dropped to wraparound across all threads.
uint64_t droppedEvents();

/// Per-thread recorded/dropped tallies without copying any events —
/// the cheap form the metrics plane polls on every snapshot.
struct ThreadDropCounts {
  uint32_t ThreadId = 0;
  uint64_t Recorded = 0;
  uint64_t Dropped = 0;
};
std::vector<ThreadDropCounts> dropCounts();

/// Resets every ring (counts and events). For tests and multi-phase
/// tools; concurrent recorders may keep a stale index for one event.
void clear();

/// The whole trace as one Chrome trace-event JSON document
/// ({"traceEvents":[...],...}), loadable in Perfetto / about:tracing.
std::string chromeTraceJson();

/// Writes chromeTraceJson() to \p Path. Returns false (and fills
/// \p Error when given) if the file cannot be written.
bool writeChromeTrace(const std::string &Path, std::string *Error = nullptr);

} // namespace trace
} // namespace gmdiv

#ifdef GMDIV_NO_TELEMETRY
#define GMDIV_TRACE_SPAN(...) do { } while (false)
#else
#define GMDIV_TRACE_SPAN_CONCAT2(A, B) A##B
#define GMDIV_TRACE_SPAN_CONCAT(A, B) GMDIV_TRACE_SPAN_CONCAT2(A, B)
/// Scoped span: GMDIV_TRACE_SPAN("category", "name"[, arg]). Category
/// and name must be string literals; arg is an optional uint64 detail.
#define GMDIV_TRACE_SPAN(...)                                              \
  ::gmdiv::trace::Span GMDIV_TRACE_SPAN_CONCAT(GmdivTraceSpan,             \
                                               __LINE__)(__VA_ARGS__)
#endif

#endif // GMDIV_TRACE_TRACE_H
