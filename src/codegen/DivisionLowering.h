//===- codegen/DivisionLowering.h - The §10 compiler pass -------*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-integration pass of §10: "We have implemented the
/// algorithms for constant divisors in the freely available GCC
/// compiler, by extending its machine and language independent internal
/// code generation."
///
/// Frontends emit generic DivU/DivS/RemU/RemS opcodes; this pass walks a
/// program and replaces every division or remainder whose divisor is a
/// nonzero constant with the optimized multiply sequence of Figures
/// 4.2 / 5.2 (remainders via the extra MULL-and-subtract of §1), under
/// the same options as the direct generators — multiply-high capability
/// (the POWER case) and multiply strength-reduction thresholds (the
/// Alpha case). Divisions by run-time values are left untouched, exactly
/// as the paper's GCC port behaves ("we have not implemented any
/// algorithm for run-time invariant divisors").
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CODEGEN_DIVISIONLOWERING_H
#define GMDIV_CODEGEN_DIVISIONLOWERING_H

#include "codegen/DivCodeGen.h"
#include "ir/IR.h"

namespace gmdiv {
namespace codegen {

/// Statistics from one lowering run.
struct LoweringStats {
  int UnsignedDivsLowered = 0;
  int SignedDivsLowered = 0;
  int UnsignedRemsLowered = 0;
  int SignedRemsLowered = 0;
  int RuntimeDivisorsKept = 0; ///< Non-constant divisors left as-is.

  int total() const {
    return UnsignedDivsLowered + SignedDivsLowered +
           UnsignedRemsLowered + SignedRemsLowered;
  }
};

/// Rewrites \p P, replacing constant-divisor Div/Rem opcodes with
/// multiply sequences. The result computes identical values (under the
/// interpreter's hardware-style division semantics) and contains no
/// Div/Rem with a constant divisor.
ir::Program lowerDivisions(const ir::Program &P,
                           const GenOptions &Options = GenOptions(),
                           LoweringStats *Stats = nullptr);

} // namespace codegen
} // namespace gmdiv

#endif // GMDIV_CODEGEN_DIVISIONLOWERING_H
