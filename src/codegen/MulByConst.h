//===- codegen/MulByConst.h - Multiply-by-constant synthesis ----*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strength reduction of multiplication by a constant into shifts, adds
/// and subtracts, after Bernstein [5] (the paper's reference 5, cited in
/// §11: "the multiplications needed by these algorithms can sometimes be
/// computed quickly using a sequence of shifts, adds and subtracts, since
/// multipliers for small constant divisors have regular binary
/// patterns"). Table 11.1's Alpha column uses exactly this: GCC expands
/// the multiply by (2^34+1)/5 as
///     4*[(2^16+1)*(2^8+1)*(4*[4*(4*0-x)+x]-x)]+x
/// because it beats the Alpha's 23-cycle mulq.
///
/// The search is the classic memoized recursion over odd values:
///   cost(0) = cost(1) = 0
///   cost(even c) = cost(c >> tz(c)) + 1                       (shift)
///   cost(odd c)  = min( cost(c-1) + 1,                        (add x)
///                       cost(c+1) + 1,                        (sub x)
///                       cost(c / (2^k ± 1)) + 2  if divisible ) (shift±self)
/// Every branch strictly decreases the value (c+1 wraps 2^N-1 to 0, whose
/// result is the negation), so the recursion terminates without a depth
/// bound; a memo-size cap guards against pathological 64-bit constants.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CODEGEN_MULBYCONST_H
#define GMDIV_CODEGEN_MULBYCONST_H

#include "ir/Builder.h"

#include <cstdint>

namespace gmdiv {
namespace codegen {

/// Number of simple operations (shift/add/sub) in the best decomposition
/// found for multiplying by \p C at width \p WordBits.
int mulByConstCost(uint64_t C, int WordBits);

/// Emits a shift/add/sub sequence computing C * x mod 2^N into \p B,
/// returning the value index of the product. Never emits a multiply.
int emitMulByConst(ir::Builder &B, int X, uint64_t C);

/// True if the synthesized sequence is estimated cheaper than one
/// hardware multiply of \p MulCycles (simple ops cost 1 cycle each).
bool shouldExpandMultiply(uint64_t C, int WordBits, double MulCycles);

} // namespace codegen
} // namespace gmdiv

#endif // GMDIV_CODEGEN_MULBYCONST_H
