//===- codegen/MulByConst.cpp - Multiply-by-constant synthesis ------------===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//

#include "codegen/MulByConst.h"

#include "ops/Bits.h"

#include <unordered_map>

using namespace gmdiv;
using namespace gmdiv::codegen;

namespace {

/// How the best plan for a constant was obtained.
enum class PlanKind {
  Zero,      ///< c == 0: the constant zero.
  Identity,  ///< c == 1: x itself.
  Shift,     ///< c = Child << Amount.
  AddX,      ///< c = Child + 1 (odd): plan(Child) + x.
  SubX,      ///< c = Child - 1 mod 2^N (odd): plan(Child) - x.
  ShiftAdd,  ///< c = Child * (2^Amount + 1): (t << Amount) + t.
  ShiftSub,  ///< c = Child * (2^Amount - 1): (t << Amount) - t.
};

struct Plan {
  PlanKind Kind = PlanKind::Zero;
  uint64_t Child = 0;
  int Amount = 0;
  int Cost = 0;
};

/// Memoized planner for one word width. The search is exhaustive until a
/// per-query node budget runs out, after which it degrades to the greedy
/// binary method (shift out zeros; odd => add x) — still correct, just
/// possibly longer, which keeps adversarial 64-bit constants fast.
class Planner {
public:
  explicit Planner(int WordBits) : WordBits(WordBits) {
    Mask = WordBits == 64 ? ~uint64_t{0} : (uint64_t{1} << WordBits) - 1;
  }

  const Plan &plan(uint64_t C) {
    NodeBudget = 1 << 12;
    return planImpl(C);
  }

private:
  const Plan &planImpl(uint64_t C) {
    C &= Mask;
    if (const auto It = Memo.find(C); It != Memo.end())
      return It->second;
    const Plan Computed = compute(C);
    return Memo.emplace(C, Computed).first->second;
  }

  Plan compute(uint64_t C) {
    Plan Best;
    if (C == 0) {
      Best.Kind = PlanKind::Zero;
      return Best;
    }
    if (C == 1) {
      Best.Kind = PlanKind::Identity;
      return Best;
    }
    --NodeBudget;
    if ((C & 1) == 0) {
      const int Shift = countTrailingZeros64(C);
      Best.Kind = PlanKind::Shift;
      Best.Child = C >> Shift;
      Best.Amount = Shift;
      Best.Cost = planImpl(Best.Child).Cost + 1;
      return Best;
    }
    // Odd constant. The baseline follows the non-adjacent form: when
    // c ≡ 3 (mod 4), c + 1 sheds at least two bits (and 2^N - 1 wraps
    // straight to zero, i.e. "negate x"); otherwise take c - 1. This
    // single chain alone is the signed-digit binary method, so even with
    // the search budget exhausted the plan stays near 2 * popcount ops.
    const bool PreferSub = (C & 2) != 0;
    Best.Kind = PreferSub ? PlanKind::SubX : PlanKind::AddX;
    Best.Child = (PreferSub ? C + 1 : C - 1) & Mask;
    Best.Cost = planImpl(Best.Child).Cost + 1;
    if (NodeBudget <= 0)
      return Best;
    // The other direction.
    {
      const uint64_t Child = (PreferSub ? C - 1 : C + 1) & Mask;
      const int Cost = planImpl(Child).Cost + 1;
      if (Cost < Best.Cost) {
        Best.Kind = PreferSub ? PlanKind::AddX : PlanKind::SubX;
        Best.Child = Child;
        Best.Amount = 0;
        Best.Cost = Cost;
      }
    }
    // Factor paths: c = child * (2^k ± 1). These find the regular binary
    // patterns of magic multipliers, e.g. 0xCCCCCCCD's (2^16+1)(2^8+1)...
    for (int K = 2; K < WordBits && NodeBudget > 0; ++K) {
      const uint64_t PlusOne = (uint64_t{1} << K) + 1;
      if (C % PlusOne == 0) {
        const int Cost = planImpl(C / PlusOne).Cost + 2;
        if (Cost < Best.Cost) {
          Best.Kind = PlanKind::ShiftAdd;
          Best.Child = C / PlusOne;
          Best.Amount = K;
          Best.Cost = Cost;
        }
      }
      const uint64_t MinusOne = (uint64_t{1} << K) - 1;
      if (C % MinusOne == 0) {
        const int Cost = planImpl(C / MinusOne).Cost + 2;
        if (Cost < Best.Cost) {
          Best.Kind = PlanKind::ShiftSub;
          Best.Child = C / MinusOne;
          Best.Amount = K;
          Best.Cost = Cost;
        }
      }
    }
    return Best;
  }

  int WordBits;
  uint64_t Mask;
  int NodeBudget = 0;
  std::unordered_map<uint64_t, Plan> Memo;
};

/// One shared planner per width; plans are pure functions of (C, width),
/// so caching across calls is sound. thread_local keeps this safe if
/// callers ever parallelize.
Planner &plannerFor(int WordBits) {
  thread_local Planner P8(8), P16(16), P32(32), P64(64);
  switch (WordBits) {
  case 8:
    return P8;
  case 16:
    return P16;
  case 32:
    return P32;
  default:
    assert(WordBits == 64 && "unsupported word width");
    return P64;
  }
}

int emitPlan(Planner &Search, ir::Builder &B, int X, uint64_t C) {
  const Plan P = Search.plan(C); // Copy: emission below may grow the memo.
  switch (P.Kind) {
  case PlanKind::Zero:
    return B.constant(0);
  case PlanKind::Identity:
    return X;
  case PlanKind::Shift:
    return B.sll(emitPlan(Search, B, X, P.Child), P.Amount);
  case PlanKind::AddX:
    return B.add(emitPlan(Search, B, X, P.Child), X);
  case PlanKind::SubX:
    return B.sub(emitPlan(Search, B, X, P.Child), X);
  case PlanKind::ShiftAdd: {
    const int T = emitPlan(Search, B, X, P.Child);
    return B.add(B.sll(T, P.Amount), T);
  }
  case PlanKind::ShiftSub: {
    const int T = emitPlan(Search, B, X, P.Child);
    return B.sub(B.sll(T, P.Amount), T);
  }
  }
  assert(false && "unknown plan kind");
  return X;
}

} // namespace

int codegen::mulByConstCost(uint64_t C, int WordBits) {
  return plannerFor(WordBits).plan(C).Cost;
}

int codegen::emitMulByConst(ir::Builder &B, int X, uint64_t C) {
  return emitPlan(plannerFor(B.wordBits()), B, X, C);
}

bool codegen::shouldExpandMultiply(uint64_t C, int WordBits,
                                   double MulCycles) {
  return mulByConstCost(C, WordBits) < MulCycles;
}
