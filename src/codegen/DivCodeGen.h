//===- codegen/DivCodeGen.h - Constant-divisor code generation --*- C++ -*-===//
//
// Part of the gmdiv project, a reproduction of Granlund & Montgomery,
// "Division by Invariant Integers using Multiplication", PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-facing entry points: given a constant divisor, emit the
/// optimized IR sequence a compiler would generate in place of a divide
/// instruction.
///
///   genUnsignedDiv      — Figure 4.2 (power-of-2 / pre-shift / long form)
///   genSignedDiv        — Figure 5.2 (trunc; d may be negative)
///   genFloorDiv         — Figure 6.1 (floor; constant d > 0)
///   gen*DivRem          — quotient plus remainder via MULL and subtract
///                         (§1: "The remainder, if desired, can be
///                         computed by an additional multiplication and
///                         subtraction"); CSE shares the quotient.
///   genExactDiv*        — §9 exact division (MULL by the inverse).
///   genDivisibilityTest — §9 branch-free "d divides n" producing 0/1.
///
/// All generators can optionally expand the magic-number multiply into a
/// Bernstein shift/add sequence when that is cheaper on a given
/// architecture profile — the Alpha column of Table 11.1.
///
//===----------------------------------------------------------------------===//

#ifndef GMDIV_CODEGEN_DIVCODEGEN_H
#define GMDIV_CODEGEN_DIVCODEGEN_H

#include "arch/Arch.h"
#include "ir/Builder.h"
#include "ir/IR.h"

#include <cstdint>

namespace gmdiv {
namespace codegen {

/// Which multiply-high instructions the target provides. §3: "If an
/// architecture has only one of MULSH and MULUH, then the other can be
/// computed" via the XSIGN/AND identity — POWER/RIOS I, for example,
/// only has the signed forms (Table 1.1: "signed only").
enum class MulHighCapability {
  Both,         ///< MULUH and MULSH available (most machines).
  SignedOnly,   ///< Only MULSH; MULUH expands via the §3 identity.
  UnsignedOnly, ///< Only MULUH; MULSH expands via the §3 identity.
};

/// Options shared by the generators.
struct GenOptions {
  /// When nonnegative, a MULL/MULUH whose constant operand has a
  /// synthesized shift/add cost strictly below this many cycles is
  /// expanded instead of emitted as a multiply (only where the full
  /// product fits the word, i.e. MULL and the widened MULUH form).
  /// Negative disables expansion. Typically set to a profile's
  /// mulCycles().
  double ExpandMulBelowCycles = -1;

  /// Multiply-high availability; missing forms are synthesized with the
  /// §3 conversion identity (3 extra simple operations for a general
  /// operand, fewer when one operand is a known-sign constant).
  MulHighCapability MulHigh = MulHighCapability::Both;
};

//===----------------------------------------------------------------------===//
// Whole-program conveniences: one argument n, result(s) marked.
//===----------------------------------------------------------------------===//

/// Figure 4.2: q = ⌊n/d⌋ for constant d != 0.
ir::Program genUnsignedDiv(int WordBits, uint64_t D,
                           const GenOptions &Options = GenOptions());

/// Figure 4.2 plus remainder: results "q" and "r".
ir::Program genUnsignedDivRem(int WordBits, uint64_t D,
                              const GenOptions &Options = GenOptions());

/// Figure 5.2: q = trunc(n/d) for constant d != 0 (d sign-extended from
/// \p D's low WordBits).
ir::Program genSignedDiv(int WordBits, int64_t D,
                         const GenOptions &Options = GenOptions());

/// Figure 5.2 plus remainder (C `%`): results "q" and "r".
ir::Program genSignedDivRem(int WordBits, int64_t D,
                            const GenOptions &Options = GenOptions());

/// Figure 6.1: q = ⌊n/d⌋ (floor) for constant d > 0.
ir::Program genFloorDiv(int WordBits, int64_t D,
                        const GenOptions &Options = GenOptions());

/// Floor quotient plus modulo (sign of divisor): results "q" and "r".
/// Matches the paper's n mod 10 example in §6.
ir::Program genFloorDivMod(int WordBits, int64_t D,
                           const GenOptions &Options = GenOptions());

/// §9: q = n/d for unsigned n known divisible by d.
ir::Program genExactUnsignedDiv(int WordBits, uint64_t D);

/// §9: q = n/d for signed n known divisible by d.
ir::Program genExactSignedDiv(int WordBits, int64_t D);

/// §9: result "divisible" = 1 if d divides unsigned n, else 0.
ir::Program genDivisibilityTestUnsigned(int WordBits, uint64_t D);

/// §9: result "matches" = 1 if unsigned n mod d == r, for constants
/// 0 <= r < d. One subtract, one MULL, a rotate and a compare.
ir::Program genRemainderTestUnsigned(int WordBits, uint64_t D, uint64_t R);

/// §9: result "matches" = 1 if signed n rem d == r, for constants
/// 1 <= r < d (d > 0, not a power of two). Matches only nonnegative n,
/// since rem carries the dividend's sign.
ir::Program genRemainderTestSigned(int WordBits, int64_t D, int64_t R);

/// §9: result "divisible" = 1 if d divides signed n, else 0.
ir::Program genDivisibilityTestSigned(int WordBits, int64_t D);

/// §6's run-time general case: floor division where *both* n and d are
/// run-time values of unknown sign. Identity (6.1) wraps a trunc divide
/// (left as a DivS opcode — "six instructions plus the divide") with
/// branch-free sign adjustments, using the SLT improvement the paper
/// shows as MIPS code:
///   d_sign01 = SRL(d, N-1); n_sign01 = SLT(n, d_sign01);
///   q = TRUNC((n + d_sign - n_sign)/d) + q_sign.
/// The program takes two arguments (n, d) and marks results "q" and
/// "r" (divisor-sign modulo via (6.2)).
ir::Program genFloorDivModRuntime(int WordBits);

/// Baseline: Alverson's ARITH-10 scheme (the paper's reference [1],
/// deployed on the Tera) — reciprocal ⌈2^(N+l)/d⌉ rounded up with no
/// interval search and no reduction, so every non-power-of-two divisor
/// pays the full n + MULUH(f - 2^N, n) correction sequence. Benches
/// compare this against Figure 4.2 to quantify what CHOOSE_MULTIPLIER
/// buys.
ir::Program genUnsignedDivAlverson(int WordBits, uint64_t D);

/// Figure 8.1 as generated code: divides the doubleword (n_hi, n_lo) by
/// the invariant word d, yielding word quotient and remainder. The
/// program takes two arguments (high word first) and marks results "q"
/// and "r". Requires n_hi < d, as in §8. All Figure 8.1 state (m',
/// d_norm, l) is folded into constants; the doubleword additions expand
/// into add/carry (SLTU) pairs.
ir::Program genDWordDivRem(int WordBits, uint64_t D);

/// Figure 4.2 performed in wider registers: an OpBits-bit unsigned
/// division compiled for a MachineBits-bit machine (OpBits < MachineBits,
/// e.g. 32-bit division on the 64-bit Alpha of Table 11.1). The full
/// product fits the machine word, so a single MULL + shift suffices, and
/// the multiply is expandable into shifts and adds.
ir::Program genUnsignedDivWide(int OpBits, int MachineBits, uint64_t D,
                               const GenOptions &Options = GenOptions());

/// As genUnsignedDivWide, with remainder: results "q" and "r".
ir::Program genUnsignedDivRemWide(int OpBits, int MachineBits, uint64_t D,
                                  const GenOptions &Options = GenOptions());

/// Figure 5.2 in wider registers: an OpBits-bit *signed* trunc division
/// compiled for a MachineBits-bit machine. The argument is the
/// sign-extended OpBits value; because the multiplier from
/// CHOOSE_MULTIPLIER(|d|, OpBits-1) fits OpBits bits, the whole signed
/// product fits the machine word and one MULL + SRA replaces the MULSH.
ir::Program genSignedDivWide(int OpBits, int MachineBits, int64_t D,
                             const GenOptions &Options = GenOptions());

int emitSignedDivWide(ir::Builder &B, int N, int OpBits, int64_t D,
                      const GenOptions &Options = GenOptions());

//===----------------------------------------------------------------------===//
// Builder-level emitters, for composing with surrounding code.
// Each returns the value index of the quotient (or test result).
//===----------------------------------------------------------------------===//

int emitUnsignedDiv(ir::Builder &B, int N, uint64_t D,
                    const GenOptions &Options = GenOptions());
int emitSignedDiv(ir::Builder &B, int N, int64_t D,
                  const GenOptions &Options = GenOptions());
int emitFloorDiv(ir::Builder &B, int N, int64_t D,
                 const GenOptions &Options = GenOptions());
int emitExactUnsignedDiv(ir::Builder &B, int N, uint64_t D);
int emitExactSignedDiv(ir::Builder &B, int N, int64_t D);
int emitDivisibilityTestUnsigned(ir::Builder &B, int N, uint64_t D);
int emitRemainderTestUnsigned(ir::Builder &B, int N, uint64_t D,
                              uint64_t R);
int emitRemainderTestSigned(ir::Builder &B, int N, int64_t D, int64_t R);
int emitUnsignedDivWide(ir::Builder &B, int N, int OpBits, uint64_t D,
                        const GenOptions &Options = GenOptions());

/// §3 conversion identities at the IR level: a MULUH (resp. MULSH) that
/// respects the target's capability, synthesizing the missing form as
///   MULUH(x, y) = MULSH(x, y) + AND(x, XSIGN(y)) + AND(y, XSIGN(x))
/// (and the inverse). Exposed for tests and for composing custom
/// sequences against capability-restricted profiles.
int emitMulUHCapability(ir::Builder &B, int Lhs, int Rhs,
                        MulHighCapability Capability);
int emitMulSHCapability(ir::Builder &B, int Lhs, int Rhs,
                        MulHighCapability Capability);

} // namespace codegen
} // namespace gmdiv

#endif // GMDIV_CODEGEN_DIVCODEGEN_H
